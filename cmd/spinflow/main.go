// Command spinflow regenerates the paper's tables and figures, and runs
// the live serving mode.
//
// Usage:
//
//	spinflow [-scale f] [-par n] [-iters n] <experiment>...
//	spinflow serve [-addr :8080] [-par n] [-budget bytes] [-data-dir dir] [-workers n|addr,addr] [-telemetry-addr :9090]
//	spinflow worker [-listen 127.0.0.1:0] [-telemetry-addr :9091]
//	spinflow trace [-scale f] [-par n] <cc|live|distributed>
//
// `spinflow trace` runs one instrumented scenario, prints the
// per-superstep timeline (compute vs barrier vs ship vs merge), and
// writes the raw spans to TRACE_<scenario>.json. The -telemetry-addr
// flag on serve and worker exposes the process's obs.Registry —
// Prometheus text on /metrics, JSON on /debug/vars, and net/http/pprof
// under /debug/pprof/.
//
// Experiments: table1 table2 fig2 fig4 fig7 fig8 fig9 fig10 fig11 fig12
// outofcore live durable auto planner distributed explain all
//
// `spinflow worker` hosts partition ranges for distributed sessions: a
// coordinator (e.g. `spinflow distributed`, or the distrib package's Run)
// connects, assigns a job spec and a host ID, and drives supersteps over
// the control connection while exchange batches flow over the binary
// framed data plane. `spinflow distributed` runs the 2-process
// differential and throughput scenario against workers spawned from this
// same binary.
//
// `spinflow serve` starts the long-running maintenance service: named
// live views over resident solution sets, maintained under streaming
// graph mutations through an HTTP JSON API (see internal/live). SIGINT or
// SIGTERM shuts it down cleanly — pending mutation batches are flushed,
// final snapshots written, and spill files removed. With -data-dir, views
// are durable: mutations are write-ahead logged before acknowledgment,
// snapshots stream periodically, and a restarted server recovers every
// view (SIGKILL included — the WAL tail replays through the maintenance
// path). With -workers, every view is sharded across long-lived
// maintenance sessions on `spinflow worker` processes: pass running
// workers' control addresses, or an integer to spawn that many from this
// binary; queries and snapshots scatter-gather across the hosts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/algorithms"
	"repro/internal/distrib"
	"repro/internal/graphgen"
	"repro/internal/harness"
	"repro/internal/iterative"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// worker hosts partition ranges for distributed sessions: it listens for
// coordinator control connections and serves jobs until killed. The bound
// control address is printed as the first stdout line so a parent process
// (harness, CI) can scrape it when listening on an ephemeral port.
func worker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "control listen address")
	telemetry := fs.String("telemetry-addr", "", "serve /metrics, /debug/vars and pprof on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The registry always exists: traced jobs record spans (and ship them
	// back to their coordinator) whether or not anyone scrapes this
	// process. -telemetry-addr just exposes it.
	reg := obs.NewRegistry()
	if *telemetry != "" {
		taddr, closer, err := reg.Serve(*telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer closer.Close()
		fmt.Fprintf(os.Stderr, "spinflow worker: telemetry on http://%s/metrics\n", taddr)
	}
	fmt.Println(ln.Addr().String())
	fmt.Fprintf(os.Stderr, "spinflow worker: listening on %s\n", ln.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		ln.Close()
	}()
	return distrib.ServeWorkerWith(ln, distrib.ServeWorkerOpts{
		Log:   log.New(os.Stderr, "", log.LstdFlags),
		Obs:   reg,
		Views: live.NewWorkerHost(reg),
	})
}

// spawnWorkers launches n `spinflow worker` child processes from this
// binary and returns their control addresses plus a kill function. Each
// child prints its bound address as its first stdout line; that is what
// we scrape here.
func spawnWorkers(n int) ([]string, func(), error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("locating own binary for worker processes: %w", err)
	}
	var procs []*exec.Cmd
	kill := func() {
		for _, c := range procs {
			c.Process.Signal(syscall.SIGTERM)
		}
		for _, c := range procs {
			c.Wait()
		}
	}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, "worker", "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			kill()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			kill()
			return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			kill()
			return nil, nil, fmt.Errorf("worker %d exited before printing its control address", i)
		}
		addrs = append(addrs, strings.TrimSpace(sc.Text()))
	}
	return addrs, kill, nil
}

// distributed runs the 2-process differential + throughput scenario.
// With -workers it meshes with already-running worker processes;
// otherwise it spawns a worker from this binary.
func distributed(opts harness.Options) error {
	if len(opts.WorkerAddrs) == 0 {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own binary for worker processes: %w", err)
		}
		opts.WorkerBinary = self
	}
	_, err := harness.Distributed(opts)
	return err
}

// serve runs the live maintenance service until SIGINT/SIGTERM.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	par := fs.Int("par", 4, "default per-view parallelism")
	budget := fs.Int64("budget", 0, "total resident solution-memory budget in bytes (0 = unlimited)")
	viewBudget := fs.Int64("view-budget", 0, "per-view solution spill budget in bytes (0 = in-memory)")
	dataDir := fs.String("data-dir", "", "directory for durable view state (WAL + snapshots); views are recovered from it on startup")
	telemetry := fs.String("telemetry-addr", "", "serve /metrics, /debug/vars and pprof on this address (empty = off)")
	workers := fs.String("workers", "", "shard views across workers: comma-separated control addresses of running `spinflow worker` processes, or an integer N to spawn N from this binary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var workerAddrs []string
	if *workers != "" {
		if n, err := strconv.Atoi(*workers); err == nil {
			if n < 1 {
				return fmt.Errorf("-workers %d: need at least one worker to shard", n)
			}
			addrs, kill, err := spawnWorkers(n)
			if err != nil {
				return err
			}
			defer kill()
			workerAddrs = addrs
			fmt.Fprintf(os.Stderr, "spinflow serve: spawned %d worker process(es): %s\n", n, strings.Join(addrs, ", "))
		} else {
			workerAddrs = strings.Split(*workers, ",")
		}
	}

	reg := obs.NewRegistry()
	if *telemetry != "" {
		taddr, closer, err := reg.Serve(*telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer closer.Close()
		fmt.Fprintf(os.Stderr, "spinflow serve: telemetry on http://%s/metrics\n", taddr)
	}
	sched := live.NewScheduler(live.SchedulerConfig{
		MemoryBudget: *budget,
		DataDir:      *dataDir,
		Obs:          reg,
		DefaultView: live.ViewConfig{
			Config:  iterative.Config{Parallelism: *par, SolutionMemoryBudget: *viewBudget},
			Workers: workerAddrs,
		},
	})
	if *dataDir != "" {
		n, err := sched.Recover()
		if err != nil {
			return fmt.Errorf("recovering views from %s: %w", *dataDir, err)
		}
		fmt.Fprintf(os.Stderr, "spinflow serve: recovered %d durable view(s) from %s\n", n, *dataDir)
	}
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "spinflow serve: %v — flushing views and shutting down\n", s)
		close(stop)
	}()
	fmt.Fprintf(os.Stderr, "spinflow serve: listening on %s\n", *addr)
	return live.Serve(*addr, sched, stop, nil)
}

// traceCmd runs one instrumented scenario, renders the per-superstep
// timeline table, and writes the spans to TRACE_<scenario>.json.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale factor")
	par := fs.Int("par", 4, "parallelism (number of partitions)")
	out := fs.String("o", "", "output JSON path (default TRACE_<scenario>.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spinflow trace [-scale f] [-par n] [-o file] <cc|live|distributed>")
	}
	scenario := fs.Arg(0)
	opts := harness.Options{Scale: graphgen.Scale(*scale), Parallelism: *par, Out: os.Stdout}
	if scenario == "distributed" {
		// The 2-process scenario spawns its worker from this binary so the
		// trace crosses real process boundaries.
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own binary for worker process: %w", err)
		}
		opts.WorkerBinary = self
	}
	doc, err := harness.Trace(opts, scenario)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "TRACE_" + scenario + ".json"
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spinflow trace: wrote %s (%d spans, %d supersteps)\n",
		path, len(doc.Spans), len(doc.Rows))
	return nil
}

// explain prints the optimized physical plans (text and Graphviz DOT) for
// the PageRank bulk iteration and the incremental Connected Components
// iteration on the wikipedia stand-in.
func explain(opts harness.Options) error {
	g := graphgen.Wikipedia(graphgen.ScaleTiny)

	prSpec, _ := algorithms.PageRankSpec(g, 20, algorithms.DefaultDamping, 0)
	prPlan, err := optimizer.Optimize(prSpec.Plan, optimizer.Options{
		Parallelism:        4,
		ExpectedIterations: 20,
		Feedback:           map[int]int{prSpec.Input.ID: prSpec.Output.ID},
	})
	if err != nil {
		return err
	}
	fmt.Println("PageRank bulk iteration (Figure 3) — physical plan:")
	fmt.Print(prPlan.Explain())
	fmt.Println("\nDOT:")
	fmt.Print(prPlan.DOT())

	ccSpec, _, _ := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	ccPlan, err := optimizer.Optimize(ccSpec.Plan, optimizer.Options{
		Parallelism:        4,
		ExpectedIterations: 14,
		PlaceholderProps: map[int]optimizer.Props{
			ccSpec.Workset.ID: {Part: record.KeyID(ccSpec.WorksetKey)},
		},
		SinkPartition: map[int]record.KeyFunc{
			ccSpec.DeltaSink.ID:   ccSpec.SolutionKey,
			ccSpec.WorksetSink.ID: ccSpec.WorksetKey,
		},
		Feedback: map[int]int{ccSpec.Workset.ID: ccSpec.WorksetSink.ID},
	})
	if err != nil {
		return err
	}
	fmt.Println("\nIncremental Connected Components (Figure 5) — physical plan:")
	fmt.Print(ccPlan.Explain())
	fmt.Println("\nDOT:")
	fmt.Print(ccPlan.DOT())
	return nil
}

func main() {
	// The serve mode has its own flags; dispatch before the experiment
	// flag set claims the command line.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serve(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "spinflow: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := worker(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "spinflow: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := traceCmd(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "spinflow: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default laptop scale)")
	par := flag.Int("par", 4, "parallelism (number of partitions/workers)")
	iters := flag.Int("iters", 20, "PageRank iteration count")
	workers := flag.String("workers", "", "comma-separated control addresses of running `spinflow worker` processes for the distributed experiment (default: spawn one)")
	flag.Parse()

	opts := harness.Options{
		Scale:              graphgen.Scale(*scale),
		Parallelism:        *par,
		PageRankIterations: *iters,
		Out:                os.Stdout,
	}
	if *workers != "" {
		opts.WorkerAddrs = strings.Split(*workers, ",")
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spinflow [flags] <table1|table2|fig2|fig4|fig7|fig8|fig9|fig10|fig11|fig12|outofcore|live|durable|auto|planner|distributed|explain|all>...")
		fmt.Fprintln(os.Stderr, "       spinflow serve [-addr :8080] [-par n] [-budget bytes] [-data-dir dir] [-workers n|addr,addr] [-telemetry-addr :9090]")
		fmt.Fprintln(os.Stderr, "       spinflow worker [-listen 127.0.0.1:0] [-telemetry-addr :9091]")
		fmt.Fprintln(os.Stderr, "       spinflow trace [-scale f] [-par n] [-o file] <cc|live|distributed>")
		os.Exit(2)
	}
	for _, name := range args {
		var err error
		switch name {
		case "table1":
			_, err = harness.Table1(opts)
		case "table2":
			_, err = harness.Table2(opts)
		case "fig2":
			_, err = harness.Figure2(opts)
		case "fig4":
			_, err = harness.Figure4(opts)
		case "fig7":
			_, err = harness.Figure7(opts)
		case "fig8":
			_, err = harness.Figure8(opts)
		case "fig9":
			_, err = harness.Figure9(opts)
		case "fig10":
			_, err = harness.Figure10(opts)
		case "fig11":
			_, err = harness.Figure11(opts)
		case "fig12":
			_, err = harness.Figure12(opts)
		case "outofcore":
			_, err = harness.OutOfCore(opts)
		case "live":
			_, err = harness.Live(opts)
		case "durable":
			_, err = harness.Durable(opts)
		case "auto":
			_, err = harness.Auto(opts)
		case "planner":
			_, err = harness.Planner(opts)
		case "distributed":
			err = distributed(opts)
		case "all":
			err = harness.All(opts)
		case "explain":
			err = explain(opts)
		default:
			fmt.Fprintf(os.Stderr, "spinflow: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spinflow: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
