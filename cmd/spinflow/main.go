// Command spinflow regenerates the paper's tables and figures.
//
// Usage:
//
//	spinflow [-scale f] [-par n] [-iters n] <experiment>...
//
// Experiments: table1 table2 fig2 fig4 fig7 fig8 fig9 fig10 fig11 fig12 all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/harness"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// explain prints the optimized physical plans (text and Graphviz DOT) for
// the PageRank bulk iteration and the incremental Connected Components
// iteration on the wikipedia stand-in.
func explain(opts harness.Options) error {
	g := graphgen.Wikipedia(graphgen.ScaleTiny)

	prSpec, _ := algorithms.PageRankSpec(g, 20, algorithms.DefaultDamping, 0)
	prPlan, err := optimizer.Optimize(prSpec.Plan, optimizer.Options{
		Parallelism:        4,
		ExpectedIterations: 20,
		Feedback:           map[int]int{prSpec.Input.ID: prSpec.Output.ID},
	})
	if err != nil {
		return err
	}
	fmt.Println("PageRank bulk iteration (Figure 3) — physical plan:")
	fmt.Print(prPlan.Explain())
	fmt.Println("\nDOT:")
	fmt.Print(prPlan.DOT())

	ccSpec, _, _ := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	ccPlan, err := optimizer.Optimize(ccSpec.Plan, optimizer.Options{
		Parallelism:        4,
		ExpectedIterations: 14,
		PlaceholderProps: map[int]optimizer.Props{
			ccSpec.Workset.ID: {Part: record.KeyID(ccSpec.WorksetKey)},
		},
		SinkPartition: map[int]record.KeyFunc{
			ccSpec.DeltaSink.ID:   ccSpec.SolutionKey,
			ccSpec.WorksetSink.ID: ccSpec.WorksetKey,
		},
		Feedback: map[int]int{ccSpec.Workset.ID: ccSpec.WorksetSink.ID},
	})
	if err != nil {
		return err
	}
	fmt.Println("\nIncremental Connected Components (Figure 5) — physical plan:")
	fmt.Print(ccPlan.Explain())
	fmt.Println("\nDOT:")
	fmt.Print(ccPlan.DOT())
	return nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default laptop scale)")
	par := flag.Int("par", 4, "parallelism (number of partitions/workers)")
	iters := flag.Int("iters", 20, "PageRank iteration count")
	flag.Parse()

	opts := harness.Options{
		Scale:              graphgen.Scale(*scale),
		Parallelism:        *par,
		PageRankIterations: *iters,
		Out:                os.Stdout,
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spinflow [flags] <table1|table2|fig2|fig4|fig7|fig8|fig9|fig10|fig11|fig12|outofcore|explain|all>...")
		os.Exit(2)
	}
	for _, name := range args {
		var err error
		switch name {
		case "table1":
			_, err = harness.Table1(opts)
		case "table2":
			_, err = harness.Table2(opts)
		case "fig2":
			_, err = harness.Figure2(opts)
		case "fig4":
			_, err = harness.Figure4(opts)
		case "fig7":
			_, err = harness.Figure7(opts)
		case "fig8":
			_, err = harness.Figure8(opts)
		case "fig9":
			_, err = harness.Figure9(opts)
		case "fig10":
			_, err = harness.Figure10(opts)
		case "fig11":
			_, err = harness.Figure11(opts)
		case "fig12":
			_, err = harness.Figure12(opts)
		case "outofcore":
			_, err = harness.OutOfCore(opts)
		case "all":
			err = harness.All(opts)
		case "explain":
			err = explain(opts)
		default:
			fmt.Fprintf(os.Stderr, "spinflow: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "spinflow: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
