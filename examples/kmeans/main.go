// K-Means clustering as a bulk iterative dataflow — one of the machine
// learning workloads the paper's introduction motivates. The points are
// loop-invariant and live on the cached constant data path; only the
// centroid set is recomputed each pass.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	spinflow "repro"
)

const (
	k          = 4
	iterations = 15
)

type point struct{ x, y float64 }

func pack(id int64, p point) spinflow.Record {
	return spinflow.Record{A: id, X: p.x, B: int64(math.Float64bits(p.y))}
}

func unpack(r spinflow.Record) point {
	return point{x: r.X, y: math.Float64frombits(uint64(r.B))}
}

func main() {
	// Four well-separated clusters of synthetic points.
	centers := []point{{0, 0}, {20, 0}, {0, 20}, {20, 20}}
	var points []spinflow.Record
	s := uint64(2024)
	next := func() float64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return (float64((s*0x2545f4914f6cdd1d)>>11)/float64(1<<53) - 0.5) * 4
	}
	id := int64(0)
	for _, c := range centers {
		for i := 0; i < 5000; i++ {
			points = append(points, pack(id, point{x: c.x + next(), y: c.y + next()}))
			id++
		}
	}

	p := spinflow.NewPlan()
	src := p.SourceOf("points", points)
	centroids := p.IterationPlaceholder("centroids", k)

	pairs := p.CrossNode("distances", src, centroids,
		func(pt, c spinflow.Record, out spinflow.Emitter) {
			pp, cp := unpack(pt), unpack(c)
			d := (pp.x-cp.x)*(pp.x-cp.x) + (pp.y-cp.y)*(pp.y-cp.y)
			out.Emit(spinflow.Record{A: pt.A, B: c.A, X: d})
		})
	pairs.EstRecords = int64(len(points) * k)

	nearest := p.ReduceNode("nearest", pairs, spinflow.KeyA,
		func(pid int64, group []spinflow.Record, out spinflow.Emitter) {
			best := group[0]
			for _, g := range group[1:] {
				if g.X < best.X || (g.X == best.X && g.B < best.B) {
					best = g
				}
			}
			out.Emit(spinflow.Record{A: pid, B: best.B})
		})
	nearest.EstRecords = int64(len(points))

	members := p.MatchNode("members", nearest, src, spinflow.KeyA, spinflow.KeyA,
		func(assign, pt spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: assign.B, X: pt.X, B: pt.B})
		})
	members.EstRecords = int64(len(points))

	recompute := p.ReduceNode("recompute", members, spinflow.KeyA,
		func(cid int64, group []spinflow.Record, out spinflow.Emitter) {
			var sx, sy float64
			for _, g := range group {
				gp := unpack(g)
				sx += gp.x
				sy += gp.y
			}
			n := float64(len(group))
			out.Emit(pack(cid, point{x: sx / n, y: sy / n}))
		})
	recompute.EstRecords = k
	o := p.SinkNode("O", recompute)

	// Rough initial centroids, one near each quadrant.
	initial := []spinflow.Record{
		pack(0, point{3, 3}), pack(1, point{15, 2}),
		pack(2, point{2, 15}), pack(3, point{16, 16}),
	}

	spec := spinflow.BulkSpec{Plan: p, Input: centroids, Output: o, FixedIterations: iterations}
	start := time.Now()
	res, err := spinflow.RunBulk(spec, initial, spinflow.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("K-Means: %d points, k=%d, %d iterations in %v\n",
		len(points), k, res.Iterations, time.Since(start).Round(time.Millisecond))
	fmt.Println("final centroids (true centers at (0,0),(20,0),(0,20),(20,20)):")
	for _, r := range res.Solution {
		c := unpack(r)
		fmt.Printf("  centroid %d: (%6.2f, %6.2f)\n", r.A, c.x, c.y)
	}
}
