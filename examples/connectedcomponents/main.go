// Connected Components three ways — bulk, incremental (CoGroup), and
// asynchronous microsteps (Match) — on the public API, reproducing the
// paper's headline comparison (§6.2): the incremental variants touch only
// the "hot" portion of the graph and win by a growing margin.
package main

import (
	"fmt"
	"log"
	"time"

	spinflow "repro"
)

// undirected symmetrizes the edge list.
func undirected(g *spinflow.Graph) []spinflow.Record {
	seen := make(map[[2]int64]bool, 2*len(g.Edges))
	out := make([]spinflow.Record, 0, 2*len(g.Edges))
	add := func(s, d int64) {
		if s == d || seen[[2]int64{s, d}] {
			return
		}
		seen[[2]int64{s, d}] = true
		out = append(out, spinflow.Record{A: s, B: d})
	}
	for _, e := range g.Edges {
		add(e.Src, e.Dst)
		add(e.Dst, e.Src)
	}
	return out
}

// buildIncremental assembles the Figure-5 incremental iteration. The
// useCoGroup flag selects the batch (CoGroup) or per-record (Match)
// update variant.
func buildIncremental(edges []spinflow.Record, numVertices int64, useCoGroup bool) (spinflow.IncrementalSpec, []spinflow.Record, []spinflow.Record) {
	p := spinflow.NewPlan()
	w := p.IterationPlaceholder("W", int64(len(edges)))

	var delta *spinflow.Node
	if useCoGroup {
		delta = p.SolutionCoGroupNode("update", w, spinflow.KeyA,
			func(vid int64, cands []spinflow.Record, s spinflow.Record, found bool, out spinflow.Emitter) {
				min := cands[0].B
				for _, c := range cands[1:] {
					if c.B < min {
						min = c.B
					}
				}
				if found && min < s.B {
					out.Emit(spinflow.Record{A: vid, B: min})
				}
			})
	} else {
		delta = p.SolutionJoinNode("update", w, spinflow.KeyA,
			func(c, s spinflow.Record, found bool, out spinflow.Emitter) {
				if found && c.B < s.B {
					out.Emit(spinflow.Record{A: c.A, B: c.B})
				}
			})
	}
	delta.Preserve(0, spinflow.KeyA)
	d := p.SinkNode("D", delta)

	n := p.SourceOf("N", edges)
	prop := p.MatchNode("toNeighbors", delta, n, spinflow.KeyA, spinflow.KeyA,
		func(dr, er spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: er.B, B: dr.B})
		})
	w2 := p.SinkNode("W'", prop)

	spec := spinflow.IncrementalSpec{
		Plan: p, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: spinflow.KeyA, WorksetKey: spinflow.KeyA,
		Comparator: func(a, b spinflow.Record) int {
			switch {
			case a.B < b.B:
				return 1
			case a.B > b.B:
				return -1
			}
			return 0
		},
	}
	s0 := make([]spinflow.Record, numVertices)
	for i := int64(0); i < numVertices; i++ {
		s0[i] = spinflow.Record{A: i, B: i}
	}
	w0 := make([]spinflow.Record, len(edges))
	for i, e := range edges {
		w0[i] = spinflow.Record{A: e.B, B: e.A}
	}
	return spec, s0, w0
}

// buildBulk assembles the bulk variant: recompute every vertex's minimum
// every pass.
func buildBulk(edges []spinflow.Record, numVertices int64) (spinflow.BulkSpec, []spinflow.Record) {
	p := spinflow.NewPlan()
	state := p.IterationPlaceholder("S", numVertices)
	n := p.SourceOf("N", edges)
	send := p.MatchNode("send", state, n, spinflow.KeyA, spinflow.KeyA,
		func(s, e spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: e.B, B: s.B})
		})
	send.EstRecords = int64(len(edges))
	all := p.UnionNode("cands", send, state)
	min := p.ReduceNode("min", all, spinflow.KeyA,
		func(vid int64, g []spinflow.Record, out spinflow.Emitter) {
			m := g[0].B
			for _, r := range g[1:] {
				if r.B < m {
					m = r.B
				}
			}
			out.Emit(spinflow.Record{A: vid, B: m})
		})
	min.Combinable = true
	min.EstRecords = numVertices
	o := p.SinkNode("O", min)
	spec := spinflow.BulkSpec{
		Plan: p, Input: state, Output: o,
		Converged: func(prev, next []spinflow.Record) bool {
			m := make(map[int64]int64, len(prev))
			for _, r := range prev {
				m[r.A] = r.B
			}
			for _, r := range next {
				if m[r.A] != r.B {
					return false
				}
			}
			return true
		},
	}
	s0 := make([]spinflow.Record, numVertices)
	for i := int64(0); i < numVertices; i++ {
		s0[i] = spinflow.Record{A: i, B: i}
	}
	return spec, s0
}

func components(recs []spinflow.Record) int {
	set := map[int64]bool{}
	for _, r := range recs {
		set[r.B] = true
	}
	return len(set)
}

func main() {
	g := spinflow.LoadDataset(spinflow.DatasetFOAF, 1.0)
	edges := undirected(g)
	cfg := spinflow.Config{Parallelism: 4}
	fmt.Printf("Connected Components on %s: %d vertices, %d undirected edges\n",
		g.Name, g.NumVertices, len(edges))

	start := time.Now()
	bulkSpec, bs0 := buildBulk(edges, g.NumVertices)
	bulk, err := spinflow.RunBulk(bulkSpec, bs0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bulkTime := time.Since(start)
	fmt.Printf("  bulk:               %8v  %3d iterations  %d components\n",
		bulkTime.Round(time.Millisecond), bulk.Iterations, components(bulk.Solution))

	start = time.Now()
	spec, s0, w0 := buildIncremental(edges, g.NumVertices, true)
	incr, err := spinflow.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	incrTime := time.Since(start)
	fmt.Printf("  incremental (CG):   %8v  %3d supersteps  %d components\n",
		incrTime.Round(time.Millisecond), incr.Supersteps, components(incr.Solution))

	start = time.Now()
	mspec, ms0, mw0 := buildIncremental(edges, g.NumVertices, false)
	micro, err := spinflow.RunMicrostep(mspec, ms0, mw0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	microTime := time.Since(start)
	fmt.Printf("  microsteps (async): %8v  %d microsteps    %d components\n",
		microTime.Round(time.Millisecond), micro.Microsteps, components(micro.Solution))

	fmt.Printf("\nspeedup over bulk: incremental %.1fx, microsteps %.1fx\n",
		float64(bulkTime)/float64(incrTime), float64(bulkTime)/float64(microTime))
}
