// Quickstart: build and execute a non-iterative dataflow with the public
// API — compute each vertex's out-degree, join it back to the edge list,
// and count how many edges originate at "hub" vertices.
package main

import (
	"fmt"
	"log"
	"sort"

	spinflow "repro"
)

func main() {
	// A small synthetic graph: 1000 vertices, power-law degrees.
	g := spinflow.PowerLawGraph(1000, 3, 42)
	edges := make([]spinflow.Record, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = spinflow.Record{A: e.Src, B: e.Dst}
	}

	p := spinflow.NewPlan()
	src := p.SourceOf("edges", edges)

	// Total degree per vertex: emit both endpoints, group, count.
	endpoints := p.MapNode("endpoints", src,
		func(e spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: e.A})
			out.Emit(spinflow.Record{A: e.B})
		})
	deg := p.ReduceNode("degree", endpoints, spinflow.KeyA,
		func(vid int64, group []spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: vid, B: int64(len(group))})
		})

	// Keep the hubs (degree >= 10).
	hubs := p.FilterNode("hubs", deg, func(r spinflow.Record) bool { return r.B >= 10 })

	// Join the hubs back to the edges: every edge leaving a hub.
	hubEdges := p.MatchNode("hubEdges", hubs, src, spinflow.KeyA, spinflow.KeyA,
		func(hub, edge spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: hub.A, B: edge.B, X: float64(hub.B)})
		})

	hubSink := p.SinkNode("hubs", hubs)
	edgeSink := p.SinkNode("hubEdges", hubEdges)

	res, err := spinflow.Execute(p, spinflow.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}

	hubList := res[hubSink]
	sort.Slice(hubList, func(i, j int) bool { return hubList[i].B > hubList[j].B })
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())
	fmt.Printf("hubs (degree >= 10): %d, edges leaving hubs: %d\n", len(hubList), len(res[edgeSink]))
	fmt.Println("top hubs:")
	for i, h := range hubList {
		if i == 5 {
			break
		}
		fmt.Printf("  vertex %4d  out-degree %d\n", h.A, h.B)
	}

	// Show the optimizer's chosen strategy for this plan.
	explain, err := spinflow.Explain(p, spinflow.Config{Parallelism: 4}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphysical plan:\n%s", explain)
}
