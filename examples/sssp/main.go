// Single-source shortest paths as an incremental iteration executed in
// asynchronous microsteps: the working set carries distance candidates,
// the solution set keeps each vertex's best-known distance, and updates
// spread without superstep barriers (paper §2.2/§5.2).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	spinflow "repro"
)

func main() {
	// A weighted random graph; weights derived deterministically from the
	// endpoints.
	g := spinflow.UniformGraph(50_000, 300_000, 7)
	weight := func(s, d int64) float64 { return 1 + float64((s*31+d*17)%10) }

	edges := make([]spinflow.Record, 0, 2*len(g.Edges))
	for _, e := range g.Edges {
		w := weight(e.Src, e.Dst)
		edges = append(edges,
			spinflow.Record{A: e.Src, B: e.Dst, X: w},
			spinflow.Record{A: e.Dst, B: e.Src, X: w})
	}

	p := spinflow.NewPlan()
	w := p.IterationPlaceholder("W", int64(len(edges)))
	relax := p.SolutionJoinNode("relax", w, spinflow.KeyA,
		func(c, s spinflow.Record, found bool, out spinflow.Emitter) {
			if !found || c.X < s.X {
				out.Emit(spinflow.Record{A: c.A, X: c.X})
			}
		})
	relax.Preserve(0, spinflow.KeyA)
	d := p.SinkNode("D", relax)
	es := p.SourceOf("E", edges)
	prop := p.MatchNode("expand", relax, es, spinflow.KeyA, spinflow.KeyA,
		func(dr, er spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: er.B, X: dr.X + er.X})
		})
	w2 := p.SinkNode("W'", prop)

	spec := spinflow.IncrementalSpec{
		Plan: p, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: spinflow.KeyA, WorksetKey: spinflow.KeyA,
		Comparator: func(a, b spinflow.Record) int {
			switch {
			case a.X < b.X:
				return 1
			case a.X > b.X:
				return -1
			}
			return 0
		},
	}

	// Validate the §5.2 microstep conditions before running.
	if _, err := spinflow.ValidateMicrostep(spec); err != nil {
		log.Fatalf("plan not microstep-admissible: %v", err)
	}

	const source = 0
	w0 := []spinflow.Record{{A: source, X: 0}}

	start := time.Now()
	res, err := spinflow.RunMicrostep(spec, nil, w0, spinflow.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	async := time.Since(start)

	start = time.Now()
	res2, err := spinflow.RunIncremental(spec, nil, w0, spinflow.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	sync := time.Since(start)

	fmt.Printf("SSSP from vertex %d on %d vertices / %d weighted edges\n",
		source, g.NumVertices, len(edges))
	fmt.Printf("  async microsteps: reached %6d vertices in %8v (%d microsteps)\n",
		len(res.Solution), async.Round(time.Millisecond), res.Microsteps)
	fmt.Printf("  supersteps:       reached %6d vertices in %8v (%d supersteps)\n",
		len(res2.Solution), sync.Round(time.Millisecond), res2.Supersteps)

	// Both modes must agree on every distance.
	dist := make(map[int64]float64, len(res2.Solution))
	for _, r := range res2.Solution {
		dist[r.A] = r.X
	}
	for _, r := range res.Solution {
		if dist[r.A] != r.X {
			log.Fatalf("async/sync disagree at vertex %d: %g vs %g", r.A, r.X, dist[r.A])
		}
	}
	fmt.Println("  async and superstep executions agree on all distances")

	far := append([]spinflow.Record(nil), res.Solution...)
	sort.Slice(far, func(i, j int) bool { return far[i].X > far[j].X })
	fmt.Println("farthest reached vertices:")
	for i := 0; i < 5 && i < len(far); i++ {
		fmt.Printf("  vertex %6d  distance %.0f\n", far[i].A, far[i].X)
	}
}
