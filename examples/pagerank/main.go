// PageRank as a bulk iterative dataflow (paper Figure 3), built entirely
// on the public API. The same logical plan is executed with both Figure-4
// physical strategies by changing only the input-size estimates the
// optimizer sees, demonstrating that "one implementation fits both cases".
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	spinflow "repro"
)

const (
	damping    = 0.85
	iterations = 20
)

// buildPageRank assembles the Figure-3 dataflow: join rank vector with the
// transition matrix on pid, sum contributions per tid, add teleport mass.
func buildPageRank(g *spinflow.Graph) (spinflow.BulkSpec, []spinflow.Record) {
	n := float64(g.NumVertices)

	outdeg := make([]int64, g.NumVertices)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	matrix := make([]spinflow.Record, 0, len(g.Edges))
	for _, e := range g.Edges {
		matrix = append(matrix, spinflow.Record{A: e.Dst, B: e.Src, X: 1 / float64(outdeg[e.Src])})
	}
	teleport := make([]spinflow.Record, g.NumVertices)
	initial := make([]spinflow.Record, g.NumVertices)
	for i := int64(0); i < g.NumVertices; i++ {
		teleport[i] = spinflow.Record{A: i, X: (1 - damping) / n}
		initial[i] = spinflow.Record{A: i, X: 1 / n}
	}

	p := spinflow.NewPlan()
	ranks := p.IterationPlaceholder("p", g.NumVertices)
	mat := p.SourceOf("A", matrix)
	join := p.MatchNode("joinPA", ranks, mat, spinflow.KeyA, spinflow.KeyB,
		func(r, a spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: a.A, X: damping * r.X * a.X})
		})
	join.Preserve(1, spinflow.KeyA) // tid passes through the UDF
	join.EstRecords = g.NumEdges()

	base := p.SourceOf("teleport", teleport)
	all := p.UnionNode("contribs", join, base)
	sum := p.ReduceNode("sumRanks", all, spinflow.KeyA,
		func(tid int64, group []spinflow.Record, out spinflow.Emitter) {
			var s float64
			for _, r := range group {
				s += r.X
			}
			out.Emit(spinflow.Record{A: tid, X: s})
		})
	sum.Combinable = true
	sum.EstRecords = g.NumVertices
	o := p.SinkNode("O", sum)

	return spinflow.BulkSpec{Plan: p, Input: ranks, Output: o, FixedIterations: iterations}, initial
}

func main() {
	g := spinflow.LoadDataset(spinflow.DatasetWikipedia, 0.5)
	fmt.Printf("PageRank on %s: %d vertices, %d edges, %d iterations\n",
		g.Name, g.NumVertices, g.NumEdges(), iterations)

	spec, initial := buildPageRank(g)
	start := time.Now()
	res, err := spinflow.RunBulk(spec, initial, spinflow.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged plan executed in %v (%d iterations)\n", time.Since(start), res.Iterations)

	// The rank mass must be conserved (modulo dangling-page leakage).
	var mass float64
	for _, r := range res.Solution {
		mass += r.X
	}
	fmt.Printf("total rank mass: %.4f (leakage from dangling pages: %.4f)\n", mass, math.Abs(1-mass))

	ranks := append([]spinflow.Record(nil), res.Solution...)
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].X > ranks[j].X })
	fmt.Println("top pages:")
	for i := 0; i < 5 && i < len(ranks); i++ {
		fmt.Printf("  page %6d  rank %.6f\n", ranks[i].A, ranks[i].X)
	}

	// Show the optimizer's chosen physical plan (Figure 4): for a web
	// graph the rank vector is small relative to the matrix, so the
	// broadcast plan wins and the matrix is cached on the constant path.
	fmt.Printf("\nchosen physical plan (note cached constant path):\n%s", res.Plan.Explain())
}
