// Pregel on top of incremental iterations — the paper's §7.2 argument
// made executable: "the partial solution holds the state of the vertices,
// the workset holds the messages". This example defines a tiny
// vertex-program interface and compiles it onto the public incremental
// iteration API, then runs Connected Components as a vertex program and
// checks it against an independent implementation.
package main

import (
	"fmt"
	"log"
	"time"

	spinflow "repro"
)

// VertexProgram is a Pregel-style program over int64 vertex state and
// int64 messages, for "propagate my state to neighbors" algorithms.
type VertexProgram struct {
	// Init returns a vertex's initial state.
	Init func(vid int64) int64
	// Fold combines an incoming message into the accumulated value.
	Fold func(acc, msg int64) int64
	// Update merges the folded messages into the state, reporting whether
	// the state changed (changed vertices message all their neighbors).
	Update func(state, folded int64) (int64, bool)
}

// compile lowers a vertex program onto the incremental iteration operator:
// solution set = vertex states, working set = messages, Δ = a
// SolutionCoGroup (receive+update) followed by a Match with the topology
// (send).
func compile(prog VertexProgram, edges []spinflow.Record, numVertices int64) (spinflow.IncrementalSpec, []spinflow.Record, []spinflow.Record) {
	p := spinflow.NewPlan()
	w := p.IterationPlaceholder("messages", int64(len(edges)))

	recv := p.SolutionCoGroupNode("receive", w, spinflow.KeyA,
		func(vid int64, msgs []spinflow.Record, s spinflow.Record, found bool, out spinflow.Emitter) {
			if !found {
				return
			}
			folded := msgs[0].B
			for _, m := range msgs[1:] {
				folded = prog.Fold(folded, m.B)
			}
			if next, changed := prog.Update(s.B, folded); changed {
				out.Emit(spinflow.Record{A: vid, B: next})
			}
		})
	recv.Preserve(0, spinflow.KeyA)
	d := p.SinkNode("D", recv)

	topo := p.SourceOf("topology", edges)
	send := p.MatchNode("send", recv, topo, spinflow.KeyA, spinflow.KeyA,
		func(dr, er spinflow.Record, out spinflow.Emitter) {
			out.Emit(spinflow.Record{A: er.B, B: dr.B})
		})
	w2 := p.SinkNode("W'", send)

	spec := spinflow.IncrementalSpec{
		Plan: p, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: spinflow.KeyA, WorksetKey: spinflow.KeyA,
	}

	s0 := make([]spinflow.Record, numVertices)
	w0 := make([]spinflow.Record, 0, len(edges))
	for i := int64(0); i < numVertices; i++ {
		s0[i] = spinflow.Record{A: i, B: prog.Init(i)}
	}
	// Superstep 0: every vertex messages its initial state to neighbors.
	for _, e := range edges {
		w0 = append(w0, spinflow.Record{A: e.B, B: prog.Init(e.A)})
	}
	return spec, s0, w0
}

func main() {
	g := spinflow.LoadDataset(spinflow.DatasetFOAF, 0.5)
	// Undirected edge records.
	edges := make([]spinflow.Record, 0, 2*len(g.Edges))
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			continue
		}
		edges = append(edges, spinflow.Record{A: e.Src, B: e.Dst}, spinflow.Record{A: e.Dst, B: e.Src})
	}

	// Connected Components as a vertex program.
	cc := VertexProgram{
		Init: func(vid int64) int64 { return vid },
		Fold: func(acc, msg int64) int64 {
			if msg < acc {
				return msg
			}
			return acc
		},
		Update: func(state, folded int64) (int64, bool) {
			if folded < state {
				return folded, true
			}
			return state, false
		},
	}

	spec, s0, w0 := compile(cc, edges, g.NumVertices)
	start := time.Now()
	res, err := spinflow.RunIncremental(spec, s0, w0, spinflow.Config{Parallelism: 4})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Verify against a direct union-find.
	parent := make([]int64, g.NumVertices)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.Src), find(e.Dst)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	mismatches := 0
	comps := map[int64]bool{}
	for _, r := range res.Solution {
		comps[r.B] = true
		if find(r.A) != r.B {
			mismatches++
		}
	}

	fmt.Printf("Pregel-style Connected Components on %s via incremental iterations\n", g.Name)
	fmt.Printf("  %d vertices, %d directed message edges\n", g.NumVertices, len(edges))
	fmt.Printf("  %d supersteps in %v\n", res.Supersteps, elapsed.Round(time.Millisecond))
	fmt.Printf("  %d components, %d mismatches vs union-find\n", len(comps), mismatches)
	if mismatches > 0 {
		log.Fatal("vertex program produced wrong components")
	}
	fmt.Println("  ✓ vertex-program semantics reproduced on the workset abstraction")
}
