// Package pregel is a from-scratch vertex-centric BSP engine in the style
// of Google's Pregel / Apache Giraph — the specialized graph system the
// paper compares against (§6: "Giraph is an implementation of Google's
// Pregel"). Vertices hold mutable state, exchange messages along edges,
// and vote to halt; supersteps are globally synchronized; an optional
// combiner pre-aggregates messages at the sender.
//
// The paper argues incremental iterations subsume this model (§7.2); the
// benchmarks run the same algorithms here and on the dataflow engine.
package pregel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graphgen"
	"repro/internal/metrics"
	"repro/internal/record"
)

// Message is a value sent to a target vertex.
type Message struct {
	Target int64
	I      int64
	F      float64
}

// Vertex is one graph vertex with mutable state.
type Vertex struct {
	ID     int64
	ValueI int64
	ValueF float64
	// Out lists the targets of outgoing edges.
	Out []EdgeTo
	// halted is the vote-to-halt flag; incoming messages clear it.
	halted bool
}

// EdgeTo is an outgoing edge.
type EdgeTo struct {
	Target int64
	Weight float64
}

// Context gives a compute function access to the superstep machinery.
type Context struct {
	worker    *worker
	superstep int
	vertices  int64
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the total vertex count.
func (c *Context) NumVertices() int64 { return c.vertices }

// Send delivers a message to the target vertex in the next superstep.
func (c *Context) Send(m Message) { c.worker.send(m) }

// Aggregate folds a value into the named global aggregator; the combined
// value of superstep i is readable in superstep i+1 (Pregel's aggregator
// mechanism).
func (c *Context) Aggregate(name string, value float64) {
	w := c.worker
	agg, ok := w.job.cfg.Aggregators[name]
	if !ok {
		return
	}
	if prev, seen := w.aggLocal[name]; seen {
		w.aggLocal[name] = agg.Reduce(prev, value)
	} else {
		w.aggLocal[name] = value
	}
}

// AggregatedValue returns the named aggregator's combined value from the
// previous superstep (Init value in superstep 0 or when nothing was
// aggregated).
func (c *Context) AggregatedValue(name string) float64 {
	if v, ok := c.worker.job.aggGlobal[name]; ok {
		return v
	}
	if agg, ok := c.worker.job.cfg.Aggregators[name]; ok {
		return agg.Init
	}
	return 0
}

// Aggregator defines a global per-superstep fold (e.g. sum or min).
type Aggregator struct {
	// Init is the value before any Aggregate call.
	Init float64
	// Reduce combines two partial values; it must be associative and
	// commutative.
	Reduce func(a, b float64) float64
}

// SumAggregator sums contributions.
func SumAggregator() Aggregator {
	return Aggregator{Init: 0, Reduce: func(a, b float64) float64 { return a + b }}
}

// MaxAggregator keeps the maximum contribution.
func MaxAggregator() Aggregator {
	return Aggregator{Init: 0, Reduce: func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}}
}

// ComputeFn is the vertex program, invoked for every active vertex with
// the messages received in the previous superstep. Calling v's VoteToHalt
// deactivates the vertex until a message arrives.
type ComputeFn func(ctx *Context, v *Vertex, msgs []Message)

// VoteToHalt deactivates the vertex until it receives a message.
func (v *Vertex) VoteToHalt() { v.halted = true }

// CombineFn merges two messages for the same target (e.g. min or sum),
// applied sender-side like Pregel combiners.
type CombineFn func(a, b Message) Message

// Config configures a run.
type Config struct {
	// Parallelism is the number of workers (vertex partitions).
	Parallelism int
	// MaxSupersteps bounds the run (default 10000).
	MaxSupersteps int
	// Combiner optionally pre-aggregates messages per target.
	Combiner CombineFn
	// Metrics receives counters (messages = WorksetElements).
	Metrics *metrics.Counters
	// CollectTrace records per-superstep statistics.
	CollectTrace bool
	// Aggregators defines named global per-superstep folds available to
	// compute functions via Context.Aggregate/AggregatedValue.
	Aggregators map[string]Aggregator
}

// Result is the outcome of a run.
type Result struct {
	// Vertices holds the final vertex states, indexed by partition.
	Vertices map[int64]*Vertex
	// Supersteps is the number of executed supersteps.
	Supersteps int
	// Trace holds per-superstep stats when CollectTrace is set.
	Trace metrics.Trace
}

// worker owns one vertex partition.
type worker struct {
	job      *job
	part     int
	verts    map[int64]*Vertex
	inbox    map[int64][]Message // messages for the current superstep
	nextOut  []map[int64][]Message
	aggLocal map[string]float64
}

type job struct {
	cfg       Config
	workers   []*worker
	aggGlobal map[string]float64
}

func (w *worker) send(m Message) {
	if w.job.cfg.Metrics != nil {
		w.job.cfg.Metrics.WorksetElements.Add(1)
	}
	part := record.PartitionOf(m.Target, len(w.job.workers))
	if part != w.part && w.job.cfg.Metrics != nil {
		w.job.cfg.Metrics.RecordsShipped.Add(1)
	}
	box := w.nextOut[part]
	if c := w.job.cfg.Combiner; c != nil {
		if prev, ok := box[m.Target]; ok && len(prev) == 1 {
			box[m.Target] = []Message{c(prev[0], m)}
			return
		}
	}
	box[m.Target] = append(box[m.Target], m)
}

// Run executes a vertex program over the graph until every vertex has
// halted and no messages are in flight (or MaxSupersteps passes).
// init prepares each vertex's initial value.
func Run(g *graphgen.Graph, weights func(graphgen.Edge) float64, init func(*Vertex), compute ComputeFn, cfg Config) (*Result, error) {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 10000
	}
	j := &job{cfg: cfg, workers: make([]*worker, cfg.Parallelism), aggGlobal: make(map[string]float64)}
	for p := range j.workers {
		j.workers[p] = &worker{
			job:   j,
			part:  p,
			verts: make(map[int64]*Vertex),
			inbox: make(map[int64][]Message),
		}
	}
	// Load vertices and edges into their partitions.
	for vid := int64(0); vid < g.NumVertices; vid++ {
		v := &Vertex{ID: vid}
		j.workers[record.PartitionOf(vid, cfg.Parallelism)].verts[vid] = v
	}
	for _, e := range g.Edges {
		w := 1.0
		if weights != nil {
			w = weights(e)
		}
		part := record.PartitionOf(e.Src, cfg.Parallelism)
		v := j.workers[part].verts[e.Src]
		v.Out = append(v.Out, EdgeTo{Target: e.Dst, Weight: w})
	}
	for _, w := range j.workers {
		for _, v := range w.verts {
			init(v)
		}
	}

	res := &Result{Vertices: make(map[int64]*Vertex, g.NumVertices)}
	for step := 0; step < cfg.MaxSupersteps; step++ {
		start := time.Now()
		var before metrics.Snapshot
		if cfg.Metrics != nil {
			before = cfg.Metrics.Snapshot()
		}

		// Compute phase: workers process active vertices in parallel.
		var wg sync.WaitGroup
		anyActive := make([]bool, cfg.Parallelism)
		for _, w := range j.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.nextOut = make([]map[int64][]Message, cfg.Parallelism)
				for p := range w.nextOut {
					w.nextOut[p] = make(map[int64][]Message)
				}
				w.aggLocal = make(map[string]float64)
				ctx := &Context{worker: w, superstep: step, vertices: g.NumVertices}
				for vid, v := range w.verts {
					msgs := w.inbox[vid]
					if len(msgs) > 0 {
						v.halted = false
					}
					if v.halted {
						continue
					}
					anyActive[w.part] = true
					if cfg.Metrics != nil {
						cfg.Metrics.UDFInvocations.Add(1)
						cfg.Metrics.SolutionAccesses.Add(1)
					}
					compute(ctx, v, msgs)
				}
			}(w)
		}
		wg.Wait()
		res.Supersteps = step + 1

		// Combine worker-local aggregator values at the barrier; the
		// result is visible in the next superstep.
		j.aggGlobal = make(map[string]float64)
		for name, agg := range cfg.Aggregators {
			v := agg.Init
			seen := false
			for _, w := range j.workers {
				if lv, ok := w.aggLocal[name]; ok {
					if seen {
						v = agg.Reduce(v, lv)
					} else {
						v, seen = lv, true
					}
				}
			}
			j.aggGlobal[name] = v
		}

		// Barrier + message delivery: route every worker's outboxes.
		delivered := 0
		for _, dst := range j.workers {
			dst.inbox = make(map[int64][]Message)
		}
		for _, src := range j.workers {
			for p, box := range src.nextOut {
				for target, msgs := range box {
					j.workers[p].inbox[target] = append(j.workers[p].inbox[target], msgs...)
					delivered += len(msgs)
				}
			}
		}

		if cfg.CollectTrace {
			st := metrics.IterationStat{Iteration: step, Duration: time.Since(start)}
			if cfg.Metrics != nil {
				st.Work = cfg.Metrics.Snapshot().Sub(before)
			}
			res.Trace.Add(st)
		}

		active := false
		for _, a := range anyActive {
			active = active || a
		}
		if !active && delivered == 0 {
			collect(j, res)
			return res, nil
		}
		if delivered == 0 && !active {
			break
		}
	}
	// Either converged on the last allowed superstep or ran out of budget;
	// callers with fixed-superstep programs (PageRank) land here normally.
	collect(j, res)
	allHalted := true
	for _, w := range j.workers {
		for _, v := range w.verts {
			allHalted = allHalted && v.halted
		}
	}
	if !allHalted {
		return res, fmt.Errorf("pregel: not converged after %d supersteps", cfg.MaxSupersteps)
	}
	return res, nil
}

func collect(j *job, res *Result) {
	for _, w := range j.workers {
		for vid, v := range w.verts {
			res.Vertices[vid] = v
		}
	}
}
