package pregel

import (
	"math"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/metrics"
)

func refPageRank(g *graphgen.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices
	outdeg := make([]int64, n)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		next := make([]float64, n)
		for i := range next {
			next[i] = (1 - damping) / float64(n)
		}
		for _, e := range g.Edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outdeg[e.Src])
		}
		rank = next
	}
	return rank
}

func refCC(g *graphgen.Graph) map[int64]int64 {
	parent := make([]int64, g.NumVertices)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.Src), find(e.Dst)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := make(map[int64]int64)
	for i := int64(0); i < g.NumVertices; i++ {
		out[i] = find(i)
	}
	return out
}

func TestPageRankMatchesReference(t *testing.T) {
	for _, par := range []int{1, 4} {
		g := graphgen.Uniform("pr", 120, 900, 13)
		got, res, err := PageRank(g, 12, 0.85, Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if res.Supersteps != 13 { // n compute supersteps + final halt pass
			t.Errorf("par=%d: supersteps=%d", par, res.Supersteps)
		}
		want := refPageRank(g, 12, 0.85)
		for v := int64(0); v < g.NumVertices; v++ {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("par=%d vertex %d: %g want %g", par, v, got[v], want[v])
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	for _, par := range []int{1, 3} {
		g := graphgen.Load(graphgen.DSFOAF, graphgen.ScaleTiny)
		want := refCC(g.Undirected())
		got, res, err := ConnectedComponents(g, Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < g.NumVertices; v++ {
			if got[v] != want[v] {
				t.Fatalf("par=%d vertex %d: %d want %d", par, v, got[v], want[v])
			}
		}
		if res.Supersteps < 2 {
			t.Errorf("converged suspiciously fast: %d supersteps", res.Supersteps)
		}
	}
}

func TestCCMessagesDecay(t *testing.T) {
	// Pregel exploits sparse dependencies: late supersteps move far fewer
	// messages than early ones (the Giraph curve of Figure 11).
	g := graphgen.FOAF(graphgen.ScaleTiny)
	var m metrics.Counters
	_, res, err := ConnectedComponents(g, Config{Parallelism: 2, Metrics: &m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumIterations() < 3 {
		t.Skip("too few supersteps")
	}
	first := res.Trace.Iterations[1].Work.WorksetElements
	last := res.Trace.Iterations[res.Trace.NumIterations()-1].Work.WorksetElements
	if last > first/2 {
		t.Errorf("messages did not decay: first=%d last=%d", first, last)
	}
}

func TestSSSP(t *testing.T) {
	g := &graphgen.Graph{NumVertices: 4, Edges: []graphgen.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 1},
	}}
	weights := func(e graphgen.Edge) float64 {
		if e.Src == 0 && e.Dst == 1 {
			return 10
		}
		return 1
	}
	got, _, err := SSSP(g, weights, 0, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 3 {
		t.Errorf("dist(1) = %g, want 3", got[1])
	}
	if _, reached := got[3]; !reached || got[3] != 2 {
		t.Errorf("dist(3) = %g, want 2", got[3])
	}
}

func TestMessagesCounted(t *testing.T) {
	g := graphgen.Hollywood(graphgen.ScaleTiny)
	var m metrics.Counters
	if _, _, err := ConnectedComponents(g, Config{Parallelism: 2, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.WorksetElements == 0 {
		t.Error("no messages counted")
	}
	if s.RecordsShipped == 0 {
		t.Error("no cross-partition messages counted")
	}
	if s.RecordsShipped > s.WorksetElements {
		t.Error("shipped more messages than were sent")
	}
}

func TestHaltWithoutMessagesTerminates(t *testing.T) {
	g := &graphgen.Graph{NumVertices: 3} // no edges at all
	got, res, err := ConnectedComponents(g, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps > 2 {
		t.Errorf("edgeless graph took %d supersteps", res.Supersteps)
	}
	for v := int64(0); v < 3; v++ {
		if got[v] != v {
			t.Errorf("vertex %d: %d", v, got[v])
		}
	}
}

func TestAggregatorConvergenceDetection(t *testing.T) {
	// PageRank with an L1-delta aggregator: vertices halt when the total
	// rank movement of the previous superstep drops below epsilon.
	g := graphgen.Uniform("agg", 100, 600, 21)
	n := float64(g.NumVertices)
	const damping, epsilon = 0.85, 1e-9
	cfg := Config{
		Parallelism: 3,
		Aggregators: map[string]Aggregator{"delta": SumAggregator()},
		Combiner: func(a, b Message) Message {
			return Message{Target: a.Target, F: a.F + b.F}
		},
		MaxSupersteps: 500,
	}
	init := func(v *Vertex) { v.ValueF = 1 / n }
	compute := func(ctx *Context, v *Vertex, msgs []Message) {
		if ctx.Superstep() > 0 {
			var sum float64
			for _, m := range msgs {
				sum += m.F
			}
			next := (1-damping)/n + damping*sum
			ctx.Aggregate("delta", math.Abs(next-v.ValueF))
			v.ValueF = next
		}
		if ctx.Superstep() > 1 && ctx.AggregatedValue("delta") < epsilon {
			v.VoteToHalt()
			return
		}
		if len(v.Out) > 0 {
			share := v.ValueF / float64(len(v.Out))
			for _, e := range v.Out {
				ctx.Send(Message{Target: e.Target, F: share})
			}
		}
	}
	res, err := Run(g, nil, init, compute, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps < 5 || res.Supersteps >= 500 {
		t.Errorf("aggregator-driven termination after %d supersteps", res.Supersteps)
	}
	// The converged ranks must match a long power iteration.
	want := refPageRank(g, 200, damping)
	for vid, v := range res.Vertices {
		if math.Abs(v.ValueF-want[vid]) > 1e-6 {
			t.Fatalf("vertex %d: %g want %g", vid, v.ValueF, want[vid])
		}
	}
}

func TestAggregatorUnknownNameIgnored(t *testing.T) {
	g := &graphgen.Graph{NumVertices: 2, Edges: []graphgen.Edge{{Src: 0, Dst: 1}}}
	compute := func(ctx *Context, v *Vertex, msgs []Message) {
		ctx.Aggregate("nope", 1)
		if ctx.AggregatedValue("nope") != 0 {
			t.Error("unknown aggregator should read as zero")
		}
		v.VoteToHalt()
	}
	if _, err := Run(g, nil, func(v *Vertex) {}, compute, Config{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAggregator(t *testing.T) {
	a := MaxAggregator()
	if a.Reduce(3, 7) != 7 || a.Reduce(7, 3) != 7 {
		t.Error("max aggregator broken")
	}
}
