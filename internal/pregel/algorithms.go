package pregel

import (
	"repro/internal/graphgen"
)

// PageRank is the canonical Pregel PageRank (the example in the Pregel
// paper, used by Giraph in §6.1): run a fixed number of supersteps; each
// superstep a vertex sums incoming rank mass, applies the damping, and
// sends rank/outdeg to its targets.
func PageRank(g *graphgen.Graph, iterations int, damping float64, cfg Config) (map[int64]float64, *Result, error) {
	n := float64(g.NumVertices)
	if cfg.Combiner == nil {
		cfg.Combiner = func(a, b Message) Message {
			return Message{Target: a.Target, F: a.F + b.F}
		}
	}
	cfg.MaxSupersteps = iterations + 1
	init := func(v *Vertex) { v.ValueF = 1 / n }
	compute := func(ctx *Context, v *Vertex, msgs []Message) {
		if ctx.Superstep() > 0 {
			var sum float64
			for _, m := range msgs {
				sum += m.F
			}
			v.ValueF = (1-damping)/n + damping*sum
		}
		if ctx.Superstep() < iterations {
			if len(v.Out) > 0 {
				share := v.ValueF / float64(len(v.Out))
				for _, e := range v.Out {
					ctx.Send(Message{Target: e.Target, F: share})
				}
			}
		} else {
			v.VoteToHalt()
		}
	}
	res, err := Run(g, nil, init, compute, cfg)
	if err != nil {
		return nil, nil, err
	}
	ranks := make(map[int64]float64, len(res.Vertices))
	for vid, v := range res.Vertices {
		ranks[vid] = v.ValueF
	}
	return ranks, res, nil
}

// ConnectedComponents is min-label propagation: every vertex keeps the
// smallest component id seen and forwards improvements to its neighbors —
// Pregel's mutable vertex state plus message-driven activation is exactly
// the sparse-dependency exploitation of §6.2. The graph must be
// undirected (call Undirected first for directed inputs).
func ConnectedComponents(g *graphgen.Graph, cfg Config) (map[int64]int64, *Result, error) {
	if cfg.Combiner == nil {
		cfg.Combiner = func(a, b Message) Message {
			if b.I < a.I {
				return b
			}
			return a
		}
	}
	init := func(v *Vertex) { v.ValueI = v.ID }
	compute := func(ctx *Context, v *Vertex, msgs []Message) {
		improved := ctx.Superstep() == 0
		for _, m := range msgs {
			if m.I < v.ValueI {
				v.ValueI = m.I
				improved = true
			}
		}
		if improved {
			for _, e := range v.Out {
				ctx.Send(Message{Target: e.Target, I: v.ValueI})
			}
		}
		v.VoteToHalt()
	}
	res, err := Run(g.Undirected(), nil, init, compute, cfg)
	if err != nil {
		return nil, nil, err
	}
	comps := make(map[int64]int64, len(res.Vertices))
	for vid, v := range res.Vertices {
		comps[vid] = v.ValueI
	}
	return comps, res, nil
}

// SSSP is the Pregel single-source shortest paths: distance relaxation by
// message passing over weighted edges.
func SSSP(g *graphgen.Graph, weights func(graphgen.Edge) float64, source int64, cfg Config) (map[int64]float64, *Result, error) {
	const unreached = -1
	if cfg.Combiner == nil {
		cfg.Combiner = func(a, b Message) Message {
			if b.F < a.F {
				return b
			}
			return a
		}
	}
	init := func(v *Vertex) {
		v.ValueF = unreached
	}
	compute := func(ctx *Context, v *Vertex, msgs []Message) {
		improved := false
		if ctx.Superstep() == 0 && v.ID == source {
			v.ValueF = 0
			improved = true
		}
		for _, m := range msgs {
			if v.ValueF == unreached || m.F < v.ValueF {
				v.ValueF = m.F
				improved = true
			}
		}
		if improved {
			for _, e := range v.Out {
				ctx.Send(Message{Target: e.Target, F: v.ValueF + e.Weight})
			}
		}
		v.VoteToHalt()
	}
	res, err := Run(g, weights, init, compute, cfg)
	if err != nil {
		return nil, nil, err
	}
	dists := make(map[int64]float64, len(res.Vertices))
	for vid, v := range res.Vertices {
		if v.ValueF != unreached {
			dists[vid] = v.ValueF
		}
	}
	return dists, res, nil
}
