package runtime

import (
	"os"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/optimizer"
	"repro/internal/record"
)

func TestSpillFileRoundTrip(t *testing.T) {
	batches := []record.Batch{
		{{A: 1, X: 1.5}, {A: 2}},
		{{A: 3, B: -7, Tag: 9}},
	}
	sf, err := spillBatches(batches)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.remove()
	var got []record.Record
	if err := sf.replay(func(b record.Batch) { got = append(got, b...) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	if !got[2].Equal(batches[1][0]) {
		t.Errorf("record mismatch: %v", got[2])
	}
	if sf.bytes == 0 {
		t.Error("spill file reports zero bytes")
	}
}

func TestSpillFileRemove(t *testing.T) {
	sf, err := spillBatches([]record.Batch{{{A: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	sf.remove()
	if _, err := os.Stat(sf.path); !os.IsNotExist(err) {
		t.Error("spill file not removed")
	}
}

func TestCacheAccountant(t *testing.T) {
	a := &cacheAccountant{budget: 100}
	if !a.admit(60) || !a.admit(40) {
		t.Fatal("within-budget admits failed")
	}
	if a.admit(1) {
		t.Fatal("over-budget admit succeeded")
	}
	a.release(40)
	if !a.admit(30) {
		t.Fatal("admit after release failed")
	}
	unlimited := &cacheAccountant{}
	if !unlimited.admit(1 << 40) {
		t.Fatal("unlimited accountant refused")
	}
}

// iterativeJoinPlan builds a plan whose constant input is cached as a
// stream (feeding a Union on the dynamic path), so the cache budget
// applies.
func iterativeJoinPlan(constRecs []record.Record) (*dataflow.Plan, *dataflow.Node, *dataflow.Node) {
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("I", 4)
	c := p.SourceOf("const", constRecs)
	u := p.UnionNode("u", w, c)
	sink := p.SinkNode("out", u)
	return p, w, sink
}

func runCachedTwice(t *testing.T, budget int64) (*Executor, []record.Record) {
	t.Helper()
	constRecs := make([]record.Record, 1000)
	for i := range constRecs {
		constRecs[i] = record.Record{A: int64(i)}
	}
	p, w, sink := iterativeJoinPlan(constRecs)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 2, ExpectedIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(Config{CacheBudget: budget})
	e.SetPlaceholder(w.ID, []record.Record{{A: -1}}, nil, 2)
	var last []record.Record
	for pass := 0; pass < 3; pass++ {
		res, err := e.Run(phys)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Records(sink.ID)
	}
	return e, last
}

func TestCacheSpillsUnderPressure(t *testing.T) {
	// A 1000-record constant input far exceeds a 1 KiB budget: the cache
	// must spill yet produce identical results on every pass.
	eSpill, gotSpill := runCachedTwice(t, 1024)
	defer eSpill.Close()
	if eSpill.SpilledBytes() == 0 {
		t.Fatal("cache did not spill under a tiny budget")
	}
	eMem, gotMem := runCachedTwice(t, 0)
	defer eMem.Close()
	if eMem.SpilledBytes() != 0 {
		t.Fatal("unlimited budget spilled")
	}
	if len(gotSpill) != len(gotMem) || len(gotSpill) != 1001 {
		t.Fatalf("spilled run lost records: %d vs %d", len(gotSpill), len(gotMem))
	}
}

func TestCloseRemovesSpillFiles(t *testing.T) {
	e, _ := runCachedTwice(t, 1024)
	var paths []string
	for _, s := range e.slots {
		if s.spill != nil {
			paths = append(paths, s.spill.path)
		}
	}
	if len(paths) == 0 {
		t.Fatal("no spill files to check")
	}
	e.Close()
	for _, p := range paths {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("spill file %s survived Close", p)
		}
	}
}
