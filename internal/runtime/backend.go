package runtime

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/record"
)

// SolutionBackend is the storage engine behind a SolutionSet: a keyed
// record index split into partitions by record.PartitionOf. The backend
// stores and retrieves records; key extraction, comparator arbitration and
// partition routing stay in SolutionSet. Implementations must allow
// concurrent calls on *distinct* partitions; SolutionSet serializes all
// access within one partition through its sharded locks, so a backend only
// needs internal synchronization for state shared across partitions (the
// spill backend's residency accounting, for example).
type SolutionBackend interface {
	// Lookup probes partition part for key k.
	Lookup(part int, k int64) (record.Record, bool)
	// Store inserts or overwrites the record under key k in partition part.
	Store(part int, k int64, r record.Record)
	// Delete removes the record under key k from partition part, reporting
	// whether an entry existed. Live maintenance uses it when vertices
	// leave the graph and when bounded recomputes retract state.
	Delete(part int, k int64) bool
	// Len returns the number of records in partition part.
	Len(part int) int
	// Each visits every record of partition part (order unspecified). It
	// must not force a spilled partition back into memory.
	Each(part int, f func(record.Record))
	// Reset drops all records, retaining allocated capacity where the
	// implementation supports generational reuse.
	Reset()
	// Bytes estimates the resident in-memory footprint (serialized-form
	// accounting, record.EncodedSize per record, matching the cache
	// accountant's convention).
	Bytes() int64
}

// SolutionBackendKind names a SolutionBackend implementation.
type SolutionBackendKind string

// The available solution-set backends.
const (
	// SolutionDefault resolves to SolutionCompact (or SolutionSpill when a
	// memory budget is set).
	SolutionDefault SolutionBackendKind = ""
	// SolutionMap is the boxed Go-map backend (the original
	// implementation, kept as the differential baseline).
	SolutionMap SolutionBackendKind = "map"
	// SolutionCompact is the open-addressing index over flat record slabs:
	// no per-entry map boxing, linear-probe lookups, slab reuse across
	// generations via Reset.
	SolutionCompact SolutionBackendKind = "compact"
	// SolutionSpill wraps the compact index with a memory budget: cold
	// partitions are evicted to disk in record.EncodeBatch form and
	// reloaded on access (§4.3's gradual spilling, applied to the solution
	// set).
	SolutionSpill SolutionBackendKind = "spill"
)

// SolutionOptions selects and configures a solution-set backend.
type SolutionOptions struct {
	// Backend picks the implementation (default: compact; spill when
	// MemoryBudget is set).
	Backend SolutionBackendKind
	// MemoryBudget bounds the resident bytes of the solution set
	// (serialized-form estimate). A positive budget implies the spill
	// backend. The budget is best-effort: the partition currently being
	// accessed always stays resident.
	MemoryBudget int64
}

// --- map backend ---------------------------------------------------------

// mapBackend stores each partition as a plain Go map — one boxed hash
// entry per record. It is the seed implementation, retained as the
// reference the compact and spill backends are differential-tested
// against.
type mapBackend struct {
	parts []map[int64]record.Record
	bytes atomic.Int64
}

func newMapBackend(parallelism int) *mapBackend {
	b := &mapBackend{parts: make([]map[int64]record.Record, parallelism)}
	for i := range b.parts {
		b.parts[i] = make(map[int64]record.Record)
	}
	return b
}

func (b *mapBackend) Lookup(part int, k int64) (record.Record, bool) {
	r, ok := b.parts[part][k]
	return r, ok
}

func (b *mapBackend) Store(part int, k int64, r record.Record) {
	if _, exists := b.parts[part][k]; !exists {
		b.bytes.Add(record.EncodedSize)
	}
	b.parts[part][k] = r
}

func (b *mapBackend) Delete(part int, k int64) bool {
	if _, exists := b.parts[part][k]; !exists {
		return false
	}
	delete(b.parts[part], k)
	b.bytes.Add(-record.EncodedSize)
	return true
}

func (b *mapBackend) Len(part int) int { return len(b.parts[part]) }

func (b *mapBackend) Each(part int, f func(record.Record)) {
	for _, r := range b.parts[part] {
		f(r)
	}
}

func (b *mapBackend) Reset() {
	for i := range b.parts {
		clear(b.parts[i])
	}
	b.bytes.Store(0)
}

func (b *mapBackend) Bytes() int64 { return b.bytes.Load() }

// --- compact backend -----------------------------------------------------

// compactIndex is one partition of the compact backend: an open-addressing
// probe table over flat slabs. slots holds positions into the keys/recs
// slabs (-1 = empty, -2 = tombstone left by a delete); records are
// appended to recs and updated in place, so iteration order is insertion
// order and a lookup is a linear probe from Hash64(k) with no per-entry
// heap objects. Slabs are retained across reset(), giving steady-state
// generations allocation-free rebuilds. Deletes swap-remove from the slabs
// and leave a tombstone in the probe table; tombstones are recycled by
// inserts and swept by a same-size rehash when they pile up.
type compactIndex struct {
	slots []int32 // power-of-two table; -1 empty, -2 tombstone, else index into recs
	keys  []int64
	recs  []record.Record
	tombs int // tombstone count in slots
}

const compactMaxLoadNum, compactMaxLoadDen = 3, 4 // grow beyond 75% load

const (
	compactEmpty     = -1
	compactTombstone = -2
)

// reserve sizes the probe table for at least n records.
func (c *compactIndex) reserve(n int) {
	need := 8
	for need*compactMaxLoadNum/compactMaxLoadDen <= n {
		need *= 2
	}
	if need <= len(c.slots) {
		return
	}
	c.rehash(need)
	if cap(c.recs) < n {
		recs := make([]record.Record, len(c.recs), n)
		copy(recs, c.recs)
		c.recs = recs
		keys := make([]int64, len(c.keys), n)
		copy(keys, c.keys)
		c.keys = keys
	}
}

// rehash rebuilds the probe table at the given power-of-two size. Rebuilt
// tables have no tombstones.
func (c *compactIndex) rehash(size int) {
	if cap(c.slots) >= size {
		c.slots = c.slots[:size]
	} else {
		c.slots = make([]int32, size)
	}
	c.tombs = 0
	for i := range c.slots {
		c.slots[i] = compactEmpty
	}
	mask := uint64(size - 1)
	for i, k := range c.keys {
		j := record.Hash64(k) & mask
		for c.slots[j] >= 0 {
			j = (j + 1) & mask
		}
		c.slots[j] = int32(i)
	}
}

func (c *compactIndex) lookup(k int64) (record.Record, bool) {
	if len(c.slots) == 0 {
		return record.Record{}, false
	}
	mask := uint64(len(c.slots) - 1)
	j := record.Hash64(k) & mask
	for {
		s := c.slots[j]
		if s == compactEmpty {
			return record.Record{}, false
		}
		if s >= 0 && c.keys[s] == k {
			return c.recs[s], true
		}
		j = (j + 1) & mask
	}
}

// store inserts or overwrites; it reports whether a new key was inserted.
// Tombstoned slots are recycled for new keys, but probing continues past
// them so an existing key further down its chain is still found.
func (c *compactIndex) store(k int64, r record.Record) bool {
	if len(c.slots) == 0 || (len(c.recs)+c.tombs+1)*compactMaxLoadDen > len(c.slots)*compactMaxLoadNum {
		size := len(c.slots) * 2
		if size < 8 {
			size = 8
		}
		c.rehash(size)
	}
	mask := uint64(len(c.slots) - 1)
	j := record.Hash64(k) & mask
	reuse := -1 // first tombstone on the probe path, reusable on insert
	for {
		s := c.slots[j]
		if s == compactEmpty {
			if reuse >= 0 {
				j = uint64(reuse)
				c.tombs--
			}
			c.slots[j] = int32(len(c.recs))
			c.keys = append(c.keys, k)
			c.recs = append(c.recs, r)
			return true
		}
		if s == compactTombstone {
			if reuse < 0 {
				reuse = int(j)
			}
		} else if c.keys[s] == k {
			c.recs[s] = r
			return false
		}
		j = (j + 1) & mask
	}
}

// delete removes key k, reporting whether it was present. The record is
// swap-removed from the slabs (the last record fills the hole) and the
// vacated probe slot becomes a tombstone; when tombstones exceed a quarter
// of the table a same-size rehash sweeps them out.
func (c *compactIndex) delete(k int64) bool {
	if len(c.slots) == 0 {
		return false
	}
	mask := uint64(len(c.slots) - 1)
	j := record.Hash64(k) & mask
	for {
		s := c.slots[j]
		if s == compactEmpty {
			return false
		}
		if s >= 0 && c.keys[s] == k {
			last := len(c.recs) - 1
			if int(s) != last {
				// Move the last slab entry into the hole and repoint the
				// probe slot that referenced it (keys are unique, so the
				// probe from its hash finds exactly one slot holding last).
				lk := c.keys[last]
				jj := record.Hash64(lk) & mask
				for c.slots[jj] != int32(last) {
					jj = (jj + 1) & mask
				}
				c.slots[jj] = s
				c.keys[s] = lk
				c.recs[s] = c.recs[last]
			}
			c.keys = c.keys[:last]
			c.recs = c.recs[:last]
			c.slots[j] = compactTombstone
			c.tombs++
			if c.tombs*4 > len(c.slots) {
				c.rehash(len(c.slots))
			}
			return true
		}
		j = (j + 1) & mask
	}
}

// reset empties the index, keeping the slabs for the next generation.
func (c *compactIndex) reset() {
	c.keys = c.keys[:0]
	c.recs = c.recs[:0]
	c.tombs = 0
	for i := range c.slots {
		c.slots[i] = compactEmpty
	}
}

// release drops the slabs entirely (used by the spill backend so an
// evicted partition actually returns its memory).
func (c *compactIndex) release() { *c = compactIndex{} }

func (c *compactIndex) bytes() int64 {
	return int64(len(c.recs)) * record.EncodedSize
}

// compactBackend is one compactIndex per partition.
type compactBackend struct {
	parts []compactIndex
	bytes atomic.Int64
}

func newCompactBackend(parallelism int) *compactBackend {
	return &compactBackend{parts: make([]compactIndex, parallelism)}
}

func (b *compactBackend) Lookup(part int, k int64) (record.Record, bool) {
	return b.parts[part].lookup(k)
}

func (b *compactBackend) Store(part int, k int64, r record.Record) {
	if b.parts[part].store(k, r) {
		b.bytes.Add(record.EncodedSize)
	}
}

func (b *compactBackend) Delete(part int, k int64) bool {
	if !b.parts[part].delete(k) {
		return false
	}
	b.bytes.Add(-record.EncodedSize)
	return true
}

func (b *compactBackend) Len(part int) int { return len(b.parts[part].recs) }

func (b *compactBackend) Each(part int, f func(record.Record)) {
	for _, r := range b.parts[part].recs {
		f(r)
	}
}

func (b *compactBackend) Reset() {
	for i := range b.parts {
		b.parts[i].reset()
	}
	b.bytes.Store(0)
}

func (b *compactBackend) Bytes() int64 { return b.bytes.Load() }

// Reserve pre-sizes one partition's slabs for n records (bulk Init).
func (b *compactBackend) Reserve(part, n int) { b.parts[part].reserve(n) }

// --- spill backend -------------------------------------------------------

// spillChunk bounds the batch size of solution spill files so replay
// streams in fixed-size steps.
const spillChunk = 1024

// spillPart is one partition of the spill backend: resident (idx live,
// file nil) or evicted (idx released, records in file). count stays valid
// in both states.
type spillPart struct {
	idx     compactIndex
	file    *spillFile
	count   int
	lastUse uint64
}

// spillBackend enforces a memory budget over compact partitions by
// evicting the least-recently-used partitions to disk in
// record.EncodeBatch form. All methods take one internal mutex: residency
// accounting and cross-partition eviction are inherently global, and the
// out-of-core backend trades lock granularity for bounded memory. (The
// in-memory backends keep the lock-free-per-partition fast path.)
type spillBackend struct {
	mu       sync.Mutex
	key      record.KeyFunc
	budget   int64
	m        *metrics.Counters
	parts    []spillPart
	clock    uint64
	resident int64
}

func newSpillBackend(parallelism int, key record.KeyFunc, budget int64, m *metrics.Counters) *spillBackend {
	return &spillBackend{
		key:    key,
		budget: budget,
		m:      m,
		parts:  make([]spillPart, parallelism),
	}
}

// ensure makes partition part resident, replaying its spill file if it was
// evicted. Caller holds mu.
func (b *spillBackend) ensure(part int) {
	p := &b.parts[part]
	b.clock++
	p.lastUse = b.clock
	if p.file == nil {
		return
	}
	p.idx.reserve(p.count)
	err := p.file.replay(func(batch record.Batch) {
		for _, r := range batch {
			p.idx.store(b.key(r), r)
		}
	})
	if err != nil {
		// A lost spill file loses records; surface loudly. The runtime's
		// task wrapper converts panics into run errors.
		panic("runtime: solution spill replay: " + err.Error())
	}
	p.file.remove()
	p.file = nil
	b.resident += p.idx.bytes()
	if b.m != nil {
		b.m.SolutionReloads.Add(1)
	}
	b.enforceBudget(part)
}

// enforceBudget evicts LRU resident partitions (never keep) until the
// resident estimate fits the budget. Caller holds mu.
func (b *spillBackend) enforceBudget(keep int) {
	for b.resident > b.budget {
		victim := -1
		for i := range b.parts {
			p := &b.parts[i]
			if i == keep || p.file != nil || len(p.idx.recs) == 0 {
				continue
			}
			if victim < 0 || p.lastUse < b.parts[victim].lastUse {
				victim = i
			}
		}
		if victim < 0 {
			return // only the active partition is left; budget is best-effort
		}
		if !b.evict(victim) {
			// Spill failed (disk full, unwritable tempdir): stay resident
			// over budget rather than re-selecting the same victim forever.
			return
		}
	}
}

// evict writes partition part to a spill file and releases its slabs,
// reporting success. Caller holds mu.
func (b *spillBackend) evict(part int) bool {
	p := &b.parts[part]
	recs := p.idx.recs
	batches := make([]record.Batch, 0, (len(recs)+spillChunk-1)/spillChunk)
	for lo := 0; lo < len(recs); lo += spillChunk {
		hi := lo + spillChunk
		if hi > len(recs) {
			hi = len(recs)
		}
		batches = append(batches, recs[lo:hi])
	}
	sf, err := spillBatches(batches)
	if err != nil {
		return false // spilling is an optimization; keep the partition
	}
	b.resident -= p.idx.bytes()
	p.count = len(recs)
	p.idx.release()
	p.file = sf
	if b.m != nil {
		b.m.SolutionSpills.Add(1)
	}
	return true
}

func (b *spillBackend) Lookup(part int, k int64) (record.Record, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(part)
	return b.parts[part].idx.lookup(k)
}

func (b *spillBackend) Store(part int, k int64, r record.Record) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(part)
	p := &b.parts[part]
	if p.idx.store(k, r) {
		p.count++
		b.resident += record.EncodedSize
		b.enforceBudget(part)
	}
}

func (b *spillBackend) Delete(part int, k int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure(part)
	p := &b.parts[part]
	if !p.idx.delete(k) {
		return false
	}
	p.count = len(p.idx.recs)
	b.resident -= record.EncodedSize
	return true
}

func (b *spillBackend) Len(part int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := &b.parts[part]
	if p.file != nil {
		return p.count
	}
	return len(p.idx.recs)
}

// Each streams an evicted partition straight from its spill file, so a
// full Snapshot never forces the set over budget.
func (b *spillBackend) Each(part int, f func(record.Record)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := &b.parts[part]
	if p.file != nil {
		if err := p.file.replay(func(batch record.Batch) {
			for _, r := range batch {
				f(r)
			}
		}); err != nil {
			panic("runtime: solution spill replay: " + err.Error())
		}
		return
	}
	for _, r := range p.idx.recs {
		f(r)
	}
}

func (b *spillBackend) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.parts {
		p := &b.parts[i]
		if p.file != nil {
			p.file.remove()
			p.file = nil
		}
		p.idx.reset()
		p.count = 0
	}
	b.resident = 0
}

func (b *spillBackend) Bytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.resident
}

// newSolutionBackend resolves SolutionOptions to a backend instance. A
// positive MemoryBudget always selects the spill backend — the budget is
// the contract the caller configured, so it is never silently dropped,
// even when Backend names an in-memory kind. Unknown kinds resolve to the
// compact default.
func newSolutionBackend(parallelism int, key record.KeyFunc, m *metrics.Counters, opts SolutionOptions) SolutionBackend {
	if opts.MemoryBudget > 0 {
		return newSpillBackend(parallelism, key, opts.MemoryBudget, m)
	}
	switch opts.Backend {
	case SolutionMap:
		return newMapBackend(parallelism)
	case SolutionSpill:
		// Spill backend without a budget: effectively unlimited, never
		// evicts, but keeps the spill code path live.
		return newSpillBackend(parallelism, key, 1<<62, m)
	default:
		return newCompactBackend(parallelism)
	}
}
