package runtime

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Tests exercising the executor paths that the higher layers normally
// drive: cached inputs in every representation, forced local strategies,
// the stateful solution operators, and placeholder plumbing.

func optimizeOrDie(t *testing.T, p *dataflow.Plan, opt optimizer.Options) *optimizer.PhysPlan {
	t.Helper()
	phys, err := optimizer.Optimize(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return phys
}

func TestSortAggForced(t *testing.T) {
	p := dataflow.NewPlan()
	src := p.SourceOf("s", []record.Record{{A: 2, X: 1}, {A: 1, X: 2}, {A: 2, X: 3}})
	red := p.ReduceNode("sum", src, record.KeyA,
		func(k int64, g []record.Record, out dataflow.Emitter) {
			var s float64
			for _, r := range g {
				s += r.X
			}
			out.Emit(record.Record{A: k, X: s})
		})
	sink := p.SinkNode("o", red)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 2})
	for _, n := range phys.Nodes {
		if n.Logical.Contract == dataflow.ReduceOp {
			n.Local = optimizer.LocalSortAgg
			n.SortKey = record.KeyA
		}
	}
	e := NewExecutor(Config{})
	res, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	got := sorted(res.Records(sink.ID))
	if len(got) != 2 || got[0].X != 2 || got[1].X != 4 {
		t.Fatalf("sort-agg wrong: %v", got)
	}
}

// cachedJoinPlan joins a dynamic placeholder with a constant source so
// the constant side is cached across runs.
func cachedJoinPlan(constRecs []record.Record) (*dataflow.Plan, *dataflow.Node, *dataflow.Node, *dataflow.Node) {
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 4)
	c := p.SourceOf("const", constRecs)
	j := p.MatchNode("j", w, c, record.KeyA, record.KeyA,
		func(l, r record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: l.A, B: r.B})
		})
	sink := p.SinkNode("o", j)
	return p, w, j.Inputs[1], sink
}

func TestCachedHashTableReused(t *testing.T) {
	constRecs := []record.Record{{A: 1, B: 10}, {A: 2, B: 20}}
	p, w, _, sink := cachedJoinPlan(constRecs)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 2, ExpectedIterations: 5})
	e := NewExecutor(Config{})
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}, {A: 2}}, record.KeyA, 2)
	for pass := 0; pass < 3; pass++ {
		res, err := e.Run(phys)
		if err != nil {
			t.Fatal(err)
		}
		got := sorted(res.Records(sink.ID))
		if len(got) != 2 || got[0].B != 10 || got[1].B != 20 {
			t.Fatalf("pass %d: %v", pass, got)
		}
	}
}

func TestCachedSortMergeJoin(t *testing.T) {
	constRecs := []record.Record{{A: 2, B: 20}, {A: 1, B: 10}}
	p, w, _, sink := cachedJoinPlan(constRecs)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 2, ExpectedIterations: 5})
	for _, n := range phys.Nodes {
		if n.Logical.Contract == dataflow.MatchOp {
			n.Local = optimizer.LocalSortMergeJoin
			n.SortKey = record.KeyA
		}
	}
	e := NewExecutor(Config{})
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}, {A: 2}}, record.KeyA, 2)
	for pass := 0; pass < 2; pass++ {
		res, err := e.Run(phys)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Records(sink.ID); len(got) != 2 {
			t.Fatalf("pass %d: %v", pass, got)
		}
	}
}

func TestSolutionOperatorsThroughExecutor(t *testing.T) {
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 4)
	sj := p.SolutionJoinNode("sj", w, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {
			if found {
				out.Emit(record.Record{A: c.A, B: s.B + c.B})
			}
		})
	sj.Preserve(0, record.KeyA)
	scg := p.SolutionCoGroupNode("scg", sj, record.KeyA,
		func(k int64, ws []record.Record, s record.Record, found bool, out dataflow.Emitter) {
			out.Emit(record.Record{A: k, B: int64(len(ws))})
		})
	sink := p.SinkNode("o", scg)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 2})

	e := NewExecutor(Config{})
	e.Solution = NewSolutionSet(2, record.KeyA, nil, nil)
	e.Solution.Init([]record.Record{{A: 1, B: 100}, {A: 2, B: 200}})
	e.SetPlaceholder(w.ID, []record.Record{{A: 1, B: 1}, {A: 2, B: 2}, {A: 3, B: 3}}, record.KeyA, 2)
	res, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	got := sorted(res.Records(sink.ID))
	// Key 3 is not in the solution: dropped by the join; keys 1 and 2
	// produce one grouped record each.
	if len(got) != 2 || got[0].B != 1 || got[1].B != 1 {
		t.Fatalf("solution pipeline: %v", got)
	}
}

func TestSolutionOperatorsRequireSolutionSet(t *testing.T) {
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 1)
	sj := p.SolutionJoinNode("sj", w, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {})
	p.SinkNode("o", sj)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 1})
	e := NewExecutor(Config{})
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}}, record.KeyA, 1)
	if _, err := e.Run(phys); err == nil {
		t.Fatal("solution join without a solution set must fail")
	}
}

func TestDirectMergePrunesStaleDeltas(t *testing.T) {
	// With DirectMerge, the second identical candidate in one superstep
	// must be swallowed.
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 2)
	sj := p.SolutionJoinNode("sj", w, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {
			if found && c.B < s.B {
				out.Emit(record.Record{A: c.A, B: c.B})
			}
		})
	sj.Preserve(0, record.KeyA)
	sink := p.SinkNode("D", sj)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 1})

	cmp := func(a, b record.Record) int {
		switch {
		case a.B < b.B:
			return 1
		case a.B > b.B:
			return -1
		}
		return 0
	}
	e := NewExecutor(Config{})
	e.Solution = NewSolutionSet(1, record.KeyA, cmp, nil)
	e.Solution.Init([]record.Record{{A: 7, B: 100}})
	e.DirectMerge = true
	e.SetPlaceholder(w.ID, []record.Record{{A: 7, B: 5}, {A: 7, B: 5}}, record.KeyA, 1)
	res, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Records(sink.ID); len(got) != 1 {
		t.Fatalf("direct merge emitted %d deltas, want 1: %v", len(got), got)
	}
	if r, _ := e.Solution.Lookup(0, 7); r.B != 5 {
		t.Fatalf("solution not updated: %v", r)
	}
}

func TestEnforcerSortNode(t *testing.T) {
	// A plan whose reduce demands sorted+partitioned input through IPs
	// exercises the enforcer's LocalSort path when the upstream candidate
	// is forced through it.
	p := dataflow.NewPlan()
	src := p.SourceOf("s", []record.Record{{A: 3}, {A: 1}, {A: 2}})
	m := p.MapNode("id", src, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	m.Preserve(0, record.KeyA)
	red := p.ReduceNode("g", m, record.KeyA,
		func(k int64, g []record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: k})
		})
	sink := p.SinkNode("o", red)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 2})
	e := NewExecutor(Config{})
	res, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Records(sink.ID); len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestSetPlaceholderPartsAndMetricsAccessor(t *testing.T) {
	var m metrics.Counters
	e := NewExecutor(Config{Metrics: &m})
	if e.Metrics() != &m {
		t.Error("Metrics accessor broken")
	}
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 2)
	sink := p.SinkNode("o", w)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 2})
	e.SetPlaceholderParts(w.ID, [][]record.Record{{{A: 1}}, {{A: 2}}})
	res, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records(sink.ID)) != 2 {
		t.Fatal("placeholder parts lost")
	}
}

func TestSpilledSortedCacheReplaysInOrder(t *testing.T) {
	// A cached sort-merge join input that spills must come back sorted.
	constRecs := make([]record.Record, 500)
	for i := range constRecs {
		constRecs[i] = record.Record{A: int64(499 - i), B: int64(i)}
	}
	p, w, _, sink := cachedJoinPlan(constRecs)
	phys := optimizeOrDie(t, p, optimizer.Options{Parallelism: 1, ExpectedIterations: 5})
	for _, n := range phys.Nodes {
		if n.Logical.Contract == dataflow.MatchOp {
			n.Local = optimizer.LocalSortMergeJoin
			n.SortKey = record.KeyA
		}
	}
	e := NewExecutor(Config{CacheBudget: 64}) // tiny: forces spilling
	defer e.Close()
	probe := make([]record.Record, 500)
	for i := range probe {
		probe[i] = record.Record{A: int64(i)}
	}
	e.SetPlaceholder(w.ID, probe, record.KeyA, 1)
	for pass := 0; pass < 2; pass++ {
		res, err := e.Run(phys)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Records(sink.ID); len(got) != 500 {
			t.Fatalf("pass %d: %d joined rows", pass, len(got))
		}
	}
	if e.SpilledBytes() == 0 {
		t.Error("sorted cache did not spill under the tiny budget")
	}
}

func TestReadAllBatches(t *testing.T) {
	q := newQueue(newBatchPool(4, nil))
	q.push(record.Batch{{A: 1}})
	q.push(record.Batch{{A: 2}, {A: 3}})
	q.close()
	batches := readAllBatches(queueStream{q: q})
	if len(batches) != 2 || len(batches[1]) != 2 {
		t.Fatalf("batches: %v", batches)
	}
}

func TestSolutionSetAccessors(t *testing.T) {
	s := NewSolutionSet(3, record.KeyA, nil, nil)
	if s.Parallelism() != 3 {
		t.Error("parallelism accessor")
	}
	if !s.Update(record.Record{A: 1, B: 1}) {
		t.Error("insert should report change")
	}
	if s.Update(record.Record{A: 1, B: 1}) {
		t.Error("identical update should report no change")
	}
	s0 := NewSolutionSet(0, record.KeyA, nil, nil)
	if s0.Parallelism() != 1 {
		t.Error("degenerate parallelism should clamp to 1")
	}
}

// A push racing close (straggler producer at session teardown, or a remote
// batch landing after a failed run) must recycle the batch back into the
// pool and count the drop — appending to a closed queue would leak the
// batch, since closed queues are never drained again.
func TestQueuePushAfterCloseRecycles(t *testing.T) {
	var m metrics.Counters
	pool := newBatchPool(4, &m)
	q := newQueue(pool)
	q.close()

	b := pool.get()
	b = append(b, record.Record{A: 1})
	q.push(b)

	if n := len(q.items); n != 0 {
		t.Fatalf("closed queue buffered %d batches", n)
	}
	if got := m.DroppedBatches.Load(); got != 1 {
		t.Errorf("DroppedBatches = %d, want 1", got)
	}
	if got := m.BatchesRecycled.Load(); got != 1 {
		t.Errorf("BatchesRecycled = %d, want 1 (batch leaked out of the pool)", got)
	}
	// The recycled batch must actually come back from the pool.
	allocBefore := m.BatchesAllocated.Load()
	_ = pool.get()
	if got := m.BatchesAllocated.Load(); got != allocBefore {
		t.Errorf("pool allocated a fresh batch after the drop recycled one")
	}
	// Reset must reopen the queue for the next superstep.
	q.reset(pool)
	q.push(pool.get())
	if n := len(q.items); n != 1 {
		t.Fatalf("reset queue buffered %d batches, want 1", n)
	}
}
