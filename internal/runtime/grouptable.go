package runtime

import "repro/internal/record"

// groupTable is a key-grouped hash table whose storage survives across
// supersteps. Hash-aggregations, combiners, join build sides and cogroup
// inputs on the dynamic data path re-group a fresh stream every superstep;
// rebuilding a map[int64][]record.Record each time dominates steady-state
// allocation. A groupTable instead keeps its key index and group slices
// and is reset generationally: reset bumps a round counter, and a group's
// contents are lazily truncated the first time its key is touched in the
// new round. Groups whose keys do not reappear stay allocated but
// invisible (stale stamp), so repeated supersteps over a recurring key
// domain — the common iterative case — allocate nothing.
type groupTable struct {
	idx     map[int64]int
	keys    []int64
	groups  [][]record.Record
	stamp   []uint64
	touched []int // indices live in the current round, in first-touch order
	round   uint64
}

func newGroupTable() *groupTable {
	return &groupTable{idx: make(map[int64]int), round: 1}
}

// reset starts a new round; existing groups become invisible until their
// key is added again.
func (g *groupTable) reset() {
	g.round++
	g.touched = g.touched[:0]
}

// groupIdx returns the storage index for key k in the current round,
// truncating a group left over from an earlier round on first touch.
func (g *groupTable) groupIdx(k int64) int {
	i, ok := g.idx[k]
	if !ok {
		i = len(g.groups)
		g.idx[k] = i
		g.keys = append(g.keys, k)
		g.groups = append(g.groups, nil)
		g.stamp = append(g.stamp, 0)
	}
	if g.stamp[i] != g.round {
		g.stamp[i] = g.round
		g.groups[i] = g.groups[i][:0]
		g.touched = append(g.touched, i)
	}
	return i
}

// add appends r to key k's group.
func (g *groupTable) add(k int64, r record.Record) {
	i := g.groupIdx(k)
	g.groups[i] = append(g.groups[i], r)
}

// get returns key k's group in the current round, or nil.
func (g *groupTable) get(k int64) []record.Record {
	i, ok := g.idx[k]
	if !ok || g.stamp[i] != g.round {
		return nil
	}
	return g.groups[i]
}

// each visits every group of the current round in first-touch order.
func (g *groupTable) each(f func(k int64, recs []record.Record)) {
	for _, i := range g.touched {
		f(g.keys[i], g.groups[i])
	}
}

// size returns the number of records stored in the current round.
func (g *groupTable) size() int {
	n := 0
	for _, i := range g.touched {
		n += len(g.groups[i])
	}
	return n
}
