package runtime

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// queue is an unbounded MPSC batch queue. Unbounded buffering is what the
// paper calls a dam on the feedback/exchange level: producers never block,
// which rules out shuffle deadlocks in DAGs where one consumer drains its
// inputs in sequence (e.g. hash-join build before probe).
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []record.Batch
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one batch.
func (q *queue) push(b record.Batch) {
	q.mu.Lock()
	q.items = append(q.items, b)
	q.mu.Unlock()
	q.cond.Signal()
}

// close marks the end of the stream.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// reset reopens the queue for the next superstep, recycling any batches a
// failed run left behind. Only called while no producer or consumer task
// is active (between supersteps).
func (q *queue) reset(pool *batchPool) {
	for _, b := range q.items {
		pool.put(b)
	}
	q.items = q.items[:0]
	q.closed = false
}

// pop blocks for the next batch; ok=false means the stream ended.
func (q *queue) pop() (record.Batch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	b := q.items[0]
	q.items = q.items[1:]
	return b, true
}

// exchange connects the P tasks of a producer node to the P tasks of one
// consumer input: one queue per consumer partition, closed when every
// producer task has finished. Within a session, the exchange for a given
// physical edge is allocated once and reset between supersteps.
type exchange struct {
	queues    []*queue
	producers atomic.Int32
	// used marks that the exchange has carried at least one superstep;
	// later resets count as reuse in the metrics.
	used bool
}

func newExchange(parallelism, producers int) *exchange {
	ex := &exchange{queues: make([]*queue, parallelism)}
	for i := range ex.queues {
		ex.queues[i] = newQueue()
	}
	ex.producers.Store(int32(producers))
	return ex
}

// reset rearms the exchange for another superstep: queues reopen (keeping
// their storage) and the producer count is restored.
func (ex *exchange) reset(producers int, pool *batchPool) {
	for _, q := range ex.queues {
		q.reset(pool)
	}
	ex.producers.Store(int32(producers))
}

// producerDone signals one producer task finished; the last one closes all
// queues.
func (ex *exchange) producerDone() {
	if ex.producers.Add(-1) == 0 {
		for _, q := range ex.queues {
			q.close()
		}
	}
}

// writer routes one producer task's output records into an exchange
// according to the edge's shipping strategy, buffering into batches.
type writer struct {
	ex        *exchange
	ship      optimizer.ShipStrategy
	key       record.KeyFunc
	ownPart   int
	batchSize int
	bufs      []record.Batch
	pool      *batchPool
	m         *metrics.Counters
}

func newWriter(ex *exchange, ship optimizer.ShipStrategy, key record.KeyFunc, ownPart, batchSize int, pool *batchPool, m *metrics.Counters) *writer {
	return &writer{
		ex: ex, ship: ship, key: key, ownPart: ownPart,
		batchSize: batchSize, bufs: make([]record.Batch, len(ex.queues)),
		pool: pool, m: m,
	}
}

func (w *writer) write(r record.Record) {
	switch w.ship {
	case optimizer.ShipForward:
		w.append(w.ownPart, r)
	case optimizer.ShipPartition:
		if w.m != nil {
			w.m.RecordsShipped.Add(1)
		}
		w.append(record.PartitionOf(w.key(r), len(w.bufs)), r)
	case optimizer.ShipBroadcast:
		if w.m != nil {
			w.m.RecordsShipped.Add(int64(len(w.bufs)))
		}
		for p := range w.bufs {
			w.append(p, r)
		}
	}
}

func (w *writer) append(p int, r record.Record) {
	if w.bufs[p] == nil {
		w.bufs[p] = w.pool.get()
	}
	w.bufs[p] = append(w.bufs[p], r)
	if len(w.bufs[p]) >= w.batchSize {
		w.ex.queues[p].push(w.bufs[p])
		w.bufs[p] = nil
	}
}

// done flushes remaining buffers and releases the producer slot.
func (w *writer) done() {
	for p, b := range w.bufs {
		if len(b) > 0 {
			w.ex.queues[p].push(b)
			w.bufs[p] = nil
		}
	}
	w.ex.producerDone()
}

// inStream yields the batches one consumer task reads for one input.
type inStream interface {
	next() (record.Batch, bool)
}

// queueStream reads from an exchange queue.
type queueStream struct{ q *queue }

func (s queueStream) next() (record.Batch, bool) { return s.q.pop() }

// readAllBatches drains a stream keeping batch boundaries (for caching).
func readAllBatches(in inStream) []record.Batch {
	var out []record.Batch
	for {
		b, ok := in.next()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}
