package runtime

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// queue is an unbounded MPSC batch queue. Unbounded buffering is what the
// paper calls a dam on the feedback/exchange level: producers never block,
// which rules out shuffle deadlocks in DAGs where one consumer drains its
// inputs in sequence (e.g. hash-join build before probe).
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []record.Batch
	closed bool
	pool   *batchPool
}

func newQueue(pool *batchPool) *queue {
	q := &queue{pool: pool}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one batch. A push after close — a straggler producer
// racing session teardown, or a remote batch arriving after a failed run
// ended — recycles the batch and drops it: appending it would leak it out
// of the batchPool, since nobody will ever drain a closed queue again.
func (q *queue) push(b record.Batch) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.pool.put(b)
		if q.pool.m != nil {
			q.pool.m.DroppedBatches.Add(1)
		}
		return
	}
	q.items = append(q.items, b)
	q.mu.Unlock()
	q.cond.Signal()
}

// close marks the end of the stream.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// reset reopens the queue for the next superstep, recycling any batches a
// failed run left behind. Only called while no producer or consumer task
// is active (between supersteps).
func (q *queue) reset(pool *batchPool) {
	for _, b := range q.items {
		pool.put(b)
	}
	q.items = q.items[:0]
	q.closed = false
}

// pop blocks for the next batch; ok=false means the stream ended.
func (q *queue) pop() (record.Batch, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	b := q.items[0]
	q.items = q.items[1:]
	return b, true
}

// exchange connects the producer tasks of a plan edge to the consumer
// tasks of its destination: one queue per consumer partition, closed when
// every producer — in-process tasks and remote peers alike — has
// finished. Within a session, the exchange for a given physical edge is
// allocated once and reset between supersteps.
type exchange struct {
	// id is the plan's stable Edge.ID; the transport routes remote
	// batches by it.
	id        int
	queues    []*queue
	producers atomic.Int32
	// used marks that the exchange has carried at least one superstep;
	// later resets count as reuse in the metrics.
	used bool
}

func newExchange(id, parallelism, producers int, pool *batchPool) *exchange {
	ex := &exchange{id: id, queues: make([]*queue, parallelism)}
	for i := range ex.queues {
		ex.queues[i] = newQueue(pool)
	}
	ex.producers.Store(int32(producers))
	return ex
}

// reset rearms the exchange for another superstep: queues reopen (keeping
// their storage) and the producer count is restored.
func (ex *exchange) reset(producers int, pool *batchPool) {
	for _, q := range ex.queues {
		q.reset(pool)
	}
	ex.producers.Store(int32(producers))
}

// producerDone signals one producer (a local task, or one remote
// producer's end-of-stream frame) finished; the last one closes all
// queues.
func (ex *exchange) producerDone() {
	if ex.producers.Add(-1) == 0 {
		for _, q := range ex.queues {
			q.close()
		}
	}
}

// closeAll force-closes every queue so blocked consumers unblock; used by
// the transport's failure path when the peer carrying the missing
// producers is gone.
func (ex *exchange) closeAll() {
	for _, q := range ex.queues {
		q.close()
	}
}

// writer routes one producer task's output records into an exchange
// according to the edge's shipping strategy, buffering into batches.
// Partitions the session does not host are shipped through the transport
// instead of the in-memory queues.
type writer struct {
	ex        *exchange
	ship      optimizer.ShipStrategy
	key       record.KeyFunc
	ownPart   int
	batchSize int
	bufs      []record.Batch
	pool      *batchPool
	m         *metrics.Counters
	// hosted marks in-process partitions; nil means all partitions are
	// local (the in-memory transport), which keeps the hot path a single
	// nil check.
	hosted []bool
	tr     Transport
}

func newWriter(ex *exchange, ship optimizer.ShipStrategy, key record.KeyFunc, ownPart, batchSize int, pool *batchPool, m *metrics.Counters, hosted []bool, tr Transport) *writer {
	return &writer{
		ex: ex, ship: ship, key: key, ownPart: ownPart,
		batchSize: batchSize, bufs: make([]record.Batch, len(ex.queues)),
		pool: pool, m: m, hosted: hosted, tr: tr,
	}
}

func (w *writer) write(r record.Record) {
	switch w.ship {
	case optimizer.ShipForward:
		w.append(w.ownPart, r)
	case optimizer.ShipPartition:
		p := record.PartitionOf(w.key(r), len(w.bufs))
		if w.m != nil && p != w.ownPart {
			// Only records leaving their producing partition count as
			// shuffle traffic; a self-routed record never crosses a
			// worker boundary.
			w.m.RecordsShipped.Add(1)
			if w.hosted != nil && !w.hosted[p] {
				w.m.RecordsShippedRemote.Add(1)
			}
		}
		w.append(p, r)
	case optimizer.ShipBroadcast:
		if w.m != nil {
			w.m.RecordsShipped.Add(int64(len(w.bufs) - 1))
			if w.hosted != nil {
				remote := int64(0)
				for p := range w.bufs {
					if !w.hosted[p] {
						remote++
					}
				}
				w.m.RecordsShippedRemote.Add(remote)
			}
		}
		for p := range w.bufs {
			w.append(p, r)
		}
	}
}

func (w *writer) append(p int, r record.Record) {
	if w.bufs[p] == nil {
		w.bufs[p] = w.pool.get()
	}
	w.bufs[p] = append(w.bufs[p], r)
	if len(w.bufs[p]) >= w.batchSize {
		w.flush(p)
	}
}

// flush hands partition p's buffered batch to its destination: the local
// queue when the partition is hosted in-process, the transport otherwise
// (the transport serializes synchronously, so the batch is recycled
// immediately after the send).
func (w *writer) flush(p int) {
	b := w.bufs[p]
	w.bufs[p] = nil
	if w.hosted == nil || w.hosted[p] {
		w.ex.queues[p].push(b)
		return
	}
	w.tr.Send(w.ex.id, p, b)
	w.pool.put(b)
}

// done flushes remaining buffers and releases the producer slot, both
// locally and — through the transport — on every peer process.
func (w *writer) done() {
	for p, b := range w.bufs {
		if len(b) > 0 {
			w.flush(p)
		}
	}
	if w.tr != nil {
		w.tr.FinishProducer(w.ex.id)
	}
	w.ex.producerDone()
}

// inStream yields the batches one consumer task reads for one input.
type inStream interface {
	next() (record.Batch, bool)
}

// queueStream reads from an exchange queue.
type queueStream struct{ q *queue }

func (s queueStream) next() (record.Batch, bool) { return s.q.pop() }

// readAllBatches drains a stream keeping batch boundaries (for caching).
func readAllBatches(in inStream) []record.Batch {
	var out []record.Batch
	for {
		b, ok := in.next()
		if !ok {
			return out
		}
		out = append(out, b)
	}
}
