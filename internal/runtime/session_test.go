package runtime

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// sessionJoinPlan builds a placeholder ⋈ constant plan and optimizes it
// for an iterative run, so the constant side is cached.
func sessionJoinPlan(t *testing.T, constRecs []record.Record, par int) (*optimizer.PhysPlan, *dataflow.Node, *dataflow.Node) {
	t.Helper()
	p, w, _, sink := cachedJoinPlan(constRecs)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: par, ExpectedIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	return phys, w, sink
}

func TestSessionRunRepeatedlyMatchesOneShot(t *testing.T) {
	constRecs := []record.Record{{A: 1, B: 10}, {A: 2, B: 20}, {A: 3, B: 30}}
	probe := []record.Record{{A: 1}, {A: 2}, {A: 3}}

	phys, w, sink := sessionJoinPlan(t, constRecs, 2)
	e := NewExecutor(Config{})
	defer e.Close()
	e.SetPlaceholder(w.ID, probe, record.KeyA, 2)

	sess := e.OpenSession(phys)
	defer sess.Close()
	for step := 0; step < 4; step++ {
		res, err := sess.Run()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		got := sorted(res.Records(sink.ID))
		if len(got) != 3 || got[0].B != 10 || got[1].B != 20 || got[2].B != 30 {
			t.Fatalf("step %d: %v", step, got)
		}
	}
}

func TestSessionReusesWorkersAndExchanges(t *testing.T) {
	var m metrics.Counters
	constRecs := []record.Record{{A: 1, B: 10}, {A: 2, B: 20}}
	probe := []record.Record{{A: 1}, {A: 2}}

	phys, w, _ := sessionJoinPlan(t, constRecs, 2)
	e := NewExecutor(Config{Metrics: &m})
	defer e.Close()
	e.SetPlaceholder(w.ID, probe, record.KeyA, 2)

	sess := e.OpenSession(phys)
	defer sess.Close()
	const steps = 6
	for i := 0; i < steps; i++ {
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Snapshot()
	// Workers are spawned once per (node, partition) at session open, not
	// once per superstep.
	want := int64(len(phys.Nodes) * 2)
	if s.WorkersSpawned != want {
		t.Errorf("WorkersSpawned = %d, want %d (one per node×partition)", s.WorkersSpawned, want)
	}
	// Steady-state supersteps reuse exchanges instead of rebuilding them.
	if s.ExchangesReused == 0 {
		t.Error("no exchange reuse across supersteps")
	}
	// Batches cycle through the pool; far more are recycled than
	// allocated once the session is warm.
	if s.BatchesRecycled == 0 {
		t.Error("no batch recycling across supersteps")
	}
	if s.BatchesAllocated > s.BatchesRecycled {
		t.Errorf("pool not effective: %d allocated vs %d recycled",
			s.BatchesAllocated, s.BatchesRecycled)
	}
}

// TestSessionStopsFeedingCacheSatisfiedEdge pins down a schedule subtlety:
// when a producer stays live (here: it also feeds an always-live constant
// sink) but its edge into the dynamic path has gone cache-satisfied, the
// producer must stop shipping into that edge's exchange. Observable via
// RecordsShipped: the partitioned join input is shipped in superstep 1
// only.
func TestSessionStopsFeedingCacheSatisfiedEdge(t *testing.T) {
	var m metrics.Counters
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 4)
	c := p.SourceOf("const", []record.Record{{A: 1, B: 10}, {A: 2, B: 20}})
	j := p.MatchNode("j", w, c, record.KeyA, record.KeyA,
		func(l, r record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: l.A, B: r.B})
		})
	dynSink := p.SinkNode("dyn", j)
	constSink := p.SinkNode("raw", c) // keeps the source live every superstep
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 2, ExpectedIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	cached := false
	for _, n := range phys.Nodes {
		for _, edge := range n.Inputs {
			cached = cached || edge.Cache
		}
	}
	if !cached {
		t.Skip("optimizer chose a plan without a cached edge")
	}

	e := NewExecutor(Config{Metrics: &m})
	defer e.Close()
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}, {A: 2}}, record.KeyA, 2)
	sess := e.OpenSession(phys)
	defer sess.Close()

	var shippedPerStep []int64
	for step := 0; step < 3; step++ {
		before := m.Snapshot()
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := sorted(res.Records(dynSink.ID)); len(got) != 2 || got[0].B != 10 || got[1].B != 20 {
			t.Fatalf("step %d: dyn sink %v", step, got)
		}
		if got := res.Records(constSink.ID); len(got) != 2 {
			t.Fatalf("step %d: const sink %v", step, got)
		}
		shippedPerStep = append(shippedPerStep, m.Snapshot().Sub(before).RecordsShipped)
	}
	// Superstep 1 ships the constant side into the cache; later
	// supersteps must not re-ship it even though the source stays live.
	if shippedPerStep[1] >= shippedPerStep[0] || shippedPerStep[1] != shippedPerStep[2] {
		t.Fatalf("shipping did not settle after cache fill: %v", shippedPerStep)
	}
}

func TestSessionRunAfterCloseFails(t *testing.T) {
	phys, w, _ := sessionJoinPlan(t, []record.Record{{A: 1, B: 1}}, 1)
	e := NewExecutor(Config{})
	defer e.Close()
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}}, record.KeyA, 1)
	sess := e.OpenSession(phys)
	sess.Close()
	sess.Close() // idempotent
	if _, err := sess.Run(); err == nil {
		t.Fatal("Run on a closed session must fail")
	}
}

// TestSessionSpilledCacheAcrossSupersteps is the cache-budget interplay
// test: a loop-invariant stream cache that spills to disk in superstep 1
// must be re-read — not recomputed or corrupted — by the same persistent
// workers in every later superstep.
func TestSessionSpilledCacheAcrossSupersteps(t *testing.T) {
	const n = 400
	constRecs := make([]record.Record, n)
	for i := range constRecs {
		constRecs[i] = record.Record{A: int64(i), B: int64(i * 7)}
	}
	probe := make([]record.Record, n)
	for i := range probe {
		probe[i] = record.Record{A: int64(i)}
	}

	p, w, _, sink := cachedJoinPlan(constRecs)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 2, ExpectedIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Force the cached constant side through the sort-merge path so the
	// cache is a spillable stream (hash tables stay pinned).
	for _, pn := range phys.Nodes {
		if pn.Logical.Contract == dataflow.MatchOp {
			pn.Local = optimizer.LocalSortMergeJoin
			pn.SortKey = record.KeyA
		}
	}

	e := NewExecutor(Config{CacheBudget: 64}) // tiny budget: everything spills
	defer e.Close()
	e.SetPlaceholder(w.ID, probe, record.KeyA, 2)
	sess := e.OpenSession(phys)
	defer sess.Close()

	for step := 0; step < 3; step++ {
		res, err := sess.Run()
		if err != nil {
			t.Fatalf("superstep %d: %v", step, err)
		}
		got := sorted(res.Records(sink.ID))
		if len(got) != n {
			t.Fatalf("superstep %d: %d joined rows, want %d", step, len(got), n)
		}
		for i, r := range got {
			if r.A != int64(i) || r.B != int64(i*7) {
				t.Fatalf("superstep %d: corrupted row %d: %v", step, i, r)
			}
		}
	}
	if e.SpilledBytes() == 0 {
		t.Fatal("cache never spilled under the tiny budget")
	}
}

// TestSessionInvalidateCachesRewires checks that dropping the executor's
// caches mid-session (the Unroll strategy, or re-optimization) makes the
// session rebuild its wiring instead of replaying stale slots.
func TestSessionInvalidateCachesRewires(t *testing.T) {
	constRecs := []record.Record{{A: 1, B: 10}, {A: 2, B: 20}}
	phys, w, sink := sessionJoinPlan(t, constRecs, 2)
	e := NewExecutor(Config{})
	defer e.Close()
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}, {A: 2}}, record.KeyA, 2)
	sess := e.OpenSession(phys)
	defer sess.Close()

	for step := 0; step < 4; step++ {
		if step == 2 {
			e.InvalidateCaches()
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		got := sorted(res.Records(sink.ID))
		if len(got) != 2 || got[0].B != 10 || got[1].B != 20 {
			t.Fatalf("step %d after invalidate: %v", step, got)
		}
	}
}

func TestSessionErrorDoesNotWedgeWorkers(t *testing.T) {
	// A panicking UDF must surface as an error and leave the session
	// usable for the next superstep (exchanges reset cleanly).
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 2)
	boom := true
	mapped := p.MapNode("boom", w, func(r record.Record, out dataflow.Emitter) {
		if boom && r.A == 1 {
			panic("kaboom")
		}
		out.Emit(r)
	})
	sink := p.SinkNode("o", mapped)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(Config{})
	defer e.Close()
	e.SetPlaceholder(w.ID, []record.Record{{A: 1}, {A: 2}}, record.KeyA, 2)
	sess := e.OpenSession(phys)
	defer sess.Close()

	if _, err := sess.Run(); err == nil {
		t.Fatal("expected a panic-derived error")
	}
	boom = false
	res, err := sess.Run()
	if err != nil {
		t.Fatalf("session wedged after error: %v", err)
	}
	if got := res.Records(sink.ID); len(got) != 2 {
		t.Fatalf("post-error superstep lost records: %v", got)
	}
}

func TestSetPlaceholderZeroParallelism(t *testing.T) {
	// A zero-value Config must not panic SetPlaceholder (it clamps to 1).
	e := NewExecutor(Config{})
	defer e.Close()
	e.SetPlaceholder(0, []record.Record{{A: 1}, {A: 2}}, nil, 0)
	if parts := e.Placeholder[0]; len(parts) != 1 || len(parts[0]) != 2 {
		t.Fatalf("clamped placeholder wrong: %v", parts)
	}
	e.SetPlaceholder(1, []record.Record{{A: 3}}, record.KeyA, -4)
	if parts := e.Placeholder[1]; len(parts) != 1 || len(parts[0]) != 1 {
		t.Fatalf("keyed clamped placeholder wrong: %v", parts)
	}
}

func TestGroupTableRounds(t *testing.T) {
	g := newGroupTable()
	g.add(1, record.Record{A: 1, B: 1})
	g.add(1, record.Record{A: 1, B: 2})
	g.add(2, record.Record{A: 2, B: 3})
	if got := g.get(1); len(got) != 2 {
		t.Fatalf("group 1: %v", got)
	}
	if g.size() != 3 {
		t.Fatalf("size = %d", g.size())
	}
	g.reset()
	if g.get(1) != nil || g.get(2) != nil || g.size() != 0 {
		t.Fatal("reset must hide previous round's groups")
	}
	// Key 2 returns with new contents; key 1 stays invisible.
	g.add(2, record.Record{A: 2, B: 9})
	if got := g.get(2); len(got) != 1 || got[0].B != 9 {
		t.Fatalf("stale contents leaked: %v", got)
	}
	seen := 0
	g.each(func(k int64, recs []record.Record) { seen++ })
	if seen != 1 {
		t.Fatalf("each visited %d groups, want 1", seen)
	}
}

func TestBatchPoolRecycles(t *testing.T) {
	var m metrics.Counters
	p := newBatchPool(4, &m)
	b := p.get()
	b = append(b, record.Record{A: 1})
	p.put(b)
	b2 := p.get()
	if len(b2) != 0 || cap(b2) < 4 {
		t.Fatalf("recycled batch wrong: len=%d cap=%d", len(b2), cap(b2))
	}
	// Undersized foreign batches are rejected.
	p.put(make(record.Batch, 0, 1))
	s := m.Snapshot()
	if s.BatchesRecycled != 1 {
		t.Fatalf("BatchesRecycled = %d, want 1", s.BatchesRecycled)
	}
}
