package runtime

import (
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Config configures an Executor.
type Config struct {
	// BatchSize is the number of records per exchange batch (default 256).
	BatchSize int
	// Metrics receives work counters (optional).
	Metrics *metrics.Counters
	// CacheBudget bounds the in-memory bytes of loop-invariant stream
	// caches; caches beyond the budget are spilled to temporary files in
	// serialized form (§4.3). 0 means unlimited. Index caches (join hash
	// tables) stay pinned regardless.
	CacheBudget int64
	// Trace receives superstep/operator/ship phase spans (optional). A nil
	// sink costs one branch per would-be span on the superstep path.
	Trace obs.TraceSink
	// TraceID stamps recorded spans so one logical run's spans can be
	// reassembled across processes; distributed transports also carry it in
	// frame headers. Zero means untraced (spans still record if Trace is
	// set, under trace ID 0).
	TraceID obs.TraceID
	// TraceLabel names the run on its superstep-level spans (a job or view
	// name). Operator spans are labeled by plan-node name instead.
	TraceLabel string
	// Host is this process's host ID in a distributed session (0 when
	// single-process), stamped on spans.
	Host int
}

// Executor runs physical plans. It persists across the supersteps of an
// iteration: loop-invariant caches (including cached join hash tables) and
// the solution set survive between Run calls, which is the feedback-channel
// execution model of §4.2 — the dynamic data path is re-evaluated, the
// constant data path is not.
type Executor struct {
	cfg  Config
	acct cacheAccountant
	// spilledBytes counts bytes written to spill files (observability).
	spilledBytes atomic.Int64
	// slots holds materialized loop-invariant inputs.
	slots map[slotKey]*cacheSlot
	// cacheGen is bumped whenever the slot map is replaced, so open
	// sessions know their compiled wiring points at stale cache slots.
	cacheGen uint64
	// Solution is the incremental iteration's partitioned state (nil for
	// plain and bulk-iterative jobs).
	Solution *SolutionSet
	// DirectMerge applies SolutionJoin delta records to the solution set
	// immediately instead of caching them until the superstep ends, and
	// drops records the comparator rejects. Only valid when the iteration
	// driver has verified the §5.2/§5.3 locality conditions (updates never
	// cross partition boundaries).
	DirectMerge bool
	// Placeholder supplies per-partition records for IterationInput nodes,
	// keyed by logical node ID.
	Placeholder map[int][][]record.Record
}

type slotKey struct {
	node, input, part int
}

// cacheSlot materializes one partition of one cached input. Exactly one of
// the representations is used, depending on the consumer's local strategy
// (§4.3: the cache stores records "possibly as a hash table, or B+-Tree,
// depending on the execution strategy of the operator"). Under memory
// pressure, stream caches move to a spill file.
type cacheSlot struct {
	filled  bool
	batches []record.Batch
	recs    []record.Record
	table   *groupTable
	spill   *spillFile
}

// NewExecutor creates an executor.
func NewExecutor(cfg Config) *Executor {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	e := &Executor{
		cfg:         cfg,
		slots:       make(map[slotKey]*cacheSlot),
		Placeholder: make(map[int][][]record.Record),
	}
	e.acct.budget = cfg.CacheBudget
	return e
}

// SpilledBytes reports the total bytes written to cache spill files.
func (e *Executor) SpilledBytes() int64 { return e.spilledBytes.Load() }

// Close releases spill files. The executor remains usable; spilled caches
// are dropped and will be recomputed if the plan runs again. Sessions are
// not closed — but any still open recompile their wiring on the next Run,
// because the cache generation has moved on.
func (e *Executor) Close() {
	for _, s := range e.slots {
		if s.spill != nil {
			s.spill.remove()
		}
	}
	e.slots = make(map[slotKey]*cacheSlot)
	e.cacheGen++
	e.acct.used.Store(0)
}

// maybeSpillBatches enforces the cache budget on a freshly-filled stream
// slot: if the batches do not fit, they move to a spill file (and their
// in-memory storage is recycled).
func (e *Executor) maybeSpillBatches(s *cacheSlot, pool *batchPool) {
	n := batchesBytes(s.batches)
	if e.acct.admit(n) {
		return
	}
	sf, err := spillBatches(s.batches)
	if err != nil {
		// Spilling is an optimization; on failure keep the cache in
		// memory (over budget) rather than losing correctness.
		e.acct.used.Add(n)
		return
	}
	e.spilledBytes.Add(sf.bytes)
	for _, b := range s.batches {
		pool.put(b)
	}
	s.batches = nil
	s.spill = sf
}

// maybeSpillRecs is maybeSpillBatches for the flat-slice representation.
func (e *Executor) maybeSpillRecs(s *cacheSlot) {
	n := int64(len(s.recs)) * record.EncodedSize
	if e.acct.admit(n) {
		return
	}
	sf, err := spillBatches([]record.Batch{s.recs})
	if err != nil {
		e.acct.used.Add(n)
		return
	}
	e.spilledBytes.Add(sf.bytes)
	s.recs = nil
	s.spill = sf
}

// Metrics returns the configured counters (may be nil).
func (e *Executor) Metrics() *metrics.Counters { return e.cfg.Metrics }

// SetPlaceholder installs the per-partition data an IterationInput node
// emits on the next Run. If key is non-nil the records are hash-partitioned
// by it; otherwise they are split contiguously. A non-positive parallelism
// (e.g. from a zero-value Config) is treated as 1.
func (e *Executor) SetPlaceholder(logicalID int, recs []record.Record, key record.KeyFunc, parallelism int) {
	if parallelism <= 0 {
		parallelism = 1
	}
	parts := make([][]record.Record, parallelism)
	if key != nil {
		for _, r := range recs {
			p := record.PartitionOf(key(r), parallelism)
			parts[p] = append(parts[p], r)
		}
	} else {
		per := (len(recs) + parallelism - 1) / parallelism
		for p := 0; p < parallelism; p++ {
			lo := p * per
			hi := lo + per
			if lo > len(recs) {
				lo = len(recs)
			}
			if hi > len(recs) {
				hi = len(recs)
			}
			parts[p] = recs[lo:hi]
		}
	}
	e.Placeholder[logicalID] = parts
}

// SetPlaceholderParts installs pre-partitioned data directly.
func (e *Executor) SetPlaceholderParts(logicalID int, parts [][]record.Record) {
	e.Placeholder[logicalID] = parts
}

// slot returns the cache slot for (node, input, part), creating it.
func (e *Executor) slot(n *optimizer.PhysNode, input, part int) *cacheSlot {
	k := slotKey{n.ID, input, part}
	s, ok := e.slots[k]
	if !ok {
		s = &cacheSlot{}
		e.slots[k] = s
	}
	return s
}

// slotsFilled reports whether all partitions of a cached input are filled.
func (e *Executor) slotsFilled(n *optimizer.PhysNode, input, parallelism int) bool {
	for p := 0; p < parallelism; p++ {
		s, ok := e.slots[slotKey{n.ID, input, p}]
		if !ok || !s.filled {
			return false
		}
	}
	return true
}

// slotsFilledAmong is slotsFilled restricted to the given partitions — a
// distributed session only ever fills (and therefore only checks) the
// slots of the partitions it hosts.
func (e *Executor) slotsFilledAmong(n *optimizer.PhysNode, input int, parts []int) bool {
	for _, p := range parts {
		s, ok := e.slots[slotKey{n.ID, input, p}]
		if !ok || !s.filled {
			return false
		}
	}
	return true
}

// InvalidateCaches drops all materialized loop-invariant inputs (used when
// the same executor runs a different plan).
func (e *Executor) InvalidateCaches() {
	e.Close()
}

// Result maps logical sink IDs to per-partition output records.
type Result map[int][][]record.Record

// Records flattens one sink's output.
func (r Result) Records(sinkID int) []record.Record {
	var out []record.Record
	for _, part := range r[sinkID] {
		out = append(out, part...)
	}
	return out
}

// Run executes the plan once and returns the sink outputs. It is the
// one-shot convenience form: a session is opened, run for a single
// superstep, and closed. Iteration drivers use OpenSession directly so
// workers, exchanges and batches persist across supersteps.
func (e *Executor) Run(p *optimizer.PhysPlan) (Result, error) {
	s := e.OpenSession(p)
	defer s.Close()
	return s.Run()
}
