package runtime

import (
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Cross-strategy equivalence: whatever shipping and local strategies the
// optimizer picks (or is forced into), the result of a plan must be
// identical. These are the invariants that make the optimizer safe.

// randomRecords derives a deterministic record set from a seed. X values
// are whole numbers so that float sums are exact and order-independent:
// the equivalence properties assert invariance of grouping and
// partitioning, and must not trip over float reassociation when batch
// arrival order shifts with goroutine scheduling.
func randomRecords(seed uint64, n int, keyRange int64) []record.Record {
	s := seed | 1
	out := make([]record.Record, n)
	for i := range out {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		v := s * 0x2545f4914f6cdd1d
		out[i] = record.Record{A: int64(v % uint64(keyRange)), B: int64(v >> 32 % 97), X: float64(v % 1000)}
	}
	return out
}

// runJoinWith runs an equi-join under a specific hint and parallelism.
func runJoinWith(t *testing.T, left, right []record.Record, hint optimizer.JoinHint, par int) []record.Record {
	t.Helper()
	p := dataflow.NewPlan()
	l := p.SourceOf("l", left)
	r := p.SourceOf("r", right)
	j := p.MatchNode("j", l, r, record.KeyA, record.KeyA,
		func(lr, rr record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: lr.A, B: rr.B, X: lr.X + rr.X})
		})
	sink := p.SinkNode("o", j)
	phys, err := optimizer.Optimize(p, optimizer.Options{
		Parallelism: par,
		JoinHints:   map[int]optimizer.JoinHint{j.ID: hint},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(Config{})
	res, err := e.Run(phys)
	if err != nil {
		t.Fatal(err)
	}
	return sorted(res.Records(sink.ID))
}

func TestJoinStrategyEquivalenceProperty(t *testing.T) {
	hints := []optimizer.JoinHint{
		optimizer.HintRepartition,
		optimizer.HintBroadcastLeft,
		optimizer.HintBroadcastRight,
	}
	f := func(seed uint64) bool {
		left := randomRecords(seed, 80, 20)
		right := randomRecords(seed+1, 60, 20)
		var baseline []record.Record
		for hi, hint := range hints {
			for _, par := range []int{1, 3} {
				got := runJoinWith(t, left, right, hint, par)
				if hi == 0 && par == 1 {
					baseline = got
					continue
				}
				if len(got) != len(baseline) {
					return false
				}
				for i := range got {
					if got[i] != baseline[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAggregationParallelismInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		data := randomRecords(seed, 150, 12)
		var baseline []record.Record
		for i, par := range []int{1, 2, 5, 8} {
			p := dataflow.NewPlan()
			src := p.SourceOf("s", data)
			red := p.ReduceNode("sum", src, record.KeyA,
				func(k int64, g []record.Record, out dataflow.Emitter) {
					var s float64
					for _, r := range g {
						s += r.X
					}
					out.Emit(record.Record{A: k, X: s, B: int64(len(g))})
				})
			sink := p.SinkNode("o", red)
			phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			e := NewExecutor(Config{})
			res, err := e.Run(phys)
			if err != nil {
				t.Fatal(err)
			}
			got := sorted(res.Records(sink.ID))
			if i == 0 {
				baseline = got
				continue
			}
			if len(got) != len(baseline) {
				return false
			}
			for j := range got {
				if got[j] != baseline[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSolutionSetMergeIdempotentProperty(t *testing.T) {
	// Merging the same delta twice must change nothing the second time,
	// and merge order must not matter under a total-order comparator.
	cmp := func(a, b record.Record) int {
		switch {
		case a.B < b.B:
			return 1
		case a.B > b.B:
			return -1
		}
		return 0
	}
	f := func(seed uint64) bool {
		delta := randomRecords(seed, 50, 10)
		s1 := NewSolutionSet(4, record.KeyA, cmp, nil)
		s1.MergeDelta(delta)
		if s1.MergeDelta(delta) != 0 {
			return false // idempotence
		}
		// Reverse order must converge to the same state.
		rev := make([]record.Record, len(delta))
		for i, r := range delta {
			rev[len(delta)-1-i] = r
		}
		s2 := NewSolutionSet(4, record.KeyA, cmp, nil)
		s2.MergeDelta(rev)
		a, b := s1.Snapshot(), s2.Snapshot()
		if len(a) != len(b) {
			return false
		}
		am := map[int64]int64{}
		for _, r := range a {
			am[r.A] = r.B
		}
		for _, r := range b {
			if am[r.A] != r.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
