package runtime

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// buildChainPlan assembles source → (map|filter|project)^n → sink, the
// shape the fusion rewrite collapses. Every stage is deterministic and
// derived from the fuzz input.
func buildChainPlan(seed uint64, stages []byte) (*dataflow.Plan, *dataflow.Node) {
	rng := &fuzzRNG{s: seed | 1}
	data := make([]record.Record, 50+rng.intn(100))
	for i := range data {
		v := rng.next()
		data[i] = record.Record{A: int64(v % 37), B: int64(v >> 17 % 50), X: float64(v % 1000)}
	}
	p := dataflow.NewPlan()
	cur := p.SourceOf("src", data)
	for i, s := range stages {
		mod := int64(2 + int(s)>>4) // derived per-stage constants
		add := float64(int(s) & 7)
		switch int(s) % 3 {
		case 0:
			cur = p.MapNode(name("map", i), cur, func(r record.Record, out dataflow.Emitter) {
				r.X += add
				out.Emit(r)
			})
		case 1:
			cur = p.FilterNode(name("filter", i), cur, func(r record.Record) bool {
				return r.A%mod != 0
			})
		case 2:
			// Projection: strip a field, possibly expanding to two records
			// (fused UDFs must compose through multi-emit too).
			cur = p.MapNode(name("project", i), cur, func(r record.Record, out dataflow.Emitter) {
				out.Emit(record.Record{A: r.A, X: r.X})
				if r.B%mod == 0 {
					out.Emit(record.Record{A: -r.A, X: -r.X})
				}
			})
		}
	}
	sink := p.SinkNode("out", cur)
	return p, sink
}

func name(prefix string, i int) string {
	return prefix + string(rune('0'+i%10))
}

// runChain executes the chain with or without fusion and returns the
// per-partition record sequences exactly as emitted.
func runChain(t *testing.T, seed uint64, stages []byte, par int, fuse bool) ([][]record.Record, int) {
	t.Helper()
	p, sink := buildChainPlan(seed, stages)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: par, Fuse: fuse})
	if err != nil {
		t.Fatalf("seed %d par %d fuse %v: optimize: %v", seed, par, fuse, err)
	}
	e := NewExecutor(Config{})
	defer e.Close()
	res, err := e.Run(phys)
	if err != nil {
		t.Fatalf("seed %d par %d fuse %v: run: %v", seed, par, fuse, err)
	}
	return res[sink.ID], phys.Fused
}

// FuzzFusedChain is the fusion correctness fuzzer: for arbitrary chains
// of map/filter/project stages, the fused plan must emit exactly the
// record sequence of the unfused plan — same records, same order, per
// partition.
func FuzzFusedChain(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2})
	f.Add(uint64(42), []byte{2, 2, 0, 1})
	f.Add(uint64(7), []byte{1})
	f.Add(uint64(99), []byte{0, 0, 0, 0, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, seed uint64, stages []byte) {
		if len(stages) > 12 {
			stages = stages[:12]
		}
		for _, par := range []int{1, 3} {
			plain, fused0 := runChain(t, seed, stages, par, false)
			if fused0 != 0 {
				t.Fatalf("unfused plan reports %d fused operators", fused0)
			}
			withFuse, fused := runChain(t, seed, stages, par, true)
			if len(stages) >= 2 && fused == 0 {
				t.Fatalf("seed %d: %d-stage chain fused nothing", seed, len(stages))
			}
			if len(withFuse) != len(plain) {
				t.Fatalf("seed %d par %d: partition counts differ: %d vs %d",
					seed, par, len(withFuse), len(plain))
			}
			for pi := range plain {
				if len(withFuse[pi]) != len(plain[pi]) {
					t.Fatalf("seed %d par %d partition %d: %d records fused, %d unfused",
						seed, par, pi, len(withFuse[pi]), len(plain[pi]))
				}
				for i := range plain[pi] {
					if !withFuse[pi][i].Equal(plain[pi][i]) {
						t.Fatalf("seed %d par %d partition %d record %d: fused %v, unfused %v",
							seed, par, pi, i, withFuse[pi][i], plain[pi][i])
					}
				}
			}
		}
	})
}
