package runtime

import (
	"fmt"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Plan fuzzing: random chains of operators over random data must produce
// identical result sets regardless of parallelism and of the strategies
// the optimizer chooses. This is the engine's core correctness contract.

type fuzzRNG struct{ s uint64 }

func (r *fuzzRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

func (r *fuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// buildRandomPlan assembles a random DAG of 1-6 operators over two source
// datasets. All UDFs are deterministic and order-insensitive.
func buildRandomPlan(seed uint64) (*dataflow.Plan, *dataflow.Node) {
	rng := &fuzzRNG{s: seed | 1}
	mk := func(n int, keyRange int64) []record.Record {
		out := make([]record.Record, n)
		for i := range out {
			v := rng.next()
			out[i] = record.Record{A: int64(v % uint64(keyRange)), B: int64(v >> 13 % 50), X: float64(v % 100)}
		}
		return out
	}
	p := dataflow.NewPlan()
	cur := p.SourceOf("a", mk(40+rng.intn(60), 15))
	other := p.SourceOf("b", mk(30+rng.intn(40), 15))

	ops := 1 + rng.intn(5)
	for i := 0; i < ops; i++ {
		switch rng.intn(5) {
		case 0:
			cur = p.MapNode(fmt.Sprintf("map%d", i), cur, func(r record.Record, out dataflow.Emitter) {
				r.X += 1
				out.Emit(r)
			})
		case 1:
			cur = p.FilterNode(fmt.Sprintf("filter%d", i), cur, func(r record.Record) bool {
				return r.A%3 != 1
			})
		case 2:
			cur = p.ReduceNode(fmt.Sprintf("reduce%d", i), cur, record.KeyA,
				func(k int64, g []record.Record, out dataflow.Emitter) {
					var sx float64
					var sb int64
					for _, r := range g {
						sx += r.X
						sb += r.B
					}
					out.Emit(record.Record{A: k, B: sb, X: sx})
				})
		case 3:
			cur = p.MatchNode(fmt.Sprintf("join%d", i), cur, other, record.KeyA, record.KeyA,
				func(l, r record.Record, out dataflow.Emitter) {
					out.Emit(record.Record{A: l.A, B: l.B + r.B, X: l.X})
				})
		case 4:
			cur = p.CoGroupNode(fmt.Sprintf("cogroup%d", i), cur, other, record.KeyA, record.KeyA,
				func(k int64, lg, rg []record.Record, out dataflow.Emitter) {
					out.Emit(record.Record{A: k, B: int64(len(lg)*100 + len(rg))})
				})
		}
	}
	sink := p.SinkNode("out", cur)
	return p, sink
}

func runPlanAt(t *testing.T, seed uint64, par int) []record.Record {
	t.Helper()
	p, sink := buildRandomPlan(seed)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: par})
	if err != nil {
		t.Fatalf("seed %d par %d: optimize: %v", seed, par, err)
	}
	e := NewExecutor(Config{})
	res, err := e.Run(phys)
	if err != nil {
		t.Fatalf("seed %d par %d: run: %v", seed, par, err)
	}
	return sorted(res.Records(sink.ID))
}

func TestFuzzPlansParallelismInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		baseline := runPlanAt(t, seed, 1)
		for _, par := range []int{2, 5} {
			got := runPlanAt(t, seed, par)
			if len(got) != len(baseline) {
				t.Fatalf("seed %d: par %d produced %d records, par 1 produced %d",
					seed, par, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("seed %d par %d: record %d = %v, want %v",
						seed, par, i, got[i], baseline[i])
				}
			}
		}
	}
}

func TestFuzzPlansRepeatable(t *testing.T) {
	// The same plan executed twice on one executor must agree (exchange
	// scheduling must not leak into results).
	for seed := uint64(100); seed <= 120; seed++ {
		a := runPlanAt(t, seed, 3)
		b := runPlanAt(t, seed, 3)
		if len(a) != len(b) {
			t.Fatalf("seed %d: non-deterministic cardinality", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: non-deterministic record %d", seed, i)
			}
		}
	}
}
