package runtime

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/record"
)

// batchPool recycles record batches through a sync.Pool so steady-state
// supersteps run without per-batch heap allocation. Ownership discipline:
// a writer obtains a batch with get, fills it, and pushes it into exactly
// one exchange queue; the consumer that pops it either retains it (stream
// caches keep their batches) or returns it with put once every record has
// been copied out. Records are plain values, so a consumed batch holds no
// live references.
//
// The pool stores *record.Batch headers and keeps the spent headers in a
// second pool, so neither get nor put allocates in steady state (a bare
// slice would be boxed on every Put).
type batchPool struct {
	full  sync.Pool // *record.Batch with usable backing arrays
	empty sync.Pool // *record.Batch headers whose slice was handed out
	size  int
	m     *metrics.Counters
}

func newBatchPool(size int, m *metrics.Counters) *batchPool {
	p := &batchPool{size: size, m: m}
	p.full.New = func() any {
		if m != nil {
			m.BatchesAllocated.Add(1)
		}
		b := make(record.Batch, 0, size)
		return &b
	}
	return p
}

// get returns an empty batch with the pool's standard capacity.
func (p *batchPool) get() record.Batch {
	bp := p.full.Get().(*record.Batch)
	b := (*bp)[:0]
	*bp = nil
	p.empty.Put(bp)
	return b
}

// put returns a consumed batch for reuse. Batches that did not originate
// from the pool (undersized foreign slices) are left to the GC.
func (p *batchPool) put(b record.Batch) {
	if cap(b) < p.size {
		return
	}
	if p.m != nil {
		p.m.BatchesRecycled.Add(1)
	}
	bp, _ := p.empty.Get().(*record.Batch)
	if bp == nil {
		bp = new(record.Batch)
	}
	*bp = b[:0]
	p.full.Put(bp)
}
