package runtime

import (
	"encoding/binary"
	"testing"

	"repro/internal/record"
)

// FuzzSolutionBackend feeds a random insert/update/lookup/delete sequence
// to all solution backends (including a spill backend under a tiny budget,
// so evictions interleave with the operations) and checks every
// observation against a model map applying the seed semantics, including
// comparator arbitration in put and tombstone recycling after deletes.
func FuzzSolutionBackend(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 1, 2, 3, 4, 0, 0, 0, 0, 9, 9, 9, 9, 8, 7})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// CPO comparator: larger X succeeds (put keeps the CPO-larger one).
		cmp := func(a, b record.Record) int {
			switch {
			case a.X > b.X:
				return 1
			case a.X < b.X:
				return -1
			default:
				return 0
			}
		}
		sets := []*SolutionSet{
			NewSolutionSetWith(3, record.KeyA, cmp, nil, SolutionOptions{Backend: SolutionMap}),
			NewSolutionSetWith(3, record.KeyA, cmp, nil, SolutionOptions{Backend: SolutionCompact}),
			NewSolutionSetWith(3, record.KeyA, cmp, nil,
				SolutionOptions{Backend: SolutionSpill, MemoryBudget: 8 * record.EncodedSize}),
		}
		model := make(map[int64]record.Record)

		for len(data) >= 5 {
			op := data[0] % 5
			k := int64(data[1] % 61)
			x := float64(int8(data[2]))
			b := int64(data[3])
			data = data[4:]
			r := record.Record{A: k, B: b, X: x}
			switch op {
			case 0, 1: // update (twice as likely as lookup)
				old, exists := model[k]
				changed := true
				if exists && cmp(r, old) <= 0 {
					changed = false
				}
				if exists && old.Equal(r) {
					changed = false
				}
				if changed {
					model[k] = r
				}
				for i, s := range sets {
					if got := s.Update(r); got != changed {
						t.Fatalf("backend %d: Update(%v) = %v, want %v", i, r, got, changed)
					}
				}
			case 2, 3: // lookup
				want, wantOK := model[k]
				for i, s := range sets {
					got, ok := s.Lookup(s.PartitionFor(k), k)
					if ok != wantOK || (ok && !got.Equal(want)) {
						t.Fatalf("backend %d: Lookup(%d) = %v,%v, want %v,%v", i, k, got, ok, want, wantOK)
					}
				}
			case 4: // delete
				_, wantOK := model[k]
				delete(model, k)
				for i, s := range sets {
					if got := s.Delete(k); got != wantOK {
						t.Fatalf("backend %d: Delete(%d) = %v, want %v", i, k, got, wantOK)
					}
				}
			}
		}
		for i, s := range sets {
			if s.Size() != len(model) {
				t.Fatalf("backend %d: Size = %d, want %d", i, s.Size(), len(model))
			}
			for _, r := range s.Snapshot() {
				if want := model[r.A]; !want.Equal(r) {
					t.Fatalf("backend %d: snapshot %v, want %v", i, r, want)
				}
			}
		}
	})
}

// FuzzBatchRoundTrip pushes arbitrary record batches through the spill
// codec (EncodeBatch -> spill file -> streaming replay) and requires the
// replayed records to match exactly, and DecodeBatch on arbitrary bytes to
// fail cleanly rather than panic.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic the decoder.
		if b, rest, err := record.DecodeBatch(data); err == nil {
			re := record.EncodeBatch(nil, b)
			if len(re)+len(rest) != len(data) {
				t.Fatalf("re-encode consumed %d+%d bytes of %d", len(re), len(rest), len(data))
			}
		}

		// Deterministically derive batches from the fuzz input and round-trip
		// them through a spill file.
		var batches []record.Batch
		var all []record.Record
		for i := 0; i+8 <= len(data) && len(all) < 1<<12; i += 8 {
			v := binary.LittleEndian.Uint64(data[i : i+8])
			r := record.Record{
				A:   int64(v),
				B:   int64(v >> 7),
				X:   float64(int32(v)) / 3,
				Tag: byte(v >> 56),
			}
			all = append(all, r)
			if len(batches) == 0 || len(batches[len(batches)-1]) >= 3 {
				batches = append(batches, nil)
			}
			batches[len(batches)-1] = append(batches[len(batches)-1], r)
		}
		sf, err := spillBatches(batches)
		if err != nil {
			t.Fatal(err)
		}
		defer sf.remove()
		var got []record.Record
		if err := sf.replay(func(b record.Batch) { got = append(got, b...) }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(all) {
			t.Fatalf("replayed %d records, want %d", len(got), len(all))
		}
		for i := range got {
			if !got[i].Equal(all[i]) {
				t.Fatalf("record %d: %v != %v", i, got[i], all[i])
			}
		}
	})
}
