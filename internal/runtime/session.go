package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Session is a persistent, partition-pinned execution context for one
// physical plan. Opening a session spawns one long-lived worker goroutine
// per (node, partition); each Run call is one superstep that reuses those
// workers, the per-edge exchanges, and the pooled record batches, so the
// steady-state passes of an iteration pay no plan-setup cost (§4.2: the
// constant data path is cached, and §6.1: records stay compact to avoid
// allocation overhead).
//
// A session is not safe for concurrent Run calls. Close releases the
// workers; the executor (and its caches) remains usable, so a driver can
// open a new session on a re-optimized plan mid-iteration.
type Session struct {
	e    *Executor
	plan *optimizer.PhysPlan
	par  int
	pool *batchPool

	// tr ships batches for partitions this process does not host; nil for
	// the default in-memory transport (every partition hosted). hosted and
	// hostedParts are nil when tr is nil, which keeps the single-process
	// paths branch-free.
	tr          Transport
	hosted      []bool
	hostedParts []int

	workers []*worker // one per (node, partition), parked between supersteps
	tasks   []*task   // parallel to workers; wiring mutated on recompile

	// exchanges is keyed by the plan's stable Edge.ID; entries are
	// allocated on first need and reset — not rebuilt — afterwards.
	exchanges []*exchange
	active    []*exchange // exchanges the current schedule uses

	// The schedule the tasks are wired for, as reusable node- and
	// edge-indexed bitmaps (node IDs and edge IDs are dense). The
	// schedule changes when caches fill (a constant subtree drops out,
	// or a still-live producer stops feeding a cache-satisfied edge) or
	// when the executor's cache generation moves (caches dropped).
	liveNow, livePrev []bool // by PhysNode.ID: node runs this superstep
	edgeNow, edgePrev []bool // by Edge.ID: edge carries an exchange
	genPrev           uint64
	compiled          bool

	cur    Result // sink collection target of the in-flight superstep
	closed bool

	// step is the superstep index stamped on this Run's spans. Mutated only
	// between supersteps (workers are parked), so workers read it
	// race-free while recording operator spans.
	step int32
}

// worker executes one (node, partition) task each superstep. All live
// workers of a superstep run concurrently, exactly like the seed
// executor's per-Run goroutines, so the pipelined exchange semantics and
// their deadlock-freedom argument carry over unchanged — the only
// difference is that the goroutines park on a channel between supersteps
// instead of exiting.
type worker struct {
	t    *task
	live bool // does t participate in the current schedule?
	fire chan *superstep
}

// superstep is the per-Run rendezvous between the session and its workers.
type superstep struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

func (st *superstep) addErr(err error) {
	st.mu.Lock()
	st.errs = append(st.errs, err)
	st.mu.Unlock()
}

// OpenSession creates a persistent execution context for plan p, spawning
// its partition-pinned workers. The caller must Close it; iteration
// drivers keep one session for the whole iteration and run every
// superstep through it.
func (e *Executor) OpenSession(p *optimizer.PhysPlan) *Session {
	return e.OpenSessionOn(p, nil)
}

// OpenSessionOn opens a session that hosts only the partitions the
// transport places in this process; batches for the others are shipped
// through tr. A nil transport hosts everything in-process (the default).
// The plan's logical parallelism is unchanged — only the (node, partition)
// workers of hosted partitions are spawned here, so N processes opened on
// the same plan with complementary placements together form one logical
// session.
func (e *Executor) OpenSessionOn(p *optimizer.PhysPlan, tr Transport) *Session {
	par := p.Parallelism
	if par < 1 {
		par = 1
	}
	s := &Session{
		e: e, plan: p, par: par, tr: tr,
		pool:      newBatchPool(e.cfg.BatchSize, e.cfg.Metrics),
		exchanges: make([]*exchange, p.NumEdges),
		liveNow:   make([]bool, len(p.Nodes)),
		livePrev:  make([]bool, len(p.Nodes)),
		edgeNow:   make([]bool, p.NumEdges),
		edgePrev:  make([]bool, p.NumEdges),
	}
	if tr != nil {
		s.hosted = make([]bool, par)
		for part := 0; part < par; part++ {
			if tr.Hosted(part) {
				s.hosted[part] = true
				s.hostedParts = append(s.hostedParts, part)
			}
		}
	}
	for _, n := range p.Nodes {
		for part := 0; part < par; part++ {
			if s.hosted != nil && !s.hosted[part] {
				continue
			}
			t := &task{e: e, sess: s, n: n, part: part, par: par, m: e.cfg.Metrics}
			w := &worker{t: t, fire: make(chan *superstep, 1)}
			s.tasks = append(s.tasks, t)
			s.workers = append(s.workers, w)
			go w.loop()
		}
	}
	if m := e.cfg.Metrics; m != nil {
		m.WorkersSpawned.Add(int64(len(s.workers)))
	}
	return s
}

// HostedParts returns the partitions this session executes, ascending;
// nil means all of them (no transport).
func (s *Session) HostedParts() []int { return s.hostedParts }

func (w *worker) loop() {
	for step := range w.fire {
		if w.live {
			if sink := w.t.e.cfg.Trace; sink != nil {
				t0 := time.Now()
				err := runTask(w.t)
				cfg := &w.t.e.cfg
				sink.RecordSpan(obs.Span{
					Trace: cfg.TraceID,
					Host:  int32(cfg.Host),
					Part:  int32(w.t.part),
					Step:  w.t.sess.step,
					Phase: obs.PhaseOperator,
					Start: t0.UnixNano(),
					Dur:   int64(time.Since(t0)),
					Label: w.t.n.Name(),
				})
				if err != nil {
					step.addErr(err)
				}
			} else if err := runTask(w.t); err != nil {
				step.addErr(err)
			}
		}
		step.wg.Done()
	}
}

// runTask executes one task, converting panics into errors and always
// flushing/closing the task's output writers so downstream consumers in
// other partitions cannot block on a stream that will never end.
func runTask(t *task) (err error) {
	defer func() {
		for _, w := range t.outs {
			w.done()
		}
		if r := recover(); r != nil {
			err = fmt.Errorf("runtime: task %s[%d] panicked: %v", t.n.Name(), t.part, r)
		}
	}()
	if rerr := t.run(); rerr != nil {
		err = fmt.Errorf("runtime: task %s[%d]: %w", t.n.Name(), t.part, rerr)
	}
	return err
}

// shipMeter is implemented by transports that time their outbound sends
// (TCPTransport); sessions read the accumulator's delta per superstep to
// attribute ship time to the step's span.
type shipMeter interface {
	ShipNanos() int64
}

// SetTraceStep sets the superstep index stamped on the next Run's spans.
// Iteration drivers that reopen a session mid-run (re-optimization) call
// it so the trace's step numbering stays continuous; without it each
// session's spans count from 0.
func (s *Session) SetTraceStep(step int) { s.step = int32(step) }

// Run executes one superstep of the plan and returns the sink outputs.
// Sink output slices are freshly allocated and owned by the caller; all
// internal transport state is recycled for the next Run.
func (s *Session) Run() (Result, error) {
	if s.closed {
		return nil, errors.New("runtime: Run on a closed session")
	}
	tsink := s.e.cfg.Trace
	var start time.Time
	var ship0 int64
	meter, _ := s.tr.(shipMeter)
	if tsink != nil {
		start = time.Now()
		if meter != nil {
			ship0 = meter.ShipNanos()
		}
	}
	s.compile()

	results := make(Result, len(s.plan.Sinks))
	for _, sink := range s.plan.Sinks {
		results[sink.Logical.ID] = make([][]record.Record, s.par)
	}
	s.cur = results

	step := &superstep{}
	step.wg.Add(len(s.workers))
	for _, w := range s.workers {
		w.fire <- step
	}
	step.wg.Wait()
	s.cur = nil
	if s.tr != nil {
		// Detach the exchanges before returning: a peer racing into the
		// next superstep must park its traffic in the transport, not push
		// into queues about to be reset. Transport failures surface here —
		// the failure path force-closed the queues, so the wait above
		// cannot hang on a dead peer's missing producers.
		s.tr.disarmAll()
		if err := s.tr.Err(); err != nil {
			return nil, err
		}
	}
	if tsink != nil {
		cfg := &s.e.cfg
		now := time.Now()
		tsink.RecordSpan(obs.Span{
			Trace: cfg.TraceID, Host: int32(cfg.Host), Part: -1, Step: s.step,
			Phase: obs.PhaseSuperstep, Start: start.UnixNano(),
			Dur: int64(now.Sub(start)), Label: cfg.TraceLabel,
		})
		if meter != nil {
			if d := meter.ShipNanos() - ship0; d > 0 {
				tsink.RecordSpan(obs.Span{
					Trace: cfg.TraceID, Host: int32(cfg.Host), Part: -1, Step: s.step,
					Phase: obs.PhaseShip, Start: start.UnixNano(), Dur: d,
					Label: cfg.TraceLabel,
				})
			}
		}
		s.step++
	}
	if len(step.errs) > 0 {
		return nil, step.errs[0] // first error wins; all tasks already finished
	}
	return results, nil
}

// Close releases the session's workers. Idempotent. The executor's caches
// and solution set are untouched.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, w := range s.workers {
		close(w.fire)
	}
}

type outSpec struct {
	ex   *exchange
	ship optimizer.ShipStrategy
	key  record.KeyFunc
}

// compile computes the superstep's schedule — which nodes run, and which
// edges carry an exchange — and rewires tasks only when it differs from
// the one they are wired for. In the steady state of an iteration (same
// schedule, same cache generation) it allocates nothing and only resets
// the active exchanges.
func (s *Session) compile() {
	e, par := s.e, s.par

	// Liveness: skip subtrees whose output is already cached.
	for i := range s.liveNow {
		s.liveNow[i] = false
	}
	var mark func(n *optimizer.PhysNode)
	mark = func(n *optimizer.PhysNode) {
		if s.liveNow[n.ID] {
			return
		}
		s.liveNow[n.ID] = true
		for i, edge := range n.Inputs {
			if edge.Cache && s.cacheFilled(n, i) {
				continue
			}
			mark(edge.From)
		}
	}
	for _, sink := range s.plan.Sinks {
		mark(sink)
	}

	// Active edges: every live consumer's input that is not served from
	// a filled cache. Tracked separately from node liveness because an
	// edge can go cache-satisfied while its producer stays live through
	// another consumer — the producer must then stop feeding it.
	for i := range s.edgeNow {
		s.edgeNow[i] = false
	}
	for _, n := range s.plan.Nodes {
		if !s.liveNow[n.ID] {
			continue
		}
		for i := range n.Inputs {
			edge := &n.Inputs[i]
			if edge.Cache && s.cacheFilled(n, i) {
				continue
			}
			s.edgeNow[edge.ID] = true
		}
	}

	// Unchanged schedule under the same cache generation: fast path.
	// (InvalidateCaches replaces the slot objects, so wiring compiled
	// against an older generation would replay stale caches.)
	if s.compiled && s.genPrev == e.cacheGen &&
		boolsEqual(s.liveNow, s.livePrev) && boolsEqual(s.edgeNow, s.edgePrev) {
		s.resetActive()
		return
	}
	s.compiled = true
	s.genPrev = e.cacheGen
	copy(s.livePrev, s.liveNow)
	copy(s.edgePrev, s.edgeNow)

	// Exchanges for every active edge, keyed by the plan's stable edge
	// identity so later schedules find them again.
	s.active = s.active[:0]
	outs := make(map[int][]outSpec) // producer node ID -> outputs
	for _, n := range s.plan.Nodes {
		for i := range n.Inputs {
			edge := &n.Inputs[i]
			if !s.edgeNow[edge.ID] {
				continue
			}
			ex := s.exchanges[edge.ID]
			if ex == nil {
				ex = newExchange(edge.ID, par, par, s.pool)
				s.exchanges[edge.ID] = ex
			}
			s.active = append(s.active, ex)
			outs[edge.From.ID] = append(outs[edge.From.ID], outSpec{
				ex: ex, ship: edge.Ship, key: edge.Key,
			})
		}
	}

	// Rewire every task for the new schedule.
	for idx, t := range s.tasks {
		w := s.workers[idx]
		n := t.n
		w.live = s.liveNow[n.ID]
		if !w.live {
			t.ins, t.slots, t.outs = nil, nil, nil
			continue
		}
		t.ins = make([]inStream, len(n.Inputs))
		t.slots = make([]*cacheSlot, len(n.Inputs))
		for i := range n.Inputs {
			edge := &n.Inputs[i]
			if edge.Cache {
				t.slots[i] = e.slot(n, i, t.part)
			}
			if s.edgeNow[edge.ID] {
				t.ins[i] = queueStream{q: s.exchanges[edge.ID].queues[t.part]}
			}
		}
		t.outs = t.outs[:0]
		for _, o := range outs[n.ID] {
			t.outs = append(t.outs, newWriter(o.ex, o.ship, o.key, t.part, e.cfg.BatchSize, s.pool, e.cfg.Metrics, s.hosted, s.tr))
		}
	}
	s.resetActive()
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resetActive rearms the schedule's exchanges for the next superstep and
// accounts reuse. With a transport, each exchange is armed only after its
// reset, so remote traffic that raced ahead of the barrier flushes into
// fresh queues instead of being swept away as a previous superstep's
// leftovers.
func (s *Session) resetActive() {
	reused := int64(0)
	for _, ex := range s.active {
		ex.reset(s.par, s.pool)
		if s.tr != nil {
			s.tr.arm(ex)
		}
		if ex.used {
			reused++
		} else {
			ex.used = true
		}
	}
	if m := s.e.cfg.Metrics; m != nil && reused > 0 {
		m.ExchangesReused.Add(reused)
	}
}

// cacheFilled reports whether the cached input's slots are filled for
// every partition this session hosts. Hosted-only is what keeps the
// superstep schedule identical across the processes of a distributed
// session: each process fills its own partitions' slots on the same
// superstep, so "cache satisfied" flips everywhere at once.
func (s *Session) cacheFilled(n *optimizer.PhysNode, input int) bool {
	if s.hostedParts == nil {
		return s.e.slotsFilled(n, input, s.par)
	}
	return s.e.slotsFilledAmong(n, input, s.hostedParts)
}
