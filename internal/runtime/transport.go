package runtime

import "repro/internal/record"

// Placement assigns each partition to the index of the process hosting
// it. Placement is fixed at session open and survives reset() between
// supersteps: exchanges are keyed by stable edge IDs and rearmed, not
// rebuilt, so a session's wiring — including which partitions are remote —
// never changes mid-iteration.
type Placement []int

// ContiguousPlacement spreads par partitions over hosts processes in
// contiguous ranges: partition p lives on host p*hosts/par. Contiguous
// ranges keep each host's solution-set partitions, placeholder slices and
// sink outputs dense, and make the final solution assembly a plain
// concatenation in partition order.
func ContiguousPlacement(par, hosts int) Placement {
	if hosts < 1 {
		hosts = 1
	}
	pl := make(Placement, par)
	for p := range pl {
		pl[p] = p * hosts / par
	}
	return pl
}

// HostedBy returns the partitions placed on the given host, ascending.
func (pl Placement) HostedBy(host int) []int {
	var out []int
	for p, h := range pl {
		if h == host {
			out = append(out, p)
		}
	}
	return out
}

// Transport moves exchange traffic to partitions a session does not host.
// The in-memory MPSC queues remain the transport for hosted partitions —
// a session opened without a transport (OpenSession) hosts every
// partition and never leaves process memory, which is the default.
//
// A Transport instance carries exactly one session at a time: the session
// arms it with the exchanges of each superstep's schedule and disarms it
// at the superstep barrier, so inbound traffic racing a barrier parks in
// the transport until the next superstep's exchanges exist.
//
// Send and FinishProducer never block on consumers (the queues are
// unbounded dams); failures are absorbed, counted as TransportErrors,
// and surfaced through Err — the driver checks it after every superstep.
type Transport interface {
	// Hosted reports whether partition p executes in this process.
	Hosted(p int) bool
	// Send ships one batch to (edge, part) on the process hosting part.
	// The batch is serialized before Send returns; the caller recycles it.
	Send(edgeID, part int, b record.Batch)
	// FinishProducer announces to every peer that one of this process's
	// producer tasks for edgeID has finished (after all its Sends).
	FinishProducer(edgeID int)
	// Err returns the first transport failure, if any.
	Err() error

	// arm installs ex as the recipient of inbound traffic for its edge,
	// flushing anything that arrived while the session was between
	// supersteps. disarmAll detaches every exchange at the barrier.
	// Unexported: transports live in this package; sessions drive them.
	arm(ex *exchange)
	disarmAll()
}

// Rebinder is the optional Transport capability behind coordinated plan
// epochs: a re-optimized plan has a new edge-ID space, so before a fresh
// session opens on it, the transport's per-edge routing state must be
// re-sized to the new plan's edge count. Rebind may only be called while
// the transport is quiescent — the old session closed and every peer
// parked at the same epoch barrier — since in-flight traffic for old
// edge IDs would be misrouted under the new plan.
type Rebinder interface {
	Rebind(numEdges int)
}
