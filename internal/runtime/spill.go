package runtime

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/record"
)

// Spilling support for loop-invariant caches (§4.3: "The caches are
// in-memory and gradually spilled in the presence of memory pressure").
// When the executor's cache budget is exceeded, newly-filled stream caches
// are written to temporary files in serialized record form and replayed
// from disk on later iterations. Index caches (hash tables backing join
// build sides) stay pinned in memory: they are probed per record and
// spilling them would defeat their purpose.

// spillFile is one cache slot's on-disk representation.
type spillFile struct {
	path  string
	bytes int64
}

// spillBatches serializes batches to a fresh temp file.
func spillBatches(batches []record.Batch) (*spillFile, error) {
	f, err := os.CreateTemp("", "spinflow-spill-*.bin")
	if err != nil {
		return nil, fmt.Errorf("runtime: creating spill file: %w", err)
	}
	bw := bufio.NewWriter(f)
	var buf []byte
	var total int64
	for _, b := range batches {
		buf = record.EncodeBatch(buf[:0], b)
		n, err := bw.Write(buf)
		if err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, fmt.Errorf("runtime: writing spill file: %w", err)
		}
		total += int64(n)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return nil, err
	}
	return &spillFile{path: f.Name(), bytes: total}, nil
}

// replayBufSize is the fixed size of the buffered reader replay streams
// spilled data through; memory per replay is bounded by this plus one
// decoded batch, independent of the spill file's size.
const replayBufSize = 64 << 10

// replay streams the spilled batches back through f, decoding records
// one at a time from a fixed-size buffered reader — the file is never
// materialized in memory, which is the point of spilling it.
func (s *spillFile) replay(f func(record.Batch)) error {
	file, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("runtime: opening spill file: %w", err)
	}
	defer file.Close()
	br := bufio.NewReaderSize(file, replayBufSize)
	var hdr [4]byte
	var rbuf [record.EncodedSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("runtime: reading spill batch header: %w", err)
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		// Cap the allocation hint: a corrupt length prefix must produce a
		// short-read error below, not a multi-gigabyte allocation. (Same
		// hardening as record.DecodeBatch.)
		capHint := n
		if capHint > spillChunk {
			capHint = spillChunk
		}
		b := make(record.Batch, 0, capHint)
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(br, rbuf[:]); err != nil {
				return fmt.Errorf("runtime: reading spill record: %w", err)
			}
			r, _, err := record.Decode(rbuf[:])
			if err != nil {
				return fmt.Errorf("runtime: decoding spill file: %w", err)
			}
			b = append(b, r)
		}
		f(b)
	}
}

// remove deletes the backing file.
func (s *spillFile) remove() {
	os.Remove(s.path)
}

// batchesBytes estimates the in-memory footprint of cached batches.
func batchesBytes(batches []record.Batch) int64 {
	var n int64
	for _, b := range batches {
		n += int64(len(b)) * record.EncodedSize
	}
	return n
}

// cacheAccountant tracks cache memory against a budget.
type cacheAccountant struct {
	budget int64 // 0 = unlimited
	used   atomic.Int64
}

// admit reports whether n more bytes fit in memory, reserving them if so.
func (a *cacheAccountant) admit(n int64) bool {
	if a.budget <= 0 {
		a.used.Add(n)
		return true
	}
	for {
		cur := a.used.Load()
		if cur+n > a.budget {
			return false
		}
		if a.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// release returns bytes to the budget.
func (a *cacheAccountant) release(n int64) {
	a.used.Add(-n)
}
