package runtime

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/record"
)

// The TCP wire protocol: every message starts with a fixed 17-byte header —
// kind, edge ID, destination partition, trace ID — and data messages carry
// one record frame (length-prefixed, CRC32-checked; see
// record.AppendFrame), so a torn connection or bit flip surfaces as
// ErrCorruptFrame instead of a misaligned stream. Per-connection TCP
// ordering guarantees that a producer's end-of-stream message arrives
// after all of its data.
//
// The trace ID ties every frame to the distributed run that produced it
// (obs.TraceID, stamped by the coordinator's job spec). Receivers with a
// non-zero expected ID reject frames carrying a different non-zero ID —
// cross-job traffic from a stale peer fails the run instead of silently
// merging into the wrong fixpoint. Zero means untraced and matches
// anything.
const (
	tcpMsgData  = 1 // header + one record frame
	tcpMsgEOS   = 2 // header only: one remote producer of edge finished
	tcpMsgDataZ = 3 // header + u32 length + flate-compressed record frame

	tcpHeaderSize = 17
	tcpTraceOff   = 9 // trace ID offset within the header

	// tcpZMinSize is the smallest frame worth compressing: below it the
	// flate header overhead and the extra CPU beat any byte savings.
	tcpZMinSize = 512
	// tcpZMaxSize bounds the compressed-length prefix a receiver will
	// honor, so a corrupt header cannot force an unbounded allocation.
	tcpZMaxSize = 1 << 30
)

// tcpPreamble opens every peer connection: a magic marker plus the
// dialer's host ID, so the acceptor knows which peer it is talking to and
// stray connections are rejected before they can corrupt an exchange.
var tcpMagic = [4]byte{'S', 'P', 'X', '1'}

// TCPTransport is the distributed Transport: a session's non-hosted
// partitions are reached over persistent TCP connections to the peer
// processes hosting them, one connection per peer pair (the higher host
// ID dials). Batches travel as CRC32 record frames behind the 9-byte
// message header; a remote producer's writer.done turns into one EOS
// message per peer, so every exchange still closes after exactly
// `parallelism` producer completions — in-process tasks and remote peers
// combined.
//
// Inbound traffic that arrives between supersteps (a peer that started
// the next superstep first) parks in per-edge inboxes until the session
// re-arms the exchanges; placement never changes, so the parked batches
// always belong to the partition range this process hosts.
type TCPTransport struct {
	hostID    int
	placement Placement
	hosted    []bool
	m         *metrics.Counters

	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup

	mu    sync.Mutex // guards peers registration and failure state
	peers []*tcpPeer // by host ID; nil at hostID and for unconnected peers
	err   error

	// inbox is the per-edge routing state, indexed by plan edge ID. It is
	// an atomic pointer because a coordinated plan epoch (Rebind) replaces
	// the whole set for the new plan's edge-ID space while the read loops
	// keep running: traffic is quiescent at the epoch barrier, but the
	// race detector rightly demands real synchronization between the swap
	// and the readers.
	inbox atomic.Pointer[[]edgeInbox]

	// traceID stamps outbound frame headers and screens inbound ones; set
	// by SetObs before the session runs. sendHist (optional) observes
	// per-send wall time; shipNanos accumulates it for the session's ship
	// span. timeSends gates the clock calls so an untraced transport pays
	// nothing.
	traceID   atomic.Uint64
	sendHist  *obs.Histogram
	timeSends atomic.Bool
	shipNanos atomic.Int64

	// compress enables flate compression of outbound data frames. The
	// receive path always understands both kinds, so hosts with different
	// settings interoperate — compression is a per-sender choice.
	compress atomic.Bool
}

// SetCompression toggles flate compression of outbound data-plane frames
// (Config.WireCompression). Frames below tcpZMinSize, and frames that
// flate fails to shrink, are sent uncompressed; receivers auto-detect by
// message kind.
func (t *TCPTransport) SetCompression(on bool) { t.compress.Store(on) }

// SetObs attaches telemetry: id is stamped on (and verified against)
// frame headers, sendHist — when non-nil — observes each outbound send's
// wall time. Call before the session starts running supersteps.
func (t *TCPTransport) SetObs(id obs.TraceID, sendHist *obs.Histogram) {
	t.traceID.Store(uint64(id))
	t.sendHist = sendHist
	t.timeSends.Store(id != 0 || sendHist != nil)
}

// ShipNanos returns the accumulated outbound send time (grows only after
// SetObs enabled timing); sessions diff it across a superstep to size the
// ship span.
func (t *TCPTransport) ShipNanos() int64 { return t.shipNanos.Load() }

// tcpPeer is one live connection to a peer process. Writes are serialized
// under mu; enc is the per-peer reusable serialization buffer, zw/zbuf the
// reusable flate compressor state for wire compression.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	enc  []byte
	zw   *flate.Writer
	zbuf bytes.Buffer
}

// edgeInbox buffers inbound traffic for one plan edge while no exchange
// is armed (between supersteps), and routes it directly once one is.
type edgeInbox struct {
	mu      sync.Mutex
	ex      *exchange
	pending []pendBatch
	eos     int
	// failed closes any future armed exchange immediately, so a run
	// cannot hang waiting for producers on a dead connection.
	failed bool
}

type pendBatch struct {
	part int
	b    record.Batch
}

// NewTCPTransport creates the transport for one process of a distributed
// session: hostID is this process's index into the placement, numEdges is
// the plan's edge count (PhysPlan.NumEdges). Call Listen, then
// ConnectPeers, before opening the session.
func NewTCPTransport(hostID int, placement Placement, numEdges int, m *metrics.Counters) *TCPTransport {
	hosted := make([]bool, len(placement))
	for p, h := range placement {
		hosted[p] = h == hostID
	}
	hosts := 0
	for _, h := range placement {
		if h+1 > hosts {
			hosts = h + 1
		}
	}
	t := &TCPTransport{
		hostID:    hostID,
		placement: placement,
		hosted:    hosted,
		m:         m,
		peers:     make([]*tcpPeer, hosts),
	}
	boxes := make([]edgeInbox, numEdges)
	t.inbox.Store(&boxes)
	return t
}

// Rebind implements Rebinder: replace the per-edge inboxes with a fresh
// set sized for a re-optimized plan's edge count. Callers guarantee
// quiescence (see the interface contract); anything still parked for an
// old edge ID is dropped with the old set. If the transport has already
// failed, the new inboxes are born failed, so the next session's
// exchanges close immediately instead of hanging.
func (t *TCPTransport) Rebind(numEdges int) {
	boxes := make([]edgeInbox, numEdges)
	t.inbox.Store(&boxes)
	// Re-check the failure state after the swap: a fail() racing the
	// store may have marked only the old set.
	t.mu.Lock()
	err := t.err
	t.mu.Unlock()
	if err != nil {
		for i := range boxes {
			boxes[i].mu.Lock()
			boxes[i].failed = true
			boxes[i].mu.Unlock()
		}
	}
}

// Listen starts the transport's data listener and returns its address
// (pass ":0" for an ephemeral port).
func (t *TCPTransport) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return ln.Addr().String(), nil
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if !t.closed.Load() {
				t.fail(fmt.Errorf("runtime: transport accept: %w", err))
			}
			return
		}
		var pre [8]byte
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := io.ReadFull(conn, pre[:]); err != nil || [4]byte(pre[:4]) != tcpMagic {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		peerID := int(binary.LittleEndian.Uint32(pre[4:8]))
		if !t.register(peerID, conn) {
			conn.Close()
		}
	}
}

// register installs a peer connection and starts its read loop. It
// rejects out-of-range or duplicate peers.
func (t *TCPTransport) register(peerID int, conn net.Conn) bool {
	t.mu.Lock()
	if peerID < 0 || peerID >= len(t.peers) || peerID == t.hostID || t.peers[peerID] != nil {
		t.mu.Unlock()
		return false
	}
	t.peers[peerID] = &tcpPeer{conn: conn}
	t.mu.Unlock()
	t.wg.Add(1)
	go t.readLoop(conn)
	return true
}

// ConnectPeers establishes the full mesh: this host dials every peer with
// a lower ID (addrs indexed by host ID) and waits until every peer with a
// higher ID has dialed in, up to the timeout.
func (t *TCPTransport) ConnectPeers(addrs []string, timeout time.Duration) error {
	for id := 0; id < t.hostID && id < len(addrs); id++ {
		conn, err := net.DialTimeout("tcp", addrs[id], timeout)
		if err != nil {
			return fmt.Errorf("runtime: transport dial host %d (%s): %w", id, addrs[id], err)
		}
		var pre [8]byte
		copy(pre[:4], tcpMagic[:])
		binary.LittleEndian.PutUint32(pre[4:8], uint32(t.hostID))
		if _, err := conn.Write(pre[:]); err != nil {
			conn.Close()
			return fmt.Errorf("runtime: transport preamble to host %d: %w", id, err)
		}
		if !t.register(id, conn) {
			conn.Close()
			return fmt.Errorf("runtime: transport: duplicate connection to host %d", id)
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		t.mu.Lock()
		missing := 0
		for id, p := range t.peers {
			if id != t.hostID && p == nil {
				missing++
			}
		}
		err := t.err
		t.mu.Unlock()
		if err != nil {
			return err
		}
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("runtime: transport: %d peer(s) did not connect within %v", missing, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Hosted reports whether partition p executes in this process.
func (t *TCPTransport) Hosted(p int) bool { return t.hosted[p] }

// HostedParts returns this process's partitions, ascending.
func (t *TCPTransport) HostedParts() []int { return t.placement.HostedBy(t.hostID) }

// Send ships one batch to the peer hosting part. Failures are absorbed
// (counted, surfaced via Err); the superstep driver aborts the run.
func (t *TCPTransport) Send(edgeID, part int, b record.Batch) {
	t.mu.Lock()
	p := t.peers[t.placement[part]]
	t.mu.Unlock()
	if p == nil {
		t.fail(fmt.Errorf("runtime: transport: no connection to host %d (partition %d)", t.placement[part], part))
		return
	}
	var t0 time.Time
	timed := t.timeSends.Load()
	if timed {
		t0 = time.Now()
	}
	p.mu.Lock()
	p.enc = p.enc[:0]
	p.enc = append(p.enc, make([]byte, tcpHeaderSize)...)
	p.enc[0] = tcpMsgData
	binary.LittleEndian.PutUint32(p.enc[1:5], uint32(edgeID))
	binary.LittleEndian.PutUint32(p.enc[5:9], uint32(part))
	binary.LittleEndian.PutUint64(p.enc[tcpTraceOff:tcpHeaderSize], t.traceID.Load())
	p.enc = record.AppendFrame(p.enc, b)
	compressed := false
	if t.compress.Load() && len(p.enc)-tcpHeaderSize >= tcpZMinSize {
		compressed = p.compressFrame()
	}
	n := len(p.enc)
	_, err := p.conn.Write(p.enc)
	p.mu.Unlock()
	if timed {
		d := int64(time.Since(t0))
		t.shipNanos.Add(d)
		if t.sendHist != nil {
			t.sendHist.Observe(time.Duration(d))
		}
	}
	if err != nil {
		t.fail(fmt.Errorf("runtime: transport send to host %d: %w", t.placement[part], err))
		return
	}
	if t.m != nil {
		t.m.RemoteBatches.Add(1)
		t.m.RemoteBytes.Add(int64(n))
		if compressed {
			t.m.RemoteBytesCompressed.Add(int64(n))
		}
	}
}

// compressFrame rewrites the staged message in p.enc (header + frame) as
// a tcpMsgDataZ message — header + u32 compressed length + flate bytes —
// if flate actually shrinks the frame. Called with p.mu held; returns
// whether the rewrite happened.
func (p *tcpPeer) compressFrame() bool {
	payload := p.enc[tcpHeaderSize:]
	p.zbuf.Reset()
	if p.zw == nil {
		p.zw, _ = flate.NewWriter(&p.zbuf, flate.BestSpeed)
	} else {
		p.zw.Reset(&p.zbuf)
	}
	if _, err := p.zw.Write(payload); err != nil {
		return false
	}
	if err := p.zw.Close(); err != nil {
		return false
	}
	z := p.zbuf.Bytes()
	if len(z)+4 >= len(payload) {
		return false
	}
	p.enc = p.enc[:tcpHeaderSize]
	p.enc[0] = tcpMsgDataZ
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(z)))
	p.enc = append(p.enc, lb[:]...)
	p.enc = append(p.enc, z...)
	return true
}

// FinishProducer announces one finished local producer of edgeID to every
// peer. TCP ordering makes the EOS arrive after the producer's data.
func (t *TCPTransport) FinishProducer(edgeID int) {
	var hdr [tcpHeaderSize]byte
	hdr[0] = tcpMsgEOS
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(edgeID))
	binary.LittleEndian.PutUint64(hdr[tcpTraceOff:tcpHeaderSize], t.traceID.Load())
	t.mu.Lock()
	peers := append([]*tcpPeer(nil), t.peers...)
	t.mu.Unlock()
	for id, p := range peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		_, err := p.conn.Write(hdr[:])
		p.mu.Unlock()
		if err != nil {
			t.fail(fmt.Errorf("runtime: transport EOS to host %d: %w", id, err))
		}
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	fr := record.NewFrameReader(br)
	// Reusable decompression state for tcpMsgDataZ messages: the
	// compressed bytes buffer, the flate reader (reset per message), and
	// the decompressed-frame buffer the batch is parsed from.
	var (
		zin  []byte
		zr   io.ReadCloser
		zout bytes.Buffer
	)
	for {
		var hdr [tcpHeaderSize]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if !t.closed.Load() {
				t.fail(fmt.Errorf("runtime: transport connection lost: %w", err))
			}
			return
		}
		edge := int(binary.LittleEndian.Uint32(hdr[1:5]))
		if edge < 0 || edge >= len(*t.inbox.Load()) {
			t.fail(fmt.Errorf("runtime: transport: edge %d out of range", edge))
			return
		}
		if got, want := binary.LittleEndian.Uint64(hdr[tcpTraceOff:tcpHeaderSize]), t.traceID.Load(); got != 0 && want != 0 && got != want {
			t.fail(fmt.Errorf("runtime: transport: frame carries trace %016x, this job is %016x — stale peer?", got, want))
			return
		}
		switch hdr[0] {
		case tcpMsgData:
			part := int(binary.LittleEndian.Uint32(hdr[5:9]))
			b, err := fr.Next()
			if err != nil {
				t.fail(fmt.Errorf("runtime: transport frame: %w", err))
				return
			}
			if part < 0 || part >= len(t.hosted) || !t.hosted[part] {
				t.fail(fmt.Errorf("runtime: transport: batch for partition %d not hosted here", part))
				return
			}
			t.deliver(edge, part, b)
		case tcpMsgDataZ:
			part := int(binary.LittleEndian.Uint32(hdr[5:9]))
			var lb [4]byte
			if _, err := io.ReadFull(br, lb[:]); err != nil {
				t.fail(fmt.Errorf("runtime: transport compressed frame length: %w", err))
				return
			}
			zlen := binary.LittleEndian.Uint32(lb[:])
			if zlen == 0 || zlen > tcpZMaxSize {
				t.fail(fmt.Errorf("runtime: transport: compressed frame length %d out of range", zlen))
				return
			}
			if cap(zin) < int(zlen) {
				zin = make([]byte, zlen)
			}
			zin = zin[:zlen]
			if _, err := io.ReadFull(br, zin); err != nil {
				t.fail(fmt.Errorf("runtime: transport compressed frame body: %w", err))
				return
			}
			if zr == nil {
				zr = flate.NewReader(bytes.NewReader(zin))
			} else if err := zr.(flate.Resetter).Reset(bytes.NewReader(zin), nil); err != nil {
				t.fail(fmt.Errorf("runtime: transport flate reset: %w", err))
				return
			}
			zout.Reset()
			if _, err := zout.ReadFrom(zr); err != nil {
				t.fail(fmt.Errorf("runtime: transport flate decompress: %w", err))
				return
			}
			// The decompressed bytes are exactly one CRC32 record frame —
			// the same bytes an uncompressed send would have put on the
			// wire — so the normal frame decoder validates them.
			b, err := record.NewFrameReader(bytes.NewReader(zout.Bytes())).Next()
			if err != nil {
				t.fail(fmt.Errorf("runtime: transport compressed frame: %w", err))
				return
			}
			if part < 0 || part >= len(t.hosted) || !t.hosted[part] {
				t.fail(fmt.Errorf("runtime: transport: batch for partition %d not hosted here", part))
				return
			}
			t.deliver(edge, part, b)
		case tcpMsgEOS:
			t.finish(edge)
		default:
			t.fail(fmt.Errorf("runtime: transport: unknown message kind %d", hdr[0]))
			return
		}
	}
}

// deliver routes one inbound batch: straight into the armed exchange, or
// into the inbox until the session arms one. The inbox lock is held
// across the push: disarmAll takes the same lock, so once the session has
// disarmed (the superstep barrier), no late delivery can touch an
// exchange the next superstep is about to reset.
func (t *TCPTransport) deliver(edge, part int, b record.Batch) {
	in := &(*t.inbox.Load())[edge]
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.ex != nil {
		in.ex.queues[part].push(b)
		return
	}
	in.pending = append(in.pending, pendBatch{part: part, b: b})
}

// finish accounts one remote producer completion for edge, under the same
// lock discipline as deliver.
func (t *TCPTransport) finish(edge int) {
	in := &(*t.inbox.Load())[edge]
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.ex != nil {
		in.ex.producerDone()
		return
	}
	in.eos++
}

// arm implements Transport: the session installs the superstep's exchange
// for its edge and the parked traffic flushes into it.
func (t *TCPTransport) arm(ex *exchange) {
	in := &(*t.inbox.Load())[ex.id]
	in.mu.Lock()
	pending, eos, failed := in.pending, in.eos, in.failed
	in.pending, in.eos = nil, 0
	in.ex = ex
	in.mu.Unlock()
	for _, pb := range pending {
		ex.queues[pb.part].push(pb.b)
	}
	for i := 0; i < eos; i++ {
		ex.producerDone()
	}
	if failed {
		ex.closeAll()
	}
}

// disarmAll implements Transport: detach every exchange at the superstep
// barrier, so traffic racing ahead parks in the inboxes.
func (t *TCPTransport) disarmAll() {
	boxes := *t.inbox.Load()
	for i := range boxes {
		in := &boxes[i]
		in.mu.Lock()
		in.ex = nil
		in.mu.Unlock()
	}
}

// fail records the first transport error, counts it, and force-closes
// every armed exchange so blocked consumers unblock; the driver sees the
// error through Err after the superstep returns.
func (t *TCPTransport) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
	if t.m != nil {
		t.m.TransportErrors.Add(1)
	}
	// Load the inbox set only after recording the error: a concurrent
	// Rebind either publishes its new set before this load (and it gets
	// marked here), or re-reads t.err after its store (and marks it
	// itself) — either way no inbox set escapes unfailed.
	boxes := *t.inbox.Load()
	for i := range boxes {
		in := &boxes[i]
		in.mu.Lock()
		in.failed = true
		ex := in.ex
		in.mu.Unlock()
		if ex != nil {
			ex.closeAll()
		}
	}
}

// Err returns the first transport failure, if any.
func (t *TCPTransport) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close shuts the transport down: the listener and every peer connection
// close, and the read loops drain. Peers observing the closed connections
// fail their own runs (TransportErrors) unless they are shutting down too.
func (t *TCPTransport) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	t.mu.Unlock()
	t.wg.Wait()
}
