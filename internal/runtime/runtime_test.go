package runtime

import (
	"sort"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

func run(t *testing.T, p *dataflow.Plan, par int) (Result, *metrics.Counters) {
	t.Helper()
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: par})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	var m metrics.Counters
	e := NewExecutor(Config{Metrics: &m})
	res, err := e.Run(phys)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, &m
}

func sorted(rs []record.Record) []record.Record {
	out := append([]record.Record(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
	return out
}

func recs(as ...int64) []record.Record {
	out := make([]record.Record, len(as))
	for i, a := range as {
		out[i] = record.Record{A: a}
	}
	return out
}

func TestSourceMapSink(t *testing.T) {
	for _, par := range []int{1, 2, 4} {
		p := dataflow.NewPlan()
		src := p.SourceOf("src", recs(1, 2, 3, 4, 5))
		m := p.MapNode("double", src, func(r record.Record, out dataflow.Emitter) {
			r.A *= 2
			out.Emit(r)
		})
		sink := p.SinkNode("out", m)
		res, _ := run(t, p, par)
		got := sorted(res.Records(sink.ID))
		want := recs(2, 4, 6, 8, 10)
		if len(got) != len(want) {
			t.Fatalf("par=%d: got %d records", par, len(got))
		}
		for i := range want {
			if got[i].A != want[i].A {
				t.Errorf("par=%d: got[%d]=%v", par, i, got[i])
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, par := range []int{1, 3} {
		p := dataflow.NewPlan()
		data := []record.Record{
			{A: 1, X: 1}, {A: 1, X: 2}, {A: 2, X: 5}, {A: 2, X: 7}, {A: 3, X: 10},
		}
		src := p.SourceOf("src", data)
		red := p.ReduceNode("sum", src, record.KeyA, func(k int64, g []record.Record, out dataflow.Emitter) {
			var s float64
			for _, r := range g {
				s += r.X
			}
			out.Emit(record.Record{A: k, X: s})
		})
		sink := p.SinkNode("out", red)
		res, _ := run(t, p, par)
		got := sorted(res.Records(sink.ID))
		want := []record.Record{{A: 1, X: 3}, {A: 2, X: 12}, {A: 3, X: 10}}
		if len(got) != 3 {
			t.Fatalf("par=%d: got %d groups: %v", par, len(got), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("par=%d: group %d = %v, want %v", par, i, got[i], want[i])
			}
		}
	}
}

func TestReduceWithCombiner(t *testing.T) {
	p := dataflow.NewPlan()
	var data []record.Record
	for i := 0; i < 100; i++ {
		data = append(data, record.Record{A: int64(i % 4), X: 1})
	}
	src := p.SourceOf("src", data)
	red := p.ReduceNode("count", src, record.KeyA, func(k int64, g []record.Record, out dataflow.Emitter) {
		var s float64
		for _, r := range g {
			s += r.X
		}
		out.Emit(record.Record{A: k, X: s})
	})
	red.Combinable = true
	sink := p.SinkNode("out", red)
	res, _ := run(t, p, 4)
	got := sorted(res.Records(sink.ID))
	if len(got) != 4 {
		t.Fatalf("got %d groups: %v", len(got), got)
	}
	for _, r := range got {
		if r.X != 25 {
			t.Errorf("group %d = %v, want 25", r.A, r.X)
		}
	}
}

func TestMatchJoin(t *testing.T) {
	// Join (A=id, X=val) with edges (A=src, B=dst) on id==src.
	for _, par := range []int{1, 2, 5} {
		p := dataflow.NewPlan()
		vals := []record.Record{{A: 1, X: 10}, {A: 2, X: 20}, {A: 3, X: 30}}
		edges := []record.Record{{A: 1, B: 2}, {A: 1, B: 3}, {A: 2, B: 3}, {A: 9, B: 9}}
		l := p.SourceOf("vals", vals)
		r := p.SourceOf("edges", edges)
		j := p.MatchNode("join", l, r, record.KeyA, record.KeyA,
			func(lr, rr record.Record, out dataflow.Emitter) {
				out.Emit(record.Record{A: rr.B, X: lr.X})
			})
		sink := p.SinkNode("out", j)
		res, _ := run(t, p, par)
		got := sorted(res.Records(sink.ID))
		want := []record.Record{{A: 2, X: 10}, {A: 3, X: 10}, {A: 3, X: 20}}
		if len(got) != len(want) {
			t.Fatalf("par=%d: got %v", par, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("par=%d: got[%d]=%v want %v", par, i, got[i], want[i])
			}
		}
	}
}

func TestMatchJoinStrategiesAgree(t *testing.T) {
	// All join strategies must produce identical results.
	vals := []record.Record{{A: 1, X: 1}, {A: 2, X: 2}, {A: 2, X: 3}}
	edges := []record.Record{{A: 2, B: 7}, {A: 2, B: 8}, {A: 1, B: 9}}
	build := func() (*dataflow.Plan, *dataflow.Node) {
		p := dataflow.NewPlan()
		l := p.SourceOf("vals", vals)
		r := p.SourceOf("edges", edges)
		j := p.MatchNode("join", l, r, record.KeyA, record.KeyA,
			func(lr, rr record.Record, out dataflow.Emitter) {
				out.Emit(record.Record{A: lr.A, B: rr.B, X: lr.X})
			})
		sink := p.SinkNode("out", j)
		return p, sink
	}
	var results [][]record.Record
	for _, local := range []optimizer.LocalStrategy{optimizer.LocalHashJoin, optimizer.LocalSortMergeJoin} {
		p, sink := build()
		phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Force the local strategy on the join node.
		for _, n := range phys.Nodes {
			if n.Logical.Contract == dataflow.MatchOp {
				n.Local = local
				if local == optimizer.LocalSortMergeJoin {
					n.SortKey = record.KeyA
				}
			}
		}
		e := NewExecutor(Config{})
		res, err := e.Run(phys)
		if err != nil {
			t.Fatalf("%s: %v", local, err)
		}
		results = append(results, sorted(res.Records(sink.ID)))
	}
	if len(results[0]) != len(results[1]) || len(results[0]) != 5 {
		t.Fatalf("strategy disagreement: %v vs %v", results[0], results[1])
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Errorf("row %d: hash=%v smj=%v", i, results[0][i], results[1][i])
		}
	}
}

func TestCoGroupOuterAndInner(t *testing.T) {
	l := []record.Record{{A: 1, X: 1}, {A: 2, X: 2}}
	r := []record.Record{{A: 2, X: 20}, {A: 3, X: 30}}
	for _, inner := range []bool{false, true} {
		p := dataflow.NewPlan()
		ls := p.SourceOf("l", l)
		rs := p.SourceOf("r", r)
		fn := func(k int64, lg, rg []record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: k, B: int64(len(lg)*10 + len(rg))})
		}
		var cg *dataflow.Node
		if inner {
			cg = p.InnerCoGroupNode("cg", ls, rs, record.KeyA, record.KeyA, fn)
		} else {
			cg = p.CoGroupNode("cg", ls, rs, record.KeyA, record.KeyA, fn)
		}
		sink := p.SinkNode("out", cg)
		res, _ := run(t, p, 2)
		got := sorted(res.Records(sink.ID))
		if inner {
			if len(got) != 1 || got[0] != (record.Record{A: 2, B: 11}) {
				t.Errorf("inner cogroup got %v", got)
			}
		} else {
			want := []record.Record{{A: 1, B: 10}, {A: 2, B: 11}, {A: 3, B: 1}}
			if len(got) != 3 {
				t.Fatalf("outer cogroup got %v", got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("outer row %d = %v, want %v", i, got[i], want[i])
				}
			}
		}
	}
}

func TestCross(t *testing.T) {
	p := dataflow.NewPlan()
	l := p.SourceOf("l", recs(1, 2))
	r := p.SourceOf("r", recs(10, 20, 30))
	x := p.CrossNode("x", l, r, func(lr, rr record.Record, out dataflow.Emitter) {
		out.Emit(record.Record{A: lr.A, B: rr.A})
	})
	sink := p.SinkNode("out", x)
	res, _ := run(t, p, 2)
	got := res.Records(sink.ID)
	if len(got) != 6 {
		t.Fatalf("cross emitted %d pairs, want 6", len(got))
	}
}

func TestUnion(t *testing.T) {
	p := dataflow.NewPlan()
	a := p.SourceOf("a", recs(1, 2))
	b := p.SourceOf("b", recs(3))
	u := p.UnionNode("u", a, b)
	sink := p.SinkNode("out", u)
	res, _ := run(t, p, 2)
	got := sorted(res.Records(sink.ID))
	if len(got) != 3 || got[0].A != 1 || got[2].A != 3 {
		t.Fatalf("union got %v", got)
	}
}

func TestFilter(t *testing.T) {
	p := dataflow.NewPlan()
	src := p.SourceOf("s", recs(1, 2, 3, 4, 5, 6))
	f := p.FilterNode("even", src, func(r record.Record) bool { return r.A%2 == 0 })
	sink := p.SinkNode("out", f)
	res, _ := run(t, p, 3)
	if got := res.Records(sink.ID); len(got) != 3 {
		t.Fatalf("filter got %v", got)
	}
}

func TestUDFPanicBecomesError(t *testing.T) {
	p := dataflow.NewPlan()
	src := p.SourceOf("s", recs(1))
	m := p.MapNode("boom", src, func(r record.Record, out dataflow.Emitter) {
		panic("kaboom")
	})
	p.SinkNode("out", m)
	phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(Config{})
	if _, err := e.Run(phys); err == nil {
		t.Fatal("want error from panicking UDF")
	}
}

func TestShippedRecordsCounted(t *testing.T) {
	p := dataflow.NewPlan()
	src := p.SourceOf("s", recs(1, 2, 3, 4))
	red := p.ReduceNode("g", src, record.KeyA, func(k int64, g []record.Record, out dataflow.Emitter) {
		out.Emit(record.Record{A: k})
	})
	p.SinkNode("out", red)
	_, m := run(t, p, 2)
	if m.Snapshot().RecordsShipped == 0 {
		t.Error("partitioning exchange should count shipped records")
	}
}

func TestFanOutSharedProducer(t *testing.T) {
	// One source feeding two sinks through different paths.
	p := dataflow.NewPlan()
	src := p.SourceOf("s", recs(1, 2, 3))
	m1 := p.MapNode("m1", src, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	m2 := p.MapNode("m2", src, func(r record.Record, out dataflow.Emitter) {
		r.A += 10
		out.Emit(r)
	})
	s1 := p.SinkNode("o1", m1)
	s2 := p.SinkNode("o2", m2)
	res, _ := run(t, p, 2)
	if len(res.Records(s1.ID)) != 3 || len(res.Records(s2.ID)) != 3 {
		t.Fatalf("fan-out lost records: %d, %d", len(res.Records(s1.ID)), len(res.Records(s2.ID)))
	}
}

func TestSolutionSetMergeSemantics(t *testing.T) {
	var m metrics.Counters
	// Comparator: smaller B is the CPO-successor (Connected Components).
	cmp := func(a, b record.Record) int {
		switch {
		case a.B < b.B:
			return 1
		case a.B > b.B:
			return -1
		}
		return 0
	}
	s := NewSolutionSet(4, record.KeyA, cmp, &m)
	s.Init([]record.Record{{A: 1, B: 10}, {A: 2, B: 20}})
	if s.Size() != 2 {
		t.Fatalf("size=%d", s.Size())
	}
	// Improving delta replaces; worsening delta is discarded (§5.1).
	changed := s.MergeDelta([]record.Record{{A: 1, B: 5}, {A: 2, B: 99}, {A: 3, B: 30}})
	if changed != 2 {
		t.Fatalf("changed=%d, want 2 (one replace, one insert)", changed)
	}
	r, ok := s.Lookup(s.PartitionFor(1), 1)
	if !ok || r.B != 5 {
		t.Errorf("vertex 1 = %v", r)
	}
	r, _ = s.Lookup(s.PartitionFor(2), 2)
	if r.B != 20 {
		t.Errorf("worsening delta applied: %v", r)
	}
	if m.Snapshot().SolutionUpdates != 2 || m.Snapshot().SolutionAccesses != 2 {
		t.Errorf("metrics: %+v", m.Snapshot())
	}
}

func TestSolutionSetNoComparatorReplaces(t *testing.T) {
	s := NewSolutionSet(2, record.KeyA, nil, nil)
	s.Init([]record.Record{{A: 1, B: 1}})
	s.MergeDelta([]record.Record{{A: 1, B: 2}})
	r, _ := s.Lookup(s.PartitionFor(1), 1)
	if r.B != 2 {
		t.Errorf("delta must replace without comparator: %v", r)
	}
	if s.MergeDelta([]record.Record{{A: 1, B: 2}}) != 0 {
		t.Error("identical record must not count as a change")
	}
}

func TestResultRecordsFlatten(t *testing.T) {
	r := Result{5: [][]record.Record{recs(1), recs(2, 3)}}
	if len(r.Records(5)) != 3 {
		t.Error("flatten failed")
	}
	if len(r.Records(99)) != 0 {
		t.Error("missing sink should flatten empty")
	}
}

func TestSortCoGroupMatchesHashCoGroup(t *testing.T) {
	l := []record.Record{{A: 1, X: 1}, {A: 2, X: 2}, {A: 2, X: 3}, {A: 5, X: 4}}
	r := []record.Record{{A: 2, X: 20}, {A: 3, X: 30}, {A: 5, X: 50}}
	run := func(local optimizer.LocalStrategy, inner bool) []record.Record {
		p := dataflow.NewPlan()
		ls := p.SourceOf("l", l)
		rs := p.SourceOf("r", r)
		fn := func(k int64, lg, rg []record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: k, B: int64(len(lg)*10 + len(rg))})
		}
		var cg *dataflow.Node
		if inner {
			cg = p.InnerCoGroupNode("cg", ls, rs, record.KeyA, record.KeyA, fn)
		} else {
			cg = p.CoGroupNode("cg", ls, rs, record.KeyA, record.KeyA, fn)
		}
		sink := p.SinkNode("out", cg)
		phys, err := optimizer.Optimize(p, optimizer.Options{Parallelism: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range phys.Nodes {
			if n.Logical == cg {
				n.Local = local
				if local == optimizer.LocalSortCoGroup {
					n.SortKey = record.KeyA
				}
			}
		}
		e := NewExecutor(Config{})
		res, err := e.Run(phys)
		if err != nil {
			t.Fatal(err)
		}
		return sorted(res.Records(sink.ID))
	}
	for _, inner := range []bool{false, true} {
		hash := run(optimizer.LocalHashCoGroup, inner)
		sort := run(optimizer.LocalSortCoGroup, inner)
		if len(hash) != len(sort) {
			t.Fatalf("inner=%v: hash %v vs sort %v", inner, hash, sort)
		}
		for i := range hash {
			if hash[i] != sort[i] {
				t.Errorf("inner=%v row %d: hash %v sort %v", inner, i, hash[i], sort[i])
			}
		}
	}
}
