package runtime

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// task is one partition-instance of a physical operator.
type task struct {
	e       *Executor
	n       *optimizer.PhysNode
	part    int
	par     int
	ins     []inStream
	slots   []*cacheSlot
	outs    []*writer
	m       *metrics.Counters
	results Result
}

// emitter fans one record out to all downstream writers.
type taskEmitter struct{ t *task }

func (em taskEmitter) Emit(r record.Record) {
	for _, w := range em.t.outs {
		w.write(r)
	}
}

// emitCollector gathers UDF output into a caller-owned buffer.
type emitCollector struct{ buf *[]record.Record }

func (c emitCollector) Emit(r record.Record) { *c.buf = append(*c.buf, r) }

// directMergeEmitter applies each emitted delta to the solution set at
// once and forwards only records that actually advanced the solution.
type directMergeEmitter struct {
	sol  *SolutionSet
	next dataflow.Emitter
}

func (em directMergeEmitter) Emit(r record.Record) {
	if em.sol.Update(r) {
		em.next.Emit(r)
	}
}

func (t *task) udf() {
	if t.m != nil {
		t.m.UDFInvocations.Add(1)
	}
}

// run dispatches on role, contract, and local strategy.
func (t *task) run() error {
	out := taskEmitter{t: t}
	n := t.n
	l := n.Logical

	switch n.Role {
	case optimizer.RoleEnforcer:
		if n.Local == optimizer.LocalSort {
			recs := t.consumeSorted(0, n.SortKey)
			for _, r := range recs {
				out.Emit(r)
			}
			return nil
		}
		t.stream(0, func(r record.Record) { out.Emit(r) })
		return nil

	case optimizer.RoleCombiner:
		fn := l.Combine
		if fn == nil {
			fn = l.Reduce
		}
		// Fold groups incrementally: when a group grows past the
		// threshold it is pre-aggregated through the combine UDF, keeping
		// per-key state small (cf. map-side combiners in MapReduce). This
		// is safe because combiners are declared associative.
		const foldAt = 16
		key := l.Keys[0]
		acc := make(map[int64][]record.Record)
		var foldBuf []record.Record
		folder := emitCollector{buf: &foldBuf}
		t.stream(0, func(r record.Record) {
			k := key(r)
			g := append(acc[k], r)
			if len(g) >= foldAt {
				foldBuf = foldBuf[:0]
				t.udf()
				fn(k, g, folder)
				g = append(g[:0], foldBuf...)
			}
			acc[k] = g
		})
		for k, g := range acc {
			t.udf()
			fn(k, g, out)
		}
		return nil
	}

	switch l.Contract {
	case dataflow.Source:
		data := l.Data
		lo := t.part * len(data) / t.par
		hi := (t.part + 1) * len(data) / t.par
		for _, r := range data[lo:hi] {
			out.Emit(r)
		}
		return nil

	case dataflow.IterationInput:
		parts := t.e.Placeholder[l.ID]
		if parts != nil && t.part < len(parts) {
			for _, r := range parts[t.part] {
				out.Emit(r)
			}
		}
		return nil

	case dataflow.Sink:
		t.results[l.ID][t.part] = t.consume(0)
		return nil

	case dataflow.MapOp:
		t.stream(0, func(r record.Record) {
			t.udf()
			l.Map(r, out)
		})
		return nil

	case dataflow.UnionOp:
		for i := range l.Inputs {
			t.stream(i, func(r record.Record) { out.Emit(r) })
		}
		return nil

	case dataflow.ReduceOp:
		switch n.Local {
		case optimizer.LocalHashAgg:
			groups := t.buildTable(0, l.Keys[0])
			for k, g := range groups {
				t.udf()
				l.Reduce(k, g, out)
			}
		case optimizer.LocalSortAgg:
			recs := t.consumeSorted(0, l.Keys[0])
			forEachGroup(recs, l.Keys[0], func(k int64, g []record.Record) {
				t.udf()
				l.Reduce(k, g, out)
			})
		default:
			return fmt.Errorf("reduce: unsupported local strategy %s", n.Local)
		}
		return nil

	case dataflow.MatchOp:
		switch n.Local {
		case optimizer.LocalHashJoin:
			return t.hashJoin(out)
		case optimizer.LocalSortMergeJoin:
			return t.sortMergeJoin(out)
		}
		return fmt.Errorf("match: unsupported local strategy %s", n.Local)

	case dataflow.CrossOp:
		build := n.BuildSide
		blk := t.consume(build)
		t.stream(1-build, func(r record.Record) {
			for _, b := range blk {
				t.udf()
				if build == 0 {
					l.Cross(b, r, out)
				} else {
					l.Cross(r, b, out)
				}
			}
		})
		return nil

	case dataflow.CoGroupOp, dataflow.InnerCoGroupOp:
		if n.Local == optimizer.LocalSortCoGroup {
			return t.sortCoGroup(out)
		}
		left := t.buildTable(0, l.Keys[0])
		right := t.buildTable(1, l.Keys[1])
		for k, lg := range left {
			rg := right[k]
			if l.Contract == dataflow.InnerCoGroupOp && len(rg) == 0 {
				continue
			}
			t.udf()
			l.CoGroup(k, lg, rg, out)
		}
		if l.Contract == dataflow.CoGroupOp {
			for k, rg := range right {
				if _, seen := left[k]; !seen {
					t.udf()
					l.CoGroup(k, nil, rg, out)
				}
			}
		}
		return nil

	case dataflow.SolutionJoin:
		sol := t.e.Solution
		if sol == nil {
			return fmt.Errorf("solution join %q outside an incremental iteration", l.Name)
		}
		var emit dataflow.Emitter = out
		if t.e.DirectMerge {
			// §5.3: under the locality conditions the delta records merge
			// into S immediately (Figure 6 writes the Match output back to
			// the hash table), so later working-set elements in the same
			// superstep observe the update and redundant candidates die
			// here instead of flooding the next working set.
			emit = directMergeEmitter{sol: sol, next: out}
		}
		t.stream(0, func(r record.Record) {
			s, found := sol.Lookup(t.part, l.Keys[0](r))
			t.udf()
			l.SolJoin(r, s, found, emit)
		})
		return nil

	case dataflow.SolutionCoGroup:
		sol := t.e.Solution
		if sol == nil {
			return fmt.Errorf("solution cogroup %q outside an incremental iteration", l.Name)
		}
		groups := t.buildTable(0, l.Keys[0])
		for k, g := range groups {
			s, found := sol.Lookup(t.part, k)
			t.udf()
			l.SolCoGroup(k, g, s, found, out)
		}
		return nil
	}
	return fmt.Errorf("runtime: unsupported contract %s", l.Contract)
}

// hashJoin builds one side into a hash table (reused from the cache if the
// build input is loop-invariant) and streams the other side through it.
func (t *task) hashJoin(out dataflow.Emitter) error {
	l := t.n.Logical
	build := t.n.BuildSide
	table := t.buildTable(build, l.Keys[build])
	probeKey := l.Keys[1-build]
	t.stream(1-build, func(r record.Record) {
		for _, m := range table[probeKey(r)] {
			t.udf()
			if build == 0 {
				l.Match(m, r, out)
			} else {
				l.Match(r, m, out)
			}
		}
	})
	return nil
}

// sortCoGroup sorts both inputs and merges group pairs per key, calling
// the UDF once per key in the union (intersection for InnerCoGroup).
func (t *task) sortCoGroup(out dataflow.Emitter) error {
	l := t.n.Logical
	lk, rk := l.Keys[0], l.Keys[1]
	left := t.consumeSorted(0, lk)
	right := t.consumeSorted(1, rk)
	inner := l.Contract == dataflow.InnerCoGroupOp
	i, j := 0, 0
	for i < len(left) || j < len(right) {
		var k int64
		switch {
		case i >= len(left):
			k = rk(right[j])
		case j >= len(right):
			k = lk(left[i])
		default:
			k = lk(left[i])
			if rj := rk(right[j]); rj < k {
				k = rj
			}
		}
		i2 := i
		for i2 < len(left) && lk(left[i2]) == k {
			i2++
		}
		j2 := j
		for j2 < len(right) && rk(right[j2]) == k {
			j2++
		}
		lg, rg := left[i:i2], right[j:j2]
		if !inner || (len(lg) > 0 && len(rg) > 0) {
			t.udf()
			l.CoGroup(k, lg, rg, out)
		}
		i, j = i2, j2
	}
	return nil
}

// sortMergeJoin sorts both inputs by key and merges equal-key groups.
func (t *task) sortMergeJoin(out dataflow.Emitter) error {
	l := t.n.Logical
	lk, rk := l.Keys[0], l.Keys[1]
	left := t.consumeSorted(0, lk)
	right := t.consumeSorted(1, rk)
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		ki, kj := lk(left[i]), rk(right[j])
		switch {
		case ki < kj:
			i++
		case ki > kj:
			j++
		default:
			i2 := i
			for i2 < len(left) && lk(left[i2]) == ki {
				i2++
			}
			j2 := j
			for j2 < len(right) && rk(right[j2]) == ki {
				j2++
			}
			for _, lr := range left[i:i2] {
				for _, rr := range right[j:j2] {
					t.udf()
					l.Match(lr, rr, out)
				}
			}
			i, j = i2, j2
		}
	}
	return nil
}

// stream applies f to every input record of input i, replaying the cache
// (from memory or a spill file) when the input is loop-invariant and
// filling it on first execution.
func (t *task) stream(i int, f func(record.Record)) {
	if s := t.slots[i]; s != nil {
		if s.filled {
			if s.spill != nil {
				if err := s.spill.replay(func(b record.Batch) {
					for _, r := range b {
						f(r)
					}
				}); err != nil {
					panic(err) // recovered by the task wrapper into an error
				}
				return
			}
			for _, b := range s.batches {
				for _, r := range b {
					f(r)
				}
			}
			return
		}
		for {
			b, ok := t.ins[i].next()
			if !ok {
				break
			}
			s.batches = append(s.batches, b)
			for _, r := range b {
				f(r)
			}
		}
		s.filled = true
		t.e.maybeSpillBatches(s)
		return
	}
	for {
		b, ok := t.ins[i].next()
		if !ok {
			return
		}
		for _, r := range b {
			f(r)
		}
	}
}

// consume materializes input i fully (cache-aware).
func (t *task) consume(i int) []record.Record {
	if s := t.slots[i]; s != nil {
		if !s.filled {
			s.recs = readAll(t.ins[i])
			s.filled = true
			t.e.maybeSpillRecs(s)
		}
		return slotRecords(s)
	}
	return readAll(t.ins[i])
}

// consumeSorted materializes input i sorted by key; the cache stores the
// sorted order so re-executions skip the sort (spill files preserve it).
func (t *task) consumeSorted(i int, key record.KeyFunc) []record.Record {
	if s := t.slots[i]; s != nil {
		if !s.filled {
			s.recs = readAll(t.ins[i])
			sortByKey(s.recs, key)
			s.filled = true
			t.e.maybeSpillRecs(s)
		}
		return slotRecords(s)
	}
	recs := readAll(t.ins[i])
	sortByKey(recs, key)
	return recs
}

// slotRecords returns a slot's records, reloading from the spill file if
// the cache was pushed to disk.
func slotRecords(s *cacheSlot) []record.Record {
	if s.spill == nil {
		return s.recs
	}
	var out []record.Record
	if err := s.spill.replay(func(b record.Batch) {
		out = append(out, b...)
	}); err != nil {
		panic(err) // recovered by the task wrapper into an error
	}
	return out
}

// buildTable materializes input i into a key-grouped hash table; for
// loop-invariant inputs the built table itself is cached and pinned in
// memory (§4.3 — index caches are probed per record and never spilled).
func (t *task) buildTable(i int, key record.KeyFunc) map[int64][]record.Record {
	if s := t.slots[i]; s != nil {
		if !s.filled {
			recs := readAll(t.ins[i])
			s.table = groupByKey(recs, key)
			s.filled = true
			t.e.acct.used.Add(int64(len(recs)) * record.EncodedSize)
		}
		return s.table
	}
	return groupByKey(readAll(t.ins[i]), key)
}

func groupByKey(recs []record.Record, key record.KeyFunc) map[int64][]record.Record {
	m := make(map[int64][]record.Record)
	for _, r := range recs {
		k := key(r)
		m[k] = append(m[k], r)
	}
	return m
}

func sortByKey(recs []record.Record, key record.KeyFunc) {
	sort.Slice(recs, func(a, b int) bool {
		ka, kb := key(recs[a]), key(recs[b])
		if ka != kb {
			return ka < kb
		}
		return record.Less(recs[a], recs[b])
	})
}

// forEachGroup iterates key groups of a key-sorted slice.
func forEachGroup(recs []record.Record, key record.KeyFunc, f func(int64, []record.Record)) {
	for i := 0; i < len(recs); {
		k := key(recs[i])
		j := i
		for j < len(recs) && key(recs[j]) == k {
			j++
		}
		f(k, recs[i:j])
		i = j
	}
}
