package runtime

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// task is one partition-instance of a physical operator. Tasks live as
// long as their session: the scratch structures below survive across
// supersteps, so re-grouping the dynamic data path each pass reuses the
// previous pass's storage instead of reallocating it.
type task struct {
	e     *Executor
	sess  *Session
	n     *optimizer.PhysNode
	part  int
	par   int
	ins   []inStream
	slots []*cacheSlot
	outs  []*writer
	m     *metrics.Counters
	// tables are per-input reusable group tables (combiners, hash
	// aggregation, hash-join build, cogroup sides).
	tables [2]*groupTable
	// recsBuf are per-input reusable materialization buffers (sorts,
	// block-cross build sides). Contents are only valid within one
	// superstep.
	recsBuf [2][]record.Record
	// foldBuf is the combiner's reusable pre-aggregation buffer.
	foldBuf []record.Record
}

// scratchTable returns input i's persistent group table, reset for a new
// round.
func (t *task) scratchTable(i int) *groupTable {
	if t.tables[i] == nil {
		t.tables[i] = newGroupTable()
	}
	t.tables[i].reset()
	return t.tables[i]
}

// drain reads every record of input i from its exchange queue, recycling
// each exhausted batch: records are values, so once they are copied (or
// fully processed) the batch holds no live state.
func (t *task) drain(i int, f func(record.Record)) {
	in := t.ins[i]
	pool := t.sess.pool
	for {
		b, ok := in.next()
		if !ok {
			return
		}
		for _, r := range b {
			f(r)
		}
		pool.put(b)
	}
}

// emitter fans one record out to all downstream writers.
type taskEmitter struct{ t *task }

func (em taskEmitter) Emit(r record.Record) {
	for _, w := range em.t.outs {
		w.write(r)
	}
}

// fusedEmitter applies one fused Map UDF and hands the results to the next
// stage of the chain — the record-at-a-time execution of a FusedChain. No
// exchange, batch, or pool is involved between fused stages.
type fusedEmitter struct {
	t    *task
	fn   func(record.Record, dataflow.Emitter)
	next dataflow.Emitter
}

func (em fusedEmitter) Emit(r record.Record) {
	em.t.udf()
	em.fn(r, em.next)
}

// emitter returns the task's output emitter: the plain writer fan-out,
// wrapped right-to-left in the node's fused UDF chain (if any) so fused
// Maps execute inline on every emitted record.
func (t *task) emitter() dataflow.Emitter {
	var em dataflow.Emitter = taskEmitter{t: t}
	chain := t.n.FusedChain
	for i := len(chain) - 1; i >= 0; i-- {
		em = fusedEmitter{t: t, fn: chain[i].Map, next: em}
	}
	return em
}

// emitCollector gathers UDF output into a caller-owned buffer.
type emitCollector struct{ buf *[]record.Record }

func (c emitCollector) Emit(r record.Record) { *c.buf = append(*c.buf, r) }

// directMergeEmitter applies each emitted delta to the solution set at
// once and forwards only records that actually advanced the solution.
type directMergeEmitter struct {
	sol  *SolutionSet
	next dataflow.Emitter
}

func (em directMergeEmitter) Emit(r record.Record) {
	if em.sol.Update(r) {
		em.next.Emit(r)
	}
}

func (t *task) udf() {
	if t.m != nil {
		t.m.UDFInvocations.Add(1)
	}
}

// run dispatches on role, contract, and local strategy.
func (t *task) run() error {
	out := t.emitter()
	n := t.n
	l := n.Logical

	switch n.Role {
	case optimizer.RoleEnforcer:
		if n.Local == optimizer.LocalSort {
			recs := t.consumeSorted(0, n.SortKey)
			for _, r := range recs {
				out.Emit(r)
			}
			return nil
		}
		t.stream(0, func(r record.Record) { out.Emit(r) })
		return nil

	case optimizer.RoleCombiner:
		fn := l.Combine
		if fn == nil {
			fn = l.Reduce
		}
		// Fold groups incrementally: when a group grows past the
		// threshold it is pre-aggregated through the combine UDF, keeping
		// per-key state small (cf. map-side combiners in MapReduce). This
		// is safe because combiners are declared associative. The group
		// table and fold buffer persist across supersteps.
		const foldAt = 16
		key := l.Keys[0]
		acc := t.scratchTable(0)
		folder := emitCollector{buf: &t.foldBuf}
		t.stream(0, func(r record.Record) {
			i := acc.groupIdx(key(r))
			g := append(acc.groups[i], r)
			if len(g) >= foldAt {
				t.foldBuf = t.foldBuf[:0]
				t.udf()
				fn(acc.keys[i], g, folder)
				g = append(g[:0], t.foldBuf...)
			}
			acc.groups[i] = g
		})
		acc.each(func(k int64, g []record.Record) {
			t.udf()
			fn(k, g, out)
		})
		return nil
	}

	switch l.Contract {
	case dataflow.Source:
		data := l.Data
		lo := t.part * len(data) / t.par
		hi := (t.part + 1) * len(data) / t.par
		for _, r := range data[lo:hi] {
			out.Emit(r)
		}
		return nil

	case dataflow.IterationInput:
		parts := t.e.Placeholder[l.ID]
		if parts != nil && t.part < len(parts) {
			for _, r := range parts[t.part] {
				out.Emit(r)
			}
		}
		return nil

	case dataflow.Sink:
		if t.slots[0] != nil {
			t.sess.cur[l.ID][t.part] = t.consume(0)
			return nil
		}
		// Sink output is handed to the driver, which may retain it across
		// supersteps — it is always freshly allocated, never scratch-backed.
		var collected []record.Record
		t.drain(0, func(r record.Record) { collected = append(collected, r) })
		t.sess.cur[l.ID][t.part] = collected
		return nil

	case dataflow.MapOp:
		t.stream(0, func(r record.Record) {
			t.udf()
			l.Map(r, out)
		})
		return nil

	case dataflow.UnionOp:
		for i := range l.Inputs {
			t.stream(i, func(r record.Record) { out.Emit(r) })
		}
		return nil

	case dataflow.ReduceOp:
		switch n.Local {
		case optimizer.LocalHashAgg:
			groups := t.buildTable(0, l.Keys[0])
			groups.each(func(k int64, g []record.Record) {
				t.udf()
				l.Reduce(k, g, out)
			})
		case optimizer.LocalSortAgg:
			recs := t.consumeSorted(0, l.Keys[0])
			forEachGroup(recs, l.Keys[0], func(k int64, g []record.Record) {
				t.udf()
				l.Reduce(k, g, out)
			})
		default:
			return fmt.Errorf("reduce: unsupported local strategy %s", n.Local)
		}
		return nil

	case dataflow.MatchOp:
		switch n.Local {
		case optimizer.LocalHashJoin:
			return t.hashJoin(out)
		case optimizer.LocalSortMergeJoin:
			return t.sortMergeJoin(out)
		}
		return fmt.Errorf("match: unsupported local strategy %s", n.Local)

	case dataflow.CrossOp:
		build := n.BuildSide
		blk := t.consume(build)
		t.stream(1-build, func(r record.Record) {
			for _, b := range blk {
				t.udf()
				if build == 0 {
					l.Cross(b, r, out)
				} else {
					l.Cross(r, b, out)
				}
			}
		})
		return nil

	case dataflow.CoGroupOp, dataflow.InnerCoGroupOp:
		if n.Local == optimizer.LocalSortCoGroup {
			return t.sortCoGroup(out)
		}
		left := t.buildTable(0, l.Keys[0])
		right := t.buildTable(1, l.Keys[1])
		left.each(func(k int64, lg []record.Record) {
			rg := right.get(k)
			if l.Contract == dataflow.InnerCoGroupOp && len(rg) == 0 {
				return
			}
			t.udf()
			l.CoGroup(k, lg, rg, out)
		})
		if l.Contract == dataflow.CoGroupOp {
			right.each(func(k int64, rg []record.Record) {
				if left.get(k) == nil {
					t.udf()
					l.CoGroup(k, nil, rg, out)
				}
			})
		}
		return nil

	case dataflow.SolutionJoin:
		sol := t.e.Solution
		if sol == nil {
			return fmt.Errorf("solution join %q outside an incremental iteration", l.Name)
		}
		var emit dataflow.Emitter = out
		if t.e.DirectMerge {
			// §5.3: under the locality conditions the delta records merge
			// into S immediately (Figure 6 writes the Match output back to
			// the hash table), so later working-set elements in the same
			// superstep observe the update and redundant candidates die
			// here instead of flooding the next working set.
			emit = directMergeEmitter{sol: sol, next: out}
		}
		t.stream(0, func(r record.Record) {
			s, found := sol.Lookup(t.part, l.Keys[0](r))
			t.udf()
			l.SolJoin(r, s, found, emit)
		})
		return nil

	case dataflow.SolutionCoGroup:
		sol := t.e.Solution
		if sol == nil {
			return fmt.Errorf("solution cogroup %q outside an incremental iteration", l.Name)
		}
		groups := t.buildTable(0, l.Keys[0])
		groups.each(func(k int64, g []record.Record) {
			s, found := sol.Lookup(t.part, k)
			t.udf()
			l.SolCoGroup(k, g, s, found, out)
		})
		return nil
	}
	return fmt.Errorf("runtime: unsupported contract %s", l.Contract)
}

// hashJoin builds one side into a hash table (reused from the cache if the
// build input is loop-invariant) and streams the other side through it.
func (t *task) hashJoin(out dataflow.Emitter) error {
	l := t.n.Logical
	build := t.n.BuildSide
	table := t.buildTable(build, l.Keys[build])
	probeKey := l.Keys[1-build]
	t.stream(1-build, func(r record.Record) {
		for _, m := range table.get(probeKey(r)) {
			t.udf()
			if build == 0 {
				l.Match(m, r, out)
			} else {
				l.Match(r, m, out)
			}
		}
	})
	return nil
}

// sortCoGroup sorts both inputs and merges group pairs per key, calling
// the UDF once per key in the union (intersection for InnerCoGroup).
func (t *task) sortCoGroup(out dataflow.Emitter) error {
	l := t.n.Logical
	lk, rk := l.Keys[0], l.Keys[1]
	left := t.consumeSorted(0, lk)
	right := t.consumeSorted(1, rk)
	inner := l.Contract == dataflow.InnerCoGroupOp
	i, j := 0, 0
	for i < len(left) || j < len(right) {
		var k int64
		switch {
		case i >= len(left):
			k = rk(right[j])
		case j >= len(right):
			k = lk(left[i])
		default:
			k = lk(left[i])
			if rj := rk(right[j]); rj < k {
				k = rj
			}
		}
		i2 := i
		for i2 < len(left) && lk(left[i2]) == k {
			i2++
		}
		j2 := j
		for j2 < len(right) && rk(right[j2]) == k {
			j2++
		}
		lg, rg := left[i:i2], right[j:j2]
		if !inner || (len(lg) > 0 && len(rg) > 0) {
			t.udf()
			l.CoGroup(k, lg, rg, out)
		}
		i, j = i2, j2
	}
	return nil
}

// sortMergeJoin sorts both inputs by key and merges equal-key groups.
func (t *task) sortMergeJoin(out dataflow.Emitter) error {
	l := t.n.Logical
	lk, rk := l.Keys[0], l.Keys[1]
	left := t.consumeSorted(0, lk)
	right := t.consumeSorted(1, rk)
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		ki, kj := lk(left[i]), rk(right[j])
		switch {
		case ki < kj:
			i++
		case ki > kj:
			j++
		default:
			i2 := i
			for i2 < len(left) && lk(left[i2]) == ki {
				i2++
			}
			j2 := j
			for j2 < len(right) && rk(right[j2]) == ki {
				j2++
			}
			for _, lr := range left[i:i2] {
				for _, rr := range right[j:j2] {
					t.udf()
					l.Match(lr, rr, out)
				}
			}
			i, j = i2, j2
		}
	}
	return nil
}

// stream applies f to every input record of input i, replaying the cache
// (from memory or a spill file) when the input is loop-invariant and
// filling it on first execution. Non-cached batches are recycled as they
// are consumed; cached batches are retained by the slot.
func (t *task) stream(i int, f func(record.Record)) {
	if s := t.slots[i]; s != nil {
		if s.filled {
			if s.spill != nil {
				if err := s.spill.replay(func(b record.Batch) {
					for _, r := range b {
						f(r)
					}
				}); err != nil {
					panic(err) // recovered by the task wrapper into an error
				}
				return
			}
			for _, b := range s.batches {
				for _, r := range b {
					f(r)
				}
			}
			return
		}
		for {
			b, ok := t.ins[i].next()
			if !ok {
				break
			}
			s.batches = append(s.batches, b)
			for _, r := range b {
				f(r)
			}
		}
		s.filled = true
		t.e.maybeSpillBatches(s, t.sess.pool)
		return
	}
	t.drain(i, f)
}

// consume materializes input i fully (cache-aware). The non-cached result
// lives in a per-task scratch buffer that is overwritten by the next
// superstep — callers must not retain it (sinks copy instead).
func (t *task) consume(i int) []record.Record {
	if s := t.slots[i]; s != nil {
		if !s.filled {
			t.drain(i, func(r record.Record) { s.recs = append(s.recs, r) })
			s.filled = true
			t.e.maybeSpillRecs(s)
		}
		return slotRecords(s)
	}
	buf := t.recsBuf[i][:0]
	t.drain(i, func(r record.Record) { buf = append(buf, r) })
	t.recsBuf[i] = buf
	return buf
}

// consumeSorted materializes input i sorted by key; the cache stores the
// sorted order so re-executions skip the sort (spill files preserve it).
// Like consume, the non-cached result is scratch-backed.
func (t *task) consumeSorted(i int, key record.KeyFunc) []record.Record {
	if s := t.slots[i]; s != nil {
		if !s.filled {
			t.drain(i, func(r record.Record) { s.recs = append(s.recs, r) })
			sortByKey(s.recs, key)
			s.filled = true
			t.e.maybeSpillRecs(s)
		}
		return slotRecords(s)
	}
	recs := t.consume(i)
	sortByKey(recs, key)
	return recs
}

// slotRecords returns a slot's records, reloading from the spill file if
// the cache was pushed to disk.
func slotRecords(s *cacheSlot) []record.Record {
	if s.spill == nil {
		return s.recs
	}
	var out []record.Record
	if err := s.spill.replay(func(b record.Batch) {
		out = append(out, b...)
	}); err != nil {
		panic(err) // recovered by the task wrapper into an error
	}
	return out
}

// buildTable materializes input i into a key-grouped hash table; for
// loop-invariant inputs the built table itself is cached and pinned in
// memory (§4.3 — index caches are probed per record and never spilled).
// Non-cached tables are rebuilt into the task's persistent group table,
// so steady-state supersteps reuse its storage.
func (t *task) buildTable(i int, key record.KeyFunc) *groupTable {
	if s := t.slots[i]; s != nil {
		if !s.filled {
			gt := newGroupTable()
			t.drain(i, func(r record.Record) { gt.add(key(r), r) })
			s.table = gt
			s.filled = true
			t.e.acct.used.Add(int64(gt.size()) * record.EncodedSize)
		}
		return s.table
	}
	gt := t.scratchTable(i)
	t.drain(i, func(r record.Record) { gt.add(key(r), r) })
	return gt
}

func sortByKey(recs []record.Record, key record.KeyFunc) {
	sort.Slice(recs, func(a, b int) bool {
		ka, kb := key(recs[a]), key(recs[b])
		if ka != kb {
			return ka < kb
		}
		return record.Less(recs[a], recs[b])
	})
}

// forEachGroup iterates key groups of a key-sorted slice.
func forEachGroup(recs []record.Record, key record.KeyFunc, f func(int64, []record.Record)) {
	for i := 0; i < len(recs); {
		k := key(recs[i])
		j := i
		for j < len(recs) && key(recs[j]) == k {
			j++
		}
		f(k, recs[i:j])
		i = j
	}
}
