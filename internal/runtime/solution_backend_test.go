package runtime

import (
	"os"
	"testing"

	"repro/internal/metrics"
	"repro/internal/record"
)

var backendKinds = []struct {
	name string
	opts SolutionOptions
}{
	{"map", SolutionOptions{Backend: SolutionMap}},
	{"compact", SolutionOptions{Backend: SolutionCompact}},
	{"spill-tight", SolutionOptions{Backend: SolutionSpill, MemoryBudget: 256}},
	{"spill-roomy", SolutionOptions{Backend: SolutionSpill, MemoryBudget: 1 << 20}},
}

// TestSolutionBackendsAgree drives every backend through the same
// insert/update sequence and checks Lookup/Size/Snapshot against the map
// semantics of the seed implementation.
func TestSolutionBackendsAgree(t *testing.T) {
	const parts = 4
	recs := make([]record.Record, 500)
	for i := range recs {
		recs[i] = record.Record{A: int64(i % 100), B: int64(i), X: float64(i)}
	}
	for _, bk := range backendKinds {
		t.Run(bk.name, func(t *testing.T) {
			s := NewSolutionSetWith(parts, record.KeyA, nil, nil, bk.opts)
			model := make(map[int64]record.Record)
			for _, r := range recs {
				s.Update(r)
				model[r.A] = r
			}
			if s.Size() != len(model) {
				t.Fatalf("Size = %d, want %d", s.Size(), len(model))
			}
			for k, want := range model {
				got, ok := s.Lookup(s.PartitionFor(k), k)
				if !ok || !got.Equal(want) {
					t.Fatalf("Lookup(%d) = %v,%v, want %v", k, got, ok, want)
				}
			}
			snap := s.Snapshot()
			if len(snap) != len(model) {
				t.Fatalf("Snapshot has %d records, want %d", len(snap), len(model))
			}
			for _, r := range snap {
				if !model[r.A].Equal(r) {
					t.Fatalf("snapshot record %v != model %v", r, model[r.A])
				}
			}
		})
	}
}

// TestSolutionSpillSnapshotConsistency is the regression guard for the
// eviction path dropping in-flight updates: Snapshot and Size must stay
// consistent across spill/reload boundaries, including after MergeDelta
// with a comparator arbitrating replacements.
func TestSolutionSpillSnapshotConsistency(t *testing.T) {
	// CPO: the record with the smaller X is the successor (min-distance).
	cmp := func(a, b record.Record) int {
		switch {
		case a.X < b.X:
			return 1
		case a.X > b.X:
			return -1
		default:
			return 0
		}
	}
	var m metrics.Counters
	// A budget of ~10 records across 4 partitions forces continuous
	// eviction while the merges run.
	s := NewSolutionSetWith(4, record.KeyA, cmp, &m,
		SolutionOptions{MemoryBudget: 10 * record.EncodedSize})
	model := make(map[int64]record.Record)

	apply := func(delta []record.Record) {
		s.MergeDelta(delta)
		for _, r := range delta {
			if old, ok := model[r.A]; !ok || r.X < old.X {
				model[r.A] = r
			}
		}
	}
	// Three generations of deltas: inserts, improvements, and rejected
	// regressions interleaved so evicted partitions are reloaded mid-merge.
	var d1, d2, d3 []record.Record
	for i := int64(0); i < 200; i++ {
		d1 = append(d1, record.Record{A: i, X: float64(100 + i)})
		d2 = append(d2, record.Record{A: i, X: float64(50 + i)})  // improves
		d3 = append(d3, record.Record{A: i, X: float64(900 + i)}) // rejected
	}
	apply(d1)
	apply(d2)
	apply(d3)

	if m.SolutionSpills.Load() == 0 || m.SolutionReloads.Load() == 0 {
		t.Fatalf("expected spill traffic, got spills=%d reloads=%d",
			m.SolutionSpills.Load(), m.SolutionReloads.Load())
	}
	if s.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(model))
	}
	snap := s.Snapshot()
	if len(snap) != len(model) {
		t.Fatalf("Snapshot has %d records, want %d", len(snap), len(model))
	}
	for _, r := range snap {
		want, ok := model[r.A]
		if !ok || !want.Equal(r) {
			t.Fatalf("snapshot record %v, want %v", r, want)
		}
	}
	// Point lookups agree with the snapshot even for spilled partitions.
	for k, want := range model {
		got, ok := s.Lookup(s.PartitionFor(k), k)
		if !ok || !got.Equal(want) {
			t.Fatalf("Lookup(%d) = %v,%v, want %v", k, got, ok, want)
		}
	}
}

// TestSolutionSpillResidencyBounded checks that the resident estimate
// respects the budget once merges quiesce (best-effort: the active
// partition may exceed it transiently).
func TestSolutionSpillResidencyBounded(t *testing.T) {
	budget := int64(64 * record.EncodedSize)
	s := NewSolutionSetWith(8, record.KeyA, nil, nil,
		SolutionOptions{MemoryBudget: budget})
	for i := int64(0); i < 4000; i++ {
		s.Update(record.Record{A: i, B: i})
	}
	// Everything except the most recently touched partition fits under the
	// budget; one partition of ~500 records may still be resident.
	slack := int64(4000/8+16) * record.EncodedSize
	if got := s.Bytes(); got > budget+slack {
		t.Fatalf("resident %d bytes, budget %d (+%d slack)", got, budget, slack)
	}
	if s.Size() != 4000 {
		t.Fatalf("Size = %d, want 4000", s.Size())
	}
}

// TestSolutionResetReusesCapacity checks the generational contract: after
// Reset the set is empty, usable, and (for the spill backend) leaves no
// spill files behind.
func TestSolutionResetReusesCapacity(t *testing.T) {
	for _, bk := range backendKinds {
		t.Run(bk.name, func(t *testing.T) {
			s := NewSolutionSetWith(2, record.KeyA, nil, nil, bk.opts)
			for i := int64(0); i < 300; i++ {
				s.Update(record.Record{A: i})
			}
			var files []string
			if sb, ok := s.backend.(*spillBackend); ok {
				for i := range sb.parts {
					if sb.parts[i].file != nil {
						files = append(files, sb.parts[i].file.path)
					}
				}
			}
			s.Reset()
			if s.Size() != 0 || len(s.Snapshot()) != 0 {
				t.Fatalf("Reset left %d records", s.Size())
			}
			for _, p := range files {
				if _, err := os.Stat(p); !os.IsNotExist(err) {
					t.Errorf("spill file %s survived Reset", p)
				}
			}
			s.Update(record.Record{A: 7, B: 9})
			if r, ok := s.Lookup(s.PartitionFor(7), 7); !ok || r.B != 9 {
				t.Fatalf("post-Reset lookup = %v,%v", r, ok)
			}
		})
	}
}

// TestCompactIndexGrowth exercises rehashing across several doublings and
// update-in-place semantics.
func TestCompactIndexGrowth(t *testing.T) {
	var c compactIndex
	const n = 10000
	for i := int64(0); i < n; i++ {
		if !c.store(i, record.Record{A: i, B: i}) {
			t.Fatalf("store(%d) reported update, want insert", i)
		}
	}
	if c.store(42, record.Record{A: 42, B: -1}) {
		t.Fatal("overwrite reported insert")
	}
	if len(c.recs) != n {
		t.Fatalf("count = %d, want %d", len(c.recs), n)
	}
	for i := int64(0); i < n; i++ {
		r, ok := c.lookup(i)
		want := int64(i)
		if i == 42 {
			want = -1
		}
		if !ok || r.B != want {
			t.Fatalf("lookup(%d) = %v,%v", i, r, ok)
		}
	}
	if _, ok := c.lookup(n + 1); ok {
		t.Fatal("lookup of absent key succeeded")
	}
}

// TestSolutionBackendsDelete drives every backend through interleaved
// inserts and deletes (including re-inserting deleted keys, which must
// recycle compact-index tombstones) and checks Lookup/Size/Snapshot and
// the ForceStore comparator bypass against a model map.
func TestSolutionBackendsDelete(t *testing.T) {
	for _, bk := range backendKinds {
		t.Run(bk.name, func(t *testing.T) {
			s := NewSolutionSetWith(3, record.KeyA, nil, nil, bk.opts)
			model := make(map[int64]record.Record)
			for i := int64(0); i < 400; i++ {
				r := record.Record{A: i, B: i * 2}
				s.Update(r)
				model[i] = r
			}
			// Delete every third key, then a missing key.
			for i := int64(0); i < 400; i += 3 {
				if !s.Delete(i) {
					t.Fatalf("Delete(%d) = false, want true", i)
				}
				delete(model, i)
			}
			if s.Delete(10_000) {
				t.Fatal("Delete of absent key reported true")
			}
			// Re-insert a slice of the deleted range (tombstone reuse).
			for i := int64(0); i < 120; i += 3 {
				r := record.Record{A: i, B: -i}
				s.Update(r)
				model[i] = r
			}
			if s.Size() != len(model) {
				t.Fatalf("Size = %d, want %d", s.Size(), len(model))
			}
			for i := int64(0); i < 400; i++ {
				want, wantOK := model[i]
				got, ok := s.Lookup(s.PartitionFor(i), i)
				if ok != wantOK || (ok && !got.Equal(want)) {
					t.Fatalf("Lookup(%d) = %v,%v, want %v,%v", i, got, ok, want, wantOK)
				}
			}
			if snap := s.Snapshot(); len(snap) != len(model) {
				t.Fatalf("Snapshot has %d records, want %d", len(snap), len(model))
			}
		})
	}
}

// TestSolutionForceStoreBypassesComparator checks that ForceStore can move
// an entry to a CPO-smaller state that Update would reject — the operation
// bounded recomputes rely on.
func TestSolutionForceStoreBypassesComparator(t *testing.T) {
	minB := func(a, b record.Record) int { // smaller B is the successor
		switch {
		case a.B < b.B:
			return 1
		case a.B > b.B:
			return -1
		}
		return 0
	}
	for _, bk := range backendKinds {
		t.Run(bk.name, func(t *testing.T) {
			s := NewSolutionSetWith(2, record.KeyA, minB, nil, bk.opts)
			s.Update(record.Record{A: 1, B: 5})
			if s.Update(record.Record{A: 1, B: 9}) {
				t.Fatal("Update regression was accepted")
			}
			s.ForceStore(record.Record{A: 1, B: 9})
			if r, _ := s.Lookup(s.PartitionFor(1), 1); r.B != 9 {
				t.Fatalf("ForceStore did not overwrite: %v", r)
			}
		})
	}
}

// TestCompactIndexDeleteSwap exercises the slab swap-remove paths of
// compactIndex.delete directly: deleting the last slab entry, a middle
// entry (which moves the last entry into the hole and repoints its probe
// slot), and the tombstone sweep rehash.
func TestCompactIndexDeleteSwap(t *testing.T) {
	var c compactIndex
	const n = 1000
	for i := int64(0); i < n; i++ {
		c.store(i, record.Record{A: i, B: i})
	}
	// Delete in an order that hits both the s==last and s!=last paths.
	for i := int64(0); i < n; i += 2 {
		if !c.delete(i) {
			t.Fatalf("delete(%d) = false", i)
		}
		if c.delete(i) {
			t.Fatalf("double delete(%d) = true", i)
		}
	}
	if len(c.recs) != n/2 {
		t.Fatalf("count = %d, want %d", len(c.recs), n/2)
	}
	for i := int64(0); i < n; i++ {
		r, ok := c.lookup(i)
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted key %d still present: %v", i, r)
			}
		} else if !ok || r.B != i {
			t.Fatalf("surviving key %d = %v,%v", i, r, ok)
		}
	}
}
