// Package runtime executes physical plans: it instantiates each physical
// operator once per partition, connects partitions with forward /
// hash-partition / broadcast exchanges, implements the local strategies
// (hash and sort-merge joins, hash and sort aggregation), materializes
// loop-invariant inputs into caches — including cached hash tables for
// join build sides — and hosts the partitioned, indexed solution set of
// incremental iterations.
//
// Execution is session-based: Executor.OpenSession spawns one persistent,
// partition-pinned worker goroutine per (operator, partition), and each
// Session.Run is one superstep over those workers. Exchanges are keyed by
// the plan's stable edge identities and reset (not rebuilt) between
// supersteps, record batches are recycled through a sync.Pool-backed
// batchPool, and per-task group tables and sort buffers persist across
// passes — so an iteration's steady-state supersteps avoid both goroutine
// spawning and nearly all heap allocation. Executor.Run is the one-shot
// convenience wrapper for non-iterative plans.
package runtime

import (
	"repro/internal/metrics"
	"repro/internal/record"
)

// SolutionSet is the partitioned, keyed, mutable state of an incremental
// iteration (§5.1/§5.3): each partition holds a primary hash index from
// key to the current record. It lives across supersteps; delta sets are
// merged with the ∪̇ operator, optionally arbitrated by a comparator that
// keeps the CPO-successor record.
type SolutionSet struct {
	parts []map[int64]record.Record
	key   record.KeyFunc
	cmp   record.Comparator
	m     *metrics.Counters
}

// NewSolutionSet creates an empty solution set with the given partition
// count, identifying key, and optional comparator (nil = delta always
// replaces).
func NewSolutionSet(parallelism int, key record.KeyFunc, cmp record.Comparator, m *metrics.Counters) *SolutionSet {
	if parallelism < 1 {
		parallelism = 1
	}
	parts := make([]map[int64]record.Record, parallelism)
	for i := range parts {
		parts[i] = make(map[int64]record.Record)
	}
	return &SolutionSet{parts: parts, key: key, cmp: cmp, m: m}
}

// Parallelism returns the number of partitions.
func (s *SolutionSet) Parallelism() int { return len(s.parts) }

// Init loads the initial solution set S0, hash-partitioned by key.
func (s *SolutionSet) Init(recs []record.Record) {
	for _, r := range recs {
		k := s.key(r)
		s.parts[record.PartitionOf(k, len(s.parts))][k] = r
	}
}

// Lookup probes partition part for key k. It counts a solution access.
func (s *SolutionSet) Lookup(part int, k int64) (record.Record, bool) {
	if s.m != nil {
		s.m.SolutionAccesses.Add(1)
	}
	r, ok := s.parts[part][k]
	return r, ok
}

// put writes r under key k into its owning partition, honoring the
// comparator: the CPO-larger record wins (§5.1). It reports whether the
// stored record changed.
func (s *SolutionSet) put(r record.Record) bool {
	k := s.key(r)
	part := record.PartitionOf(k, len(s.parts))
	old, exists := s.parts[part][k]
	if exists && s.cmp != nil && s.cmp(r, old) <= 0 {
		return false // the existing record is the successor state; drop r
	}
	if exists && old.Equal(r) {
		return false
	}
	s.parts[part][k] = r
	if s.m != nil {
		s.m.SolutionUpdates.Add(1)
	}
	return true
}

// MergeDelta applies a delta set with the ∪̇ operator: every delta record
// replaces the solution record under the same key (subject to the
// comparator), new keys are inserted. It returns the number of records
// that actually changed the solution.
func (s *SolutionSet) MergeDelta(delta []record.Record) int {
	changed := 0
	for _, r := range delta {
		if s.put(r) {
			changed++
		}
	}
	return changed
}

// Update applies a single delta record immediately (microstep execution,
// §5.2: the partial solution reflects the modification when the next
// element is processed). It reports whether the solution changed.
func (s *SolutionSet) Update(r record.Record) bool {
	return s.put(r)
}

// Size returns the total number of records.
func (s *SolutionSet) Size() int {
	n := 0
	for _, p := range s.parts {
		n += len(p)
	}
	return n
}

// Snapshot copies all records out (order unspecified).
func (s *SolutionSet) Snapshot() []record.Record {
	out := make([]record.Record, 0, s.Size())
	for _, p := range s.parts {
		for _, r := range p {
			out = append(out, r)
		}
	}
	return out
}

// PartitionFor returns the partition owning key k.
func (s *SolutionSet) PartitionFor(k int64) int {
	return record.PartitionOf(k, len(s.parts))
}
