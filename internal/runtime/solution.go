// Package runtime executes physical plans: it instantiates each physical
// operator once per partition, connects partitions with forward /
// hash-partition / broadcast exchanges, implements the local strategies
// (hash and sort-merge joins, hash and sort aggregation), materializes
// loop-invariant inputs into caches — including cached hash tables for
// join build sides — and hosts the partitioned, indexed solution set of
// incremental iterations.
//
// Execution is session-based: Executor.OpenSession spawns one persistent,
// partition-pinned worker goroutine per (operator, partition), and each
// Session.Run is one superstep over those workers. Exchanges are keyed by
// the plan's stable edge identities and reset (not rebuilt) between
// supersteps, record batches are recycled through a sync.Pool-backed
// batchPool, and per-task group tables and sort buffers persist across
// passes — so an iteration's steady-state supersteps avoid both goroutine
// spawning and nearly all heap allocation. Executor.Run is the one-shot
// convenience wrapper for non-iterative plans.
//
// Fused operator chains (optimizer.PhysNode.FusedChain) execute inside
// the head operator's emitter: each emitted record flows through the
// absorbed Map/filter/project UDFs record-at-a-time before it is
// batched, so a fused edge costs a function call instead of an exchange
// hop (queue round-trip, batch copy, pool cycle) per superstep.
//
// The solution set stores its records through a pluggable SolutionBackend:
// a compact open-addressing index over flat record slabs by default, the
// original boxed-map implementation as a differential baseline, and a
// spillable variant that evicts cold partitions to disk under a memory
// budget — the §4.3 gradual-spilling rule applied to iteration state, which
// lets incremental iterations run out-of-core.
package runtime

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/record"
)

// SolutionSet is the partitioned, keyed, mutable state of an incremental
// iteration (§5.1/§5.3): each partition holds a primary hash index from
// key to the current record. It lives across supersteps; delta sets are
// merged with the ∪̇ operator, optionally arbitrated by a comparator that
// keeps the CPO-successor record.
//
// Every partition is guarded by its own sharded lock, so concurrent
// updates — the microstep Update path and DirectMerge superstep emitters —
// are safe even when a record's key routes it to a partition other than
// the calling worker's (partition pinning is the common case, not a
// correctness requirement).
type SolutionSet struct {
	backend SolutionBackend
	locks   []sync.Mutex
	par     int
	key     record.KeyFunc
	cmp     record.Comparator
	m       *metrics.Counters
}

// NewSolutionSet creates an empty solution set with the given partition
// count, identifying key, and optional comparator (nil = delta always
// replaces), backed by the default compact index.
func NewSolutionSet(parallelism int, key record.KeyFunc, cmp record.Comparator, m *metrics.Counters) *SolutionSet {
	return NewSolutionSetWith(parallelism, key, cmp, m, SolutionOptions{})
}

// NewSolutionSetWith is NewSolutionSet with an explicit backend selection
// (see SolutionOptions): the boxed-map baseline, the compact index, or the
// spillable index under a memory budget.
func NewSolutionSetWith(parallelism int, key record.KeyFunc, cmp record.Comparator, m *metrics.Counters, opts SolutionOptions) *SolutionSet {
	if parallelism < 1 {
		parallelism = 1
	}
	return &SolutionSet{
		backend: newSolutionBackend(parallelism, key, m, opts),
		locks:   make([]sync.Mutex, parallelism),
		par:     parallelism,
		key:     key,
		cmp:     cmp,
		m:       m,
	}
}

// Parallelism returns the number of partitions.
func (s *SolutionSet) Parallelism() int { return s.par }

// Init loads the initial solution set S0, hash-partitioned by key. Records
// are applied partition-grouped (one pass per partition), so the compact
// backend can size its slabs from the bulk load and the spill backend
// fills each partition once instead of ping-ponging between them.
func (s *SolutionSet) Init(recs []record.Record) {
	if cb, ok := s.backend.(*compactBackend); ok {
		per := len(recs)/s.par + 1
		for p := 0; p < s.par; p++ {
			cb.Reserve(p, per)
		}
	}
	if s.par == 1 {
		s.locks[0].Lock()
		for _, r := range recs {
			s.backend.Store(0, s.key(r), r)
		}
		s.locks[0].Unlock()
		s.publishBytes()
		return
	}
	parts := make([][]record.Record, s.par)
	for _, r := range recs {
		p := record.PartitionOf(s.key(r), s.par)
		parts[p] = append(parts[p], r)
	}
	for p := 0; p < s.par; p++ {
		if len(parts[p]) == 0 {
			continue
		}
		s.locks[p].Lock()
		for _, r := range parts[p] {
			s.backend.Store(p, s.key(r), r)
		}
		s.locks[p].Unlock()
	}
	s.publishBytes()
}

// Lookup probes partition part for key k. It counts a solution access.
func (s *SolutionSet) Lookup(part int, k int64) (record.Record, bool) {
	if s.m != nil {
		s.m.SolutionAccesses.Add(1)
	}
	s.locks[part].Lock()
	r, ok := s.backend.Lookup(part, k)
	s.locks[part].Unlock()
	return r, ok
}

// putLocked writes r under key k into partition part, honoring the
// comparator: the CPO-larger record wins (§5.1). It reports whether the
// stored record changed. The caller holds the partition's lock.
func (s *SolutionSet) putLocked(part int, k int64, r record.Record) bool {
	old, exists := s.backend.Lookup(part, k)
	if exists && s.cmp != nil && s.cmp(r, old) <= 0 {
		return false // the existing record is the successor state; drop r
	}
	if exists && old.Equal(r) {
		return false
	}
	s.backend.Store(part, k, r)
	if s.m != nil {
		s.m.SolutionUpdates.Add(1)
	}
	return true
}

// put is putLocked for a single record, taking the partition lock.
func (s *SolutionSet) put(r record.Record) bool {
	k := s.key(r)
	part := record.PartitionOf(k, s.par)
	s.locks[part].Lock()
	changed := s.putLocked(part, k, r)
	s.locks[part].Unlock()
	return changed
}

// publishBytes refreshes the resident-bytes gauge.
func (s *SolutionSet) publishBytes() {
	if s.m != nil {
		s.m.SolutionBytes.Store(s.backend.Bytes())
	}
}

// MergeDelta applies a delta set with the ∪̇ operator: every delta record
// replaces the solution record under the same key (subject to the
// comparator), new keys are inserted. It returns the number of records
// that actually changed the solution.
//
// The delta is applied partition-grouped: each partition is visited once,
// under one lock acquisition, with all of its updates. For the spill
// backend this is the difference between one reload per partition per
// superstep and one reload per record — a partition-interleaved merge
// under a tight budget would otherwise thrash the eviction path.
func (s *SolutionSet) MergeDelta(delta []record.Record) int {
	changed := 0
	if s.par == 1 {
		s.locks[0].Lock()
		for _, r := range delta {
			if s.putLocked(0, s.key(r), r) {
				changed++
			}
		}
		s.locks[0].Unlock()
		s.publishBytes()
		return changed
	}
	// Two passes over the delta: count per-partition, then fill one
	// backing array partition-contiguously (no per-partition slices).
	counts := make([]int, s.par)
	for _, r := range delta {
		counts[record.PartitionOf(s.key(r), s.par)]++
	}
	offsets := make([]int, s.par+1)
	for p := 0; p < s.par; p++ {
		offsets[p+1] = offsets[p] + counts[p]
	}
	grouped := make([]record.Record, len(delta))
	fill := append([]int(nil), offsets[:s.par]...)
	for _, r := range delta {
		p := record.PartitionOf(s.key(r), s.par)
		grouped[fill[p]] = r
		fill[p]++
	}
	for p := 0; p < s.par; p++ {
		if offsets[p] == offsets[p+1] {
			continue
		}
		s.locks[p].Lock()
		for _, r := range grouped[offsets[p]:offsets[p+1]] {
			if s.putLocked(p, s.key(r), r) {
				changed++
			}
		}
		s.locks[p].Unlock()
	}
	s.publishBytes()
	return changed
}

// Update applies a single delta record immediately (microstep execution,
// §5.2: the partial solution reflects the modification when the next
// element is processed). It reports whether the solution changed.
func (s *SolutionSet) Update(r record.Record) bool {
	changed := s.put(r)
	// Refresh the gauge even when the record was rejected: for the spill
	// backend, the probe itself can reload a partition and evict others,
	// changing residency.
	s.publishBytes()
	return changed
}

// ForceStore overwrites the entry under r's key unconditionally, bypassing
// the comparator. Live maintenance needs it for bounded recomputes after
// deletions: the affected entries must be movable to a CPO-*smaller* state
// (e.g. a component label re-initialized to the vertex's own id), which
// put would reject as a regression.
func (s *SolutionSet) ForceStore(r record.Record) {
	k := s.key(r)
	part := record.PartitionOf(k, s.par)
	s.locks[part].Lock()
	s.backend.Store(part, k, r)
	s.locks[part].Unlock()
	if s.m != nil {
		s.m.SolutionUpdates.Add(1)
	}
	s.publishBytes()
}

// Delete removes the entry under key k, reporting whether one existed.
// Live maintenance uses it when vertices leave the graph and when a
// recompute retracts state that no longer holds (e.g. a vertex made
// unreachable by an edge deletion).
func (s *SolutionSet) Delete(k int64) bool {
	part := record.PartitionOf(k, s.par)
	s.locks[part].Lock()
	ok := s.backend.Delete(part, k)
	s.locks[part].Unlock()
	s.publishBytes()
	return ok
}

// Size returns the total number of records.
func (s *SolutionSet) Size() int {
	n := 0
	for p := 0; p < s.par; p++ {
		s.locks[p].Lock()
		n += s.backend.Len(p)
		s.locks[p].Unlock()
	}
	return n
}

// Snapshot copies all records out (order unspecified). Spilled partitions
// are streamed from disk without being forced back into memory.
func (s *SolutionSet) Snapshot() []record.Record {
	out := make([]record.Record, 0, s.Size())
	for p := 0; p < s.par; p++ {
		s.locks[p].Lock()
		s.backend.Each(p, func(r record.Record) { out = append(out, r) })
		s.locks[p].Unlock()
	}
	return out
}

// Each visits every record under the partition locks (order unspecified)
// without materializing a copy the way Snapshot does. The callback must
// not call back into the set (the partition lock is held). Spilled
// partitions are streamed from disk, not reloaded.
func (s *SolutionSet) Each(f func(record.Record)) {
	for p := 0; p < s.par; p++ {
		s.EachPartition(p, f)
	}
}

// EachPartition visits every record of one partition under its lock,
// without materializing a copy. Snapshot writers iterate partitions in
// ascending order through it: the partition boundary is a natural point
// to flush a frame and check for write errors, and only one partition's
// lock is ever held — a spilled partition streams from disk without
// being forced resident, so a full-solution snapshot never needs the
// whole set in memory. The callback must not call back into the set.
func (s *SolutionSet) EachPartition(part int, f func(record.Record)) {
	s.locks[part].Lock()
	s.backend.Each(part, f)
	s.locks[part].Unlock()
}

// Reset empties the solution set for a new generation, retaining backend
// capacity (compact slabs, map buckets) so steady-state reuse across runs
// on one session avoids reallocation. Spill files are deleted.
func (s *SolutionSet) Reset() {
	for p := 0; p < s.par; p++ {
		s.locks[p].Lock()
	}
	s.backend.Reset()
	for p := s.par - 1; p >= 0; p-- {
		s.locks[p].Unlock()
	}
	s.publishBytes()
}

// Bytes reports the backend's resident in-memory footprint estimate.
func (s *SolutionSet) Bytes() int64 { return s.backend.Bytes() }

// PartitionFor returns the partition owning key k.
func (s *SolutionSet) PartitionFor(k int64) int {
	return record.PartitionOf(k, s.par)
}
