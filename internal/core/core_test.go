package core

import "testing"

// The core package re-exports the iteration abstraction; these tests pin
// the facade to the underlying implementations.

func TestFacadeBulkIteration(t *testing.T) {
	p := NewPlan()
	in := p.IterationPlaceholder("I", 1)
	m := p.MapNode("inc", in, func(r Record, out Emitter) {
		r.A++
		out.Emit(r)
	})
	o := p.SinkNode("O", m)
	res, err := RunBulk(BulkSpec{Plan: p, Input: in, Output: o, FixedIterations: 3},
		[]Record{{A: 0}}, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) != 1 || res.Solution[0].A != 3 {
		t.Fatalf("solution %v", res.Solution)
	}
}

func TestFacadeIncrementalAndMicrostep(t *testing.T) {
	build := func() (IncrementalSpec, []Record, []Record) {
		p := NewPlan()
		w := p.IterationPlaceholder("W", 2)
		upd := p.SolutionJoinNode("upd", w, func(r Record) int64 { return r.A },
			func(c, s Record, found bool, out Emitter) {
				if found && c.B < s.B {
					out.Emit(Record{A: c.A, B: c.B})
				}
			})
		// Preserve needs the same KeyFunc value for identity matching;
		// use the node's own key selector.
		upd.Preserve(0, upd.Keys[0])
		d := p.SinkNode("D", upd)
		e := p.SourceOf("E", []Record{{A: 0, B: 1}})
		prop := p.MatchNode("prop", upd, e, upd.Keys[0], upd.Keys[0],
			func(dr, er Record, out Emitter) {
				out.Emit(Record{A: er.B, B: dr.B})
			})
		w2 := p.SinkNode("W2", prop)
		return IncrementalSpec{
			Plan: p, Workset: w, DeltaSink: d, WorksetSink: w2,
			SolutionKey: upd.Keys[0], WorksetKey: upd.Keys[0],
		}, []Record{{A: 0, B: 5}, {A: 1, B: 9}}, []Record{{A: 0, B: 0}}
	}

	spec, s0, w0 := build()
	if _, err := ValidateMicrostep(spec); err != nil {
		t.Fatalf("facade validate: %v", err)
	}
	res, err := RunIncremental(spec, s0, w0, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range res.Solution {
		got[r.A] = r.B
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("propagation failed: %v", got)
	}

	spec2, s02, w02 := build()
	res2, err := RunMicrostep(spec2, s02, w02, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Solution) != 2 {
		t.Fatalf("microstep solution %v", res2.Solution)
	}
}
