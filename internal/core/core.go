// Package core hosts the paper's primary contribution — iteration
// operators embedded into parallel dataflows — as the stable internal
// surface the public spinflow package re-exports.
//
// The functionality is implemented across focused sibling packages:
//
//   - internal/dataflow: the logical PACT-style operator DAG (§3)
//   - internal/optimizer: plan enumeration, interesting properties, loop
//     feedback, constant-path caching (§4.3)
//   - internal/runtime: the parallel executor, exchanges, local
//     strategies, caches, and the partitioned solution set (§4.2, §5.3)
//   - internal/iterative: the bulk iteration operator (G, I, O, T), the
//     incremental iteration operator (Δ, S0, W0), and microstep
//     execution (§4, §5)
//
// This package re-exports the types that together form the iteration
// abstraction, so the mandated internal/core path resolves to the
// contribution.
package core

import (
	"repro/internal/dataflow"
	"repro/internal/iterative"
	"repro/internal/record"
	"repro/internal/runtime"
)

// Core dataflow types.
type (
	// Record is the tuple flowing through plans.
	Record = record.Record
	// KeyFunc selects grouping/join keys.
	KeyFunc = record.KeyFunc
	// Comparator arbitrates ∪̇ replacements (§5.1).
	Comparator = record.Comparator
	// Plan is a logical dataflow DAG.
	Plan = dataflow.Plan
	// Node is one logical operator.
	Node = dataflow.Node
	// Emitter receives UDF output.
	Emitter = dataflow.Emitter
)

// The iteration operators (the paper's contribution).
type (
	// BulkSpec is the bulk iteration operator (G, I, O, T) of §4.
	BulkSpec = iterative.BulkSpec
	// BulkResult is a bulk iteration outcome.
	BulkResult = iterative.BulkResult
	// IncrementalSpec is the incremental iteration operator (Δ, S0, W0)
	// of §5.
	IncrementalSpec = iterative.IncrementalSpec
	// IncrementalResult is an incremental/microstep iteration outcome.
	IncrementalResult = iterative.IncrementalResult
	// Config controls execution (parallelism, metrics, tracing).
	Config = iterative.Config
)

// NewPlan starts an empty logical plan.
func NewPlan() *Plan { return dataflow.NewPlan() }

// RunBulk executes a bulk iteration (§4.2 feedback-channel strategy).
func RunBulk(spec BulkSpec, initial []Record, cfg Config) (*BulkResult, error) {
	return iterative.RunBulk(spec, initial, cfg)
}

// RunIncremental executes an incremental iteration in supersteps (§5.3).
func RunIncremental(spec IncrementalSpec, s0, w0 []Record, cfg Config) (*IncrementalResult, error) {
	return iterative.RunIncremental(spec, s0, w0, cfg)
}

// RunMicrostep executes an admissible incremental iteration
// asynchronously in microsteps (§5.2).
func RunMicrostep(spec IncrementalSpec, s0, w0 []Record, cfg Config) (*IncrementalResult, error) {
	return iterative.RunMicrostep(spec, s0, w0, cfg)
}

// SolutionSet is the partitioned, keyed, resident state of an incremental
// iteration. A converged run hands it back via IncrementalResult.Set, and
// ResumeIncremental continues from it.
type SolutionSet = runtime.SolutionSet

// ResumeIncremental warm-restarts an incremental iteration over an
// existing converged solution set with only delta as the working set —
// the maintenance form of §5: fixpoints absorb new input without
// recomputation.
func ResumeIncremental(spec IncrementalSpec, existing *SolutionSet, delta []Record, cfg Config) (*IncrementalResult, error) {
	return iterative.ResumeIncremental(spec, existing, delta, cfg)
}

// ResumeMicrostep is the asynchronous counterpart of ResumeIncremental:
// it finishes a fixpoint over an existing resident solution set in
// microsteps — the warm handoff adaptive execution uses when it switches
// engines mid-run.
func ResumeMicrostep(spec IncrementalSpec, existing *SolutionSet, workset []Record, cfg Config) (*IncrementalResult, error) {
	return iterative.ResumeMicrostep(spec, existing, workset, cfg)
}

// Adaptive engine selection (§4.3 extended from plans to engines).
type (
	// AutoSpec describes one computation executable by several engines.
	AutoSpec = iterative.AutoSpec
	// AutoResult is the outcome of an adaptive run, including the
	// engine sequence, candidate costs and calibrated weights.
	AutoResult = iterative.AutoResult
)

// RunAuto costs the bulk, incremental and microstep engines, runs the
// cheapest, and switches engines mid-run when observed per-superstep
// cardinalities cross the dispatch-overhead crossover.
func RunAuto(spec AutoSpec, s0, w0 []Record, cfg Config) (*AutoResult, error) {
	return iterative.RunAuto(spec, s0, w0, cfg)
}

// ValidateMicrostep checks the §5.2 admissibility conditions.
func ValidateMicrostep(spec IncrementalSpec) ([]*Node, error) {
	return iterative.ValidateMicrostep(spec)
}
