// Package record defines the compact tuple model that flows through the
// dataflow engine, together with key selection, hashing, partitioning,
// comparison, and binary serialization.
//
// The engine deliberately uses a fixed-shape value type rather than boxed
// interface values: the paper's Stratosphere runtime "stores records in
// serialized form to reduce memory consumption and object allocation
// overhead" (§6.1), and a flat value struct is the closest Go equivalent —
// records move through channels and hash tables without per-record heap
// allocation.
package record

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Record is a compact, fixed-shape tuple with two integer columns, one
// floating-point column, and a small tag byte. The meaning of the columns
// is defined by the dataflow that uses them; common layouts:
//
//	edge:            A=source vertex, B=target vertex
//	vertex/rank:     A=page id, X=rank
//	matrix entry:    A=target id (row), B=source id (column), X=probability
//	component pair:  A=vertex id, B=component id
//	message:         A=destination vertex, B=integer payload, X=float payload
type Record struct {
	A, B int64
	X    float64
	Tag  uint8
}

// EncodedSize is the number of bytes Encode produces for one Record.
const EncodedSize = 8 + 8 + 8 + 1

// Encode appends the binary form of r to dst and returns the extended slice.
func (r Record) Encode(dst []byte) []byte {
	var buf [EncodedSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.A))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(r.B))
	binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(r.X))
	buf[24] = r.Tag
	return append(dst, buf[:]...)
}

// Decode reads a Record from the front of src, returning the record and the
// remaining bytes. It returns an error if src is too short.
func Decode(src []byte) (Record, []byte, error) {
	if len(src) < EncodedSize {
		return Record{}, src, fmt.Errorf("record: decode needs %d bytes, have %d", EncodedSize, len(src))
	}
	r := Record{
		A:   int64(binary.LittleEndian.Uint64(src[0:8])),
		B:   int64(binary.LittleEndian.Uint64(src[8:16])),
		X:   math.Float64frombits(binary.LittleEndian.Uint64(src[16:24])),
		Tag: src[24],
	}
	return r, src[EncodedSize:], nil
}

// String renders the record for debugging.
func (r Record) String() string {
	return fmt.Sprintf("(A=%d B=%d X=%g T=%d)", r.A, r.B, r.X, r.Tag)
}

// KeyFunc extracts the grouping/joining key from a record.
type KeyFunc func(Record) int64

// Standard key selectors.
var (
	KeyA KeyFunc = func(r Record) int64 { return r.A }
	KeyB KeyFunc = func(r Record) int64 { return r.B }
)

// KeyID returns a comparable identity for a key selector: two KeyFunc
// values get the same id iff they are the same function value. The
// package-level selectors KeyA and KeyB are singletons, so plans built
// from them get precise physical-property matching in the optimizer.
func KeyID(k KeyFunc) uintptr {
	if k == nil {
		return 0
	}
	return reflect.ValueOf(k).Pointer()
}

// Hash64 mixes a 64-bit key into a well-distributed 64-bit hash
// (splitmix64 finalizer). It is the single hash used for partitioning and
// hash tables so that co-partitioned inputs land on the same partition.
func Hash64(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PartitionOf maps a key to one of n partitions.
func PartitionOf(k int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Hash64(k) % uint64(n))
}

// Comparator establishes a total order between two records that share a
// key. Incremental iterations use it to decide, when a delta record would
// replace a solution-set record, which of the two is the CPO-successor
// state (§5.1: "the larger one will be reflected in S").
// It returns a negative number if a precedes b, zero if they are
// equivalent, and a positive number if a succeeds b.
type Comparator func(a, b Record) int

// Equal reports full structural equality of two records.
func (r Record) Equal(o Record) bool {
	return r.A == o.A && r.B == o.B && r.X == o.X && r.Tag == o.Tag
}

// Less orders records by (A, B, X, Tag); used by sort-based local
// strategies and deterministic test output.
func Less(a, b Record) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Tag < b.Tag
}

// Batch is the unit of transfer between physical operators.
type Batch = []Record

// EncodeBatch serializes a batch, prefixed with its length.
func EncodeBatch(dst []byte, b Batch) []byte {
	var lenbuf [4]byte
	binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(b)))
	dst = append(dst, lenbuf[:]...)
	for _, r := range b {
		dst = r.Encode(dst)
	}
	return dst
}

// DecodeBatch reads a batch written by EncodeBatch.
func DecodeBatch(src []byte) (Batch, []byte, error) {
	if len(src) < 4 {
		return nil, src, fmt.Errorf("record: batch header needs 4 bytes, have %d", len(src))
	}
	n := int(binary.LittleEndian.Uint32(src[:4]))
	src = src[4:]
	// Cap the allocation hint by what the buffer can actually hold, so a
	// corrupt length prefix fails with a decode error instead of a
	// multi-gigabyte allocation.
	capHint := n
	if max := len(src) / EncodedSize; capHint > max {
		capHint = max
	}
	out := make(Batch, 0, capHint)
	for i := 0; i < n; i++ {
		var r Record
		var err error
		r, src, err = Decode(src)
		if err != nil {
			return nil, src, err
		}
		out = append(out, r)
	}
	return out, src, nil
}
