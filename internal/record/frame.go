package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Framed batch serialization: the unit of durable storage shared by the
// live-view write-ahead log and the streaming checkpoint format. A frame
// wraps one EncodeBatch payload with a byte-length prefix and a CRC32 so
// a reader can (a) skip through a log without decoding, (b) detect torn
// tails — a crash mid-append leaves a frame whose length, checksum, or
// record count no longer agree — and (c) reject bit flips that a plain
// length-prefixed format would decode into garbage records.
//
//	frame := payloadLen uint32 | crc32(payload) uint32 | payload
//	payload := EncodeBatch(batch)   (count uint32 | count records)

// FrameHeaderSize is the number of bytes preceding a frame's payload.
const FrameHeaderSize = 8

// ErrCorruptFrame reports a frame that cannot be trusted: a truncated
// header or payload, a checksum mismatch, or a length prefix inconsistent
// with the payload's record count. Readers treat the first corrupt frame
// as the end of the valid prefix (a torn tail).
var ErrCorruptFrame = errors.New("record: corrupt frame")

// AppendFrame appends the framed form of b to dst and returns the
// extended slice.
func AppendFrame(dst []byte, b Batch) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, FrameHeaderSize)...)
	dst = EncodeBatch(dst, b)
	payload := dst[start+FrameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// frameAllocHint caps the capacity a frame decode allocates up front; a
// frame claiming more records grows by append as records actually arrive,
// so a corrupt length prefix cannot force a large allocation.
const frameAllocHint = 4096

// FrameReader decodes a stream of frames through a fixed-size buffered
// reader: memory per frame is bounded by the buffer plus the decoded
// batch, independent of the stream's length, and allocation is
// proportional to records actually present — never to a corrupt length
// prefix.
type FrameReader struct {
	br    *bufio.Reader
	valid int64
}

// frameReadBufSize is the fixed size of the buffered reader frames are
// streamed through (the same bound the spill replay path uses).
const frameReadBufSize = 64 << 10

// NewFrameReader wraps r for frame decoding. If r is already a
// *bufio.Reader it is used directly rather than double-buffered — the TCP
// transport interleaves its own message headers with frames on one
// connection, and both must consume from the same buffer to stay aligned.
func NewFrameReader(r io.Reader) *FrameReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &FrameReader{br: br}
	}
	return &FrameReader{br: bufio.NewReaderSize(r, frameReadBufSize)}
}

// ValidOffset returns the number of bytes consumed by fully-valid frames:
// after Next returns an error, it is the truncation point that discards
// the torn tail while keeping every intact frame.
func (fr *FrameReader) ValidOffset() int64 { return fr.valid }

// Next decodes the next frame. It returns io.EOF at a clean end of the
// stream (no partial frame), and an error wrapping ErrCorruptFrame for a
// truncated, checksum-failing, or self-inconsistent frame.
func (fr *FrameReader) Next() (Batch, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorruptFrame, err)
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
	if payloadLen < 4 || (payloadLen-4)%EncodedSize != 0 {
		return nil, fmt.Errorf("%w: payload length %d is not a whole batch", ErrCorruptFrame, payloadLen)
	}
	crc := crc32.NewIEEE()
	var cnt [4]byte
	if _, err := io.ReadFull(fr.br, cnt[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated batch count: %v", ErrCorruptFrame, err)
	}
	crc.Write(cnt[:])
	n := binary.LittleEndian.Uint32(cnt[:])
	if n != (payloadLen-4)/EncodedSize {
		return nil, fmt.Errorf("%w: batch count %d disagrees with payload length %d", ErrCorruptFrame, n, payloadLen)
	}
	capHint := int(n)
	if capHint > frameAllocHint {
		capHint = frameAllocHint
	}
	out := make(Batch, 0, capHint)
	var rbuf [EncodedSize]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(fr.br, rbuf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated record %d/%d: %v", ErrCorruptFrame, i, n, err)
		}
		crc.Write(rbuf[:])
		r, _, err := Decode(rbuf[:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
		}
		out = append(out, r)
	}
	if got := crc.Sum32(); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum %#x, frame claims %#x", ErrCorruptFrame, got, wantCRC)
	}
	fr.valid += int64(FrameHeaderSize) + int64(payloadLen)
	return out, nil
}
