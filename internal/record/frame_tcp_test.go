package record

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// framePipe returns a connected TCP pair on loopback — the transport's
// actual transport, so reads see real socket short-read behavior rather
// than bytes.Reader's always-full reads.
func framePipe(t *testing.T) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	// A decoding bug must fail the test, not hang it.
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	return client, server
}

// Frames arriving in dribbles — every socket write smaller than a header,
// so every length, count, and record straddles read boundaries — must
// decode identically to a contiguous stream.
func TestFrameReaderTCPShortReads(t *testing.T) {
	batches := []Batch{
		{{A: 1, B: 2, X: 3.5, Tag: 4}, {A: -9}},
		{}, // empty frames are valid (section markers)
		{{A: 7, B: 7, X: -0.25, Tag: 255}},
		{{A: 100}, {A: 101}, {A: 102}},
	}
	buf := frameStream(batches)
	client, server := framePipe(t)

	go func() {
		// 3-byte writes with pauses: no frame header (8 bytes) or record
		// (EncodedSize) ever arrives in one TCP segment.
		for i := 0; i < len(buf); i += 3 {
			end := i + 3
			if end > len(buf) {
				end = len(buf)
			}
			if _, err := server.Write(buf[i:end]); err != nil {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		server.Close()
	}()

	fr := NewFrameReader(client)
	for i, want := range batches {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d records, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !got[j].Equal(want[j]) {
				t.Fatalf("frame %d record %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	if fr.ValidOffset() != int64(len(buf)) {
		t.Fatalf("ValidOffset %d, want %d", fr.ValidOffset(), len(buf))
	}
}

// A peer dying mid-frame must surface as ErrCorruptFrame after the last
// intact frame — never a hang, never a clean EOF that silently drops the
// partial frame, and never a misaligned decode of the next stream.
func TestFrameReaderTCPMidFrameDrop(t *testing.T) {
	full := frameStream([]Batch{{{A: 1}, {A: 2}}})
	partial := frameStream([]Batch{{{A: 3}, {A: 4}, {A: 5}}})
	cuts := []struct {
		name string
		keep int // bytes of the second frame that make it onto the wire
	}{
		{"mid-header", 5},
		{"after-header", FrameHeaderSize + 2},
		{"mid-record", FrameHeaderSize + 4 + EncodedSize + 7},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			client, server := framePipe(t)
			go func() {
				server.Write(full)
				server.Write(partial[:cut.keep])
				server.Close() // connection drops mid-frame
			}()

			fr := NewFrameReader(client)
			got, err := fr.Next()
			if err != nil || len(got) != 2 {
				t.Fatalf("intact frame: %v records, err %v", got, err)
			}
			_, err = fr.Next()
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("torn frame: err %v, want ErrCorruptFrame", err)
			}
			if fr.ValidOffset() != int64(len(full)) {
				t.Fatalf("ValidOffset %d, want %d (the intact prefix)", fr.ValidOffset(), len(full))
			}
		})
	}
}
