package record

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func frameStream(batches []Batch) []byte {
	var buf []byte
	for _, b := range batches {
		buf = AppendFrame(buf, b)
	}
	return buf
}

func TestFrameRoundTrip(t *testing.T) {
	batches := []Batch{
		{{A: 1, B: 2, X: 3.5, Tag: 4}, {A: -9}},
		{}, // empty frames are valid (section markers)
		{{A: 7, B: 7, X: -0.25, Tag: 255}},
	}
	buf := frameStream(batches)
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range batches {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d records, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !got[j].Equal(want[j]) {
				t.Fatalf("frame %d record %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	if fr.ValidOffset() != int64(len(buf)) {
		t.Fatalf("ValidOffset %d, want %d", fr.ValidOffset(), len(buf))
	}
}

func TestFrameTornTailTruncation(t *testing.T) {
	good := frameStream([]Batch{{{A: 1}}, {{A: 2}, {A: 3}}})
	torn := AppendFrame(nil, Batch{{A: 4}})
	for cut := 1; cut < len(torn); cut++ {
		buf := append(append([]byte(nil), good...), torn[:cut]...)
		fr := NewFrameReader(bytes.NewReader(buf))
		n := 0
		var err error
		for {
			var b Batch
			b, err = fr.Next()
			if err != nil {
				break
			}
			n += len(b)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("cut %d: err %v, want ErrCorruptFrame", cut, err)
		}
		if n != 3 {
			t.Fatalf("cut %d: decoded %d records from the valid prefix, want 3", cut, n)
		}
		if fr.ValidOffset() != int64(len(good)) {
			t.Fatalf("cut %d: ValidOffset %d, want %d", cut, fr.ValidOffset(), len(good))
		}
	}
}

func TestFrameFlippedCRC(t *testing.T) {
	buf := frameStream([]Batch{{{A: 1, B: 2}}})
	for bit := 0; bit < 8*len(buf); bit++ {
		flipped := append([]byte(nil), buf...)
		flipped[bit/8] ^= 1 << (bit % 8)
		fr := NewFrameReader(bytes.NewReader(flipped))
		if b, err := fr.Next(); err == nil {
			// The only acceptable silent flip is none: any bit of the
			// header or payload participates in length/CRC validation.
			if len(b) != 1 || !b[0].Equal(buf2rec(buf)) {
				t.Fatalf("bit %d: corrupt frame decoded to %v", bit, b)
			}
			t.Fatalf("bit %d: flip accepted", bit)
		} else if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("bit %d: err %v, want ErrCorruptFrame", bit, err)
		}
	}
}

func buf2rec(frame []byte) Record {
	r, _, _ := Decode(frame[FrameHeaderSize+4:])
	return r
}

func TestFrameOversizeLengthPrefix(t *testing.T) {
	// A frame claiming 1<<30 records must error on the short read, not
	// allocate gigabytes. The alloc hint is capped, so the attempted
	// allocation is tiny regardless of the claim.
	var hdr [FrameHeaderSize + 4]byte
	n := uint32(1 << 30)
	binary.LittleEndian.PutUint32(hdr[:4], 4+n*EncodedSize)
	binary.LittleEndian.PutUint32(hdr[8:], n)
	fr := NewFrameReader(bytes.NewReader(hdr[:]))
	if _, err := fr.Next(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversize length: %v, want ErrCorruptFrame", err)
	}
}

// FuzzFrameReader feeds arbitrary bytes through the frame decoder: it
// must never panic or over-allocate, and whatever valid prefix it
// accepts must re-encode to the identical bytes.
func FuzzFrameReader(f *testing.F) {
	f.Add(frameStream([]Batch{{{A: 1, B: 2, X: 3, Tag: 4}}, {}}))
	f.Add(frameStream([]Batch{{{A: -1}, {A: 5, X: 0.5}}})[:10])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var reenc []byte
		for {
			b, err := fr.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			reenc = AppendFrame(reenc, b)
		}
		off := fr.ValidOffset()
		if off > int64(len(data)) {
			t.Fatalf("ValidOffset %d beyond input %d", off, len(data))
		}
		if !bytes.Equal(reenc, data[:off]) {
			t.Fatalf("valid prefix does not re-encode identically")
		}
	})
}
