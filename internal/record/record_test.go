package record

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{},
		{A: 1, B: 2, X: 3.5, Tag: 4},
		{A: -1, B: -1 << 62, X: math.Inf(1), Tag: 255},
		{A: math.MaxInt64, B: math.MinInt64, X: -0.0, Tag: 0},
	}
	for _, want := range cases {
		buf := want.Encode(nil)
		if len(buf) != EncodedSize {
			t.Fatalf("encoded size = %d, want %d", len(buf), EncodedSize)
		}
		got, rest, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d bytes", len(rest))
		}
		if !got.Equal(want) {
			t.Errorf("round trip: got %v want %v", got, want)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(a, b int64, x float64, tag uint8) bool {
		in := Record{A: a, B: b, X: x, Tag: tag}
		out, rest, err := Decode(in.Encode(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		// NaN compares unequal to itself; compare bit patterns instead.
		return out.A == in.A && out.B == in.B && out.Tag == in.Tag &&
			math.Float64bits(out.X) == math.Float64bits(in.X)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeShortInput(t *testing.T) {
	if _, _, err := Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Error("want error for short input")
	}
	if _, _, err := DecodeBatch([]byte{1, 2}); err == nil {
		t.Error("want error for short batch header")
	}
	// Header claims one record but no payload follows.
	if _, _, err := DecodeBatch([]byte{1, 0, 0, 0}); err == nil {
		t.Error("want error for truncated batch body")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := Batch{{A: 1}, {B: 2}, {X: 3}, {Tag: 4}}
	buf := EncodeBatch(nil, in)
	out, rest, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || len(out) != len(in) {
		t.Fatalf("batch round trip mismatch: %d records, %d rest", len(out), len(rest))
	}
	for i := range in {
		if !out[i].Equal(in[i]) {
			t.Errorf("record %d: got %v want %v", i, out[i], in[i])
		}
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	out, rest, err := DecodeBatch(EncodeBatch(nil, nil))
	if err != nil || len(rest) != 0 || len(out) != 0 {
		t.Fatalf("empty batch: out=%v rest=%v err=%v", out, rest, err)
	}
}

func TestPartitionOfStable(t *testing.T) {
	// The same key must always land in the same partition.
	for k := int64(-100); k < 100; k++ {
		p1 := PartitionOf(k, 7)
		p2 := PartitionOf(k, 7)
		if p1 != p2 {
			t.Fatalf("partition not stable for key %d", k)
		}
		if p1 < 0 || p1 >= 7 {
			t.Fatalf("partition out of range: %d", p1)
		}
	}
	if PartitionOf(12345, 1) != 0 {
		t.Error("single partition must map to 0")
	}
	if PartitionOf(12345, 0) != 0 {
		t.Error("degenerate partition count must map to 0")
	}
}

func TestPartitionOfSpread(t *testing.T) {
	// Sequential keys should spread across partitions reasonably evenly.
	const n, parts = 10000, 8
	counts := make([]int, parts)
	for k := int64(0); k < n; k++ {
		counts[PartitionOf(k, parts)]++
	}
	for p, c := range counts {
		if c < n/parts/2 || c > n/parts*2 {
			t.Errorf("partition %d holds %d of %d records; poor spread", p, c, n)
		}
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]int64{}
	for k := int64(0); k < 100000; k++ {
		h := Hash64(k)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %d and %d", prev, k)
		}
		seen[h] = k
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	recs := []Record{
		{A: 2}, {A: 1, B: 5}, {A: 1, B: 3}, {A: 1, B: 3, X: -1},
		{A: 1, B: 3, X: -1, Tag: 9}, {},
	}
	sort.Slice(recs, func(i, j int) bool { return Less(recs[i], recs[j]) })
	for i := 1; i < len(recs); i++ {
		if Less(recs[i], recs[i-1]) {
			t.Fatalf("sorted output violates order at %d: %v before %v", i, recs[i-1], recs[i])
		}
	}
	if Less(recs[0], recs[0]) {
		t.Error("Less must be irreflexive")
	}
}

func TestKeySelectors(t *testing.T) {
	r := Record{A: 10, B: 20}
	if KeyA(r) != 10 || KeyB(r) != 20 {
		t.Errorf("key selectors wrong: %d %d", KeyA(r), KeyB(r))
	}
}
