package distrib

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Result is the outcome of a distributed run, as seen by the coordinator.
type Result struct {
	// Solution is the converged solution set assembled from every
	// process's hosted partitions, in canonical (record.Less) order —
	// the byte-comparable form the differential harness checks.
	Solution []record.Record
	// Supersteps is the number of barrier rounds to the fixpoint.
	Supersteps int
	// PlanEpochs is how many coordinated mid-run re-optimizations the run
	// applied (JobSpec.Reoptimize only).
	PlanEpochs int
	// Work is the coordinator process's counter snapshot (remote batches
	// and bytes measure only host 0's share of the shuffle).
	Work metrics.Snapshot
	// Spans is the run's reassembled cross-process trace (RunObs with a
	// registry only): the coordinator's own spans plus every worker's,
	// all under one trace ID, distinguishable by Span.Host.
	Spans []obs.Span
}

// workerConn is the coordinator's control connection to one worker
// process.
type workerConn struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// expect reads the next control message and requires one of the given
// kinds; a kindError reply is surfaced as the worker's job error.
func (w *workerConn) expect(kinds ...string) (ctlMsg, error) {
	var msg ctlMsg
	if err := w.dec.Decode(&msg); err != nil {
		return msg, fmt.Errorf("distrib: worker connection: %w", err)
	}
	if msg.Kind == kindError {
		return msg, fmt.Errorf("distrib: worker failed: %s", msg.Err)
	}
	for _, k := range kinds {
		if msg.Kind == k {
			return msg, nil
		}
	}
	return msg, fmt.Errorf("distrib: expected %v from worker, got %q", kinds, msg.Kind)
}

// coordBarrier plugs the worker pool into the shared superstep driver: the
// coordinator's own job runs inside iterative's driver loop, and this
// barrier is how each round reaches the other processes. Release fans the
// step out to every worker before the coordinator computes its own share —
// the exchanges require all processes in the round concurrently, since
// every process's consumers wait on every process's producers. Collect
// gathers the workers' local next-workset counts into the global one the
// driver converges on, rejecting any worker whose plan epoch disagrees.
type coordBarrier struct {
	workers []*workerConn
	j       *job
	reg     *obs.Registry
	// epoch is the coordinated plan epoch every process must be at; it
	// advances in epochBump only after all workers acknowledge the swap.
	epoch     int
	stepStart time.Time
}

func (b *coordBarrier) Release(step int) error {
	b.stepStart = time.Now()
	for _, w := range b.workers {
		if err := w.enc.Encode(ctlMsg{Kind: kindStep, Epoch: b.epoch}); err != nil {
			return err
		}
	}
	return nil
}

func (b *coordBarrier) Collect(step, localNext int) (int, error) {
	total := localNext
	for _, w := range b.workers {
		done, err := w.expect(kindStepDone)
		if err != nil {
			return 0, err
		}
		if done.Epoch != b.epoch {
			return 0, fmt.Errorf("distrib: superstep %d: worker at plan epoch %d, coordinator at %d — rejected at the barrier",
				step, done.Epoch, b.epoch)
		}
		total += done.Count
	}
	if b.reg != nil {
		// Release-to-all-done round trip: the barrier as the
		// coordinator experiences it, including every peer's compute.
		b.reg.Histogram("distrib_step_rtt").ObserveSince(b.stepStart)
	}
	return total, nil
}

// epochBump is the driver's OnEpoch hook: the coordinator's driver decided
// to re-plan at the barrier, and phys is the plan it is about to swap to.
// Broadcast the epoch with the global workset estimate, wait for every
// worker to re-plan and swap, and verify their digests against ours —
// only then does the driver swap the coordinator's own session, so a
// worker that fails the swap aborts the run before any process executes
// under a mixed-plan mesh.
func (b *coordBarrier) epochBump(epoch int, est int64, phys *optimizer.PhysPlan) error {
	digest := PlanDigest(phys)
	for _, w := range b.workers {
		if err := w.enc.Encode(ctlMsg{Kind: kindEpoch, Epoch: epoch, Count: int(est), Digest: digest}); err != nil {
			return err
		}
	}
	for _, w := range b.workers {
		done, err := w.expect(kindEpochDone)
		if err != nil {
			return err
		}
		if done.Digest != digest {
			return fmt.Errorf("distrib: plan epoch %d: worker re-planned a different dataflow (digest %.12s, coordinator %.12s)",
				epoch, done.Digest, digest)
		}
	}
	b.epoch = epoch
	b.j.phys = phys
	b.j.digest = digest
	b.j.epoch = epoch
	return nil
}

// Run executes js as a distributed session: this process is host 0 (the
// coordinator, hosting the first partition range) and each workerAddrs
// entry is the control address of one already-listening worker process
// (hosts 1..N). js.Hosts is overridden to 1+len(workerAddrs).
//
// The coordinator builds the same deterministic job state as every
// worker, verifies the workers' plan digests against its own, meshes the
// data plane, and then drives the superstep barrier: each round it
// releases every process (itself included), gathers the local
// next-workset counts, and stops at the first globally empty workset —
// local emptiness means nothing, a process's workset can refill entirely
// from its peers' shipped records.
func Run(js JobSpec, workerAddrs []string) (*Result, error) {
	return RunObs(js, workerAddrs, nil)
}

// RunObs is Run with telemetry: when reg is non-nil the coordinator mints
// a trace ID (unless the spec carries one), ships it to every worker with
// the job, records its own superstep/operator/ship spans and a
// distrib_step_rtt histogram sample per barrier round, and merges the
// spans each worker returns at collect time — so reg's ring ends up
// holding the whole run's timeline, and Result.Spans returns it.
func RunObs(js JobSpec, workerAddrs []string, reg *obs.Registry) (*Result, error) {
	js = js.normalized()
	js.Hosts = 1 + len(workerAddrs)
	if reg != nil && js.TraceID == 0 {
		js.TraceID = uint64(obs.NewTraceID())
	}

	j, dataAddr, err := newJob(js, 0, "127.0.0.1:0", reg)
	if err != nil {
		return nil, err
	}
	defer j.close()

	// Control plane: dial every worker, assign the job, gather readiness.
	workers := make([]*workerConn, len(workerAddrs))
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.enc.Encode(ctlMsg{Kind: kindStop})
				w.conn.Close()
			}
		}
	}()
	dataAddrs := make([]string, js.Hosts)
	dataAddrs[0] = dataAddr
	for i, addr := range workerAddrs {
		// Session open tolerates a worker that is still starting: the dial
		// retries with bounded backoff. Mid-run failures stay fail-fast.
		conn, err := DialWorker(addr, MeshTimeout)
		if err != nil {
			return nil, err
		}
		w := &workerConn{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
		workers[i] = w
		if err := w.enc.Encode(ctlMsg{Kind: kindJob, Job: &js, HostID: i + 1}); err != nil {
			return nil, fmt.Errorf("distrib: assign job to %s: %w", addr, err)
		}
		ready, err := w.expect(kindReady)
		if err != nil {
			return nil, err
		}
		if ready.Digest != j.digest {
			return nil, fmt.Errorf("distrib: worker %s planned a different dataflow (digest %.12s, coordinator %.12s) — mixed binaries?",
				addr, ready.Digest, j.digest)
		}
		dataAddrs[i+1] = ready.DataAddr
	}

	// Mesh the data plane everywhere before any superstep runs.
	for _, w := range workers {
		if err := w.enc.Encode(ctlMsg{Kind: kindStart, DataAddrs: dataAddrs}); err != nil {
			return nil, err
		}
	}
	if err := j.open(dataAddrs); err != nil {
		return nil, err
	}
	for _, w := range workers {
		if _, err := w.expect(kindMeshed); err != nil {
			return nil, err
		}
	}

	// Drive to the fixpoint through the shared superstep driver: the same
	// loop that runs the single-process engines runs here, with the worker
	// pool plugged in as the barrier and — when js.Reoptimize is set — the
	// epoch hook coordinating mid-run plan swaps across every process.
	res := &Result{}
	b := &coordBarrier{workers: workers, j: j, reg: reg}
	ir, err := j.fx.RunDriven(j.w0, iterative.DriveHooks{Barrier: b, OnEpoch: b.epochBump})
	if err != nil {
		if errors.Is(err, iterative.ErrNoProgress) {
			return nil, fmt.Errorf("distrib: no fixpoint after %d supersteps", js.MaxSupersteps)
		}
		return nil, err
	}
	res.Supersteps = ir.Supersteps
	res.PlanEpochs = ir.PlanEpochs

	// Assemble the solution: every process contributes its hosted
	// partitions; the canonical sort makes the result byte-comparable
	// regardless of partition or backend iteration order.
	sol := append([]record.Record(nil), decodeOwn(j)...)
	for _, w := range workers {
		if err := w.enc.Encode(ctlMsg{Kind: kindCollect}); err != nil {
			return nil, err
		}
		msg, err := w.expect(kindSolution)
		if err != nil {
			return nil, err
		}
		recs, err := decodeFrames(msg.Frames)
		if err != nil {
			return nil, err
		}
		sol = append(sol, recs...)
		if reg != nil {
			// Fold the worker's spans into our ring: after the last
			// worker, the ring holds the whole run under one trace ID.
			for _, sp := range msg.Spans {
				reg.Trace().RecordSpan(sp)
			}
		}
	}
	sort.Slice(sol, func(x, y int) bool { return record.Less(sol[x], sol[y]) })
	res.Solution = sol
	res.Work = j.m.Snapshot()
	if reg != nil {
		res.Spans = reg.Trace().SpansFor(obs.TraceID(js.TraceID))
	}
	return res, nil
}

// decodeOwn reads the coordinator's hosted partitions back out of the
// same framed form the workers ship, so both sides of the assembly go
// through one code path.
func decodeOwn(j *job) []record.Record {
	recs, err := decodeFrames(j.collect(0))
	if err != nil {
		// collect produced the frames locally; a decode failure here is a
		// codec bug, not an I/O condition.
		panic(err)
	}
	return recs
}

// decodeFrames decodes concatenated record frames into a flat slice.
func decodeFrames(frames []byte) ([]record.Record, error) {
	fr := record.NewFrameReader(bytes.NewReader(frames))
	var out []record.Record
	for {
		b, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("distrib: solution payload: %w", err)
		}
		out = append(out, b...)
	}
}
