package distrib

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"repro/internal/obs"
)

// meshTimeout bounds how long a process waits for the full peer mesh.
const meshTimeout = 30 * time.Second

// ServeWorker accepts coordinator control connections on ln and hosts the
// partition ranges they assign. One control connection carries any number
// of sequential jobs; Serve returns when the listener closes. The logger
// receives connection-level failures (a lost coordinator is normal at
// shutdown, so they are logged, not fatal).
//
// A non-nil registry is this worker's telemetry plane: jobs that arrive
// with a trace ID record their spans into its ring (and ship them back to
// the coordinator at collect time), its histograms accumulate superstep
// and transport latencies, and `spinflow worker -telemetry-addr` serves
// it over /metrics. Nil disables all of it.
func ServeWorker(ln net.Listener, lg *log.Logger, reg *obs.Registry) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if err := serveControl(conn, reg); err != nil && !errors.Is(err, io.EOF) && lg != nil {
				lg.Printf("distrib: worker control connection: %v", err)
			}
		}()
	}
}

// serveControl runs one coordinator's control connection to completion.
func serveControl(conn net.Conn, reg *obs.Registry) error {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var msg ctlMsg
		if err := dec.Decode(&msg); err != nil {
			return err
		}
		switch msg.Kind {
		case kindJob:
			if msg.Job == nil {
				return errors.New("distrib: job message without a spec")
			}
			if err := runWorkerJob(*msg.Job, msg.HostID, dec, enc, reg); err != nil {
				return err
			}
		case kindStop:
			return nil
		default:
			return fmt.Errorf("distrib: unexpected control message %q outside a job", msg.Kind)
		}
	}
}

// runWorkerJob executes one job under the coordinator's direction: build
// the deterministic local state, report readiness, mesh, then alternate
// superstep barriers until told to collect and stop. Protocol errors are
// returned (the connection is broken); job execution errors are reported
// to the coordinator with kindError, after which the worker stays usable.
func runWorkerJob(js JobSpec, hostID int, dec *json.Decoder, enc *json.Encoder, reg *obs.Registry) error {
	j, dataAddr, err := newJob(js, hostID, "127.0.0.1:0", reg)
	if err != nil {
		return enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()})
	}
	defer j.close()
	if err := enc.Encode(ctlMsg{Kind: kindReady, DataAddr: dataAddr, Digest: j.digest}); err != nil {
		return err
	}

	var start ctlMsg
	if err := dec.Decode(&start); err != nil {
		return err
	}
	if start.Kind != kindStart {
		return fmt.Errorf("distrib: expected %q, got %q", kindStart, start.Kind)
	}
	if err := j.open(start.DataAddrs); err != nil {
		return enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()})
	}
	// Seed the initial workset: SetPlaceholder partitions the full W0 and
	// the session reads only this worker's hosted range, so every process
	// seeds from the identical deterministic slice.
	j.fx.SeedWorkset(j.w0)
	if err := enc.Encode(ctlMsg{Kind: kindMeshed}); err != nil {
		return err
	}

	for {
		var msg ctlMsg
		if err := dec.Decode(&msg); err != nil {
			return err
		}
		switch msg.Kind {
		case kindStep:
			if msg.Epoch != j.epoch {
				err := fmt.Errorf("distrib: released for superstep at plan epoch %d while at %d", msg.Epoch, j.epoch)
				if err := enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()}); err != nil {
					return err
				}
				continue // wait for the coordinator's stop
			}
			count, err := j.fx.StepOnce()
			if err != nil {
				if err := enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()}); err != nil {
					return err
				}
				continue // wait for the coordinator's stop
			}
			if err := enc.Encode(ctlMsg{Kind: kindStepDone, Count: count, Epoch: j.epoch}); err != nil {
				return err
			}
		case kindEpoch:
			// Coordinated plan swap: re-plan for the coordinator's global
			// workset estimate, swap the session, and echo our new digest
			// so the coordinator can verify the mesh stayed plan-agreed.
			digest, err := j.applyEpoch(msg.Epoch, int64(msg.Count))
			if err != nil {
				if err := enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()}); err != nil {
					return err
				}
				continue // wait for the coordinator's stop
			}
			if err := enc.Encode(ctlMsg{Kind: kindEpochDone, Epoch: msg.Epoch, Digest: digest}); err != nil {
				return err
			}
		case kindCollect:
			// A traced job returns its spans with the solution so the
			// coordinator can reassemble the cross-process timeline.
			var spans []obs.Span
			if reg != nil && js.TraceID != 0 {
				spans = reg.Trace().SpansFor(obs.TraceID(js.TraceID))
			}
			if err := enc.Encode(ctlMsg{Kind: kindSolution, Frames: j.collect(hostID), Spans: spans}); err != nil {
				return err
			}
		case kindStop:
			return nil
		default:
			return fmt.Errorf("distrib: unexpected control message %q inside a job", msg.Kind)
		}
	}
}
