package distrib

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"time"

	"repro/internal/obs"
)

// MeshTimeout bounds how long a process waits for the full peer mesh
// (shared by batch jobs and the live tier's sharded view sessions).
const MeshTimeout = 30 * time.Second

// ViewHost extends a worker with long-lived live-view maintenance
// sessions. When a control message arrives whose kind starts with "view_"
// outside a batch job, the whole connection is handed to the host: open is
// the raw opening message, and dec/enc are the connection's codec pair.
// ServeView owns the connection until the session ends (normally or with
// an error); afterwards the control loop resumes on the same connection.
// The interface is stdlib-shaped on purpose, so the live tier can
// implement it without this package knowing its message schema.
type ViewHost interface {
	ServeView(open json.RawMessage, dec *json.Decoder, enc *json.Encoder) error
}

// ServeWorkerOpts configures a worker process.
type ServeWorkerOpts struct {
	// Log receives connection-level failures (a lost coordinator is
	// normal at shutdown, so they are logged, not fatal).
	Log *log.Logger
	// Obs is the worker's telemetry plane: jobs and view sessions that
	// arrive with a trace ID record their spans into its ring (and ship
	// them back to the coordinator at collect time). Nil disables it.
	Obs *obs.Registry
	// Views, if set, lets this worker host live-view maintenance
	// sessions in addition to batch jobs.
	Views ViewHost
}

// ServeWorker accepts coordinator control connections on ln and hosts the
// partition ranges they assign. One control connection carries any number
// of sequential jobs; Serve returns when the listener closes.
func ServeWorker(ln net.Listener, lg *log.Logger, reg *obs.Registry) error {
	return ServeWorkerWith(ln, ServeWorkerOpts{Log: lg, Obs: reg})
}

// ServeWorkerWith is ServeWorker with the full option set (telemetry and
// live-view session hosting).
func ServeWorkerWith(ln net.Listener, opts ServeWorkerOpts) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			if err := serveControl(conn, opts); err != nil && !errors.Is(err, io.EOF) && opts.Log != nil {
				opts.Log.Printf("distrib: worker control connection: %v", err)
			}
		}()
	}
}

// serveControl runs one coordinator's control connection to completion.
// Messages are decoded to a raw form first so kinds this package does not
// define (the live tier's view session verbs) can be dispatched to the
// ViewHost without the control plane knowing their schema.
func serveControl(conn net.Conn, opts ServeWorkerOpts) error {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return err
		}
		var peek struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &peek); err != nil {
			return fmt.Errorf("distrib: malformed control message: %w", err)
		}
		switch {
		case peek.Kind == kindJob:
			var msg ctlMsg
			if err := json.Unmarshal(raw, &msg); err != nil {
				return fmt.Errorf("distrib: malformed job message: %w", err)
			}
			if msg.Job == nil {
				return errors.New("distrib: job message without a spec")
			}
			if err := runWorkerJob(*msg.Job, msg.HostID, dec, enc, opts.Obs); err != nil {
				return err
			}
		case peek.Kind == kindStop:
			return nil
		case strings.HasPrefix(peek.Kind, "view_"):
			if opts.Views == nil {
				return fmt.Errorf("distrib: control message %q but this worker hosts no views", peek.Kind)
			}
			if err := opts.Views.ServeView(raw, dec, enc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("distrib: unexpected control message %q outside a job", peek.Kind)
		}
	}
}

// runWorkerJob executes one job under the coordinator's direction: build
// the deterministic local state, report readiness, mesh, then alternate
// superstep barriers until told to collect and stop. Protocol errors are
// returned (the connection is broken); job execution errors are reported
// to the coordinator with kindError, after which the worker stays usable.
func runWorkerJob(js JobSpec, hostID int, dec *json.Decoder, enc *json.Encoder, reg *obs.Registry) error {
	j, dataAddr, err := newJob(js, hostID, "127.0.0.1:0", reg)
	if err != nil {
		return enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()})
	}
	defer j.close()
	if err := enc.Encode(ctlMsg{Kind: kindReady, DataAddr: dataAddr, Digest: j.digest}); err != nil {
		return err
	}

	var start ctlMsg
	if err := dec.Decode(&start); err != nil {
		return err
	}
	if start.Kind != kindStart {
		return fmt.Errorf("distrib: expected %q, got %q", kindStart, start.Kind)
	}
	if err := j.open(start.DataAddrs); err != nil {
		return enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()})
	}
	// Seed the initial workset: SetPlaceholder partitions the full W0 and
	// the session reads only this worker's hosted range, so every process
	// seeds from the identical deterministic slice.
	j.fx.SeedWorkset(j.w0)
	if err := enc.Encode(ctlMsg{Kind: kindMeshed}); err != nil {
		return err
	}

	for {
		var msg ctlMsg
		if err := dec.Decode(&msg); err != nil {
			return err
		}
		switch msg.Kind {
		case kindStep:
			if msg.Epoch != j.epoch {
				err := fmt.Errorf("distrib: released for superstep at plan epoch %d while at %d", msg.Epoch, j.epoch)
				if err := enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()}); err != nil {
					return err
				}
				continue // wait for the coordinator's stop
			}
			count, err := j.fx.StepOnce()
			if err != nil {
				if err := enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()}); err != nil {
					return err
				}
				continue // wait for the coordinator's stop
			}
			if err := enc.Encode(ctlMsg{Kind: kindStepDone, Count: count, Epoch: j.epoch}); err != nil {
				return err
			}
		case kindEpoch:
			// Coordinated plan swap: re-plan for the coordinator's global
			// workset estimate, swap the session, and echo our new digest
			// so the coordinator can verify the mesh stayed plan-agreed.
			digest, err := j.applyEpoch(msg.Epoch, int64(msg.Count))
			if err != nil {
				if err := enc.Encode(ctlMsg{Kind: kindError, Err: err.Error()}); err != nil {
					return err
				}
				continue // wait for the coordinator's stop
			}
			if err := enc.Encode(ctlMsg{Kind: kindEpochDone, Epoch: msg.Epoch, Digest: digest}); err != nil {
				return err
			}
		case kindCollect:
			// A traced job returns its spans with the solution so the
			// coordinator can reassemble the cross-process timeline.
			var spans []obs.Span
			if reg != nil && js.TraceID != 0 {
				spans = reg.Trace().SpansFor(obs.TraceID(js.TraceID))
			}
			if err := enc.Encode(ctlMsg{Kind: kindSolution, Frames: j.collect(hostID), Spans: spans}); err != nil {
				return err
			}
		case kindStop:
			return nil
		default:
			return fmt.Errorf("distrib: unexpected control message %q inside a job", msg.Kind)
		}
	}
}
