package distrib

import (
	"sort"

	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/runtime"
)

// RunSingle executes the same deterministic job on the plain
// single-process incremental driver and returns the result in the same
// canonical form as Run. It is the oracle the differential harness
// compares distributed runs against: same JobSpec in, byte-identical
// Solution out.
func RunSingle(js JobSpec) (*Result, error) {
	js = js.normalized()
	spec, s0, w0, err := buildSpec(js)
	if err != nil {
		return nil, err
	}
	m := &metrics.Counters{}
	cfg := iterative.Config{
		Parallelism: js.Parallelism,
		BatchSize:   js.BatchSize,
		Metrics:     m,
	}
	if js.Backend != "" {
		cfg.SolutionBackend = runtime.SolutionBackendKind(js.Backend)
	}
	res, err := iterative.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		return nil, err
	}
	sol := res.Solution
	sort.Slice(sol, func(x, y int) bool { return record.Less(sol[x], sol[y]) })
	return &Result{Solution: sol, Supersteps: res.Supersteps, PlanEpochs: res.PlanEpochs, Work: m.Snapshot()}, nil
}

// EncodeSolution serializes a result's solution records back-to-back —
// the byte string two runs of the same job must agree on.
func EncodeSolution(sol []record.Record) []byte {
	out := make([]byte, 0, len(sol)*record.EncodedSize)
	for _, r := range sol {
		out = r.Encode(out)
	}
	return out
}
