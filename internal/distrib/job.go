package distrib

import (
	"fmt"
	"sort"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// buildGraph derives the job's graph. The generators are fully seeded, so
// every process reconstructs the identical edge list.
func buildGraph(js JobSpec) (*graphgen.Graph, error) {
	switch js.GraphKind {
	case "", "uniform":
		return graphgen.Uniform("distrib-uniform", js.GraphN, js.GraphM, js.Seed), nil
	case "pa":
		m := int(js.GraphM / max64(1, js.GraphN))
		if m < 1 {
			m = 1
		}
		return graphgen.PreferentialAttachment("distrib-pa", js.GraphN, m, js.Seed), nil
	}
	return nil, fmt.Errorf("distrib: unknown graph kind %q", js.GraphKind)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// distWeight is the deterministic SSSP edge weight: a small integer
// derived from the endpoints, exact in float64, so path sums — and
// therefore the converged solution bytes — are identical on every process
// and every run.
func distWeight(src, dst int64) float64 {
	return float64(1 + (src*7+dst*13)%4)
}

// buildSpec derives the job's incremental spec, initial solution, and
// initial workset from the JobSpec.
func buildSpec(js JobSpec) (iterative.IncrementalSpec, []record.Record, []record.Record, error) {
	var (
		spec   iterative.IncrementalSpec
		s0, w0 []record.Record
	)
	g, err := buildGraph(js)
	if err != nil {
		return spec, nil, nil, err
	}
	switch js.Algorithm {
	case "cc":
		spec, s0, w0 = algorithms.CCIncrementalSpec(g, algorithms.CCMatch)
	case "cc-cogroup":
		spec, s0, w0 = algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	case "sssp":
		und := g.Undirected()
		edges := make([]algorithms.WeightedEdge, len(und.Edges))
		for i, e := range und.Edges {
			edges[i] = algorithms.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: distWeight(e.Src, e.Dst)}
		}
		spec, s0, w0 = algorithms.SSSPSpec(edges, js.Source)
	default:
		return spec, nil, nil, fmt.Errorf("distrib: unknown algorithm %q", js.Algorithm)
	}
	// The same bounds and re-planning policy on every process — and on
	// the single-process oracle, which runs the identical spec.
	spec.MaxSupersteps = js.MaxSupersteps
	spec.Reoptimize = js.Reoptimize
	return spec, s0, w0, nil
}

// job is one process's share of a distributed run: the locally derived
// plan, the transport meshed with the peers, and a resident Fixpoint
// hosting this process's partition range. The coordinator drives its
// job's Fixpoint through the shared superstep driver (RunDriven with a
// barrier and an epoch hook); workers drive theirs one StepOnce — or one
// ApplyEpoch — per control message.
type job struct {
	js    JobSpec
	spec  iterative.IncrementalSpec
	cfg   iterative.Config
	phys  *optimizer.PhysPlan
	place runtime.Placement
	m     *metrics.Counters
	reg   *obs.Registry
	tr    *runtime.TCPTransport
	sol   *runtime.SolutionSet
	fx    *iterative.Fixpoint
	w0    []record.Record
	// digest fingerprints the plan the session currently executes; epoch
	// counts the coordinated plan swaps this process has applied. Both
	// advance together at a plan-epoch bump.
	digest string
	epoch  int
	host   int
}

// newJob builds everything up to — but not including — the peer mesh: the
// deterministic spec and plan, the solution set initialized with S0, and
// the transport listening on addr. The Fixpoint (and its session) opens
// in open(), after the mesh exists.
//
// A non-nil registry turns telemetry on: supersteps and operators record
// spans under the job's trace ID with this process's host ID, and the
// transport stamps the trace ID into frame headers and times its sends.
func newJob(js JobSpec, hostID int, listenAddr string, reg *obs.Registry) (*job, string, error) {
	js = js.normalized()
	spec, s0, w0, err := buildSpec(js)
	if err != nil {
		return nil, "", err
	}
	m := &metrics.Counters{}
	cfg := iterative.Config{
		Parallelism:     js.Parallelism,
		BatchSize:       js.BatchSize,
		Hosts:           js.Hosts,
		Metrics:         m,
		WireCompression: js.WireCompression,
	}
	if reg != nil {
		cfg.Obs = reg
		cfg.TraceID = obs.TraceID(js.TraceID)
		cfg.TraceLabel = js.Algorithm
		cfg.Host = hostID
		reg.SetCounters(m)
	}
	if js.Backend != "" {
		cfg.SolutionBackend = runtime.SolutionBackendKind(js.Backend)
	}
	phys, err := iterative.PlanIncremental(spec, cfg, spec.ExpectedIterations)
	if err != nil {
		return nil, "", err
	}

	sol := runtime.NewSolutionSetWith(js.Parallelism, spec.SolutionKey, spec.Comparator, m,
		runtime.SolutionOptions{Backend: cfg.SolutionBackend})
	sol.Init(s0)

	j := &job{
		js: js, spec: spec, cfg: cfg, phys: phys, m: m, reg: reg,
		sol: sol, w0: w0,
		place:  runtime.ContiguousPlacement(js.Parallelism, js.Hosts),
		digest: PlanDigest(phys),
		host:   hostID,
	}
	j.tr = runtime.NewTCPTransport(hostID, j.place, phys.NumEdges, m)
	j.tr.SetCompression(cfg.WireCompression)
	if reg != nil {
		j.tr.SetObs(obs.TraceID(js.TraceID), reg.Histogram("transport_send_duration"))
	}
	addr, err := j.tr.Listen(listenAddr)
	if err != nil {
		return nil, "", err
	}
	return j, addr, nil
}

// open meshes the transport with the peers and opens the hosted Fixpoint
// on it. The working set is not seeded here: workers seed their share
// explicitly, the coordinator seeds through RunDriven.
func (j *job) open(dataAddrs []string) error {
	if err := j.tr.ConnectPeers(dataAddrs, MeshTimeout); err != nil {
		j.tr.Close()
		return err
	}
	fx, err := iterative.OpenFixpointOn(j.spec, j.sol, j.cfg, j.phys, j.tr)
	if err != nil {
		j.tr.Close()
		return err
	}
	j.fx = fx
	return nil
}

// applyEpoch re-plans for the coordinator's global workset estimate and
// swaps the session onto the new plan, advancing this process's plan
// epoch. The returned digest must match the coordinator's.
func (j *job) applyEpoch(epoch int, est int64) (string, error) {
	phys, err := j.fx.ApplyEpoch(est)
	if err != nil {
		return "", err
	}
	j.phys = phys
	j.digest = PlanDigest(phys)
	j.epoch = epoch
	return j.digest, nil
}

// collect serializes the hosted partitions of the solution set, one frame
// per partition in ascending partition order.
func (j *job) collect(hostID int) []byte {
	var out []byte
	for _, p := range j.place.HostedBy(hostID) {
		var b record.Batch
		j.sol.EachPartition(p, func(r record.Record) {
			b = append(b, r)
		})
		// Within a partition the backend's iteration order is not
		// canonical; sort so repeated runs produce identical bytes.
		sort.Slice(b, func(x, y int) bool { return record.Less(b[x], b[y]) })
		out = record.AppendFrame(out, b)
	}
	return out
}

// close releases the session, transport, and executor. The solution set
// stays readable (collect may have already run).
func (j *job) close() {
	if j.fx != nil {
		j.fx.Close()
	}
	j.tr.Close()
}
