package distrib

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// buildGraph derives the job's graph. The generators are fully seeded, so
// every process reconstructs the identical edge list.
func buildGraph(js JobSpec) (*graphgen.Graph, error) {
	switch js.GraphKind {
	case "", "uniform":
		return graphgen.Uniform("distrib-uniform", js.GraphN, js.GraphM, js.Seed), nil
	case "pa":
		m := int(js.GraphM / max64(1, js.GraphN))
		if m < 1 {
			m = 1
		}
		return graphgen.PreferentialAttachment("distrib-pa", js.GraphN, m, js.Seed), nil
	}
	return nil, fmt.Errorf("distrib: unknown graph kind %q", js.GraphKind)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// distWeight is the deterministic SSSP edge weight: a small integer
// derived from the endpoints, exact in float64, so path sums — and
// therefore the converged solution bytes — are identical on every process
// and every run.
func distWeight(src, dst int64) float64 {
	return float64(1 + (src*7+dst*13)%4)
}

// buildSpec derives the job's incremental spec, initial solution, and
// initial workset from the JobSpec.
func buildSpec(js JobSpec) (iterative.IncrementalSpec, []record.Record, []record.Record, error) {
	g, err := buildGraph(js)
	if err != nil {
		return iterative.IncrementalSpec{}, nil, nil, err
	}
	switch js.Algorithm {
	case "cc":
		spec, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCMatch)
		return spec, s0, w0, nil
	case "cc-cogroup":
		spec, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
		return spec, s0, w0, nil
	case "sssp":
		und := g.Undirected()
		edges := make([]algorithms.WeightedEdge, len(und.Edges))
		for i, e := range und.Edges {
			edges[i] = algorithms.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: distWeight(e.Src, e.Dst)}
		}
		spec, s0, w0 := algorithms.SSSPSpec(edges, js.Source)
		return spec, s0, w0, nil
	}
	return iterative.IncrementalSpec{}, nil, nil, fmt.Errorf("distrib: unknown algorithm %q", js.Algorithm)
}

// job is one process's share of a distributed run: the locally derived
// plan, the transport meshed with the peers, and the session hosting this
// process's partition range.
type job struct {
	js     JobSpec
	spec   iterative.IncrementalSpec
	phys   *optimizer.PhysPlan
	place  runtime.Placement
	m      *metrics.Counters
	reg    *obs.Registry
	exec   *runtime.Executor
	tr     *runtime.TCPTransport
	sess   *runtime.Session
	digest string
	// host is this process's host ID; stepN counts its supersteps. Both
	// stamp the merge spans recorded in step().
	host  int
	stepN int
}

// newJob builds everything up to — but not including — the peer mesh: the
// deterministic spec and plan, the executor with the solution set
// initialized, and the transport listening on addr. Mid-run re-planning
// is deliberately off in distributed runs: a re-optimized plan has new
// edge IDs, and swapping it in safely would need a coordinated epoch
// across all processes.
//
// A non-nil registry turns telemetry on: supersteps and operators record
// spans under the job's trace ID with this process's host ID, and the
// transport stamps the trace ID into frame headers and times its sends.
func newJob(js JobSpec, hostID int, listenAddr string, reg *obs.Registry) (*job, string, error) {
	js = js.normalized()
	spec, s0, w0, err := buildSpec(js)
	if err != nil {
		return nil, "", err
	}
	m := &metrics.Counters{}
	cfg := iterative.Config{
		Parallelism: js.Parallelism,
		BatchSize:   js.BatchSize,
		Hosts:       js.Hosts,
		Metrics:     m,
	}
	if reg != nil {
		cfg.Obs = reg
		cfg.TraceID = obs.TraceID(js.TraceID)
		cfg.TraceLabel = js.Algorithm
		cfg.Host = hostID
		reg.SetCounters(m)
	}
	if js.Backend != "" {
		cfg.SolutionBackend = runtime.SolutionBackendKind(js.Backend)
	}
	phys, err := iterative.PlanIncremental(spec, cfg, spec.ExpectedIterations)
	if err != nil {
		return nil, "", err
	}

	rc := runtime.Config{BatchSize: js.BatchSize, Metrics: m}
	if reg != nil {
		rc.Trace = reg.Trace()
		rc.TraceID = obs.TraceID(js.TraceID)
		rc.TraceLabel = js.Algorithm
		rc.Host = hostID
	}
	exec := runtime.NewExecutor(rc)
	sol := runtime.NewSolutionSetWith(js.Parallelism, spec.SolutionKey, spec.Comparator, m,
		runtime.SolutionOptions{Backend: cfg.SolutionBackend})
	sol.Init(s0)
	exec.Solution = sol
	if _, err := iterative.ValidateMicrostep(spec); err == nil {
		exec.DirectMerge = true
	}
	exec.SetPlaceholder(spec.Workset.ID, w0, spec.WorksetKey, js.Parallelism)

	j := &job{
		js: js, spec: spec, phys: phys, m: m, reg: reg, exec: exec,
		place:  runtime.ContiguousPlacement(js.Parallelism, js.Hosts),
		digest: PlanDigest(phys),
		host:   hostID,
	}
	j.tr = runtime.NewTCPTransport(hostID, j.place, phys.NumEdges, m)
	if reg != nil {
		j.tr.SetObs(obs.TraceID(js.TraceID), reg.Histogram("transport_send_duration"))
	}
	addr, err := j.tr.Listen(listenAddr)
	if err != nil {
		exec.Close()
		return nil, "", err
	}
	return j, addr, nil
}

// open meshes the transport with the peers and opens the hosted session.
func (j *job) open(dataAddrs []string) error {
	if err := j.tr.ConnectPeers(dataAddrs, meshTimeout); err != nil {
		j.tr.Close()
		j.exec.Close()
		return err
	}
	j.sess = j.exec.OpenSessionOn(j.phys, j.tr)
	return nil
}

// step runs one superstep of this process's partitions and returns the
// local next-workset count. The global convergence decision belongs to
// the coordinator — an empty local workset does not mean the peers are
// done.
func (j *job) step() (int, error) {
	res, err := j.sess.Run()
	if err != nil {
		return 0, err
	}
	mergeStart := time.Now()
	j.exec.Solution.MergeDelta(res.Records(j.spec.DeltaSink.ID))
	if j.reg != nil {
		d := time.Since(mergeStart)
		j.reg.Histogram("merge_duration").Observe(d)
		j.reg.Trace().RecordSpan(obs.Span{
			Trace: obs.TraceID(j.js.TraceID), Host: int32(j.host), Part: -1,
			Step: int32(j.stepN), Phase: obs.PhaseMerge,
			Start: mergeStart.UnixNano(), Dur: int64(d), Label: j.js.Algorithm,
		})
	}
	j.stepN++
	nextParts := res[j.spec.WorksetSink.ID]
	count := 0
	for _, p := range nextParts {
		count += len(p)
	}
	j.exec.SetPlaceholderParts(j.spec.Workset.ID, nextParts)
	return count, nil
}

// collect serializes the hosted partitions of the solution set, one frame
// per partition in ascending partition order.
func (j *job) collect(hostID int) []byte {
	var out []byte
	for _, p := range j.place.HostedBy(hostID) {
		var b record.Batch
		j.exec.Solution.EachPartition(p, func(r record.Record) {
			b = append(b, r)
		})
		// Within a partition the backend's iteration order is not
		// canonical; sort so repeated runs produce identical bytes.
		sort.Slice(b, func(x, y int) bool { return record.Less(b[x], b[y]) })
		out = record.AppendFrame(out, b)
	}
	return out
}

// close releases the session, transport, and executor. The solution set
// stays readable (collect may have already run).
func (j *job) close() {
	if j.sess != nil {
		j.sess.Close()
	}
	j.tr.Close()
	j.exec.Close()
}
