package distrib

import (
	"fmt"
	"net"
	"time"
)

// Worker-dial retry policy: opening a session (a batch job or a live
// maintenance session) retries refused connections with bounded
// exponential backoff, because "the worker process is still starting" is
// a normal deployment condition, not a failure. Once a session is
// running, failures stay fail-fast — a mid-run drop surfaces through
// TransportErrors and aborts the run, it is never retried here.
const (
	dialAttempts    = 6
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffCap  = 800 * time.Millisecond
)

// DialWorker dials a worker's control address, retrying refused or
// timed-out connection attempts with bounded exponential backoff
// (dialAttempts tries, sleeps doubling from dialBackoffBase and capped at
// dialBackoffCap). The per-attempt dial timeout is timeout; the last
// error is returned when every attempt fails.
func DialWorker(addr string, timeout time.Duration) (net.Conn, error) {
	var lastErr error
	sleep := dialBackoffBase
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(sleep)
			sleep *= 2
			if sleep > dialBackoffCap {
				sleep = dialBackoffCap
			}
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("distrib: dial worker %s: %d attempts: %w", addr, dialAttempts, lastErr)
}
