// Package distrib runs one incremental iteration as a distributed
// session: N processes each host a contiguous partition range of the same
// physical plan, exchange traffic crosses process boundaries through the
// runtime's TCP transport, and a coordinator (always host 0) drives the
// superstep barrier. The control plane is a line of JSON messages per
// worker; the data plane is the transport's binary CRC32 frames — control
// traffic is rare and tiny, so readability wins there, while every
// superstep's records stay on the compact framed codec.
//
// Determinism is the load-bearing wall: every process builds the job's
// spec, graph, and physical plan locally from the same JobSpec (all
// generators are seeded, the optimizer is deterministic), and the
// coordinator verifies a digest of each worker's plan before any data
// flows. Identical plans mean identical dense node/edge IDs and identical
// superstep schedules, which is what lets the exchange layer route by
// (edge ID, partition) alone.
//
// Workers are not limited to batch jobs: a control message whose kind
// starts with "view_" hands the whole connection to the process's
// ViewHost, which runs a long-lived live-view maintenance session (the
// live tier's sharded serving mode) before returning the connection to
// this control loop. The same determinism rule applies there — each host
// re-derives the view's plan locally and the coordinator cross-checks
// digests.
package distrib

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/obs"
	"repro/internal/optimizer"
)

// JobSpec is the complete, self-contained description of a distributed
// run. Everything a process needs — graph, algorithm, plan options — is
// derived deterministically from these values, so shipping the spec is
// equivalent to shipping the plan.
type JobSpec struct {
	// Algorithm: "cc" (CC via Match), "cc-cogroup" (CC via CoGroup), or
	// "sssp".
	Algorithm string `json:"algorithm"`
	// GraphKind: "uniform" or "pa" (preferential attachment).
	GraphKind string `json:"graph_kind"`
	// GraphN and GraphM are the vertex and edge counts; Seed feeds the
	// deterministic generator.
	GraphN int64  `json:"graph_n"`
	GraphM int64  `json:"graph_m"`
	Seed   uint64 `json:"seed"`
	// Source is the SSSP source vertex.
	Source int64 `json:"source,omitempty"`
	// Parallelism is the plan's partition count; Hosts the process count.
	// Partitions map to hosts with runtime.ContiguousPlacement.
	Parallelism int `json:"parallelism"`
	Hosts       int `json:"hosts"`
	// BatchSize is the exchange batch size (0 = runtime default).
	BatchSize int `json:"batch_size,omitempty"`
	// Backend selects the solution-set index: "map", "compact", or ""
	// (compact).
	Backend string `json:"backend,omitempty"`
	// MaxSupersteps bounds the run (0 = 10000).
	MaxSupersteps int `json:"max_supersteps,omitempty"`
	// Reoptimize lets the coordinator re-plan mid-run when the workset
	// collapses far below the planned estimate. Each re-plan is a
	// coordinated plan epoch: the coordinator decides at the superstep
	// barrier, broadcasts the new epoch with the global workset size and
	// its new plan digest, and every worker re-plans locally, swaps its
	// session, and acknowledges with its own digest before the next
	// superstep is released. Determinism does the heavy lifting again —
	// all processes re-plan from the same estimate, so the digests must
	// agree, and the exchange layer keeps routing by (edge ID, partition)
	// in the new plan's ID space.
	Reoptimize bool `json:"reoptimize,omitempty"`
	// WireCompression asks every process to flate-compress its data-plane
	// record frames (Config.WireCompression); the receive path always
	// understands both message kinds, so it is purely a bandwidth/CPU
	// trade.
	WireCompression bool `json:"wire_compression,omitempty"`
	// TraceID groups the run's telemetry spans across every process: the
	// coordinator mints it (obs.NewTraceID) when it runs with a registry,
	// ships it here with the job assignment, and each process stamps it on
	// its spans and on every data-plane frame header (the transport
	// doubles it as a stale-peer check). Zero means untraced.
	TraceID uint64 `json:"trace_id,omitempty"`
}

func (js JobSpec) normalized() JobSpec {
	if js.Parallelism <= 0 {
		js.Parallelism = 2
	}
	if js.Hosts <= 0 {
		js.Hosts = 1
	}
	if js.MaxSupersteps <= 0 {
		js.MaxSupersteps = 10000
	}
	return js
}

// Control-plane message kinds, in protocol order.
const (
	// kindJob (coordinator → worker) assigns the job and the worker's
	// host ID.
	kindJob = "job"
	// kindReady (worker → coordinator) carries the worker's data-plane
	// address and its plan digest.
	kindReady = "ready"
	// kindStart (coordinator → worker) distributes every host's data
	// address; the worker meshes its transport and replies kindMeshed.
	kindStart  = "start"
	kindMeshed = "meshed"
	// kindStep (coordinator → worker) releases one superstep; the worker
	// replies kindStepDone with its local next-workset count. Both carry
	// the current plan epoch: a mismatch means a process missed (or
	// imagined) a plan swap and is rejected at the barrier, before its
	// traffic can be routed under the wrong plan.
	kindStep     = "step"
	kindStepDone = "step_done"
	// kindEpoch (coordinator → worker) announces a coordinated plan swap:
	// Epoch is the new epoch number, Count the global workset size to
	// re-plan for, Digest the coordinator's new plan digest. The worker
	// re-plans, swaps its session, and replies kindEpochDone with its own
	// digest — which must match, or the run aborts.
	kindEpoch     = "epoch"
	kindEpochDone = "epoch_done"
	// kindCollect (coordinator → worker) requests the worker's hosted
	// solution partitions; the reply kindSolution carries them as
	// concatenated record frames.
	kindCollect  = "collect"
	kindSolution = "solution"
	// kindStop (coordinator → worker) ends the job; the worker tears the
	// session down and waits for the next kindJob on the same connection.
	kindStop = "stop"
	// kindError (worker → coordinator) aborts the run.
	kindError = "error"
)

// ctlMsg is the single wire shape of every control message; Kind selects
// which fields are meaningful. JSON []byte fields travel base64-encoded,
// which keeps the framed solution payload lossless inside the text
// protocol.
type ctlMsg struct {
	Kind      string   `json:"kind"`
	Job       *JobSpec `json:"job,omitempty"`
	HostID    int      `json:"host_id,omitempty"`
	DataAddr  string   `json:"data_addr,omitempty"`
	DataAddrs []string `json:"data_addrs,omitempty"`
	Digest    string   `json:"digest,omitempty"`
	Count     int      `json:"count,omitempty"`
	// Epoch rides kindStep/kindStepDone (barrier-time staleness check) and
	// kindEpoch/kindEpochDone (the plan swap itself).
	Epoch  int    `json:"epoch,omitempty"`
	Frames []byte `json:"frames,omitempty"`
	// Spans rides the kindSolution reply: the worker's telemetry spans for
	// the job's trace ID, so the coordinator reassembles one cross-process
	// timeline (host IDs keep the origins apart).
	Spans []obs.Span `json:"spans,omitempty"`
	Err   string     `json:"err,omitempty"`
}

// PlanDigest fingerprints the structure the exchange layer routes by:
// dense node and edge identities, roles, strategies, shipping and cache
// flags. Two processes whose digests agree will compute identical
// superstep schedules and route every frame to the partition the sender
// meant.
func PlanDigest(p *optimizer.PhysPlan) string {
	h := sha256.New()
	fmt.Fprintf(h, "par=%d hosts=%d nodes=%d edges=%d\n",
		p.Parallelism, p.Hosts, len(p.Nodes), p.NumEdges)
	for _, n := range p.Nodes {
		logID := -1
		if n.Logical != nil {
			logID = n.Logical.ID
		}
		fmt.Fprintf(h, "n%d role=%d local=%d logical=%d\n", n.ID, n.Role, n.Local, logID)
		for _, e := range n.Inputs {
			fmt.Fprintf(h, " e%d from=%d ship=%d cache=%t\n", e.ID, e.From.ID, e.Ship, e.Cache)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
