package distrib

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// TestDialWorkerRetriesLateWorker pins the session-open retry policy: a
// worker whose listener comes up *after* the coordinator starts dialing —
// the normal `spinflow serve -workers N` race, where serve spawns the
// worker processes and immediately opens sessions — must be reached by
// the bounded-backoff dial, and the job must complete normally.
func TestDialWorkerRetriesLateWorker(t *testing.T) {
	// Reserve an address, then free it so the dial's first attempts are
	// refused; the real worker binds it a few backoff rounds later.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(250 * time.Millisecond)
		late, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the test will fail loudly below
		}
		go ServeWorker(late, nil, nil)
	}()

	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80, Seed: 0xD1A1, Parallelism: 2}
	want := runSingle(t, js)
	got, err := Run(js, []string{addr})
	if err != nil {
		t.Fatalf("run against late-starting worker: %v", err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("late-worker run diverged from single-process")
	}
}

// TestDialWorkerGivesUp pins the bound: a worker that never appears fails
// the dial after the fixed attempt budget, not after the caller's whole
// timeout per attempt has elapsed serially forever.
func TestDialWorkerGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = DialWorker(addr, 2*time.Second)
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("error does not report the attempt budget: %v", err)
	}
	// 5 sleeps of 50,100,200,400,800ms ≈ 1.55s plus refused dials.
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("dial retried for %v, backoff is unbounded", el)
	}
}

// TestWireCompressionRoundTrip pins the compressed data plane: a
// 2-process run with WireCompression on must produce the byte-identical
// fixpoint to the single-process driver, and the compressed-bytes counter
// must see real traffic (CC on a few hundred edges ships frames well over
// the compression floor).
func TestWireCompressionRoundTrip(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 200, GraphM: 500, Seed: 0xC0DE, Parallelism: 4,
		WireCompression: true}
	want := runSingle(t, js)
	got, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("compressed-wire fixpoint diverged from single-process")
	}
	if got.Work.RemoteBytesCompressed == 0 {
		t.Fatalf("compressed run counted no compressed wire bytes: %+v", got.Work)
	}
	if got.Work.RemoteBytes == 0 {
		t.Fatal("compressed run counted no remote payload bytes")
	}

	// And the uncompressed control: same job, flag off, same fixpoint,
	// zero compressed bytes.
	js.WireCompression = false
	plain, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(plain.Solution), encodeAll(want)) {
		t.Fatal("uncompressed control run diverged")
	}
	if plain.Work.RemoteBytesCompressed != 0 {
		t.Fatalf("uncompressed run counted %d compressed bytes", plain.Work.RemoteBytesCompressed)
	}
}
