package distrib

import (
	"bytes"
	"encoding/json"
	"net"
	"sort"
	"strings"
	"testing"

	"repro/internal/iterative"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/runtime"
)

// startWorkers launches n in-process worker control listeners and returns
// their addresses. In production the workers are separate processes
// (spinflow worker); in-process workers exercise the identical code paths
// — real TCP for both control and data planes — inside one test binary.
// Each worker gets its own telemetry registry (regs[i]), as each would in
// its own process.
func startWorkers(t *testing.T, n int, regs ...*obs.Registry) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		var reg *obs.Registry
		if i < len(regs) {
			reg = regs[i]
		}
		go ServeWorker(ln, nil, reg)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// runSingle computes the oracle: the same job on the plain single-process
// incremental driver.
func runSingle(t *testing.T, js JobSpec) []record.Record {
	t.Helper()
	js = js.normalized()
	spec, s0, w0, err := buildSpec(js)
	if err != nil {
		t.Fatal(err)
	}
	cfg := iterative.Config{Parallelism: js.Parallelism, BatchSize: js.BatchSize}
	if js.Backend != "" {
		cfg.SolutionBackend = runtime.SolutionBackendKind(js.Backend)
	}
	res, err := iterative.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol := res.Solution
	sort.Slice(sol, func(x, y int) bool { return record.Less(sol[x], sol[y]) })
	return sol
}

func encodeAll(recs []record.Record) []byte {
	var out []byte
	for _, r := range recs {
		out = r.Encode(out)
	}
	return out
}

func TestDistributedMatchesSingleProcess(t *testing.T) {
	jobs := []JobSpec{
		{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 160, Seed: 0xD157, Parallelism: 4},
		{Algorithm: "cc-cogroup", GraphKind: "uniform", GraphN: 60, GraphM: 100, Seed: 0xD158, Parallelism: 2},
		{Algorithm: "sssp", GraphKind: "uniform", GraphN: 70, GraphM: 180, Seed: 0xD159, Parallelism: 4, Source: 3},
		{Algorithm: "cc", GraphKind: "pa", GraphN: 90, GraphM: 270, Seed: 0xD15A, Parallelism: 4, Backend: "map"},
	}
	for _, js := range jobs {
		js := js
		t.Run(js.Algorithm+"-"+js.GraphKind, func(t *testing.T) {
			want := runSingle(t, js)
			got, err := Run(js, startWorkers(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
				t.Fatalf("distributed fixpoint diverged: %d records vs %d single-process",
					len(got.Solution), len(want))
			}
			if got.Supersteps < 2 {
				t.Fatalf("suspiciously trivial run: %d supersteps", got.Supersteps)
			}
		})
	}
}

func TestDistributedThreeProcesses(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 96, GraphM: 200, Seed: 0xD15B, Parallelism: 6}
	want := runSingle(t, js)
	got, err := Run(js, startWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatalf("3-process fixpoint diverged: %d records vs %d", len(got.Solution), len(want))
	}
}

// TestDistributedSingleHost runs the coordinator with no workers: the
// degenerate 1-host placement must behave exactly like the plain driver
// (all partitions hosted, the transport never used).
func TestDistributedSingleHost(t *testing.T) {
	js := JobSpec{Algorithm: "sssp", GraphKind: "uniform", GraphN: 50, GraphM: 120, Seed: 0xD15C, Parallelism: 2, Source: 1}
	want := runSingle(t, js)
	got, err := Run(js, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("single-host distributed run diverged from the plain driver")
	}
	if got.Work.RemoteBatches != 0 {
		t.Fatalf("single-host run shipped %d remote batches", got.Work.RemoteBatches)
	}
}

// TestDistributedRemoteTrafficCounted checks the new transport metrics
// actually observe the shuffle: a 2-process CC run must ship batches.
func TestDistributedRemoteTrafficCounted(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 200, Seed: 0xD15D, Parallelism: 4}
	got, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Work.RemoteBatches == 0 || got.Work.RemoteBytes == 0 {
		t.Fatalf("2-process run reported no remote traffic: %+v", got.Work)
	}
	if got.Work.TransportErrors != 0 {
		t.Fatalf("clean run counted %d transport errors", got.Work.TransportErrors)
	}
}

// TestWorkerSurvivesSequentialJobs reuses one worker (one control
// connection dialed per Run) for several jobs, as the CI smoke does.
func TestWorkerSurvivesSequentialJobs(t *testing.T) {
	addrs := startWorkers(t, 1)
	for i := 0; i < 3; i++ {
		js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80,
			Seed: 0xD15E + uint64(i), Parallelism: 2}
		want := runSingle(t, js)
		got, err := Run(js, addrs)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
			t.Fatalf("job %d diverged", i)
		}
	}
}

// TestDistributedTracePropagation is the telemetry acceptance check: a
// 2-process traced run must produce superstep spans on BOTH hosts, all
// under the single trace ID the coordinator minted, reassembled into the
// coordinator's ring — and the differential result must be unaffected.
func TestDistributedTracePropagation(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 160, Seed: 0xD15F, Parallelism: 4}
	want := runSingle(t, js)

	coord := obs.NewRegistry()
	workerReg := obs.NewRegistry()
	got, err := RunObs(js, startWorkers(t, 1, workerReg), coord)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("traced run diverged from single-process")
	}

	if len(got.Spans) == 0 {
		t.Fatal("traced run returned no spans")
	}
	var id obs.TraceID
	hostSteps := map[int32]int{}
	for _, sp := range got.Spans {
		if sp.Trace == 0 {
			t.Fatalf("span with zero trace ID: %+v", sp)
		}
		if id == 0 {
			id = sp.Trace
		}
		if sp.Trace != id {
			t.Fatalf("spans carry mixed trace IDs: %016x and %016x", id, sp.Trace)
		}
		if sp.Phase == obs.PhaseSuperstep {
			hostSteps[sp.Host]++
		}
	}
	if hostSteps[0] == 0 || hostSteps[1] == 0 {
		t.Fatalf("superstep spans per host = %v, want both hosts represented", hostSteps)
	}
	// Both hosts ran the same barrier schedule.
	if hostSteps[0] != hostSteps[1] {
		t.Errorf("host superstep counts differ: %v", hostSteps)
	}
	if hostSteps[0] != got.Supersteps {
		t.Errorf("host 0 recorded %d superstep spans, run took %d", hostSteps[0], got.Supersteps)
	}
	// The coordinator's ring holds the merged trace too (what `spinflow
	// trace distributed` renders).
	if n := len(coord.Trace().SpansFor(id)); n != len(got.Spans) {
		t.Errorf("ring holds %d spans for the trace, Result.Spans has %d", n, len(got.Spans))
	}
	// The barrier RTT histogram saw every superstep.
	if c := coord.Histogram("distrib_step_rtt").Count(); c != int64(got.Supersteps) {
		t.Errorf("distrib_step_rtt count = %d, want %d", c, got.Supersteps)
	}
	// Cross-process shuffle was timed on the coordinator's transport.
	if coord.Histogram("transport_send_duration").Count() == 0 {
		t.Error("transport_send_duration recorded nothing")
	}
}

// TestDistributedReoptimizeMatchesSingleProcess is the plan-epoch
// acceptance check: a 2-process run with mid-run re-optimization enabled
// must apply at least one coordinated plan epoch (the workset collapses
// far below the planned estimate near convergence) and still produce the
// byte-identical fixpoint, in the same number of supersteps, as the
// single-process driver running the identical spec.
func TestDistributedReoptimizeMatchesSingleProcess(t *testing.T) {
	jobs := []JobSpec{
		{Algorithm: "cc", GraphKind: "uniform", GraphN: 200, GraphM: 400, Seed: 0xE90C, Parallelism: 4, Reoptimize: true},
		{Algorithm: "sssp", GraphKind: "uniform", GraphN: 150, GraphM: 450, Seed: 0xE90D, Parallelism: 4, Source: 2, Reoptimize: true},
	}
	for _, js := range jobs {
		js := js
		t.Run(js.Algorithm, func(t *testing.T) {
			single, err := RunSingle(js)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(js, startWorkers(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeAll(got.Solution), encodeAll(single.Solution)) {
				t.Fatalf("re-optimized distributed fixpoint diverged: %d records vs %d single-process",
					len(got.Solution), len(single.Solution))
			}
			if got.Supersteps != single.Supersteps {
				t.Fatalf("superstep counts diverged: distributed %d, single %d",
					got.Supersteps, single.Supersteps)
			}
			if got.PlanEpochs < 1 {
				t.Fatalf("run applied %d plan epochs, want at least one mid-run re-optimization", got.PlanEpochs)
			}
		})
	}
}

// startFakeWorker runs an almost-honest worker in-process: it executes the
// real job (real plan, real data plane, real epoch swaps) but passes every
// control reply through mutate first, so tests can inject exactly one
// protocol-level lie and watch the coordinator catch it.
func startFakeWorker(t *testing.T, mutate func(reply *ctlMsg)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec, enc := json.NewDecoder(conn), json.NewEncoder(conn)
		send := func(msg ctlMsg) error {
			mutate(&msg)
			return enc.Encode(msg)
		}
		var jobMsg ctlMsg
		if err := dec.Decode(&jobMsg); err != nil || jobMsg.Kind != kindJob {
			return
		}
		j, dataAddr, err := newJob(*jobMsg.Job, jobMsg.HostID, "127.0.0.1:0", nil)
		if err != nil {
			return
		}
		defer j.close()
		if send(ctlMsg{Kind: kindReady, DataAddr: dataAddr, Digest: j.digest}) != nil {
			return
		}
		var start ctlMsg
		if err := dec.Decode(&start); err != nil || start.Kind != kindStart {
			return
		}
		if j.open(start.DataAddrs) != nil {
			return
		}
		j.fx.SeedWorkset(j.w0)
		if send(ctlMsg{Kind: kindMeshed}) != nil {
			return
		}
		for {
			var msg ctlMsg
			if dec.Decode(&msg) != nil {
				return
			}
			switch msg.Kind {
			case kindStep:
				count, err := j.fx.StepOnce()
				if err != nil {
					send(ctlMsg{Kind: kindError, Err: err.Error()})
					continue
				}
				if send(ctlMsg{Kind: kindStepDone, Count: count, Epoch: j.epoch}) != nil {
					return
				}
			case kindEpoch:
				digest, err := j.applyEpoch(msg.Epoch, int64(msg.Count))
				if err != nil {
					send(ctlMsg{Kind: kindError, Err: err.Error()})
					continue
				}
				if send(ctlMsg{Kind: kindEpochDone, Epoch: msg.Epoch, Digest: digest}) != nil {
					return
				}
			case kindCollect:
				if send(ctlMsg{Kind: kindSolution, Frames: j.collect(jobMsg.HostID)}) != nil {
					return
				}
			case kindStop:
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestStaleEpochRejectedAtBarrier pins the barrier-time staleness check: a
// worker whose step acknowledgment carries the wrong plan epoch — as a
// worker that missed a coordinated swap would — must be rejected at the
// superstep barrier, before another round executes.
func TestStaleEpochRejectedAtBarrier(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80, Seed: 0xE90E, Parallelism: 2}
	addr := startFakeWorker(t, func(reply *ctlMsg) {
		if reply.Kind == kindStepDone {
			reply.Epoch = 7 // a plan swap the coordinator never announced
		}
	})
	_, err := Run(js, []string{addr})
	if err == nil {
		t.Fatal("coordinator accepted a step acknowledgment from a stale plan epoch")
	}
	if !strings.Contains(err.Error(), "rejected at the barrier") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestEpochDigestMismatchAborts pins the swap-time agreement check: if a
// worker's re-planned dataflow digest disagrees with the coordinator's,
// the epoch bump fails — and it fails before the coordinator swaps its own
// session, so no superstep ever runs on a mixed-plan mesh.
func TestEpochDigestMismatchAborts(t *testing.T) {
	// Same spec as the parity test: known to trigger a mid-run epoch.
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 200, GraphM: 400, Seed: 0xE90C, Parallelism: 4, Reoptimize: true}
	addr := startFakeWorker(t, func(reply *ctlMsg) {
		if reply.Kind == kindEpochDone {
			reply.Digest = "deadbeefdeadbeef"
		}
	})
	_, err := Run(js, []string{addr})
	if err == nil {
		t.Fatal("coordinator accepted an epoch acknowledgment with a foreign plan digest")
	}
	if !strings.Contains(err.Error(), "different dataflow") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// TestUntracedDistributedUnaffected pins the zero-cost default: a plain
// Run (nil registry) must keep TraceID zero end to end.
func TestUntracedDistributedUnaffected(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80, Seed: 0xD160, Parallelism: 2}
	got, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spans != nil {
		t.Fatalf("untraced run returned %d spans", len(got.Spans))
	}
}
