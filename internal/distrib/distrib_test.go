package distrib

import (
	"bytes"
	"net"
	"sort"
	"testing"

	"repro/internal/iterative"
	"repro/internal/record"
	"repro/internal/runtime"
)

// startWorkers launches n in-process worker control listeners and returns
// their addresses. In production the workers are separate processes
// (spinflow worker); in-process workers exercise the identical code paths
// — real TCP for both control and data planes — inside one test binary.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go ServeWorker(ln, nil)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// runSingle computes the oracle: the same job on the plain single-process
// incremental driver.
func runSingle(t *testing.T, js JobSpec) []record.Record {
	t.Helper()
	js = js.normalized()
	spec, s0, w0, err := buildSpec(js)
	if err != nil {
		t.Fatal(err)
	}
	cfg := iterative.Config{Parallelism: js.Parallelism, BatchSize: js.BatchSize}
	if js.Backend != "" {
		cfg.SolutionBackend = runtime.SolutionBackendKind(js.Backend)
	}
	res, err := iterative.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol := res.Solution
	sort.Slice(sol, func(x, y int) bool { return record.Less(sol[x], sol[y]) })
	return sol
}

func encodeAll(recs []record.Record) []byte {
	var out []byte
	for _, r := range recs {
		out = r.Encode(out)
	}
	return out
}

func TestDistributedMatchesSingleProcess(t *testing.T) {
	jobs := []JobSpec{
		{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 160, Seed: 0xD157, Parallelism: 4},
		{Algorithm: "cc-cogroup", GraphKind: "uniform", GraphN: 60, GraphM: 100, Seed: 0xD158, Parallelism: 2},
		{Algorithm: "sssp", GraphKind: "uniform", GraphN: 70, GraphM: 180, Seed: 0xD159, Parallelism: 4, Source: 3},
		{Algorithm: "cc", GraphKind: "pa", GraphN: 90, GraphM: 270, Seed: 0xD15A, Parallelism: 4, Backend: "map"},
	}
	for _, js := range jobs {
		js := js
		t.Run(js.Algorithm+"-"+js.GraphKind, func(t *testing.T) {
			want := runSingle(t, js)
			got, err := Run(js, startWorkers(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
				t.Fatalf("distributed fixpoint diverged: %d records vs %d single-process",
					len(got.Solution), len(want))
			}
			if got.Supersteps < 2 {
				t.Fatalf("suspiciously trivial run: %d supersteps", got.Supersteps)
			}
		})
	}
}

func TestDistributedThreeProcesses(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 96, GraphM: 200, Seed: 0xD15B, Parallelism: 6}
	want := runSingle(t, js)
	got, err := Run(js, startWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatalf("3-process fixpoint diverged: %d records vs %d", len(got.Solution), len(want))
	}
}

// TestDistributedSingleHost runs the coordinator with no workers: the
// degenerate 1-host placement must behave exactly like the plain driver
// (all partitions hosted, the transport never used).
func TestDistributedSingleHost(t *testing.T) {
	js := JobSpec{Algorithm: "sssp", GraphKind: "uniform", GraphN: 50, GraphM: 120, Seed: 0xD15C, Parallelism: 2, Source: 1}
	want := runSingle(t, js)
	got, err := Run(js, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("single-host distributed run diverged from the plain driver")
	}
	if got.Work.RemoteBatches != 0 {
		t.Fatalf("single-host run shipped %d remote batches", got.Work.RemoteBatches)
	}
}

// TestDistributedRemoteTrafficCounted checks the new transport metrics
// actually observe the shuffle: a 2-process CC run must ship batches.
func TestDistributedRemoteTrafficCounted(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 200, Seed: 0xD15D, Parallelism: 4}
	got, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Work.RemoteBatches == 0 || got.Work.RemoteBytes == 0 {
		t.Fatalf("2-process run reported no remote traffic: %+v", got.Work)
	}
	if got.Work.TransportErrors != 0 {
		t.Fatalf("clean run counted %d transport errors", got.Work.TransportErrors)
	}
}

// TestWorkerSurvivesSequentialJobs reuses one worker (one control
// connection dialed per Run) for several jobs, as the CI smoke does.
func TestWorkerSurvivesSequentialJobs(t *testing.T) {
	addrs := startWorkers(t, 1)
	for i := 0; i < 3; i++ {
		js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80,
			Seed: 0xD15E + uint64(i), Parallelism: 2}
		want := runSingle(t, js)
		got, err := Run(js, addrs)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
			t.Fatalf("job %d diverged", i)
		}
	}
}
