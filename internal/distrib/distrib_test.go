package distrib

import (
	"bytes"
	"net"
	"sort"
	"testing"

	"repro/internal/iterative"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/runtime"
)

// startWorkers launches n in-process worker control listeners and returns
// their addresses. In production the workers are separate processes
// (spinflow worker); in-process workers exercise the identical code paths
// — real TCP for both control and data planes — inside one test binary.
// Each worker gets its own telemetry registry (regs[i]), as each would in
// its own process.
func startWorkers(t *testing.T, n int, regs ...*obs.Registry) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		var reg *obs.Registry
		if i < len(regs) {
			reg = regs[i]
		}
		go ServeWorker(ln, nil, reg)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// runSingle computes the oracle: the same job on the plain single-process
// incremental driver.
func runSingle(t *testing.T, js JobSpec) []record.Record {
	t.Helper()
	js = js.normalized()
	spec, s0, w0, err := buildSpec(js)
	if err != nil {
		t.Fatal(err)
	}
	cfg := iterative.Config{Parallelism: js.Parallelism, BatchSize: js.BatchSize}
	if js.Backend != "" {
		cfg.SolutionBackend = runtime.SolutionBackendKind(js.Backend)
	}
	res, err := iterative.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol := res.Solution
	sort.Slice(sol, func(x, y int) bool { return record.Less(sol[x], sol[y]) })
	return sol
}

func encodeAll(recs []record.Record) []byte {
	var out []byte
	for _, r := range recs {
		out = r.Encode(out)
	}
	return out
}

func TestDistributedMatchesSingleProcess(t *testing.T) {
	jobs := []JobSpec{
		{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 160, Seed: 0xD157, Parallelism: 4},
		{Algorithm: "cc-cogroup", GraphKind: "uniform", GraphN: 60, GraphM: 100, Seed: 0xD158, Parallelism: 2},
		{Algorithm: "sssp", GraphKind: "uniform", GraphN: 70, GraphM: 180, Seed: 0xD159, Parallelism: 4, Source: 3},
		{Algorithm: "cc", GraphKind: "pa", GraphN: 90, GraphM: 270, Seed: 0xD15A, Parallelism: 4, Backend: "map"},
	}
	for _, js := range jobs {
		js := js
		t.Run(js.Algorithm+"-"+js.GraphKind, func(t *testing.T) {
			want := runSingle(t, js)
			got, err := Run(js, startWorkers(t, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
				t.Fatalf("distributed fixpoint diverged: %d records vs %d single-process",
					len(got.Solution), len(want))
			}
			if got.Supersteps < 2 {
				t.Fatalf("suspiciously trivial run: %d supersteps", got.Supersteps)
			}
		})
	}
}

func TestDistributedThreeProcesses(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 96, GraphM: 200, Seed: 0xD15B, Parallelism: 6}
	want := runSingle(t, js)
	got, err := Run(js, startWorkers(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatalf("3-process fixpoint diverged: %d records vs %d", len(got.Solution), len(want))
	}
}

// TestDistributedSingleHost runs the coordinator with no workers: the
// degenerate 1-host placement must behave exactly like the plain driver
// (all partitions hosted, the transport never used).
func TestDistributedSingleHost(t *testing.T) {
	js := JobSpec{Algorithm: "sssp", GraphKind: "uniform", GraphN: 50, GraphM: 120, Seed: 0xD15C, Parallelism: 2, Source: 1}
	want := runSingle(t, js)
	got, err := Run(js, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("single-host distributed run diverged from the plain driver")
	}
	if got.Work.RemoteBatches != 0 {
		t.Fatalf("single-host run shipped %d remote batches", got.Work.RemoteBatches)
	}
}

// TestDistributedRemoteTrafficCounted checks the new transport metrics
// actually observe the shuffle: a 2-process CC run must ship batches.
func TestDistributedRemoteTrafficCounted(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 200, Seed: 0xD15D, Parallelism: 4}
	got, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Work.RemoteBatches == 0 || got.Work.RemoteBytes == 0 {
		t.Fatalf("2-process run reported no remote traffic: %+v", got.Work)
	}
	if got.Work.TransportErrors != 0 {
		t.Fatalf("clean run counted %d transport errors", got.Work.TransportErrors)
	}
}

// TestWorkerSurvivesSequentialJobs reuses one worker (one control
// connection dialed per Run) for several jobs, as the CI smoke does.
func TestWorkerSurvivesSequentialJobs(t *testing.T) {
	addrs := startWorkers(t, 1)
	for i := 0; i < 3; i++ {
		js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80,
			Seed: 0xD15E + uint64(i), Parallelism: 2}
		want := runSingle(t, js)
		got, err := Run(js, addrs)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
			t.Fatalf("job %d diverged", i)
		}
	}
}

// TestDistributedTracePropagation is the telemetry acceptance check: a
// 2-process traced run must produce superstep spans on BOTH hosts, all
// under the single trace ID the coordinator minted, reassembled into the
// coordinator's ring — and the differential result must be unaffected.
func TestDistributedTracePropagation(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 80, GraphM: 160, Seed: 0xD15F, Parallelism: 4}
	want := runSingle(t, js)

	coord := obs.NewRegistry()
	workerReg := obs.NewRegistry()
	got, err := RunObs(js, startWorkers(t, 1, workerReg), coord)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(got.Solution), encodeAll(want)) {
		t.Fatal("traced run diverged from single-process")
	}

	if len(got.Spans) == 0 {
		t.Fatal("traced run returned no spans")
	}
	var id obs.TraceID
	hostSteps := map[int32]int{}
	for _, sp := range got.Spans {
		if sp.Trace == 0 {
			t.Fatalf("span with zero trace ID: %+v", sp)
		}
		if id == 0 {
			id = sp.Trace
		}
		if sp.Trace != id {
			t.Fatalf("spans carry mixed trace IDs: %016x and %016x", id, sp.Trace)
		}
		if sp.Phase == obs.PhaseSuperstep {
			hostSteps[sp.Host]++
		}
	}
	if hostSteps[0] == 0 || hostSteps[1] == 0 {
		t.Fatalf("superstep spans per host = %v, want both hosts represented", hostSteps)
	}
	// Both hosts ran the same barrier schedule.
	if hostSteps[0] != hostSteps[1] {
		t.Errorf("host superstep counts differ: %v", hostSteps)
	}
	if hostSteps[0] != got.Supersteps {
		t.Errorf("host 0 recorded %d superstep spans, run took %d", hostSteps[0], got.Supersteps)
	}
	// The coordinator's ring holds the merged trace too (what `spinflow
	// trace distributed` renders).
	if n := len(coord.Trace().SpansFor(id)); n != len(got.Spans) {
		t.Errorf("ring holds %d spans for the trace, Result.Spans has %d", n, len(got.Spans))
	}
	// The barrier RTT histogram saw every superstep.
	if c := coord.Histogram("distrib_step_rtt").Count(); c != int64(got.Supersteps) {
		t.Errorf("distrib_step_rtt count = %d, want %d", c, got.Supersteps)
	}
	// Cross-process shuffle was timed on the coordinator's transport.
	if coord.Histogram("transport_send_duration").Count() == 0 {
		t.Error("transport_send_duration recorded nothing")
	}
}

// TestUntracedDistributedUnaffected pins the zero-cost default: a plain
// Run (nil registry) must keep TraceID zero end to end.
func TestUntracedDistributedUnaffected(t *testing.T) {
	js := JobSpec{Algorithm: "cc", GraphKind: "uniform", GraphN: 40, GraphM: 80, Seed: 0xD160, Parallelism: 2}
	got, err := Run(js, startWorkers(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Spans != nil {
		t.Fatalf("untraced run returned %d spans", len(got.Spans))
	}
}
