package live

import (
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/runtime"
)

// ccOracle computes the min-label component assignment over the model
// graph with union-find (the same invariant the fixpoint maintains).
func ccOracle(gs *GraphState) map[int64]int64 {
	parent := make(map[int64]int64)
	for _, v := range gs.Vertices() {
		parent[v] = v
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range gs.UndirectedRecords() {
		a, b := find(e.A), find(e.B)
		if a == b {
			continue
		}
		if a < b {
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	out := make(map[int64]int64, len(parent))
	for v := range parent {
		out[v] = find(v)
	}
	return out
}

// assertCC compares the view's snapshot against the union-find oracle
// over the model graph.
func assertCC(t *testing.T, ctx string, v *LiveView, model *GraphState) {
	t.Helper()
	oracle := ccOracle(model)
	got := algorithms.ComponentsToMap(v.Snapshot())
	if len(got) != len(oracle) {
		t.Fatalf("%s: %d solution records, oracle has %d", ctx, len(got), len(oracle))
	}
	for vid, c := range oracle {
		if got[vid] != c {
			t.Fatalf("%s: vertex %d -> %d, oracle %d", ctx, vid, got[vid], c)
		}
	}
}

// mutateAndModel pushes mutations through the view and mirrors them into
// the model graph.
func mutateAndModel(t *testing.T, v *LiveView, model *GraphState, muts ...Mutation) {
	t.Helper()
	for _, m := range muts {
		model.Apply(m)
	}
	if err := v.Mutate(muts...); err != nil {
		t.Fatal(err)
	}
}

// ringEdges builds a ring over n vertices.
func ringEdges(n int64) []Mutation {
	out := make([]Mutation, n)
	for i := int64(0); i < n; i++ {
		out[i] = InsertEdge(i, (i+1)%n)
	}
	return out
}

// TestLiveViewInsertOnlyNeverRecomputes streams edge inserts through a CC
// view and checks the satellite invariant: the monotone fast path absorbs
// every batch with zero partial and zero full recomputes, and the result
// tracks the union-find oracle after every flush.
func TestLiveViewInsertOnlyNeverRecomputes(t *testing.T) {
	var m metrics.Counters
	initial := ringEdges(10) // vertices 0..9
	v, err := NewView("cc", CC(), initial, ViewConfig{
		Config: iterative.Config{Parallelism: 4, Metrics: &m}})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	model := NewGraphState()
	for _, mu := range initial {
		model.Apply(mu)
	}
	assertCC(t, "cold", v, model)

	// Batches that add fresh components, grow them, and merge them into
	// the ring.
	batches := [][]Mutation{
		{InsertEdge(20, 21), InsertEdge(21, 22), InsertEdge(22, 23)},
		{InsertEdge(30, 31), InsertEdge(31, 32)},
		{InsertEdge(23, 30)},           // merge the two fresh components
		{InsertEdge(5, 20)},            // merge into the ring
		{AddVertex(40), AddVertex(41)}, // isolated vertices
		{InsertEdge(40, 41), InsertEdge(41, 0)},
	}
	for i, b := range batches {
		mutateAndModel(t, v, model, b...)
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
		assertCC(t, "batch", v, model)
		_ = i
	}
	if got := m.PartialRecomputes.Load(); got != 0 {
		t.Errorf("insert-only stream triggered %d partial recomputes", got)
	}
	if got := m.FullRecomputes.Load(); got != 0 {
		t.Errorf("insert-only stream triggered %d full recomputes", got)
	}
	if m.WarmRestarts.Load() == 0 {
		t.Error("no warm restarts recorded")
	}
	// Initial mutations are a cold load, not deltas; only the 6 batches'
	// 11 mutations count.
	var total int64
	for _, b := range batches {
		total += int64(len(b))
	}
	if m.DeltasApplied.Load() != total {
		t.Errorf("DeltasApplied = %d, want %d", m.DeltasApplied.Load(), total)
	}
}

// TestLiveViewDeletionsBoundedRecompute deletes a bridge edge (splitting
// a component) and an in-component chord (no split): both must repair via
// bounded recompute, never a full one, and track the oracle.
func TestLiveViewDeletionsBoundedRecompute(t *testing.T) {
	var m metrics.Counters
	// Two triangles joined by a bridge, plus a far-away component that
	// must never be touched: {0,1,2}-3-{4,5,6}, {100..102}.
	initial := []Mutation{
		InsertEdge(0, 1), InsertEdge(1, 2), InsertEdge(2, 0),
		InsertEdge(2, 3), InsertEdge(3, 4),
		InsertEdge(4, 5), InsertEdge(5, 6), InsertEdge(6, 4),
		InsertEdge(100, 101), InsertEdge(101, 102),
	}
	v, err := NewView("cc", CC(), initial, ViewConfig{
		Config:            iterative.Config{Parallelism: 2, Metrics: &m},
		RecomputeFraction: 1.0, // always bounded while the region fits the set
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	model := NewGraphState()
	for _, mu := range initial {
		model.Apply(mu)
	}

	// Chord delete: {0,1,2} stays one component.
	mutateAndModel(t, v, model, DeleteEdge(2, 0))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	assertCC(t, "chord delete", v, model)

	// Bridge delete: the big component splits in two.
	mutateAndModel(t, v, model, DeleteEdge(3, 4))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	assertCC(t, "bridge delete", v, model)

	if m.PartialRecomputes.Load() == 0 {
		t.Error("deletions did not use bounded recompute")
	}
	if m.FullRecomputes.Load() != 0 {
		t.Errorf("bounded deletions fell back to %d full recomputes", m.FullRecomputes.Load())
	}
}

// TestLiveViewMixedBatch puts an insert that bridges two components and a
// delete that splits one of them into the SAME batch — the stale-label
// hazard: the insert's candidate labels must not leak pre-delete state.
func TestLiveViewMixedBatch(t *testing.T) {
	// Chain 0-1-2-3 and pair 10-11.
	initial := []Mutation{
		InsertEdge(0, 1), InsertEdge(1, 2), InsertEdge(2, 3),
		InsertEdge(10, 11),
	}
	v, err := NewView("cc", CC(), initial, ViewConfig{
		Config:            iterative.Config{Parallelism: 2},
		RecomputeFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	model := NewGraphState()
	for _, mu := range initial {
		model.Apply(mu)
	}

	// Delete 1-2 (chain splits into {0,1} and {2,3}) while inserting
	// 3-10 (joins {2,3} with {10,11}). Stale labels would tag vertex 10's
	// side with component 0.
	mutateAndModel(t, v, model, DeleteEdge(1, 2), InsertEdge(3, 10))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	assertCC(t, "mixed batch", v, model)
}

// TestLiveViewVertexDelete removes a cut vertex, which both drops its
// solution entry and splits its component.
func TestLiveViewVertexDelete(t *testing.T) {
	initial := []Mutation{
		InsertEdge(0, 1), InsertEdge(1, 2), // 1 is the cut vertex
		InsertEdge(5, 6),
	}
	v, err := NewView("cc", CC(), initial, ViewConfig{
		Config:            iterative.Config{Parallelism: 2},
		RecomputeFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	model := NewGraphState()
	for _, mu := range initial {
		model.Apply(mu)
	}

	mutateAndModel(t, v, model, DeleteVertex(1))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	assertCC(t, "vertex delete", v, model)
	if _, found := v.Query(1); found {
		t.Error("deleted vertex still has a solution entry")
	}
}

// TestLiveViewSSSP streams inserts (monotone) and then a deletion (full
// recompute) through an SSSP view, comparing against Dijkstra each time.
func TestLiveViewSSSP(t *testing.T) {
	var m metrics.Counters
	initial := []Mutation{
		InsertWeightedEdge(0, 1, 2), InsertWeightedEdge(1, 2, 2),
		InsertWeightedEdge(0, 3, 7), InsertWeightedEdge(3, 4, 1),
	}
	v, err := NewView("sssp", SSSP(0), initial, ViewConfig{
		Config: iterative.Config{Parallelism: 2, Metrics: &m}})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	model := NewGraphState()
	for _, mu := range initial {
		model.Apply(mu)
	}
	check := func(ctx string) {
		t.Helper()
		oracle := algorithms.SSSPReference(model.WeightedUndirected(), 0)
		got := make(map[int64]float64)
		for _, r := range v.Snapshot() {
			got[r.A] = r.X
		}
		if len(got) != len(oracle) {
			t.Fatalf("%s: reached %d vertices, oracle %d (got %v, oracle %v)", ctx, len(got), len(oracle), got, oracle)
		}
		for vid, d := range oracle {
			if got[vid] != d {
				t.Fatalf("%s: dist(%d) = %v, oracle %v", ctx, vid, got[vid], d)
			}
		}
	}
	check("cold")

	// Monotone insert: shortcut 2-3 shortens 3 and 4.
	mutateAndModel(t, v, model, InsertWeightedEdge(2, 3, 1))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	check("insert")
	if m.FullRecomputes.Load() != 0 {
		t.Errorf("insert triggered %d full recomputes", m.FullRecomputes.Load())
	}

	// Deletion: distances can only grow; SSSP takes the full-recompute
	// last resort.
	mutateAndModel(t, v, model, DeleteEdge(2, 3))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	check("delete")
	if m.FullRecomputes.Load() == 0 {
		t.Error("SSSP deletion did not full-recompute")
	}

	// Deleting 0-3 and 3-4 makes 4 unreachable: its entry must vanish.
	mutateAndModel(t, v, model, DeleteEdge(0, 3), DeleteEdge(3, 4))
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	check("unreachable")
}

// TestLiveViewSSSPReweight increases an existing edge's weight: not
// monotone, so the view must repair like a deletion (full recompute for
// SSSP) rather than leave the stale shorter distance resident.
func TestLiveViewSSSPReweight(t *testing.T) {
	var m metrics.Counters
	initial := []Mutation{
		InsertWeightedEdge(0, 1, 1), InsertWeightedEdge(1, 2, 1),
		InsertWeightedEdge(0, 2, 5),
	}
	v, err := NewView("sssp", SSSP(0), initial, ViewConfig{
		Config: iterative.Config{Parallelism: 2, Metrics: &m}})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if r, _ := v.Query(2); r.X != 2 {
		t.Fatalf("cold dist(2) = %v, want 2", r.X)
	}

	// Re-weight 1-2 from 1 to 10: dist(2) must grow to 5 (via 0-2).
	if err := v.Mutate(InsertWeightedEdge(1, 2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, _ := v.Query(2); r.X != 5 {
		t.Fatalf("post-reweight dist(2) = %v, want 5", r.X)
	}
	if m.FullRecomputes.Load() == 0 {
		t.Error("weight increase did not trigger the deletion-style repair")
	}

	// A weight decrease is monotone again after repair: 0-2 down to 1.
	if err := v.Mutate(InsertWeightedEdge(0, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, _ := v.Query(2); r.X != 1 {
		t.Fatalf("post-decrease dist(2) = %v, want 1", r.X)
	}
}

// TestLiveViewBatchSizeAutoFlush checks that the BatchSize threshold
// flushes without an explicit Flush call.
func TestLiveViewBatchSizeAutoFlush(t *testing.T) {
	v, err := NewView("cc", CC(), ringEdges(6), ViewConfig{
		Config:    iterative.Config{Parallelism: 1},
		BatchSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Mutate(InsertEdge(20, 21), InsertEdge(21, 22)); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Flushes != 0 || st.MutationsPending != 2 {
		t.Fatalf("premature flush: %+v", st)
	}
	if err := v.Mutate(InsertEdge(22, 20)); err != nil { // hits BatchSize
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Flushes != 1 || st.MutationsPending != 0 {
		t.Fatalf("BatchSize did not flush: %+v", st)
	}
	if r, ok := v.Query(22); !ok || r.B != 20 {
		t.Fatalf("Query(22) = %v,%v, want component 20", r, ok)
	}
}

// TestLiveViewFlushIntervalTimer checks the staleness bound: a lone
// mutation flushes by itself once FlushInterval elapses.
func TestLiveViewFlushIntervalTimer(t *testing.T) {
	v, err := NewView("cc", CC(), ringEdges(4), ViewConfig{
		Config:        iterative.Config{Parallelism: 1},
		BatchSize:     1000,
		FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Mutate(InsertEdge(9, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r, ok := v.Query(9); ok && r.B == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timer flush never applied the mutation")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLiveViewConcurrentQueries hammers Query/Snapshot from readers while
// a writer streams mutation batches — the per-view serialization plus
// shared read lock must keep this race-clean and the reads must only ever
// observe converged states (every queried component id refers to a
// vertex that exists).
func TestLiveViewConcurrentQueries(t *testing.T) {
	v, err := NewView("cc", CC(), ringEdges(32), ViewConfig{
		Config: iterative.Config{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rec, ok := v.Query(5); ok && rec.B < 0 {
					t.Error("negative component id")
					return
				}
				_ = v.Snapshot()
			}
		}()
	}
	for i := int64(0); i < 20; i++ {
		if err := v.Mutate(InsertEdge(100+i, 101+i)); err != nil {
			t.Fatal(err)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLiveViewAcrossBackends repeats an insert+delete stream over every
// solution backend; results must be identical.
func TestLiveViewAcrossBackends(t *testing.T) {
	backends := []struct {
		name string
		cfg  func(iterative.Config) iterative.Config
	}{
		{"map", func(c iterative.Config) iterative.Config { c.SolutionBackend = runtime.SolutionMap; return c }},
		{"compact", func(c iterative.Config) iterative.Config { c.SolutionBackend = runtime.SolutionCompact; return c }},
		{"spill", func(c iterative.Config) iterative.Config { c.SolutionMemoryBudget = 8 * record.EncodedSize; return c }},
	}
	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			v, err := NewView("cc", CC(), ringEdges(12), ViewConfig{
				Config:            bk.cfg(iterative.Config{Parallelism: 4}),
				RecomputeFraction: 1.0,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer v.Close()
			model := NewGraphState()
			for _, mu := range ringEdges(12) {
				model.Apply(mu)
			}
			mutateAndModel(t, v, model,
				InsertEdge(20, 21), DeleteEdge(3, 4), InsertEdge(21, 5), DeleteEdge(8, 9))
			if err := v.Flush(); err != nil {
				t.Fatal(err)
			}
			assertCC(t, bk.name, v, model)
		})
	}
}

// TestViewConfigValidate rejects the nonsense configurations the defaults
// would otherwise silently absorb.
func TestViewConfigValidate(t *testing.T) {
	bad := []ViewConfig{
		{BatchSize: -1},
		{FlushInterval: -time.Second},
		{RecomputeFraction: 1.5},
		{Config: iterative.Config{SolutionMemoryBudget: -5}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewView("bad", CC(), nil, ViewConfig{BatchSize: -2}); err == nil {
		t.Error("NewView accepted invalid config")
	}
}

// TestLiveViewClosedRejectsMutations checks Close semantics.
func TestLiveViewClosedRejectsMutations(t *testing.T) {
	v, err := NewView("cc", CC(), ringEdges(4), ViewConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(9, 10)); err == nil {
		t.Error("closed view accepted a mutation")
	}
}
