package live

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/iterative"
	"repro/internal/obs"
	"repro/internal/record"
)

func TestSchedulerCreateGetDrop(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 2}}})
	defer s.Close()

	v, err := s.Create("social", CC(), ringEdges(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("social"); !ok || got != v {
		t.Fatal("Get did not return the created view")
	}
	if _, err := s.Create("social", CC(), nil, nil); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.Create("", CC(), nil, nil); err == nil {
		t.Error("empty name accepted")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "social" {
		t.Errorf("Names = %v", names)
	}
	if err := s.Drop("social"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("social"); ok {
		t.Error("dropped view still visible")
	}
	if err := s.Drop("social"); err == nil {
		t.Error("double drop did not error")
	}
}

// TestSchedulerAdmissionControl refuses a view whose footprint would
// exceed the global budget, while a small view still fits.
func TestSchedulerAdmissionControl(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		MemoryBudget: 64 * record.EncodedSize,
		DefaultView:  ViewConfig{Config: iterative.Config{Parallelism: 2}}})
	defer s.Close()

	if _, err := s.Create("small", CC(), ringEdges(8), nil); err != nil {
		t.Fatalf("small view refused: %v", err)
	}
	_, err := s.Create("huge", CC(), ringEdges(4000), nil)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("huge view admitted (err = %v)", err)
	}
	if _, ok := s.Get("huge"); ok {
		t.Error("refused view left registered")
	}
	// The refused create must not have disturbed the resident one.
	if v, ok := s.Get("small"); !ok || v.Stats().SolutionRecords != 8 {
		t.Error("resident view damaged by refused admission")
	}
}

// TestSchedulerConcurrentViews mutates and queries several views from
// concurrent goroutines: per-view serialization plus the registry lock
// must keep this race-clean, and every view must track its own oracle.
func TestSchedulerConcurrentViews(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 2}}})
	defer s.Close()

	const nViews = 4
	var wg sync.WaitGroup
	for i := 0; i < nViews; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("view-%d", i)
			v, err := s.Create(name, CC(), ringEdges(10), nil)
			if err != nil {
				t.Error(err)
				return
			}
			model := NewGraphState()
			for _, mu := range ringEdges(10) {
				model.Apply(mu)
			}
			for b := int64(0); b < 5; b++ {
				muts := []Mutation{
					InsertEdge(100+b, 101+b),
					DeleteEdge(2*b, 2*b+1),
				}
				for _, mu := range muts {
					model.Apply(mu)
				}
				if err := v.Mutate(muts...); err != nil {
					t.Error(err)
					return
				}
				if err := v.Flush(); err != nil {
					t.Error(err)
					return
				}
				v.Query(5)
			}
			assertCC(t, name, v, model)
		}(i)
	}
	wg.Wait()
	if s.NumViews() != nViews {
		t.Errorf("NumViews = %d, want %d", s.NumViews(), nViews)
	}
	st := s.Stats()
	if st.Views != nViews || len(st.PerView) != nViews {
		t.Errorf("Stats views = %d/%d", st.Views, len(st.PerView))
	}
}

// TestSchedulerCloseFlushesViews checks Close applies pending batches
// before tearing views down.
func TestSchedulerCloseFlushesViews(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 1}, BatchSize: 1000}})
	v, err := s.Create("v", CC(), ringEdges(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(50, 51)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.DeltasApplied != 1 {
		t.Errorf("pending mutation not flushed on Close: %+v", st)
	}
	if s.NumViews() != 0 {
		t.Errorf("views survived Close: %d", s.NumViews())
	}
}

// TestSchedulerObsExport wires a telemetry registry into the scheduler
// and checks the whole plane: views inherit the registry (latency
// histograms + spans record), and the collector exports scheduler-wide
// and per-view gauges into the Prometheus text.
func TestSchedulerObsExport(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(SchedulerConfig{
		Obs:         reg,
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 2}}})
	defer s.Close()

	v, err := s.Create("pr", CC(), ringEdges(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	v.Query(100)

	for _, h := range []string{"live_query_duration", "live_mutate_duration", "live_flush_duration"} {
		if reg.Histogram(h).Count() == 0 {
			t.Errorf("histogram %s recorded nothing", h)
		}
	}
	// The cold fixpoint and the flush both ran supersteps under the
	// view's trace ID; the flush recorded a flush-phase span.
	if v.cfg.TraceID == 0 {
		t.Fatal("view did not mint a trace ID")
	}
	spans := reg.Trace().SpansFor(v.cfg.TraceID)
	var phases = map[obs.Phase]int{}
	for _, sp := range spans {
		phases[sp.Phase]++
	}
	if phases[obs.PhaseSuperstep] == 0 || phases[obs.PhaseFlush] == 0 {
		t.Errorf("span phases = %v, want superstep and flush spans", phases)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"spinflow_scheduler_views 1",
		`spinflow_view_flushes{view="pr"}`,
		`spinflow_view_solution_records{view="pr"} 17`,
		"spinflow_live_query_duration_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
