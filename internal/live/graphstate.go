package live

import (
	"sort"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/record"
)

// WEdge is one live directed edge with its weight.
type WEdge struct {
	Src, Dst int64
	Weight   float64
}

// GraphState is the mutable graph behind a live view: a set of alive
// vertices plus a directed weighted edge set with O(1) insert/delete.
// Vertex ids need not be dense — deletions leave holes. All methods are
// unsynchronized; LiveView serializes access.
type GraphState struct {
	verts map[int64]struct{}
	edges []WEdge
	index map[[2]int64]int // (src,dst) -> position in edges
}

// NewGraphState creates an empty graph.
func NewGraphState() *GraphState {
	return &GraphState{
		verts: make(map[int64]struct{}),
		index: make(map[[2]int64]int),
	}
}

// Apply routes one mutation into the state (no maintenance bookkeeping)
// — the raw graph operation, used for initial loads and test models.
func (g *GraphState) Apply(m Mutation) {
	switch m.Op {
	case OpInsertEdge:
		g.AddVertex(m.Src)
		g.AddVertex(m.Dst)
		g.AddEdge(m.Src, m.Dst, m.Weight)
	case OpDeleteEdge:
		g.RemoveEdge(m.Src, m.Dst)
	case OpAddVertex:
		g.AddVertex(m.Src)
	case OpDeleteVertex:
		g.RemoveVertex(m.Src)
	}
}

// AddVertex adds v, reporting whether it was new.
func (g *GraphState) AddVertex(v int64) bool {
	if _, ok := g.verts[v]; ok {
		return false
	}
	g.verts[v] = struct{}{}
	return true
}

// HasVertex reports membership.
func (g *GraphState) HasVertex(v int64) bool {
	_, ok := g.verts[v]
	return ok
}

// AddEdge inserts the directed edge (src, dst, w), reporting whether the
// edge set changed (a fresh edge, or an existing one whose weight moved).
// Self-loops are ignored — the fixpoint algorithms discard them anyway.
func (g *GraphState) AddEdge(src, dst int64, w float64) bool {
	if src == dst {
		return false
	}
	g.AddVertex(src)
	g.AddVertex(dst)
	k := [2]int64{src, dst}
	if i, ok := g.index[k]; ok {
		if g.edges[i].Weight == w {
			return false
		}
		g.edges[i].Weight = w
		return true
	}
	g.index[k] = len(g.edges)
	g.edges = append(g.edges, WEdge{Src: src, Dst: dst, Weight: w})
	return true
}

// EdgeWeight returns the weight of the directed edge (src, dst) and
// whether it exists.
func (g *GraphState) EdgeWeight(src, dst int64) (float64, bool) {
	if i, ok := g.index[[2]int64{src, dst}]; ok {
		return g.edges[i].Weight, true
	}
	return 0, false
}

// RemoveEdge deletes the directed edge (src, dst) by swap-remove,
// returning its weight and whether it existed.
func (g *GraphState) RemoveEdge(src, dst int64) (float64, bool) {
	k := [2]int64{src, dst}
	i, ok := g.index[k]
	if !ok {
		return 0, false
	}
	w := g.edges[i].Weight
	last := len(g.edges) - 1
	if i != last {
		moved := g.edges[last]
		g.edges[i] = moved
		g.index[[2]int64{moved.Src, moved.Dst}] = i
	}
	g.edges = g.edges[:last]
	delete(g.index, k)
	return w, true
}

// IncidentEdges returns every live edge touching v (either endpoint).
func (g *GraphState) IncidentEdges(v int64) []WEdge {
	var out []WEdge
	for _, e := range g.edges {
		if e.Src == v || e.Dst == v {
			out = append(out, e)
		}
	}
	return out
}

// RemoveVertex deletes v and all incident edges, returning the removed
// edges.
func (g *GraphState) RemoveVertex(v int64) []WEdge {
	if !g.HasVertex(v) {
		return nil
	}
	removed := g.IncidentEdges(v)
	for _, e := range removed {
		g.RemoveEdge(e.Src, e.Dst)
	}
	delete(g.verts, v)
	return removed
}

// NumVertices returns the alive vertex count.
func (g *GraphState) NumVertices() int { return len(g.verts) }

// NumEdges returns the live directed edge count.
func (g *GraphState) NumEdges() int { return len(g.edges) }

// Vertices returns the alive vertices in ascending order.
func (g *GraphState) Vertices() []int64 {
	out := make([]int64, 0, len(g.verts))
	for v := range g.verts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UndirectedRecords symmetrizes the edge set into deduplicated edge
// records (A=src, B=dst, both orientations), the neighborhood table N of
// the Connected Components dataflow. Order is deterministic: edges sort
// by (A, B).
func (g *GraphState) UndirectedRecords() []record.Record {
	seen := make(map[[2]int64]struct{}, 2*len(g.edges))
	out := make([]record.Record, 0, 2*len(g.edges))
	add := func(s, d int64) {
		k := [2]int64{s, d}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		out = append(out, record.Record{A: s, B: d})
	}
	for _, e := range g.edges {
		add(e.Src, e.Dst)
		add(e.Dst, e.Src)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// WeightedUndirected symmetrizes the edge set into weighted edges (both
// orientations). When both orientations were inserted with different
// weights, the smaller weight wins deterministically.
func (g *GraphState) WeightedUndirected() []algorithms.WeightedEdge {
	best := make(map[[2]int64]float64, 2*len(g.edges))
	for _, e := range g.edges {
		for _, k := range [][2]int64{{e.Src, e.Dst}, {e.Dst, e.Src}} {
			if w, ok := best[k]; !ok || e.Weight < w {
				best[k] = e.Weight
			}
		}
	}
	out := make([]algorithms.WeightedEdge, 0, len(best))
	for k, w := range best {
		out = append(out, algorithms.WeightedEdge{Src: k[0], Dst: k[1], Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Graph materializes the current directed edge list as a graphgen.Graph
// (NumVertices = max id + 1), for oracles and differential tests.
func (g *GraphState) Graph(name string) *graphgen.Graph {
	var maxID int64 = -1
	for v := range g.verts {
		if v > maxID {
			maxID = v
		}
	}
	edges := make([]graphgen.Edge, len(g.edges))
	for i, e := range g.edges {
		edges[i] = graphgen.Edge{Src: e.Src, Dst: e.Dst}
	}
	return &graphgen.Graph{Name: name, NumVertices: maxID + 1, Edges: edges}
}
