package live

import (
	"cmp"
	"slices"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/record"
)

// WEdge is one live directed edge with its weight.
type WEdge struct {
	Src, Dst int64
	Weight   float64
}

// GraphState is the mutable graph behind a live view: a set of alive
// vertices plus a directed weighted edge set with O(1) insert/delete.
// Vertex ids need not be dense — deletions leave holes. All methods are
// unsynchronized; LiveView serializes access.
type GraphState struct {
	verts map[int64]struct{}
	edges []WEdge
	index map[[2]int64]int // (src,dst) -> position in edges

	// Derived-table caches. The maintainers re-derive the symmetrized
	// edge table and the sorted vertex list on every plan refresh; at
	// serving scale those rebuilds dominated the whole refresh, and the
	// tables only ever *grow* between refreshes on the insert fast path.
	// Each cache covers a prefix of the append-only state (undirN/wundirN
	// edges, vertsCache+vertsAdd vertices) and is advanced by sorting
	// just the fresh tail and merging; removals and in-place re-weights
	// invalidate (-1 / vertsOK=false) back to a full rebuild. The
	// accessors return the cache itself — callers (plan sources, graph
	// dumps) only read — and every advance allocates a fresh slice, so a
	// table referenced by a live plan is never mutated behind it.
	undir   []record.Record
	undirN  int
	wundir  []algorithms.WeightedEdge
	wundirN int

	vertsCache []int64
	vertsAdd   []int64
	vertsOK    bool
}

// NewGraphState creates an empty graph.
func NewGraphState() *GraphState {
	return &GraphState{
		verts:   make(map[int64]struct{}),
		index:   make(map[[2]int64]int),
		vertsOK: true,
	}
}

// Apply routes one mutation into the state (no maintenance bookkeeping)
// — the raw graph operation, used for initial loads and test models.
func (g *GraphState) Apply(m Mutation) {
	switch m.Op {
	case OpInsertEdge:
		g.AddVertex(m.Src)
		g.AddVertex(m.Dst)
		g.AddEdge(m.Src, m.Dst, m.Weight)
	case OpDeleteEdge:
		g.RemoveEdge(m.Src, m.Dst)
	case OpAddVertex:
		g.AddVertex(m.Src)
	case OpDeleteVertex:
		g.RemoveVertex(m.Src)
	}
}

// AddVertex adds v, reporting whether it was new.
func (g *GraphState) AddVertex(v int64) bool {
	if _, ok := g.verts[v]; ok {
		return false
	}
	g.verts[v] = struct{}{}
	if g.vertsOK {
		g.vertsAdd = append(g.vertsAdd, v)
	}
	return true
}

// HasVertex reports membership.
func (g *GraphState) HasVertex(v int64) bool {
	_, ok := g.verts[v]
	return ok
}

// AddEdge inserts the directed edge (src, dst, w), reporting whether the
// edge set changed (a fresh edge, or an existing one whose weight moved).
// Self-loops are ignored — the fixpoint algorithms discard them anyway.
func (g *GraphState) AddEdge(src, dst int64, w float64) bool {
	if src == dst {
		return false
	}
	g.AddVertex(src)
	g.AddVertex(dst)
	k := [2]int64{src, dst}
	if i, ok := g.index[k]; ok {
		if g.edges[i].Weight == w {
			return false
		}
		g.edges[i].Weight = w
		g.wundirN = -1 // the pair's min weight may have moved either way
		return true
	}
	g.index[k] = len(g.edges)
	g.edges = append(g.edges, WEdge{Src: src, Dst: dst, Weight: w})
	return true
}

// EdgeWeight returns the weight of the directed edge (src, dst) and
// whether it exists.
func (g *GraphState) EdgeWeight(src, dst int64) (float64, bool) {
	if i, ok := g.index[[2]int64{src, dst}]; ok {
		return g.edges[i].Weight, true
	}
	return 0, false
}

// RemoveEdge deletes the directed edge (src, dst) by swap-remove,
// returning its weight and whether it existed.
func (g *GraphState) RemoveEdge(src, dst int64) (float64, bool) {
	k := [2]int64{src, dst}
	i, ok := g.index[k]
	if !ok {
		return 0, false
	}
	w := g.edges[i].Weight
	last := len(g.edges) - 1
	if i != last {
		moved := g.edges[last]
		g.edges[i] = moved
		g.index[[2]int64{moved.Src, moved.Dst}] = i
	}
	g.edges = g.edges[:last]
	delete(g.index, k)
	g.undirN, g.wundirN = -1, -1
	g.undir, g.wundir = nil, nil
	return w, true
}

// IncidentEdges returns every live edge touching v (either endpoint).
func (g *GraphState) IncidentEdges(v int64) []WEdge {
	var out []WEdge
	for _, e := range g.edges {
		if e.Src == v || e.Dst == v {
			out = append(out, e)
		}
	}
	return out
}

// RemoveVertex deletes v and all incident edges, returning the removed
// edges.
func (g *GraphState) RemoveVertex(v int64) []WEdge {
	if !g.HasVertex(v) {
		return nil
	}
	removed := g.IncidentEdges(v)
	for _, e := range removed {
		g.RemoveEdge(e.Src, e.Dst)
	}
	delete(g.verts, v)
	g.vertsOK = false
	g.vertsCache, g.vertsAdd = nil, nil
	return removed
}

// NumVertices returns the alive vertex count.
func (g *GraphState) NumVertices() int { return len(g.verts) }

// NumEdges returns the live directed edge count.
func (g *GraphState) NumEdges() int { return len(g.edges) }

// Vertices returns the alive vertices in ascending order.
func (g *GraphState) Vertices() []int64 {
	if !g.vertsOK {
		g.vertsCache = make([]int64, 0, len(g.verts))
		for v := range g.verts {
			g.vertsCache = append(g.vertsCache, v)
		}
		slices.Sort(g.vertsCache)
		g.vertsAdd = nil
		g.vertsOK = true
	} else if len(g.vertsAdd) > 0 {
		slices.Sort(g.vertsAdd)
		g.vertsCache = mergeSorted(g.vertsCache, g.vertsAdd, cmp.Compare, nil)
		g.vertsAdd = nil
	}
	return g.vertsCache
}

// symmetrize expands directed edges into both orientations, sorted by
// (A, B) and deduplicated.
func symmetrize(edges []WEdge) []record.Record {
	out := make([]record.Record, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, record.Record{A: e.Src, B: e.Dst}, record.Record{A: e.Dst, B: e.Src})
	}
	slices.SortFunc(out, recordAB)
	return slices.CompactFunc(out, func(x, y record.Record) bool {
		return recordAB(x, y) == 0
	})
}

func recordAB(x, y record.Record) int {
	if c := cmp.Compare(x.A, y.A); c != 0 {
		return c
	}
	return cmp.Compare(x.B, y.B)
}

// symmetrizeWeighted expands directed edges into both orientations,
// sorted by (Src, Dst) with the smallest weight kept per pair.
func symmetrizeWeighted(edges []WEdge) []algorithms.WeightedEdge {
	out := make([]algorithms.WeightedEdge, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out,
			algorithms.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: e.Weight},
			algorithms.WeightedEdge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	slices.SortFunc(out, func(x, y algorithms.WeightedEdge) int {
		if c := wedgePair(x, y); c != 0 {
			return c
		}
		return cmp.Compare(x.Weight, y.Weight)
	})
	return slices.CompactFunc(out, func(x, y algorithms.WeightedEdge) bool {
		return wedgePair(x, y) == 0
	})
}

func wedgePair(x, y algorithms.WeightedEdge) int {
	if c := cmp.Compare(x.Src, y.Src); c != 0 {
		return c
	}
	return cmp.Compare(x.Dst, y.Dst)
}

// mergeSorted merges two sorted deduplicated slices into a fresh sorted
// deduplicated slice. On equal keys resolve picks the survivor (nil
// keeps a); a key from the tail can collide with the cache when the
// reverse orientation of a cached pair arrives later.
func mergeSorted[T any](a, b []T, compare func(T, T) int, resolve func(T, T) T) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := compare(a[i], b[j]); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			keep := a[i]
			if resolve != nil {
				keep = resolve(a[i], b[j])
			}
			out = append(out, keep)
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// UndirectedRecords symmetrizes the edge set into deduplicated edge
// records (A=src, B=dst, both orientations), the neighborhood table N of
// the Connected Components dataflow. Order is deterministic: edges sort
// by (A, B). The maintainer re-derives this table on every plan refresh,
// so between removals only the freshly appended edges are sorted and
// merged into the cached table.
func (g *GraphState) UndirectedRecords() []record.Record {
	if g.undirN < 0 || g.undirN > len(g.edges) {
		g.undir = symmetrize(g.edges)
		g.undirN = len(g.edges)
	} else if g.undirN < len(g.edges) {
		g.undir = mergeSorted(g.undir, symmetrize(g.edges[g.undirN:]), recordAB, nil)
		g.undirN = len(g.edges)
	}
	return g.undir
}

// WeightedUndirected symmetrizes the edge set into weighted edges (both
// orientations). When both orientations carry different weights, the
// smaller weight wins deterministically. Cached and incrementally merged
// the same way as UndirectedRecords; in-place re-weights invalidate.
func (g *GraphState) WeightedUndirected() []algorithms.WeightedEdge {
	minW := func(x, y algorithms.WeightedEdge) algorithms.WeightedEdge {
		if y.Weight < x.Weight {
			return y
		}
		return x
	}
	if g.wundirN < 0 || g.wundirN > len(g.edges) {
		g.wundir = symmetrizeWeighted(g.edges)
		g.wundirN = len(g.edges)
	} else if g.wundirN < len(g.edges) {
		g.wundir = mergeSorted(g.wundir, symmetrizeWeighted(g.edges[g.wundirN:]), wedgePair, minW)
		g.wundirN = len(g.edges)
	}
	return g.wundir
}

// Graph materializes the current directed edge list as a graphgen.Graph
// (NumVertices = max id + 1), for oracles and differential tests.
func (g *GraphState) Graph(name string) *graphgen.Graph {
	var maxID int64 = -1
	for v := range g.verts {
		if v > maxID {
			maxID = v
		}
	}
	edges := make([]graphgen.Edge, len(g.edges))
	for i, e := range g.edges {
		edges[i] = graphgen.Edge{Src: e.Src, Dst: e.Dst}
	}
	return &graphgen.Graph{Name: name, NumVertices: maxID + 1, Edges: edges}
}
