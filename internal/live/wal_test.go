package live

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/record"
)

func durableCfg(dir string, m *metrics.Counters) ViewConfig {
	return ViewConfig{
		Config:  iterative.Config{Parallelism: 2, Metrics: m},
		Durable: true,
		DataDir: dir,
	}
}

// chain returns insert mutations for a path graph 0-1-...-n.
func chain(n int64) []Mutation {
	var out []Mutation
	for i := int64(0); i < n; i++ {
		out = append(out, InsertEdge(i, i+1))
	}
	return out
}

func mustComp(t *testing.T, v *LiveView, vertex, want int64) {
	t.Helper()
	r, ok := v.Query(vertex)
	if !ok {
		t.Fatalf("vertex %d missing from solution", vertex)
	}
	if r.B != want {
		t.Fatalf("component(%d) = %d, want %d", vertex, r.B, want)
	}
}

func TestDurableCreateCloseReopen(t *testing.T) {
	dir := t.TempDir()
	var m metrics.Counters
	v, err := OpenView("cc", CC(), chain(4), durableCfg(dir, &m))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(10, 11)); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if m.WALAppends.Load() != 2 { // initial frame + one mutation batch
		t.Fatalf("WALAppends = %d, want 2", m.WALAppends.Load())
	}

	v2, err := OpenView("cc", CC(), nil, durableCfg(dir, &m))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	mustComp(t, v2, 4, 0)
	mustComp(t, v2, 11, 10)
	st := v2.Stats()
	if !st.Durable {
		t.Fatal("recovered view not marked durable")
	}
	if st.RecoveredFrames != 0 {
		t.Fatalf("clean shutdown should recover without replay, got %d frames", st.RecoveredFrames)
	}
}

func TestRecoveryReplaysAcknowledgedMutations(t *testing.T) {
	dir := t.TempDir()
	var m metrics.Counters
	cfg := durableCfg(dir, &m)
	cfg.BatchSize = 1 << 30 // flush only on demand
	v, err := OpenView("cc", CC(), chain(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One flushed batch, one acknowledged-but-unflushed batch.
	if err := v.Mutate(InsertEdge(20, 21), InsertEdge(21, 22)); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(22, 4)); err != nil {
		t.Fatal(err)
	}
	v.Kill() // hard crash: pending batch never flushed

	v2, err := OpenView("cc", CC(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	// The unflushed-but-acknowledged insert must be recovered: 22 joins
	// the 0..4 component through edge (22,4).
	mustComp(t, v2, 22, 0)
	mustComp(t, v2, 20, 0)
	if got := v2.Stats().RecoveredFrames; got == 0 {
		t.Fatal("recovery should have replayed WAL frames")
	}
	if m.RecoveryReplays.Load() == 0 {
		t.Fatal("RecoveryReplays counter not bumped")
	}
}

func TestRecoveryTruncatesTornTailToAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir, nil)
	cfg.BatchSize = 1 << 30
	v, err := OpenView("cc", CC(), chain(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two acknowledged batches beyond the base snapshot.
	if err := v.Mutate(InsertEdge(10, 11)); err != nil {
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(11, 0)); err != nil {
		t.Fatal(err)
	}
	v.Kill()

	// Simulate a crash mid-append: cut into the last frame. The damaged
	// frame was never fully written, so its batch counts as unacked.
	walPath := filepath.Join(dir, "cc", walFileName)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	v2, err := OpenView("cc", CC(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the acknowledged prefix: (10,11) replayed, (11,0) lost with
	// the torn frame — 11 stays labeled 10, NOT merged into component 0.
	mustComp(t, v2, 11, 10)
	mustComp(t, v2, 2, 0)
	if got := v2.Stats().RecoveredFrames; got != 1 {
		t.Fatalf("replayed %d frames, want exactly the 1 intact frame", got)
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn bytes must be gone from disk: a rescan sees only whole
	// frames (Close rotated the log, so it is fresh).
	base, seq, _, err := scanWAL(walPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base != seq {
		t.Fatalf("rotated log should be empty, has frames %d..%d", base+1, seq)
	}
}

func TestSnapshotCadenceAndRotation(t *testing.T) {
	dir := t.TempDir()
	var m metrics.Counters
	cfg := durableCfg(dir, &m)
	cfg.SnapshotEveryFlushes = 2
	v, err := OpenView("cc", CC(), chain(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	base := m.SnapshotsWritten.Load() // the create-time snapshot
	for i := int64(0); i < 4; i++ {
		if err := v.Mutate(InsertEdge(100+i, 200+i)); err != nil {
			t.Fatal(err)
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.SnapshotsWritten.Load() - base; got != 2 {
		t.Fatalf("4 flushes at cadence 2 wrote %d snapshots, want 2", got)
	}
	// All flushed state is snapshotted and no mutations are pending, so
	// the log must have rotated to empty.
	if st := v.Stats(); st.WALBytes != walHeaderSize {
		t.Fatalf("WAL not rotated: %d bytes", st.WALBytes)
	}
	// At most two snapshot files are retained.
	snaps, err := listSnapshots(filepath.Join(dir, "cc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("%d snapshot files retained, want <= 2", len(snaps))
	}
}

func TestRecoveryFallsBackToPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir, nil)
	cfg.SnapshotEveryFlushes = 1 // snapshot every flush
	v, err := OpenView("cc", CC(), chain(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mutate(InsertEdge(50, 51)); err != nil {
		t.Fatal(err)
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	v.Kill()

	// Corrupt the newest snapshot; its predecessor plus the WAL must
	// still recover... except the WAL rotated at the newest snapshot, so
	// the fallback cannot bridge the gap — recovery must fail loudly,
	// not silently lose the acknowledged edge.
	vdir := filepath.Join(dir, "cc")
	snaps, err := listSnapshots(vdir)
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want 2 snapshots, have %v (%v)", snaps, err)
	}
	newest := filepath.Join(vdir, snapshotName(snaps[0]))
	if err := os.Truncate(newest, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenView("cc", CC(), nil, cfg); err == nil {
		t.Fatal("recovery with an unbridgeable snapshot gap must fail")
	}

	// Removing the rotated log as well makes the previous snapshot
	// authoritative again: recovery succeeds with its (older) state. The
	// edge behind the two lost files is gone — fallback restores the
	// newest state that still exists, it cannot invent the rest.
	if err := os.Remove(filepath.Join(vdir, walFileName)); err != nil {
		t.Fatal(err)
	}
	v2, err := OpenView("cc", CC(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	mustComp(t, v2, 2, 0)
	if _, ok := v2.Query(51); ok {
		t.Fatal("vertex 51 resurrected from a snapshot that never held it")
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []Mutation{
		InsertWeightedEdge(1, 2, 0.5),
		DeleteEdge(3, 4),
		AddVertex(9),
		DeleteVertex(7),
	}
	back, err := recordsToMutations(mutationsToRecords(muts))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(muts) {
		t.Fatalf("%d mutations, want %d", len(back), len(muts))
	}
	for i := range muts {
		if back[i] != muts[i] {
			t.Fatalf("mutation %d: %+v != %+v", i, back[i], muts[i])
		}
	}
	if _, err := recordsToMutations(record.Batch{{Tag: 200}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestSchedulerRecoverRestoresViews(t *testing.T) {
	dir := t.TempDir()
	mkSched := func() *Scheduler {
		return NewScheduler(SchedulerConfig{
			DataDir:     dir,
			DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 2}},
		})
	}
	s := mkSched()
	if _, err := s.Create("social", CC(), chain(3), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("paths", SSSP(0), []Mutation{
		InsertWeightedEdge(0, 1, 2), InsertWeightedEdge(1, 2, 3),
	}, nil); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("social")
	if err := v.Mutate(InsertEdge(3, 30)); err != nil {
		t.Fatal(err)
	}
	// Hard-kill both views (no flush, no final snapshot), as a crashed
	// server would.
	for _, name := range s.Names() {
		vv, _ := s.Get(name)
		vv.Kill()
	}

	s2 := mkSched()
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n != 2 {
		t.Fatalf("recovered %d views, want 2", n)
	}
	social, ok := s2.Get("social")
	if !ok {
		t.Fatal("social view not recovered")
	}
	mustComp(t, social, 30, 0) // the unflushed insert survived via the WAL
	paths, ok := s2.Get("paths")
	if !ok {
		t.Fatal("paths view not recovered")
	}
	if r, ok := paths.Query(2); !ok || r.X != 5 {
		t.Fatalf("dist(2) after recovery = %v (ok=%v), want 5", r.X, ok)
	}

	// Dropping a durable view deletes its on-disk state: a third
	// scheduler must not resurrect it.
	if err := s2.Drop("social"); err != nil {
		t.Fatal(err)
	}
	s3 := mkSched()
	if n, err := s3.Recover(); err != nil || n != 1 {
		t.Fatalf("after drop: recovered %d views (%v), want 1", n, err)
	}
	s3.Close()
}

func TestSchedulerCreateClearsCrashedCreateLeftovers(t *testing.T) {
	dir := t.TempDir()
	s := NewScheduler(SchedulerConfig{
		DataDir:     dir,
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 1}},
	})
	// Simulate a create that crashed after writing its WAL (edges 0-1)
	// but before the meta.json commit marker.
	crashed, err := OpenView("v", CC(), []Mutation{InsertEdge(0, 1)},
		ViewConfig{Config: iterative.Config{Parallelism: 1}, Durable: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	crashed.Kill()
	// Recover must not resurrect it (nothing was acknowledged)...
	if n, err := s.Recover(); err != nil || n != 0 {
		t.Fatalf("recovered %d views (%v), want 0", n, err)
	}
	// ...and a fresh Create of the same name must serve *its* edges, not
	// the crashed attempt's.
	v, err := s.Create("v", CC(), []Mutation{InsertEdge(7, 8)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustComp(t, v, 8, 7)
	if _, ok := v.Query(0); ok {
		t.Fatal("crashed create's edge resurrected into the new view")
	}
}

func TestDurableRequiresDataDir(t *testing.T) {
	_, err := OpenView("x", CC(), nil, ViewConfig{Durable: true})
	if err == nil {
		t.Fatal("Durable without DataDir accepted")
	}
	_, err = OpenView("a/b", CC(), nil, ViewConfig{Durable: true, DataDir: t.TempDir()})
	if err == nil {
		t.Fatal("path separator in durable view name accepted")
	}
}
