package live

import (
	"repro/internal/algorithms"
	"repro/internal/iterative"
	"repro/internal/record"
)

// SolutionReader is read access to the resident solution set, as handed
// to maintainers. During a flush that includes deletions, affected-region
// entries are force-reset before insert deltas are built, so lookups
// never observe stale pre-deletion state.
type SolutionReader interface {
	// Lookup probes the solution by key.
	Lookup(k int64) (record.Record, bool)
	// Each visits every solution record (order unspecified).
	Each(f func(record.Record))
}

// Maintainer adapts one incremental fixpoint algorithm to streaming
// maintenance: it builds the Δ spec for the current graph, turns edge
// insertions into monotone workset candidates, and scopes the repair work
// a deletion needs.
type Maintainer interface {
	// Name identifies the algorithm ("cc", "sssp") in stats and the HTTP
	// API.
	Name() string
	// Spec assembles the incremental iteration (Δ, S0, W0) for the given
	// graph state. It is re-invoked after structural mutations; the
	// Source nodes it produces must appear in a deterministic order.
	Spec(gs *GraphState) (iterative.IncrementalSpec, []record.Record, []record.Record)
	// InsertDelta translates the inserted undirected edge (src, dst, w)
	// into workset candidates over the resident solution — the monotone
	// fast path. It must be safe for lookups to miss (new or reset
	// vertices).
	InsertDelta(src, dst int64, w float64, sol SolutionReader) []record.Record
	// VertexRecord is the solution entry a fresh isolated vertex starts
	// with; ok=false if the algorithm keeps no entry for it.
	VertexRecord(v int64) (record.Record, bool)
	// DeleteImpact scopes the repair of removing edge (src, dst): the
	// vertices whose entries may be invalidated (bounded recompute), or
	// ok=false to demand a full recompute. It runs before any solution
	// state changes, so lookups see consistent pre-batch values. gs
	// already reflects the deletion.
	DeleteImpact(gs *GraphState, src, dst int64, sol SolutionReader) (affected []int64, ok bool)
	// RecomputeSeed re-initializes the affected region: resets are
	// force-stored over the resident solution, drops are deleted from it,
	// and seed becomes the workset driving the bounded restart. gs is the
	// post-batch graph.
	RecomputeSeed(gs *GraphState, affected []int64) (resets, seed []record.Record, drops []int64)
}

// --- Connected Components -----------------------------------------------

// ccMaintainer maintains the incremental Connected Components fixpoint of
// Figure 5. Insertions are monotone (component ids only shrink under the
// min-label CPO); a deleted edge can split only the component containing
// it, so the bounded recompute re-labels exactly that component's members
// from identity and re-seeds candidates over its surviving edges.
type ccMaintainer struct{}

// CC returns the Connected Components maintainer.
func CC() Maintainer { return ccMaintainer{} }

func (ccMaintainer) Name() string { return "cc" }

func (ccMaintainer) Spec(gs *GraphState) (iterative.IncrementalSpec, []record.Record, []record.Record) {
	return algorithms.CCMaintenanceSpec(gs.Vertices(), gs.UndirectedRecords(), algorithms.CCCoGroup)
}

// cid reads a vertex's current component label, defaulting to its own id
// (fresh and reset vertices label themselves).
func cid(x int64, sol SolutionReader) int64 {
	if r, ok := sol.Lookup(x); ok {
		return r.B
	}
	return x
}

func (ccMaintainer) InsertDelta(src, dst int64, _ float64, sol SolutionReader) []record.Record {
	return []record.Record{
		{A: dst, B: cid(src, sol)},
		{A: src, B: cid(dst, sol)},
	}
}

func (ccMaintainer) VertexRecord(v int64) (record.Record, bool) {
	return record.Record{A: v, B: v}, true
}

func (ccMaintainer) DeleteImpact(_ *GraphState, src, _ int64, sol SolutionReader) ([]int64, bool) {
	// Both endpoints carried the same label (they were connected); every
	// vertex with that label is the candidate split region.
	c, ok := sol.Lookup(src)
	if !ok {
		return nil, true // vertex unknown to the solution: nothing to repair
	}
	var affected []int64
	sol.Each(func(r record.Record) {
		if r.B == c.B {
			affected = append(affected, r.A)
		}
	})
	return affected, true
}

func (ccMaintainer) RecomputeSeed(gs *GraphState, affected []int64) (resets, seed []record.Record, drops []int64) {
	in := make(map[int64]struct{}, len(affected))
	resets = make([]record.Record, len(affected))
	for i, v := range affected {
		in[v] = struct{}{}
		resets[i] = record.Record{A: v, B: v}
	}
	// Surviving edges with both endpoints in the region re-seed the
	// candidate propagation (UndirectedRecords carries both orientations).
	for _, e := range gs.UndirectedRecords() {
		if _, a := in[e.A]; !a {
			continue
		}
		if _, b := in[e.B]; !b {
			continue
		}
		seed = append(seed, record.Record{A: e.B, B: e.A})
	}
	return resets, seed, nil
}

// --- Single-source shortest paths ---------------------------------------

// ssspMaintainer maintains the incremental SSSP fixpoint. Insertions are
// monotone (distances only shrink); a deleted edge can lengthen any path
// that used it, and without shortest-path-tree bookkeeping the affected
// set is unknowable from the solution alone — deletions therefore take
// the full-recompute last resort.
type ssspMaintainer struct {
	source int64
}

// SSSP returns the shortest-paths maintainer rooted at source.
func SSSP(source int64) Maintainer { return ssspMaintainer{source: source} }

func (ssspMaintainer) Name() string { return "sssp" }

// Source returns the root vertex; the scheduler persists it in a durable
// view's metadata so recovery can rebuild the maintainer.
func (s ssspMaintainer) Source() int64 { return s.source }

func (s ssspMaintainer) Spec(gs *GraphState) (iterative.IncrementalSpec, []record.Record, []record.Record) {
	return algorithms.SSSPSpec(gs.WeightedUndirected(), s.source)
}

func (s ssspMaintainer) InsertDelta(src, dst int64, w float64, sol SolutionReader) []record.Record {
	var out []record.Record
	if d, ok := sol.Lookup(src); ok {
		out = append(out, record.Record{A: dst, X: d.X + w})
	}
	if d, ok := sol.Lookup(dst); ok {
		out = append(out, record.Record{A: src, X: d.X + w})
	}
	return out
}

func (ssspMaintainer) VertexRecord(int64) (record.Record, bool) {
	return record.Record{}, false // unreached vertices have no entry
}

func (ssspMaintainer) DeleteImpact(*GraphState, int64, int64, SolutionReader) ([]int64, bool) {
	return nil, false
}

func (ssspMaintainer) RecomputeSeed(*GraphState, []int64) ([]record.Record, []record.Record, []int64) {
	return nil, nil, nil
}
