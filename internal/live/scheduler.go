package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/record"
)

// ErrMemoryBudget is returned when creating a view would push the summed
// resident solution footprint past the scheduler's budget.
var ErrMemoryBudget = errors.New("live: scheduler memory budget exceeded")

// SchedulerConfig configures the concurrent view scheduler.
type SchedulerConfig struct {
	// MemoryBudget bounds the summed resident solution-set bytes across
	// all views (serialized-form estimate, the same accounting as
	// Config.SolutionMemoryBudget). Zero means unlimited. Admission is
	// enforced twice: an optimistic estimate before a view is built, and
	// the real footprint after its cold run — a view that lands over
	// budget is torn down again.
	MemoryBudget int64
	// DefaultView supplies defaults for views created without an explicit
	// config (the HTTP API's create endpoint).
	DefaultView ViewConfig
	// MaxRequestBytes bounds the HTTP request bodies the API decodes
	// (view creation edge lists, mutation batches); larger bodies get
	// 413. Zero means the 1 MiB default.
	MaxRequestBytes int64
}

// SchedulerStats aggregates the scheduler's state.
type SchedulerStats struct {
	Views        int
	MemoryBudget int64
	MemoryUsed   int64
	PerView      map[string]ViewStats
}

// Scheduler serves many named live views concurrently: view creation is
// admission-controlled against the memory budget, maintenance is
// serialized per view (by the view itself), and distinct views flush and
// answer queries fully in parallel.
type Scheduler struct {
	cfg SchedulerConfig

	mu    sync.RWMutex
	views map[string]*LiveView
}

// NewScheduler creates an empty scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	return &Scheduler{cfg: cfg, views: make(map[string]*LiveView)}
}

// Usage returns the summed resident solution bytes across views.
func (s *Scheduler) Usage() int64 {
	s.mu.RLock()
	views := make([]*LiveView, 0, len(s.views))
	for _, v := range s.views {
		if v != nil { // skip names reserved by in-flight creates
			views = append(views, v)
		}
	}
	s.mu.RUnlock()
	var total int64
	for _, v := range views {
		total += v.Bytes()
	}
	return total
}

// Create builds a named view, runs its cold fixpoint, and registers it.
// A nil cfg uses SchedulerConfig.DefaultView. The build runs outside the
// scheduler lock (other views keep serving); the name is reserved first
// so concurrent creates cannot race on it.
func (s *Scheduler) Create(name string, m Maintainer, initial []Mutation, cfg *ViewConfig) (*LiveView, error) {
	if name == "" {
		return nil, fmt.Errorf("live: view name must not be empty")
	}
	vcfg := s.cfg.DefaultView
	if cfg != nil {
		vcfg = *cfg
	}
	if err := vcfg.Validate(); err != nil {
		return nil, err
	}
	// Optimistic admission: each initial mutation contributes at most two
	// fresh solution entries (an edge's endpoints).
	if b := s.cfg.MemoryBudget; b > 0 {
		est := int64(len(initial)) * 2 * record.EncodedSize
		if s.Usage()+est > b {
			return nil, fmt.Errorf("%w: %d views use %d bytes, view %q estimated at %d, budget %d",
				ErrMemoryBudget, s.NumViews(), s.Usage(), name, est, b)
		}
	}

	s.mu.Lock()
	if _, dup := s.views[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("live: view %q already exists", name)
	}
	s.views[name] = nil // reserve the name while building
	s.mu.Unlock()

	v, err := NewView(name, m, initial, vcfg)
	if err != nil {
		s.drop(name)
		return nil, err
	}
	s.mu.Lock()
	s.views[name] = v
	s.mu.Unlock()

	// Post-build enforcement against the real footprint.
	if b := s.cfg.MemoryBudget; b > 0 && s.Usage() > b {
		used := s.Usage()
		s.drop(name)
		v.Close()
		return nil, fmt.Errorf("%w: view %q would bring usage to %d bytes, budget %d",
			ErrMemoryBudget, name, used, b)
	}
	return v, nil
}

// drop removes a name from the registry without closing the view.
func (s *Scheduler) drop(name string) {
	s.mu.Lock()
	delete(s.views, name)
	s.mu.Unlock()
}

// Get returns a view by name.
func (s *Scheduler) Get(name string) (*LiveView, bool) {
	s.mu.RLock()
	v, ok := s.views[name]
	s.mu.RUnlock()
	return v, ok && v != nil
}

// NumViews returns the number of registered views.
func (s *Scheduler) NumViews() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

// Names returns the registered view names in sorted order.
func (s *Scheduler) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.views))
	for n, v := range s.views {
		if v != nil {
			out = append(out, n)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Drop closes a view and removes it.
func (s *Scheduler) Drop(name string) error {
	v, ok := s.Get(name)
	if !ok {
		return fmt.Errorf("live: no view %q", name)
	}
	s.drop(name)
	return v.Close()
}

// Stats aggregates scheduler-wide and per-view counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{MemoryBudget: s.cfg.MemoryBudget, PerView: make(map[string]ViewStats)}
	for _, name := range s.Names() {
		if v, ok := s.Get(name); ok {
			vs := v.Stats()
			st.PerView[name] = vs
			st.MemoryUsed += vs.SolutionBytes
			st.Views++
		}
	}
	return st
}

// Close flushes and closes every view (pending mutations are applied, the
// sessions released, spill files removed). The first error is returned;
// all views are closed regardless.
func (s *Scheduler) Close() error {
	var first error
	for _, name := range s.Names() {
		if v, ok := s.Get(name); ok {
			s.drop(name)
			if err := v.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
