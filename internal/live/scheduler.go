package live

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iterative"
	"repro/internal/obs"
	"repro/internal/record"
)

// ErrMemoryBudget is returned when creating a view would push the summed
// resident solution footprint past the scheduler's budget.
var ErrMemoryBudget = errors.New("live: scheduler memory budget exceeded")

// SchedulerConfig configures the concurrent view scheduler.
type SchedulerConfig struct {
	// MemoryBudget bounds the summed resident solution-set bytes across
	// all views (serialized-form estimate, the same accounting as
	// Config.SolutionMemoryBudget). Zero means unlimited. Admission is
	// enforced twice: an optimistic estimate before a view is built, and
	// the real footprint after its cold run — a view that lands over
	// budget is torn down again.
	MemoryBudget int64
	// DefaultView supplies defaults for views created without an explicit
	// config (the HTTP API's create endpoint).
	DefaultView ViewConfig
	// MaxRequestBytes bounds the HTTP request bodies the API decodes
	// (view creation edge lists, mutation batches); larger bodies get
	// 413. Zero means the 1 MiB default.
	MaxRequestBytes int64
	// DataDir makes every view durable: each gets a write-ahead log and
	// snapshot directory under DataDir/<name>, plus a meta.json recording
	// how to rebuild its maintainer. Recover() restores the registered
	// views on startup. Empty means in-memory views.
	DataDir string
	// Log receives operational messages the API cannot report to the
	// client (e.g. a response-body write failing after the status line
	// went out). Nil uses the process-default logger.
	Log *log.Logger
	// Obs, if set, is the telemetry registry the scheduler exports
	// through: a collector emitting scheduler-wide and per-view gauges
	// (view="<name>" labels) is registered on it, and every view created
	// or recovered without its own registry inherits this one — so view
	// latency histograms, spans, and work counters all land in the same
	// /metrics plane.
	Obs *obs.Registry
}

// SchedulerStats aggregates the scheduler's state.
type SchedulerStats struct {
	Views        int
	MemoryBudget int64
	MemoryUsed   int64
	// EncodeErrors counts API responses whose JSON body failed to write
	// after the status line was sent (client gone mid-response).
	EncodeErrors int64
	PerView      map[string]ViewStats
}

// Scheduler serves many named live views concurrently: view creation is
// admission-controlled against the memory budget, maintenance is
// serialized per view (by the view itself), and distinct views flush and
// answer queries fully in parallel.
type Scheduler struct {
	cfg SchedulerConfig

	// encodeErrors counts response bodies the API failed to deliver.
	encodeErrors atomic.Int64

	mu    sync.RWMutex
	views map[string]*LiveView
}

// NewScheduler creates an empty scheduler. With SchedulerConfig.Obs set,
// it registers the stats collector and threads the registry (plus its
// shared work counters) into the default view config.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Obs != nil {
		if cfg.DefaultView.Obs == nil {
			cfg.DefaultView.Obs = cfg.Obs
		}
		if cfg.DefaultView.Metrics == nil {
			cfg.DefaultView.Metrics = cfg.Obs.Counters()
		}
	}
	s := &Scheduler{cfg: cfg, views: make(map[string]*LiveView)}
	if cfg.Obs != nil {
		cfg.Obs.RegisterCollector(s.collect)
	}
	return s
}

// collect emits the scheduler's stats as exporter gauges: the aggregate
// numbers unlabeled, the per-view ViewStats with a view="<name>" label.
// LastError, being a string, is exported as view_error 0/1 — the text
// itself is in the HTTP API's stats endpoint.
func (s *Scheduler) collect(emit func(name, labels string, value float64)) {
	st := s.Stats()
	emit("scheduler_views", "", float64(st.Views))
	emit("scheduler_memory_used_bytes", "", float64(st.MemoryUsed))
	emit("scheduler_memory_budget_bytes", "", float64(st.MemoryBudget))
	emit("scheduler_encode_errors", "", float64(st.EncodeErrors))
	names := make([]string, 0, len(st.PerView))
	for name := range st.PerView {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vs := st.PerView[name]
		l := fmt.Sprintf("view=%q", name)
		emit("view_vertices", l, float64(vs.Vertices))
		emit("view_edges", l, float64(vs.Edges))
		emit("view_solution_records", l, float64(vs.SolutionRecords))
		emit("view_solution_bytes", l, float64(vs.SolutionBytes))
		emit("view_mutations_pending", l, float64(vs.MutationsPending))
		emit("view_deltas_applied", l, float64(vs.DeltasApplied))
		emit("view_flushes", l, float64(vs.Flushes))
		emit("view_warm_restarts", l, float64(vs.WarmRestarts))
		emit("view_partial_recomputes", l, float64(vs.PartialRecomputes))
		emit("view_full_recomputes", l, float64(vs.FullRecomputes))
		emit("view_supersteps", l, float64(vs.Supersteps))
		emit("view_rebinds", l, float64(vs.Rebinds))
		emit("view_engine_switches", l, float64(vs.EngineSwitches))
		emit("view_wal_bytes", l, float64(vs.WALBytes))
		emit("view_snapshots_written", l, float64(vs.SnapshotsWritten))
		emit("view_recovered_frames", l, float64(vs.RecoveredFrames))
		for _, sh := range vs.Shards {
			sl := fmt.Sprintf("view=%q,host=\"%d\"", name, sh.Host)
			emit("view_shard_records", sl, float64(sh.Records))
			emit("view_shard_bytes", sl, float64(sh.Bytes))
		}
		errSet := 0.0
		if vs.LastError != "" {
			errSet = 1
		}
		emit("view_error", l, errSet)
	}
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Usage returns the summed resident solution bytes across views.
func (s *Scheduler) Usage() int64 {
	s.mu.RLock()
	views := make([]*LiveView, 0, len(s.views))
	for _, v := range s.views {
		if v != nil { // skip names reserved by in-flight creates
			views = append(views, v)
		}
	}
	s.mu.RUnlock()
	var total int64
	for _, v := range views {
		total += v.Bytes()
	}
	return total
}

// Create builds a named view, runs its cold fixpoint, and registers it.
// A nil cfg uses SchedulerConfig.DefaultView. The build runs outside the
// scheduler lock (other views keep serving); the name is reserved first
// so concurrent creates cannot race on it.
func (s *Scheduler) Create(name string, m Maintainer, initial []Mutation, cfg *ViewConfig) (*LiveView, error) {
	if name == "" {
		return nil, fmt.Errorf("live: view name must not be empty")
	}
	vcfg := s.cfg.DefaultView
	if cfg != nil {
		vcfg = *cfg
	}
	if s.cfg.Obs != nil && vcfg.Obs == nil {
		vcfg.Obs = s.cfg.Obs
		if vcfg.Metrics == nil {
			vcfg.Metrics = s.cfg.Obs.Counters()
		}
	}
	// A scheduler serving over workers shards every view by default; an
	// explicit per-view worker set still wins.
	if vcfg.Workers == nil {
		vcfg.Workers = s.cfg.DefaultView.Workers
	}
	if err := vcfg.Validate(); err != nil {
		return nil, err
	}
	// Optimistic admission: each initial mutation contributes at most two
	// fresh solution entries (an edge's endpoints).
	if b := s.cfg.MemoryBudget; b > 0 {
		est := int64(len(initial)) * 2 * record.EncodedSize
		if s.Usage()+est > b {
			return nil, fmt.Errorf("%w: %d views use %d bytes, view %q estimated at %d, budget %d",
				ErrMemoryBudget, s.NumViews(), s.Usage(), name, est, b)
		}
	}

	// A scheduler with a data directory serves durable views: the config
	// is routed through OpenView and the maintainer recipe is persisted
	// alongside the view's log so Recover can rebuild it.
	if s.cfg.DataDir != "" && !vcfg.Durable {
		vcfg.Durable = true
		vcfg.DataDir = s.cfg.DataDir
	}
	if vcfg.Durable {
		if err := validateViewName(name); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	if _, dup := s.views[name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("live: view %q already exists", name)
	}
	s.views[name] = nil // reserve the name while building
	s.mu.Unlock()

	if vcfg.Durable {
		// meta.json is the scheduler's create-commit marker (written
		// last, below). A directory holding a log or snapshot but no
		// meta is a create that crashed mid-way: nothing was ever
		// acknowledged, Recover skipped it, and silently "recovering" it
		// here would hand this caller a view built from the crashed
		// attempt's edges instead of `initial`. Clear it first.
		dir := filepath.Join(vcfg.DataDir, name)
		if _, err := os.Stat(filepath.Join(dir, metaFileName)); os.IsNotExist(err) {
			if rerr := os.RemoveAll(dir); rerr != nil {
				s.drop(name)
				return nil, rerr
			}
		}
	}

	v, err := OpenView(name, m, initial, vcfg)
	if err != nil {
		s.drop(name)
		return nil, err
	}
	if vcfg.Durable {
		if err := saveViewMeta(filepath.Join(vcfg.DataDir, name), m, vcfg); err != nil {
			s.drop(name)
			v.Kill()
			os.RemoveAll(filepath.Join(vcfg.DataDir, name))
			return nil, err
		}
	}
	s.mu.Lock()
	s.views[name] = v
	s.mu.Unlock()

	// Post-build enforcement against the real footprint.
	if b := s.cfg.MemoryBudget; b > 0 && s.Usage() > b {
		used := s.Usage()
		s.drop(name)
		v.Close()
		if vcfg.Durable {
			// Admission failed, so nothing was acknowledged; an orphaned
			// durable directory would resurrect the view on Recover.
			os.RemoveAll(filepath.Join(vcfg.DataDir, name))
		}
		return nil, fmt.Errorf("%w: view %q would bring usage to %d bytes, budget %d",
			ErrMemoryBudget, name, used, b)
	}
	return v, nil
}

// viewMeta is the durable recipe for rebuilding a view's maintainer and
// config on recovery, stored as meta.json next to the view's log.
type viewMeta struct {
	Algorithm            string `json:"algorithm"`
	Source               int64  `json:"source,omitempty"`
	Parallelism          int    `json:"parallelism,omitempty"`
	BatchSize            int    `json:"batch_size,omitempty"`
	FlushIntervalMS      int64  `json:"flush_interval_ms,omitempty"`
	SolutionMemoryBudget int64  `json:"solution_memory_budget,omitempty"`
	AutoEngine           bool   `json:"auto_engine,omitempty"`
}

const metaFileName = "meta.json"

func saveViewMeta(dir string, m Maintainer, cfg ViewConfig) error {
	meta := viewMeta{
		Algorithm:            m.Name(),
		Parallelism:          cfg.Parallelism,
		BatchSize:            cfg.BatchSize,
		FlushIntervalMS:      cfg.FlushInterval.Milliseconds(),
		SolutionMemoryBudget: cfg.SolutionMemoryBudget,
		AutoEngine:           cfg.AutoEngine,
	}
	if src, ok := m.(interface{ Source() int64 }); ok {
		meta.Source = src.Source()
	}
	return iterative.WriteFileDurable(filepath.Join(dir, metaFileName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(meta)
	})
}

// Recover reopens every durable view found under the scheduler's data
// directory: per view, the latest valid snapshot is loaded, the WAL tail
// is replayed, and the view is registered under its directory name. It
// returns the number of views recovered; on error, views recovered so
// far stay registered.
func (s *Scheduler) Recover() (int, error) {
	if s.cfg.DataDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := filepath.Join(s.cfg.DataDir, name)
		raw, err := os.ReadFile(filepath.Join(dir, metaFileName))
		if err != nil {
			if os.IsNotExist(err) {
				// No meta: either an unrelated directory or a create that
				// crashed before its commit marker. Only the latter holds
				// view state, and none of it was acknowledged — remove it
				// so a later Create of the same name starts fresh.
				if _, serr := os.Stat(filepath.Join(dir, walFileName)); serr == nil {
					os.RemoveAll(dir)
				}
				continue
			}
			return n, err
		}
		var meta viewMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			return n, fmt.Errorf("live: view %q meta: %w", name, err)
		}
		var m Maintainer
		switch meta.Algorithm {
		case "cc":
			m = CC()
		case "sssp":
			m = SSSP(meta.Source)
		default:
			return n, fmt.Errorf("live: view %q meta names unknown algorithm %q", name, meta.Algorithm)
		}
		cfg := s.cfg.DefaultView
		cfg.Durable = true
		cfg.DataDir = s.cfg.DataDir
		if meta.Parallelism != 0 {
			cfg.Parallelism = meta.Parallelism
		}
		if meta.BatchSize != 0 {
			cfg.BatchSize = meta.BatchSize
		}
		if meta.FlushIntervalMS != 0 {
			cfg.FlushInterval = time.Duration(meta.FlushIntervalMS) * time.Millisecond
		}
		if meta.SolutionMemoryBudget != 0 {
			cfg.SolutionMemoryBudget = meta.SolutionMemoryBudget
		}
		cfg.AutoEngine = meta.AutoEngine

		s.mu.Lock()
		if _, dup := s.views[name]; dup {
			s.mu.Unlock()
			return n, fmt.Errorf("live: view %q already registered", name)
		}
		s.views[name] = nil
		s.mu.Unlock()

		v, err := OpenView(name, m, nil, cfg)
		if err != nil {
			s.drop(name)
			return n, fmt.Errorf("live: recovering view %q: %w", name, err)
		}
		s.mu.Lock()
		s.views[name] = v
		s.mu.Unlock()
		n++
	}
	return n, nil
}

// drop removes a name from the registry without closing the view.
func (s *Scheduler) drop(name string) {
	s.mu.Lock()
	delete(s.views, name)
	s.mu.Unlock()
}

// Get returns a view by name.
func (s *Scheduler) Get(name string) (*LiveView, bool) {
	s.mu.RLock()
	v, ok := s.views[name]
	s.mu.RUnlock()
	return v, ok && v != nil
}

// NumViews returns the number of registered views.
func (s *Scheduler) NumViews() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.views)
}

// Names returns the registered view names in sorted order.
func (s *Scheduler) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.views))
	for n, v := range s.views {
		if v != nil {
			out = append(out, n)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Drop closes a view and removes it. A durable view's on-disk state is
// deleted with it — an explicit drop is a deletion, not a shutdown, and
// must not resurrect on the next Recover. (Scheduler.Close, by contrast,
// leaves durable state in place.)
func (s *Scheduler) Drop(name string) error {
	v, ok := s.Get(name)
	if !ok {
		return fmt.Errorf("live: no view %q", name)
	}
	s.drop(name)
	err := v.Close()
	if d := v.dur; d != nil {
		if rerr := os.RemoveAll(d.dir); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Stats aggregates scheduler-wide and per-view counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		MemoryBudget: s.cfg.MemoryBudget,
		EncodeErrors: s.encodeErrors.Load(),
		PerView:      make(map[string]ViewStats),
	}
	for _, name := range s.Names() {
		if v, ok := s.Get(name); ok {
			vs := v.Stats()
			st.PerView[name] = vs
			st.MemoryUsed += vs.SolutionBytes
			st.Views++
		}
	}
	return st
}

// Close flushes and closes every view (pending mutations are applied, the
// sessions released, spill files removed). The first error is returned;
// all views are closed regardless.
func (s *Scheduler) Close() error {
	var first error
	for _, name := range s.Names() {
		if v, ok := s.Get(name); ok {
			s.drop(name)
			if err := v.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
