package live

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/record"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServeHTTPAPI drives the full view lifecycle over HTTP: create,
// mutate, flush, query, stats, drop.
func TestServeHTTPAPI(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 2}}})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Create a CC view over a triangle plus an isolated pair.
	resp := postJSON(t, srv.URL+"/views", CreateRequest{
		Name:      "g",
		Algorithm: "cc",
		Edges: []EdgeJSON{
			{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
			{Src: 10, Dst: 11},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s", resp.Status)
	}
	st := decodeJSON[ViewStats](t, resp)
	if st.SolutionRecords != 5 {
		t.Fatalf("created view has %d records, want 5", st.SolutionRecords)
	}

	// Query: vertex 11 belongs to component 10.
	q := decodeJSON[QueryResponse](t, mustGet(t, srv.URL+"/views/g/query?key=11"))
	if !q.Found || q.B != 10 {
		t.Fatalf("query(11) = %+v, want component 10", q)
	}

	// Stream a mutation joining the two components, flush, re-query.
	resp = postJSON(t, srv.URL+"/views/g/mutations", []MutationJSON{
		{Op: "insert-edge", Src: 2, Dst: 10},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mutations: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, srv.URL+"/views/g/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}
	st = decodeJSON[ViewStats](t, resp)
	if st.DeltasApplied != 1 || st.WarmRestarts != 1 {
		t.Fatalf("flush stats: %+v", st)
	}
	q = decodeJSON[QueryResponse](t, mustGet(t, srv.URL+"/views/g/query?key=11"))
	if !q.Found || q.B != 0 {
		t.Fatalf("post-merge query(11) = %+v, want component 0", q)
	}

	// Missing view and bad payloads.
	if resp := mustGet(t, srv.URL+"/views/nope/stats"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing view: %s", resp.Status)
	}
	if resp := postJSON(t, srv.URL+"/views/g/mutations", []MutationJSON{{Op: "explode"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad op: %s", resp.Status)
	}
	if resp := postJSON(t, srv.URL+"/views", CreateRequest{Name: "x", Algorithm: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad algorithm: %s", resp.Status)
	}

	// Scheduler stats and drop.
	stats := decodeJSON[SchedulerStats](t, mustGet(t, srv.URL+"/stats"))
	if stats.Views != 1 {
		t.Errorf("scheduler stats: %+v", stats)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/views/g", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("delete: %s", dresp.Status)
	}
	if s.NumViews() != 0 {
		t.Errorf("view survived DELETE: %d", s.NumViews())
	}
}

// TestServeBodyLimit posts an oversized mutation batch: the handler must
// answer 413 with the standard error JSON instead of decoding an
// unbounded body, and the view must stay usable.
func TestServeBodyLimit(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		DefaultView:     ViewConfig{Config: iterative.Config{Parallelism: 2}},
		MaxRequestBytes: 4 << 10,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/views", CreateRequest{
		Name: "g", Algorithm: "cc", Edges: []EdgeJSON{{Src: 0, Dst: 1}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s", resp.Status)
	}
	resp.Body.Close()

	// ~50 bytes per mutation: 1000 of them blow the 4 KiB limit.
	big := make([]MutationJSON, 1000)
	for i := range big {
		big[i] = MutationJSON{Op: "insert-edge", Src: int64(i), Dst: int64(i + 1)}
	}
	resp = postJSON(t, srv.URL+"/views/g/mutations", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %s, want 413", resp.Status)
	}
	errBody := decodeJSON[map[string]string](t, resp)
	if errBody["error"] == "" {
		t.Errorf("413 response missing standard error JSON: %v", errBody)
	}

	// An oversized create body gets the same treatment.
	edges := make([]EdgeJSON, 1000)
	for i := range edges {
		edges[i] = EdgeJSON{Src: int64(i), Dst: int64(i + 1)}
	}
	resp = postJSON(t, srv.URL+"/views", CreateRequest{Name: "big", Algorithm: "cc", Edges: edges})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized create: %s, want 413", resp.Status)
	}
	resp.Body.Close()

	// The rejected batch left no partial state; a small one still works.
	resp = postJSON(t, srv.URL+"/views/g/mutations", []MutationJSON{{Op: "insert-edge", Src: 1, Dst: 2}})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("small batch after 413: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestServeAutoAlgorithm creates an algorithm=auto view: maintenance works
// like a cc view, and a deletion-driven full recompute goes through the
// adaptive runner.
func TestServeAutoAlgorithm(t *testing.T) {
	var m metrics.Counters
	s := NewScheduler(SchedulerConfig{
		DefaultView: ViewConfig{Config: iterative.Config{Parallelism: 2, Metrics: &m}}})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/views", CreateRequest{
		Name: "g", Algorithm: "auto",
		Edges: []EdgeJSON{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s", resp.Status)
	}
	resp.Body.Close()

	// Deleting a chain edge splits the component: the affected region is
	// the whole view, forcing the full-recompute path — which auto views
	// route through RunAuto.
	resp = postJSON(t, srv.URL+"/views/g/mutations", []MutationJSON{
		{Op: "delete-edge", Src: 1, Dst: 2},
	})
	resp.Body.Close()
	resp = postJSON(t, srv.URL+"/views/g/flush", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %s", resp.Status)
	}
	st := decodeJSON[ViewStats](t, resp)
	if st.FullRecomputes != 1 {
		t.Fatalf("FullRecomputes = %d, want 1 (stats %+v)", st.FullRecomputes, st)
	}
	q := decodeJSON[QueryResponse](t, mustGet(t, srv.URL+"/views/g/query?key=3"))
	if !q.Found || q.B != 2 {
		t.Fatalf("post-split query(3) = %+v, want component 2", q)
	}
	q = decodeJSON[QueryResponse](t, mustGet(t, srv.URL+"/views/g/query?key=1"))
	if !q.Found || q.B != 0 {
		t.Fatalf("post-split query(1) = %+v, want component 0", q)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// spillFiles lists the runtime's spill files in the temp dir.
func spillFiles(t *testing.T) map[string]bool {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "spinflow-spill-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, len(matches))
	for _, m := range matches {
		out[m] = true
	}
	return out
}

// TestServeShutdownClean is the `spinflow serve` SIGINT contract, tested
// through the same stop-channel path the command wires a signal into:
// on shutdown, pending mutations are flushed, the solution state
// (including spill files of budgeted views) is released, and the listener
// stops accepting connections.
func TestServeShutdownClean(t *testing.T) {
	before := spillFiles(t)

	var m metrics.Counters
	s := NewScheduler(SchedulerConfig{
		DefaultView: ViewConfig{
			Config: iterative.Config{
				Parallelism: 4,
				Metrics:     &m,
				// A budget far below the view's footprint forces spilling.
				SolutionMemoryBudget: 8 * record.EncodedSize,
			},
			BatchSize: 1 << 20, // flushes must come from shutdown, not size
		}})

	stop := make(chan struct{})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- Serve("127.0.0.1:0", s, stop, ready) }()
	addr := (<-ready).String()
	base := "http://" + addr

	resp := postJSON(t, base+"/views", CreateRequest{
		Name: "g", Algorithm: "cc",
		Edges: func() []EdgeJSON {
			var es []EdgeJSON
			for i := int64(0); i < 64; i++ {
				es = append(es, EdgeJSON{Src: i, Dst: i + 1})
			}
			return es
		}(),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s", resp.Status)
	}
	resp.Body.Close()
	if m.SolutionSpills.Load() == 0 {
		t.Fatal("budgeted view did not spill; shutdown test needs spill files")
	}

	// Queue a mutation but do not flush: shutdown must apply it.
	resp = postJSON(t, base+"/views/g/mutations", []MutationJSON{
		{Op: "insert-edge", Src: 100, Dst: 101},
	})
	resp.Body.Close()
	applied := m.DeltasApplied.Load()

	close(stop) // the command sends SIGINT through exactly this channel
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}

	// Views were flushed before closing.
	if got := m.DeltasApplied.Load(); got != applied+1 {
		t.Errorf("pending mutation not flushed on shutdown: DeltasApplied %d -> %d", applied, got)
	}
	// Spill files are gone (only ones that existed before the test may
	// remain — other tests' leftovers are not ours to assert on).
	for f := range spillFiles(t) {
		if !before[f] {
			t.Errorf("spill file %s survived shutdown", f)
		}
	}
	// The listener is down.
	if _, err := http.Get(base + "/stats"); err == nil {
		t.Error("server still serving after shutdown")
	}
	// And the scheduler is empty.
	if s.NumViews() != 0 {
		t.Errorf("%d views survived shutdown", s.NumViews())
	}
}

// failingWriter is a ResponseWriter whose body writes fail — the shape of
// a client dropping the connection after the status line went out.
type failingWriter struct {
	hdr  http.Header
	code int
}

func (f *failingWriter) Header() http.Header {
	if f.hdr == nil {
		f.hdr = make(http.Header)
	}
	return f.hdr
}
func (f *failingWriter) WriteHeader(code int)      { f.code = code }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// A response-encode failure must not vanish: it is logged and counted in
// the scheduler stats (the bug was writeJSON discarding Encode's error).
func TestServeEncodeErrorSurfaced(t *testing.T) {
	var logBuf bytes.Buffer
	s := NewScheduler(SchedulerConfig{Log: log.New(&logBuf, "", 0)})
	defer s.Close()

	fw := &failingWriter{}
	s.writeJSON(fw, http.StatusOK, map[string]string{"hello": "world"})

	if fw.code != http.StatusOK {
		t.Errorf("status = %d, want 200 (header must still go out)", fw.code)
	}
	if got := s.Stats().EncodeErrors; got != 1 {
		t.Errorf("EncodeErrors = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "client gone") {
		t.Errorf("encode error not logged: %q", logBuf.String())
	}

	// The counter accumulates across requests — writeErr shares the path.
	s.writeErr(fw, http.StatusBadRequest, errors.New("boom"))
	if got := s.Stats().EncodeErrors; got != 2 {
		t.Errorf("EncodeErrors after second failure = %d, want 2", got)
	}

	// A healthy writer leaves the counter alone.
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]string{"ok": "yes"})
	if got := s.Stats().EncodeErrors; got != 2 {
		t.Errorf("EncodeErrors after healthy write = %d, want 2", got)
	}
}
