package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/iterative"
	"repro/internal/obs"
	"repro/internal/record"
)

// Durability for live views (§4.2 applied to the serving layer): a
// converged fixpoint under streaming mutations is exactly the "logged
// loop state" the paper's recovery discussion wants — so the serving
// layer logs it. Three pieces cooperate:
//
//   - a per-view write-ahead log: every Mutate call appends its batch as
//     one CRC32 frame (record.AppendFrame) and fsyncs *before* the call
//     returns, so an acknowledged mutation survives a crash;
//   - periodic streaming snapshots: every SnapshotEveryFlushes flushes
//     (or SnapshotEveryBytes of log growth) the graph and the resident
//     solution set are written through the iterative.CheckpointWriter,
//     partition by partition via runtime.SolutionSet.EachPartition — a
//     snapshot never materializes the full solution in memory;
//   - recovery on OpenView: the latest valid snapshot is loaded (falling
//     back to the previous one if the newest is unreadable), the WAL tail
//     beyond it is replayed through the ordinary maintenance path, torn
//     tails are truncated at the last valid frame, and the log is rotated
//     behind a fresh snapshot.
//
// On disk, a durable view owns DataDir/<name>/:
//
//	wal.log                  header (magic, version, baseSeq) + frames
//	snapshot-<seq>.snap      checkpoint-format file covering WAL frames 1..seq
//
// Frame seq numbers are absolute and monotone across rotations: the log
// header's baseSeq is the seq of the frame *preceding* the first frame in
// the file, so a rotated log (baseSeq = snapshot seq, no frames) and its
// snapshot tile the history exactly.

const (
	walFileName   = "wal.log"
	walMagic      = uint32(0x4c415753) // "SWAL"
	walVersion    = uint32(1)
	walHeaderSize = 16

	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".snap"
	// snapshotKindPrefix tags snapshot files with the maintainer that
	// wrote them, so recovery with the wrong algorithm fails loudly.
	snapshotKindPrefix = "live:"
	// Sharded views split a snapshot across files: the base file (kind
	// live-sharded:) carries the graph, the coordinator-hosted partitions,
	// and the host count; each worker's hosted partitions land in a
	// .shard<h> sibling (kind live-shard:). The base file is written last,
	// so a seq that lists is a seq whose shards are all on disk.
	snapshotShardedKindPrefix = "live-sharded:"
	snapshotShardKindPrefix   = "live-shard:"
)

var errWALClosed = errors.New("live: wal is closed")

// --- mutation codec ------------------------------------------------------

// mutationsToRecords packs a mutation batch into the record model the WAL
// frames carry: A=Src, B=Dst, X=Weight, Tag=Op.
func mutationsToRecords(muts []Mutation) record.Batch {
	out := make(record.Batch, len(muts))
	for i, m := range muts {
		out[i] = record.Record{A: m.Src, B: m.Dst, X: m.Weight, Tag: uint8(m.Op)}
	}
	return out
}

// recordsToMutations unpacks a WAL frame, rejecting unknown ops (a frame
// with a valid checksum but an impossible tag is corruption, not input).
func recordsToMutations(b record.Batch) ([]Mutation, error) {
	out := make([]Mutation, len(b))
	for i, r := range b {
		op := Op(r.Tag)
		if op < OpInsertEdge || op > OpDeleteVertex {
			return nil, fmt.Errorf("live: wal frame carries unknown op %d", r.Tag)
		}
		out[i] = Mutation{Op: op, Src: r.A, Dst: r.B, Weight: r.X}
	}
	return out, nil
}

// --- write-ahead log -----------------------------------------------------

// wal is one view's append-only mutation log. All methods are safe for
// concurrent use; appends additionally serialize with the view's pending
// lock (the caller), so frame order matches micro-batch order exactly.
type wal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	base uint64 // seq of the frame preceding the first frame in the file
	seq  uint64 // seq of the last appended/validated frame
	size int64  // current file size
	buf  []byte // reusable frame-encode buffer
	err  error  // sticky failure: a log that failed a write stops accepting
}

func walHeader(base uint64) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], base)
	return hdr[:]
}

// createWAL durably creates a fresh log whose frames will start at
// base+1.
func createWAL(path string, base uint64) (*wal, error) {
	if err := iterative.WriteFileDurable(path, func(w io.Writer) error {
		_, err := w.Write(walHeader(base))
		return err
	}); err != nil {
		return nil, fmt.Errorf("live: creating wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{path: path, f: f, base: base, seq: base, size: walHeaderSize}, nil
}

// scanWAL validates an existing log: every intact frame invokes replay
// (in seq order); the first torn or corrupt frame truncates the file at
// the end of the valid prefix. A replay error aborts the scan.
func scanWAL(path string, replay func(seq uint64, b record.Batch) error) (base, seq uint64, size int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("live: wal header truncated: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != walMagic {
		return 0, 0, 0, fmt.Errorf("live: not a wal (magic %#x)", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != walVersion {
		return 0, 0, 0, fmt.Errorf("live: unsupported wal version %d", v)
	}
	base = binary.LittleEndian.Uint64(hdr[8:16])
	seq = base
	fr := record.NewFrameReader(f)
	torn := false
	for {
		b, ferr := fr.Next()
		if ferr == io.EOF {
			break
		}
		if errors.Is(ferr, record.ErrCorruptFrame) {
			torn = true
			break
		}
		if ferr != nil {
			return 0, 0, 0, ferr
		}
		seq++
		if replay != nil {
			if err := replay(seq, b); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	size = walHeaderSize + fr.ValidOffset()
	if torn {
		if err := f.Truncate(size); err != nil {
			return 0, 0, 0, fmt.Errorf("live: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return 0, 0, 0, err
		}
	}
	return base, seq, size, nil
}

// openWAL scans an existing log (replaying valid frames, truncating any
// torn tail) and reopens it for appends.
func openWAL(path string, replay func(seq uint64, b record.Batch) error) (*wal, error) {
	base, seq, size, err := scanWAL(path, replay)
	if err != nil {
		return nil, err
	}
	return openScannedWAL(path, base, seq, size)
}

// openScannedWAL opens a log for appends using the bookkeeping an
// earlier scanWAL already produced, skipping a second validation pass.
func openScannedWAL(path string, base, seq uint64, size int64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{path: path, f: f, base: base, seq: seq, size: size}, nil
}

// Append durably logs one mutation batch: the frame is written and
// fsynced before the new seq is returned. After a write or sync failure
// the log is poisoned — the file may hold a partial frame, so accepting
// further appends would bury valid frames behind garbage.
func (w *wal) Append(b record.Batch) (seq uint64, n int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, 0, w.err
	}
	w.buf = record.AppendFrame(w.buf[:0], b)
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = err
		return 0, 0, err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return 0, 0, err
	}
	w.seq++
	w.size += int64(len(w.buf))
	return w.seq, len(w.buf), nil
}

// Seq returns the seq of the last durably appended frame.
func (w *wal) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// SizeBytes returns the log's current size.
func (w *wal) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Rotate starts a fresh log once every appended frame is covered by the
// snapshot at upTo. If frames beyond upTo exist (mutations acknowledged
// while the snapshot was being written), rotation is skipped — the next
// snapshot will catch up. The fresh header is written durably through
// the same helper checkpoint saves use.
func (w *wal) Rotate(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.seq != upTo {
		return nil
	}
	if w.base == upTo && w.size == walHeaderSize {
		return nil // already fresh
	}
	// The fresh header is renamed over the path while the old descriptor
	// is still open: a failure here leaves the old log intact and
	// appendable — rotation failing transiently (ENOSPC on the temp
	// file, say) must not poison a healthy log.
	if err := iterative.WriteFileDurable(w.path, func(wr io.Writer) error {
		_, err := wr.Write(walHeader(upTo))
		return err
	}); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The path now names the fresh log but it cannot be opened; the
		// old descriptor points at the unlinked file, so appends would be
		// silently lost — poison.
		w.err = err
		w.f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.base = upTo
	w.size = walHeaderSize
	return nil
}

// Close stops the log; later appends fail.
func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	w.err = errWALClosed
	return err
}

// --- snapshots -----------------------------------------------------------

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapshotPrefix, seq, snapshotSuffix)
}

// shardSnapshotName names host h's partition file of the sharded snapshot
// at seq. listSnapshots skips these (the embedded ".shard<h>" fails the
// seq parse), so only complete base files name recovery points.
func shardSnapshotName(seq uint64, host int) string {
	return fmt.Sprintf("%s%020d.shard%d%s", snapshotPrefix, seq, host, snapshotSuffix)
}

// listSnapshots returns the seqs of the directory's snapshot files in
// descending order (newest first).
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		s, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// pruneSnapshots deletes all snapshots older than the newest two: the one
// just written plus its predecessor, kept as the fallback recovery reads
// when the newest proves unreadable. Shard files are pruned with their
// base file by seq.
func pruneSnapshots(dir string) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return
	}
	keep := make(map[uint64]bool, 2)
	for _, s := range seqs[:min(2, len(seqs))] {
		keep[s] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix)
		seqStr, _, _ := strings.Cut(body, ".")
		s, perr := strconv.ParseUint(seqStr, 10, 64)
		if perr != nil || keep[s] {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// writeSnapshotTo streams the view's durable base state — graph
// vertices, graph edges, and this process's resident solution records —
// in checkpoint format. The solution section is streamed through
// SessionProvider.EachSolution: peak memory is one frame plus the
// writer's buffer, never a second copy of the solution (spilled
// partitions stream from disk to disk). For a sharded view (workerShards
// > 0) the kind switches to live-sharded:, the solution section holds
// only the coordinator-hosted partitions, and a trailing meta section
// records the host count so recovery knows which shard files to demand.
func (v *LiveView) writeSnapshotTo(w io.Writer, seq uint64, workerShards int) error {
	kind := snapshotKindPrefix + v.m.Name()
	if workerShards > 0 {
		kind = snapshotShardedKindPrefix + v.m.Name()
	}
	cw, err := iterative.NewCheckpointWriter(w, kind, seq)
	if err != nil {
		return err
	}
	for _, vid := range v.gs.Vertices() {
		if err := cw.Append(record.Record{A: vid}); err != nil {
			return err
		}
	}
	if err := cw.EndSection(); err != nil {
		return err
	}
	for _, e := range v.gs.edges {
		if err := cw.Append(record.Record{A: e.Src, B: e.Dst, X: e.Weight}); err != nil {
			return err
		}
	}
	if err := cw.EndSection(); err != nil {
		return err
	}
	if err := v.sess.EachSolution(cw.Append); err != nil {
		return err
	}
	if err := cw.EndSection(); err != nil {
		return err
	}
	if workerShards > 0 {
		if err := cw.Append(record.Record{A: int64(1 + workerShards)}); err != nil {
			return err
		}
		if err := cw.EndSection(); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// writeShardTo writes one worker host's hosted partitions as a
// single-section checkpoint file.
func writeShardTo(w io.Writer, kind string, seq uint64, recs []record.Record) error {
	cw, err := iterative.NewCheckpointWriter(w, kind, seq)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := cw.Append(r); err != nil {
			return err
		}
	}
	if err := cw.EndSection(); err != nil {
		return err
	}
	return cw.Flush()
}

// snapshotLocked persists a snapshot covering WAL frames 1..flushedSeq,
// prunes obsolete snapshots, and rotates the log when possible. Caller
// holds the maintenance lock, so the solution set is converged. A
// sharded view's snapshot is a file family: each worker's hosted
// partitions are pulled over the session and written as shard files
// *before* the base file — the base names the recovery point, so a crash
// mid-snapshot never leaves a listed seq with a missing shard.
func (v *LiveView) snapshotLocked() error {
	snapStart := time.Now()
	d := v.dur
	seq := d.flushedSeq
	shards, err := v.sess.RemoteShards()
	if err != nil {
		return fmt.Errorf("live: view %q shard collect: %w", v.name, err)
	}
	hostIDs := make([]int, 0, len(shards))
	for h := range shards {
		hostIDs = append(hostIDs, h)
	}
	sort.Ints(hostIDs)
	for _, h := range hostIDs {
		recs, err := framesToRecords(shards[h])
		if err != nil {
			return fmt.Errorf("live: view %q shard %d payload: %w", v.name, h, err)
		}
		path := filepath.Join(d.dir, shardSnapshotName(seq, h))
		if err := iterative.WriteFileDurable(path, func(w io.Writer) error {
			return writeShardTo(w, snapshotShardKindPrefix+v.m.Name(), seq, recs)
		}); err != nil {
			return fmt.Errorf("live: view %q shard %d snapshot: %w", v.name, h, err)
		}
	}
	path := filepath.Join(d.dir, snapshotName(seq))
	if err := iterative.WriteFileDurable(path, func(w io.Writer) error {
		return v.writeSnapshotTo(w, seq, len(shards))
	}); err != nil {
		return fmt.Errorf("live: view %q snapshot: %w", v.name, err)
	}
	d.snapSeq = seq
	d.flushesSinceSnap = 0
	d.snapshots++
	d.hasSnapshot = true
	if m := v.cfg.Metrics; m != nil {
		m.SnapshotsWritten.Add(1)
	}
	pruneSnapshots(d.dir)
	if err := d.wal.Rotate(seq); err != nil {
		return err
	}
	d.walBytesAtSnap = d.wal.SizeBytes()
	if v.ring != nil {
		v.snapHist.ObserveSince(snapStart)
		v.span(obs.PhaseSnapshot, snapStart)
	}
	return nil
}

// loadSnapshot streams one snapshot file back: the graph sections are
// applied to a fresh GraphState, the maintainer's spec is opened over it,
// and the solution section is bulk-loaded frame by frame — mirroring the
// writer, the full solution is never materialized outside the set itself.
func loadSnapshot(path string, m Maintainer, cfg ViewConfig) (gs *GraphState, fx *iterative.Fixpoint, spec iterative.IncrementalSpec, seq uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, spec, 0, err
	}
	defer f.Close()
	cr, err := iterative.NewCheckpointReader(f)
	if err != nil {
		return nil, nil, spec, 0, err
	}
	if want := snapshotKindPrefix + m.Name(); cr.Kind() != want {
		return nil, nil, spec, 0, fmt.Errorf("live: snapshot kind %q, view wants %q", cr.Kind(), want)
	}
	seq = cr.Iteration()
	gs = NewGraphState()
	if err := cr.ReadSection(func(b record.Batch) error {
		for _, r := range b {
			gs.AddVertex(r.A)
		}
		return nil
	}); err != nil {
		return nil, nil, spec, 0, fmt.Errorf("live: snapshot vertices: %w", err)
	}
	if err := cr.ReadSection(func(b record.Batch) error {
		for _, r := range b {
			gs.AddEdge(r.A, r.B, r.X)
		}
		return nil
	}); err != nil {
		return nil, nil, spec, 0, fmt.Errorf("live: snapshot edges: %w", err)
	}
	spec, _, _ = m.Spec(gs)
	fx, err = iterative.OpenFixpoint(spec, nil, cfg.Config)
	if err != nil {
		return nil, nil, spec, 0, err
	}
	if err := cr.ReadSection(func(b record.Batch) error {
		fx.Solution().Init(b)
		return nil
	}); err != nil {
		fx.Close()
		return nil, nil, spec, 0, fmt.Errorf("live: snapshot solution: %w", err)
	}
	if err := cr.ReadSection(func(record.Batch) error { return nil }); err != io.EOF {
		fx.Close()
		return nil, nil, spec, 0, fmt.Errorf("live: trailing data after snapshot solution")
	}
	return gs, fx, spec, seq, nil
}

// loadSnapshotRecords loads a snapshot of either format — plain (live:)
// or sharded (live-sharded: base plus its .shard<h> siblings) — into the
// graph and the full materialized solution record set. This is the
// topology-independent loader: the records re-partition under whatever
// session the recovering view opens, so worker counts may change across
// restarts. Any missing or mismatched shard file fails the whole seq, and
// the caller falls back to an older snapshot.
func loadSnapshotRecords(dir string, seq uint64, m Maintainer) (*GraphState, []record.Record, error) {
	f, err := os.Open(filepath.Join(dir, snapshotName(seq)))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	cr, err := iterative.NewCheckpointReader(f)
	if err != nil {
		return nil, nil, err
	}
	var sharded bool
	switch cr.Kind() {
	case snapshotKindPrefix + m.Name():
	case snapshotShardedKindPrefix + m.Name():
		sharded = true
	default:
		return nil, nil, fmt.Errorf("live: snapshot kind %q, view wants %q", cr.Kind(), m.Name())
	}
	gs := NewGraphState()
	if err := cr.ReadSection(func(b record.Batch) error {
		for _, r := range b {
			gs.AddVertex(r.A)
		}
		return nil
	}); err != nil {
		return nil, nil, fmt.Errorf("live: snapshot vertices: %w", err)
	}
	if err := cr.ReadSection(func(b record.Batch) error {
		for _, r := range b {
			gs.AddEdge(r.A, r.B, r.X)
		}
		return nil
	}); err != nil {
		return nil, nil, fmt.Errorf("live: snapshot edges: %w", err)
	}
	recs := []record.Record{} // non-nil: an empty solution still recovers
	if err := cr.ReadSection(func(b record.Batch) error {
		recs = append(recs, b...)
		return nil
	}); err != nil {
		return nil, nil, fmt.Errorf("live: snapshot solution: %w", err)
	}
	hosts := 1
	if sharded {
		var meta []record.Record
		if err := cr.ReadSection(func(b record.Batch) error {
			meta = append(meta, b...)
			return nil
		}); err != nil {
			return nil, nil, fmt.Errorf("live: snapshot shard meta: %w", err)
		}
		if len(meta) != 1 || meta[0].A < 1 {
			return nil, nil, fmt.Errorf("live: malformed snapshot shard meta")
		}
		hosts = int(meta[0].A)
	}
	if err := cr.ReadSection(func(record.Batch) error { return nil }); err != io.EOF {
		return nil, nil, fmt.Errorf("live: trailing data after snapshot")
	}
	for h := 1; h < hosts; h++ {
		shard, err := readShardFile(filepath.Join(dir, shardSnapshotName(seq, h)), snapshotShardKindPrefix+m.Name(), seq)
		if err != nil {
			return nil, nil, fmt.Errorf("live: snapshot shard %d: %w", h, err)
		}
		recs = append(recs, shard...)
	}
	return gs, recs, nil
}

// readShardFile loads one worker host's hosted partitions back out of its
// shard file, validating the kind and covered seq.
func readShardFile(path, wantKind string, seq uint64) ([]record.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr, err := iterative.NewCheckpointReader(f)
	if err != nil {
		return nil, err
	}
	if cr.Kind() != wantKind {
		return nil, fmt.Errorf("live: shard kind %q, want %q", cr.Kind(), wantKind)
	}
	if cr.Iteration() != seq {
		return nil, fmt.Errorf("live: shard covers seq %d, base snapshot %d", cr.Iteration(), seq)
	}
	var recs []record.Record
	if err := cr.ReadSection(func(b record.Batch) error {
		recs = append(recs, b...)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := cr.ReadSection(func(record.Batch) error { return nil }); err != io.EOF {
		return nil, fmt.Errorf("live: trailing data after shard records")
	}
	return recs, nil
}

// --- open / create / recover --------------------------------------------

// validateViewName restricts durable view names to filesystem-safe
// tokens, since each names a directory under DataDir.
func validateViewName(name string) error {
	if name == "" {
		return fmt.Errorf("live: view name must not be empty")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("live: durable view name %q may only contain [A-Za-z0-9._-]", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("live: durable view name %q is reserved", name)
	}
	return nil
}

// OpenView builds or recovers a view. Without ViewConfig.Durable it is
// NewView. With durability, the view owns DataDir/<name>: when that
// directory already holds a log or snapshot, the view is *recovered* —
// the latest valid snapshot is loaded, the WAL tail beyond it is
// replayed through the ordinary maintenance path, torn tails are
// truncated at the last valid frame, and the log is rotated behind a
// fresh snapshot; `initial` is ignored (the durable history wins).
// Otherwise the view is created fresh: the initial mutations become the
// log's first frame, the cold fixpoint runs, and a base snapshot is
// written, so a crash at any later point recovers every acknowledged
// mutation.
func OpenView(name string, m Maintainer, initial []Mutation, cfg ViewConfig) (*LiveView, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized().withObsDefaults(name)
	if !cfg.Durable {
		return newViewCore(name, m, initial, cfg)
	}
	if err := validateViewName(name); err != nil {
		return nil, err
	}
	dir := filepath.Join(cfg.DataDir, name)
	walPath := filepath.Join(dir, walFileName)
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	if _, statErr := os.Stat(walPath); statErr == nil || len(snaps) > 0 {
		return recoverView(name, m, cfg, dir)
	}
	return createDurable(name, m, initial, cfg, dir)
}

// createDurable builds a fresh durable view. Durability before
// acknowledgment: the WAL (with the initial mutations as frame 1) is on
// disk before the cold fixpoint runs, so a crash mid-build recovers the
// accepted graph; the base snapshot then bounds that replay.
func createDurable(name string, m Maintainer, initial []Mutation, cfg ViewConfig, dir string) (*LiveView, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fail := func(err error) (*LiveView, error) {
		os.RemoveAll(dir) // nothing was acknowledged; leave no half-view behind
		return nil, err
	}
	w, err := createWAL(filepath.Join(dir, walFileName), 0)
	if err != nil {
		return nil, err
	}
	var walBytes int64
	if len(initial) > 0 {
		_, n, err := w.Append(mutationsToRecords(initial))
		if err != nil {
			w.Close()
			return fail(err)
		}
		walBytes = int64(n)
	}
	v, err := newViewCore(name, m, initial, cfg)
	if err != nil {
		w.Close()
		return fail(err)
	}
	v.dur = &durableState{dir: dir, wal: w, flushedSeq: w.Seq()}
	if m := cfg.Metrics; m != nil && len(initial) > 0 {
		m.WALAppends.Add(1)
		m.WALBytes.Add(walBytes)
	}
	if err := v.snapshotLocked(); err != nil {
		v.Kill()
		return fail(err)
	}
	return v, nil
}

// recoverView rebuilds a durable view from its on-disk state.
func recoverView(name string, m Maintainer, cfg ViewConfig, dir string) (*LiveView, error) {
	cfg = cfg.withAutoDefaults()
	walPath := filepath.Join(dir, walFileName)
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}

	var (
		v       *LiveView
		snapSeq uint64
		loaded  bool
	)
	for _, s := range snaps {
		if len(cfg.Workers) == 0 {
			// In-process recovery streams the snapshot straight into the
			// solution set — the full solution is never materialized.
			gs, fx, spec, seq, lerr := loadSnapshot(filepath.Join(dir, snapshotName(s)), m, cfg)
			if lerr == nil {
				v = assembleView(name, m, cfg, gs, nil)
				v.sess = adoptLocalSession(v, fx, spec)
				snapSeq, loaded = seq, true
				break
			}
		}
		// Sharded sessions — and topology changes in either direction (a
		// sharded snapshot recovering in-process, or vice versa) — go
		// through the record-materializing loader: the record set
		// re-partitions under whichever session the config opens.
		gs, recs, lerr := loadSnapshotRecords(dir, s, m)
		if lerr != nil {
			// An unreadable snapshot falls back to its predecessor; the
			// WAL base check below catches the case where the log no
			// longer reaches back that far.
			continue
		}
		cand := assembleView(name, m, cfg, gs, nil)
		sess, serr := cand.openSession(recs)
		if serr != nil {
			// Session open failure (e.g. a worker is unreachable) is an
			// environment error, not snapshot corruption: fail now rather
			// than silently recovering older state.
			return nil, fmt.Errorf("live: recovering view %q: %w", name, serr)
		}
		cand.sess = sess
		v, snapSeq, loaded = cand, s, true
		break
	}

	var rebuildSeq uint64
	var rebuildSize int64
	if !loaded {
		// No usable snapshot: the log must carry the full history.
		gs := NewGraphState()
		base, seq, size, err := scanWAL(walPath, func(_ uint64, b record.Batch) error {
			muts, err := recordsToMutations(b)
			if err != nil {
				return err
			}
			for _, mu := range muts {
				gs.Apply(mu)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("live: recovering view %q: %w", name, err)
		}
		if base != 0 {
			return nil, fmt.Errorf("live: view %q has no readable snapshot but its wal starts at frame %d", name, base+1)
		}
		rebuildSeq, rebuildSize = seq, size
		v = assembleView(name, m, cfg, gs, nil)
		sess, err := v.openSession(nil)
		if err != nil {
			return nil, err
		}
		v.sess = sess
	}

	var (
		w        *wal
		replayed int64
	)
	if loaded {
		w, err = openWAL(walPath, func(seq uint64, b record.Batch) error {
			if seq <= snapSeq {
				return nil // already folded into the snapshot
			}
			muts, err := recordsToMutations(b)
			if err != nil {
				return err
			}
			if err := v.applyLocked(muts); err != nil {
				return fmt.Errorf("replaying wal frame %d: %w", seq, err)
			}
			replayed++
			return nil
		})
		if os.IsNotExist(err) {
			// Snapshot without a log (lost or never created): start a
			// fresh one at the snapshot's seq.
			w, err = createWAL(walPath, snapSeq)
		}
		if err != nil {
			v.sess.Kill()
			return nil, fmt.Errorf("live: recovering view %q: %w", name, err)
		}
		if w.base > snapSeq {
			w.Close()
			v.sess.Kill()
			return nil, fmt.Errorf("live: view %q wal starts at frame %d but the best snapshot covers only %d",
				name, w.base+1, snapSeq)
		}
	} else {
		// The graph was rebuilt from the full log; reopen it for appends
		// with the rebuild scan's bookkeeping (that scan already
		// validated every frame and truncated any torn tail).
		w, err = openScannedWAL(walPath, 0, rebuildSeq, rebuildSize)
		if err != nil {
			v.sess.Kill()
			return nil, err
		}
	}

	v.dur = &durableState{
		dir:        dir,
		wal:        w,
		flushedSeq: w.Seq(),
		snapSeq:    snapSeq,
		replayed:   replayed,
	}
	if !loaded {
		// The cold rebuild folded every frame; only a fresh snapshot
		// records that.
		v.dur.snapSeq = 0
	}
	if mt := cfg.Metrics; mt != nil {
		mt.RecoveryReplays.Add(replayed)
	}
	// Fold the recovered state into a fresh snapshot so the next recovery
	// starts here, and so the (possibly truncated) log can rotate.
	if v.dur.flushedSeq != v.dur.snapSeq || !loaded {
		if err := v.snapshotLocked(); err != nil {
			v.Kill()
			return nil, err
		}
	} else {
		// Nothing replayed: the loaded snapshot already covers
		// flushedSeq, so a clean Close need not write another.
		v.dur.hasSnapshot = true
		v.dur.walBytesAtSnap = w.SizeBytes()
	}
	return v, nil
}
