// Package live is the serving side of incremental iterations: it keeps
// converged fixpoints *resident* and maintains them under streaming graph
// mutations.
//
// The paper's incremental iteration (Δ, S0, W0) converges to a solution
// set S with an empty working set. That pair (S, ∅) is exactly the state
// of a still-running job — so absorbing new input does not require
// recomputation, only a small working-set delta and a warm restart of the
// same fixpoint loop. A LiveView packages this: it holds the converged
// runtime.SolutionSet (any backend: map, compact, or spilled under a
// memory budget), a persistent partition-pinned execution session
// (iterative.Fixpoint), and the mutable graph, and translates streamed
// mutations into workset deltas:
//
//   - edge/vertex insertions take the monotone fast path: each endpoint
//     proposes its current state to the other, and the fixpoint re-runs
//     over just those candidates (typically 1–3 supersteps);
//   - deletions are not monotone, so the view repairs by bounded
//     recompute: the maintainer names the affected region (for Connected
//     Components, the component containing the deleted edge), the region's
//     entries are force-reset, and the fixpoint re-runs over the region
//     only — falling back to a full recompute as a last resort (SSSP
//     deletions, or regions larger than ViewConfig.RecomputeFraction);
//   - mutations are micro-batched: they buffer until ViewConfig.BatchSize
//     accumulate or ViewConfig.FlushInterval elapses, and one flush
//     absorbs the whole batch in a single warm restart.
//
// Reads (Query, Snapshot) take a shared lock and see converged state only;
// maintenance is serialized per view. The Scheduler serves many named
// views concurrently under a global memory budget, and serve.go exposes
// the whole service over HTTP for `spinflow serve`.
//
// Views can be durable (wal.go, ViewConfig.Durable): acknowledged
// mutation batches are write-ahead logged (CRC32-framed, fsynced before
// Mutate returns), the resident state is periodically captured by
// streaming snapshots written partition-by-partition through the
// iterative checkpoint format, and OpenView recovers a crashed view by
// loading the latest valid snapshot, replaying the log tail through the
// ordinary maintenance path, and truncating torn tails at the last valid
// frame. `spinflow serve -data-dir` turns this on for every served view.
//
// A view reaches its fixpoint through the SessionProvider seam
// (provider.go): in-process by default, or — with `spinflow serve
// -workers` — a distributed session (shard.go) that hosts partition
// ranges across `spinflow worker` processes. Every host keeps a full
// graph replica and derives plan and placement independently
// (digest-checked over the distrib control plane); only mutation batches
// and owner-routed candidate worksets travel, supersteps ride the shared
// driver's barrier over the TCP data plane, queries ask the key's owner,
// and snapshots scatter-gather every host's shard into one canonical
// file family.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Op enumerates streaming graph mutations.
type Op int

// The mutation kinds.
const (
	// OpInsertEdge adds (or re-weights) the directed edge Src->Dst; views
	// interpret edges as undirected, matching the paper's §6.2.
	OpInsertEdge Op = iota
	// OpDeleteEdge removes the edge Src->Dst.
	OpDeleteEdge
	// OpAddVertex adds the isolated vertex Src.
	OpAddVertex
	// OpDeleteVertex removes vertex Src and every incident edge.
	OpDeleteVertex
)

// String names the op (also the HTTP wire form).
func (o Op) String() string {
	switch o {
	case OpInsertEdge:
		return "insert-edge"
	case OpDeleteEdge:
		return "delete-edge"
	case OpAddVertex:
		return "add-vertex"
	case OpDeleteVertex:
		return "delete-vertex"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Mutation is one streamed graph change.
type Mutation struct {
	Op       Op
	Src, Dst int64
	Weight   float64
}

// Convenience constructors.

// InsertEdge inserts an unweighted edge.
func InsertEdge(src, dst int64) Mutation { return Mutation{Op: OpInsertEdge, Src: src, Dst: dst} }

// InsertWeightedEdge inserts a weighted edge (SSSP views).
func InsertWeightedEdge(src, dst int64, w float64) Mutation {
	return Mutation{Op: OpInsertEdge, Src: src, Dst: dst, Weight: w}
}

// DeleteEdge removes an edge.
func DeleteEdge(src, dst int64) Mutation { return Mutation{Op: OpDeleteEdge, Src: src, Dst: dst} }

// AddVertex adds an isolated vertex.
func AddVertex(v int64) Mutation { return Mutation{Op: OpAddVertex, Src: v} }

// DeleteVertex removes a vertex and its incident edges.
func DeleteVertex(v int64) Mutation { return Mutation{Op: OpDeleteVertex, Src: v} }

// ViewConfig configures one live view. The embedded iterative.Config
// selects parallelism, metrics, and the solution-set backend (including
// SolutionMemoryBudget for out-of-core views).
type ViewConfig struct {
	iterative.Config
	// BatchSize is the number of buffered mutations that triggers an
	// automatic flush (default 256).
	BatchSize int
	// FlushInterval bounds the staleness of buffered mutations: a
	// non-zero interval flushes the batch that long after its first
	// mutation arrives. Zero means flushes happen only when BatchSize is
	// reached or Flush is called.
	FlushInterval time.Duration
	// RecomputeFraction is the bounded-recompute cutoff: when a
	// deletion's affected region exceeds this fraction of the solution
	// set, the view falls back to a full recompute (default 0.5).
	RecomputeFraction float64
	// Durable enables the write-ahead log and snapshot lifecycle: every
	// Mutate appends its batch to the view's log (fsynced) before
	// returning, periodic streaming snapshots bound the log, and OpenView
	// recovers the view after a crash. Requires DataDir.
	Durable bool
	// DataDir is the directory durable view state lives under (one
	// subdirectory per view: wal.log plus snapshot files).
	DataDir string
	// SnapshotEveryFlushes is the number of flushed micro-batches between
	// streaming snapshots (default 32). Durable views only.
	SnapshotEveryFlushes int
	// SnapshotEveryBytes additionally triggers a snapshot once the log
	// has grown this many bytes since the last one (default 4 MiB).
	// Durable views only.
	SnapshotEveryBytes int64
	// Workers shards the view across distributed maintenance sessions:
	// each entry is the control address of an already-listening `spinflow
	// worker` process. The view's partition ranges are placed over
	// 1+len(Workers) hosts (this process is host 0) and every flush is
	// coordinated across the mesh. Empty means in-process maintenance.
	Workers []string
	// AutoEngine routes full recomputes through iterative.RunAuto: the
	// cost model — calibrated from this view's own measured supersteps —
	// picks between the superstep and microstep engines per recompute
	// instead of always re-running incrementally. Views created over the
	// HTTP API with algorithm=auto set this. Calibration samples come
	// from the embedded Metrics: when several concurrently-flushing
	// views share one Counters, samples include the neighbors' work and
	// the fit degrades toward the (safe) built-in defaults — give auto
	// views private Counters when switch precision matters.
	AutoEngine bool
}

func (c ViewConfig) normalized() ViewConfig {
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	// A sharded view needs at least one partition per host, or trailing
	// hosts would sit in the mesh owning nothing.
	if hosts := 1 + len(c.Workers); len(c.Workers) > 0 && c.Parallelism < hosts {
		c.Parallelism = hosts
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RecomputeFraction <= 0 {
		c.RecomputeFraction = 0.5
	}
	if c.SnapshotEveryFlushes <= 0 {
		c.SnapshotEveryFlushes = 32
	}
	if c.SnapshotEveryBytes <= 0 {
		c.SnapshotEveryBytes = 4 << 20
	}
	return c
}

// Validate rejects configurations that cannot serve: negative knobs that
// the zero-value defaults would otherwise silently paper over.
func (c ViewConfig) Validate() error {
	if c.BatchSize < 0 {
		return fmt.Errorf("live: negative BatchSize %d", c.BatchSize)
	}
	if c.FlushInterval < 0 {
		return fmt.Errorf("live: negative FlushInterval %v", c.FlushInterval)
	}
	if c.RecomputeFraction < 0 || c.RecomputeFraction > 1 {
		return fmt.Errorf("live: RecomputeFraction %v outside [0,1]", c.RecomputeFraction)
	}
	if c.SolutionMemoryBudget < 0 {
		return fmt.Errorf("live: negative SolutionMemoryBudget %d", c.SolutionMemoryBudget)
	}
	if c.SnapshotEveryFlushes < 0 {
		return fmt.Errorf("live: negative SnapshotEveryFlushes %d", c.SnapshotEveryFlushes)
	}
	if c.SnapshotEveryBytes < 0 {
		return fmt.Errorf("live: negative SnapshotEveryBytes %d", c.SnapshotEveryBytes)
	}
	if c.Durable && c.DataDir == "" {
		return fmt.Errorf("live: Durable requires DataDir")
	}
	return nil
}

// ViewStats reports one view's lifetime maintenance counters.
type ViewStats struct {
	Vertices, Edges   int
	SolutionRecords   int
	SolutionBytes     int64
	MutationsPending  int
	DeltasApplied     int64
	Flushes           int64
	WarmRestarts      int64
	PartialRecomputes int64
	FullRecomputes    int64
	Supersteps        int64
	Rebinds           int64
	// EngineSwitches counts mid-recompute engine handoffs by AutoEngine
	// views (incremental → microstep once the workset collapsed).
	EngineSwitches int64
	// Durable reports whether the view logs mutations and snapshots.
	Durable bool
	// WALBytes is the current size of the view's write-ahead log.
	WALBytes int64
	// SnapshotsWritten counts streaming snapshots this view persisted.
	SnapshotsWritten int64
	// RecoveredFrames counts WAL frames replayed through the maintenance
	// path when this view instance was recovered (0 for fresh views).
	RecoveredFrames int64
	// Shards reports the per-host solution split of a sharded view (nil
	// for in-process views).
	Shards []ShardStat
	// LastError is the most recent background (timer) flush or snapshot
	// failure, if any — synchronous errors go to the caller instead.
	LastError string
}

// LiveView is one maintained fixpoint: a resident solution set plus the
// machinery to absorb streaming graph mutations into it. Mutate/Flush
// are safe for concurrent use; maintenance itself is serialized, and
// Query/Snapshot run concurrently with each other against converged
// state.
type LiveView struct {
	name string
	m    Maintainer
	cfg  ViewConfig

	// Telemetry, bound once at construction when cfg.Obs is set (see
	// bindObs): the registry's span ring plus the serving-layer latency
	// histograms. All nil without a registry — the instrumented paths
	// (Query, Mutate, Flush, snapshot) each pay one nil check.
	ring      *obs.Ring
	qHist     *obs.Histogram
	mutHist   *obs.Histogram
	flushHist *obs.Histogram
	walHist   *obs.Histogram
	snapHist  *obs.Histogram

	// mu guards the graph, the session provider and its solution state:
	// exclusive for maintenance, shared for reads.
	mu sync.RWMutex
	gs *GraphState
	// sess is the session provider backing the view: in-process
	// (localSession) by default, or sharded over worker processes
	// (distSession) when ViewConfig.Workers is set.
	sess  SessionProvider
	stats ViewStats
	// dur is the durability state (nil for in-memory views). Its wal is
	// internally locked; the seq/snapshot bookkeeping is guarded by mu,
	// except that Mutate reads the wal's seq under pmu.
	dur *durableState

	// pmu guards the pending micro-batch.
	pmu     sync.Mutex
	pending []Mutation
	timer   *time.Timer

	closed atomic.Bool
	// asyncErr records the last background (timer-driven) flush failure,
	// surfaced through ViewStats.LastError.
	asyncErr atomic.Value // string
}

// durableState is the write-ahead log plus snapshot bookkeeping of one
// durable view.
type durableState struct {
	dir string
	wal *wal
	// flushedSeq is the WAL frame up to which mutations are reflected in
	// the resident solution set (guarded by the maintenance lock).
	flushedSeq uint64
	// snapSeq is the WAL frame the latest snapshot covers.
	snapSeq uint64
	// flushesSinceSnap and walBytesAtSnap drive the snapshot cadence.
	flushesSinceSnap int
	walBytesAtSnap   int64
	// snapshots counts snapshots written by this view instance.
	snapshots int64
	// hasSnapshot records that a valid snapshot at snapSeq exists on
	// disk — written by this instance or loaded at recovery — so Close
	// can skip re-writing one for an untouched view.
	hasSnapshot bool
	// replayed counts WAL frames replayed when this instance recovered.
	replayed int64
}

// NewView builds a view over the graph described by the initial mutations
// (typically a stream of InsertEdge), runs the cold fixpoint once, and
// leaves everything resident for maintenance. With ViewConfig.Durable set
// it is OpenView — which *recovers* existing on-disk state for the name
// instead of building from `initial`.
func NewView(name string, m Maintainer, initial []Mutation, cfg ViewConfig) (*LiveView, error) {
	return OpenView(name, m, initial, cfg)
}

// newViewCore is the cold build shared by NewView and the durable create
// path: graph from initial mutations, one cold fixpoint, everything left
// resident. cfg has been validated and normalized.
func newViewCore(name string, m Maintainer, initial []Mutation, cfg ViewConfig) (*LiveView, error) {
	cfg = cfg.withAutoDefaults()
	v := &LiveView{name: name, m: m, cfg: cfg, gs: NewGraphState()}
	for _, mut := range initial {
		v.gs.Apply(mut)
	}
	v.bindObs()
	sess, err := v.openSession(nil)
	if err != nil {
		return nil, err
	}
	v.sess = sess
	return v, nil
}

// openSession builds the view's session provider over the current graph:
// sharded across ViewConfig.Workers when set, in-process otherwise. A
// non-nil recovered solution skips the cold fixpoint and initializes the
// session from those records instead (the snapshot-recovery path).
func (v *LiveView) openSession(recovered []record.Record) (SessionProvider, error) {
	if len(v.cfg.Workers) > 0 {
		return openDistSession(v, recovered)
	}
	if recovered == nil {
		return newLocalSession(v)
	}
	spec, _, _ := v.m.Spec(v.gs)
	fx, err := iterative.OpenFixpoint(spec, nil, v.cfg.Config)
	if err != nil {
		return nil, err
	}
	fx.Solution().Init(recovered)
	return adoptLocalSession(v, fx, spec), nil
}

// withObsDefaults mints the view's trace identity when a telemetry
// registry is attached: a fresh trace ID groups every span this view
// instance records (flushes, supersteps, snapshots) and the view's name
// labels them. An explicitly-set TraceID/TraceLabel is kept.
func (c ViewConfig) withObsDefaults(name string) ViewConfig {
	if c.Obs != nil {
		if c.TraceID == 0 {
			c.TraceID = obs.NewTraceID()
		}
		if c.TraceLabel == "" {
			c.TraceLabel = name
		}
	}
	return c
}

// bindObs caches the registry's ring and the serving-layer histograms on
// the view, so the hot paths don't take the registry lock per call.
func (v *LiveView) bindObs() {
	r := v.cfg.Obs
	if r == nil {
		return
	}
	v.ring = r.Trace()
	v.qHist = r.Histogram("live_query_duration")
	v.mutHist = r.Histogram("live_mutate_duration")
	v.flushHist = r.Histogram("live_flush_duration")
	v.walHist = r.Histogram("wal_append_duration")
	v.snapHist = r.Histogram("snapshot_duration")
}

// span records one serving-layer phase span (flush, wal-append,
// snapshot). Caller has checked v.ring != nil.
func (v *LiveView) span(ph obs.Phase, start time.Time) {
	v.ring.RecordSpan(obs.Span{
		Trace: v.cfg.TraceID, Host: int32(v.cfg.Host), Part: -1, Step: -1,
		Phase: ph, Start: start.UnixNano(), Dur: int64(time.Since(start)),
		Label: v.name,
	})
}

// withAutoDefaults gives AutoEngine views a private calibrator: every
// maintained superstep feeds the fit, so later recomputes plan with this
// view's observed constants. The fit's features are the work counters,
// so a view without metrics gets its own — otherwise calibration would
// be silently inert.
func (c ViewConfig) withAutoDefaults() ViewConfig {
	if c.AutoEngine {
		if c.Calibrator == nil {
			c.Calibrator = optimizer.NewCalibrator()
		}
		if c.Metrics == nil {
			c.Metrics = &metrics.Counters{}
		}
	}
	return c
}

// assembleView wires a LiveView around already-recovered state: the
// graph and a session provider whose solution state is already loaded.
// Used by recovery, where the cold build is replaced by a snapshot load
// plus WAL replay.
func assembleView(name string, m Maintainer, cfg ViewConfig, gs *GraphState, sess SessionProvider) *LiveView {
	v := &LiveView{name: name, m: m, cfg: cfg, gs: gs, sess: sess}
	v.bindObs()
	return v
}

// Name returns the view's name.
func (v *LiveView) Name() string { return v.name }

// TraceID returns the trace ID this view's spans record under (zero when
// the view was built without a telemetry registry).
func (v *LiveView) TraceID() obs.TraceID { return v.cfg.TraceID }

// Query returns the solution record for key k (e.g. a vertex's component
// id or distance). It sees converged state only: flushes in progress
// block it, queued-but-unflushed mutations do not affect it. On a
// sharded view the lookup is routed to the host owning the key's
// partition.
func (v *LiveView) Query(k int64) (record.Record, bool) {
	if h := v.qHist; h != nil {
		defer h.ObserveSince(time.Now())
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.sess.Lookup(k)
}

// Snapshot copies the converged solution set out (scatter-gathered over
// every host for a sharded view).
func (v *LiveView) Snapshot() []record.Record {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.sess.Snapshot()
}

// Bytes reports the solution set's resident in-memory footprint.
func (v *LiveView) Bytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.sess.Bytes()
}

// Stats reports the view's maintenance counters.
func (v *LiveView) Stats() ViewStats {
	v.mu.RLock()
	st := v.stats
	st.Vertices = v.gs.NumVertices()
	st.Edges = v.gs.NumEdges()
	st.SolutionRecords = v.sess.Records()
	st.SolutionBytes = v.sess.Bytes()
	st.Shards = v.sess.Shards()
	if d := v.dur; d != nil {
		st.Durable = true
		st.WALBytes = d.wal.SizeBytes()
		st.SnapshotsWritten = d.snapshots
		st.RecoveredFrames = d.replayed
	}
	v.mu.RUnlock()
	v.pmu.Lock()
	st.MutationsPending = len(v.pending)
	v.pmu.Unlock()
	if e, ok := v.asyncErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}

// Mutate queues mutations into the current micro-batch, flushing it when
// it reaches ViewConfig.BatchSize (and arming the FlushInterval timer on
// the batch's first mutation). The closed check happens under the batch
// lock, so an accepted mutation is guaranteed to be either flushed by a
// later Flush or drained by Close — never silently dropped.
//
// Durable views write the batch to the write-ahead log (one CRC32 frame,
// fsynced) before it is queued: by the time Mutate returns nil, the
// mutations survive a crash. A failed log append rejects the batch — it
// is neither queued nor acknowledged.
func (v *LiveView) Mutate(muts ...Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	if h := v.mutHist; h != nil {
		defer h.ObserveSince(time.Now())
	}
	v.pmu.Lock()
	if v.closed.Load() {
		v.pmu.Unlock()
		return fmt.Errorf("live: view %q is closed", v.name)
	}
	if v.dur != nil {
		walStart := time.Now()
		_, n, err := v.dur.wal.Append(mutationsToRecords(muts))
		if err != nil {
			v.pmu.Unlock()
			return fmt.Errorf("live: view %q wal append: %w", v.name, err)
		}
		if m := v.cfg.Metrics; m != nil {
			m.WALAppends.Add(1)
			m.WALBytes.Add(int64(n))
		}
		if v.ring != nil {
			v.walHist.ObserveSince(walStart)
			v.span(obs.PhaseWALAppend, walStart)
		}
	}
	wasEmpty := len(v.pending) == 0
	v.pending = append(v.pending, muts...)
	n := len(v.pending)
	if wasEmpty && n > 0 && v.cfg.FlushInterval > 0 && v.timer == nil {
		v.timer = time.AfterFunc(v.cfg.FlushInterval, func() {
			if err := v.Flush(); err != nil {
				// Background flushes have no caller to return to; record
				// the failure so Stats exposes it.
				v.asyncErr.Store(err.Error())
			}
		})
	}
	v.pmu.Unlock()
	if n >= v.cfg.BatchSize {
		return v.Flush()
	}
	return nil
}

// takeBatch drains the pending micro-batch and disarms the timer. For
// durable views it also captures the WAL seq the drain corresponds to:
// the drained mutations are exactly the log frames up to that seq that
// are not yet flushed, so applying them advances flushedSeq there.
func (v *LiveView) takeBatch() ([]Mutation, uint64) {
	v.pmu.Lock()
	batch := v.pending
	v.pending = nil
	var seq uint64
	if v.dur != nil {
		seq = v.dur.wal.Seq()
	}
	if v.timer != nil {
		v.timer.Stop()
		v.timer = nil
	}
	v.pmu.Unlock()
	return batch, seq
}

// Flush applies the pending micro-batch now: mutations become workset
// deltas and one warm restart absorbs them. It is a no-op when nothing is
// pending. The batch is taken only after the maintenance lock is held and
// the view is known to be open, so a Flush racing Close either completes
// fully or leaves the batch for Close to drain.
func (v *LiveView) Flush() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed.Load() {
		return fmt.Errorf("live: view %q is closed", v.name)
	}
	batch, seq := v.takeBatch()
	if len(batch) == 0 {
		return nil
	}
	flushStart := time.Now()
	if err := v.applyLocked(batch); err != nil {
		return err
	}
	if v.ring != nil {
		v.flushHist.ObserveSince(flushStart)
		v.span(obs.PhaseFlush, flushStart)
	}
	v.afterFlushLocked(seq)
	return nil
}

// afterFlushLocked advances the durable bookkeeping after a successful
// flush and writes a snapshot when the cadence (flush count or log
// growth) says so. Snapshot failures do not fail the flush — the WAL
// already holds the mutations durably — but surface through
// ViewStats.LastError.
func (v *LiveView) afterFlushLocked(seq uint64) {
	d := v.dur
	if d == nil {
		return
	}
	d.flushedSeq = seq
	d.flushesSinceSnap++
	if d.flushesSinceSnap >= v.cfg.SnapshotEveryFlushes ||
		d.wal.SizeBytes()-d.walBytesAtSnap >= v.cfg.SnapshotEveryBytes {
		if err := v.snapshotLocked(); err != nil {
			v.asyncErr.Store(err.Error())
		}
	}
}

// insertedEdge records one edge insertion of a batch for delta building.
type insertedEdge struct {
	src, dst int64
	w        float64
}

// applyLocked absorbs one mutation batch under the exclusive lock: the
// session provider does the maintenance work (graph apply, delta
// classification, warm restart), this wrapper keeps the view-level
// counters. The batch counts as applied once the graph mutation phase
// ran, which the provider performs unconditionally before any restart.
func (v *LiveView) applyLocked(batch []Mutation) error {
	if m := v.cfg.Metrics; m != nil {
		m.DeltasApplied.Add(int64(len(batch)))
	}
	v.stats.DeltasApplied += int64(len(batch))
	v.stats.Flushes++
	return v.sess.Apply(batch)
}

// Close flushes pending mutations, releases the session, and drops the
// solution set (removing any spill files). Durable views additionally
// write a final snapshot and rotate their log, so the next OpenView
// restarts without replay. Idempotent. The closed flag flips under the
// maintenance lock before the final drain, so any mutation accepted by
// Mutate is applied here (or was already flushed) and later Mutate/Flush
// calls fail fast.
func (v *LiveView) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	batch, seq := v.takeBatch()
	if len(batch) > 0 {
		err = v.applyLocked(batch)
	}
	if d := v.dur; d != nil {
		if err == nil {
			// Only converged state may be snapshotted; after an apply
			// failure the log remains the source of truth and the next
			// open replays it.
			d.flushedSeq = seq
			if d.flushedSeq != d.snapSeq || !d.hasSnapshot {
				if serr := v.snapshotLocked(); serr != nil && err == nil {
					err = serr
				}
			}
		}
		if cerr := d.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cerr := v.sess.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Kill abandons the view without flushing pending mutations, writing a
// final snapshot, or rotating the log — the in-process stand-in for a
// hard crash (SIGKILL). Resources are released; the on-disk state is
// left exactly as an interrupted process would leave it, so a following
// OpenView exercises real recovery. Crash-recovery tests and the harness
// use it; servers should Close.
func (v *LiveView) Kill() {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.closed.CompareAndSwap(false, true) {
		return
	}
	v.pmu.Lock()
	v.pending = nil
	if v.timer != nil {
		v.timer.Stop()
		v.timer = nil
	}
	v.pmu.Unlock()
	if d := v.dur; d != nil {
		d.wal.Close()
	}
	v.sess.Kill()
}

// Checkpoint forces a streaming snapshot of the current converged state
// now, regardless of the snapshot cadence, and rotates the log when
// possible. Pending (acknowledged but unflushed) mutations stay in the
// WAL and are not flushed by this call.
func (v *LiveView) Checkpoint() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed.Load() {
		return fmt.Errorf("live: view %q is closed", v.name)
	}
	if v.dur == nil {
		return fmt.Errorf("live: view %q is not durable", v.name)
	}
	return v.snapshotLocked()
}
