// Package live is the serving side of incremental iterations: it keeps
// converged fixpoints *resident* and maintains them under streaming graph
// mutations.
//
// The paper's incremental iteration (Δ, S0, W0) converges to a solution
// set S with an empty working set. That pair (S, ∅) is exactly the state
// of a still-running job — so absorbing new input does not require
// recomputation, only a small working-set delta and a warm restart of the
// same fixpoint loop. A LiveView packages this: it holds the converged
// runtime.SolutionSet (any backend: map, compact, or spilled under a
// memory budget), a persistent partition-pinned execution session
// (iterative.Fixpoint), and the mutable graph, and translates streamed
// mutations into workset deltas:
//
//   - edge/vertex insertions take the monotone fast path: each endpoint
//     proposes its current state to the other, and the fixpoint re-runs
//     over just those candidates (typically 1–3 supersteps);
//   - deletions are not monotone, so the view repairs by bounded
//     recompute: the maintainer names the affected region (for Connected
//     Components, the component containing the deleted edge), the region's
//     entries are force-reset, and the fixpoint re-runs over the region
//     only — falling back to a full recompute as a last resort (SSSP
//     deletions, or regions larger than ViewConfig.RecomputeFraction);
//   - mutations are micro-batched: they buffer until ViewConfig.BatchSize
//     accumulate or ViewConfig.FlushInterval elapses, and one flush
//     absorbs the whole batch in a single warm restart.
//
// Reads (Query, Snapshot) take a shared lock and see converged state only;
// maintenance is serialized per view. The Scheduler serves many named
// views concurrently under a global memory budget, and serve.go exposes
// the whole service over HTTP for `spinflow serve`.
package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// Op enumerates streaming graph mutations.
type Op int

// The mutation kinds.
const (
	// OpInsertEdge adds (or re-weights) the directed edge Src->Dst; views
	// interpret edges as undirected, matching the paper's §6.2.
	OpInsertEdge Op = iota
	// OpDeleteEdge removes the edge Src->Dst.
	OpDeleteEdge
	// OpAddVertex adds the isolated vertex Src.
	OpAddVertex
	// OpDeleteVertex removes vertex Src and every incident edge.
	OpDeleteVertex
)

// String names the op (also the HTTP wire form).
func (o Op) String() string {
	switch o {
	case OpInsertEdge:
		return "insert-edge"
	case OpDeleteEdge:
		return "delete-edge"
	case OpAddVertex:
		return "add-vertex"
	case OpDeleteVertex:
		return "delete-vertex"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Mutation is one streamed graph change.
type Mutation struct {
	Op       Op
	Src, Dst int64
	Weight   float64
}

// Convenience constructors.

// InsertEdge inserts an unweighted edge.
func InsertEdge(src, dst int64) Mutation { return Mutation{Op: OpInsertEdge, Src: src, Dst: dst} }

// InsertWeightedEdge inserts a weighted edge (SSSP views).
func InsertWeightedEdge(src, dst int64, w float64) Mutation {
	return Mutation{Op: OpInsertEdge, Src: src, Dst: dst, Weight: w}
}

// DeleteEdge removes an edge.
func DeleteEdge(src, dst int64) Mutation { return Mutation{Op: OpDeleteEdge, Src: src, Dst: dst} }

// AddVertex adds an isolated vertex.
func AddVertex(v int64) Mutation { return Mutation{Op: OpAddVertex, Src: v} }

// DeleteVertex removes a vertex and its incident edges.
func DeleteVertex(v int64) Mutation { return Mutation{Op: OpDeleteVertex, Src: v} }

// ViewConfig configures one live view. The embedded iterative.Config
// selects parallelism, metrics, and the solution-set backend (including
// SolutionMemoryBudget for out-of-core views).
type ViewConfig struct {
	iterative.Config
	// BatchSize is the number of buffered mutations that triggers an
	// automatic flush (default 256).
	BatchSize int
	// FlushInterval bounds the staleness of buffered mutations: a
	// non-zero interval flushes the batch that long after its first
	// mutation arrives. Zero means flushes happen only when BatchSize is
	// reached or Flush is called.
	FlushInterval time.Duration
	// RecomputeFraction is the bounded-recompute cutoff: when a
	// deletion's affected region exceeds this fraction of the solution
	// set, the view falls back to a full recompute (default 0.5).
	RecomputeFraction float64
	// AutoEngine routes full recomputes through iterative.RunAuto: the
	// cost model — calibrated from this view's own measured supersteps —
	// picks between the superstep and microstep engines per recompute
	// instead of always re-running incrementally. Views created over the
	// HTTP API with algorithm=auto set this. Calibration samples come
	// from the embedded Metrics: when several concurrently-flushing
	// views share one Counters, samples include the neighbors' work and
	// the fit degrades toward the (safe) built-in defaults — give auto
	// views private Counters when switch precision matters.
	AutoEngine bool
}

func (c ViewConfig) normalized() ViewConfig {
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.RecomputeFraction <= 0 {
		c.RecomputeFraction = 0.5
	}
	return c
}

// Validate rejects configurations that cannot serve: negative knobs that
// the zero-value defaults would otherwise silently paper over.
func (c ViewConfig) Validate() error {
	if c.BatchSize < 0 {
		return fmt.Errorf("live: negative BatchSize %d", c.BatchSize)
	}
	if c.FlushInterval < 0 {
		return fmt.Errorf("live: negative FlushInterval %v", c.FlushInterval)
	}
	if c.RecomputeFraction < 0 || c.RecomputeFraction > 1 {
		return fmt.Errorf("live: RecomputeFraction %v outside [0,1]", c.RecomputeFraction)
	}
	if c.SolutionMemoryBudget < 0 {
		return fmt.Errorf("live: negative SolutionMemoryBudget %d", c.SolutionMemoryBudget)
	}
	return nil
}

// ViewStats reports one view's lifetime maintenance counters.
type ViewStats struct {
	Vertices, Edges   int
	SolutionRecords   int
	SolutionBytes     int64
	MutationsPending  int
	DeltasApplied     int64
	Flushes           int64
	WarmRestarts      int64
	PartialRecomputes int64
	FullRecomputes    int64
	Supersteps        int64
	Rebinds           int64
	// EngineSwitches counts mid-recompute engine handoffs by AutoEngine
	// views (incremental → microstep once the workset collapsed).
	EngineSwitches int64
	// LastError is the most recent background (timer) flush failure, if
	// any — synchronous Flush errors go to the caller instead.
	LastError string
}

// LiveView is one maintained fixpoint: a resident solution set plus the
// machinery to absorb streaming graph mutations into it. Mutate/Flush
// are safe for concurrent use; maintenance itself is serialized, and
// Query/Snapshot run concurrently with each other against converged
// state.
type LiveView struct {
	name string
	m    Maintainer
	cfg  ViewConfig

	// mu guards the graph, the fixpoint and the solution set: exclusive
	// for maintenance, shared for reads.
	mu        sync.RWMutex
	gs        *GraphState
	fx        *iterative.Fixpoint
	spec      iterative.IncrementalSpec
	sources   []*dataflow.Node
	planEdges int // directed edge count the current plan was costed with
	// overlay holds edges live in gs but not yet folded into the plan's
	// cached edge table: the insert fast path leaves the O(E) caches
	// untouched and instead re-derives candidates over these edges until
	// the solution is a fixpoint over N ∪ overlay. Deletions, drift, or
	// overlay growth fold them in (source refresh + cache invalidation).
	overlay []WEdge
	stats   ViewStats

	// pmu guards the pending micro-batch.
	pmu     sync.Mutex
	pending []Mutation
	timer   *time.Timer

	closed atomic.Bool
	// asyncErr records the last background (timer-driven) flush failure,
	// surfaced through ViewStats.LastError.
	asyncErr atomic.Value // string
}

// NewView builds a view over the graph described by the initial mutations
// (typically a stream of InsertEdge), runs the cold fixpoint once, and
// leaves everything resident for maintenance.
func NewView(name string, m Maintainer, initial []Mutation, cfg ViewConfig) (*LiveView, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.AutoEngine {
		// A per-view calibrator: every maintained superstep feeds the
		// fit, so later recomputes plan with this view's observed
		// constants. The fit's features are the work counters, so a
		// view without metrics gets its own — otherwise calibration
		// would be silently inert.
		if cfg.Calibrator == nil {
			cfg.Calibrator = optimizer.NewCalibrator()
		}
		if cfg.Metrics == nil {
			cfg.Metrics = &metrics.Counters{}
		}
	}
	v := &LiveView{name: name, m: m, cfg: cfg, gs: NewGraphState()}
	for _, mut := range initial {
		v.gs.Apply(mut)
	}
	spec, s0, w0 := m.Spec(v.gs)
	fx, err := iterative.OpenFixpoint(spec, nil, cfg.Config)
	if err != nil {
		return nil, err
	}
	v.fx = fx
	v.spec = spec
	v.rebindSources(spec)
	v.planEdges = v.gs.NumEdges()
	fx.Solution().Init(s0)
	if _, err := fx.Run(w0); err != nil {
		fx.Close()
		return nil, err
	}
	return v, nil
}

// rebindSources records the plan's Source nodes, in construction order,
// so refreshSources can swap their data after graph mutations.
func (v *LiveView) rebindSources(spec iterative.IncrementalSpec) {
	v.sources = v.sources[:0]
	for _, n := range spec.Plan.Nodes() {
		if n.Contract == dataflow.Source {
			v.sources = append(v.sources, n)
		}
	}
}

// Name returns the view's name.
func (v *LiveView) Name() string { return v.name }

// look reads the resident solution set by key.
func (v *LiveView) look(k int64) (record.Record, bool) {
	sol := v.fx.Solution()
	return sol.Lookup(sol.PartitionFor(k), k)
}

// solReader exposes the resident solution to maintainers. Because flushes
// force-store region resets before building insert deltas, lookups during
// delta construction always see repaired labels, never stale ones.
type solReader struct {
	v *LiveView
}

func (r solReader) Lookup(k int64) (record.Record, bool) {
	return r.v.look(k)
}

func (r solReader) Each(f func(record.Record)) {
	r.v.fx.Solution().Each(f)
}

// Query returns the solution record for key k (e.g. a vertex's component
// id or distance). It sees converged state only: flushes in progress
// block it, queued-but-unflushed mutations do not affect it.
func (v *LiveView) Query(k int64) (record.Record, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.look(k)
}

// Snapshot copies the converged solution set out.
func (v *LiveView) Snapshot() []record.Record {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.fx.Solution().Snapshot()
}

// Bytes reports the solution set's resident in-memory footprint.
func (v *LiveView) Bytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.fx.Solution().Bytes()
}

// Stats reports the view's maintenance counters.
func (v *LiveView) Stats() ViewStats {
	v.mu.RLock()
	st := v.stats
	st.Vertices = v.gs.NumVertices()
	st.Edges = v.gs.NumEdges()
	sol := v.fx.Solution()
	st.SolutionRecords = sol.Size()
	st.SolutionBytes = sol.Bytes()
	v.mu.RUnlock()
	v.pmu.Lock()
	st.MutationsPending = len(v.pending)
	v.pmu.Unlock()
	if e, ok := v.asyncErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}

// Mutate queues mutations into the current micro-batch, flushing it when
// it reaches ViewConfig.BatchSize (and arming the FlushInterval timer on
// the batch's first mutation). The closed check happens under the batch
// lock, so an accepted mutation is guaranteed to be either flushed by a
// later Flush or drained by Close — never silently dropped.
func (v *LiveView) Mutate(muts ...Mutation) error {
	v.pmu.Lock()
	if v.closed.Load() {
		v.pmu.Unlock()
		return fmt.Errorf("live: view %q is closed", v.name)
	}
	wasEmpty := len(v.pending) == 0
	v.pending = append(v.pending, muts...)
	n := len(v.pending)
	if wasEmpty && n > 0 && v.cfg.FlushInterval > 0 && v.timer == nil {
		v.timer = time.AfterFunc(v.cfg.FlushInterval, func() {
			if err := v.Flush(); err != nil {
				// Background flushes have no caller to return to; record
				// the failure so Stats exposes it.
				v.asyncErr.Store(err.Error())
			}
		})
	}
	v.pmu.Unlock()
	if n >= v.cfg.BatchSize {
		return v.Flush()
	}
	return nil
}

// takeBatch drains the pending micro-batch and disarms the timer.
func (v *LiveView) takeBatch() []Mutation {
	v.pmu.Lock()
	batch := v.pending
	v.pending = nil
	if v.timer != nil {
		v.timer.Stop()
		v.timer = nil
	}
	v.pmu.Unlock()
	return batch
}

// Flush applies the pending micro-batch now: mutations become workset
// deltas and one warm restart absorbs them. It is a no-op when nothing is
// pending. The batch is taken only after the maintenance lock is held and
// the view is known to be open, so a Flush racing Close either completes
// fully or leaves the batch for Close to drain.
func (v *LiveView) Flush() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed.Load() {
		return fmt.Errorf("live: view %q is closed", v.name)
	}
	batch := v.takeBatch()
	if len(batch) == 0 {
		return nil
	}
	return v.applyLocked(batch)
}

// insertedEdge records one edge insertion of a batch for delta building.
type insertedEdge struct {
	src, dst int64
	w        float64
}

// applyLocked absorbs one mutation batch under the exclusive lock.
func (v *LiveView) applyLocked(batch []Mutation) error {
	sol := v.fx.Solution()

	// Phase 1: apply the batch to the graph, classifying the work. The
	// solution set is untouched here, so every impact classification
	// below reads a consistent pre-batch state.
	var (
		inserts   []insertedEdge
		newVerts  []int64
		dropVerts []int64
		affected  map[int64]struct{}
		full      bool
		hasDelete bool
	)
	reader := solReader{v: v}
	noteDelete := func(src, dst int64) {
		hasDelete = true
		if full {
			return
		}
		// Affected regions are unions of whole components: once an
		// endpoint is in the set, its component's region is already fully
		// included, so re-expanding it (an O(V) solution scan) is skipped.
		if _, seen := affected[src]; seen {
			return
		}
		if _, seen := affected[dst]; seen {
			return
		}
		region, ok := v.m.DeleteImpact(v.gs, src, dst, reader)
		if !ok {
			full = true
			return
		}
		if affected == nil {
			affected = make(map[int64]struct{})
		}
		for _, a := range region {
			affected[a] = struct{}{}
		}
	}
	for _, mut := range batch {
		switch mut.Op {
		case OpInsertEdge:
			for _, e := range []int64{mut.Src, mut.Dst} {
				if v.gs.AddVertex(e) {
					newVerts = append(newVerts, e)
				}
			}
			oldW, existed := v.gs.EdgeWeight(mut.Src, mut.Dst)
			if v.gs.AddEdge(mut.Src, mut.Dst, mut.Weight) {
				inserts = append(inserts, insertedEdge{mut.Src, mut.Dst, mut.Weight})
				if existed && oldW != mut.Weight {
					// Re-weighting an existing edge is not monotone (the
					// weight may have increased, lengthening paths through
					// it): repair like a deletion of the old edge.
					noteDelete(mut.Src, mut.Dst)
				}
			}
		case OpDeleteEdge:
			if _, ok := v.gs.RemoveEdge(mut.Src, mut.Dst); ok {
				noteDelete(mut.Src, mut.Dst)
			}
		case OpAddVertex:
			if v.gs.AddVertex(mut.Src) {
				newVerts = append(newVerts, mut.Src)
			}
		case OpDeleteVertex:
			if !v.gs.HasVertex(mut.Src) {
				continue
			}
			// Classify each incident edge's impact before it disappears.
			for _, e := range v.gs.IncidentEdges(mut.Src) {
				noteDelete(e.Src, e.Dst)
			}
			v.gs.RemoveVertex(mut.Src)
			dropVerts = append(dropVerts, mut.Src)
			hasDelete = true
		default:
			return fmt.Errorf("live: unknown mutation op %v", mut.Op)
		}
	}
	if m := v.cfg.Metrics; m != nil {
		m.DeltasApplied.Add(int64(len(batch)))
	}
	v.stats.DeltasApplied += int64(len(batch))
	v.stats.Flushes++

	// Dropped vertices leave the solution immediately (and must not be
	// resurrected by region resets).
	for _, d := range dropVerts {
		sol.Delete(d)
		delete(affected, d)
	}
	if !full && len(affected) > 0 &&
		float64(len(affected)) > v.cfg.RecomputeFraction*float64(sol.Size()) {
		full = true
	}

	// New edges join the overlay; whether they also reach the plan's
	// cached edge table depends on the fold decision below.
	for _, ie := range inserts {
		v.overlay = append(v.overlay, WEdge{Src: ie.src, Dst: ie.dst, Weight: ie.w})
	}

	if full {
		return v.fullRecomputeLocked()
	}

	// Phase 2 (fold): deletions must be reflected in the plan's edge
	// table before any repair propagates through it — stale edges would
	// resurrect retracted state — and an oversized overlay is folded so
	// the outer loop below stays cheap. Insert-only batches under the
	// threshold skip this entirely: the O(E) constant caches stay warm,
	// which is what makes small-delta maintenance fast.
	if hasDelete || len(v.overlay)*8 > v.gs.NumEdges() {
		if err := v.refreshPlan(); err != nil {
			return err
		}
	}

	// Phase 3: bounded recompute of the affected region — resets plus a
	// candidate seed over the region's surviving edges.
	var workset []record.Record
	if len(affected) > 0 {
		region := make([]int64, 0, len(affected))
		for a := range affected {
			region = append(region, a)
		}
		sort.Slice(region, func(i, j int) bool { return region[i] < region[j] })
		resets, seed, drops := v.m.RecomputeSeed(v.gs, region)
		for _, d := range drops {
			sol.Delete(d)
		}
		for _, r := range resets {
			sol.ForceStore(r)
		}
		workset = append(workset, seed...)
		if m := v.cfg.Metrics; m != nil {
			m.PartialRecomputes.Add(1)
		}
		v.stats.PartialRecomputes++
	}
	for _, nv := range newVerts {
		if r, ok := v.m.VertexRecord(nv); ok {
			sol.Update(r)
		}
	}
	// Monotone insert candidates. Region resets are already force-stored,
	// so lookups see the re-initialized labels, never stale ones.
	for _, ie := range inserts {
		workset = append(workset, v.m.InsertDelta(ie.src, ie.dst, ie.w, reader)...)
	}

	// Phase 4: drive to the fixpoint over N ∪ overlay. Each inner Run
	// converges over the plan's (possibly stale) edge table N; overlay
	// edges are then re-examined — any candidate the comparator says
	// still improves the solution seeds another round. Candidates only
	// move entries down the CPO, so the loop terminates.
	for {
		workset = v.filterImproving(workset)
		if len(workset) == 0 {
			return nil
		}
		if err := v.warmRestartLocked(workset); err != nil {
			return err
		}
		if len(v.overlay) == 0 {
			return nil
		}
		workset = workset[:0]
		for _, e := range v.overlay {
			workset = append(workset, v.m.InsertDelta(e.Src, e.Dst, e.Weight, reader)...)
		}
	}
}

// filterImproving keeps only workset candidates that would actually
// advance the solution in the CPO — the comparator-based no-op check that
// lets the overlay loop detect convergence.
func (v *LiveView) filterImproving(ws []record.Record) []record.Record {
	out := ws[:0]
	for _, r := range ws {
		old, ok := v.look(v.spec.SolutionKey(r))
		switch {
		case !ok:
			out = append(out, r)
		case v.spec.Comparator != nil:
			if v.spec.Comparator(r, old) > 0 {
				out = append(out, r)
			}
		case !old.Equal(r):
			out = append(out, r)
		}
	}
	return out
}

// warmRestartLocked drives the resident fixpoint from the given workset.
func (v *LiveView) warmRestartLocked(workset []record.Record) error {
	res, err := v.fx.Run(workset)
	if res != nil {
		if m := v.cfg.Metrics; m != nil {
			m.WarmRestarts.Add(1)
			m.MaintenanceSupersteps.Add(int64(res.Supersteps))
		}
		v.stats.WarmRestarts++
		v.stats.Supersteps += int64(res.Supersteps)
	}
	return err
}

// fullRecomputeLocked is the last resort: reset the solution set and
// re-run the fixpoint from S0/W0 over the current graph — still inside
// the resident session, so even this path reuses workers and state.
func (v *LiveView) fullRecomputeLocked() error {
	spec, s0, w0 := v.m.Spec(v.gs)
	if v.cfg.AutoEngine {
		return v.autoRecomputeLocked(spec, s0, w0)
	}
	if err := v.fx.Rebind(spec); err != nil {
		return err
	}
	v.spec = spec
	v.rebindSources(spec)
	v.planEdges = v.gs.NumEdges()
	v.overlay = v.overlay[:0]
	v.stats.Rebinds++
	sol := v.fx.Solution()
	sol.Reset()
	sol.Init(s0)
	if m := v.cfg.Metrics; m != nil {
		m.FullRecomputes.Add(1)
	}
	v.stats.FullRecomputes++
	return v.warmRestartLocked(w0)
}

// autoRecomputeLocked is the AutoEngine full recompute: the fixpoint is
// recomputed through iterative.RunAuto — the cost model (calibrated from
// this view's measured supersteps) picks the engine and may switch to
// microsteps mid-run — and the converged result is installed into the
// resident session, which is re-bound to the new spec for subsequent
// maintenance.
func (v *LiveView) autoRecomputeLocked(spec iterative.IncrementalSpec, s0, w0 []record.Record) error {
	// The resident set is about to be overwritten anyway; dropping it
	// before the runner builds its own keeps peak solution memory at
	// ~1× instead of transiently doubling the admitted footprint. (On
	// error the view is left empty — the same state a failed non-auto
	// recompute leaves behind.)
	v.fx.Solution().Reset()
	res, err := iterative.RunAuto(iterative.AutoSpec{Incremental: spec}, s0, w0, v.cfg.Config)
	if err != nil {
		return err
	}
	if err := v.fx.Rebind(spec); err != nil {
		return err
	}
	v.spec = spec
	v.rebindSources(spec)
	v.planEdges = v.gs.NumEdges()
	v.overlay = v.overlay[:0]
	v.stats.Rebinds++
	sol := v.fx.Solution()
	sol.Init(res.Solution)
	if res.Set != nil {
		// Drop the runner's scratch solution set (under a spill budget it
		// may hold disk-backed partitions).
		res.Set.Reset()
	}
	if m := v.cfg.Metrics; m != nil {
		m.FullRecomputes.Add(1)
	}
	v.stats.FullRecomputes++
	v.stats.EngineSwitches += int64(res.Switches)
	v.stats.Supersteps += int64(res.Supersteps)
	return nil
}

// refreshPlan folds the current graph (including any overlay edges) into
// the Δ plan's Source nodes. In the common case the spec is rebuilt only
// to harvest fresh source data, which is copied into the live plan in
// place — the session and its workers survive, and InvalidateConstants
// makes the next superstep re-materialize the edge caches. When the edge
// count has drifted 4x from what the physical plan was costed with, the
// view re-optimizes instead.
func (v *LiveView) refreshPlan() error {
	edges := v.gs.NumEdges()
	drifted := edges > 4*v.planEdges || (edges > 0 && v.planEdges > 4*edges)
	spec, _, _ := v.m.Spec(v.gs)
	v.overlay = v.overlay[:0]
	if drifted {
		if err := v.fx.Rebind(spec); err != nil {
			return err
		}
		v.spec = spec
		v.rebindSources(spec)
		v.planEdges = edges
		v.stats.Rebinds++
		return nil
	}
	fresh := make([]*dataflow.Node, 0, len(v.sources))
	for _, n := range spec.Plan.Nodes() {
		if n.Contract == dataflow.Source {
			fresh = append(fresh, n)
		}
	}
	if len(fresh) != len(v.sources) {
		return fmt.Errorf("live: maintainer %s produced %d sources, plan has %d",
			v.m.Name(), len(fresh), len(v.sources))
	}
	for i, n := range v.sources {
		n.Data = fresh[i].Data
	}
	v.fx.InvalidateConstants()
	return nil
}

// Close flushes pending mutations, releases the session, and drops the
// solution set (removing any spill files). Idempotent. The closed flag
// flips under the maintenance lock before the final drain, so any
// mutation accepted by Mutate is applied here (or was already flushed)
// and later Mutate/Flush calls fail fast.
func (v *LiveView) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if batch := v.takeBatch(); len(batch) > 0 {
		err = v.applyLocked(batch)
	}
	v.fx.Solution().Reset()
	v.fx.Close()
	return err
}
