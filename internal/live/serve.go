package live

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// The HTTP JSON API of `spinflow serve`:
//
//	POST   /views                 create a view (CreateRequest)
//	GET    /views                 list view names
//	GET    /stats                 scheduler-wide stats
//	POST   /views/{name}/mutations append mutations (array of MutationJSON)
//	POST   /views/{name}/flush    force the pending batch to apply
//	POST   /views/{name}/checkpoint  force a streaming snapshot (durable views)
//	GET    /views/{name}/query?key=K  query one solution record
//	GET    /views/{name}/stats    per-view stats
//	DELETE /views/{name}          drop the view

// CreateRequest is the body of POST /views.
type CreateRequest struct {
	Name string `json:"name"`
	// Algorithm selects the maintainer: "cc", "sssp", or "auto" —
	// Connected Components with adaptive engine selection: full
	// recomputes go through iterative.RunAuto, costed with weights
	// calibrated from the view's own measured supersteps.
	Algorithm string `json:"algorithm"`
	// Source is the SSSP source vertex (ignored for cc).
	Source int64 `json:"source"`
	// Edges is the initial edge list ([src, dst] or weighted via Weights).
	Edges []EdgeJSON `json:"edges"`
	// Parallelism, BatchSize, FlushIntervalMS and SolutionMemoryBudget
	// override the scheduler's default view config when non-zero.
	Parallelism          int   `json:"parallelism"`
	BatchSize            int   `json:"batch_size"`
	FlushIntervalMS      int   `json:"flush_interval_ms"`
	SolutionMemoryBudget int64 `json:"solution_memory_budget"`
}

// EdgeJSON is one edge on the wire.
type EdgeJSON struct {
	Src    int64   `json:"src"`
	Dst    int64   `json:"dst"`
	Weight float64 `json:"weight"`
}

// MutationJSON is one streamed mutation on the wire; Op uses the
// Op.String forms ("insert-edge", "delete-edge", "add-vertex",
// "delete-vertex").
type MutationJSON struct {
	Op     string  `json:"op"`
	Src    int64   `json:"src"`
	Dst    int64   `json:"dst"`
	Weight float64 `json:"weight"`
}

func (m MutationJSON) decode() (Mutation, error) {
	switch m.Op {
	case "insert-edge":
		return Mutation{Op: OpInsertEdge, Src: m.Src, Dst: m.Dst, Weight: m.Weight}, nil
	case "delete-edge":
		return Mutation{Op: OpDeleteEdge, Src: m.Src, Dst: m.Dst}, nil
	case "add-vertex":
		return Mutation{Op: OpAddVertex, Src: m.Src}, nil
	case "delete-vertex":
		return Mutation{Op: OpDeleteVertex, Src: m.Src}, nil
	}
	return Mutation{}, fmt.Errorf("live: unknown mutation op %q", m.Op)
}

// QueryResponse is the body of GET /views/{name}/query.
type QueryResponse struct {
	Key   int64   `json:"key"`
	Found bool    `json:"found"`
	A     int64   `json:"a"`
	B     int64   `json:"b"`
	X     float64 `json:"x"`
}

// writeJSON writes a response body. An Encode error here means the
// client got a truncated or empty body after a success status line — a
// dropped connection, usually — which the handler cannot repair, but
// must not silently swallow either: it is logged and counted so a spike
// of half-delivered responses shows up in the stats.
func (s *Scheduler) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.encodeErrors.Add(1)
		s.logf("live: writing %d response: %v", code, err)
	}
}

func (s *Scheduler) writeErr(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body under the scheduler's size
// limit, answering 413 (with the standard error JSON) for oversized
// bodies and 400 for malformed ones. It reports whether decoding
// succeeded; on failure the response has been written.
func (s *Scheduler) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := s.cfg.MaxRequestBytes
	if limit <= 0 {
		limit = 1 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("live: request body exceeds %d bytes", limit))
			return false
		}
		s.writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// Handler returns the scheduler's HTTP API.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /views", func(w http.ResponseWriter, r *http.Request) {
		var req CreateRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		var m Maintainer
		auto := false
		switch req.Algorithm {
		case "cc", "":
			m = CC()
		case "auto":
			m = CC()
			auto = true
		case "sssp":
			m = SSSP(req.Source)
		default:
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("live: unknown algorithm %q", req.Algorithm))
			return
		}
		initial := make([]Mutation, len(req.Edges))
		for i, e := range req.Edges {
			initial[i] = InsertWeightedEdge(e.Src, e.Dst, e.Weight)
		}
		cfg := s.cfg.DefaultView
		if req.Parallelism != 0 {
			cfg.Parallelism = req.Parallelism
		}
		if req.BatchSize != 0 {
			cfg.BatchSize = req.BatchSize
		}
		if req.FlushIntervalMS != 0 {
			cfg.FlushInterval = time.Duration(req.FlushIntervalMS) * time.Millisecond
		}
		if req.SolutionMemoryBudget != 0 {
			cfg.SolutionMemoryBudget = req.SolutionMemoryBudget
		}
		if auto {
			cfg.AutoEngine = true
		}
		v, err := s.Create(req.Name, m, initial, &cfg)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrMemoryBudget) {
				code = http.StatusInsufficientStorage
			}
			s.writeErr(w, code, err)
			return
		}
		s.writeJSON(w, http.StatusCreated, v.Stats())
	})

	mux.HandleFunc("GET /views", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.Names())
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		st.MemoryUsed = s.Usage()
		s.writeJSON(w, http.StatusOK, st)
	})

	view := func(w http.ResponseWriter, r *http.Request) (*LiveView, bool) {
		name := r.PathValue("name")
		v, ok := s.Get(name)
		if !ok {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("live: no view %q", name))
			return nil, false
		}
		return v, true
	}

	mux.HandleFunc("POST /views/{name}/mutations", func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		var wire []MutationJSON
		if !s.decodeBody(w, r, &wire) {
			return
		}
		muts := make([]Mutation, len(wire))
		for i, mj := range wire {
			mut, err := mj.decode()
			if err != nil {
				s.writeErr(w, http.StatusBadRequest, err)
				return
			}
			muts[i] = mut
		}
		if err := v.Mutate(muts...); err != nil {
			s.writeErr(w, http.StatusConflict, err)
			return
		}
		s.writeJSON(w, http.StatusAccepted, map[string]int{"queued": len(muts)})
	})

	mux.HandleFunc("POST /views/{name}/flush", func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		if err := v.Flush(); err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, http.StatusOK, v.Stats())
	})

	mux.HandleFunc("POST /views/{name}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		if err := v.Checkpoint(); err != nil {
			s.writeErr(w, http.StatusConflict, err)
			return
		}
		s.writeJSON(w, http.StatusOK, v.Stats())
	})

	mux.HandleFunc("GET /views/{name}/query", func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		key, err := strconv.ParseInt(r.URL.Query().Get("key"), 10, 64)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("live: bad key: %w", err))
			return
		}
		rec, found := v.Query(key)
		resp := QueryResponse{Key: key, Found: found}
		if found {
			resp.A, resp.B, resp.X = rec.A, rec.B, rec.X
		}
		s.writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /views/{name}/stats", func(w http.ResponseWriter, r *http.Request) {
		v, ok := view(w, r)
		if !ok {
			return
		}
		s.writeJSON(w, http.StatusOK, v.Stats())
	})

	mux.HandleFunc("DELETE /views/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := s.Drop(name); err != nil {
			s.writeErr(w, http.StatusNotFound, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
	})

	return mux
}

// Serve runs the scheduler's HTTP API on addr until stop closes, then
// shuts the server down gracefully and closes every view — pending
// batches are flushed, sessions released, and spill files removed. If
// ready is non-nil it receives the bound address once listening (useful
// with ":0").
func Serve(addr string, s *Scheduler, stop <-chan struct{}, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr()
	}
	select {
	case <-stop:
	case err := <-errc:
		s.Close()
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	closeErr := s.Close()
	if shutdownErr != nil {
		return shutdownErr
	}
	return closeErr
}
