package live

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/iterative"
	"repro/internal/record"
)

// ShardStat reports one host's share of a sharded view's resident
// solution set.
type ShardStat struct {
	// Host is the session host ID (0 is the serving process itself).
	Host int `json:"host"`
	// Records counts the records in the partitions this host owns. Bytes
	// is the host's whole resident solution footprint: every host keeps a
	// full replica set (hosted partitions exact, the rest stale), and the
	// backend accounts bytes for the set as a whole.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// SessionProvider is the execution backend of a LiveView: the thing that
// holds the resident fixpoint and absorbs mutation batches into it. The
// view keeps the mutable graph, the micro-batching, the durability
// lifecycle, and the serving locks; the provider decides *where* the
// fixpoint lives — in this process (localSession, the default) or spread
// over `spinflow worker` processes by partition range (distSession).
//
// Every method is called under the view's maintenance lock except Lookup
// and Snapshot, which run under the shared read lock and must therefore
// be safe for concurrent use with each other.
type SessionProvider interface {
	// Apply absorbs one acknowledged mutation batch: the graph replica(s)
	// advance and the resident solution set is maintained back to a
	// converged fixpoint before Apply returns.
	Apply(batch []Mutation) error
	// Lookup returns the converged solution record for key k.
	Lookup(k int64) (record.Record, bool)
	// Snapshot copies the converged solution set out.
	Snapshot() []record.Record
	// Records and Bytes report the resident solution footprint (summed
	// over every host for a sharded session).
	Records() int
	Bytes() int64
	// EachSolution streams this process's resident solution records in
	// ascending partition order — everything for an in-process session,
	// the coordinator's hosted partitions for a sharded one. It feeds the
	// streaming snapshot writer.
	EachSolution(f func(record.Record) error) error
	// RemoteShards returns each remote host's hosted partitions as
	// concatenated record frames, keyed by host ID — the payload of the
	// per-host snapshot shard files. In-process sessions return nil.
	RemoteShards() (map[int][]byte, error)
	// Shards reports per-host occupancy (nil for in-process sessions).
	Shards() []ShardStat
	// Close releases the session; Kill abandons it crash-style (no
	// graceful remote teardown).
	Close() error
	Kill()
}

// localSession is the default in-process provider: one resident
// iterative.Fixpoint plus the plan bookkeeping the maintenance paths
// mutate (overlay edges, source bindings, the edge count the plan was
// costed with).
type localSession struct {
	v         *LiveView
	fx        *iterative.Fixpoint
	spec      iterative.IncrementalSpec
	sources   []*dataflow.Node
	planEdges int
	// overlay holds edges live in gs but not yet folded into the plan's
	// cached edge table: the insert fast path leaves the O(E) caches
	// untouched and instead re-derives candidates over these edges until
	// the solution is a fixpoint over N ∪ overlay. Deletions, drift, or
	// overlay growth fold them in (source refresh + cache invalidation).
	overlay []WEdge
}

// newLocalSession runs the cold build: spec over the view's graph, one
// cold fixpoint, everything left resident.
func newLocalSession(v *LiveView) (*localSession, error) {
	spec, s0, w0 := v.m.Spec(v.gs)
	fx, err := iterative.OpenFixpoint(spec, nil, v.cfg.Config)
	if err != nil {
		return nil, err
	}
	s := &localSession{v: v, fx: fx}
	s.setSpec(spec)
	fx.Solution().Init(s0)
	if _, err := fx.Run(w0); err != nil {
		fx.Close()
		return nil, err
	}
	return s, nil
}

// adoptLocalSession wires a provider around already-recovered state: an
// open fixpoint with its solution set loaded, and the spec it was opened
// with (the snapshot-load path).
func adoptLocalSession(v *LiveView, fx *iterative.Fixpoint, spec iterative.IncrementalSpec) *localSession {
	s := &localSession{v: v, fx: fx}
	s.setSpec(spec)
	return s
}

// setSpec installs a (re)bound spec: records the plan's Source nodes in
// construction order so refreshPlan can swap their data after graph
// mutations, and the edge count the plan was costed with.
func (s *localSession) setSpec(spec iterative.IncrementalSpec) {
	s.spec = spec
	s.sources = s.sources[:0]
	for _, n := range spec.Plan.Nodes() {
		if n.Contract == dataflow.Source {
			s.sources = append(s.sources, n)
		}
	}
	s.planEdges = s.v.gs.NumEdges()
}

func (s *localSession) Lookup(k int64) (record.Record, bool) {
	sol := s.fx.Solution()
	return sol.Lookup(sol.PartitionFor(k), k)
}

func (s *localSession) Snapshot() []record.Record { return s.fx.Solution().Snapshot() }

func (s *localSession) Records() int { return s.fx.Solution().Size() }

func (s *localSession) Bytes() int64 { return s.fx.Solution().Bytes() }

func (s *localSession) EachSolution(f func(record.Record) error) error {
	sol := s.fx.Solution()
	for p := 0; p < sol.Parallelism(); p++ {
		var perr error
		sol.EachPartition(p, func(r record.Record) {
			if perr == nil {
				perr = f(r)
			}
		})
		if perr != nil {
			return perr
		}
	}
	return nil
}

func (s *localSession) RemoteShards() (map[int][]byte, error) { return nil, nil }

func (s *localSession) Shards() []ShardStat { return nil }

func (s *localSession) Close() error {
	s.fx.Solution().Reset()
	s.fx.Close()
	return nil
}

func (s *localSession) Kill() {
	s.fx.Solution().Reset()
	s.fx.Close()
}

// solReader exposes the resident solution to maintainers. Because flushes
// force-store region resets before building insert deltas, lookups during
// delta construction always see repaired labels, never stale ones.
type solReader struct {
	s *localSession
}

func (r solReader) Lookup(k int64) (record.Record, bool) {
	return r.s.Lookup(k)
}

func (r solReader) Each(f func(record.Record)) {
	r.s.fx.Solution().Each(f)
}

// Apply absorbs one mutation batch into the resident fixpoint.
func (s *localSession) Apply(batch []Mutation) error {
	v := s.v
	sol := s.fx.Solution()

	// Phase 1: apply the batch to the graph, classifying the work. The
	// solution set is untouched here, so every impact classification
	// below reads a consistent pre-batch state.
	var (
		inserts   []insertedEdge
		newVerts  []int64
		dropVerts []int64
		affected  map[int64]struct{}
		full      bool
		hasDelete bool
	)
	reader := solReader{s: s}
	noteDelete := func(src, dst int64) {
		hasDelete = true
		if full {
			return
		}
		// Affected regions are unions of whole components: once an
		// endpoint is in the set, its component's region is already fully
		// included, so re-expanding it (an O(V) solution scan) is skipped.
		if _, seen := affected[src]; seen {
			return
		}
		if _, seen := affected[dst]; seen {
			return
		}
		region, ok := v.m.DeleteImpact(v.gs, src, dst, reader)
		if !ok {
			full = true
			return
		}
		if affected == nil {
			affected = make(map[int64]struct{})
		}
		for _, a := range region {
			affected[a] = struct{}{}
		}
	}
	for _, mut := range batch {
		switch mut.Op {
		case OpInsertEdge:
			for _, e := range []int64{mut.Src, mut.Dst} {
				if v.gs.AddVertex(e) {
					newVerts = append(newVerts, e)
				}
			}
			oldW, existed := v.gs.EdgeWeight(mut.Src, mut.Dst)
			if v.gs.AddEdge(mut.Src, mut.Dst, mut.Weight) {
				inserts = append(inserts, insertedEdge{mut.Src, mut.Dst, mut.Weight})
				if existed && oldW != mut.Weight {
					// Re-weighting an existing edge is not monotone (the
					// weight may have increased, lengthening paths through
					// it): repair like a deletion of the old edge.
					noteDelete(mut.Src, mut.Dst)
				}
			}
		case OpDeleteEdge:
			if _, ok := v.gs.RemoveEdge(mut.Src, mut.Dst); ok {
				noteDelete(mut.Src, mut.Dst)
			}
		case OpAddVertex:
			if v.gs.AddVertex(mut.Src) {
				newVerts = append(newVerts, mut.Src)
			}
		case OpDeleteVertex:
			if !v.gs.HasVertex(mut.Src) {
				continue
			}
			// Classify each incident edge's impact before it disappears.
			for _, e := range v.gs.IncidentEdges(mut.Src) {
				noteDelete(e.Src, e.Dst)
			}
			v.gs.RemoveVertex(mut.Src)
			dropVerts = append(dropVerts, mut.Src)
			hasDelete = true
		default:
			return fmt.Errorf("live: unknown mutation op %v", mut.Op)
		}
	}

	// Dropped vertices leave the solution immediately (and must not be
	// resurrected by region resets).
	for _, d := range dropVerts {
		sol.Delete(d)
		delete(affected, d)
	}
	if !full && len(affected) > 0 &&
		float64(len(affected)) > v.cfg.RecomputeFraction*float64(sol.Size()) {
		full = true
	}

	// New edges join the overlay; whether they also reach the plan's
	// cached edge table depends on the fold decision below.
	for _, ie := range inserts {
		s.overlay = append(s.overlay, WEdge{Src: ie.src, Dst: ie.dst, Weight: ie.w})
	}

	if full {
		return s.fullRecompute()
	}

	// Phase 2 (fold): deletions must be reflected in the plan's edge
	// table before any repair propagates through it — stale edges would
	// resurrect retracted state — and an oversized overlay is folded so
	// the outer loop below stays cheap. Insert-only batches under the
	// threshold skip this entirely: the O(E) constant caches stay warm,
	// which is what makes small-delta maintenance fast.
	if hasDelete || len(s.overlay)*8 > v.gs.NumEdges() {
		if err := s.refreshPlan(); err != nil {
			return err
		}
	}

	// Phase 3: bounded recompute of the affected region — resets plus a
	// candidate seed over the region's surviving edges.
	var workset []record.Record
	if len(affected) > 0 {
		region := make([]int64, 0, len(affected))
		for a := range affected {
			region = append(region, a)
		}
		sort.Slice(region, func(i, j int) bool { return region[i] < region[j] })
		resets, seed, drops := v.m.RecomputeSeed(v.gs, region)
		for _, d := range drops {
			sol.Delete(d)
		}
		for _, r := range resets {
			sol.ForceStore(r)
		}
		workset = append(workset, seed...)
		if m := v.cfg.Metrics; m != nil {
			m.PartialRecomputes.Add(1)
		}
		v.stats.PartialRecomputes++
	}
	for _, nv := range newVerts {
		if r, ok := v.m.VertexRecord(nv); ok {
			sol.Update(r)
		}
	}
	// Monotone insert candidates. Region resets are already force-stored,
	// so lookups see the re-initialized labels, never stale ones.
	for _, ie := range inserts {
		workset = append(workset, v.m.InsertDelta(ie.src, ie.dst, ie.w, reader)...)
	}

	// Phase 4: drive to the fixpoint over N ∪ overlay. Each inner Run
	// converges over the plan's (possibly stale) edge table N; overlay
	// edges are then re-examined — any candidate the comparator says
	// still improves the solution seeds another round. Candidates only
	// move entries down the CPO, so the loop terminates.
	for {
		workset = s.filterImproving(workset)
		if len(workset) == 0 {
			return nil
		}
		if err := s.warmRestart(workset); err != nil {
			return err
		}
		if len(s.overlay) == 0 {
			return nil
		}
		workset = workset[:0]
		for _, e := range s.overlay {
			workset = append(workset, v.m.InsertDelta(e.Src, e.Dst, e.Weight, reader)...)
		}
	}
}

// filterImproving keeps only workset candidates that would actually
// advance the solution in the CPO — the comparator-based no-op check that
// lets the overlay loop detect convergence.
func (s *localSession) filterImproving(ws []record.Record) []record.Record {
	out := ws[:0]
	for _, r := range ws {
		old, ok := s.Lookup(s.spec.SolutionKey(r))
		switch {
		case !ok:
			out = append(out, r)
		case s.spec.Comparator != nil:
			if s.spec.Comparator(r, old) > 0 {
				out = append(out, r)
			}
		case !old.Equal(r):
			out = append(out, r)
		}
	}
	return out
}

// warmRestart drives the resident fixpoint from the given workset.
func (s *localSession) warmRestart(workset []record.Record) error {
	res, err := s.fx.Run(workset)
	if res != nil {
		v := s.v
		if m := v.cfg.Metrics; m != nil {
			m.WarmRestarts.Add(1)
			m.MaintenanceSupersteps.Add(int64(res.Supersteps))
		}
		v.stats.WarmRestarts++
		v.stats.Supersteps += int64(res.Supersteps)
	}
	return err
}

// fullRecompute is the last resort: reset the solution set and re-run
// the fixpoint from S0/W0 over the current graph — still inside the
// resident session, so even this path reuses workers and state.
func (s *localSession) fullRecompute() error {
	v := s.v
	spec, s0, w0 := v.m.Spec(v.gs)
	if v.cfg.AutoEngine {
		return s.autoRecompute(spec, s0, w0)
	}
	if err := s.fx.Rebind(spec); err != nil {
		return err
	}
	s.setSpec(spec)
	s.overlay = s.overlay[:0]
	v.stats.Rebinds++
	sol := s.fx.Solution()
	sol.Reset()
	sol.Init(s0)
	if m := v.cfg.Metrics; m != nil {
		m.FullRecomputes.Add(1)
	}
	v.stats.FullRecomputes++
	return s.warmRestart(w0)
}

// autoRecompute is the AutoEngine full recompute: the fixpoint is
// recomputed through iterative.RunAuto — the cost model (calibrated from
// this view's measured supersteps) picks the engine and may switch to
// microsteps mid-run — and the converged result is installed into the
// resident session, which is re-bound to the new spec for subsequent
// maintenance.
func (s *localSession) autoRecompute(spec iterative.IncrementalSpec, s0, w0 []record.Record) error {
	v := s.v
	// The resident set is about to be overwritten anyway; dropping it
	// before the runner builds its own keeps peak solution memory at
	// ~1× instead of transiently doubling the admitted footprint. (On
	// error the view is left empty — the same state a failed non-auto
	// recompute leaves behind.)
	s.fx.Solution().Reset()
	res, err := iterative.RunAuto(iterative.AutoSpec{Incremental: spec}, s0, w0, v.cfg.Config)
	if err != nil {
		return err
	}
	if err := s.fx.Rebind(spec); err != nil {
		return err
	}
	s.setSpec(spec)
	s.overlay = s.overlay[:0]
	v.stats.Rebinds++
	sol := s.fx.Solution()
	sol.Init(res.Solution)
	if res.Set != nil {
		// Drop the runner's scratch solution set (under a spill budget it
		// may hold disk-backed partitions).
		res.Set.Reset()
	}
	if m := v.cfg.Metrics; m != nil {
		m.FullRecomputes.Add(1)
	}
	v.stats.FullRecomputes++
	v.stats.EngineSwitches += int64(res.Switches)
	v.stats.Supersteps += int64(res.Supersteps)
	return nil
}

// refreshPlan folds the current graph (including any overlay edges) into
// the Δ plan's Source nodes. In the common case the spec is rebuilt only
// to harvest fresh source data, which is copied into the live plan in
// place — the session and its workers survive, and InvalidateConstants
// makes the next superstep re-materialize the edge caches. When the edge
// count has drifted 4x from what the physical plan was costed with, the
// view re-optimizes instead.
func (s *localSession) refreshPlan() error {
	v := s.v
	edges := v.gs.NumEdges()
	drifted := edges > 4*s.planEdges || (edges > 0 && s.planEdges > 4*edges)
	spec, _, _ := v.m.Spec(v.gs)
	s.overlay = s.overlay[:0]
	if drifted {
		if err := s.fx.Rebind(spec); err != nil {
			return err
		}
		s.setSpec(spec)
		v.stats.Rebinds++
		return nil
	}
	fresh := make([]*dataflow.Node, 0, len(s.sources))
	for _, n := range spec.Plan.Nodes() {
		if n.Contract == dataflow.Source {
			fresh = append(fresh, n)
		}
	}
	if len(fresh) != len(s.sources) {
		return fmt.Errorf("live: maintainer %s produced %d sources, plan has %d",
			v.m.Name(), len(fresh), len(s.sources))
	}
	for i, n := range s.sources {
		n.Data = fresh[i].Data
	}
	s.fx.InvalidateConstants()
	return nil
}
