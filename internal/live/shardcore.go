package live

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/distrib"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// Sharded maintenance sessions: a LiveView whose ViewConfig.Workers is
// set spreads its partition ranges over 1+len(Workers) processes. The
// serving process is host 0 (the coordinator); every `spinflow worker`
// process hosts one range through a long-lived *maintenance session* —
// the live tier's counterpart of a distrib batch job, layered on the
// same control-plane JSON protocol (distrib.ViewHost hands view_*
// messages to this package) and the same TCP data plane.
//
// The protocol keeps a strong invariant: every host holds an identical
// replica of the graph and applies every mutation batch to it, so the
// spec, the physical plan (digest-verified at open and after every
// re-plan), the placement, and all maintenance *decisions* (full
// recompute or not, overlay fold or not) are derived independently on
// each host and must agree byte-for-byte. Only two things actually
// travel per flush: the mutation batch, and the merged insert-candidate
// workset. Solution state is partitioned — each host's hosted
// partitions are exact, its non-hosted partitions are stale — which is
// why candidate derivation goes through hostedReader below: a stale
// label may *mask* a propagation the fixpoint needs, so a host only
// reads labels it owns and lets the maintainer's fallback produce a
// sound (CPO-upper-bound) candidate for the rest. The owners emit the
// exact candidates, the coordinator merges all of them, and junk
// candidates are rejected by the ∪̇ comparator.
//
// Deletions (and re-weights and vertex drops) are not monotone; the
// in-process bounded-recompute repair needs whole-solution scans that a
// partitioned session cannot do, so sharded sessions route every
// non-monotone batch to a coordinated full recompute — still warm: the
// mesh, the processes, and the transport all survive, only the plan and
// the solution state rebuild.

// The view-session control verbs (rides the distrib worker control
// connection; every kind is prefixed view_ so distrib can dispatch
// without knowing the schema).
const (
	viewOpen      = "view_open"      // coordinator → worker: spec + graph dump (+ solution on recovery)
	viewReady     = "view_ready"     // worker → coordinator: data addr + plan digest
	viewStart     = "view_start"     // coordinator → worker: all data addrs; mesh now
	viewMeshed    = "view_meshed"    // worker → coordinator: mesh is up, fixpoint open
	viewApply     = "view_apply"     // coordinator → worker: one mutation batch
	viewApplied   = "view_applied"   // worker → coordinator: batch applied; Full = wants full recompute
	viewReplan    = "view_replan"    // coordinator → worker: rebuild spec/plan/session (Full = reset + S0/W0)
	viewReplanned = "view_replanned" // worker → coordinator: new plan digest
	viewGather    = "view_gather"    // coordinator → worker: derive insert candidates (Round 0 = fresh batch)
	viewCand      = "view_cand"      // worker → coordinator: candidate frames
	viewSeed      = "view_seed"      // coordinator → worker: merged workset; seed it
	viewSeeded    = "view_seeded"    // worker → coordinator: Count = hosted candidates that improve
	viewStep      = "view_step"      // coordinator → worker: run one superstep (barrier release)
	viewStepDone  = "view_step_done" // worker → coordinator: local next-workset count
	viewQuery     = "view_query"     // coordinator → worker: lookup Key in a hosted partition
	viewValue     = "view_value"     // worker → coordinator: Found + the record
	viewCollect   = "view_collect"   // coordinator → worker: ship hosted partitions (+ spans)
	viewSolution  = "view_solution"  // worker → coordinator: hosted partition frames
	viewStats     = "view_stats"     // coordinator → worker: report hosted occupancy
	viewStatted   = "view_statted"   // worker → coordinator: Count records / Bytes resident
	viewClose     = "view_close"     // coordinator → worker: end the session
	viewClosed    = "view_closed"    // worker → coordinator: session torn down
	viewError     = "view_error"     // worker → coordinator: verb failed
)

// shardSpec is everything a worker needs to build its identical share of
// the session: the maintainer, the topology, and the execution config.
type shardSpec struct {
	Name                 string `json:"name"`
	Algorithm            string `json:"algorithm"`
	Source               int64  `json:"source,omitempty"`
	Parallelism          int    `json:"parallelism"`
	Hosts                int    `json:"hosts"`
	BatchSize            int    `json:"batch_size,omitempty"`
	Backend              string `json:"backend,omitempty"`
	SolutionMemoryBudget int64  `json:"solution_memory_budget,omitempty"`
	Planner              int    `json:"planner,omitempty"`
	DisableFusion        bool   `json:"disable_fusion,omitempty"`
	WireCompression      bool   `json:"wire_compression,omitempty"`
	TraceID              uint64 `json:"trace_id,omitempty"`
	TraceLabel           string `json:"trace_label,omitempty"`
}

// shardMsg is one view-session control message (JSON, same codec as the
// distrib control plane).
type shardMsg struct {
	Kind      string     `json:"kind"`
	Spec      *shardSpec `json:"spec,omitempty"`
	HostID    int        `json:"host_id,omitempty"`
	DataAddr  string     `json:"data_addr,omitempty"`
	DataAddrs []string   `json:"data_addrs,omitempty"`
	Digest    string     `json:"digest,omitempty"`
	Count     int        `json:"count,omitempty"`
	Round     int        `json:"round,omitempty"`
	Full      bool       `json:"full,omitempty"`
	Found     bool       `json:"found,omitempty"`
	Key       int64      `json:"key,omitempty"`
	Bytes     int64      `json:"bytes,omitempty"`
	Frames    []byte     `json:"frames,omitempty"`
	Sol       []byte     `json:"sol,omitempty"`
	Spans     []obs.Span `json:"spans,omitempty"`
	Err       string     `json:"err,omitempty"`
}

// maintainerFor rebuilds a Maintainer from its wire identity.
func maintainerFor(algorithm string, source int64) (Maintainer, error) {
	switch algorithm {
	case "cc":
		return CC(), nil
	case "sssp":
		return SSSP(source), nil
	}
	return nil, fmt.Errorf("live: unknown sharded algorithm %q", algorithm)
}

// --- frame codecs --------------------------------------------------------

// recordsToFrames packs records into one CRC-framed batch.
func recordsToFrames(recs []record.Record) []byte {
	return record.AppendFrame(nil, recs)
}

// packRecords is the compact wire form for transient control-plane
// payloads (mutation batches, candidate worksets): a flags byte plus
// varint fields, skipping zero B/X/Tag — a quarter of the framed record
// encoding, which matters because these payloads dominate what a sharded
// flush ships. Durable payloads (graph dumps, solution shards) stay on
// the CRC-framed codec the WAL and snapshots share.
func packRecords(recs []record.Record) []byte {
	out := make([]byte, 0, 8*len(recs)+binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(recs)))
	var xb [8]byte
	for _, r := range recs {
		var flags byte
		if r.B != 0 {
			flags |= 1
		}
		if r.X != 0 {
			flags |= 2
		}
		if r.Tag != 0 {
			flags |= 4
		}
		out = append(out, flags)
		out = binary.AppendUvarint(out, uint64(r.A))
		if flags&1 != 0 {
			out = binary.AppendUvarint(out, uint64(r.B))
		}
		if flags&2 != 0 {
			binary.LittleEndian.PutUint64(xb[:], math.Float64bits(r.X))
			out = append(out, xb[:]...)
		}
		if flags&4 != 0 {
			out = append(out, r.Tag)
		}
	}
	return out
}

// unpackRecords decodes a packRecords payload.
func unpackRecords(p []byte) ([]record.Record, error) {
	bad := fmt.Errorf("live: malformed packed records")
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, bad
	}
	p = p[w:]
	out := make([]record.Record, 0, min(int(n), 1<<16))
	for i := uint64(0); i < n; i++ {
		if len(p) == 0 {
			return nil, bad
		}
		flags := p[0]
		p = p[1:]
		var r record.Record
		a, w := binary.Uvarint(p)
		if w <= 0 {
			return nil, bad
		}
		r.A = int64(a)
		p = p[w:]
		if flags&1 != 0 {
			b, w := binary.Uvarint(p)
			if w <= 0 {
				return nil, bad
			}
			r.B = int64(b)
			p = p[w:]
		}
		if flags&2 != 0 {
			if len(p) < 8 {
				return nil, bad
			}
			r.X = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		}
		if flags&4 != 0 {
			if len(p) < 1 {
				return nil, bad
			}
			r.Tag = p[0]
			p = p[1:]
		}
		out = append(out, r)
	}
	if len(p) != 0 {
		return nil, bad
	}
	return out, nil
}

// framesToRecords decodes concatenated record frames into a flat slice.
func framesToRecords(frames []byte) ([]record.Record, error) {
	fr := record.NewFrameReader(bytes.NewReader(frames))
	var out []record.Record
	for {
		b, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("live: shard payload: %w", err)
		}
		out = append(out, b...)
	}
}

// dumpGraph serializes the graph replica: one vertices frame plus one
// edges frame *in edge-slice order*. Replicas rebuild by replaying
// AddVertex/AddEdge in this order and then apply every later mutation
// batch in arrival order, so their internal edge slices — and therefore
// the specs derived from them — stay identical to the coordinator's.
func dumpGraph(gs *GraphState) []byte {
	verts := make(record.Batch, 0, gs.NumVertices())
	for _, v := range gs.Vertices() {
		verts = append(verts, record.Record{A: v})
	}
	out := record.AppendFrame(nil, verts)
	edges := make(record.Batch, 0, len(gs.edges))
	for _, e := range gs.edges {
		edges = append(edges, record.Record{A: e.Src, B: e.Dst, X: e.Weight})
	}
	return record.AppendFrame(out, edges)
}

// loadGraph rebuilds a graph replica from dumpGraph frames.
func loadGraph(frames []byte) (*GraphState, error) {
	fr := record.NewFrameReader(bytes.NewReader(frames))
	verts, err := fr.Next()
	if err != nil {
		return nil, fmt.Errorf("live: graph dump vertices: %w", err)
	}
	edges, err := fr.Next()
	if err != nil {
		return nil, fmt.Errorf("live: graph dump edges: %w", err)
	}
	gs := NewGraphState()
	for _, r := range verts {
		gs.AddVertex(r.A)
	}
	for _, r := range edges {
		gs.AddVertex(r.A)
		gs.AddVertex(r.B)
		gs.AddEdge(r.A, r.B, r.X)
	}
	return gs, nil
}

// --- per-host session core ----------------------------------------------

// shardCore is one host's share of a sharded maintenance session: the
// graph replica, the locally derived spec and plan, the meshed transport,
// and a resident Fixpoint hosting this host's partition range. The
// coordinator owns core 0 (its gs aliases the LiveView's); each worker
// owns one with a replica gs.
type shardCore struct {
	name  string
	m     Maintainer
	cfg   iterative.Config
	host  int
	gs    *GraphState
	place runtime.Placement
	mtr   *metrics.Counters
	reg   *obs.Registry

	tr   *runtime.TCPTransport
	sol  *runtime.SolutionSet
	fx   *iterative.Fixpoint
	spec iterative.IncrementalSpec
	phys *optimizer.PhysPlan
	// dataAddr is the transport's listen address (workers echo it in
	// view_ready so the coordinator can assemble the mesh).
	dataAddr string
	// w0 is the cold initial workset, kept until the mesh is up (workers
	// seed it at view_start; the coordinator runs it). Nil on recovery.
	w0 []record.Record
	// overlay holds edges in gs but not yet folded into the plan's edge
	// table; fresh holds the *current* batch's inserts, the round-0
	// candidate source. Both evolve identically on every host.
	overlay []WEdge
	fresh   []WEdge
	digest  string
	// pending buffers this host's own-keyed candidates between the
	// gather and seed verbs of one round: candidates a host emits for
	// keys it owns never travel — only remote-keyed ones go up to the
	// coordinator, which routes every candidate straight to its owner.
	pending []record.Record
}

// specFor assembles the per-host iterative.Config a shardSpec describes.
func specFor(ss shardSpec, hostID int, reg *obs.Registry, mtr *metrics.Counters) iterative.Config {
	cfg := iterative.Config{
		Parallelism:          ss.Parallelism,
		BatchSize:            ss.BatchSize,
		Hosts:                ss.Hosts,
		Host:                 hostID,
		Metrics:              mtr,
		SolutionBackend:      runtime.SolutionBackendKind(ss.Backend),
		SolutionMemoryBudget: ss.SolutionMemoryBudget,
		Planner:              optimizer.PlannerKind(ss.Planner),
		DisableFusion:        ss.DisableFusion,
		WireCompression:      ss.WireCompression,
	}
	if reg != nil {
		cfg.Obs = reg
		cfg.TraceID = obs.TraceID(ss.TraceID)
		cfg.TraceLabel = ss.TraceLabel
		reg.SetCounters(mtr)
	}
	return cfg
}

// newShardCore builds everything up to — but not including — the peer
// mesh: the spec and plan over gs, the solution set (initialized from
// `recovered` when non-nil, S0 otherwise), and the transport listening on
// an ephemeral port. The fixpoint opens in mesh(), once all data addrs
// are known.
func newShardCore(name string, m Maintainer, cfg iterative.Config, hostID int,
	gs *GraphState, recovered []record.Record, reg *obs.Registry) (*shardCore, string, error) {
	spec, s0, w0 := m.Spec(gs)
	phys, err := iterative.PlanIncremental(spec, cfg, spec.ExpectedIterations)
	if err != nil {
		return nil, "", err
	}
	c := &shardCore{
		name: name, m: m, cfg: cfg, host: hostID, gs: gs,
		place: runtime.ContiguousPlacement(cfg.Parallelism, cfg.Hosts),
		mtr:   cfg.Metrics, reg: reg,
		spec: spec, phys: phys,
		digest: distrib.PlanDigest(phys),
	}
	c.sol = runtime.NewSolutionSetWith(cfg.Parallelism, spec.SolutionKey, spec.Comparator, c.mtr,
		runtime.SolutionOptions{Backend: cfg.SolutionBackend, MemoryBudget: cfg.SolutionMemoryBudget})
	if recovered != nil {
		c.sol.Init(recovered)
	} else {
		c.sol.Init(s0)
		c.w0 = w0
	}
	c.tr = runtime.NewTCPTransport(hostID, c.place, phys.NumEdges, c.mtr)
	c.tr.SetCompression(cfg.WireCompression)
	if reg != nil {
		c.tr.SetObs(cfg.TraceID, reg.Histogram("transport_send_duration"))
	}
	addr, err := c.tr.Listen("127.0.0.1:0")
	if err != nil {
		c.sol.Reset()
		return nil, "", err
	}
	return c, addr, nil
}

// mesh connects the data plane and opens the resident fixpoint on it.
// Workers additionally seed their share of the cold workset here; the
// coordinator drives its own through the barrier.
func (c *shardCore) mesh(dataAddrs []string, seedCold bool) error {
	if err := c.tr.ConnectPeers(dataAddrs, distrib.MeshTimeout); err != nil {
		return err
	}
	fx, err := iterative.OpenFixpointOn(c.spec, c.sol, c.cfg, c.phys, c.tr)
	if err != nil {
		return err
	}
	c.fx = fx
	if seedCold && c.w0 != nil {
		fx.SeedWorkset(c.w0)
	}
	return nil
}

// applyBatch advances the graph replica by one mutation batch and
// reports whether the batch demands a coordinated full recompute. The
// classification is a pure function of (replica state, batch), so every
// host reaches the same verdict — the coordinator cross-checks anyway.
// Insertions queue on the overlay for candidate derivation; fresh
// isolated vertices enter the solution directly (deterministic on every
// host, no coordination needed).
func (c *shardCore) applyBatch(muts []Mutation) (full bool, err error) {
	c.fresh = c.fresh[:0]
	addVertex := func(vid int64) {
		if c.gs.AddVertex(vid) {
			if r, ok := c.m.VertexRecord(vid); ok {
				c.sol.Update(r)
			}
		}
	}
	for _, mut := range muts {
		switch mut.Op {
		case OpInsertEdge:
			addVertex(mut.Src)
			addVertex(mut.Dst)
			oldW, existed := c.gs.EdgeWeight(mut.Src, mut.Dst)
			if c.gs.AddEdge(mut.Src, mut.Dst, mut.Weight) {
				e := WEdge{Src: mut.Src, Dst: mut.Dst, Weight: mut.Weight}
				c.overlay = append(c.overlay, e)
				c.fresh = append(c.fresh, e)
				if existed && oldW != mut.Weight {
					// Re-weighting is not monotone: repair like a deletion.
					full = true
				}
			}
		case OpDeleteEdge:
			if _, ok := c.gs.RemoveEdge(mut.Src, mut.Dst); ok {
				full = true
			}
		case OpAddVertex:
			addVertex(mut.Src)
		case OpDeleteVertex:
			if c.gs.HasVertex(mut.Src) {
				c.gs.RemoveVertex(mut.Src)
				c.sol.Delete(mut.Src)
				full = true
			}
		default:
			return false, fmt.Errorf("live: unknown mutation op %v", mut.Op)
		}
	}
	return full, nil
}

// overlayOverflow reports whether the unfolded edge overlay has outgrown
// the fast path. Sharded sessions tolerate a far larger overlay than the
// in-process session (which folds at overlay*8 > edges): folding here
// means every replica re-derives the spec and re-plans — work that
// duplicates per host and serializes against the digest cross-check —
// while an un-folded edge costs only its share of a gather round, which
// ships nothing once nothing improves. The fixpoint answer is identical
// either way; the rounds loop re-examines the overlay until quiescence.
func (c *shardCore) overlayOverflow() bool {
	return len(c.overlay)*2 > c.gs.NumEdges()
}

// replan rebuilds the spec and plan over the current graph replica and
// swaps the session onto it, keeping the mesh. Fixpoint.Rebind cannot be
// used here: it re-plans without rebinding the transport's per-edge
// routing state, so a meshed session must tear down the old fixpoint,
// Rebind the transport to the new plan's edge count, and open a fresh
// fixpoint on it. full=true additionally resets the solution to S0 and
// seeds W0 (the coordinated full-recompute path); full=false adopts the
// converged solution as-is (the overlay fold path). Returns the workset
// the coordinator should drive (nil unless full).
func (c *shardCore) replan(full bool) ([]record.Record, error) {
	spec, s0, w0 := c.m.Spec(c.gs)
	phys, err := iterative.PlanIncremental(spec, c.cfg, spec.ExpectedIterations)
	if err != nil {
		return nil, err
	}
	c.fx.Close()
	c.tr.Rebind(phys.NumEdges)
	if full {
		c.sol.Reset()
		c.sol.Init(s0)
	}
	fx, err := iterative.OpenFixpointOn(spec, c.sol, c.cfg, phys, c.tr)
	if err != nil {
		return nil, err
	}
	c.fx = fx
	c.spec = spec
	c.phys = phys
	c.digest = distrib.PlanDigest(phys)
	c.overlay = c.overlay[:0]
	if !full {
		return nil, nil
	}
	c.fresh = c.fresh[:0]
	if c.host != 0 {
		// Workers seed their share now; the coordinator drives w0 through
		// RunDriven, which seeds on entry.
		fx.SeedWorkset(w0)
	}
	return w0, nil
}

// hostedReader is the maintainer's solution access during sharded
// candidate derivation: lookups hit only partitions this host owns.
// Non-hosted partitions hold stale replicas — and a stale label can mask
// a propagation the fixpoint still needs — so misses are reported as
// absent and the maintainer's fallback produces a sound upper-bound
// candidate (CC: a vertex proposes its own id; SSSP: no candidate). The
// owning host emits the exact candidate for the same edge, and the
// merged workset contains both; ∪̇ keeps whichever improves.
type hostedReader struct{ c *shardCore }

func (r hostedReader) Lookup(k int64) (record.Record, bool) {
	p := r.c.sol.PartitionFor(k)
	if r.c.place[p] != r.c.host {
		return record.Record{}, false
	}
	return r.c.sol.Lookup(p, k)
}

func (r hostedReader) Each(f func(record.Record)) {
	for _, p := range r.c.place.HostedBy(r.c.host) {
		r.c.sol.EachPartition(p, f)
	}
}

// gather derives this host's insert candidates: round 0 covers the
// current batch's inserts, later rounds re-examine the whole overlay
// (the converged solution may have moved, re-arming older overlay
// edges). Two source-side filters keep dead weight off the wire:
//
//   - A candidate keyed on one endpoint was derived from the *other*
//     endpoint's label; only that label's owner emits it. The owner's
//     exact candidate dominates any non-owner fallback under ∪̇ (CC
//     labels only decrease from the self-id a fallback proposes; SSSP
//     fallbacks emit nothing), so non-owner emissions are dropped.
//   - When this host also owns the candidate's own key it can run the
//     improvement check right here; a non-improving candidate is a ∪̇
//     no-op in superstep 1, so it never ships. Remote-keyed candidates
//     still ship unfiltered — only the key's owner can judge them.
func (c *shardCore) gather(round int) []record.Record {
	edges := c.fresh
	if round > 0 {
		edges = c.overlay
	}
	reader := hostedReader{c: c}
	var out []record.Record
	for _, e := range edges {
		ownsSrc, ownsDst := c.ownsKey(e.Src), c.ownsKey(e.Dst)
		if !ownsSrc && !ownsDst {
			continue
		}
		for _, r := range c.m.InsertDelta(e.Src, e.Dst, e.Weight, reader) {
			k := c.spec.SolutionKey(r)
			if (k == e.Dst && !ownsSrc) || (k == e.Src && !ownsDst) {
				continue // the other endpoint's owner emits the exact one
			}
			if c.ownsKey(k) {
				if !c.improves(r) {
					continue
				}
			} else if init, ok := c.m.VertexRecord(k); ok && c.spec.Comparator != nil &&
				c.spec.Comparator(r, init) <= 0 {
				// The monotone path only ever advances a label from its
				// initial vertex record; a candidate that does not beat
				// even that can never beat the owner's current label.
				continue
			}
			out = append(out, r)
		}
	}
	return out
}

// ownsKey reports whether this host hosts the solution partition of k.
func (c *shardCore) ownsKey(k int64) bool {
	return c.place[c.sol.PartitionFor(k)] == c.host
}

// improves reports whether r would advance the current solution entry
// for its key (callers ensure the key's partition is hosted here).
func (c *shardCore) improves(r record.Record) bool {
	k := c.spec.SolutionKey(r)
	old, ok := c.sol.Lookup(c.sol.PartitionFor(k), k)
	if !ok {
		return true
	}
	if c.spec.Comparator != nil {
		return c.spec.Comparator(r, old) > 0
	}
	return !old.Equal(r)
}

// collapseCandidates canonicalizes the merged candidate workset: sorted
// by solution key, and collapsed to the single best candidate per key.
// Owners emit exact candidates and non-owners emit sound fallbacks for
// the same edges, so the raw merge carries duplicates ∪̇ would discard in
// the first superstep anyway — collapsing them here keeps the dead
// weight off the wire and out of the seed scans.
func (c *shardCore) collapseCandidates(ws []record.Record) []record.Record {
	key := c.spec.SolutionKey
	sort.Slice(ws, func(i, j int) bool {
		ki, kj := key(ws[i]), key(ws[j])
		if ki != kj {
			return ki < kj
		}
		return record.Less(ws[i], ws[j])
	})
	cmp := c.spec.Comparator
	if cmp == nil {
		// Without an improvement order there is no "best": keep every
		// distinct candidate and let ∪̇ arbitrate.
		return ws
	}
	out := ws[:0]
	for _, r := range ws {
		if len(out) > 0 && key(out[len(out)-1]) == key(r) {
			if cmp(r, out[len(out)-1]) > 0 {
				out[len(out)-1] = r
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// splitByHost routes a candidate workset to the hosts that will read it:
// each record goes to the owner of its solution partition (the improving
// check) and, if different, the owner of its workset partition (the
// engine's seed). For the built-in maintainers both keys are the vertex
// id, so every record lands on exactly one host.
func (c *shardCore) splitByHost(ws []record.Record) [][]record.Record {
	out := make([][]record.Record, c.cfg.Hosts)
	for _, r := range ws {
		hs := c.place[c.sol.PartitionFor(c.spec.SolutionKey(r))]
		out[hs] = append(out[hs], r)
		if hw := c.place[record.PartitionOf(c.spec.WorksetKey(r), c.cfg.Parallelism)]; hw != hs {
			out[hw] = append(out[hw], r)
		}
	}
	return out
}

// countImproving counts merged-workset candidates that would advance a
// partition this host owns — the distributed form of the in-process
// filterImproving convergence check. The global sum across hosts is
// exact: every key has exactly one owner.
func (c *shardCore) countImproving(ws []record.Record) int {
	n := 0
	for _, r := range ws {
		if c.ownsKey(c.spec.SolutionKey(r)) && c.improves(r) {
			n++
		}
	}
	return n
}

// lookup probes a hosted partition (callers route by placement).
func (c *shardCore) lookup(k int64) (record.Record, bool) {
	p := c.sol.PartitionFor(k)
	if c.place[p] != c.host {
		return record.Record{}, false
	}
	return c.sol.Lookup(p, k)
}

// collect serializes the hosted partitions, one frame per partition in
// ascending partition order, records sorted canonically within each.
func (c *shardCore) collect() []byte {
	var out []byte
	for _, p := range c.place.HostedBy(c.host) {
		var b record.Batch
		c.sol.EachPartition(p, func(r record.Record) {
			b = append(b, r)
		})
		sort.Slice(b, func(x, y int) bool { return record.Less(b[x], b[y]) })
		out = record.AppendFrame(out, b)
	}
	return out
}

// hostedRecords counts the records in this host's partitions.
func (c *shardCore) hostedRecords() int {
	n := 0
	for _, p := range c.place.HostedBy(c.host) {
		c.sol.EachPartition(p, func(record.Record) { n++ })
	}
	return n
}

// close tears the session down: fixpoint, transport, solution state.
func (c *shardCore) close() {
	if c.fx != nil {
		c.fx.Close()
		c.fx = nil
	}
	c.tr.Close()
	c.sol.Reset()
}
