package live

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/distrib"
	"repro/internal/iterative"
	"repro/internal/record"
)

// wireIdentity maps a Maintainer to the (algorithm, source) pair a worker
// rebuilds it from. Only the built-in maintainers can cross the wire.
func wireIdentity(m Maintainer) (string, int64, error) {
	switch m.Name() {
	case "cc":
		return "cc", 0, nil
	case "sssp":
		src, ok := m.(interface{ Source() int64 })
		if !ok {
			return "", 0, fmt.Errorf("live: sssp maintainer %T has no source", m)
		}
		return "sssp", src.Source(), nil
	}
	return "", 0, fmt.Errorf("live: maintainer %q cannot shard (not wire-identifiable)", m.Name())
}

// shardConn is one coordinator→worker control connection. Its own lock
// serializes request/response exchanges: concurrent Query calls (shared
// view lock) multiplex safely over the single connection.
type shardConn struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// call performs one locked request/response exchange, surfacing a
// view_error reply as an error.
func (c *shardConn) call(msg shardMsg, wantKind string) (shardMsg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(msg); err != nil {
		return shardMsg{}, err
	}
	var reply shardMsg
	if err := c.dec.Decode(&reply); err != nil {
		return shardMsg{}, err
	}
	if reply.Kind == viewError {
		return shardMsg{}, fmt.Errorf("live: worker: %s", reply.Err)
	}
	if reply.Kind != wantKind {
		return shardMsg{}, fmt.Errorf("live: worker sent %q, want %q", reply.Kind, wantKind)
	}
	return reply, nil
}

// send fires a request without awaiting the reply (barrier release); the
// matching recv must follow under the same external ordering.
func (c *shardConn) send(msg shardMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(msg)
}

// recv awaits one reply of the given kind.
func (c *shardConn) recv(wantKind string) (shardMsg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var reply shardMsg
	if err := c.dec.Decode(&reply); err != nil {
		return shardMsg{}, err
	}
	if reply.Kind == viewError {
		return shardMsg{}, fmt.Errorf("live: worker: %s", reply.Err)
	}
	if reply.Kind != wantKind {
		return shardMsg{}, fmt.Errorf("live: worker sent %q, want %q", reply.Kind, wantKind)
	}
	return reply, nil
}

func (c *shardConn) close() { c.conn.Close() }

// distSession is the sharded SessionProvider: the coordinator's own
// shardCore (host 0, graph aliased to the view's) plus one control
// connection per worker host 1..H-1. Maintenance runs the coordinated
// flush protocol; reads route by partition placement.
type distSession struct {
	v     *LiveView
	core  *shardCore
	conns []*shardConn // conns[i] is host i+1
}

// openDistSession builds the sharded session: local core, worker dials
// (bounded-backoff — workers may still be starting), remote session opens
// with the full graph dump, digest cross-check, then the data-plane mesh.
// A non-nil recovered solution initializes every host's replica set from
// it (hosted partitions become authoritative); otherwise the cold
// fixpoint runs across the mesh before the session is handed out.
func openDistSession(v *LiveView, recovered []record.Record) (*distSession, error) {
	algo, src, err := wireIdentity(v.m)
	if err != nil {
		return nil, err
	}
	hosts := 1 + len(v.cfg.Workers)
	cfg := v.cfg.Config
	cfg.Hosts = hosts
	cfg.Host = 0

	core, addr, err := newShardCore(v.name, v.m, cfg, 0, v.gs, recovered, cfg.Obs)
	if err != nil {
		return nil, err
	}
	s := &distSession{v: v, core: core, conns: make([]*shardConn, len(v.cfg.Workers))}
	ok := false
	defer func() {
		if !ok {
			s.teardown()
		}
	}()

	spec := &shardSpec{
		Name: v.name, Algorithm: algo, Source: src,
		Parallelism: cfg.Parallelism, Hosts: hosts, BatchSize: cfg.BatchSize,
		Backend:              string(cfg.SolutionBackend),
		SolutionMemoryBudget: cfg.SolutionMemoryBudget,
		Planner:              int(cfg.Planner),
		DisableFusion:        cfg.DisableFusion,
		WireCompression:      cfg.WireCompression,
		TraceID:              uint64(cfg.TraceID), TraceLabel: cfg.TraceLabel,
	}
	graph := dumpGraph(v.gs)
	var sol []byte
	if recovered != nil {
		sol = recordsToFrames(recovered)
	}
	dataAddrs := make([]string, hosts)
	dataAddrs[0] = addr
	for i, waddr := range v.cfg.Workers {
		conn, err := distrib.DialWorker(waddr, distrib.MeshTimeout)
		if err != nil {
			return nil, fmt.Errorf("live: view %q worker %s: %w", v.name, waddr, err)
		}
		s.conns[i] = &shardConn{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
		ready, err := s.conns[i].call(shardMsg{
			Kind: viewOpen, Spec: spec, HostID: i + 1, Frames: graph, Sol: sol,
		}, viewReady)
		if err != nil {
			return nil, fmt.Errorf("live: view %q open on %s: %w", v.name, waddr, err)
		}
		if ready.Digest != core.digest {
			return nil, fmt.Errorf("live: view %q host %d planned digest %s, coordinator has %s",
				v.name, i+1, ready.Digest, core.digest)
		}
		dataAddrs[i+1] = ready.DataAddr
	}

	// Workers mesh first (host 0 is already listening; higher hosts dial
	// lower ones), then the coordinator connects and the cold workset is
	// driven through the barrier.
	for i, c := range s.conns {
		if err := c.send(shardMsg{Kind: viewStart, DataAddrs: dataAddrs}); err != nil {
			return nil, fmt.Errorf("live: view %q start host %d: %w", v.name, i+1, err)
		}
	}
	if err := core.mesh(dataAddrs, false); err != nil {
		return nil, err
	}
	for i, c := range s.conns {
		if _, err := c.recv(viewMeshed); err != nil {
			return nil, fmt.Errorf("live: view %q mesh host %d: %w", v.name, i+1, err)
		}
	}
	if recovered == nil {
		if err := s.runDriven(core.w0); err != nil {
			return nil, err
		}
	}
	core.w0 = nil
	ok = true
	return s, nil
}

// shardBarrier globalizes superstep convergence across the session's
// hosts: release fans view_step out, collect sums every host's
// next-workset count. The coordinator's RunDriven drives it.
type shardBarrier struct{ s *distSession }

func (b shardBarrier) Release(step int) error {
	for i, c := range b.s.conns {
		if err := c.send(shardMsg{Kind: viewStep}); err != nil {
			return fmt.Errorf("live: superstep %d release host %d: %w", step, i+1, err)
		}
	}
	return nil
}

func (b shardBarrier) Collect(step, localNext int) (int, error) {
	total := localNext
	for i, c := range b.s.conns {
		reply, err := c.recv(viewStepDone)
		if err != nil {
			return 0, fmt.Errorf("live: superstep %d host %d: %w", step, i+1, err)
		}
		total += reply.Count
	}
	return total, nil
}

// runDriven drives the coordinator's resident fixpoint from the workset
// with every worker stepping in lockstep, and folds the run into the
// view's maintenance counters.
func (s *distSession) runDriven(workset []record.Record) error {
	res, err := s.core.fx.RunDriven(workset, iterative.DriveHooks{Barrier: shardBarrier{s: s}})
	if res != nil {
		v := s.v
		if m := v.cfg.Metrics; m != nil {
			m.WarmRestarts.Add(1)
			m.MaintenanceSupersteps.Add(int64(res.Supersteps))
		}
		v.stats.WarmRestarts++
		v.stats.Supersteps += int64(res.Supersteps)
	}
	return err
}

// replanAll re-plans every host over its (identical) graph replica and
// cross-checks the plan digests. full=true is the coordinated full
// recompute: the returned workset is W0, which the caller drives.
func (s *distSession) replanAll(full bool) ([]record.Record, error) {
	for i, c := range s.conns {
		if err := c.send(shardMsg{Kind: viewReplan, Full: full}); err != nil {
			return nil, fmt.Errorf("live: replan host %d: %w", i+1, err)
		}
	}
	w0, err := s.core.replan(full)
	if err != nil {
		return nil, err
	}
	for i, c := range s.conns {
		reply, err := c.recv(viewReplanned)
		if err != nil {
			return nil, fmt.Errorf("live: replan host %d: %w", i+1, err)
		}
		if reply.Digest != s.core.digest {
			return nil, fmt.Errorf("live: replan host %d digest %s, coordinator has %s",
				i+1, reply.Digest, s.core.digest)
		}
	}
	return w0, nil
}

// Apply coordinates one mutation batch across the session. Every host
// applies the identical batch to its replica and classifies it
// identically; the coordinator cross-checks the verdicts and then either
// drives a full recompute (non-monotone batches — the partitioned session
// cannot run the in-process bounded repair, which needs whole-solution
// scans) or the monotone candidate rounds: each host derives insert
// candidates from the labels it owns, the coordinator merges and
// re-broadcasts them, owners count how many still improve, and the meshed
// fixpoint absorbs them — repeating over the edge overlay until nothing
// improves anywhere.
func (s *distSession) Apply(batch []Mutation) error {
	frames := packRecords(mutationsToRecords(batch))
	for i, c := range s.conns {
		if err := c.send(shardMsg{Kind: viewApply, Frames: frames}); err != nil {
			return fmt.Errorf("live: apply host %d: %w", i+1, err)
		}
	}
	full, err := s.core.applyBatch(batch)
	if err != nil {
		return err
	}
	for i, c := range s.conns {
		reply, rerr := c.recv(viewApplied)
		if rerr != nil {
			return fmt.Errorf("live: apply host %d: %w", i+1, rerr)
		}
		if reply.Full != full {
			return fmt.Errorf("live: host %d classified the batch full=%v, coordinator full=%v (replica divergence)",
				i+1, reply.Full, full)
		}
	}

	if full {
		w0, err := s.replanAll(true)
		if err != nil {
			return err
		}
		v := s.v
		if m := v.cfg.Metrics; m != nil {
			m.FullRecomputes.Add(1)
		}
		v.stats.FullRecomputes++
		v.stats.Rebinds++
		return s.runDriven(w0)
	}

	// Fold an oversized overlay into the plan's edge table before the
	// candidate rounds, exactly when the in-process session would.
	if s.core.overlayOverflow() {
		if _, err := s.replanAll(false); err != nil {
			return err
		}
		s.v.stats.Rebinds++
	}

	for round := 0; ; round++ {
		// Gather: every host derives candidates from its hosted labels
		// and keeps the ones keyed to partitions it owns; only
		// remote-keyed candidates travel, and the coordinator routes
		// each straight to its owner. Workers report how many they
		// retained so a globally empty round is still detectable.
		for i, c := range s.conns {
			if err := c.send(shardMsg{Kind: viewGather, Round: round}); err != nil {
				return fmt.Errorf("live: gather host %d: %w", i+1, err)
			}
		}
		shares := s.core.splitByHost(s.core.gather(round))
		total := 0
		for _, sh := range shares {
			total += len(sh)
		}
		var inbound []record.Record
		for i, c := range s.conns {
			reply, err := c.recv(viewCand)
			if err != nil {
				return fmt.Errorf("live: gather host %d: %w", i+1, err)
			}
			recs, err := unpackRecords(reply.Frames)
			if err != nil {
				return err
			}
			inbound = append(inbound, recs...)
			total += reply.Count + len(recs)
		}
		if total == 0 {
			return nil
		}
		for h, sh := range s.core.splitByHost(inbound) {
			shares[h] = append(shares[h], sh...)
		}

		// Seed: each host merges its retained candidates with its routed
		// share, and owners report how many still improve; zero globally
		// means the solution is already a fixpoint over them.
		for i, c := range s.conns {
			if err := c.send(shardMsg{Kind: viewSeed, Frames: packRecords(shares[i+1])}); err != nil {
				return fmt.Errorf("live: seed host %d: %w", i+1, err)
			}
		}
		own := s.core.collapseCandidates(shares[0])
		improving := s.core.countImproving(own)
		for i, c := range s.conns {
			reply, err := c.recv(viewSeeded)
			if err != nil {
				return fmt.Errorf("live: seed host %d: %w", i+1, err)
			}
			improving += reply.Count
		}
		if improving == 0 {
			return nil
		}
		if err := s.runDriven(own); err != nil {
			return err
		}
		if len(s.core.overlay) == 0 {
			return nil
		}
	}
}

// Lookup routes the key to the host owning its partition.
func (s *distSession) Lookup(k int64) (record.Record, bool) {
	host := s.core.place[s.core.sol.PartitionFor(k)]
	if host == 0 {
		return s.core.lookup(k)
	}
	reply, err := s.conns[host-1].call(shardMsg{Kind: viewQuery, Key: k}, viewValue)
	if err != nil || !reply.Found {
		return record.Record{}, false
	}
	recs, err := framesToRecords(reply.Frames)
	if err != nil || len(recs) != 1 {
		return record.Record{}, false
	}
	return recs[0], true
}

// Snapshot scatter-gathers the converged solution: the coordinator's
// hosted partitions plus every worker's, merged and canonically sorted.
// Worker spans travel back with the shards on traced views, so the
// cross-process maintenance timeline assembles in one ring.
func (s *distSession) Snapshot() []record.Record {
	var out []record.Record
	hr := hostedReader{c: s.core}
	hr.Each(func(r record.Record) { out = append(out, r) })
	for _, c := range s.conns {
		reply, err := c.call(shardMsg{Kind: viewCollect}, viewSolution)
		if err != nil {
			continue
		}
		s.foldSpans(reply)
		recs, err := framesToRecords(reply.Frames)
		if err != nil {
			continue
		}
		out = append(out, recs...)
	}
	sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
	return out
}

// foldSpans records worker-shipped spans into the view's ring.
func (s *distSession) foldSpans(reply shardMsg) {
	if s.v.ring == nil {
		return
	}
	for _, sp := range reply.Spans {
		s.v.ring.RecordSpan(sp)
	}
}

func (s *distSession) Records() int {
	n := s.core.hostedRecords()
	for _, c := range s.conns {
		if reply, err := c.call(shardMsg{Kind: viewStats}, viewStatted); err == nil {
			n += reply.Count
		}
	}
	return n
}

func (s *distSession) Bytes() int64 {
	b := s.core.sol.Bytes()
	for _, c := range s.conns {
		if reply, err := c.call(shardMsg{Kind: viewStats}, viewStatted); err == nil {
			b += reply.Bytes
		}
	}
	return b
}

func (s *distSession) EachSolution(f func(record.Record) error) error {
	var err error
	hostedReader{c: s.core}.Each(func(r record.Record) {
		if err == nil {
			err = f(r)
		}
	})
	return err
}

// RemoteShards collects each worker's hosted partitions for the per-host
// snapshot shard files.
func (s *distSession) RemoteShards() (map[int][]byte, error) {
	out := make(map[int][]byte, len(s.conns))
	for i, c := range s.conns {
		reply, err := c.call(shardMsg{Kind: viewCollect}, viewSolution)
		if err != nil {
			return nil, fmt.Errorf("live: collect host %d: %w", i+1, err)
		}
		s.foldSpans(reply)
		out[i+1] = reply.Frames
	}
	return out, nil
}

func (s *distSession) Shards() []ShardStat {
	out := []ShardStat{{Host: 0, Records: s.core.hostedRecords(), Bytes: s.core.sol.Bytes()}}
	for i, c := range s.conns {
		st := ShardStat{Host: i + 1}
		if reply, err := c.call(shardMsg{Kind: viewStats}, viewStatted); err == nil {
			st.Records = reply.Count
			st.Bytes = reply.Bytes
		}
		out = append(out, st)
	}
	return out
}

// Close ends every remote session gracefully, then tears down the local
// core. Workers survive a close — the control connection returns to the
// distrib loop for the next session.
func (s *distSession) Close() error {
	var err error
	for i, c := range s.conns {
		if _, cerr := c.call(shardMsg{Kind: viewClose}, viewClosed); cerr != nil && err == nil {
			err = fmt.Errorf("live: close host %d: %w", i+1, cerr)
		}
	}
	s.teardown()
	return err
}

// Kill abandons the session crash-style: connections drop without a
// close handshake, so workers see the error path a dead coordinator
// causes — and stay accepting (the recovery tests rely on it).
func (s *distSession) Kill() { s.teardown() }

func (s *distSession) teardown() {
	for _, c := range s.conns {
		if c != nil {
			c.close()
		}
	}
	s.core.close()
}
