package live

import (
	"encoding/json"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/record"
)

// WorkerHost hosts sharded view maintenance sessions inside a `spinflow
// worker` process: it implements distrib.ViewHost, so the distrib control
// loop hands it every view_* message. One ServeView call runs one session
// — open, mesh, then coordinator-driven verbs until close — and the
// control connection returns to distrib afterwards for the next session
// (or batch job).
type WorkerHost struct {
	reg *obs.Registry
}

// NewWorkerHost builds a view host reporting into the worker's telemetry
// registry (nil disables telemetry).
func NewWorkerHost(reg *obs.Registry) *WorkerHost { return &WorkerHost{reg: reg} }

// ServeView runs one maintenance session. A failed open reports
// view_error and returns nil — the connection stays usable. A mid-session
// failure reports view_error and returns the error: the connection is
// torn down (the coordinator's session is broken anyway) while the worker
// process keeps accepting — which is what lets a restarted coordinator
// recover onto the same workers.
func (h *WorkerHost) ServeView(open json.RawMessage, dec *json.Decoder, enc *json.Encoder) error {
	var msg shardMsg
	if err := json.Unmarshal(open, &msg); err != nil {
		return fmt.Errorf("live: malformed view message: %w", err)
	}
	if msg.Kind != viewOpen {
		return fmt.Errorf("live: view session must open with %q, got %q", viewOpen, msg.Kind)
	}
	if msg.Spec == nil {
		return fmt.Errorf("live: %s without a spec", viewOpen)
	}
	core, err := h.openCore(msg)
	if err != nil {
		return enc.Encode(shardMsg{Kind: viewError, Err: err.Error()})
	}
	defer core.close()
	if err := enc.Encode(shardMsg{Kind: viewReady, DataAddr: core.dataAddr, Digest: core.digest}); err != nil {
		return err
	}

	var start shardMsg
	if err := dec.Decode(&start); err != nil {
		return err
	}
	if start.Kind != viewStart {
		return fmt.Errorf("live: expected %q, got %q", viewStart, start.Kind)
	}
	if err := core.mesh(start.DataAddrs, true); err != nil {
		if serr := enc.Encode(shardMsg{Kind: viewError, Err: err.Error()}); serr != nil {
			return serr
		}
		return err
	}
	if err := enc.Encode(shardMsg{Kind: viewMeshed}); err != nil {
		return err
	}

	fail := func(err error) error {
		if serr := enc.Encode(shardMsg{Kind: viewError, Err: err.Error()}); serr != nil {
			return serr
		}
		return err
	}
	for {
		var req shardMsg
		if err := dec.Decode(&req); err != nil {
			return err
		}
		switch req.Kind {
		case viewApply:
			recs, err := unpackRecords(req.Frames)
			if err != nil {
				return fail(err)
			}
			muts, err := recordsToMutations(recs)
			if err != nil {
				return fail(err)
			}
			full, err := core.applyBatch(muts)
			if err != nil {
				return fail(err)
			}
			if err := enc.Encode(shardMsg{Kind: viewApplied, Full: full}); err != nil {
				return err
			}
		case viewReplan:
			if _, err := core.replan(req.Full); err != nil {
				return fail(err)
			}
			if err := enc.Encode(shardMsg{Kind: viewReplanned, Digest: core.digest}); err != nil {
				return err
			}
		case viewGather:
			// Own-keyed candidates stay here (buffered for the seed verb);
			// only remote-keyed ones travel, with Count telling the
			// coordinator how many were retained so it can detect a
			// globally empty round.
			shares := core.splitByHost(core.gather(req.Round))
			core.pending = shares[core.host]
			var outbound []record.Record
			for i, sh := range shares {
				if i != core.host {
					outbound = append(outbound, sh...)
				}
			}
			if err := enc.Encode(shardMsg{Kind: viewCand,
				Frames: packRecords(outbound), Count: len(core.pending)}); err != nil {
				return err
			}
		case viewSeed:
			recs, err := unpackRecords(req.Frames)
			if err != nil {
				return fail(err)
			}
			recs = core.collapseCandidates(append(recs, core.pending...))
			core.pending = nil
			n := core.countImproving(recs)
			core.fx.SeedWorkset(recs)
			if err := enc.Encode(shardMsg{Kind: viewSeeded, Count: n}); err != nil {
				return err
			}
		case viewStep:
			count, err := core.fx.StepOnce()
			if err != nil {
				return fail(err)
			}
			if err := enc.Encode(shardMsg{Kind: viewStepDone, Count: count}); err != nil {
				return err
			}
		case viewQuery:
			reply := shardMsg{Kind: viewValue}
			if r, ok := core.lookup(req.Key); ok {
				reply.Found = true
				reply.Frames = recordsToFrames([]record.Record{r})
			}
			if err := enc.Encode(reply); err != nil {
				return err
			}
		case viewCollect:
			var spans []obs.Span
			if h.reg != nil && core.cfg.TraceID != 0 {
				spans = h.reg.Trace().SpansFor(core.cfg.TraceID)
			}
			if err := enc.Encode(shardMsg{Kind: viewSolution, Frames: core.collect(), Spans: spans}); err != nil {
				return err
			}
		case viewStats:
			if err := enc.Encode(shardMsg{Kind: viewStatted, Count: core.hostedRecords(), Bytes: core.sol.Bytes()}); err != nil {
				return err
			}
		case viewClose:
			return enc.Encode(shardMsg{Kind: viewClosed})
		default:
			return fmt.Errorf("live: unexpected view message %q", req.Kind)
		}
	}
}

// openCore builds this host's session share from the opening message:
// maintainer, graph replica, config, and the listening shardCore.
func (h *WorkerHost) openCore(msg shardMsg) (*shardCore, error) {
	ss := *msg.Spec
	m, err := maintainerFor(ss.Algorithm, ss.Source)
	if err != nil {
		return nil, err
	}
	if msg.HostID <= 0 || msg.HostID >= ss.Hosts {
		return nil, fmt.Errorf("live: worker host id %d outside 1..%d", msg.HostID, ss.Hosts-1)
	}
	gs, err := loadGraph(msg.Frames)
	if err != nil {
		return nil, err
	}
	var recovered []record.Record
	if msg.Sol != nil {
		if recovered, err = framesToRecords(msg.Sol); err != nil {
			return nil, err
		}
	}
	cfg := specFor(ss, msg.HostID, h.reg, &metrics.Counters{})
	core, addr, err := newShardCore(ss.Name, m, cfg, msg.HostID, gs, recovered, h.reg)
	if err != nil {
		return nil, err
	}
	core.dataAddr = addr
	return core, nil
}
