package fixpoint

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/graphgen"
)

func adjOf(g *graphgen.Graph) [][]int64 {
	return g.Undirected().Adjacency()
}

func edgesFn(g *graphgen.Graph) func(func(int64, int64)) {
	return func(yield func(src, dst int64)) {
		for _, e := range g.Edges {
			yield(e.Src, e.Dst)
		}
	}
}

func TestFixpointScalar(t *testing.T) {
	// Collatz-style contraction: f(x) = x/2 has fixpoint 0.
	f := func(x int) int { return x / 2 }
	eq := func(a, b int) bool { return a == b }
	got, iters, err := Fixpoint(f, eq, 1024, 100)
	if err != nil || got != 0 {
		t.Fatalf("fixpoint = %d (err %v), want 0", got, err)
	}
	if iters != 11 {
		t.Errorf("iters = %d, want 11 (1024 halvings + terminal check)", iters)
	}
}

func TestFixpointBudgetExceeded(t *testing.T) {
	f := func(x int) int { return x + 1 } // never converges
	eq := func(a, b int) bool { return a == b }
	_, _, err := Fixpoint(f, eq, 0, 10)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

func TestAllCCVariantsAgreeOnFigure1(t *testing.T) {
	adj := Figure1Graph()
	want := Assignment{0, 0, 0, 0, 4, 4, 6, 6, 6}

	full, _, err := FixpointCC(adj, 100)
	if err != nil || !full.Equal(want) {
		t.Errorf("FixpointCC = %v (err %v), want %v", full, err, want)
	}
	incr, _, err := IncrementalCC(adj, 100)
	if err != nil || !incr.Equal(want) {
		t.Errorf("IncrementalCC = %v (err %v), want %v", incr, err, want)
	}
	micro, _, err := MicrostepCC(adj, 1_000_000)
	if err != nil || !micro.Equal(want) {
		t.Errorf("MicrostepCC = %v (err %v), want %v", micro, err, want)
	}
}

func TestFigure1Trace(t *testing.T) {
	// Figure 1 shows the cid evolution: after one step all vertices except
	// vid=4 (paper numbering; our index 3) have their final component id;
	// convergence needs one more step.
	chain, err := TraceFixpointCC(Figure1Graph(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 { // S0, S1, S2 as in the figure
		t.Fatalf("trace length = %d, want 3 (S0,S1,S2)", len(chain))
	}
	s1 := chain[1]
	// Paper's S1 (1-based cids 1,1,1,2,5,5,7,7,7) => 0-based:
	wantS1 := Assignment{0, 0, 0, 1, 4, 4, 6, 6, 6}
	if !s1.Equal(wantS1) {
		t.Errorf("S1 = %v, want %v", s1, wantS1)
	}
	wantS2 := Assignment{0, 0, 0, 0, 4, 4, 6, 6, 6}
	if !chain[2].Equal(wantS2) {
		t.Errorf("S2 = %v, want %v", chain[2], wantS2)
	}
	if idx := VerifyChain(CCOrder, chain); idx != -1 {
		t.Errorf("Kleene chain violates the CPO at step %d", idx)
	}
}

func TestVariantsMatchUnionFindOnDatasets(t *testing.T) {
	for _, name := range []graphgen.Dataset{graphgen.DSWikipedia, graphgen.DSFOAF} {
		g := graphgen.Load(name, graphgen.ScaleTiny)
		adj := adjOf(g)
		want := UnionFindCC(g.NumVertices, edgesFn(g))

		full, _, err := FixpointCC(adj, 10000)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		if !full.Equal(want) {
			t.Errorf("%s: FixpointCC disagrees with union-find", name)
		}
		incr, _, err := IncrementalCC(adj, 10000)
		if err != nil {
			t.Fatalf("%s incr: %v", name, err)
		}
		if !incr.Equal(want) {
			t.Errorf("%s: IncrementalCC disagrees with union-find", name)
		}
		micro, _, err := MicrostepCC(adj, 1<<62)
		if err != nil {
			t.Fatalf("%s micro: %v", name, err)
		}
		if !micro.Equal(want) {
			t.Errorf("%s: MicrostepCC disagrees with union-find", name)
		}
	}
}

func TestVariantsAgreeProperty(t *testing.T) {
	// Property: on random graphs, all three Table-1 templates and the
	// union-find oracle compute identical component assignments.
	f := func(seed uint64) bool {
		g := graphgen.Uniform("r", 60, 90, seed)
		adj := adjOf(g)
		want := UnionFindCC(g.NumVertices, edgesFn(g))
		full, _, err1 := FixpointCC(adj, 10000)
		incr, _, err2 := IncrementalCC(adj, 10000)
		micro, _, err3 := MicrostepCC(adj, 1<<62)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return full.Equal(want) && incr.Equal(want) && micro.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalConvergesInFewerTouches(t *testing.T) {
	// §2.3: the incremental variant must touch far less state than the
	// bulk variant on a graph where most vertices converge early.
	g := graphgen.FOAF(graphgen.ScaleTiny)
	adj := adjOf(g)

	fullTouches := 0
	s := InitialAssignment(int64(len(adj)))
	for iter := 0; ; iter++ {
		next := s.Clone()
		for v := range adj {
			fullTouches++
			m := s[v]
			for _, n := range adj[v] {
				if s[n] < m {
					m = s[n]
				}
			}
			next[v] = m
		}
		if next.Equal(s) {
			break
		}
		s = next
	}

	// Incremental touches = working-set elements processed in total.
	incrTouches := 0
	si := InitialAssignment(int64(len(adj)))
	w := initialCandidates(adj, si)
	for len(w) > 0 {
		best := map[int64]int64{}
		for _, cand := range w {
			incrTouches++
			if cand.C >= si[cand.V] {
				continue
			}
			if b, ok := best[cand.V]; !ok || cand.C < b {
				best[cand.V] = cand.C
			}
		}
		var next []Candidate
		for v, c := range best {
			si[v] = c
			for _, n := range adj[v] {
				next = append(next, Candidate{V: n, C: c})
			}
		}
		w = next
	}
	if !si.Equal(s) {
		t.Fatal("incremental and bulk disagree")
	}
	if incrTouches >= fullTouches*3 {
		t.Errorf("incremental touches (%d) should not vastly exceed bulk (%d)", incrTouches, fullTouches)
	}
	t.Logf("bulk state touches=%d, incremental workset touches=%d", fullTouches, incrTouches)
}

func TestMicrostepBudget(t *testing.T) {
	adj := Figure1Graph()
	_, _, err := MicrostepCC(adj, 1)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestVerifyChainDetectsViolation(t *testing.T) {
	bad := []Assignment{{5, 5}, {3, 3}, {4, 2}} // step 2 raises vertex 0
	if idx := VerifyChain(CCOrder, bad); idx != 2 {
		t.Errorf("violation index = %d, want 2", idx)
	}
	good := []Assignment{{5, 5}, {3, 3}, {3, 2}}
	if idx := VerifyChain(CCOrder, good); idx != -1 {
		t.Errorf("valid chain flagged at %d", idx)
	}
}

func TestCPOLengthMismatch(t *testing.T) {
	if CCOrder.Leq(Assignment{1}, Assignment{1, 2}) {
		t.Error("length mismatch must not be Leq")
	}
}

func TestNumComponents(t *testing.T) {
	if n := NumComponents(Assignment{0, 0, 4, 4, 6}); n != 3 {
		t.Errorf("components = %d, want 3", n)
	}
}

func TestUnionFindSmallestLabel(t *testing.T) {
	// Labels must be the minimum vertex id of each component.
	g := graphgen.Uniform("r", 30, 40, 9)
	a := UnionFindCC(g.NumVertices, edgesFn(g))
	for v, c := range a {
		if c > int64(v) {
			t.Fatalf("vertex %d labelled %d > own id", v, c)
		}
	}
}

func TestGenericIncrementalEmptyStart(t *testing.T) {
	// An empty initial working set terminates immediately with S unchanged.
	s, iters, err := Incremental(
		func(s int, w []int) []int { return w },
		func(d []int, s int, w []int) []int { return nil },
		func(s int, d []int) int { return s + len(d) },
		func(w []int) bool { return len(w) == 0 },
		42, nil, 10,
	)
	if err != nil || s != 42 || iters != 0 {
		t.Fatalf("got s=%d iters=%d err=%v", s, iters, err)
	}
}
