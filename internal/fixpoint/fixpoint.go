// Package fixpoint implements the iteration theory of Section 2 of the
// paper: generic fixpoint iterations over a complete partial order (CPO),
// incremental (workset) iterations, and microstep iterations — the three
// templates of Table 1 — together with reference implementations of the
// Connected Components algorithm in each style.
//
// These single-machine reference implementations serve two purposes: they
// are the executable specification the parallel dataflow engine is tested
// against, and they regenerate Table 1's semantics and the Figure 1 trace.
package fixpoint

import (
	"errors"
	"fmt"
)

// ErrNoConvergence is returned when an iteration exceeds its step budget.
var ErrNoConvergence = errors.New("fixpoint: iteration did not converge within budget")

// Fixpoint repeatedly applies the step function f until two consecutive
// partial solutions are equal (template FIXPOINT of Table 1):
//
//	while s != f(s) { s = f(s) }
//
// It returns the fixpoint and the number of applications of f that were
// needed to reach it (the k with f^k(s) = f^(k+1)(s)).
func Fixpoint[S any](f func(S) S, equal func(S, S) bool, s S, maxIter int) (S, int, error) {
	for i := 0; i < maxIter; i++ {
		next := f(s)
		if equal(s, next) {
			return s, i, nil
		}
		s = next
	}
	return s, maxIter, ErrNoConvergence
}

// Incremental runs the workset iteration of template INCR (Table 1, as
// refined in §5.1 with delta sets):
//
//	while W != ∅ { D = u(S, W); W = δ(D, S, W); S = S ∪̇ D }
//
// u computes the delta set from the current solution and working set; delta
// computes the next working set; merge applies the delta to the solution.
// It returns the converged solution and the number of supersteps.
func Incremental[S, W, D any](
	u func(S, W) D,
	delta func(D, S, W) W,
	merge func(S, D) S,
	emptyW func(W) bool,
	s S, w W, maxIter int,
) (S, int, error) {
	for i := 0; i < maxIter; i++ {
		if emptyW(w) {
			return s, i, nil
		}
		d := u(s, w)
		next := delta(d, s, w)
		s = merge(s, d)
		w = next
	}
	return s, maxIter, ErrNoConvergence
}

// Microstep runs the microstep iteration of template MICRO (Table 1): one
// working-set element at a time is removed and used to update the partial
// solution and the working set:
//
//	while W != ∅ { d = arb(W); S = u(S, d); W = W ∪ δ(S, d) }
//
// apply updates the solution with one element and reports whether the
// solution changed; expand produces the new working-set elements caused by
// a change. It returns the converged solution and the number of microsteps
// executed (elements consumed).
func Microstep[S, E any](
	apply func(S, E) (S, bool),
	expand func(S, E) []E,
	s S, w []E, maxSteps int,
) (S, int, error) {
	steps := 0
	for len(w) > 0 {
		if steps >= maxSteps {
			return s, steps, ErrNoConvergence
		}
		// arb: take from the front (FIFO, like the runtime's queues).
		d := w[0]
		w = w[1:]
		steps++
		next, changed := apply(s, d)
		s = next
		if changed {
			w = append(w, expand(s, d)...)
		}
	}
	return s, steps, nil
}

// CPO captures the complete partial order that guarantees convergence
// (§2.1): a partial order Leq with a bottom/supremum towards which every
// step makes progress.
type CPO[S any] interface {
	// Leq reports whether a precedes-or-equals b in the order.
	Leq(a, b S) bool
}

// VerifyChain checks that a Kleene chain s, f(s), f²(s), ... is monotone in
// the CPO: every step must produce a successor (∀s: f(s) ⊑ s in the paper's
// orientation, where smaller component ids are "larger" progress). It
// returns the index of the first violation, or -1 if the chain is valid.
func VerifyChain[S any](cpo CPO[S], chain []S) int {
	for i := 1; i < len(chain); i++ {
		if !cpo.Leq(chain[i], chain[i-1]) {
			return i
		}
	}
	return -1
}

// Assignment is a partial solution for Connected Components: a mapping
// from vertex id to component id. Index = vertex id.
type Assignment []int64

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	return append(Assignment(nil), a...)
}

// Equal reports element-wise equality.
func (a Assignment) Equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ccCPO is the CPO over assignments defined in §2.1:
// s ⊑ s' ⇔ ∀v: s(v) ≤ s'(v); progress means component ids only decrease.
type ccCPO struct{}

func (ccCPO) Leq(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// CCOrder is the CPO over Connected-Components assignments.
var CCOrder CPO[Assignment] = ccCPO{}

// InitialAssignment numbers each vertex with its own id — the canonical
// initial partial solution for Connected Components.
func InitialAssignment(numVertices int64) Assignment {
	s := make(Assignment, numVertices)
	for i := range s {
		s[i] = int64(i)
	}
	return s
}

// Candidate is a working-set element for Connected Components: component
// id c is a candidate for vertex v.
type Candidate struct {
	V, C int64
}

// FixpointCC is algorithm FIXPOINT-CC of Table 1: every iteration sets
// every vertex's component id to the minimum of its own and all its
// neighbors'. adj must be the undirected neighborhood mapping N.
// It returns the final assignment and the number of iterations.
func FixpointCC(adj [][]int64, maxIter int) (Assignment, int, error) {
	s := InitialAssignment(int64(len(adj)))
	step := func(cur Assignment) Assignment {
		next := cur.Clone()
		for v := range adj {
			m := cur[v]
			for _, n := range adj[v] {
				if cur[n] < m {
					m = cur[n]
				}
			}
			next[v] = m
		}
		return next
	}
	return fixpointWith(step, s, maxIter)
}

func fixpointWith(step func(Assignment) Assignment, s Assignment, maxIter int) (Assignment, int, error) {
	return Fixpoint(step, Assignment.Equal, s, maxIter)
}

// IncrementalCC is algorithm INCR-CC of Table 1 expressed through the
// generic Incremental template. The working set holds candidate component
// ids; u keeps the improving candidates as the delta; δ propagates each
// delta to the neighbors.
func IncrementalCC(adj [][]int64, maxIter int) (Assignment, int, error) {
	s := InitialAssignment(int64(len(adj)))
	w := initialCandidates(adj, s)

	u := func(cur Assignment, work []Candidate) []Candidate {
		// Keep, per vertex, the best improving candidate (the dedup a
		// CoGroup on vid performs in the dataflow version).
		best := make(map[int64]int64, len(work))
		for _, cand := range work {
			if cand.C >= cur[cand.V] {
				continue
			}
			if b, ok := best[cand.V]; !ok || cand.C < b {
				best[cand.V] = cand.C
			}
		}
		d := make([]Candidate, 0, len(best))
		for v, c := range best {
			d = append(d, Candidate{V: v, C: c})
		}
		return d
	}
	delta := func(d []Candidate, _ Assignment, _ []Candidate) []Candidate {
		var next []Candidate
		for _, ch := range d {
			for _, n := range adj[ch.V] {
				next = append(next, Candidate{V: n, C: ch.C})
			}
		}
		return next
	}
	merge := func(cur Assignment, d []Candidate) Assignment {
		for _, ch := range d {
			if ch.C < cur[ch.V] {
				cur[ch.V] = ch.C
			}
		}
		return cur
	}
	empty := func(w []Candidate) bool { return len(w) == 0 }
	return Incremental(u, delta, merge, empty, s, w, maxIter)
}

// MicrostepCC is algorithm MICRO-CC of Table 1: one candidate at a time
// updates the assignment and enqueues candidates for the neighbors.
func MicrostepCC(adj [][]int64, maxSteps int) (Assignment, int, error) {
	s := InitialAssignment(int64(len(adj)))
	w := initialCandidates(adj, s)
	apply := func(cur Assignment, d Candidate) (Assignment, bool) {
		if d.C < cur[d.V] {
			cur[d.V] = d.C
			return cur, true
		}
		return cur, false
	}
	expand := func(cur Assignment, d Candidate) []Candidate {
		out := make([]Candidate, 0, len(adj[d.V]))
		for _, n := range adj[d.V] {
			out = append(out, Candidate{V: n, C: d.C})
		}
		return out
	}
	return Microstep(apply, expand, s, w, maxSteps)
}

// initialCandidates is the paper's W0 for INCR-CC: all pairs (v, c) where
// c is the component id of a neighbor of v.
func initialCandidates(adj [][]int64, s Assignment) []Candidate {
	var w []Candidate
	for v := range adj {
		for _, n := range adj[v] {
			w = append(w, Candidate{V: int64(v), C: s[n]})
		}
	}
	return w
}

// UnionFindCC computes the ground-truth component assignment with a
// disjoint-set forest, labelling each component by its minimum vertex id.
// This is the oracle the iterative variants are verified against.
func UnionFindCC(numVertices int64, edges func(yield func(src, dst int64))) Assignment {
	parent := make([]int64, numVertices)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	edges(func(src, dst int64) {
		a, b := find(src), find(dst)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	})
	out := make(Assignment, numVertices)
	for i := range out {
		out[i] = find(int64(i))
	}
	return out
}

// NumComponents counts distinct component ids in an assignment.
func NumComponents(a Assignment) int {
	set := make(map[int64]struct{})
	for _, c := range a {
		set[c] = struct{}{}
	}
	return len(set)
}

// Figure1Graph returns the 9-vertex sample graph of Figure 1 (vertex ids
// shifted to 0-based: paper vertex k is our k-1). Components:
// {1,2,3,4}, {5,6}, {7,8,9}.
func Figure1Graph() [][]int64 {
	edges := [][2]int64{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, // component {1,2,3,4}
		{4, 5},                 // component {5,6}
		{6, 7}, {6, 8}, {7, 8}, // component {7,8,9}
	}
	adj := make([][]int64, 9)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

// TraceFixpointCC runs FIXPOINT-CC and records the full Kleene chain of
// partial solutions (used to regenerate the Figure 1 trace).
func TraceFixpointCC(adj [][]int64, maxIter int) ([]Assignment, error) {
	s := InitialAssignment(int64(len(adj)))
	chain := []Assignment{s.Clone()}
	for i := 0; i < maxIter; i++ {
		next := s.Clone()
		for v := range adj {
			m := s[v]
			for _, n := range adj[v] {
				if s[n] < m {
					m = s[n]
				}
			}
			next[v] = m
		}
		if next.Equal(s) {
			return chain, nil
		}
		chain = append(chain, next.Clone())
		s = next
	}
	return chain, fmt.Errorf("trace: %w", ErrNoConvergence)
}
