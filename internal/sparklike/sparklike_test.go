package sparklike

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graphgen"
	"repro/internal/metrics"
	"repro/internal/record"
)

func ctx(par int) *Context { return NewContext(par, nil) }

func TestParallelizeAndCollect(t *testing.T) {
	c := ctx(3)
	in := []record.Record{{A: 1}, {A: 2}, {A: 3}, {A: 4}, {A: 5}}
	rdd := c.Parallelize(in)
	out := rdd.Collect()
	if len(out) != 5 || rdd.Count() != 5 {
		t.Fatalf("collect lost records: %v", out)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	c := ctx(2)
	rdd := c.Parallelize([]record.Record{{A: 1}, {A: 2}, {A: 3}})
	doubled := rdd.Map(func(r record.Record) record.Record { r.A *= 2; return r })
	if doubled.Count() != 3 {
		t.Fatal("map changed cardinality")
	}
	evens := doubled.Filter(func(r record.Record) bool { return r.A%4 == 0 })
	if evens.Count() != 1 {
		t.Fatalf("filter: %v", evens.Collect())
	}
	expanded := rdd.FlatMap(func(r record.Record, emit func(record.Record)) {
		emit(r)
		emit(r)
	})
	if expanded.Count() != 6 {
		t.Fatal("flatmap wrong")
	}
}

func TestReduceByKey(t *testing.T) {
	c := ctx(4)
	var in []record.Record
	for i := 0; i < 40; i++ {
		in = append(in, record.Record{A: int64(i % 4), X: 1})
	}
	sums := c.Parallelize(in).ReduceByKey(record.KeyA,
		func(a, b record.Record) record.Record { return record.Record{A: a.A, X: a.X + b.X} })
	out := sums.Collect()
	if len(out) != 4 {
		t.Fatalf("groups: %v", out)
	}
	for _, r := range out {
		if r.X != 10 {
			t.Errorf("group %d sum %g", r.A, r.X)
		}
	}
}

func TestJoin(t *testing.T) {
	c := ctx(3)
	l := c.Parallelize([]record.Record{{A: 1, X: 10}, {A: 2, X: 20}})
	r := c.Parallelize([]record.Record{{A: 1, B: 100}, {A: 1, B: 101}, {A: 3, B: 103}})
	joined := l.Join(r, record.KeyA, record.KeyA,
		func(lr, rr record.Record, emit func(record.Record)) {
			emit(record.Record{A: lr.A, B: rr.B, X: lr.X})
		}).Collect()
	sort.Slice(joined, func(i, j int) bool { return record.Less(joined[i], joined[j]) })
	if len(joined) != 2 || joined[0].B != 100 || joined[1].B != 101 {
		t.Fatalf("join: %v", joined)
	}
}

func TestCoGroupOuter(t *testing.T) {
	c := ctx(2)
	l := c.Parallelize([]record.Record{{A: 1}, {A: 2}})
	r := c.Parallelize([]record.Record{{A: 2}, {A: 3}})
	got := l.CoGroup(r, record.KeyA, record.KeyA,
		func(k int64, ls, rs []record.Record, emit func(record.Record)) {
			emit(record.Record{A: k, B: int64(len(ls)*10 + len(rs))})
		}).Collect()
	sort.Slice(got, func(i, j int) bool { return got[i].A < got[j].A })
	want := []record.Record{{A: 1, B: 10}, {A: 2, B: 11}, {A: 3, B: 1}}
	if len(got) != 3 {
		t.Fatalf("cogroup: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestShuffleCountsRecords(t *testing.T) {
	var m metrics.Counters
	c := NewContext(2, &m)
	c.Parallelize([]record.Record{{A: 1}, {A: 2}, {A: 3}}).
		ReduceByKey(record.KeyA, func(a, b record.Record) record.Record { return a })
	if m.Snapshot().RecordsShipped == 0 {
		t.Error("shuffle did not count shipped records")
	}
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := graphgen.Uniform("pr", 120, 800, 9)
	c := ctx(3)
	got, _, err := PageRank(c, g, 12, 0.85, false)
	if err != nil {
		t.Fatal(err)
	}
	// Independent power iteration.
	n := g.NumVertices
	outdeg := make([]int64, n)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < 12; it++ {
		next := make([]float64, n)
		for i := range next {
			next[i] = 0.15 / float64(n)
		}
		for _, e := range g.Edges {
			next[e.Dst] += 0.85 * rank[e.Src] / float64(outdeg[e.Src])
		}
		rank = next
	}
	for v := int64(0); v < n; v++ {
		if math.Abs(got[v]-rank[v]) > 1e-9 {
			t.Fatalf("vertex %d: %g want %g", v, got[v], rank[v])
		}
	}
}

func refCC(g *graphgen.Graph) map[int64]int64 {
	parent := make([]int64, g.NumVertices)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.Src), find(e.Dst)
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := make(map[int64]int64)
	for i := int64(0); i < g.NumVertices; i++ {
		out[i] = find(i)
	}
	return out
}

func TestConnectedComponentsVariants(t *testing.T) {
	g := graphgen.Load(graphgen.DSFOAF, graphgen.ScaleTiny)
	want := refCC(g.Undirected())

	bulk, err := ConnectedComponents(ctx(3), g, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimIncrementalCC(ctx(3), g, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if bulk.Components[v] != want[v] {
			t.Fatalf("bulk vertex %d: %d want %d", v, bulk.Components[v], want[v])
		}
		if sim.Components[v] != want[v] {
			t.Fatalf("sim-incr vertex %d: %d want %d", v, sim.Components[v], want[v])
		}
	}
	if bulk.Iterations < 2 || sim.Iterations < 2 {
		t.Errorf("iterations: bulk=%d sim=%d", bulk.Iterations, sim.Iterations)
	}
}

func TestSimIncrementalSendsFewerMessages(t *testing.T) {
	// The simulated-incremental variant must shuffle fewer candidate
	// messages than the bulk variant (it still copies state every pass).
	g := graphgen.FOAF(graphgen.ScaleTiny)
	var mBulk, mSim metrics.Counters
	if _, err := ConnectedComponents(NewContext(2, &mBulk), g, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := SimIncrementalCC(NewContext(2, &mSim), g, 0, false); err != nil {
		t.Fatal(err)
	}
	if mSim.Snapshot().RecordsShipped >= mBulk.Snapshot().RecordsShipped {
		t.Errorf("sim-incr shipped %d >= bulk %d", mSim.Snapshot().RecordsShipped, mBulk.Snapshot().RecordsShipped)
	}
}

func TestUnionKeepsAll(t *testing.T) {
	c := ctx(2)
	a := c.Parallelize([]record.Record{{A: 1}})
	b := c.Parallelize([]record.Record{{A: 2}, {A: 3}})
	if u := a.Union(b); u.Count() != 3 {
		t.Fatalf("union count %d", u.Count())
	}
}
