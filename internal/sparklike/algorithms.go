package sparklike

import (
	"time"

	"repro/internal/graphgen"
	"repro/internal/metrics"
	"repro/internal/record"
)

// Trace wraps per-iteration statistics for the loop-driven algorithms.
type Trace = metrics.Trace

// PageRank is the Pegasus-style implementation the paper attributes to
// Spark (§6.1: "Spark's implementation follows Pegasus"): join the
// partitioned rank vector with the transition matrix, re-partition for the
// aggregation; every iteration materializes a complete new rank RDD.
func PageRank(ctx *Context, g *graphgen.Graph, iterations int, damping float64, collectTrace bool) (map[int64]float64, *Trace, error) {
	n := float64(g.NumVertices)

	// Transition matrix (A=tid, B=pid, X=1/outdeg), cached in memory.
	outdeg := make([]int64, g.NumVertices)
	for _, e := range g.Edges {
		outdeg[e.Src]++
	}
	matRecs := make([]record.Record, 0, len(g.Edges))
	for _, e := range g.Edges {
		matRecs = append(matRecs, record.Record{A: e.Dst, B: e.Src, X: 1 / float64(outdeg[e.Src])})
	}
	matrix := ctx.Parallelize(matRecs).Cache()

	teleRecs := make([]record.Record, g.NumVertices)
	rankRecs := make([]record.Record, g.NumVertices)
	for i := int64(0); i < g.NumVertices; i++ {
		teleRecs[i] = record.Record{A: i, X: (1 - damping) / n}
		rankRecs[i] = record.Record{A: i, X: 1 / n}
	}
	teleport := ctx.Parallelize(teleRecs).Cache()
	ranks := ctx.Parallelize(rankRecs)

	tr := &Trace{}
	for it := 0; it < iterations; it++ {
		start := time.Now()
		contribs := ranks.Join(matrix, record.KeyA, record.KeyB,
			func(r, a record.Record, emit func(record.Record)) {
				emit(record.Record{A: a.A, X: damping * r.X * a.X})
			})
		ranks = contribs.Union(teleport.shuffleLike(contribs)).
			ReduceByKey(record.KeyA, func(a, b record.Record) record.Record {
				return record.Record{A: a.A, X: a.X + b.X}
			})
		if collectTrace {
			tr.Add(metrics.IterationStat{Iteration: it, Duration: time.Since(start)})
		} else {
			tr.Total += time.Since(start)
		}
	}
	out := make(map[int64]float64, g.NumVertices)
	for _, r := range ranks.Collect() {
		out[r.A] = r.X
	}
	return out, tr, nil
}

// shuffleLike re-partitions r to match the partitioner of o's lineage —
// in this mini engine both just hash by KeyA, so this is a plain
// re-partition kept for API clarity.
func (r *RDD) shuffleLike(o *RDD) *RDD {
	return &RDD{ctx: r.ctx, parts: r.shuffle(record.KeyA, nil)}
}

// CCResult bundles the Connected Components outcome.
type CCResult struct {
	Components map[int64]int64
	Iterations int
	Trace      Trace
}

// ConnectedComponents is the bulk variant (§6.2): every iteration joins
// the full assignment with the edge set, aggregates the minimum candidate
// per vertex, and materializes the complete next assignment.
// maxIterations caps the run (0 = run to convergence), mirroring the
// paper's "first 20 iterations" Webbase experiments.
func ConnectedComponents(ctx *Context, g *graphgen.Graph, maxIterations int, collectTrace bool) (*CCResult, error) {
	und := g.Undirected()
	edgeRecs := make([]record.Record, len(und.Edges))
	for i, e := range und.Edges {
		edgeRecs[i] = record.Record{A: e.Src, B: e.Dst}
	}
	edges := ctx.Parallelize(edgeRecs).Cache()

	stateRecs := make([]record.Record, und.NumVertices)
	for i := int64(0); i < und.NumVertices; i++ {
		stateRecs[i] = record.Record{A: i, B: i}
	}
	state := ctx.Parallelize(stateRecs)

	res := &CCResult{}
	for iter := 0; ; iter++ {
		start := time.Now()
		candidates := state.Join(edges, record.KeyA, record.KeyA,
			func(s, e record.Record, emit func(record.Record)) {
				emit(record.Record{A: e.B, B: s.B})
			})
		next := state.Union(candidates.shuffleLike(state)).
			ReduceByKey(record.KeyA, func(a, b record.Record) record.Record {
				if b.B < a.B {
					return b
				}
				return a
			})
		changes := countChanges(state, next)
		state = next
		res.Iterations = iter + 1
		if collectTrace {
			res.Trace.Add(metrics.IterationStat{Iteration: iter, Duration: time.Since(start)})
		} else {
			res.Trace.Total += time.Since(start)
		}
		if changes == 0 || (maxIterations > 0 && res.Iterations >= maxIterations) {
			break
		}
	}
	res.Components = make(map[int64]int64, und.NumVertices)
	for _, r := range state.Collect() {
		res.Components[r.A] = r.B
	}
	return res, nil
}

// SimIncrementalCC is the paper's "Spark Sim. Incr." variant (Figure 11):
// each entry carries a changed flag (Tag); only changed vertices send
// candidates to their neighbors, but the full assignment is still copied
// into a new RDD every iteration — exploiting the computational
// dependencies without mutable state, and paying the copy cost for the
// unchanged majority.
func SimIncrementalCC(ctx *Context, g *graphgen.Graph, maxIterations int, collectTrace bool) (*CCResult, error) {
	und := g.Undirected()
	edgeRecs := make([]record.Record, len(und.Edges))
	for i, e := range und.Edges {
		edgeRecs[i] = record.Record{A: e.Src, B: e.Dst}
	}
	edges := ctx.Parallelize(edgeRecs).Cache()

	stateRecs := make([]record.Record, und.NumVertices)
	for i := int64(0); i < und.NumVertices; i++ {
		stateRecs[i] = record.Record{A: i, B: i, Tag: 1} // initially "changed"
	}
	state := ctx.Parallelize(stateRecs)

	res := &CCResult{}
	for iter := 0; ; iter++ {
		start := time.Now()
		// Only changed entries message their neighbors...
		msgs := state.Filter(func(r record.Record) bool { return r.Tag == 1 }).
			Join(edges, record.KeyA, record.KeyA,
				func(s, e record.Record, emit func(record.Record)) {
					emit(record.Record{A: e.B, B: s.B})
				})
		// ...but the whole state is cogrouped and copied forward.
		next := state.CoGroup(msgs, record.KeyA, record.KeyA,
			func(k int64, entries, cands []record.Record, emit func(record.Record)) {
				if len(entries) == 0 {
					return
				}
				cur := entries[0]
				best := cur.B
				for _, c := range cands {
					if c.B < best {
						best = c.B
					}
				}
				tag := uint8(0)
				if best < cur.B {
					tag = 1
				}
				emit(record.Record{A: k, B: best, Tag: tag})
			})
		changed := next.Filter(func(r record.Record) bool { return r.Tag == 1 }).Count()
		state = next
		res.Iterations = iter + 1
		if collectTrace {
			res.Trace.Add(metrics.IterationStat{Iteration: iter, Duration: time.Since(start)})
		} else {
			res.Trace.Total += time.Since(start)
		}
		if changed == 0 || (maxIterations > 0 && res.Iterations >= maxIterations) {
			break
		}
	}
	res.Components = make(map[int64]int64, und.NumVertices)
	for _, r := range state.Collect() {
		res.Components[r.A] = r.B
	}
	return res, nil
}

func countChanges(prev, next *RDD) int64 {
	old := make(map[int64]int64)
	for _, p := range prev.parts {
		for _, r := range p {
			old[r.A] = r.B
		}
	}
	var changes int64
	for _, p := range next.parts {
		for _, r := range p {
			if old[r.A] != r.B {
				changes++
			}
		}
	}
	return changes
}

// SSSP is bulk Bellman-Ford in RDD style: the reached-distance RDD is
// joined with the weighted edge set, candidates are merged with a min
// aggregation, and a complete new distance RDD is materialized every
// iteration — the bulk baseline for the incremental/microstep SSSP of the
// main engine. weights maps an edge to its non-negative length.
// maxIterations caps the run (0 = run to convergence).
func SSSP(ctx *Context, g *graphgen.Graph, weights func(graphgen.Edge) float64, source int64, maxIterations int) (map[int64]float64, int, error) {
	edgeRecs := make([]record.Record, len(g.Edges))
	for i, e := range g.Edges {
		edgeRecs[i] = record.Record{A: e.Src, B: e.Dst, X: weights(e)}
	}
	edges := ctx.Parallelize(edgeRecs).Cache()
	state := ctx.Parallelize([]record.Record{{A: source, X: 0}})

	iterations := 0
	for {
		candidates := state.Join(edges, record.KeyA, record.KeyA,
			func(s, e record.Record, emit func(record.Record)) {
				emit(record.Record{A: e.B, X: s.X + e.X})
			})
		next := state.Union(candidates.shuffleLike(state)).
			ReduceByKey(record.KeyA, func(a, b record.Record) record.Record {
				if b.X < a.X {
					return b
				}
				return a
			})
		iterations++
		if distancesEqual(state, next) || (maxIterations > 0 && iterations >= maxIterations) {
			state = next
			break
		}
		state = next
	}
	dists := make(map[int64]float64)
	for _, r := range state.Collect() {
		dists[r.A] = r.X
	}
	return dists, iterations, nil
}

// distancesEqual reports whether two distance RDDs assign identical
// distances to the same vertex set.
func distancesEqual(prev, next *RDD) bool {
	old := make(map[int64]float64)
	n := 0
	for _, p := range prev.parts {
		for _, r := range p {
			old[r.A] = r.X
			n++
		}
	}
	m := 0
	for _, p := range next.parts {
		for _, r := range p {
			if d, ok := old[r.A]; !ok || d != r.X {
				return false
			}
			m++
		}
	}
	return n == m
}
