// Package sparklike is a miniature RDD engine in the style of early Spark
// — the bulk-dataflow baseline of the paper's evaluation (§6: "Spark is a
// parallel dataflow system ... centered around the concept of Resilient
// Distributed Data Sets cached in memory").
//
// Every dataset is a partitioned in-memory collection; transformations
// produce new fully-materialized datasets (map/filter stay in their
// partitions, reduceByKey/join/cogroup shuffle). Iterative programs are
// plain Go loops that create a new RDD per iteration — precisely the
// "recompute the full partial solution every pass" behaviour incremental
// iterations beat, including the simulated-incremental Connected
// Components variant of Figure 11 that must copy unchanged state forward.
package sparklike

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/record"
)

// Context owns execution resources.
type Context struct {
	parallelism int
	m           *metrics.Counters
}

// NewContext creates an execution context.
func NewContext(parallelism int, m *metrics.Counters) *Context {
	if parallelism <= 0 {
		parallelism = 1
	}
	return &Context{parallelism: parallelism, m: m}
}

// RDD is a partitioned, materialized dataset.
type RDD struct {
	ctx   *Context
	parts [][]record.Record
}

// Parallelize splits records into partitions.
func (c *Context) Parallelize(recs []record.Record) *RDD {
	parts := make([][]record.Record, c.parallelism)
	per := (len(recs) + c.parallelism - 1) / c.parallelism
	for p := 0; p < c.parallelism; p++ {
		lo, hi := p*per, (p+1)*per
		if lo > len(recs) {
			lo = len(recs)
		}
		if hi > len(recs) {
			hi = len(recs)
		}
		parts[p] = append([]record.Record(nil), recs[lo:hi]...)
	}
	return &RDD{ctx: c, parts: parts}
}

// PartitionBy hash-partitions records by key (a shuffle).
func (c *Context) PartitionBy(recs []record.Record, key record.KeyFunc) *RDD {
	parts := make([][]record.Record, c.parallelism)
	for _, r := range recs {
		p := record.PartitionOf(key(r), c.parallelism)
		parts[p] = append(parts[p], r)
	}
	if c.m != nil {
		c.m.RecordsShipped.Add(int64(len(recs)))
	}
	return &RDD{ctx: c, parts: parts}
}

// eachPart runs f over all partitions in parallel and collects the
// resulting partitions.
func (r *RDD) eachPart(f func(part int, in []record.Record) []record.Record) *RDD {
	out := make([][]record.Record, len(r.parts))
	var wg sync.WaitGroup
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out[p] = f(p, r.parts[p])
		}(p)
	}
	wg.Wait()
	return &RDD{ctx: r.ctx, parts: out}
}

// Map transforms every record.
func (r *RDD) Map(fn func(record.Record) record.Record) *RDD {
	return r.eachPart(func(_ int, in []record.Record) []record.Record {
		out := make([]record.Record, len(in))
		for i, rec := range in {
			r.udf()
			out[i] = fn(rec)
		}
		return out
	})
}

// FlatMap transforms every record into zero or more records.
func (r *RDD) FlatMap(fn func(record.Record, func(record.Record))) *RDD {
	return r.eachPart(func(_ int, in []record.Record) []record.Record {
		var out []record.Record
		emit := func(rec record.Record) { out = append(out, rec) }
		for _, rec := range in {
			r.udf()
			fn(rec, emit)
		}
		return out
	})
}

// Filter keeps matching records.
func (r *RDD) Filter(pred func(record.Record) bool) *RDD {
	return r.eachPart(func(_ int, in []record.Record) []record.Record {
		var out []record.Record
		for _, rec := range in {
			r.udf()
			if pred(rec) {
				out = append(out, rec)
			}
		}
		return out
	})
}

// Union concatenates two datasets partition-wise.
func (r *RDD) Union(o *RDD) *RDD {
	parts := make([][]record.Record, len(r.parts))
	for p := range parts {
		parts[p] = append(append([]record.Record(nil), r.parts[p]...), o.parts[p]...)
	}
	return &RDD{ctx: r.ctx, parts: parts}
}

// shuffle redistributes records by key, with an optional map-side combiner
// fold applied per (partition, key) before the wire.
func (r *RDD) shuffle(key record.KeyFunc, combine func(a, b record.Record) record.Record) [][]record.Record {
	n := len(r.parts)
	// Map-side buckets: [src][dst][]record.
	buckets := make([][][]record.Record, n)
	var wg sync.WaitGroup
	for p := range r.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			local := make([]map[int64]record.Record, n)
			rows := make([][]record.Record, n)
			if combine != nil {
				for i := range local {
					local[i] = make(map[int64]record.Record)
				}
			}
			for _, rec := range r.parts[p] {
				k := key(rec)
				dst := record.PartitionOf(k, n)
				if combine != nil {
					if prev, ok := local[dst][k]; ok {
						r.udf()
						local[dst][k] = combine(prev, rec)
					} else {
						local[dst][k] = rec
					}
				} else {
					rows[dst] = append(rows[dst], rec)
				}
			}
			if combine != nil {
				for dst, m := range local {
					for _, rec := range m {
						rows[dst] = append(rows[dst], rec)
					}
				}
			}
			buckets[p] = rows
		}(p)
	}
	wg.Wait()
	out := make([][]record.Record, n)
	shipped := int64(0)
	for _, rows := range buckets {
		for dst, recs := range rows {
			out[dst] = append(out[dst], recs...)
			shipped += int64(len(recs))
		}
	}
	if r.ctx.m != nil {
		r.ctx.m.RecordsShipped.Add(shipped)
	}
	return out
}

// ReduceByKey folds all records sharing a key with a map-side combiner.
func (r *RDD) ReduceByKey(key record.KeyFunc, fn func(a, b record.Record) record.Record) *RDD {
	shuffled := &RDD{ctx: r.ctx, parts: r.shuffle(key, fn)}
	return shuffled.eachPart(func(_ int, in []record.Record) []record.Record {
		acc := make(map[int64]record.Record)
		for _, rec := range in {
			k := key(rec)
			if prev, ok := acc[k]; ok {
				r.udf()
				acc[k] = fn(prev, rec)
			} else {
				acc[k] = rec
			}
		}
		out := make([]record.Record, 0, len(acc))
		for _, rec := range acc {
			out = append(out, rec)
		}
		return out
	})
}

// Join equi-joins two datasets.
func (r *RDD) Join(o *RDD, lk, rk record.KeyFunc, fn func(l, rr record.Record, emit func(record.Record))) *RDD {
	left := r.shuffle(lk, nil)
	right := o.shuffle(rk, nil)
	out := make([][]record.Record, len(left))
	var wg sync.WaitGroup
	for p := range left {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			table := make(map[int64][]record.Record)
			for _, rec := range left[p] {
				k := lk(rec)
				table[k] = append(table[k], rec)
			}
			var rows []record.Record
			emit := func(rec record.Record) { rows = append(rows, rec) }
			for _, rec := range right[p] {
				for _, l := range table[rk(rec)] {
					r.udf()
					fn(l, rec, emit)
				}
			}
			out[p] = rows
		}(p)
	}
	wg.Wait()
	return &RDD{ctx: r.ctx, parts: out}
}

// CoGroup groups both datasets per key (outer semantics).
func (r *RDD) CoGroup(o *RDD, lk, rk record.KeyFunc, fn func(k int64, ls, rs []record.Record, emit func(record.Record))) *RDD {
	left := r.shuffle(lk, nil)
	right := o.shuffle(rk, nil)
	out := make([][]record.Record, len(left))
	var wg sync.WaitGroup
	for p := range left {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lt := make(map[int64][]record.Record)
			for _, rec := range left[p] {
				lt[lk(rec)] = append(lt[lk(rec)], rec)
			}
			rt := make(map[int64][]record.Record)
			for _, rec := range right[p] {
				rt[rk(rec)] = append(rt[rk(rec)], rec)
			}
			var rows []record.Record
			emit := func(rec record.Record) { rows = append(rows, rec) }
			for k, ls := range lt {
				r.udf()
				fn(k, ls, rt[k], emit)
			}
			for k, rs := range rt {
				if _, seen := lt[k]; !seen {
					r.udf()
					fn(k, nil, rs, emit)
				}
			}
			out[p] = rows
		}(p)
	}
	wg.Wait()
	return &RDD{ctx: r.ctx, parts: out}
}

// Collect flattens all partitions.
func (r *RDD) Collect() []record.Record {
	var out []record.Record
	for _, p := range r.parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the total record count.
func (r *RDD) Count() int64 {
	var n int64
	for _, p := range r.parts {
		n += int64(len(p))
	}
	return n
}

// Cache is a no-op marker: this mini-RDD is always materialized, which is
// exactly the cached-loop-body configuration the paper benchmarks Spark
// in.
func (r *RDD) Cache() *RDD { return r }

func (r *RDD) udf() {
	if r.ctx.m != nil {
		r.ctx.m.UDFInvocations.Add(1)
	}
}
