package graphgen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements edge-list I/O so the engine can run on real graphs
// (e.g. SNAP/WebGraph exports) in addition to the synthetic stand-ins.
// The format is the common whitespace-separated "src dst" text form with
// '#' comments, as used by the paper's source datasets.

// WriteEdgeList writes the graph as "src dst" lines with a header comment.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s vertices=%d edges=%d\n", g.Name, g.NumVertices, g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a whitespace-separated edge list. Lines starting
// with '#' or '%' are comments. Vertex ids may be sparse; the graph's
// NumVertices is 1 + the maximum id seen.
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	g := &Graph{Name: name}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphgen: %s:%d: need two fields, got %q", name, line, text)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphgen: %s:%d: bad source id: %w", name, line, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graphgen: %s:%d: bad target id: %w", name, line, err)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("graphgen: %s:%d: negative vertex id", name, line)
		}
		g.Edges = append(g.Edges, Edge{Src: src, Dst: dst})
		if src+1 > g.NumVertices {
			g.NumVertices = src + 1
		}
		if dst+1 > g.NumVertices {
			g.NumVertices = dst + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphgen: reading %s: %w", name, err)
	}
	return g, nil
}

// SaveEdgeList writes the graph to a file.
func (g *Graph) SaveEdgeList(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEdgeList reads a graph from a file; the base name becomes the graph
// name.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return ReadEdgeList(name, f)
}

// Relabel compacts sparse vertex ids into the dense range [0, n) and
// returns the relabelled graph together with the old-id-by-new-id table.
// Dense ids are what the engine's solution-set initializers expect.
func (g *Graph) Relabel() (*Graph, []int64) {
	next := int64(0)
	ids := make(map[int64]int64)
	lookup := func(v int64) int64 {
		if n, ok := ids[v]; ok {
			return n
		}
		n := next
		next++
		ids[v] = n
		return n
	}
	out := &Graph{Name: g.Name, Edges: make([]Edge, len(g.Edges))}
	for i, e := range g.Edges {
		out.Edges[i] = Edge{Src: lookup(e.Src), Dst: lookup(e.Dst)}
	}
	out.NumVertices = next
	old := make([]int64, next)
	for o, n := range ids {
		old[n] = o
	}
	return out, old
}
