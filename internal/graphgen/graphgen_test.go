package graphgen

import (
	"testing"
	"testing/quick"
)

func TestUniformProperties(t *testing.T) {
	g := Uniform("u", 100, 500, 1)
	if g.NumVertices != 100 || g.NumEdges() != 500 {
		t.Fatalf("got V=%d E=%d", g.NumVertices, g.NumEdges())
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop emitted")
		}
		if e.Src < 0 || e.Src >= 100 || e.Dst < 0 || e.Dst >= 100 {
			t.Fatalf("edge out of range: %+v", e)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMAT("a", 8, 1000, 0.57, 0.19, 0.19, 5)
	b := RMAT("b", 8, 1000, 0.57, 0.19, 0.19, 5)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("RMAT not deterministic in edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("RMAT not deterministic at edge %d", i)
		}
	}
	p1 := PreferentialAttachment("p", 200, 3, 9)
	p2 := PreferentialAttachment("p", 200, 3, 9)
	for i := range p1.Edges {
		if p1.Edges[i] != p2.Edges[i] {
			t.Fatalf("PA not deterministic at edge %d", i)
		}
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT("s", 10, 10000, 0.57, 0.19, 0.19, 3)
	st := g.OutDegreeStats()
	if st.Max < 5*int64(st.Mean) {
		t.Errorf("RMAT should be skewed: max=%d mean=%.1f", st.Max, st.Mean)
	}
}

func TestUndirectedSymmetric(t *testing.T) {
	g := Uniform("u", 50, 200, 2).Undirected()
	set := make(map[Edge]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("undirected graph contains self loop")
		}
		if set[e] {
			t.Fatalf("duplicate edge %+v", e)
		}
		set[e] = true
	}
	for _, e := range g.Edges {
		if !set[Edge{Src: e.Dst, Dst: e.Src}] {
			t.Fatalf("missing reverse edge for %+v", e)
		}
	}
}

func TestUndirectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform("u", 30, 100, seed).Undirected()
		set := make(map[Edge]bool, len(g.Edges))
		for _, e := range g.Edges {
			set[e] = true
		}
		for _, e := range g.Edges {
			if !set[Edge{Src: e.Dst, Dst: e.Src}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAdjacencyMatchesEdges(t *testing.T) {
	g := Uniform("u", 40, 160, 3)
	adj := g.Adjacency()
	count := 0
	for _, ns := range adj {
		count += len(ns)
	}
	if int64(count) != g.NumEdges() {
		t.Fatalf("adjacency has %d entries, want %d", count, g.NumEdges())
	}
}

func TestChainedCommunitiesConnectedAndDeep(t *testing.T) {
	g := ChainedCommunities("c", 10, 16, 8, 1)
	und := g.Undirected()
	// BFS from vertex 0 must reach every vertex (one giant component) and
	// the eccentricity must be at least the number of communities (long
	// chain => big diameter).
	adj := und.Adjacency()
	dist := make([]int, und.NumVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int64{0}
	maxd := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, n := range adj[v] {
			if dist[n] == -1 {
				dist[n] = dist[v] + 1
				if dist[n] > maxd {
					maxd = dist[n]
				}
				queue = append(queue, n)
			}
		}
	}
	for v, d := range dist {
		if d == -1 {
			t.Fatalf("vertex %d unreachable: chain broken", v)
		}
	}
	if maxd < 10 {
		t.Errorf("eccentricity %d too small for a 10-community chain", maxd)
	}
}

func TestFringeAddsComponents(t *testing.T) {
	g := Uniform("u", 20, 100, 4).WithIsolatedFringe(5, 4, 5)
	if g.NumVertices != 20+5*4 {
		t.Fatalf("fringe vertices wrong: %d", g.NumVertices)
	}
}

func TestDatasetRegistry(t *testing.T) {
	for _, d := range append(AllTable2(), DSFOAF) {
		g := Load(d, ScaleTiny)
		if g == nil || g.NumVertices == 0 || g.NumEdges() == 0 {
			t.Fatalf("dataset %s empty", d)
		}
	}
	if Load("nope", ScaleTiny) != nil {
		t.Error("unknown dataset should return nil")
	}
}

func TestTable2Shapes(t *testing.T) {
	// The relative density ordering of the paper's Table 2 must hold:
	// hollywood ≫ twitter > webbase ≈ wikipedia.
	wiki := Wikipedia(ScaleTiny)
	holly := Hollywood(ScaleTiny)
	twitter := Twitter(ScaleTiny)
	if holly.AvgDegree() < 1.5*twitter.AvgDegree() {
		t.Errorf("hollywood (%.1f) should be much denser than twitter (%.1f)",
			holly.AvgDegree(), twitter.AvgDegree())
	}
	if twitter.AvgDegree() < wiki.AvgDegree() {
		t.Errorf("twitter (%.1f) should be denser than wikipedia (%.1f)",
			twitter.AvgDegree(), wiki.AvgDegree())
	}
}

func TestPreferentialAttachmentConnected(t *testing.T) {
	g := PreferentialAttachment("p", 500, 2, 11).Undirected()
	adj := g.Adjacency()
	seen := make([]bool, g.NumVertices)
	seen[0] = true
	queue := []int64{0}
	n := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if !seen[nb] {
				seen[nb] = true
				n++
				queue = append(queue, nb)
			}
		}
	}
	if int64(n) != g.NumVertices {
		t.Errorf("PA graph should be connected: reached %d of %d", n, g.NumVertices)
	}
}

func TestScaleClampsSmall(t *testing.T) {
	if Scale(0.0001).apply(100) < 8 {
		t.Error("scale should clamp to a minimum")
	}
}

func TestGraphString(t *testing.T) {
	g := Uniform("u", 10, 20, 1)
	if g.String() == "" {
		t.Error("empty String()")
	}
}
