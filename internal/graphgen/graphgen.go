// Package graphgen produces deterministic synthetic graphs standing in for
// the paper's datasets (Table 2: Wikipedia-EN, Webbase, Hollywood, Twitter,
// plus the FOAF subgraph of Figure 2).
//
// The real graphs are not redistributable and are far beyond laptop scale,
// so each generator reproduces the property the paper's experiments depend
// on, at a configurable scale:
//
//   - web graphs (wikipedia, webbase): moderate average degree; webbase
//     additionally has a giant component with a very large diameter, which
//     is what makes Connected Components take 744 supersteps in the paper
//     (Figure 10). We model it with chained communities: local clusters
//     linked in a long chain.
//   - social graphs (hollywood, twitter): skewed, power-law-ish degree
//     distribution and high density (hollywood avg. degree 115), generated
//     with R-MAT / preferential attachment.
//   - FOAF: a small social graph with one dominant component plus fringe,
//     used to show the decaying working set (Figure 2).
//
// All generators are fully deterministic given a seed.
package graphgen

import (
	"fmt"
	"sort"
)

// Edge is a directed edge from Src to Dst.
type Edge struct {
	Src, Dst int64
}

// Graph is an edge-list graph with vertex ids in [0, NumVertices).
type Graph struct {
	Name        string
	NumVertices int64
	Edges       []Edge
}

// NumEdges returns the number of (directed) edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.Edges)) }

// AvgDegree returns the average out-degree, matching the paper's Table 2
// metric (edges divided by vertices).
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.NumVertices)
}

// Undirected returns a copy of the graph with every edge symmetrized and
// self-loops plus duplicate edges removed. Connected Components interprets
// links as undirected (§6.2: "we interpreted the links as undirected").
func (g *Graph) Undirected() *Graph {
	seen := make(map[Edge]struct{}, 2*len(g.Edges))
	out := make([]Edge, 0, 2*len(g.Edges))
	add := func(e Edge) {
		if e.Src == e.Dst {
			return
		}
		if _, dup := seen[e]; dup {
			return
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	for _, e := range g.Edges {
		add(e)
		add(Edge{Src: e.Dst, Dst: e.Src})
	}
	return &Graph{Name: g.Name + "-undirected", NumVertices: g.NumVertices, Edges: out}
}

// Adjacency builds a neighborhood index N: vertex -> neighbors, over the
// edges as given (callers wanting undirected semantics should call
// Undirected first).
func (g *Graph) Adjacency() [][]int64 {
	adj := make([][]int64, g.NumVertices)
	deg := make([]int32, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	for v := range adj {
		adj[v] = make([]int64, 0, deg[v])
	}
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	return adj
}

// rng is a small deterministic xorshift64* generator so graph shapes do not
// depend on Go's math/rand version.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Uniform generates an Erdős–Rényi style graph with numEdges directed
// edges drawn uniformly (self-loops skipped, duplicates allowed as in real
// crawls).
func Uniform(name string, numVertices, numEdges int64, seed uint64) *Graph {
	r := newRNG(seed)
	edges := make([]Edge, 0, numEdges)
	for int64(len(edges)) < numEdges {
		s, d := r.intn(numVertices), r.intn(numVertices)
		if s == d {
			continue
		}
		edges = append(edges, Edge{Src: s, Dst: d})
	}
	return &Graph{Name: name, NumVertices: numVertices, Edges: edges}
}

// RMAT generates a recursive-matrix (Kronecker-like) graph producing a
// skewed, power-law-ish degree distribution, suitable for social graphs.
// Probabilities (a, b, c) steer edges to the four quadrants, d = 1-a-b-c.
func RMAT(name string, scale int, numEdges int64, a, b, c float64, seed uint64) *Graph {
	n := int64(1) << scale
	r := newRNG(seed)
	edges := make([]Edge, 0, numEdges)
	for int64(len(edges)) < numEdges {
		var src, dst int64
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.float()
			switch {
			case p < a:
				// top-left: neither bit set
			case p < a+b:
				dst |= 1 << bit
			case p < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src == dst {
			src, dst = 0, 0
			continue
		}
		edges = append(edges, Edge{Src: src, Dst: dst})
		src, dst = 0, 0
	}
	return &Graph{Name: name, NumVertices: n, Edges: edges}
}

// PreferentialAttachment generates a Barabási–Albert style graph: each new
// vertex attaches m edges to existing vertices chosen proportionally to
// their degree. Produces one connected power-law component — a good model
// for the Hollywood collaboration graph and the FOAF crawl.
func PreferentialAttachment(name string, numVertices int64, m int, seed uint64) *Graph {
	if numVertices < 2 {
		numVertices = 2
	}
	if m < 1 {
		m = 1
	}
	r := newRNG(seed)
	edges := make([]Edge, 0, numVertices*int64(m))
	// targets holds one entry per edge endpoint; sampling uniformly from it
	// is sampling proportionally to degree.
	targets := make([]int64, 0, 2*numVertices*int64(m))
	edges = append(edges, Edge{Src: 0, Dst: 1})
	targets = append(targets, 0, 1)
	for v := int64(2); v < numVertices; v++ {
		attach := m
		if int64(attach) > v {
			attach = int(v)
		}
		chosen := make(map[int64]struct{}, attach)
		for len(chosen) < attach {
			t := targets[r.intn(int64(len(targets)))]
			if t == v {
				continue
			}
			chosen[t] = struct{}{}
		}
		// Deterministic edge order regardless of map iteration.
		picks := make([]int64, 0, attach)
		for t := range chosen {
			picks = append(picks, t)
		}
		sort.Slice(picks, func(i, j int) bool { return picks[i] < picks[j] })
		for _, t := range picks {
			edges = append(edges, Edge{Src: v, Dst: t})
			targets = append(targets, v, t)
		}
	}
	return &Graph{Name: name, NumVertices: numVertices, Edges: edges}
}

// ChainedCommunities generates numCommunities dense local clusters of
// communitySize vertices, linked into one long chain by single bridge
// edges. The resulting giant component has diameter proportional to the
// number of communities, which forces Connected Components into a long
// convergence tail exactly like the paper's Webbase run (Figure 10:
// 744 supersteps to full convergence).
func ChainedCommunities(name string, numCommunities, communitySize int64, intraEdges int, seed uint64) *Graph {
	r := newRNG(seed)
	n := numCommunities * communitySize
	// Vertex-id blocks are assigned to chain positions through a random
	// permutation. With ids increasing along the chain, min-label
	// propagation would improve every downstream community once per wave
	// step (a pathological O(V·diameter) cascade no real graph exhibits);
	// with shuffled blocks each vertex improves only O(log n) times —
	// once per new prefix minimum passing through — while the diameter,
	// and hence the superstep count, stays proportional to the chain.
	perm := make([]int64, numCommunities)
	for i := range perm {
		perm[i] = int64(i)
	}
	for i := int64(numCommunities) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}

	edges := make([]Edge, 0, numCommunities*int64(intraEdges)+numCommunities)
	for c := int64(0); c < numCommunities; c++ {
		base := perm[c] * communitySize
		// A ring inside the community keeps it connected...
		for i := int64(0); i < communitySize; i++ {
			edges = append(edges, Edge{Src: base + i, Dst: base + (i+1)%communitySize})
		}
		// ...plus random chords for density.
		for i := 0; i < intraEdges; i++ {
			s, d := base+r.intn(communitySize), base+r.intn(communitySize)
			if s == d {
				continue
			}
			edges = append(edges, Edge{Src: s, Dst: d})
		}
		// Bridge to the next community on the chain (chain, not ring, to
		// maximize diameter).
		if c+1 < numCommunities {
			next := perm[c+1] * communitySize
			edges = append(edges, Edge{Src: base + communitySize - 1, Dst: next})
		}
	}
	return &Graph{Name: name, NumVertices: n, Edges: edges}
}

// WithDiameterTail appends a simple path of the given length, attached to
// vertex `attach` of the existing graph. The tail stretches the giant
// component's diameter so label-propagation algorithms need ~length extra
// supersteps to converge — the long, sparse convergence tail the paper's
// real graphs exhibit (Wikipedia and Twitter take 14 supersteps, §6.2)
// and the regime where incremental iterations dominate bulk ones.
func (g *Graph) WithDiameterTail(length int64, attach int64) *Graph {
	if length <= 0 {
		return g
	}
	edges := append([]Edge(nil), g.Edges...)
	base := g.NumVertices
	edges = append(edges, Edge{Src: attach, Dst: base})
	for i := int64(0); i+1 < length; i++ {
		edges = append(edges, Edge{Src: base + i, Dst: base + i + 1})
	}
	return &Graph{Name: g.Name, NumVertices: base + length, Edges: edges}
}

// WithIsolatedFringe appends extra vertices connected in small star
// clusters of the given size, modelling the disconnected fringe real crawls
// have (so Connected Components yields many components, not one).
func (g *Graph) WithIsolatedFringe(clusters int64, clusterSize int64, seed uint64) *Graph {
	edges := append([]Edge(nil), g.Edges...)
	base := g.NumVertices
	for c := int64(0); c < clusters; c++ {
		center := base + c*clusterSize
		for i := int64(1); i < clusterSize; i++ {
			edges = append(edges, Edge{Src: center, Dst: center + i})
		}
	}
	return &Graph{
		Name:        g.Name,
		NumVertices: g.NumVertices + clusters*clusterSize,
		Edges:       edges,
	}
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int64
	Mean     float64
	P99      int64
}

// OutDegreeStats computes out-degree statistics.
func (g *Graph) OutDegreeStats() DegreeStats {
	deg := make([]int64, g.NumVertices)
	for _, e := range g.Edges {
		deg[e.Src]++
	}
	sorted := append([]int64(nil), deg...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st := DegreeStats{Mean: g.AvgDegree()}
	if len(sorted) > 0 {
		st.Min = sorted[0]
		st.Max = sorted[len(sorted)-1]
		st.P99 = sorted[len(sorted)*99/100]
	}
	return st
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s{V=%d E=%d avg=%.2f}", g.Name, g.NumVertices, g.NumEdges(), g.AvgDegree())
}
