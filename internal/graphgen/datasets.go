package graphgen

// This file defines the scaled stand-ins for the paper's datasets
// (Table 2). The scale factor is roughly 1:1000 against the originals, but
// the *relative* properties the experiments exploit are preserved:
//
//	dataset          paper V / E / avg      ours (default scale)     property preserved
//	Wikipedia-EN     16.5M / 219.5M / 13.3  16k / ~220k / ~13        web graph, medium density
//	Webbase          115.7M / 1.74B / 15.0  96k / ~1.5M / ~15        web graph + huge diameter
//	Hollywood        2.0M / 229.0M / 115.3  4k / ~460k / ~115        very dense social graph
//	Twitter          41.7M / 1.47B / 35.3   32k / ~1.1M / ~35        dense power-law social graph
//	FOAF (Fig. 2)    1.2M / 7M / ~5.8       12k / ~70k / ~5.8        one dominant component + fringe

// Scale controls dataset size; 1.0 is the default laptop scale above.
// Benchmarks use smaller scales for fast runs.
type Scale float64

const (
	// ScaleDefault is used by the experiment CLI.
	ScaleDefault Scale = 1.0
	// ScaleBench is used by go test benchmarks to keep runs short.
	ScaleBench Scale = 0.25
	// ScaleTiny is used by unit tests.
	ScaleTiny Scale = 0.05
)

func (s Scale) apply(n int64) int64 {
	v := int64(float64(n) * float64(s))
	if v < 8 {
		v = 8
	}
	return v
}

// Wikipedia returns the Wikipedia-EN stand-in: a moderately dense web-style
// link graph with a fringe of small components.
func Wikipedia(s Scale) *Graph {
	v := s.apply(14000)
	e := s.apply(14000 * 13)
	g := RMAT("wikipedia", log2ceil(v), e, 0.57, 0.19, 0.19, 42)
	// A diameter tail stretches convergence to ~14 supersteps (the paper's
	// count for Wikipedia), and a fringe of small star components models
	// the disconnected remainder of a real link graph.
	return g.WithDiameterTail(12, 1).
		WithIsolatedFringe(s.apply(200), 8, 43).named("wikipedia")
}

// Webbase returns the Webbase stand-in: web-scale density and a giant
// component with a very large diameter (the 744-superstep tail of Fig. 10).
func Webbase(s Scale) *Graph {
	communities := s.apply(740)
	g := ChainedCommunities("webbase", communities, 128, 128*14, 4242)
	return g.WithIsolatedFringe(s.apply(100), 8, 4243).named("webbase")
}

// Hollywood returns the Hollywood stand-in: a small but very dense social
// graph (average degree ≈ 115).
func Hollywood(s Scale) *Graph {
	v := s.apply(4000)
	g := PreferentialAttachment("hollywood", v, 58, 7) // undirected doubling ≈ 115
	// A short tail: the dense core converges almost immediately, leaving
	// a brief sparse phase (the paper reports smaller gains here).
	return g.WithDiameterTail(8, 1).named("hollywood")
}

// Twitter returns the Twitter stand-in: a large, dense power-law graph.
func Twitter(s Scale) *Graph {
	v := s.apply(32000)
	e := s.apply(32000 * 35)
	g := RMAT("twitter", log2ceil(v), e, 0.52, 0.20, 0.21, 99)
	// Twitter also needs 14 supersteps in the paper; most of the graph
	// converges within 4, then a sparse tail remains (§6.2: "the remaining
	// 10 iterations change less than 5% of the elements").
	return g.WithDiameterTail(12, 1).
		WithIsolatedFringe(s.apply(120), 8, 100).named("twitter")
}

// FOAF returns the Figure-2 stand-in: a Friend-of-a-Friend style graph with
// one dominant component that converges quickly plus stragglers, so the
// working set collapses over the iterations.
func FOAF(s Scale) *Graph {
	v := s.apply(11000)
	g := PreferentialAttachment("foaf", v, 3, 77)
	// A long chain of small groups gives the convergence tail visible in
	// Figure 2 (475, 42, 5, 9, 6 working-set entries in late iterations).
	tail := ChainedCommunities("tail", s.apply(24), 16, 8, 78)
	merged := make([]Edge, 0, len(g.Edges)+len(tail.Edges)+1)
	merged = append(merged, g.Edges...)
	for _, e := range tail.Edges {
		merged = append(merged, Edge{Src: e.Src + g.NumVertices, Dst: e.Dst + g.NumVertices})
	}
	// One bridge attaches the chain to the main component so the component
	// count stays small but the tail converges late.
	merged = append(merged, Edge{Src: 0, Dst: g.NumVertices})
	return &Graph{Name: "foaf", NumVertices: g.NumVertices + tail.NumVertices, Edges: merged}
}

func (g *Graph) named(n string) *Graph { g.Name = n; return g }

func log2ceil(n int64) int {
	s := 0
	for (int64(1) << s) < n {
		s++
	}
	return s
}

// Dataset identifies one of the paper's graphs.
type Dataset string

// The datasets of Table 2 plus the FOAF graph of Figure 2.
const (
	DSWikipedia Dataset = "wikipedia"
	DSWebbase   Dataset = "webbase"
	DSHollywood Dataset = "hollywood"
	DSTwitter   Dataset = "twitter"
	DSFOAF      Dataset = "foaf"
)

// Load builds the named dataset at the given scale.
func Load(d Dataset, s Scale) *Graph {
	switch d {
	case DSWikipedia:
		return Wikipedia(s)
	case DSWebbase:
		return Webbase(s)
	case DSHollywood:
		return Hollywood(s)
	case DSTwitter:
		return Twitter(s)
	case DSFOAF:
		return FOAF(s)
	}
	return nil
}

// AllTable2 lists the datasets appearing in the paper's Table 2.
func AllTable2() []Dataset {
	return []Dataset{DSWikipedia, DSWebbase, DSHollywood, DSTwitter}
}
