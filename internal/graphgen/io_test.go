package graphgen

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := Uniform("rt", 50, 200, 3)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d != %d", back.NumEdges(), g.NumEdges())
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := Uniform("file", 30, 90, 4)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "g.txt" {
		t.Errorf("name = %q", back.Name)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges lost: %d != %d", back.NumEdges(), g.NumEdges())
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n% another\n1 2\n3\t4\n"
	g, err := ReadEdgeList("c", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.NumVertices != 5 {
		t.Fatalf("got E=%d V=%d", g.NumEdges(), g.NumVertices)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",    // one field
		"a b\n",  // bad source
		"1 b\n",  // bad target
		"-1 2\n", // negative id
		"1 -2\n", // negative id
	}
	for _, in := range cases {
		if _, err := ReadEdgeList("bad", strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestRelabelDense(t *testing.T) {
	g := &Graph{Name: "sparse", NumVertices: 1001, Edges: []Edge{
		{Src: 1000, Dst: 5}, {Src: 5, Dst: 77}, {Src: 77, Dst: 1000},
	}}
	dense, old := g.Relabel()
	if dense.NumVertices != 3 {
		t.Fatalf("dense vertices = %d", dense.NumVertices)
	}
	for _, e := range dense.Edges {
		if e.Src < 0 || e.Src >= 3 || e.Dst < 0 || e.Dst >= 3 {
			t.Fatalf("id out of dense range: %+v", e)
		}
	}
	// The mapping must be invertible and consistent.
	if old[dense.Edges[0].Src] != 1000 || old[dense.Edges[0].Dst] != 5 {
		t.Errorf("relabel mapping broken: %v", old)
	}
}
