package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TimelineRow summarizes one superstep from its spans, possibly merged
// across the hosts of a distributed run.
type TimelineRow struct {
	// Step is the superstep index.
	Step int32 `json:"step"`
	// Hosts counts distinct hosts that contributed spans to this step.
	Hosts int `json:"hosts"`
	// Operators counts operator spans in this step across all hosts.
	Operators int `json:"operators"`
	// Total is the slowest host's superstep duration — the step's
	// wall-clock length.
	Total time.Duration `json:"total_ns"`
	// Compute is the critical-path operator time: the largest summed
	// operator duration of any single (host, partition).
	Compute time.Duration `json:"compute_ns"`
	// Barrier is time not spent computing on the critical path: explicit
	// barrier spans when present (distributed coordinator), otherwise
	// Total - Compute.
	Barrier time.Duration `json:"barrier_ns"`
	// Ship is the summed transport ship time across hosts.
	Ship time.Duration `json:"ship_ns"`
	// Merge is the summed solution-set merge time.
	Merge time.Duration `json:"merge_ns"`
}

// BuildTimeline folds spans into per-superstep rows, ordered by step.
// Spans with Step < 0 (plan, flush, WAL, snapshot phases) are skipped —
// they are not part of any one superstep.
func BuildTimeline(spans []Span) []TimelineRow {
	type hostPart struct {
		host, part int32
	}
	type acc struct {
		row      TimelineRow
		hosts    map[int32]bool
		partWork map[hostPart]time.Duration
		barrier  time.Duration // explicit barrier spans
	}
	steps := make(map[int32]*acc)
	get := func(step int32) *acc {
		a := steps[step]
		if a == nil {
			a = &acc{
				row:      TimelineRow{Step: step},
				hosts:    make(map[int32]bool),
				partWork: make(map[hostPart]time.Duration),
			}
			steps[step] = a
		}
		return a
	}
	for _, s := range spans {
		if s.Step < 0 {
			continue
		}
		a := get(s.Step)
		a.hosts[s.Host] = true
		d := time.Duration(s.Dur)
		switch s.Phase {
		case PhaseSuperstep:
			if d > a.row.Total {
				a.row.Total = d
			}
		case PhaseOperator:
			a.row.Operators++
			a.partWork[hostPart{s.Host, s.Part}] += d
		case PhaseShip:
			a.row.Ship += d
		case PhaseMerge:
			a.row.Merge += d
		case PhaseBarrier:
			a.barrier += d
		}
	}

	rows := make([]TimelineRow, 0, len(steps))
	for _, a := range steps {
		for _, w := range a.partWork {
			if w > a.row.Compute {
				a.row.Compute = w
			}
		}
		a.row.Hosts = len(a.hosts)
		if a.barrier > 0 {
			a.row.Barrier = a.barrier
		} else if a.row.Total > a.row.Compute {
			a.row.Barrier = a.row.Total - a.row.Compute
		}
		rows = append(rows, a.row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Step < rows[j].Step })
	return rows
}

// WriteTimeline renders rows as an aligned text table.
func WriteTimeline(w io.Writer, rows []TimelineRow) {
	fmt.Fprintf(w, "%5s  %5s  %4s  %12s  %12s  %12s  %12s  %12s\n",
		"step", "hosts", "ops", "total", "compute", "barrier", "ship", "merge")
	var tot TimelineRow
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %5d  %4d  %12s  %12s  %12s  %12s  %12s\n",
			r.Step, r.Hosts, r.Operators,
			fmtDur(r.Total), fmtDur(r.Compute), fmtDur(r.Barrier),
			fmtDur(r.Ship), fmtDur(r.Merge))
		tot.Total += r.Total
		tot.Compute += r.Compute
		tot.Barrier += r.Barrier
		tot.Ship += r.Ship
		tot.Merge += r.Merge
		tot.Operators += r.Operators
	}
	fmt.Fprintf(w, "%5s  %5s  %4d  %12s  %12s  %12s  %12s  %12s\n",
		"sum", "", tot.Operators,
		fmtDur(tot.Total), fmtDur(tot.Compute), fmtDur(tot.Barrier),
		fmtDur(tot.Ship), fmtDur(tot.Merge))
}

// fmtDur renders a duration rounded for column alignment.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// TimelineDoc is the JSON document `spinflow trace <scenario>` writes to
// TRACE_<scenario>.json: the reassembled timeline plus the raw spans it
// was built from.
type TimelineDoc struct {
	Scenario string        `json:"scenario"`
	Trace    string        `json:"trace"`
	Hosts    int           `json:"hosts"`
	Rows     []TimelineRow `json:"rows"`
	Spans    []Span        `json:"spans"`
}

// NewTimelineDoc builds the export document for one trace's spans.
func NewTimelineDoc(scenario string, id TraceID, spans []Span) TimelineDoc {
	hosts := make(map[int32]bool)
	for _, s := range spans {
		hosts[s.Host] = true
	}
	return TimelineDoc{
		Scenario: scenario,
		Trace:    id.String(),
		Hosts:    len(hosts),
		Rows:     BuildTimeline(spans),
		Spans:    spans,
	}
}
