package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"unicode"

	"repro/internal/metrics"
)

// Collector is a callback that contributes point-in-time gauges to a
// scrape. labels is the Prometheus inner label text without braces (e.g.
// `view="pr"`), or empty.
type Collector func(emit func(name, labels string, value float64))

// Registry owns one process's exportable telemetry: named latency
// histograms, a span ring, a shared counter set, and gauge collectors.
// It renders everything as Prometheus text and expvar-style JSON, and
// mounts them (plus pprof) on an http.Handler.
//
// All methods are safe for concurrent use; Histogram is get-or-create so
// independent layers can name the same series without coordination.
type Registry struct {
	mu         sync.Mutex
	hists      map[string]*Histogram
	counters   *metrics.Counters
	collectors []Collector
	ring       *Ring
}

// NewRegistry creates a registry with a DefaultRingSpans-sized span ring
// and a fresh counter set.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: &metrics.Counters{},
		ring:     NewRing(0),
	}
}

// Histogram returns the named histogram, creating it on first use. Names
// are snake_case duration series without unit suffix (the exporter
// appends `_seconds`): "superstep_duration", "live_query_duration", ...
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Trace returns the registry's span ring (its TraceSink).
func (r *Registry) Trace() *Ring { return r.ring }

// Counters returns the registry's shared counter set. Sessions and views
// that don't bring their own counters should record into this one so
// their work is scrapeable.
func (r *Registry) Counters() *metrics.Counters { return r.counters }

// SetCounters replaces the exported counter set (e.g. to export counters
// that pre-date the registry).
func (r *Registry) SetCounters(c *metrics.Counters) {
	r.mu.Lock()
	r.counters = c
	r.mu.Unlock()
}

// RegisterCollector adds a gauge collector invoked on every scrape.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// snapshot copies the registry's mutable state under the lock so a scrape
// renders without holding it.
func (r *Registry) snapshot() (names []string, hists []*Histogram, c *metrics.Counters, cols []Collector, ring *Ring) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names = make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	hists = make([]*Histogram, len(names))
	for i, n := range names {
		hists[i] = r.hists[n]
	}
	return names, hists, r.counters, append([]Collector(nil), r.collectors...), r.ring
}

// snakeCase converts a Go field name to a Prometheus-style metric name:
// RecordsShipped → records_shipped, UDFInvocations → udf_invocations.
func snakeCase(name string) string {
	var b strings.Builder
	rs := []rune(name)
	for i, r := range rs {
		if unicode.IsUpper(r) {
			// Start a new word at lower→Upper, and at the last capital of
			// an acronym run followed by a lowercase (WALAppends → wal_appends).
			if i > 0 && (unicode.IsLower(rs[i-1]) || unicode.IsDigit(rs[i-1]) ||
				(i+1 < len(rs) && unicode.IsLower(rs[i+1]))) {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Counter fields become `spinflow_<snake_name>` gauges (gauge, not
// counter, because Reset and gauge-like fields such as SolutionBytes make
// monotonicity a per-field property the type system doesn't track);
// histograms become `spinflow_<name>_seconds` with power-of-two-ns bucket
// bounds converted to seconds.
func (r *Registry) WritePrometheus(w io.Writer) {
	names, hists, counters, cols, ring := r.snapshot()

	if counters != nil {
		for _, f := range counters.Snapshot().Fields() {
			n := "spinflow_" + snakeCase(f.Name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, f.Value)
		}
	}

	for i, name := range names {
		s := hists[i].Snapshot()
		n := "spinflow_" + name + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for b, c := range s.Buckets {
			cum += c
			if c == 0 && b != numBuckets-1 {
				continue // sparse: emit only hit buckets plus +Inf
			}
			if b == numBuckets-1 {
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, float64(bucketUpper(b))/1e9, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum %g\n", n, float64(s.Sum)/1e9)
		fmt.Fprintf(w, "%s_count %d\n", n, s.Count)
	}

	emit := func(name, labels string, value float64) {
		n := "spinflow_" + name
		if labels != "" {
			fmt.Fprintf(w, "%s{%s} %g\n", n, labels, value)
		} else {
			fmt.Fprintf(w, "%s %g\n", n, value)
		}
	}
	for _, c := range cols {
		c(emit)
	}

	fmt.Fprintf(w, "# TYPE spinflow_trace_spans_retained gauge\nspinflow_trace_spans_retained %d\n", ring.Len())
	fmt.Fprintf(w, "# TYPE spinflow_trace_spans_dropped gauge\nspinflow_trace_spans_dropped %d\n", ring.Dropped())
}

// histVar is the JSON form of one histogram in /debug/vars.
type histVar struct {
	Count  int64 `json:"count"`
	SumNs  int64 `json:"sum_ns"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
}

// Vars returns the /debug/vars JSON document: counters by field name,
// histogram summaries, collector gauges, and span-ring occupancy.
func (r *Registry) Vars() map[string]any {
	names, hists, counters, cols, ring := r.snapshot()
	doc := make(map[string]any, 4)

	cm := make(map[string]int64)
	if counters != nil {
		for _, f := range counters.Snapshot().Fields() {
			cm[f.Name] = f.Value
		}
	}
	doc["counters"] = cm

	hm := make(map[string]histVar, len(names))
	for i, name := range names {
		s := hists[i].Snapshot()
		hm[name] = histVar{
			Count:  s.Count,
			SumNs:  s.Sum,
			MeanNs: int64(s.Mean()),
			P50Ns:  int64(s.P50()),
			P90Ns:  int64(s.P90()),
			P99Ns:  int64(s.P99()),
		}
	}
	doc["histograms"] = hm

	gm := make(map[string]float64)
	for _, c := range cols {
		c(func(name, labels string, value float64) {
			key := name
			if labels != "" {
				key += "{" + labels + "}"
			}
			gm[key] = value
		})
	}
	doc["gauges"] = gm

	doc["trace"] = map[string]int64{
		"spans_retained": int64(ring.Len()),
		"spans_dropped":  ring.Dropped(),
	}
	return doc
}

// Handler mounts the export plane:
//
//	GET /metrics        Prometheus text
//	GET /debug/vars     counters + histogram summaries as JSON
//	GET /debug/pprof/*  net/http/pprof (profile, heap, trace, ...)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Vars())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes the Handler on addr in a background goroutine. It returns
// the bound address (useful with ":0") and a closer that stops the
// listener.
func (r *Registry) Serve(addr string) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), ln, nil
}
