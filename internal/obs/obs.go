// Package obs is the telemetry plane: structured phase spans, fixed-bucket
// latency histograms, and an export surface (Prometheus text, expvar-style
// JSON, pprof) shared by the runtime, the iterative drivers, the live
// serving tier, and distributed sessions.
//
// The design constraints come from the hot path it observes:
//
//   - Spans are fixed-size values recorded into a pre-allocated ring
//     (Ring); recording allocates nothing and a nil TraceSink costs one
//     branch, so instrumented code paths stay benchmark-neutral when
//     telemetry is off.
//   - Histograms use power-of-two nanosecond buckets updated with atomics,
//     so parallel workers record concurrently with a /metrics scrape
//     without coordination; quantiles (p50/p90/p99) are extracted from a
//     snapshot by interpolating within the hit bucket.
//   - Everything hangs off a Registry, which renders the whole state as
//     Prometheus text (GET /metrics), JSON (GET /debug/vars), and serves
//     net/http/pprof — one Handler wired by `spinflow serve
//     -telemetry-addr` and `spinflow worker -telemetry-addr`.
//
// Spans carry a TraceID so one distributed run's spans — produced by N
// worker processes — reassemble into a single timeline: the coordinator
// stamps the trace ID into the job spec and the data-plane frame headers,
// every process records against it, and `spinflow trace` merges the
// collected spans (see Timeline).
package obs

import (
	"fmt"
	"sync"
	"time"
)

// TraceID identifies one logical run (a job, a view's lifetime, a
// distributed session) across processes. Zero means untraced.
type TraceID uint64

// traceCounter distinguishes trace IDs minted within one nanosecond.
var (
	traceMu      sync.Mutex
	traceCounter uint64
)

// NewTraceID mints a process-unique trace ID. IDs from different processes
// are distinct with overwhelming probability (wall-clock nanoseconds mixed
// with a counter through a 64-bit finalizer), which is all reassembly
// needs — in distributed runs only the coordinator mints, and every worker
// adopts its ID.
func NewTraceID() TraceID {
	traceMu.Lock()
	traceCounter++
	seed := uint64(time.Now().UnixNano()) + traceCounter<<1
	traceMu.Unlock()
	// SplitMix64 finalizer: spreads the low-entropy seed over all 64 bits.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return TraceID(z)
}

// String renders the trace ID as fixed-width hex.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// Phase classifies what a span measured.
type Phase uint8

// The instrumented phases, one per hot-path stage worth explaining after
// the fact.
const (
	// PhaseSuperstep covers one Session.Run: every live task fired,
	// executed, and joined at the barrier.
	PhaseSuperstep Phase = iota
	// PhaseOperator covers one (node, partition) task within a superstep.
	PhaseOperator
	// PhaseShip covers time spent serializing and writing exchange batches
	// to remote peers (distributed sessions; zero in-process).
	PhaseShip
	// PhaseMerge covers the post-superstep S ∪̇ D solution-set merge.
	PhaseMerge
	// PhasePlan covers one optimizer invocation (initial or re-plan).
	PhasePlan
	// PhaseFlush covers one live-view maintenance flush (mutation batch →
	// workset deltas → warm restart to fixpoint).
	PhaseFlush
	// PhaseWALAppend covers one write-ahead-log append + fsync.
	PhaseWALAppend
	// PhaseSnapshot covers one streaming solution-set snapshot.
	PhaseSnapshot
	// PhaseBarrier covers coordinator-side barrier waits in distributed
	// runs: from releasing a superstep to the last worker's step_done.
	PhaseBarrier

	numPhases
)

var phaseNames = [numPhases]string{
	"superstep", "operator", "ship", "merge", "plan",
	"flush", "wal-append", "snapshot", "barrier",
}

// String names the phase (also its JSON form).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Span is one completed, timed occurrence of a phase. Spans are plain
// values — no pointers, no allocation on record — and small enough that a
// default ring holds thousands without noticeable memory.
type Span struct {
	// Trace groups the spans of one logical run across processes.
	Trace TraceID `json:"trace"`
	// Host is the recording process's host ID (0 single-process).
	Host int32 `json:"host"`
	// Part is the partition the span belongs to, or -1 when the phase is
	// not partition-scoped.
	Part int32 `json:"part"`
	// Step is the superstep index the span belongs to, or -1.
	Step int32 `json:"step"`
	// Phase classifies the measured stage.
	Phase Phase `json:"phase"`
	// Start is the span's start time in Unix nanoseconds.
	Start int64 `json:"start"`
	// Dur is the span's duration in nanoseconds.
	Dur int64 `json:"dur"`
	// Label names the measured thing: an operator, a view, a scenario.
	// Callers pass compile-time constants or long-lived names, so recording
	// does not allocate.
	Label string `json:"label,omitempty"`
}

// TraceSink receives completed spans. A nil sink disables tracing at the
// cost of one branch per would-be span; Ring is the standard
// implementation.
type TraceSink interface {
	RecordSpan(Span)
}

// Ring is a fixed-capacity span buffer: recording overwrites the oldest
// span once full, so a week-old live view holds the last N spans, not a
// week of them. Safe for concurrent recording and snapshotting.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  uint64 // total spans ever recorded; next%cap is the write slot
	limit int
}

// DefaultRingSpans is the span capacity used when none is given.
const DefaultRingSpans = 4096

// NewRing creates a ring holding the last `capacity` spans
// (DefaultRingSpans if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSpans
	}
	return &Ring{buf: make([]Span, 0, capacity), limit: capacity}
}

// RecordSpan implements TraceSink.
func (r *Ring) RecordSpan(s Span) {
	r.mu.Lock()
	if len(r.buf) < r.limit {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next%uint64(r.limit)] = s
	}
	r.next++
	r.mu.Unlock()
}

// Len returns the number of retained spans.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many spans have been overwritten by later ones.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(r.limit) {
		return 0
	}
	return int64(r.next - uint64(r.limit))
}

// Spans returns the retained spans, oldest first.
func (r *Ring) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if len(r.buf) < r.limit {
		return append(out, r.buf...)
	}
	head := int(r.next % uint64(r.limit))
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// SpansFor returns the retained spans of one trace, oldest first.
func (r *Ring) SpansFor(t TraceID) []Span {
	all := r.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Trace == t {
			out = append(out, s)
		}
	}
	return out
}
