package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers 1ns..~18s in power-of-two steps, with a final
// overflow bucket for anything slower.
const numBuckets = 35

// Histogram is a fixed-bucket latency histogram. Bucket i counts
// observations with duration d (ns) satisfying 2^(i-1) < d <= 2^i
// (bucket 0 holds d <= 1ns, the last bucket holds everything larger than
// ~17.2s). All state is atomic: any number of recorders and scrapers run
// concurrently without locks, at the cost of snapshots being only
// per-field consistent — fine for monitoring.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
}

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	// bits.Len64(x-1) = ceil(log2(x)) for x >= 2.
	i := bits.Len64(uint64(ns - 1))
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound (ns) of bucket i, or
// math.MaxInt64 for the overflow bucket.
func bucketUpper(i int) int64 {
	if i >= numBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram, with
// quantile extraction. Buckets[i] is the count for bucket i (bounds per
// Histogram's scheme), not cumulative.
type HistogramSnapshot struct {
	Buckets [numBuckets]int64
	Count   int64
	Sum     int64 // nanoseconds
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) as a duration, linearly
// interpolated within the hit bucket. Returns 0 for an empty histogram.
// The overflow bucket reports its lower bound (there is no upper edge to
// interpolate toward).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(int64(1) << uint(i-1))
		}
		if i == numBuckets-1 {
			return time.Duration(lo)
		}
		hi := float64(bucketUpper(i))
		frac := 0.0
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		return time.Duration(lo + (hi-lo)*frac)
	}
	return time.Duration(bucketUpper(numBuckets - 2))
}

// P50 returns the median.
func (s HistogramSnapshot) P50() time.Duration { return s.Quantile(0.50) }

// P90 returns the 90th percentile.
func (s HistogramSnapshot) P90() time.Duration { return s.Quantile(0.90) }

// P99 returns the 99th percentile.
func (s HistogramSnapshot) P99() time.Duration { return s.Quantile(0.99) }

// Mean returns the arithmetic mean.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
