package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var httpClient = &http.Client{Timeout: 10 * time.Second}

var update = flag.Bool("update", false, "rewrite golden files")

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestPhaseString(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		if s := p.String(); s == "" || s[0] == 'p' && s != "plan" {
			t.Fatalf("phase %d has suspicious name %q", p, s)
		}
	}
	if got := Phase(200).String(); got != "phase(200)" {
		t.Fatalf("out-of-range phase name = %q", got)
	}
}

func TestRingRetainsNewestAndCountsDropped(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.RecordSpan(Span{Step: int32(i)})
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	spans := r.Spans()
	for i, s := range spans {
		if want := int32(12 + i); s.Step != want {
			t.Fatalf("span %d has step %d, want %d (oldest-first order)", i, s.Step, want)
		}
	}
}

func TestRingSpansFor(t *testing.T) {
	r := NewRing(16)
	a, b := TraceID(1), TraceID(2)
	for i := 0; i < 6; i++ {
		tr := a
		if i%2 == 1 {
			tr = b
		}
		r.RecordSpan(Span{Trace: tr, Step: int32(i)})
	}
	got := r.SpansFor(b)
	if len(got) != 3 {
		t.Fatalf("SpansFor(b) returned %d spans, want 3", len(got))
	}
	for _, s := range got {
		if s.Trace != b {
			t.Fatalf("span with trace %d leaked into SpansFor(b)", s.Trace)
		}
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every observation must land in a bucket whose bounds contain it.
	for _, ns := range []int64{1, 7, 63, 1 << 20, 1 << 40, 1 << 62} {
		i := bucketIndex(ns)
		if ns > bucketUpper(i) {
			t.Errorf("ns %d above bucket %d upper %d", ns, i, bucketUpper(i))
		}
		if i > 0 && ns <= bucketUpper(i-1) {
			t.Errorf("ns %d should be in bucket %d or lower", ns, i-1)
		}
	}
	if got := bucketIndex(1 << 62); got != numBuckets-1 {
		t.Errorf("huge duration bucket = %d, want overflow %d", got, numBuckets-1)
	}
}

// TestHistogramQuantiles checks p50/p90/p99 against a known synthetic
// distribution: uniform over (0, 1ms]. With power-of-two buckets and
// within-bucket interpolation the relative error is bounded by the bucket
// granularity at the quantile — well under 2× — and p50 of a uniform must
// land near 500µs, not at a bucket edge artifact.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(time.Millisecond))) + 1)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	check := func(q float64, want time.Duration) {
		got := s.Quantile(q)
		lo, hi := want/2, want*2
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v] of exact %v", q, got, lo, hi, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.90, 900*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if mean := s.Mean(); mean < 350*time.Microsecond || mean > 650*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
}

// TestHistogramQuantileExactBuckets pins the interpolation math with a
// hand-checkable distribution: 100 observations in (512, 1024]ns.
func TestHistogramQuantileExactBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(600 * time.Nanosecond)
	}
	s := h.Snapshot()
	// All mass in bucket (512,1024]: q interpolates linearly across it.
	if got := s.Quantile(0.5); got != time.Duration(512+256) {
		t.Errorf("p50 = %v, want 768ns (midpoint of the only hit bucket)", got)
	}
	if got := s.Quantile(1.0); got != 1024*time.Nanosecond {
		t.Errorf("p100 = %v, want bucket upper bound 1024ns", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
}

// TestHistogramConcurrent hammers one histogram from parallel recorders
// while scraping Prometheus text — the -race proof for the lock-free
// recording path.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("superstep_duration")
	const workers, perWorker = 8, 5000

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
			if buf.Len() == 0 {
				t.Error("empty scrape")
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
				reg.Trace().RecordSpan(Span{Step: int32(i), Host: int32(w)})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"RecordsShipped":       "records_shipped",
		"UDFInvocations":       "udf_invocations",
		"WALAppends":           "wal_appends",
		"WALBytes":             "wal_bytes",
		"PlanNanos":            "plan_nanos",
		"SolutionBytes":        "solution_bytes",
		"RecoveryReplays":      "recovery_replays",
		"EngineSwitches":       "engine_switches",
		"RecordsShippedRemote": "records_shipped_remote",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusGolden pins the text exposition format byte-for-byte.
// Regenerate with: go test ./internal/obs -run Golden -update
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counters().RecordsShipped.Store(1234)
	reg.Counters().WALAppends.Store(7)
	h := reg.Histogram("superstep_duration")
	h.Observe(600 * time.Nanosecond)  // bucket (512,1024]
	h.Observe(600 * time.Nanosecond)  // same bucket
	h.Observe(3 * time.Microsecond)   // bucket (2048,4096]
	h.Observe(200 * time.Millisecond) // bucket (134217728,268435456]
	reg.Histogram("live_query_duration").Observe(50 * time.Microsecond)
	reg.RegisterCollector(func(emit func(name, labels string, value float64)) {
		emit("views", "", 2)
		emit("view_workset", `view="pr"`, 31)
	})
	reg.Trace().RecordSpan(Span{Trace: 1, Phase: PhaseSuperstep, Dur: 100})

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)

	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus text drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counters().SolutionUpdates.Store(5)
	reg.Histogram("plan_duration").Observe(time.Millisecond)
	doc := reg.Vars()
	if doc["counters"].(map[string]int64)["SolutionUpdates"] != 5 {
		t.Error("counter missing from vars")
	}
	hv := doc["histograms"].(map[string]histVar)["plan_duration"]
	if hv.Count != 1 || hv.SumNs != int64(time.Millisecond) {
		t.Errorf("histogram vars = %+v", hv)
	}
}

func TestBuildTimeline(t *testing.T) {
	const tr = TraceID(9)
	spans := []Span{
		// step 0 on two hosts: host 0 superstep 100ns, host 1 superstep 140ns
		{Trace: tr, Host: 0, Part: -1, Step: 0, Phase: PhaseSuperstep, Dur: 100},
		{Trace: tr, Host: 1, Part: -1, Step: 0, Phase: PhaseSuperstep, Dur: 140},
		// operators: host 0 part 0 does 30+20, host 1 part 1 does 90
		{Trace: tr, Host: 0, Part: 0, Step: 0, Phase: PhaseOperator, Dur: 30},
		{Trace: tr, Host: 0, Part: 0, Step: 0, Phase: PhaseOperator, Dur: 20},
		{Trace: tr, Host: 1, Part: 1, Step: 0, Phase: PhaseOperator, Dur: 90},
		{Trace: tr, Host: 0, Part: -1, Step: 0, Phase: PhaseShip, Dur: 10},
		{Trace: tr, Host: 1, Part: -1, Step: 0, Phase: PhaseShip, Dur: 15},
		{Trace: tr, Host: 0, Part: -1, Step: 0, Phase: PhaseMerge, Dur: 8},
		// step 1 single host
		{Trace: tr, Host: 0, Part: -1, Step: 1, Phase: PhaseSuperstep, Dur: 50},
		{Trace: tr, Host: 0, Part: 0, Step: 1, Phase: PhaseOperator, Dur: 45},
		// phase with no step is skipped
		{Trace: tr, Host: 0, Part: -1, Step: -1, Phase: PhasePlan, Dur: 999},
	}
	rows := BuildTimeline(spans)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	r0 := rows[0]
	if r0.Step != 0 || r0.Hosts != 2 || r0.Operators != 3 {
		t.Fatalf("row0 meta = %+v", r0)
	}
	if r0.Total != 140 {
		t.Errorf("row0 total = %v, want 140 (slowest host)", r0.Total)
	}
	if r0.Compute != 90 {
		t.Errorf("row0 compute = %v, want 90 (critical host/part)", r0.Compute)
	}
	if r0.Barrier != 50 {
		t.Errorf("row0 barrier = %v, want 50 (total - compute)", r0.Barrier)
	}
	if r0.Ship != 25 || r0.Merge != 8 {
		t.Errorf("row0 ship/merge = %v/%v, want 25/8", r0.Ship, r0.Merge)
	}
	if rows[1].Step != 1 || rows[1].Total != 50 || rows[1].Compute != 45 {
		t.Errorf("row1 = %+v", rows[1])
	}

	var buf bytes.Buffer
	WriteTimeline(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty timeline table")
	}

	doc := NewTimelineDoc("test", tr, spans)
	if doc.Hosts != 2 || len(doc.Rows) != 2 || len(doc.Spans) != len(spans) {
		t.Errorf("doc = hosts %d rows %d spans %d", doc.Hosts, len(doc.Rows), len(doc.Spans))
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("superstep_duration").Observe(time.Millisecond)
	addr, closer, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	get := func(path string) string {
		resp, err := httpGet("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if body := get("/metrics"); !bytes.Contains([]byte(body), []byte("spinflow_superstep_duration_seconds_count 1")) {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}
	if body := get("/debug/vars"); !bytes.Contains([]byte(body), []byte("superstep_duration")) {
		t.Errorf("/debug/vars missing histogram:\n%s", body)
	}
	if body := get("/debug/pprof/"); !bytes.Contains([]byte(body), []byte("profile")) {
		t.Errorf("/debug/pprof/ index looks wrong:\n%s", body)
	}
}

func httpGet(url string) (string, error) {
	resp, err := httpClient.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	if resp.StatusCode != 200 {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
	}
	return buf.String(), nil
}
