// Package metrics collects the work counters the paper's evaluation
// reports: records shipped over the network layer, working-set elements
// ("messages"), solution-set accesses and updates, and per-iteration wall
// times (Figures 2, 8, 10, 11, 12).
//
// Counters are atomics so the parallel runtime can update them from any
// partition without coordination; per-iteration snapshots are taken at
// superstep boundaries.
package metrics

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"time"
)

// Counters aggregates work done by one execution (one job, or one
// superstep if snapshotted per iteration).
type Counters struct {
	// RecordsShipped counts records crossing a partition/broadcast
	// exchange into a partition other than the one that produced them —
	// the proxy for network traffic. Records a partitioner routes back
	// into the producing partition never leave the worker and are not
	// counted.
	RecordsShipped atomic.Int64
	// RecordsShippedRemote counts the subset of shipped records whose
	// destination partition is hosted by another process, i.e. records
	// that actually crossed the transport.
	RecordsShippedRemote atomic.Int64
	// RemoteBatches counts record batches shipped to peer processes by a
	// distributed transport.
	RemoteBatches atomic.Int64
	// RemoteBytes counts wire bytes (headers + frames) shipped to peer
	// processes by a distributed transport.
	RemoteBytes atomic.Int64
	// RemoteBytesCompressed counts wire bytes of data-plane messages that
	// traveled flate-compressed (wire compression enabled and the frame
	// actually shrank). Comparing against the RemoteBytes share of those
	// messages gives the achieved compression ratio.
	RemoteBytesCompressed atomic.Int64
	// TransportErrors counts transport-level failures: connection drops,
	// send failures, and corrupt inbound frames.
	TransportErrors atomic.Int64
	// DroppedBatches counts batches pushed into an already-closed
	// exchange queue (a straggler producer racing session teardown); the
	// batch is recycled and dropped instead of leaking out of the pool.
	DroppedBatches atomic.Int64
	// WorksetElements counts records added to the working set (the
	// paper's "messages sent").
	WorksetElements atomic.Int64
	// SolutionAccesses counts reads of solution-set entries
	// (Figure 2's "vertices inspected").
	SolutionAccesses atomic.Int64
	// SolutionUpdates counts writes to solution-set entries
	// (Figure 2's "vertices changed").
	SolutionUpdates atomic.Int64
	// UDFInvocations counts user-function calls across all operators.
	UDFInvocations atomic.Int64
	// WorkersSpawned counts long-lived partition-pinned workers started
	// by executor sessions. An iteration that reuses its session across
	// supersteps spawns node×partition workers once, not once per pass.
	WorkersSpawned atomic.Int64
	// ExchangesReused counts exchanges reset and reused by a later
	// superstep instead of being allocated from scratch.
	ExchangesReused atomic.Int64
	// BatchesAllocated counts record batches newly allocated by the
	// batch pool.
	BatchesAllocated atomic.Int64
	// BatchesRecycled counts consumed batches returned to the pool for
	// reuse by a later writer.
	BatchesRecycled atomic.Int64
	// SolutionBytes is a gauge of the solution set's resident in-memory
	// footprint (serialized-form estimate), refreshed on every merge.
	SolutionBytes atomic.Int64
	// SolutionSpills counts solution-set partitions evicted to disk by the
	// spillable backend under memory pressure.
	SolutionSpills atomic.Int64
	// SolutionReloads counts spilled solution-set partitions replayed back
	// into memory on access.
	SolutionReloads atomic.Int64
	// DeltasApplied counts streamed graph mutations absorbed by live views
	// (each edge/vertex mutation counts once, when its batch is flushed).
	DeltasApplied atomic.Int64
	// WarmRestarts counts incremental-iteration restarts over an existing
	// resident solution set (live maintenance flushes and
	// ResumeIncremental calls), as opposed to cold runs from S0.
	WarmRestarts atomic.Int64
	// PartialRecomputes counts deletion repairs that re-ran the fixpoint
	// over only the affected region of the graph.
	PartialRecomputes atomic.Int64
	// FullRecomputes counts deletion repairs that fell back to a full
	// recompute from scratch (the last resort).
	FullRecomputes atomic.Int64
	// MaintenanceSupersteps counts supersteps executed by warm restarts —
	// the marginal fixpoint work of absorbing mutations.
	MaintenanceSupersteps atomic.Int64
	// WALAppends counts acknowledged mutation batches appended (and
	// fsynced) to live-view write-ahead logs before Mutate returned.
	WALAppends atomic.Int64
	// WALBytes counts bytes appended to live-view write-ahead logs.
	WALBytes atomic.Int64
	// SnapshotsWritten counts streaming solution-set snapshots persisted
	// by durable live views (periodic, shutdown, and post-recovery).
	SnapshotsWritten atomic.Int64
	// RecoveryReplays counts WAL frames replayed through the maintenance
	// path while recovering durable live views after a crash.
	RecoveryReplays atomic.Int64
	// EngineSwitches counts mid-run engine handoffs by the adaptive
	// runner (e.g. incremental → microstep once the workset collapses
	// below the dispatch-overhead crossover).
	EngineSwitches atomic.Int64
	// Reoptimizations counts successful mid-run re-plans of the Δ
	// dataflow after the working set drifted from the costed estimate.
	Reoptimizations atomic.Int64
	// ReoptimizeFailures counts mid-run re-plans that failed; the run
	// continues on the stale plan, and the failure is also recorded as a
	// trace event.
	ReoptimizeFailures atomic.Int64
	// ReoptimizeBackoffs counts failed re-plans that put re-optimization
	// on hold for the next K supersteps, so a persistently failing plan
	// does not retry at every barrier.
	ReoptimizeBackoffs atomic.Int64
	// GreedyPlans counts plans produced by the greedy zero-statistics
	// fast-path planner (initial plans and mid-run re-plans alike).
	GreedyPlans atomic.Int64
	// PlanCacheHits counts re-optimizations served from a memoized plan,
	// skipping planning entirely.
	PlanCacheHits atomic.Int64
	// FusedOperators counts Map operators folded into upstream fused
	// chains by the operator-fusion rewrite, summed over produced plans.
	FusedOperators atomic.Int64
	// PlanNanos accumulates wall time spent inside the plan optimizer
	// (initial planning and re-planning), in nanoseconds.
	PlanNanos atomic.Int64
}

// Snapshot is an immutable copy of counter values.
type Snapshot struct {
	RecordsShipped        int64
	RecordsShippedRemote  int64
	RemoteBatches         int64
	RemoteBytes           int64
	RemoteBytesCompressed int64
	TransportErrors       int64
	DroppedBatches        int64

	WorksetElements  int64
	SolutionAccesses int64
	SolutionUpdates  int64
	UDFInvocations   int64
	WorkersSpawned   int64
	ExchangesReused  int64
	BatchesAllocated int64
	BatchesRecycled  int64
	SolutionBytes    int64
	SolutionSpills   int64
	SolutionReloads  int64

	DeltasApplied         int64
	WarmRestarts          int64
	PartialRecomputes     int64
	FullRecomputes        int64
	MaintenanceSupersteps int64

	WALAppends       int64
	WALBytes         int64
	SnapshotsWritten int64
	RecoveryReplays  int64

	EngineSwitches     int64
	Reoptimizations    int64
	ReoptimizeFailures int64
	ReoptimizeBackoffs int64
	GreedyPlans        int64
	PlanCacheHits      int64
	FusedOperators     int64
	PlanNanos          int64
}

// fieldPair links one Counters field to its same-named Snapshot field.
// The mapping is computed once at package init by reflection, so adding a
// counter automatically extends Snapshot/Sub/Reset/Fields — and a counter
// without a matching Snapshot field (or vice versa) fails loudly at init
// instead of being silently dropped from reports.
type fieldPair struct {
	name string
	c, s int // field index in Counters / Snapshot
}

var fieldPairs = buildFieldPairs()

func buildFieldPairs() []fieldPair {
	ct := reflect.TypeOf(Counters{})
	st := reflect.TypeOf(Snapshot{})
	atomicT := reflect.TypeOf(atomic.Int64{})
	if ct.NumField() != st.NumField() {
		panic(fmt.Sprintf("metrics: Counters has %d fields, Snapshot has %d — every counter needs a same-named snapshot field", ct.NumField(), st.NumField()))
	}
	pairs := make([]fieldPair, 0, ct.NumField())
	for i := 0; i < ct.NumField(); i++ {
		cf := ct.Field(i)
		if cf.Type != atomicT {
			panic(fmt.Sprintf("metrics: Counters.%s is %s, want atomic.Int64", cf.Name, cf.Type))
		}
		sf, ok := st.FieldByName(cf.Name)
		if !ok {
			panic(fmt.Sprintf("metrics: Counters.%s has no matching Snapshot field", cf.Name))
		}
		if sf.Type.Kind() != reflect.Int64 {
			panic(fmt.Sprintf("metrics: Snapshot.%s is %s, want int64", sf.Name, sf.Type))
		}
		pairs = append(pairs, fieldPair{name: cf.Name, c: i, s: sf.Index[0]})
	}
	return pairs
}

// Snapshot captures current counter values.
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	cv := reflect.ValueOf(c).Elem()
	sv := reflect.ValueOf(&s).Elem()
	for _, f := range fieldPairs {
		sv.Field(f.s).SetInt(cv.Field(f.c).Addr().Interface().(*atomic.Int64).Load())
	}
	return s
}

// Sub returns the delta s - o, the work done between two snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	var d Snapshot
	sv := reflect.ValueOf(s)
	ov := reflect.ValueOf(o)
	dv := reflect.ValueOf(&d).Elem()
	for _, f := range fieldPairs {
		dv.Field(f.s).SetInt(sv.Field(f.s).Int() - ov.Field(f.s).Int())
	}
	return d
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	cv := reflect.ValueOf(c).Elem()
	for _, f := range fieldPairs {
		cv.Field(f.c).Addr().Interface().(*atomic.Int64).Store(0)
	}
}

// Field is one named counter value, for exporters that iterate the full
// set instead of naming fields.
type Field struct {
	Name  string
	Value int64
}

// Fields returns every counter value in declaration order, named by its
// struct field. New counters appear here automatically.
func (s Snapshot) Fields() []Field {
	sv := reflect.ValueOf(s)
	out := make([]Field, len(fieldPairs))
	for i, f := range fieldPairs {
		out[i] = Field{Name: f.name, Value: sv.Field(f.s).Int()}
	}
	return out
}

// IterationStat records one iteration/superstep of an iterative job — one
// data point in Figures 2, 8, 10, 11 and 12.
type IterationStat struct {
	Iteration int
	Duration  time.Duration
	Work      Snapshot
	// Engine names the engine that executed this superstep when the
	// adaptive runner collected the trace ("bulk", "incremental",
	// "microstep"); empty for single-engine runs.
	Engine string
}

// TraceEvent is an out-of-band occurrence during a run (an engine switch,
// a re-optimization, a re-optimization failure), anchored to the superstep
// it followed.
type TraceEvent struct {
	Iteration int
	Event     string
}

// DefaultTraceCap bounds Trace.Iterations and Trace.Events when Trace.Cap
// is zero. A live view flushing every few milliseconds records thousands
// of maintenance supersteps per minute; without a cap a week-old view's
// trace grows without bound.
const DefaultTraceCap = 4096

// Trace accumulates per-iteration statistics for one job run. Retention
// is bounded: once an entry list reaches the cap, the oldest eighth is
// discarded in one block (amortized O(1) per Add) and counted in Dropped.
// Iterations and Events stay plain, ordered slices — consumers that chart
// or diff them are unaffected until a run actually exceeds the cap.
type Trace struct {
	Iterations []IterationStat
	Total      time.Duration
	// Events holds out-of-band occurrences in arrival order.
	Events []TraceEvent
	// Cap bounds len(Iterations) and len(Events) separately
	// (DefaultTraceCap when zero; negative means unbounded).
	Cap int
	// Dropped counts entries discarded to stay under Cap, across both
	// lists. Total still reflects every iteration ever added.
	Dropped int64
}

func (t *Trace) cap() int {
	if t.Cap == 0 {
		return DefaultTraceCap
	}
	return t.Cap
}

// Add appends one iteration's stats.
func (t *Trace) Add(st IterationStat) {
	if c := t.cap(); c > 0 && len(t.Iterations) >= c {
		drop := c / 8
		if drop < 1 {
			drop = 1
		}
		n := copy(t.Iterations, t.Iterations[drop:])
		t.Iterations = t.Iterations[:n]
		t.Dropped += int64(drop)
	}
	t.Iterations = append(t.Iterations, st)
	t.Total += st.Duration
}

// AddEvent records an out-of-band occurrence after the given iteration.
func (t *Trace) AddEvent(iteration int, event string) {
	if c := t.cap(); c > 0 && len(t.Events) >= c {
		drop := c / 8
		if drop < 1 {
			drop = 1
		}
		n := copy(t.Events, t.Events[drop:])
		t.Events = t.Events[:n]
		t.Dropped += int64(drop)
	}
	t.Events = append(t.Events, TraceEvent{Iteration: iteration, Event: event})
}

// NumIterations returns the number of recorded iterations.
func (t *Trace) NumIterations() int { return len(t.Iterations) }

// CalibratedWeights is a fitted set of cost-model weights: the unitless
// constants of the optimizer's cost formulas replaced by values estimated
// from measured superstep timings (regression of wall time against the
// work counters). Only the ratios matter for plan and engine choice, so
// the fitted values being in nanoseconds-per-record is immaterial.
type CalibratedWeights struct {
	// Net is the cost per record crossing a partitioning exchange.
	Net float64
	// CPU is the cost per UDF invocation.
	CPU float64
	// Group is the cost per solution-set access (the grouped probe work
	// of the superstep engines).
	Group float64
	// Merge is the cost per solution-set update (the ∪̇ write path).
	Merge float64
	// Dispatch is the per-element overhead of microstep execution:
	// queue push/pop and termination accounting for one workset element.
	Dispatch float64
	// StepOverhead is the fixed per-(task × superstep) cost of the
	// superstep engines: waking one partition-pinned worker for one
	// plan node and running the barrier protocol.
	StepOverhead float64
	// Samples counts the superstep observations the fit consumed;
	// 0 means the weights are the built-in defaults.
	Samples int
}

// PlannedVsObserved pairs the cost the engine selector predicted for one
// superstep against the wall time the superstep actually took — the
// feedback signal of adaptive execution.
type PlannedVsObserved struct {
	Engine    string
	Superstep int
	// Planned is the predicted cost in the weights' (unitless) scale.
	Planned float64
	// Observed is the measured superstep duration.
	Observed time.Duration
}
