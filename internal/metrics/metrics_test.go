package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestSnapshotAndSub(t *testing.T) {
	var c Counters
	c.RecordsShipped.Add(10)
	c.WorksetElements.Add(5)
	s1 := c.Snapshot()
	c.RecordsShipped.Add(7)
	c.SolutionUpdates.Add(3)
	d := c.Snapshot().Sub(s1)
	if d.RecordsShipped != 7 || d.WorksetElements != 0 || d.SolutionUpdates != 3 {
		t.Errorf("delta wrong: %+v", d)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.UDFInvocations.Add(9)
	c.SolutionAccesses.Add(2)
	c.WorkersSpawned.Add(4)
	c.ExchangesReused.Add(3)
	c.BatchesAllocated.Add(2)
	c.BatchesRecycled.Add(1)
	c.Reset()
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Errorf("reset left %+v", s)
	}
}

func TestRuntimeReuseCounters(t *testing.T) {
	var c Counters
	c.WorkersSpawned.Add(8)
	c.ExchangesReused.Add(5)
	c.BatchesAllocated.Add(10)
	c.BatchesRecycled.Add(40)
	s1 := c.Snapshot()
	c.BatchesRecycled.Add(2)
	d := c.Snapshot().Sub(s1)
	if s1.WorkersSpawned != 8 || s1.ExchangesReused != 5 || s1.BatchesAllocated != 10 {
		t.Errorf("snapshot wrong: %+v", s1)
	}
	if d.BatchesRecycled != 2 || d.WorkersSpawned != 0 {
		t.Errorf("delta wrong: %+v", d)
	}
}

func TestMaintenanceCounters(t *testing.T) {
	var c Counters
	c.DeltasApplied.Add(12)
	c.WarmRestarts.Add(3)
	c.MaintenanceSupersteps.Add(7)
	s1 := c.Snapshot()
	if s1.DeltasApplied != 12 || s1.WarmRestarts != 3 || s1.MaintenanceSupersteps != 7 {
		t.Errorf("snapshot wrong: %+v", s1)
	}
	c.PartialRecomputes.Add(2)
	c.FullRecomputes.Add(1)
	d := c.Snapshot().Sub(s1)
	if d.PartialRecomputes != 2 || d.FullRecomputes != 1 || d.DeltasApplied != 0 {
		t.Errorf("delta wrong: %+v", d)
	}
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("reset left %+v", s)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.RecordsShipped.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().RecordsShipped; got != 8000 {
		t.Errorf("concurrent adds lost updates: %d", got)
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	tr.Add(IterationStat{Iteration: 0, Duration: time.Millisecond})
	tr.Add(IterationStat{Iteration: 1, Duration: 2 * time.Millisecond})
	if tr.NumIterations() != 2 {
		t.Errorf("iterations = %d", tr.NumIterations())
	}
	if tr.Total != 3*time.Millisecond {
		t.Errorf("total = %v", tr.Total)
	}
}
