package metrics

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSnapshotAndSub(t *testing.T) {
	var c Counters
	c.RecordsShipped.Add(10)
	c.WorksetElements.Add(5)
	s1 := c.Snapshot()
	c.RecordsShipped.Add(7)
	c.SolutionUpdates.Add(3)
	d := c.Snapshot().Sub(s1)
	if d.RecordsShipped != 7 || d.WorksetElements != 0 || d.SolutionUpdates != 3 {
		t.Errorf("delta wrong: %+v", d)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.UDFInvocations.Add(9)
	c.SolutionAccesses.Add(2)
	c.WorkersSpawned.Add(4)
	c.ExchangesReused.Add(3)
	c.BatchesAllocated.Add(2)
	c.BatchesRecycled.Add(1)
	c.Reset()
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Errorf("reset left %+v", s)
	}
}

func TestRuntimeReuseCounters(t *testing.T) {
	var c Counters
	c.WorkersSpawned.Add(8)
	c.ExchangesReused.Add(5)
	c.BatchesAllocated.Add(10)
	c.BatchesRecycled.Add(40)
	s1 := c.Snapshot()
	c.BatchesRecycled.Add(2)
	d := c.Snapshot().Sub(s1)
	if s1.WorkersSpawned != 8 || s1.ExchangesReused != 5 || s1.BatchesAllocated != 10 {
		t.Errorf("snapshot wrong: %+v", s1)
	}
	if d.BatchesRecycled != 2 || d.WorkersSpawned != 0 {
		t.Errorf("delta wrong: %+v", d)
	}
}

func TestMaintenanceCounters(t *testing.T) {
	var c Counters
	c.DeltasApplied.Add(12)
	c.WarmRestarts.Add(3)
	c.MaintenanceSupersteps.Add(7)
	s1 := c.Snapshot()
	if s1.DeltasApplied != 12 || s1.WarmRestarts != 3 || s1.MaintenanceSupersteps != 7 {
		t.Errorf("snapshot wrong: %+v", s1)
	}
	c.PartialRecomputes.Add(2)
	c.FullRecomputes.Add(1)
	d := c.Snapshot().Sub(s1)
	if d.PartialRecomputes != 2 || d.FullRecomputes != 1 || d.DeltasApplied != 0 {
		t.Errorf("delta wrong: %+v", d)
	}
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("reset left %+v", s)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.RecordsShipped.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().RecordsShipped; got != 8000 {
		t.Errorf("concurrent adds lost updates: %d", got)
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	tr.Add(IterationStat{Iteration: 0, Duration: time.Millisecond})
	tr.Add(IterationStat{Iteration: 1, Duration: 2 * time.Millisecond})
	if tr.NumIterations() != 2 {
		t.Errorf("iterations = %d", tr.NumIterations())
	}
	if tr.Total != 3*time.Millisecond {
		t.Errorf("total = %v", tr.Total)
	}
}

// TestFieldParity fails when a counter field is added without matching
// snapshot coverage (or vice versa). The reflect-based snapshot path
// panics at package init on mismatch, so this test mostly documents the
// guarantee — but it also pins value-level roundtrip coverage: every
// field must survive Snapshot, Sub, and Fields with a distinct value.
func TestFieldParity(t *testing.T) {
	ct := reflect.TypeOf(Counters{})
	st := reflect.TypeOf(Snapshot{})
	if ct.NumField() != st.NumField() {
		t.Fatalf("Counters has %d fields, Snapshot has %d", ct.NumField(), st.NumField())
	}
	if len(fieldPairs) != ct.NumField() {
		t.Fatalf("fieldPairs covers %d of %d counter fields", len(fieldPairs), ct.NumField())
	}

	// Give every counter a distinct value via reflection, so a field
	// silently skipped by Snapshot/Sub/Fields shows up as a wrong value.
	var c Counters
	cv := reflect.ValueOf(&c).Elem()
	for i := 0; i < ct.NumField(); i++ {
		cv.Field(i).Addr().Interface().(*atomic.Int64).Store(int64(100 + i))
	}
	s := c.Snapshot()
	sv := reflect.ValueOf(s)
	for i := 0; i < st.NumField(); i++ {
		name := ct.Field(i).Name
		want := int64(100 + i)
		got, ok := sv.Type().FieldByName(name)
		if !ok {
			t.Fatalf("Snapshot missing field %s", name)
		}
		if v := sv.FieldByIndex(got.Index).Int(); v != want {
			t.Errorf("Snapshot.%s = %d, want %d", name, v, want)
		}
	}

	fields := s.Fields()
	if len(fields) != ct.NumField() {
		t.Fatalf("Fields() returned %d entries, want %d", len(fields), ct.NumField())
	}
	seen := map[string]int64{}
	for _, f := range fields {
		seen[f.Name] = f.Value
	}
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		if seen[name] != int64(100+i) {
			t.Errorf("Fields()[%s] = %d, want %d", name, seen[name], 100+i)
		}
	}

	// Sub must cover every field too: s - s == zero, s - zero == s.
	if d := s.Sub(s); d != (Snapshot{}) {
		t.Errorf("s.Sub(s) = %+v, want zero", d)
	}
	if d := s.Sub(Snapshot{}); d != s {
		t.Errorf("s.Sub(zero) != s: %+v", d)
	}

	// Reset must zero every field.
	c.Reset()
	if got := c.Snapshot(); got != (Snapshot{}) {
		t.Errorf("Reset left %+v", got)
	}
}

func TestTraceCapBoundsIterations(t *testing.T) {
	tr := Trace{Cap: 64}
	for i := 0; i < 1000; i++ {
		tr.Add(IterationStat{Iteration: i, Duration: time.Microsecond})
	}
	if n := len(tr.Iterations); n > 64 {
		t.Fatalf("retained %d iterations, cap 64", n)
	}
	if tr.Dropped == 0 {
		t.Fatal("Dropped not counted")
	}
	if int(tr.Dropped)+len(tr.Iterations) != 1000 {
		t.Errorf("dropped %d + retained %d != 1000 added", tr.Dropped, len(tr.Iterations))
	}
	// Retained entries are the newest, still in order.
	last := tr.Iterations[len(tr.Iterations)-1]
	if last.Iteration != 999 {
		t.Errorf("newest retained iteration = %d, want 999", last.Iteration)
	}
	for i := 1; i < len(tr.Iterations); i++ {
		if tr.Iterations[i].Iteration != tr.Iterations[i-1].Iteration+1 {
			t.Fatalf("retained iterations not contiguous at %d", i)
		}
	}
	// Total still reflects every add.
	if tr.Total != 1000*time.Microsecond {
		t.Errorf("Total = %v, want 1ms", tr.Total)
	}
}

func TestTraceCapBoundsEvents(t *testing.T) {
	tr := Trace{Cap: 32}
	for i := 0; i < 500; i++ {
		tr.AddEvent(i, "evt")
	}
	if n := len(tr.Events); n > 32 {
		t.Fatalf("retained %d events, cap 32", n)
	}
	if tr.Events[len(tr.Events)-1].Iteration != 499 {
		t.Errorf("newest event = %d, want 499", tr.Events[len(tr.Events)-1].Iteration)
	}
}

func TestTraceDefaultCap(t *testing.T) {
	var tr Trace
	for i := 0; i < DefaultTraceCap+100; i++ {
		tr.Add(IterationStat{Iteration: i})
	}
	if n := len(tr.Iterations); n > DefaultTraceCap {
		t.Fatalf("default cap not applied: %d retained", n)
	}
	if tr.Dropped == 0 {
		t.Fatal("Dropped not counted under default cap")
	}
}

func TestTraceUnbounded(t *testing.T) {
	tr := Trace{Cap: -1}
	for i := 0; i < DefaultTraceCap*2; i++ {
		tr.Add(IterationStat{Iteration: i})
	}
	if n := len(tr.Iterations); n != DefaultTraceCap*2 {
		t.Fatalf("negative cap should be unbounded, retained %d", n)
	}
	if tr.Dropped != 0 {
		t.Errorf("unbounded trace dropped %d", tr.Dropped)
	}
}
