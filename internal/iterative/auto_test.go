package iterative_test

// External test package: adaptive execution is exercised against the real
// Connected Components dataflows from internal/algorithms, which imports
// iterative.

import (
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// autoCCSpec assembles the AutoSpec all three engines can execute: the
// Match-variant incremental CC (microstep-admissible) plus the bulk CC
// alternative.
func autoCCSpec(g *graphgen.Graph) (iterative.AutoSpec, []record.Record, []record.Record) {
	inc, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCMatch)
	bulk, bulkInit := algorithms.CCBulkSpec(g)
	return iterative.AutoSpec{Incremental: inc, Bulk: &bulk, BulkInitial: bulkInit}, s0, w0
}

// TestRunAutoMatchesReference checks the engine-choice contract: whatever
// RunAuto picks, the fixpoint equals the union-find oracle and the forced
// single-engine runs.
func TestRunAutoMatchesReference(t *testing.T) {
	g := graphgen.Uniform("auto-ref", 80, 160, 0xA070)
	oracle := algorithms.CCReference(g)

	for _, force := range []struct {
		name   string
		engine *optimizer.Engine
	}{
		{"auto", nil},
		{"bulk", enginePtr(optimizer.EngineBulk)},
		{"incremental", enginePtr(optimizer.EngineIncremental)},
		{"microstep", enginePtr(optimizer.EngineMicrostep)},
	} {
		t.Run(force.name, func(t *testing.T) {
			spec, s0, w0 := autoCCSpec(g)
			spec.Force = force.engine
			res, err := iterative.RunAuto(spec, s0, w0, iterative.Config{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Engines) == 0 {
				t.Fatal("no engine recorded")
			}
			if force.engine != nil && res.Engines[0] != *force.engine {
				t.Fatalf("forced %v, ran %v", *force.engine, res.Engines[0])
			}
			got := algorithms.ComponentsToMap(res.Solution)
			for v, c := range oracle {
				if got[v] != c {
					t.Fatalf("engine %v: vertex %d -> %d, oracle %d", res.Engines, v, got[v], c)
				}
			}
			if len(res.Candidates) != 3 {
				t.Fatalf("candidates = %d, want 3", len(res.Candidates))
			}
		})
	}
}

func enginePtr(e optimizer.Engine) *optimizer.Engine { return &e }

// TestRunAutoForceValidation covers the forced-engine error paths.
func TestRunAutoForceValidation(t *testing.T) {
	g := graphgen.Uniform("auto-force", 30, 60, 5)
	// No bulk alternative: forcing bulk must fail.
	inc, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCMatch)
	spec := iterative.AutoSpec{Incremental: inc, Force: enginePtr(optimizer.EngineBulk)}
	if _, err := iterative.RunAuto(spec, s0, w0, iterative.Config{Parallelism: 2}); err == nil {
		t.Error("forced bulk without a bulk alternative accepted")
	}
	// CoGroup variant is not microstep-admissible: forcing microstep must
	// fail.
	incCG, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	spec = iterative.AutoSpec{Incremental: incCG, Force: enginePtr(optimizer.EngineMicrostep)}
	if _, err := iterative.RunAuto(spec, s0, w0, iterative.Config{Parallelism: 2}); err == nil {
		t.Error("forced microstep on a group-at-a-time spec accepted")
	}
}

// switchWeights pins the cost weights so the incremental engine wins the
// initial choice (microstep's 2W·3 total does not clear the selection
// margin against incremental's 2W·1 + 10 barrier rounds of W/2 each) but
// the dispatch-overhead crossover fires mid-run: per superstep,
// flow·3 < flow·1 + W₀/2 flips once the element flow decays below W₀/4.
func switchWeights(w0 int, tasks int) *metrics.CalibratedWeights {
	return &metrics.CalibratedWeights{
		Net:          1,
		Dispatch:     3,
		StepOverhead: float64(w0) / 2 / float64(tasks),
	}
}

// TestRunAutoSwitchesMidRun drives a long-tailed CC iteration whose
// workset collapses over the supersteps, with weights that put the
// crossover inside the decay: the run must start incremental, switch to
// microsteps exactly once, and still produce the oracle fixpoint.
func TestRunAutoSwitchesMidRun(t *testing.T) {
	// A chain of communities converges community-by-community: the
	// workset starts at ~2|E| and decays to a handful of records.
	g := graphgen.ChainedCommunities("auto-switch", 24, 12, 24, 0x51C)
	spec, s0, w0 := autoCCSpec(g)
	spec.Bulk = nil // keep the choice between the two §5 engines

	tasks := len(spec.Incremental.Plan.Nodes()) * 2
	var m metrics.Counters
	cfg := iterative.Config{
		Parallelism:   2,
		Metrics:       &m,
		CollectTrace:  true,
		EngineWeights: switchWeights(len(w0), tasks),
	}
	res, err := iterative.RunAuto(spec, s0, w0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Engines) != 2 ||
		res.Engines[0] != optimizer.EngineIncremental ||
		res.Engines[1] != optimizer.EngineMicrostep {
		t.Fatalf("engines = %v, want [incremental microstep]", res.Engines)
	}
	if res.Switches != 1 {
		t.Errorf("Switches = %d, want 1", res.Switches)
	}
	if m.EngineSwitches.Load() != 1 {
		t.Errorf("metrics.EngineSwitches = %d, want 1", m.EngineSwitches.Load())
	}
	if res.Microsteps == 0 {
		t.Error("no microsteps executed after the switch")
	}
	found := false
	for _, ev := range res.Trace.Events {
		if strings.Contains(ev.Event, "switched incremental") {
			found = true
		}
	}
	if !found {
		t.Errorf("no switch event in trace, events = %v", res.Trace.Events)
	}
	if len(res.PlannedVsObserved) == 0 {
		t.Error("no planned-vs-observed superstep records")
	}

	oracle := algorithms.CCReference(g)
	got := algorithms.ComponentsToMap(res.Solution)
	for v, c := range oracle {
		if got[v] != c {
			t.Fatalf("vertex %d -> %d, oracle %d", v, got[v], c)
		}
	}
}

// TestResumeMicrostep converges CC on a graph missing one bridge edge,
// then finishes over the full graph asynchronously with only the bridge's
// candidates — the warm handoff as a standalone entry point.
func TestResumeMicrostep(t *testing.T) {
	full := graphgen.Uniform("micro-resume", 80, 160, 0x30B)
	bridge := graphgen.Edge{Src: 3, Dst: 77}
	full.Edges = append(full.Edges, bridge)
	partial := &graphgen.Graph{Name: "micro-partial", NumVertices: full.NumVertices,
		Edges: full.Edges[:len(full.Edges)-1]}

	cfg := iterative.Config{Parallelism: 4}
	_, res, err := algorithms.CCIncremental(partial, algorithms.CCMatch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, _, _ := algorithms.CCIncrementalSpec(full, algorithms.CCMatch)
	delta := insertDeltaCC(res.Set, bridge.Src, bridge.Dst)
	warm, err := iterative.ResumeMicrostep(spec, res.Set, delta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := algorithms.CCReference(full)
	got := algorithms.ComponentsToMap(warm.Solution)
	for v, c := range oracle {
		if got[v] != c {
			t.Fatalf("vertex %d -> %d, oracle %d", v, got[v], c)
		}
	}

	// Error paths.
	if _, err := iterative.ResumeMicrostep(spec, nil, nil, cfg); err == nil {
		t.Error("nil solution set accepted")
	}
	if _, err := iterative.ResumeMicrostep(spec, res.Set, nil, iterative.Config{Parallelism: 8}); err == nil {
		t.Error("partition mismatch accepted")
	}
}

// TestIncrementalSpecReuse is the regression test for the estimate-
// mutation bug: RunIncremental used to overwrite the shared plan node's
// EstRecords (once at entry, again on every reoptimize), so a reused spec
// silently planned run 2 with run 1's final workset size. Both runs must
// now plan identically, and the spec must come back unchanged.
func TestIncrementalSpecReuse(t *testing.T) {
	g := graphgen.ChainedCommunities("spec-reuse", 30, 12, 24, 42)
	spec, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	spec.Reoptimize = true
	origEst := spec.Workset.EstRecords

	var m metrics.Counters
	cfg := iterative.Config{Parallelism: 4, Metrics: &m}
	res1, err := iterative.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reoptimizations.Load() == 0 {
		t.Fatalf("run did not reoptimize (supersteps=%d); the regression needs the reoptimize path",
			res1.Supersteps)
	}
	if got := spec.Workset.EstRecords; got != origEst {
		t.Fatalf("spec.Workset.EstRecords mutated: %d -> %d", origEst, got)
	}

	res2, err := iterative.RunIncremental(spec, s0, w0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1, p2 := res1.Plan.Explain(), res2.Plan.Explain(); p1 != p2 {
		t.Errorf("run-2's first plan differs from run-1's:\nrun1:\n%s\nrun2:\n%s", p1, p2)
	}
	if got := spec.Workset.EstRecords; got != origEst {
		t.Errorf("spec.Workset.EstRecords mutated by run 2: %d -> %d", origEst, got)
	}
}

// TestReoptimizeCounters asserts the happy path increments Reoptimizations
// and records a trace event (failures would land in ReoptimizeFailures;
// re-planning the same valid Δ cannot be made to fail deterministically,
// so the failure branch is covered by the counter contract only).
func TestReoptimizeCounters(t *testing.T) {
	g := graphgen.ChainedCommunities("reopt", 30, 12, 24, 7)
	spec, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	spec.Reoptimize = true

	var m metrics.Counters
	res, err := iterative.RunIncremental(spec, s0, w0, iterative.Config{Parallelism: 4, Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reoptimizations.Load() == 0 {
		t.Fatalf("Reoptimizations = 0 after %d supersteps of a collapsing workset", res.Supersteps)
	}
	if m.ReoptimizeFailures.Load() != 0 {
		t.Errorf("ReoptimizeFailures = %d, want 0", m.ReoptimizeFailures.Load())
	}
	var events int
	for _, ev := range res.Trace.Events {
		if strings.Contains(ev.Event, "reoptimized") {
			events++
		}
	}
	if int64(events) != m.Reoptimizations.Load() {
		t.Errorf("trace records %d reoptimizations, counter says %d", events, m.Reoptimizations.Load())
	}
}

// TestRunAutoHonorsReoptimize: the adaptive runner's incremental phase
// must support the same mid-run re-planning as RunIncremental.
func TestRunAutoHonorsReoptimize(t *testing.T) {
	g := graphgen.ChainedCommunities("auto-reopt", 30, 12, 24, 11)
	inc, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	inc.Reoptimize = true

	var m metrics.Counters
	res, err := iterative.RunAuto(iterative.AutoSpec{Incremental: inc}, s0, w0,
		iterative.Config{Parallelism: 4, Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reoptimizations.Load() == 0 {
		t.Fatalf("RunAuto ignored Reoptimize over %d supersteps", res.Supersteps)
	}
	oracle := algorithms.CCReference(g)
	got := algorithms.ComponentsToMap(res.Solution)
	for v, c := range oracle {
		if got[v] != c {
			t.Fatalf("vertex %d -> %d, oracle %d", v, got[v], c)
		}
	}
}

// TestBulkSpecReuse is the bulk-side counterpart: RunBulk must not leave
// the initial-solution cardinality written into the shared Input node.
func TestBulkSpecReuse(t *testing.T) {
	g := graphgen.Uniform("bulk-reuse", 40, 80, 9)
	spec, initial := algorithms.CCBulkSpec(g)
	// A zero estimate is the case RunBulk used to overwrite in place.
	spec.Input.EstRecords = 0
	origEst := spec.Input.EstRecords
	if _, err := iterative.RunBulk(spec, initial, iterative.Config{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if got := spec.Input.EstRecords; got != origEst {
		t.Errorf("spec.Input.EstRecords mutated: %d -> %d", origEst, got)
	}
}
