package iterative

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/record"
)

// Checkpointing (§4.2): "iterative dataflows may log intermediate results
// for recovery just as non-iterative dataflows ... a new version of the
// log needs to be created for every logged iteration". The iteration
// drivers can snapshot the loop state every k passes; after a failure a
// run resumes from the last snapshot instead of from scratch.
//
// The on-disk format is streaming on both sides: a fixed header followed
// by *sections*, each a sequence of bounded CRC32 frames (record.Frame*)
// closed by an empty frame. Writing chunks the records into frames as
// they arrive — a checkpoint of an N-record solution set never holds more
// than one frame's worth of encoded bytes in memory — and reading decodes
// through a fixed 64 KiB buffered reader, so a multi-gigabyte (or
// corrupt-header) checkpoint cannot allocate unboundedly. The live-view
// durability layer (internal/live) shares this writer/reader for its
// snapshots and the same framing for its write-ahead log.
//
// A bulk checkpoint holds the partial solution; an incremental checkpoint
// holds the solution set and the pending working set.

// Checkpoint is a recoverable snapshot of an iteration's loop state.
type Checkpoint struct {
	// Kind is "bulk" or "incremental".
	Kind string
	// Iteration is the number of completed passes/supersteps.
	Iteration int
	// Solution is the partial solution (bulk) or solution set
	// (incremental).
	Solution []record.Record
	// Workset is the pending working set (incremental only).
	Workset []record.Record
}

const (
	checkpointMagic   = uint32(0x53464c57) // "SFLW"
	checkpointVersion = uint32(2)
	// checkpointMaxKind bounds the kind-string length a reader accepts;
	// anything larger is a corrupt header, not a real kind.
	checkpointMaxKind = 256
	// checkpointChunk is the number of records per frame the writer emits:
	// the bound on encoded bytes resident during a streaming write.
	checkpointChunk = 4096
)

// CheckpointWriter streams a checkpoint-format file: a header (magic,
// version, kind, iteration) followed by sections of CRC32-framed record
// batches. Records are buffered into frames of at most checkpointChunk,
// so writing never materializes the full record set in encoded form.
type CheckpointWriter struct {
	bw    *bufio.Writer
	buf   []byte
	chunk record.Batch
	err   error
}

// NewCheckpointWriter writes the header and returns a writer positioned
// at the first section.
func NewCheckpointWriter(w io.Writer, kind string, iteration uint64) (*CheckpointWriter, error) {
	if len(kind) > checkpointMaxKind {
		return nil, fmt.Errorf("iterative: checkpoint kind %q too long", kind)
	}
	cw := &CheckpointWriter{bw: bufio.NewWriterSize(w, frameWriteBufSize)}
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, checkpointMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, checkpointVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(kind)))
	hdr = append(hdr, kind...)
	hdr = binary.LittleEndian.AppendUint64(hdr, iteration)
	if _, err := cw.bw.Write(hdr); err != nil {
		return nil, err
	}
	return cw, nil
}

// frameWriteBufSize is the buffered-writer size of streaming checkpoint
// writes, mirroring the read side's fixed buffer.
const frameWriteBufSize = 64 << 10

// Append adds one record to the current section, flushing a frame
// whenever checkpointChunk records have accumulated.
func (cw *CheckpointWriter) Append(r record.Record) error {
	if cw.err != nil {
		return cw.err
	}
	cw.chunk = append(cw.chunk, r)
	if len(cw.chunk) >= checkpointChunk {
		return cw.flushChunk()
	}
	return nil
}

func (cw *CheckpointWriter) flushChunk() error {
	if len(cw.chunk) == 0 {
		return cw.err
	}
	cw.buf = record.AppendFrame(cw.buf[:0], cw.chunk)
	cw.chunk = cw.chunk[:0]
	if _, err := cw.bw.Write(cw.buf); err != nil {
		cw.err = err
	}
	return cw.err
}

// EndSection flushes the partial frame and writes the section's closing
// marker (an empty frame).
func (cw *CheckpointWriter) EndSection() error {
	if err := cw.flushChunk(); err != nil {
		return err
	}
	cw.buf = record.AppendFrame(cw.buf[:0], nil)
	if _, err := cw.bw.Write(cw.buf); err != nil {
		cw.err = err
	}
	return cw.err
}

// Flush drains the buffered writer. It does not close an open section;
// call EndSection first.
func (cw *CheckpointWriter) Flush() error {
	if cw.err != nil {
		return cw.err
	}
	if len(cw.chunk) != 0 {
		return fmt.Errorf("iterative: checkpoint section left open (%d buffered records)", len(cw.chunk))
	}
	return cw.bw.Flush()
}

// CheckpointReader streams a checkpoint-format file back: the header is
// parsed eagerly, sections are consumed one at a time through a fixed
// 64 KiB buffered reader.
type CheckpointReader struct {
	fr        *record.FrameReader
	kind      string
	iteration uint64
}

// NewCheckpointReader parses the header. Decoding is bounded: the kind
// length is capped before any allocation depends on it.
func NewCheckpointReader(r io.Reader) (*CheckpointReader, error) {
	br := bufio.NewReaderSize(r, frameWriteBufSize)
	var u32 [4]byte
	readU32 := func(what string) (uint32, error) {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return 0, fmt.Errorf("iterative: checkpoint truncated in %s", what)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	magic, err := readU32("magic")
	if err != nil {
		return nil, err
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("iterative: not a checkpoint (magic %#x)", magic)
	}
	version, err := readU32("version")
	if err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("iterative: unsupported checkpoint version %d", version)
	}
	kindLen, err := readU32("kind length")
	if err != nil {
		return nil, err
	}
	if kindLen > checkpointMaxKind {
		return nil, fmt.Errorf("iterative: checkpoint kind length %d exceeds %d", kindLen, checkpointMaxKind)
	}
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kind); err != nil {
		return nil, fmt.Errorf("iterative: checkpoint truncated in kind")
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("iterative: checkpoint truncated in iteration")
	}
	return &CheckpointReader{
		fr:        record.NewFrameReader(br),
		kind:      string(kind),
		iteration: binary.LittleEndian.Uint64(u64[:]),
	}, nil
}

// Kind returns the header's kind string.
func (cr *CheckpointReader) Kind() string { return cr.kind }

// Iteration returns the header's iteration counter.
func (cr *CheckpointReader) Iteration() uint64 { return cr.iteration }

// ReadSection consumes one section, invoking f once per frame, until the
// section's closing marker. It returns io.EOF when the stream ends
// cleanly before another section starts, and an error wrapping
// record.ErrCorruptFrame for torn or corrupt frames.
func (cr *CheckpointReader) ReadSection(f func(record.Batch) error) error {
	first := true
	for {
		b, err := cr.fr.Next()
		if err != nil {
			if err == io.EOF && first {
				return io.EOF
			}
			if err == io.EOF {
				return fmt.Errorf("%w: section missing its end marker", record.ErrCorruptFrame)
			}
			return err
		}
		first = false
		if len(b) == 0 {
			return nil
		}
		if err := f(b); err != nil {
			return err
		}
	}
}

// WriteTo serializes the checkpoint in the streaming section format:
// header, solution section, workset section. Encoding is chunked into
// bounded frames — unlike a single EncodeBatch of the full record set,
// peak memory during a checkpoint stays at one frame, not a second copy
// of the solution.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	cnt := &countingWriter{w: w}
	cw, err := NewCheckpointWriter(cnt, c.Kind, uint64(c.Iteration))
	if err != nil {
		return cnt.n, err
	}
	for _, section := range [][]record.Record{c.Solution, c.Workset} {
		for _, r := range section {
			if err := cw.Append(r); err != nil {
				return cnt.n, err
			}
		}
		if err := cw.EndSection(); err != nil {
			return cnt.n, err
		}
	}
	return cnt.n, cw.Flush()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadCheckpoint deserializes a checkpoint written by WriteTo. The file
// is stream-decoded frame by frame through a fixed buffered reader — it
// is never slurped whole, and a corrupt header cannot trigger an
// allocation larger than one frame's records.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	cr, err := NewCheckpointReader(r)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{Kind: cr.Kind(), Iteration: int(cr.Iteration())}
	collect := func(dst *[]record.Record, what string) error {
		err := cr.ReadSection(func(b record.Batch) error {
			*dst = append(*dst, b...)
			return nil
		})
		if err != nil {
			return fmt.Errorf("iterative: checkpoint %s: %w", what, err)
		}
		return nil
	}
	if err := collect(&c.Solution, "solution"); err != nil {
		return nil, err
	}
	if err := collect(&c.Workset, "workset"); err != nil {
		return nil, err
	}
	// A third section (or trailing bytes) means the file is not a plain
	// checkpoint.
	if err := cr.ReadSection(func(record.Batch) error { return nil }); err != io.EOF {
		return nil, fmt.Errorf("iterative: trailing data after checkpoint workset")
	}
	return c, nil
}

// WriteFileDurable writes path atomically *and* durably: the content is
// produced into path.tmp, fsynced, renamed over path, and the parent
// directory is fsynced so the rename itself survives a crash. Without
// the syncs, a crash shortly after a "successful" save can leave an
// empty or torn file behind the new name — rename alone orders nothing.
func WriteFileDurable(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems refuse to fsync directories (EINVAL/ENOTSUP); those errors
// are ignored — on such systems the rename is as durable as it can be
// made.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// SaveCheckpoint writes a checkpoint file atomically and durably
// (WriteFileDurable: temp write, fsync, rename, directory fsync).
func SaveCheckpoint(path string, c *Checkpoint) error {
	return WriteFileDurable(path, func(w io.Writer) error {
		_, err := c.WriteTo(w)
		return err
	})
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ResumeBulk restarts a bulk iteration from a checkpoint: the snapshot's
// partial solution becomes the initial input, and fixed-count runs only
// execute the remaining passes.
func ResumeBulk(spec BulkSpec, cp *Checkpoint, cfg Config) (*BulkResult, error) {
	if cp.Kind != "bulk" {
		return nil, fmt.Errorf("iterative: cannot resume bulk iteration from %q checkpoint", cp.Kind)
	}
	if spec.FixedIterations > 0 {
		remaining := spec.FixedIterations - cp.Iteration
		if remaining <= 0 {
			return &BulkResult{Solution: cp.Solution, Iterations: 0}, nil
		}
		spec.FixedIterations = remaining
	}
	res, err := RunBulk(spec, cp.Solution, cfg)
	if res != nil {
		res.Iterations += cp.Iteration
	}
	return res, err
}

// RestoreIncremental restarts an incremental iteration from a checkpoint:
// the snapshot's solution set and pending working set continue where the
// failed run left off. (ResumeIncremental, by contrast, warm-restarts over
// a live in-memory solution set rather than a persisted snapshot.)
func RestoreIncremental(spec IncrementalSpec, cp *Checkpoint, cfg Config) (*IncrementalResult, error) {
	if cp.Kind != "incremental" {
		return nil, fmt.Errorf("iterative: cannot resume incremental iteration from %q checkpoint", cp.Kind)
	}
	res, err := RunIncremental(spec, cp.Solution, cp.Workset, cfg)
	if res != nil {
		res.Supersteps += cp.Iteration
	}
	return res, err
}
