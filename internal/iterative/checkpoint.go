package iterative

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/record"
)

// Checkpointing (§4.2): "iterative dataflows may log intermediate results
// for recovery just as non-iterative dataflows ... a new version of the
// log needs to be created for every logged iteration". The iteration
// drivers can snapshot the loop state every k passes; after a failure a
// run resumes from the last snapshot instead of from scratch.
//
// A bulk checkpoint holds the partial solution; an incremental checkpoint
// holds the solution set and the pending working set.

// Checkpoint is a recoverable snapshot of an iteration's loop state.
type Checkpoint struct {
	// Kind is "bulk" or "incremental".
	Kind string
	// Iteration is the number of completed passes/supersteps.
	Iteration int
	// Solution is the partial solution (bulk) or solution set
	// (incremental).
	Solution []record.Record
	// Workset is the pending working set (incremental only).
	Workset []record.Record
}

const (
	checkpointMagic   = uint32(0x53464c57) // "SFLW"
	checkpointVersion = uint32(1)
)

// WriteTo serializes the checkpoint.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	var total int64
	writeU32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		n, err := w.Write(buf[:])
		total += int64(n)
		return err
	}
	if err := writeU32(checkpointMagic); err != nil {
		return total, err
	}
	if err := writeU32(checkpointVersion); err != nil {
		return total, err
	}
	kind := []byte(c.Kind)
	if err := writeU32(uint32(len(kind))); err != nil {
		return total, err
	}
	n, err := w.Write(kind)
	total += int64(n)
	if err != nil {
		return total, err
	}
	if err := writeU32(uint32(c.Iteration)); err != nil {
		return total, err
	}
	for _, recs := range [][]record.Record{c.Solution, c.Workset} {
		buf := record.EncodeBatch(nil, recs)
		n, err := w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteTo.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("iterative: reading checkpoint: %w", err)
	}
	readU32 := func() (uint32, error) {
		if len(data) < 4 {
			return 0, fmt.Errorf("iterative: checkpoint truncated")
		}
		v := binary.LittleEndian.Uint32(data[:4])
		data = data[4:]
		return v, nil
	}
	magic, err := readU32()
	if err != nil {
		return nil, err
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("iterative: not a checkpoint (magic %#x)", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("iterative: unsupported checkpoint version %d", version)
	}
	kindLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(kindLen) > len(data) {
		return nil, fmt.Errorf("iterative: checkpoint truncated in kind")
	}
	c := &Checkpoint{Kind: string(data[:kindLen])}
	data = data[kindLen:]
	iter, err := readU32()
	if err != nil {
		return nil, err
	}
	c.Iteration = int(iter)
	c.Solution, data, err = record.DecodeBatch(data)
	if err != nil {
		return nil, fmt.Errorf("iterative: checkpoint solution: %w", err)
	}
	c.Workset, data, err = record.DecodeBatch(data)
	if err != nil {
		return nil, fmt.Errorf("iterative: checkpoint workset: %w", err)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("iterative: %d trailing bytes in checkpoint", len(data))
	}
	return c, nil
}

// SaveCheckpoint writes a checkpoint file atomically (write + rename).
func SaveCheckpoint(path string, c *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ResumeBulk restarts a bulk iteration from a checkpoint: the snapshot's
// partial solution becomes the initial input, and fixed-count runs only
// execute the remaining passes.
func ResumeBulk(spec BulkSpec, cp *Checkpoint, cfg Config) (*BulkResult, error) {
	if cp.Kind != "bulk" {
		return nil, fmt.Errorf("iterative: cannot resume bulk iteration from %q checkpoint", cp.Kind)
	}
	if spec.FixedIterations > 0 {
		remaining := spec.FixedIterations - cp.Iteration
		if remaining <= 0 {
			return &BulkResult{Solution: cp.Solution, Iterations: 0}, nil
		}
		spec.FixedIterations = remaining
	}
	res, err := RunBulk(spec, cp.Solution, cfg)
	if res != nil {
		res.Iterations += cp.Iteration
	}
	return res, err
}

// RestoreIncremental restarts an incremental iteration from a checkpoint:
// the snapshot's solution set and pending working set continue where the
// failed run left off. (ResumeIncremental, by contrast, warm-restarts over
// a live in-memory solution set rather than a persisted snapshot.)
func RestoreIncremental(spec IncrementalSpec, cp *Checkpoint, cfg Config) (*IncrementalResult, error) {
	if cp.Kind != "incremental" {
		return nil, fmt.Errorf("iterative: cannot resume incremental iteration from %q checkpoint", cp.Kind)
	}
	res, err := RunIncremental(spec, cp.Solution, cp.Workset, cfg)
	if res != nil {
		res.Supersteps += cp.Iteration
	}
	return res, err
}
