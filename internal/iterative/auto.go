package iterative

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// AutoSpec describes one iterative computation executable by several
// engines, so the runner — not the caller — picks the engine. The paper's
// §4.3 observes that "in the general case, a different plan may be
// optimal for every iteration"; RunAuto extends that from plans to whole
// engines, with runtime cardinality feedback driving mid-run switches.
type AutoSpec struct {
	// Incremental is the Δ iteration (Δ, S0, W0) — required. The
	// superstep engine executes it directly; the microstep engine
	// executes it asynchronously when it meets the §5.2 admissibility
	// conditions.
	Incremental IncrementalSpec
	// Bulk optionally supplies an equivalent bulk iteration computing
	// the same fixpoint by full recomputation; when set it competes in
	// the engine choice (it wins when the working set is nearly as large
	// as the solution and grouping whole partitions beats per-delta
	// bookkeeping).
	Bulk *BulkSpec
	// BulkInitial is the initial partial solution for Bulk; nil defaults
	// to the initial solution passed to RunAuto.
	BulkInitial []record.Record
	// Force pins the initial engine choice instead of costing the
	// candidates (mid-run switching still applies). Nil means cost-based
	// selection.
	Force *optimizer.Engine
}

// EngineCandidate reports one engine's up-front costing in an AutoResult.
type EngineCandidate struct {
	Engine optimizer.Engine
	// Cost is the estimated whole-run cost in the selection weights'
	// unit system (meaningless across weight sets, comparable within).
	Cost float64
	// Viable is false when the engine cannot run this spec; Reason says
	// why.
	Viable bool
	Reason string
}

// AutoResult is the outcome of an adaptive run. The embedded
// IncrementalResult carries the solution, trace and (for runs that ended
// on the incremental or microstep engine) the resident solution set.
type AutoResult struct {
	IncrementalResult
	// Engines is the sequence of engines that executed, in order; more
	// than one entry means the run switched mid-way.
	Engines []optimizer.Engine
	// Switches counts mid-run engine handoffs.
	Switches int
	// Candidates are the per-engine cost estimates selection compared.
	Candidates []EngineCandidate
	// Weights are the cost weights selection used (calibrated when a
	// Calibrator with enough samples was configured, Samples > 0).
	Weights metrics.CalibratedWeights
	// PlannedVsObserved pairs each barrier superstep's predicted cost
	// against its measured wall time — the feedback the calibrator fits.
	PlannedVsObserved []metrics.PlannedVsObserved
}

// engineWeights resolves the weights RunAuto plans with: pinned >
// calibrated > defaults.
func engineWeights(cfg Config) metrics.CalibratedWeights {
	if cfg.EngineWeights != nil {
		return *cfg.EngineWeights
	}
	if cfg.Calibrator != nil {
		return cfg.Calibrator.Weights()
	}
	return optimizer.DefaultWeights()
}

// constantSize sums the cardinalities of a plan's Source nodes — the
// loop-invariant inputs the constant-path cache materializes.
func constantSize(p *dataflow.Plan) int64 {
	var n int64
	for _, node := range p.Nodes() {
		if node.Contract == dataflow.Source {
			n += int64(len(node.Data))
		}
	}
	return n
}

// incrementalStats derives the engine-costing statistics for the Δ spec.
func incrementalStats(spec *IncrementalSpec, solution, workset int, cfg Config) optimizer.EngineStats {
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	return optimizer.EngineStats{
		SolutionSize:       int64(solution),
		WorksetSize:        int64(workset),
		ConstantSize:       constantSize(spec.Plan),
		ExpectedSupersteps: expected,
		Tasks:              len(spec.Plan.Nodes()) * cfg.Parallelism,
	}
}

// RunAuto executes one iterative computation on whichever engine the cost
// model says is cheapest, and keeps watching: observed per-superstep
// cardinalities can trigger a mid-run switch — incremental → microstep
// once the workset collapses below the dispatch-overhead crossover — with
// the resident solution set handed over warm, so no state is rebuilt.
// With Config.Calibrator set, every superstep's measured work and wall
// time feed a least-squares fit of the cost weights, so repeated runs
// plan with observed rather than guessed constants.
func RunAuto(spec AutoSpec, initialSolution, initialWorkset []record.Record, cfg Config) (*AutoResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.Incremental.validate(); err != nil {
		return nil, err
	}
	weights := engineWeights(cfg)

	_, microErr := ValidateMicrostep(spec.Incremental)
	incStats := incrementalStats(&spec.Incremental, len(initialSolution), len(initialWorkset), cfg)

	out := &AutoResult{Weights: weights}
	out.Candidates = []EngineCandidate{
		{Engine: optimizer.EngineIncremental, Viable: true,
			Cost: optimizer.EngineCost(optimizer.EngineIncremental, incStats, weights)},
	}
	if microErr == nil {
		out.Candidates = append(out.Candidates, EngineCandidate{
			Engine: optimizer.EngineMicrostep, Viable: true,
			Cost: optimizer.EngineCost(optimizer.EngineMicrostep, incStats, weights)})
	} else {
		out.Candidates = append(out.Candidates, EngineCandidate{
			Engine: optimizer.EngineMicrostep, Reason: microErr.Error()})
	}
	var bulkStats *optimizer.EngineStats
	if spec.Bulk != nil {
		bulkInitial := spec.BulkInitial
		if bulkInitial == nil {
			bulkInitial = initialSolution
		}
		expected := spec.Bulk.ExpectedIterations
		if expected <= 0 {
			expected = spec.Bulk.FixedIterations
		}
		if expected <= 0 {
			expected = 10
		}
		bulkStats = &optimizer.EngineStats{
			SolutionSize:       int64(len(bulkInitial)),
			ConstantSize:       constantSize(spec.Bulk.Plan),
			ExpectedSupersteps: expected,
			Tasks:              len(spec.Bulk.Plan.Nodes()) * cfg.Parallelism,
		}
		out.Candidates = append(out.Candidates, EngineCandidate{
			Engine: optimizer.EngineBulk, Viable: true,
			Cost: optimizer.EngineCost(optimizer.EngineBulk, *bulkStats, weights)})
	} else {
		out.Candidates = append(out.Candidates, EngineCandidate{
			Engine: optimizer.EngineBulk, Reason: "no bulk alternative supplied"})
	}

	chosen := optimizer.EngineIncremental
	if spec.Force != nil {
		chosen = *spec.Force
		for _, c := range out.Candidates {
			if c.Engine == chosen && !c.Viable {
				return nil, fmt.Errorf("iterative: forced engine %s not viable: %s", chosen, c.Reason)
			}
		}
	} else {
		// The incremental engine is the default: its cost is workset-
		// proportional, so it is never catastrophically wrong, and the
		// mid-run crossover below still captures microstep's tail wins.
		// Leaving it requires a clear margin — cardinality estimates and
		// calibrated constants are noisy, and acting on a near-tie trades
		// a robust choice for a coin flip. Calibrated weights carry an
		// extra hazard: a fit over near-collinear samples (a long tail of
		// identical tiny supersteps) can assign per-record costs almost
		// arbitrarily, so a calibrated deviation must also hold under the
		// built-in defaults before it is trusted.
		const margin = 0.75
		wins := func(w metrics.CalibratedWeights, e optimizer.Engine, bulkStats *optimizer.EngineStats) bool {
			inc := optimizer.EngineCost(optimizer.EngineIncremental, incStats, w)
			st := incStats
			if e == optimizer.EngineBulk {
				if bulkStats == nil {
					return false
				}
				st = *bulkStats
			}
			return optimizer.EngineCost(e, st, w) < margin*inc
		}
		bestCost := 0.0
		for _, c := range out.Candidates {
			if c.Engine == optimizer.EngineIncremental {
				bestCost = c.Cost
			}
		}
		calibrated := cfg.EngineWeights == nil && cfg.Calibrator != nil
		for _, c := range out.Candidates {
			if !c.Viable || c.Engine == optimizer.EngineIncremental {
				continue
			}
			ok := wins(weights, c.Engine, bulkStats)
			if ok && calibrated {
				ok = wins(optimizer.DefaultWeights(), c.Engine, bulkStats)
			}
			if ok && c.Cost < bestCost {
				chosen, bestCost = c.Engine, c.Cost
			}
		}
	}

	switch chosen {
	case optimizer.EngineBulk:
		return runAutoBulk(spec, initialSolution, cfg, out)
	case optimizer.EngineMicrostep:
		return runAutoMicrostep(spec.Incremental, initialSolution, initialWorkset, cfg, out, nil)
	default:
		return runAutoIncremental(spec, initialSolution, initialWorkset, cfg, out)
	}
}

// runAutoBulk executes the bulk alternative and adapts its result.
func runAutoBulk(spec AutoSpec, initialSolution []record.Record, cfg Config, out *AutoResult) (*AutoResult, error) {
	initial := spec.BulkInitial
	if initial == nil {
		initial = initialSolution
	}
	out.Engines = append(out.Engines, optimizer.EngineBulk)
	runCfg := cfg
	if cfg.Calibrator != nil && cfg.Metrics != nil {
		// Calibration samples come from the per-pass trace; collect it
		// even when the caller did not ask for one.
		runCfg.CollectTrace = true
	}
	res, err := RunBulk(*spec.Bulk, initial, runCfg)
	if err != nil {
		return nil, err
	}
	for i := range res.Trace.Iterations {
		res.Trace.Iterations[i].Engine = optimizer.EngineBulk.String()
	}
	out.Solution = res.Solution
	out.Supersteps = res.Iterations
	out.Plan = res.Plan
	if cfg.Calibrator != nil && cfg.Metrics != nil {
		tasks := len(spec.Bulk.Plan.Nodes()) * cfg.Parallelism
		for _, st := range res.Trace.Iterations {
			cfg.Calibrator.ObserveSuperstep(st.Work, tasks, st.Duration)
		}
	}
	if cfg.CollectTrace {
		out.Trace = res.Trace
	}
	return out, nil
}

// runAutoMicrostep executes the remaining working set asynchronously.
// With sol == nil it cold-starts from initialSolution; otherwise it
// resumes over the handed-over resident set.
func runAutoMicrostep(spec IncrementalSpec, initialSolution, workset []record.Record, cfg Config, out *AutoResult, sol *runtime.SolutionSet) (*AutoResult, error) {
	out.Engines = append(out.Engines, optimizer.EngineMicrostep)
	var before metrics.Snapshot
	if cfg.Metrics != nil {
		before = cfg.Metrics.Snapshot()
	}
	start := time.Now()
	var res *IncrementalResult
	var err error
	if sol == nil {
		res, err = RunMicrostep(spec, initialSolution, workset, cfg)
	} else {
		res, err = ResumeMicrostep(spec, sol, workset, cfg)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Calibrator != nil && cfg.Metrics != nil {
		cfg.Calibrator.ObserveMicrostepRun(cfg.Metrics.Snapshot().Sub(before), res.Microsteps, time.Since(start))
	}
	for i := range res.Trace.Iterations {
		res.Trace.Iterations[i].Engine = optimizer.EngineMicrostep.String()
	}
	prior := out.Supersteps
	priorMicro := out.Microsteps
	priorEpochs := out.PlanEpochs
	priorPlan := out.Plan
	events := out.Trace.Events
	priorTrace := out.Trace
	out.IncrementalResult = *res
	out.Supersteps += prior
	out.Microsteps += priorMicro
	out.PlanEpochs += priorEpochs
	if out.Plan == nil {
		// A handoff keeps the plan the superstep phase executed;
		// microstep execution itself has none.
		out.Plan = priorPlan
	}
	// Keep the superstep trace collected before a handoff, then append
	// the asynchronous samples.
	if len(priorTrace.Iterations) > 0 || len(events) > 0 {
		merged := priorTrace
		merged.Events = events
		for _, st := range res.Trace.Iterations {
			st.Iteration = prior + st.Iteration
			merged.Add(st)
		}
		merged.Events = append(merged.Events, res.Trace.Events...)
		out.Trace = merged
	}
	return out, nil
}

// runAutoIncremental drives barrier supersteps while monitoring observed
// workset cardinalities; once the workset collapses below the
// dispatch-overhead crossover (and the spec admits microsteps), the run
// hands its resident solution set to the asynchronous engine and
// finishes there.
func runAutoIncremental(auto AutoSpec, initialSolution, initialWorkset []record.Record, cfg Config, out *AutoResult) (*AutoResult, error) {
	spec := auto.Incremental
	out.Engines = append(out.Engines, optimizer.EngineIncremental)
	maxSteps := spec.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	_, microErr := ValidateMicrostep(spec)
	microOK := microErr == nil

	plannedEst := spec.Workset.EstRecords
	if plannedEst == 0 {
		plannedEst = int64(len(initialWorkset))
	}
	phys, err := optimizeIncrementalWithEst(&spec, cfg, expected, plannedEst)
	if err != nil {
		return nil, err
	}
	out.Plan = phys

	sol := cfg.newSolutionSet(spec.SolutionKey, spec.Comparator)
	sol.Init(initialSolution)
	en := openIncEngine(&spec, sol, cfg, expected, phys, nil)
	en.tag = optimizer.EngineIncremental.String()
	defer en.close()
	en.seed(initialWorkset)

	out.Set = sol
	stats := incrementalStats(&spec, len(initialSolution), len(initialWorkset), cfg)
	inCount := len(initialWorkset)
	var planned float64
	d := &driver{
		cfg: cfg, policy: en, maxSteps: maxSteps, worksetDriven: true,
		calTasks: stats.Tasks,
		reopt:    newReoptState(phys, plannedEst),
		collect:  cfg.CollectTrace, trace: &out.Trace,
		preStep: func(step int) {
			planned = optimizer.SuperstepCost(int64(inCount), stats, engineWeights(cfg))
		},
		postStep: func(step, next int, work metrics.Snapshot, dur time.Duration) {
			out.PlannedVsObserved = append(out.PlannedVsObserved, metrics.PlannedVsObserved{
				Engine: optimizer.EngineIncremental.String(), Superstep: step,
				Planned: planned, Observed: dur,
			})
			inCount = next
		},
		// Crossover check with the freshest weights: once finishing
		// asynchronously beats paying further barrier rounds, hand the
		// resident solution set over and switch engines. Like the initial
		// selection, a calibrated verdict must also hold under the
		// default weights before a switch is trusted.
		switchWhen: func(step, next int) bool {
			switchNow := microOK && optimizer.MicrostepWins(int64(next), step+1, stats, engineWeights(cfg))
			if switchNow && cfg.EngineWeights == nil && cfg.Calibrator != nil {
				switchNow = optimizer.MicrostepWins(int64(next), step+1, stats, optimizer.DefaultWeights())
			}
			return switchNow
		},
	}
	converged, err := d.run()
	out.Supersteps = d.steps
	out.PlanEpochs = d.epochs
	if err != nil {
		return nil, err
	}
	if d.switched {
		// Hand the resident solution set over warm and finish
		// asynchronously.
		nextCount := 0
		var remaining []record.Record
		for _, p := range en.nextParts {
			nextCount += len(p)
			remaining = append(remaining, p...)
		}
		en.sess.Close()
		if cfg.Metrics != nil {
			cfg.Metrics.EngineSwitches.Add(1)
		}
		out.Switches++
		out.Trace.AddEvent(d.steps-1, fmt.Sprintf(
			"switched incremental → microstep at workset %d", nextCount))
		return runAutoMicrostep(spec, nil, remaining, cfg, out, sol)
	}
	out.Solution = sol.Snapshot()
	if converged {
		return out, nil
	}
	return out, fmt.Errorf("%w after %d supersteps", ErrNoProgress, maxSteps)
}
