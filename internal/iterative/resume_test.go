package iterative_test

// External test package: warm restarts are exercised against the real
// Connected Components dataflow from internal/algorithms, which imports
// iterative (so these tests cannot live in the internal test package).

import (
	"testing"

	"repro/internal/algorithms"
	"repro/internal/dataflow"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/runtime"
)

var resumeBackends = []struct {
	name string
	cfg  func(iterative.Config) iterative.Config
}{
	{"map", func(c iterative.Config) iterative.Config { c.SolutionBackend = runtime.SolutionMap; return c }},
	{"compact", func(c iterative.Config) iterative.Config { c.SolutionBackend = runtime.SolutionCompact; return c }},
	{"spill", func(c iterative.Config) iterative.Config { c.SolutionMemoryBudget = 16 * record.EncodedSize; return c }},
}

// insertDeltaCC builds the workset candidates for inserting undirected
// edge (u, v) over a converged CC solution set: each endpoint proposes its
// current component id to the other.
func insertDeltaCC(sol *runtime.SolutionSet, u, v int64) []record.Record {
	cid := func(x int64) int64 {
		if r, ok := sol.Lookup(sol.PartitionFor(x), x); ok {
			return r.B
		}
		return x
	}
	return []record.Record{{A: v, B: cid(u)}, {A: u, B: cid(v)}}
}

// TestResumeIncrementalAbsorbsInsert converges CC on a graph missing one
// bridge edge, then warm-restarts over the full graph with only the
// bridge's candidates as the working set; the resumed fixpoint must match
// the union-find oracle on the full graph, for every backend.
func TestResumeIncrementalAbsorbsInsert(t *testing.T) {
	full := graphgen.Uniform("resume-full", 80, 160, 0xBEEF)
	// The bridge connects the two halves only through this one edge.
	bridge := graphgen.Edge{Src: 5, Dst: 71}
	full.Edges = append(full.Edges, bridge)
	partial := &graphgen.Graph{Name: "resume-partial", NumVertices: full.NumVertices,
		Edges: full.Edges[:len(full.Edges)-1]}

	for _, bk := range resumeBackends {
		t.Run(bk.name, func(t *testing.T) {
			var m metrics.Counters
			cfg := bk.cfg(iterative.Config{Parallelism: 4, Metrics: &m})

			_, res, err := algorithms.CCIncremental(partial, algorithms.CCCoGroup, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Set == nil {
				t.Fatal("IncrementalResult.Set handoff is nil")
			}

			// The resumed spec's Δ plan must see the full edge set.
			spec, _, _ := algorithms.CCIncrementalSpec(full, algorithms.CCCoGroup)
			delta := insertDeltaCC(res.Set, bridge.Src, bridge.Dst)
			warm, err := iterative.ResumeIncremental(spec, res.Set, delta, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := algorithms.ComponentsToMap(warm.Solution)
			oracle := algorithms.CCReference(full)
			for v, c := range oracle {
				if got[v] != c {
					t.Fatalf("vertex %d -> %d, oracle %d", v, got[v], c)
				}
			}
			if m.WarmRestarts.Load() != 1 {
				t.Errorf("WarmRestarts = %d, want 1", m.WarmRestarts.Load())
			}
			if m.MaintenanceSupersteps.Load() != int64(warm.Supersteps) {
				t.Errorf("MaintenanceSupersteps = %d, want %d",
					m.MaintenanceSupersteps.Load(), warm.Supersteps)
			}
		})
	}
}

// TestResumeIncrementalEmptyDelta resumes with no delta: one superstep,
// no changes, same solution.
func TestResumeIncrementalEmptyDelta(t *testing.T) {
	g := graphgen.Uniform("resume-empty", 40, 80, 7)
	_, res, err := algorithms.CCIncremental(g, algorithms.CCCoGroup, iterative.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec, _, _ := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	warm, err := iterative.ResumeIncremental(spec, res.Set, nil, iterative.Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Supersteps != 1 {
		t.Errorf("empty delta took %d supersteps, want 1", warm.Supersteps)
	}
	if len(warm.Solution) != len(res.Solution) {
		t.Errorf("solution size changed: %d -> %d", len(res.Solution), len(warm.Solution))
	}
}

// TestResumeIncrementalValidation covers the error paths: nil solution set
// and partition-count mismatch.
func TestResumeIncrementalValidation(t *testing.T) {
	g := graphgen.Uniform("resume-val", 20, 40, 3)
	spec, _, _ := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	if _, err := iterative.ResumeIncremental(spec, nil, nil, iterative.Config{Parallelism: 2}); err == nil {
		t.Error("nil solution set accepted")
	}
	sol := runtime.NewSolutionSet(2, record.KeyA, nil, nil)
	if _, err := iterative.ResumeIncremental(spec, sol, nil, iterative.Config{Parallelism: 4}); err == nil {
		t.Error("partition mismatch accepted")
	}
}

// TestFixpointSessionReuseAcrossRestarts checks the resident-session
// contract directly: after the cold run, warm restarts — including one
// that mutates the edge source and invalidates the constant caches — must
// not spawn any new workers, and must still converge correctly.
func TestFixpointSessionReuseAcrossRestarts(t *testing.T) {
	g := graphgen.Uniform("fixpoint-reuse", 60, 120, 0xCAFE)
	bridge := graphgen.Edge{Src: 1, Dst: 57}
	spec, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)

	var m metrics.Counters
	cfg := iterative.Config{Parallelism: 4, Metrics: &m}
	f, err := iterative.OpenFixpoint(spec, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Solution().Init(s0)
	if _, err := f.Run(w0); err != nil {
		t.Fatal(err)
	}
	spawnedCold := m.WorkersSpawned.Load()

	// Mutate the Δ plan's edge source in place: the undirected edge table
	// gains both orientations of the bridge, and the constant caches are
	// dropped so the next superstep re-materializes them.
	var src *dataflow.Node
	for _, n := range spec.Plan.Nodes() {
		if n.Contract == dataflow.Source {
			src = n
		}
	}
	if src == nil {
		t.Fatal("no Source node in CC spec")
	}
	src.Data = append(src.Data,
		record.Record{A: bridge.Src, B: bridge.Dst},
		record.Record{A: bridge.Dst, B: bridge.Src})
	f.InvalidateConstants()

	if _, err := f.Run(insertDeltaCC(f.Solution(), bridge.Src, bridge.Dst)); err != nil {
		t.Fatal(err)
	}
	if got := m.WorkersSpawned.Load(); got != spawnedCold {
		t.Errorf("warm restart spawned workers: %d -> %d", spawnedCold, got)
	}

	withBridge := &graphgen.Graph{Name: "with-bridge", NumVertices: g.NumVertices,
		Edges: append(append([]graphgen.Edge(nil), g.Edges...), bridge)}
	oracle := algorithms.CCReference(withBridge)
	got := algorithms.ComponentsToMap(f.Solution().Snapshot())
	for v, c := range oracle {
		if got[v] != c {
			t.Fatalf("vertex %d -> %d, oracle %d", v, got[v], c)
		}
	}
}
