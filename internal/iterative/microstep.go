package iterative

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/runtime"
)

// Microstep execution (§5.2/§5.3): an incremental iteration whose Δ
// dataflow satisfies the microstep conditions runs asynchronously — each
// working-set element is taken from a partitioned FIFO queue, applied to
// the solution set immediately, and its consequences are routed to the
// owning partition's queue. No superstep barrier exists; termination is
// detected by counting in-flight elements (a single-process realization
// of the message-counting termination detection the paper cites [27]).
//
// The §5.2 admissibility conditions enforced by ValidateMicrostep:
//
//  1. every operator on the dynamic data path is record-at-a-time;
//  2. binary operators have at most one input on the dynamic path;
//  3. the dynamic path has no branches, except the split into the delta
//     output D;
//  4. updates stay partition-local: the key k(s) is preserved on the path
//     from the workset through the solution-set operator to D, and every
//     keyed operation on the local segment uses that key.

// microStage is one compiled record-at-a-time step of the dynamic path.
type microStage interface {
	// process handles one record, emitting derived records downstream.
	process(part int, r record.Record, emit func(record.Record))
}

// stageMap applies a Map UDF.
type stageMap struct {
	fn dataflow.MapFn
	mi *microRun
}

func (s stageMap) process(part int, r record.Record, emit func(record.Record)) {
	s.mi.udf()
	s.fn(r, emitFunc(emit))
}

// stageJoin probes a materialized constant-side table (the cached N of
// Figure 6), partition-local by construction.
type stageJoin struct {
	fn      dataflow.MatchFn
	dynKey  record.KeyFunc
	dynSide int // which Match input carries the dynamic record
	tables  []map[int64][]record.Record
	mi      *microRun
}

func (s stageJoin) process(part int, r record.Record, emit func(record.Record)) {
	for _, m := range s.tables[part][s.dynKey(r)] {
		s.mi.udf()
		if s.dynSide == 0 {
			s.fn(r, m, emitFunc(emit))
		} else {
			s.fn(m, r, emitFunc(emit))
		}
	}
}

// stageSolution is the stateful update: it probes the solution set, calls
// the UDF, applies every emitted delta record immediately (the defining
// microstep property), and propagates only records that advanced the
// solution in the CPO.
type stageSolution struct {
	fn  dataflow.SolutionJoinFn
	key record.KeyFunc
	mi  *microRun
}

func (s stageSolution) process(part int, r record.Record, emit func(record.Record)) {
	sol := s.mi.solution
	cur, found := sol.Lookup(part, s.key(r))
	s.mi.udf()
	s.fn(r, cur, found, emitFunc(func(d record.Record) {
		if sol.Update(d) {
			emit(d)
		}
	}))
}

type emitFunc func(record.Record)

func (f emitFunc) Emit(r record.Record) { f(r) }

// microPath is the validated, compiled dynamic path.
type microPath struct {
	preStages  []microStage // W -> solution operator
	solStage   *stageSolution
	postStages []microStage // D -> next workset elements
}

// ValidateMicrostep checks the §5.2 conditions on an incremental spec and
// returns the ordered dynamic path from the workset placeholder to the
// workset sink. It does not materialize constant inputs.
func ValidateMicrostep(spec IncrementalSpec) ([]*dataflow.Node, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	consumers := spec.Plan.Consumers()
	solKeyID := record.KeyID(spec.SolutionKey)

	var path []*dataflow.Node
	cur := spec.Workset
	seenSolution := false
	for {
		cons := consumers[cur.ID]
		// Condition 3: no branches except the delta output.
		var next *dataflow.Node
		for _, c := range cons {
			if c == spec.DeltaSink {
				continue
			}
			if next != nil {
				return nil, fmt.Errorf("iterative: microstep dynamic path branches at %q", cur.Name)
			}
			next = c
		}
		if next == nil {
			return nil, fmt.Errorf("iterative: dynamic path from %q does not reach the workset sink", cur.Name)
		}
		if next == spec.WorksetSink {
			path = append(path, next)
			break
		}
		// Condition 1: record-at-a-time operators only.
		if !next.Contract.RecordAtATime() {
			return nil, fmt.Errorf("iterative: %s %q is group-at-a-time; microsteps need supersteps (§5.2)", next.Contract, next.Name)
		}
		// Condition 2: binary operators may have only one dynamic input.
		if next.Contract == dataflow.MatchOp || next.Contract == dataflow.CrossOp {
			dynInputs := 0
			for _, in := range next.Inputs {
				if in == cur {
					dynInputs++
				}
			}
			if dynInputs != 1 {
				return nil, fmt.Errorf("iterative: %s %q must have exactly one dynamic input", next.Contract, next.Name)
			}
		}
		if next.Contract == dataflow.SolutionJoin {
			if seenSolution {
				return nil, fmt.Errorf("iterative: multiple solution-set operators on the dynamic path")
			}
			seenSolution = true
			// Condition 4: the update key must be k(s).
			if record.KeyID(next.Keys[0]) != solKeyID {
				return nil, fmt.Errorf("iterative: solution operator %q keys on a different field than k(s)", next.Name)
			}
			// And the UDF must keep it constant so updates stay local.
			if !next.PreservesKey(0, solKeyID) {
				return nil, fmt.Errorf("iterative: solution operator %q does not declare k(s) preserved; updates could cross partitions (§5.2)", next.Name)
			}
		}
		// Condition 4 (local segment): keyed record-at-a-time operations
		// before re-routing must key on the preserved workset key.
		if next.Contract == dataflow.MatchOp {
			dynIdx := 0
			if next.Inputs[1] == cur {
				dynIdx = 1
			}
			if record.KeyID(next.Keys[dynIdx]) != record.KeyID(spec.WorksetKey) &&
				record.KeyID(next.Keys[dynIdx]) != solKeyID {
				return nil, fmt.Errorf("iterative: match %q keys the dynamic side on a non-local field", next.Name)
			}
		}
		path = append(path, next)
		cur = next
	}
	if !seenSolution {
		return nil, fmt.Errorf("iterative: dynamic path has no solution-set operator")
	}
	return path, nil
}

// evalConst interprets a loop-invariant subtree of the Δ plan (sources,
// maps, filters, unions, simple joins/reduces over constant data). It runs
// once at setup, mirroring the batch engine's constant-path evaluation.
func evalConst(n *dataflow.Node) ([]record.Record, error) {
	switch n.Contract {
	case dataflow.Source:
		return n.Data, nil
	case dataflow.MapOp:
		in, err := evalConst(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		var out []record.Record
		em := emitFunc(func(r record.Record) { out = append(out, r) })
		for _, r := range in {
			n.Map(r, em)
		}
		return out, nil
	case dataflow.UnionOp:
		var out []record.Record
		for _, in := range n.Inputs {
			recs, err := evalConst(in)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
		return out, nil
	case dataflow.MatchOp:
		l, err := evalConst(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		r, err := evalConst(n.Inputs[1])
		if err != nil {
			return nil, err
		}
		idx := make(map[int64][]record.Record)
		for _, rr := range r {
			k := n.Keys[1](rr)
			idx[k] = append(idx[k], rr)
		}
		var out []record.Record
		em := emitFunc(func(rec record.Record) { out = append(out, rec) })
		for _, lr := range l {
			for _, rr := range idx[n.Keys[0](lr)] {
				n.Match(lr, rr, em)
			}
		}
		return out, nil
	case dataflow.ReduceOp:
		in, err := evalConst(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		groups := make(map[int64][]record.Record)
		for _, r := range in {
			k := n.Keys[0](r)
			groups[k] = append(groups[k], r)
		}
		keys := make([]int64, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var out []record.Record
		em := emitFunc(func(r record.Record) { out = append(out, r) })
		for _, k := range keys {
			n.Reduce(k, groups[k], em)
		}
		return out, nil
	}
	return nil, fmt.Errorf("iterative: cannot evaluate constant subtree at %s %q", n.Contract, n.Name)
}

// microQueue is a partition's FIFO working-set queue (the nonblocking
// queues of Figure 6 in asynchronous mode).
type microQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []record.Record
	closed bool
}

func newMicroQueue() *microQueue {
	q := &microQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *microQueue) push(r record.Record) {
	q.mu.Lock()
	q.items = append(q.items, r)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *microQueue) pop() (record.Record, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return record.Record{}, false
	}
	r := q.items[0]
	q.items = q.items[1:]
	return r, true
}

func (q *microQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// microRun is the shared state of one asynchronous execution.
type microRun struct {
	spec     IncrementalSpec
	cfg      Config
	solution *runtime.SolutionSet
	queues   []*microQueue
	inflight atomic.Int64
	steps    atomic.Int64
	path     microPath
}

func (m *microRun) udf() {
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.UDFInvocations.Add(1)
	}
}

// enqueue routes a new workset element to its owning partition,
// incrementing the in-flight count before the push so the count can never
// reach zero while work remains.
func (m *microRun) enqueue(r record.Record) {
	part := record.PartitionOf(m.spec.WorksetKey(r), len(m.queues))
	m.inflight.Add(1)
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.WorksetElements.Add(1)
		m.cfg.Metrics.RecordsShipped.Add(1)
	}
	m.queues[part].push(r)
}

// finish marks one element fully processed; the last one closes all
// queues (termination detected).
func (m *microRun) finish() {
	if m.inflight.Add(-1) == 0 {
		for _, q := range m.queues {
			q.close()
		}
	}
}

// worker drains one partition's queue.
func (m *microRun) worker(part int) {
	for {
		r, ok := m.queues[part].pop()
		if !ok {
			return
		}
		m.steps.Add(1)
		m.processOne(part, r)
		m.finish()
	}
}

// processOne pushes one element through the compiled dynamic path.
func (m *microRun) processOne(part int, r record.Record) {
	// Pre-stages (W -> solution operator).
	recs := []record.Record{r}
	for _, st := range m.path.preStages {
		var next []record.Record
		for _, rr := range recs {
			st.process(part, rr, func(o record.Record) { next = append(next, o) })
		}
		recs = next
		if len(recs) == 0 {
			return
		}
	}
	// Solution update; survivors continue downstream.
	var deltas []record.Record
	for _, rr := range recs {
		m.path.solStage.process(part, rr, func(d record.Record) { deltas = append(deltas, d) })
	}
	if len(deltas) == 0 {
		return
	}
	// Post-stages (D -> new workset elements), then re-route.
	recs = deltas
	for _, st := range m.path.postStages {
		var next []record.Record
		for _, rr := range recs {
			st.process(part, rr, func(o record.Record) { next = append(next, o) })
		}
		recs = next
		if len(recs) == 0 {
			return
		}
	}
	for _, rr := range recs {
		m.enqueue(rr)
	}
}

// RunMicrostep executes an incremental iteration asynchronously in
// microsteps. The spec must satisfy the §5.2 conditions (ValidateMicrostep
// is applied first).
func RunMicrostep(spec IncrementalSpec, initialSolution, initialWorkset []record.Record, cfg Config) (*IncrementalResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	// Validate before building the solution set: an inadmissible spec
	// must not pay the O(S) init — or, under a memory budget, leave
	// orphaned spill files behind.
	if _, err := ValidateMicrostep(spec); err != nil {
		return nil, err
	}
	sol := cfg.newSolutionSet(spec.SolutionKey, spec.Comparator)
	sol.Init(initialSolution)
	return runMicrostepOn(spec, sol, initialWorkset, cfg)
}

// ResumeMicrostep continues an incremental iteration asynchronously over
// an existing resident solution set, processing only the given working
// set — the microstep counterpart of ResumeIncremental, and the warm
// handoff RunAuto uses when it switches a run from supersteps to
// microsteps: the solution state built so far re-enters as-is, nothing is
// rebuilt. `existing` is mutated in place and returned in the result's
// Set field; its partition count must match cfg.Parallelism.
func ResumeMicrostep(spec IncrementalSpec, existing *runtime.SolutionSet, workset []record.Record, cfg Config) (*IncrementalResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if existing == nil {
		return nil, fmt.Errorf("iterative: ResumeMicrostep needs an existing solution set (use RunMicrostep for cold starts)")
	}
	if existing.Parallelism() != cfg.Parallelism {
		return nil, fmt.Errorf("iterative: adopted solution set has %d partitions, config wants %d",
			existing.Parallelism(), cfg.Parallelism)
	}
	return runMicrostepOn(spec, existing, workset, cfg)
}

// runMicrostepOn is the asynchronous execution core over an
// already-populated solution set.
func runMicrostepOn(spec IncrementalSpec, sol *runtime.SolutionSet, initialWorkset []record.Record, cfg Config) (*IncrementalResult, error) {
	path, err := ValidateMicrostep(spec)
	if err != nil {
		return nil, err
	}

	m := &microRun{spec: spec, cfg: cfg}
	m.solution = sol
	m.queues = make([]*microQueue, cfg.Parallelism)
	for i := range m.queues {
		m.queues[i] = newMicroQueue()
	}

	// Compile stages, materializing constant join inputs partition-wise.
	pre := true
	for _, n := range path {
		switch n.Contract {
		case dataflow.MapOp:
			st := stageMap{fn: n.Map, mi: m}
			if pre {
				m.path.preStages = append(m.path.preStages, st)
			} else {
				m.path.postStages = append(m.path.postStages, st)
			}
		case dataflow.SolutionJoin:
			m.path.solStage = &stageSolution{fn: n.SolJoin, key: n.Keys[0], mi: m}
			pre = false
		case dataflow.MatchOp:
			dynIdx := 0
			for i, in := range n.Inputs {
				if containsNode(path, in) || in == spec.Workset {
					dynIdx = i
				}
			}
			constIdx := 1 - dynIdx
			constRecs, err := evalConst(n.Inputs[constIdx])
			if err != nil {
				return nil, err
			}
			tables := make([]map[int64][]record.Record, cfg.Parallelism)
			for i := range tables {
				tables[i] = make(map[int64][]record.Record)
			}
			ck := n.Keys[constIdx]
			for _, r := range constRecs {
				k := ck(r)
				p := record.PartitionOf(k, cfg.Parallelism)
				tables[p][k] = append(tables[p][k], r)
			}
			st := stageJoin{fn: n.Match, dynKey: n.Keys[dynIdx], dynSide: dynIdx, tables: tables, mi: m}
			if pre {
				m.path.preStages = append(m.path.preStages, st)
			} else {
				m.path.postStages = append(m.path.postStages, st)
			}
		case dataflow.Sink:
			// The workset sink terminates the compiled path.
		default:
			return nil, fmt.Errorf("iterative: microstep cannot compile %s %q", n.Contract, n.Name)
		}
	}
	if m.path.solStage == nil {
		return nil, fmt.Errorf("iterative: no solution operator compiled")
	}

	// An empty workset converges without spawning anything.
	if len(initialWorkset) == 0 {
		return &IncrementalResult{Solution: m.solution.Snapshot(), Supersteps: 0, Set: m.solution}, nil
	}

	// The whole asynchronous drain is one step of the shared driver loop:
	// there are no barriers inside it, so the run "converges" in a single
	// driver step and the microstep engine supplies no per-superstep cost
	// or trace inputs (its trace is wall-clock sampled in drain instead).
	out := &IncrementalResult{Set: m.solution}
	d := &driver{cfg: cfg, policy: &microPolicy{run: m, workset: initialWorkset, out: out}, maxSteps: 1}
	if _, err := d.run(); err != nil {
		return nil, err
	}
	out.Solution = m.solution.Snapshot()
	return out, nil
}

// drain seeds the queues and runs one worker per partition until the
// in-flight count hits zero — the asynchronous execution body.
func (m *microRun) drain(initialWorkset []record.Record, out *IncrementalResult) {
	cfg := m.cfg
	for _, r := range initialWorkset {
		m.enqueue(r)
	}

	// Optional progress sampling: without supersteps there is no natural
	// iteration boundary, so the trace samples the work counters on a
	// fixed wall-clock cadence instead.
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	if cfg.CollectTrace && cfg.Metrics != nil {
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			prev := cfg.Metrics.Snapshot()
			last := time.Now()
			i := 0
			for {
				select {
				case <-stopSampler:
					return
				case <-tick.C:
					cur := cfg.Metrics.Snapshot()
					now := time.Now()
					out.Trace.Add(metrics.IterationStat{
						Iteration: i, Duration: now.Sub(last), Work: cur.Sub(prev)})
					prev, last = cur, now
					i++
				}
			}
		}()
	} else {
		close(samplerDone)
	}

	// Microstep execution is already session-shaped: one partition-pinned
	// worker per queue for the whole run, with no superstep re-setup.
	if cfg.Metrics != nil {
		cfg.Metrics.WorkersSpawned.Add(int64(cfg.Parallelism))
	}
	var wg sync.WaitGroup
	for p := 0; p < cfg.Parallelism; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			m.worker(p)
		}(p)
	}
	wg.Wait()
	close(stopSampler)
	<-samplerDone

	out.Supersteps = 1
	out.Microsteps = m.steps.Load()
}

func containsNode(path []*dataflow.Node, n *dataflow.Node) bool {
	for _, p := range path {
		if p == n {
			return true
		}
	}
	return false
}
