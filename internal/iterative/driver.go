package iterative

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// This file is the single superstep driver every engine runs on. The
// paper's point is that bulk and incremental iterations are one dataflow
// abstraction differing only in step semantics; the code says the same
// thing structurally: the full superstep lifecycle — the loop itself,
// convergence, the re-optimize decision with its backoff and plan cache,
// calibrator feedback, checkpoint hooks, and the obs histogram/span
// recording — lives here exactly once, and the engines (bulk full
// recompute, incremental workset ∪̇ merge, microstep per-element
// dispatch) are small EnginePolicy values supplying only their step
// semantics and cost inputs. RunBulk, RunIncremental, RunMicrostep, the
// Resume*/Restore* entry points, RunAuto's monitored run, Fixpoint (and
// through it internal/live), and internal/distrib's coordinator all
// drive this loop rather than keeping private copies of it.

// stepOutcome is what one EnginePolicy superstep reports back to the
// driver core.
type stepOutcome struct {
	// next is the local next-workset cardinality. In a coordinated
	// (distributed) run the driver converts it to the global count
	// through the Barrier before acting on it.
	next int
	// done is engine-declared termination independent of the workset:
	// bulk's criterion sink fell silent, its convergence callback fired,
	// or its fixed pass count was reached.
	done bool
	// compute is the superstep's compute wall time (the session run,
	// excluding the ∪̇ merge), recorded into the superstep-duration
	// histogram. Zero skips the sample — microstep execution has no
	// barriers to time.
	compute time.Duration
}

// EnginePolicy supplies one engine's step semantics to the driver. The
// methods are unexported: engines live in this package; the driver calls
// them in a fixed lifecycle order (step → checkpoint → feed).
type EnginePolicy interface {
	// label names the engine on per-superstep trace stats ("" = plain).
	label() string
	// step executes one superstep. absStep is the absolute step index —
	// resident engines (Fixpoint) number supersteps continuously across
	// Run calls, so it is the trace/span step, while checkpoint cadence
	// uses the run-relative index.
	step(absStep int) (stepOutcome, error)
	// checkpoint persists engine state after run-relative step, if due.
	checkpoint(step int) error
	// feed installs the produced workset for the next superstep; called
	// only when the run continues, after any plan swap (placeholders
	// live on the executor, so they survive session swaps).
	feed()
}

// replanner is the optional EnginePolicy capability of an engine whose
// physical plan can be re-optimized mid-run (the incremental engine).
type replanner interface {
	// reoptimizeWanted reports whether the spec asked for mid-run
	// re-optimization.
	reoptimizeWanted() bool
	// replan plans for the collapsed workset estimate. useCache routes
	// through the shared plan cache; hit reports a cache hit. A
	// coordinated run plans fresh instead, so every process derives the
	// identical plan from the identical estimate.
	replan(est int64, cache *optimizer.PlanCache, useCache bool) (phys *optimizer.PhysPlan, hit bool, err error)
	// swap installs a re-optimized plan: invalidate the loop-invariant
	// caches, close the old session, open a new one (rebinding the
	// transport's routing state in distributed runs).
	swap(phys *optimizer.PhysPlan) error
}

// Barrier coordinates the driver's supersteps across the processes of a
// distributed run. Release lets every peer start the step — it must be
// called before the local step runs, because the exchanges interlock:
// every process's consumers wait on every process's producers. Collect
// folds the local next-workset count into the global one; only the
// global count decides convergence, since a process's empty workset can
// refill entirely from its peers' shipped records.
type Barrier interface {
	Release(step int) error
	Collect(step, localNext int) (globalNext int, err error)
}

// DriveHooks couples a Fixpoint run to an external coordinator: the
// barrier that globalizes convergence, and the epoch hook that announces
// a decided re-optimization to the peers before the local session swaps.
type DriveHooks struct {
	// Barrier, if non-nil, coordinates each superstep across processes.
	Barrier Barrier
	// OnEpoch, if non-nil, is called when the driver has decided a
	// re-optimization and planned phys for the global workset estimate
	// est: broadcast the new plan epoch, wait until every peer has
	// re-planned and swapped, and return nil — only then does the local
	// session swap and the next superstep start. A non-nil OnEpoch also
	// bypasses the plan cache, so peers re-planning from the shipped
	// estimate derive the byte-identical plan.
	OnEpoch func(epoch int, est int64, phys *optimizer.PhysPlan) error
}

// driver owns one run's superstep lifecycle. Exactly one for loop in
// this package drives supersteps: the one in run.
type driver struct {
	cfg    Config
	policy EnginePolicy

	maxSteps  int
	traceBase int // absolute index of this run's first superstep

	// worksetDriven runs convergence as "the (global) workset drained";
	// false for bulk, whose policy declares done itself.
	worksetDriven bool

	// calTasks is the calibration feature (logical plan tasks per
	// superstep) the engine supplies; 0 disables calibrator feedback.
	calTasks int

	// reopt enables mid-run re-optimization when non-nil and the policy
	// is a replanner that wants it.
	reopt *reoptState
	hooks DriveHooks

	// preStep/postStep/switchWhen are RunAuto's monitoring hooks: cost
	// prediction before the step, planned-vs-observed after it, and the
	// engine-crossover test that ends the run with switched=true.
	preStep    func(step int)
	postStep   func(step, next int, work metrics.Snapshot, dur time.Duration)
	switchWhen func(step, next int) bool

	collect bool
	trace   *metrics.Trace

	// Outcomes.
	steps    int
	epochs   int
	switched bool
}

// run drives supersteps to convergence, a mid-run engine switch, or the
// step budget. It returns whether the run converged; budget exhaustion
// returns (false, nil) and the adapter wraps ErrNoProgress.
func (d *driver) run() (converged bool, err error) {
	rp, _ := d.policy.(replanner)
	for step := 0; step < d.maxSteps; step++ {
		if d.hooks.Barrier != nil {
			if err := d.hooks.Barrier.Release(step); err != nil {
				return false, err
			}
		}
		if d.preStep != nil {
			d.preStep(step)
		}
		start := time.Now()
		var before metrics.Snapshot
		if d.cfg.Metrics != nil {
			before = d.cfg.Metrics.Snapshot()
		}

		out, err := d.policy.step(d.traceBase + step)
		if err != nil {
			return false, err
		}
		d.steps = step + 1
		if out.compute > 0 {
			d.cfg.observeSuperstep(out.compute)
		}
		dur := time.Since(start)
		var work metrics.Snapshot
		if d.cfg.Metrics != nil {
			work = d.cfg.Metrics.Snapshot().Sub(before)
			if d.cfg.Calibrator != nil && d.calTasks > 0 {
				// The wall time includes the ∪̇ merge — the observed cost
				// of a superstep is compute plus state maintenance.
				d.cfg.Calibrator.ObserveSuperstep(work, d.calTasks, dur)
			}
		}

		next := out.next
		if d.hooks.Barrier != nil {
			if next, err = d.hooks.Barrier.Collect(step, out.next); err != nil {
				return false, err
			}
		}
		if d.postStep != nil {
			d.postStep(step, next, work, dur)
		}
		if d.collect {
			d.trace.Add(metrics.IterationStat{
				Iteration: step, Duration: dur, Work: work, Engine: d.policy.label(),
			})
		}
		if err := d.policy.checkpoint(step); err != nil {
			return false, err
		}
		if out.done || (d.worksetDriven && next == 0) {
			return true, nil
		}
		if d.switchWhen != nil && d.switchWhen(step, next) {
			d.switched = true
			return false, nil
		}
		if rp != nil && d.reopt != nil {
			if err := d.maybeReoptimize(rp, step, next); err != nil {
				return false, err
			}
		}
		d.policy.feed()
	}
	return false, nil
}

// reoptimizeBackoffSteps is how many supersteps a failed re-optimization
// suppresses further attempts for: the same collapsed workset would
// otherwise retry — and fail — every superstep until convergence.
const reoptimizeBackoffSteps = 8

// reoptState carries the adaptive re-planning state of one running
// iteration: the estimate the current plan was costed with, the plan
// cache its re-optimizations share (memoizing the key registry and whole
// plans by fingerprint), the plan the session is executing, and the
// backoff window after a failure. It persists across a Fixpoint's Run
// calls, so repeated maintenance batches that collapse the same way hit
// the cache instead of re-planning.
type reoptState struct {
	cache *optimizer.PlanCache
	// cur is the plan the live session executes; a cache hit returning
	// cur is a pure no-op (no session swap, caches stay warm).
	cur        *optimizer.PhysPlan
	plannedEst int64
	// backoffUntil suppresses re-optimization attempts for supersteps
	// below it after a failure.
	backoffUntil int
}

func newReoptState(cur *optimizer.PhysPlan, plannedEst int64) *reoptState {
	return &reoptState{cache: optimizer.NewPlanCache(), cur: cur, plannedEst: plannedEst}
}

// maybeReoptimize is the adaptive re-planning decision, owned by the
// driver: when the engine wants re-optimization and the working set has
// collapsed far below the size the current plan was costed with, Δ is
// re-planned for the remaining supersteps and a fresh session swapped
// in. Single-process runs re-plan through the plan cache — a hit skips
// planning entirely, and a hit on the very plan already executing skips
// the session swap too. Coordinated runs (OnEpoch set) plan fresh from
// the exact global estimate and announce the new plan epoch to every
// peer before swapping locally. Failures are surfaced
// (ReoptimizeFailures, ReoptimizeBackoffs, a trace event) and suppress
// further attempts for reoptimizeBackoffSteps supersteps.
func (d *driver) maybeReoptimize(rp replanner, step, next int) error {
	st := d.reopt
	if !rp.reoptimizeWanted() || int64(next)*16 >= st.plannedEst || step < st.backoffUntil {
		return nil
	}
	useCache := d.hooks.OnEpoch == nil
	newPhys, hit, rerr := rp.replan(int64(next), st.cache, useCache)
	if rerr != nil {
		if d.cfg.Metrics != nil {
			d.cfg.Metrics.ReoptimizeFailures.Add(1)
			d.cfg.Metrics.ReoptimizeBackoffs.Add(1)
		}
		st.backoffUntil = step + 1 + reoptimizeBackoffSteps
		d.trace.AddEvent(step, fmt.Sprintf("reoptimize failed (backing off %d supersteps): %v",
			reoptimizeBackoffSteps, rerr))
		return nil
	}
	st.plannedEst = int64(next)
	if newPhys == st.cur {
		return nil
	}
	if d.hooks.OnEpoch != nil {
		if err := d.hooks.OnEpoch(d.epochs+1, int64(next), newPhys); err != nil {
			return fmt.Errorf("iterative: plan epoch %d: %w", d.epochs+1, err)
		}
	}
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.Reoptimizations.Add(1)
	}
	if hit {
		d.trace.AddEvent(step, fmt.Sprintf("reoptimized for workset %d (plan cache hit)", next))
	} else {
		d.trace.AddEvent(step, fmt.Sprintf("reoptimized for workset %d", next))
	}
	if err := rp.swap(newPhys); err != nil {
		return err
	}
	st.cur = newPhys
	d.epochs++
	return nil
}

// ---------------------------------------------------------------------
// Incremental engine: one superstep evaluates Δ against (S, W), merges D
// into S with ∪̇, and produces the next working set. Shared by
// RunIncremental, Fixpoint (live maintenance, ResumeIncremental), the
// distributed job, and RunAuto's monitored incremental phase.

type incEngine struct {
	spec     *IncrementalSpec
	cfg      Config
	expected int
	exec     *runtime.Executor
	tr       runtime.Transport
	sess     *runtime.Session
	// nextParts is the last step's produced workset, partition-aligned;
	// feed installs it, checkpoint persists it.
	nextParts [][]record.Record
	// tag labels trace stats (RunAuto sets "incremental"; plain runs "").
	tag string
}

// openIncEngine builds the executor and session for an already-planned
// incremental spec: sol becomes the resident solution set, DirectMerge
// turns on when the Δ flow meets the §5.2 locality conditions (later
// working-set elements then observe earlier updates within a superstep,
// pruning redundant candidates at the source), and the session hosts
// this process's partitions on tr (nil = everything in-process).
func openIncEngine(spec *IncrementalSpec, sol *runtime.SolutionSet, cfg Config, expected int,
	phys *optimizer.PhysPlan, tr runtime.Transport) *incEngine {
	exec := runtime.NewExecutor(cfg.runtimeConfig())
	exec.Solution = sol
	if _, err := ValidateMicrostep(*spec); err == nil {
		exec.DirectMerge = true
	}
	return &incEngine{
		spec: spec, cfg: cfg, expected: expected,
		exec: exec, tr: tr, sess: exec.OpenSessionOn(phys, tr),
	}
}

// seed installs the initial working set, partitioned on the workset key.
func (en *incEngine) seed(w []record.Record) {
	en.exec.SetPlaceholder(en.spec.Workset.ID, w, en.spec.WorksetKey, en.cfg.Parallelism)
	if en.cfg.Metrics != nil {
		en.cfg.Metrics.WorksetElements.Add(int64(len(w)))
	}
}

func (en *incEngine) label() string { return en.tag }

func (en *incEngine) step(absStep int) (stepOutcome, error) {
	start := time.Now()
	// Keeps span numbering continuous across re-plan session swaps and
	// a Fixpoint's successive maintenance runs.
	en.sess.SetTraceStep(absStep)
	res, err := en.sess.Run()
	if err != nil {
		return stepOutcome{}, err
	}
	compute := time.Since(start)

	// S ∪̇ D — applied after the superstep so that every access inside
	// the superstep observed S_i (§5.3: "we cache the records in the
	// delta set D until the end of the superstep").
	mergeStart := time.Now()
	en.exec.Solution.MergeDelta(res.Records(en.spec.DeltaSink.ID))
	en.cfg.noteMerge(absStep, mergeStart)

	en.nextParts = res[en.spec.WorksetSink.ID]
	count := 0
	for _, p := range en.nextParts {
		count += len(p)
	}
	if en.cfg.Metrics != nil {
		en.cfg.Metrics.WorksetElements.Add(int64(count))
	}
	return stepOutcome{next: count, compute: compute}, nil
}

func (en *incEngine) checkpoint(step int) error {
	return checkpointIfDue(en.spec, step, en.exec.Solution, en.nextParts)
}

// feed re-enters the produced workset: the sink is partition-pinned on
// the workset key, so its partitions re-enter directly — the paper's
// partitioned queues.
func (en *incEngine) feed() {
	en.exec.SetPlaceholderParts(en.spec.Workset.ID, en.nextParts)
}

func (en *incEngine) reoptimizeWanted() bool { return en.spec.Reoptimize }

// replan plans Δ for a collapsed workset estimate, through the plan
// cache (counting PlanCacheHits on a hit) or fresh when a coordinated
// epoch needs every process to derive the identical plan from est.
func (en *incEngine) replan(est int64, cache *optimizer.PlanCache, useCache bool) (*optimizer.PhysPlan, bool, error) {
	saved := en.spec.Workset.EstRecords
	if est > 0 {
		en.spec.Workset.EstRecords = est
	}
	defer func() { en.spec.Workset.EstRecords = saved }()
	opts := incrementalOptions(en.spec, en.cfg, en.expected, true)
	start := time.Now()
	var (
		phys *optimizer.PhysPlan
		hit  bool
		err  error
	)
	if useCache {
		phys, hit, err = cache.Optimize(en.spec.Plan, opts, est)
	} else {
		phys, err = optimizer.Optimize(en.spec.Plan, opts)
	}
	if err != nil {
		return nil, false, err
	}
	if hit {
		if en.cfg.Metrics != nil {
			en.cfg.Metrics.PlanCacheHits.Add(1)
		}
	} else {
		notePlanned(en.cfg, opts.Planner, phys, time.Since(start))
	}
	return phys, hit, nil
}

// swap installs a re-optimized plan mid-run: the loop-invariant caches
// are dropped (their slots are keyed by the old plan's node IDs), the
// old session closes, the transport's per-edge routing state is rebound
// to the new plan's edge count, and a fresh session opens. The solution
// set and the executor's placeholders survive untouched.
func (en *incEngine) swap(phys *optimizer.PhysPlan) error {
	en.exec.InvalidateCaches()
	en.sess.Close()
	if rb, ok := en.tr.(runtime.Rebinder); ok {
		rb.Rebind(phys.NumEdges)
	}
	en.sess = en.exec.OpenSessionOn(phys, en.tr)
	return nil
}

// close releases the session and the executor's caches; the solution
// set stays readable.
func (en *incEngine) close() {
	en.sess.Close()
	en.exec.Close()
}

// ---------------------------------------------------------------------
// Bulk engine: one step is a full recomputation pass of G over the
// previous partial solution, with the engine's own termination criteria
// (silent criterion sink, driver-side convergence test, fixed count).

type bulkPolicy struct {
	spec      *BulkSpec
	cfg       Config
	exec      *runtime.Executor
	sess      *runtime.Session
	phKey     record.KeyFunc
	prev      []record.Record
	next      []record.Record
	nextParts [][]record.Record
}

func (b *bulkPolicy) label() string { return "" }

func (b *bulkPolicy) step(absStep int) (stepOutcome, error) {
	start := time.Now()
	if b.spec.Unroll && absStep > 0 {
		// Unrolled execution: a new instance of G per pass (§4.2) —
		// drop every loop-invariant cache before re-running. The
		// session detects the generation change and rewires.
		b.exec.InvalidateCaches()
	}
	b.sess.SetTraceStep(absStep)
	res, err := b.sess.Run()
	if err != nil {
		return stepOutcome{}, err
	}
	b.nextParts = res[b.spec.Output.ID]
	next := res.Records(b.spec.Output.ID)

	done := false
	if b.spec.Termination != nil && len(res.Records(b.spec.Termination.ID)) == 0 {
		done = true
	}
	if b.spec.Converged != nil && b.spec.Converged(b.prev, next) {
		done = true
	}
	if b.spec.FixedIterations > 0 && absStep+1 >= b.spec.FixedIterations {
		done = true
	}
	b.prev, b.next = next, next
	return stepOutcome{done: done, compute: time.Since(start)}, nil
}

func (b *bulkPolicy) checkpoint(step int) error {
	if b.spec.CheckpointEvery <= 0 || b.spec.OnCheckpoint == nil || (step+1)%b.spec.CheckpointEvery != 0 {
		return nil
	}
	cp := &Checkpoint{Kind: "bulk", Iteration: step + 1,
		Solution: append([]record.Record(nil), b.next...)}
	if err := b.spec.OnCheckpoint(cp); err != nil {
		return fmt.Errorf("iterative: checkpoint at pass %d: %w", step+1, err)
	}
	return nil
}

// feed closes the loop: O becomes the next I. When the loop-closing
// property grant holds, O's partitions are already laid out correctly
// and re-enter without reshuffling.
func (b *bulkPolicy) feed() {
	if b.phKey != nil {
		b.exec.SetPlaceholderParts(b.spec.Input.ID, b.nextParts)
	} else {
		b.exec.SetPlaceholder(b.spec.Input.ID, b.next, nil, b.cfg.Parallelism)
	}
}

// ---------------------------------------------------------------------
// Microstep engine: the whole asynchronous drain is one driver step —
// there are no barriers inside it, so the run converges in a single
// pass (next=0 after the in-flight count hits zero) and the engine
// reports no compute sample into the superstep histogram.

type microPolicy struct {
	run     *microRun
	workset []record.Record
	out     *IncrementalResult
}

func (mp *microPolicy) label() string { return "microstep" }

func (mp *microPolicy) step(absStep int) (stepOutcome, error) {
	mp.run.drain(mp.workset, mp.out)
	return stepOutcome{done: true}, nil
}

func (mp *microPolicy) checkpoint(int) error { return nil }
func (mp *microPolicy) feed()                {}
