package iterative

import (
	"strings"
	"testing"
)

// TestConfigRejectsNegativeKnobs pins the normalize() contract at every
// public entry point: a negative knob is a caller bug and must surface as
// an error immediately — not be silently clamped — and the same Config
// must be rejected identically no matter which engine it enters through.
func TestConfigRejectsNegativeKnobs(t *testing.T) {
	bulk, initial := doubler()
	bulk.FixedIterations = 1
	inc, s0, w0 := incrSpec(8)

	bad := []struct {
		name string
		cfg  Config
		want string
	}{
		{"parallelism", Config{Parallelism: -1}, "negative Parallelism"},
		{"batch", Config{BatchSize: -8}, "negative BatchSize"},
		{"budget", Config{SolutionMemoryBudget: -1}, "negative SolutionMemoryBudget"},
		{"hosts", Config{Hosts: -2}, "negative Hosts"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			entries := []struct {
				name string
				run  func(cfg Config) error
			}{
				{"RunBulk", func(cfg Config) error {
					_, err := RunBulk(bulk, initial, cfg)
					return err
				}},
				{"RunIncremental", func(cfg Config) error {
					_, err := RunIncremental(inc, s0, w0, cfg)
					return err
				}},
				{"RunMicrostep", func(cfg Config) error {
					_, err := RunMicrostep(inc, s0, w0, cfg)
					return err
				}},
				{"RunAuto", func(cfg Config) error {
					_, err := RunAuto(AutoSpec{Incremental: inc}, s0, w0, cfg)
					return err
				}},
				{"PlanIncremental", func(cfg Config) error {
					_, err := PlanIncremental(inc, cfg, 0)
					return err
				}},
				{"OpenFixpoint", func(cfg Config) error {
					_, err := OpenFixpoint(inc, nil, cfg)
					return err
				}},
			}
			for _, e := range entries {
				err := e.run(tc.cfg)
				if err == nil {
					t.Fatalf("%s accepted %+v", e.name, tc.cfg)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("%s: error %q, want it to mention %q", e.name, err, tc.want)
				}
			}
		})
	}
}

// TestConfigZeroMeansDefault pins the other half of the contract: the zero
// Config is valid everywhere and behaves exactly as Parallelism 1.
func TestConfigZeroMeansDefault(t *testing.T) {
	spec, s0, w0 := incrSpec(8)
	res, err := RunIncremental(spec, s0, w0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec2, s02, w02 := incrSpec(8)
	explicit, err := RunIncremental(spec2, s02, w02, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) != len(explicit.Solution) || res.Supersteps != explicit.Supersteps {
		t.Fatalf("zero config ran differently from Parallelism 1: %d/%d records, %d/%d supersteps",
			len(res.Solution), len(explicit.Solution), res.Supersteps, explicit.Supersteps)
	}
}
