package iterative

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/record"
)

func TestCheckpointSerializationRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Kind:      "incremental",
		Iteration: 17,
		Solution:  []record.Record{{A: 1, B: 2, X: 3.5, Tag: 4}, {A: -1}},
		Workset:   []record.Record{{A: 9}},
	}
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != cp.Kind || back.Iteration != cp.Iteration {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Solution) != 2 || !back.Solution[0].Equal(cp.Solution[0]) {
		t.Errorf("solution mismatch: %v", back.Solution)
	}
	if len(back.Workset) != 1 || back.Workset[0].A != 9 {
		t.Errorf("workset mismatch: %v", back.Workset)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not a checkpoint")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader([]byte{0x57, 0x4c, 0x46, 0x53})); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}

func TestCheckpointRejectsOversizeKind(t *testing.T) {
	// A corrupt kind-length must be rejected before any allocation
	// depends on it.
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, checkpointMagic)
	buf = binary.LittleEndian.AppendUint32(buf, checkpointVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 1<<30)
	if _, err := ReadCheckpoint(bytes.NewReader(buf)); err == nil ||
		!strings.Contains(err.Error(), "kind length") {
		t.Fatalf("oversize kind length: %v", err)
	}
}

func TestCheckpointTruncatedSection(t *testing.T) {
	cp := &Checkpoint{Kind: "incremental", Iteration: 1,
		Solution: manyRecords(3 * checkpointChunk / 2), Workset: []record.Record{{A: 1}}}
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	back, err := ReadCheckpoint(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Solution) != len(cp.Solution) || len(back.Workset) != 1 {
		t.Fatalf("round trip lost records: %d/%d", len(back.Solution), len(back.Workset))
	}
	// Every proper prefix must error (torn checkpoint), never panic or
	// silently return partial state.
	for _, cut := range []int{len(full) - 1, len(full) / 2, 30, 21} {
		if _, err := ReadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
	}
}

// TestCheckpointStreamingWrite checks the chunked encoding: a checkpoint
// larger than one frame must produce multiple bounded frames, and the
// writer must never hold more than ~one frame of encoded bytes.
func TestCheckpointStreamingWrite(t *testing.T) {
	n := 3*checkpointChunk + 17
	cp := &Checkpoint{Kind: "bulk", Iteration: 2, Solution: manyRecords(n)}
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Solution) != n {
		t.Fatalf("solution: %d records, want %d", len(back.Solution), n)
	}
	for i, r := range back.Solution {
		if !r.Equal(cp.Solution[i]) {
			t.Fatalf("record %d: %v != %v", i, r, cp.Solution[i])
		}
	}
}

func manyRecords(n int) []record.Record {
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Record{A: int64(i), B: int64(i % 97), X: float64(i) / 3, Tag: uint8(i)}
	}
	return out
}

// FuzzCheckpointRead feeds arbitrary bytes through the checkpoint
// decoder: it must never panic, and anything it accepts must round-trip.
func FuzzCheckpointRead(f *testing.F) {
	seed := func(cp *Checkpoint) []byte {
		var buf bytes.Buffer
		cp.WriteTo(&buf)
		return buf.Bytes()
	}
	f.Add(seed(&Checkpoint{Kind: "bulk", Iteration: 1, Solution: manyRecords(5)}))
	f.Add(seed(&Checkpoint{Kind: "incremental", Solution: manyRecords(2), Workset: manyRecords(3)})[:40])
	f.Add([]byte{0x57, 0x4c, 0x46, 0x53, 2, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := cp.WriteTo(&buf); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		back, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		if len(back.Solution) != len(cp.Solution) || len(back.Workset) != len(cp.Workset) {
			t.Fatal("round trip changed record counts")
		}
	})
}

func TestWriteFileDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileDurable(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// A failing writer must leave neither the target nor the temp file.
	bad := filepath.Join(dir, "bad.bin")
	if err := WriteFileDurable(bad, func(io.Writer) error {
		return io.ErrClosedPipe
	}); err == nil {
		t.Fatal("writer error swallowed")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed write left target: %v", err)
	}
	if _, err := os.Stat(bad + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("failed write left temp: %v", err)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.bin")
	cp := &Checkpoint{Kind: "bulk", Iteration: 3, Solution: []record.Record{{A: 42}}}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Iteration != 3 || back.Solution[0].A != 42 {
		t.Fatalf("file round trip lost data: %+v", back)
	}
}

func TestBulkCheckpointAndResume(t *testing.T) {
	// A 10-pass doubler checkpointed every 3 passes, resumed after a
	// simulated failure, must equal an uninterrupted run.
	build := func() (BulkSpec, []record.Record) {
		spec, init := doubler()
		spec.FixedIterations = 10
		return spec, init
	}

	spec, init := build()
	uninterrupted, err := RunBulk(spec, init, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	var last *Checkpoint
	spec2, init2 := build()
	spec2.FixedIterations = 6 // "failure" after pass 6
	spec2.CheckpointEvery = 3
	spec2.OnCheckpoint = func(cp *Checkpoint) error { last = cp; return nil }
	if _, err := RunBulk(spec2, init2, Config{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if last == nil || last.Iteration != 6 {
		t.Fatalf("checkpoint not taken: %+v", last)
	}

	spec3, _ := build()
	resumed, err := ResumeBulk(spec3, last, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iterations != 10 {
		t.Errorf("resumed total iterations = %d, want 10", resumed.Iterations)
	}
	sum := func(rs []record.Record) int64 {
		var s int64
		for _, r := range rs {
			s += r.A
		}
		return s
	}
	if sum(resumed.Solution) != sum(uninterrupted.Solution) {
		t.Errorf("resumed %d != uninterrupted %d", sum(resumed.Solution), sum(uninterrupted.Solution))
	}
}

func TestIncrementalCheckpointAndResumeAfterFailure(t *testing.T) {
	// Ring propagation with a UDF that fails exactly once mid-run; the
	// checkpoint taken before the failure lets the job finish and reach
	// the same fixpoint.
	const n = 24
	var failAt atomic.Int64
	failAt.Store(8) // supersteps before the injected crash

	build := func() (IncrementalSpec, []record.Record, []record.Record) {
		spec, s0, w0 := incrSpec(n)
		// Wrap the solution join with a failure injector.
		for _, node := range spec.Plan.Nodes() {
			if node.Contract == dataflow.SolutionJoin {
				orig := node.SolJoin
				node.SolJoin = func(c, s record.Record, found bool, out dataflow.Emitter) {
					if failAt.Load() == 0 {
						panic("injected failure")
					}
					orig(c, s, found, out)
				}
			}
		}
		return spec, s0, w0
	}

	spec, s0, w0 := build()
	spec.CheckpointEvery = 2
	spec.MaxSupersteps = 1000
	var last *Checkpoint
	// The failure countdown ticks at every checkpoint (every 2 supersteps),
	// so the crash lands a few supersteps after the last good snapshot.
	spec.OnCheckpoint = func(cp *Checkpoint) error {
		last = cp
		failAt.Add(-2)
		return nil
	}
	_, err := RunIncremental(spec, s0, w0, Config{Parallelism: 2})
	if err == nil {
		t.Fatal("injected failure did not surface")
	}
	if last == nil {
		t.Fatal("no checkpoint before the failure")
	}

	// Recovery: disable the injector and resume.
	failAt.Store(1 << 30)
	spec2, _, _ := build()
	res, err := RestoreIncremental(spec2, last, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Solution {
		if r.B != 0 {
			t.Fatalf("vertex %d did not converge after resume (got %d)", r.A, r.B)
		}
	}
	if res.Supersteps <= last.Iteration {
		t.Errorf("resumed supersteps (%d) should extend the checkpoint (%d)", res.Supersteps, last.Iteration)
	}
}

func TestResumeKindMismatch(t *testing.T) {
	spec, _ := doubler()
	if _, err := ResumeBulk(spec, &Checkpoint{Kind: "incremental"}, Config{}); err == nil {
		t.Error("bulk resume accepted incremental checkpoint")
	}
	ispec, _, _ := incrSpec(4)
	if _, err := RestoreIncremental(ispec, &Checkpoint{Kind: "bulk"}, Config{}); err == nil {
		t.Error("incremental resume accepted bulk checkpoint")
	}
}

func TestResumeBulkAlreadyComplete(t *testing.T) {
	spec, _ := doubler()
	spec.FixedIterations = 5
	cp := &Checkpoint{Kind: "bulk", Iteration: 5, Solution: []record.Record{{A: 99}}}
	res, err := ResumeBulk(spec, cp, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) != 1 || res.Solution[0].A != 99 {
		t.Errorf("completed checkpoint should pass through: %v", res.Solution)
	}
}
