package iterative

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestSingleSuperstepLoop pins the engine-unification invariant: exactly
// one for loop in this package drives supersteps — driver.run — and every
// entry point (bulk, incremental, resumed, driven, auto) goes through it.
// A second superstep loop creeping in means an engine forked off the
// shared driver and its barrier/telemetry/re-optimization semantics can
// silently drift; this test makes that a compile-adjacent failure instead
// of a code-review hope.
func TestSingleSuperstepLoop(t *testing.T) {
	loop := regexp.MustCompile(`for\s+step\s*:=\s*0\s*;\s*step\s*<`)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]int{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Clean(name))
		if err != nil {
			t.Fatal(err)
		}
		if n := len(loop.FindAll(src, -1)); n > 0 {
			found[name] = n
		}
	}
	if len(found) != 1 || found["driver.go"] != 1 {
		t.Fatalf("superstep loops per file = %v, want exactly one, in driver.go", found)
	}
}
