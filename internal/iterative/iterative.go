// Package iterative implements the paper's contribution: iteration
// operators embedded in parallel dataflows.
//
//   - Bulk iterations (§4): an operator (G, I, O, T) whose step function G
//     is a dataflow; executed with the feedback-channel strategy — the
//     executor persists across passes, loop-invariant inputs stay cached,
//     and only the dynamic data path re-runs.
//   - Incremental iterations (§5): an operator (Δ, S0, W0) with a
//     partitioned, indexed solution set S, a working set W, and a step
//     function Δ producing the delta set D and the next working set;
//     S ∪̇ D applies point updates between supersteps.
//   - Microstep iterations (§5.2): incremental iterations whose Δ meets
//     the record-at-a-time/locality conditions execute asynchronously,
//     one working-set element at a time, without superstep barriers.
//   - Adaptive execution (§4.3 extended): an AutoSpec bundles the
//     incremental form with an optional equivalent bulk iteration, and
//     RunAuto costs all three engines with the optimizer's cost model,
//     runs the cheapest, and monitors observed per-superstep
//     cardinalities — switching incremental → microstep mid-run via the
//     ResumeMicrostep warm handoff once the workset collapses below the
//     dispatch-overhead crossover. A shared optimizer.Calibrator fits
//     the cost weights from measured supersteps so repeated runs (live
//     views, harness sweeps) plan with observed constants.
//
// All of these run on one superstep driver (driver.go): a single loop
// owning session lifecycle, convergence, the reoptimize decision with
// backoff and plan cache, calibrator feedback, checkpoint cadence, and
// span recording. An engine contributes only an EnginePolicy (what one
// step computes: bulk = full recompute, incremental = Δ then S ∪̇ D,
// microstep = asynchronous drain), and a deployment contributes only
// DriveHooks: a Barrier that globalizes per-process workset counts and
// an OnEpoch callback that coordinates plan swaps across processes —
// nil hooks mean single-process, where local counts are global. The
// public Run*/Resume* functions and the resident Fixpoint are thin
// adapters over that core.
package iterative

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// Config controls iteration execution.
type Config struct {
	// Parallelism is the number of partitions.
	Parallelism int
	// BatchSize is the exchange batch size (0 = default).
	BatchSize int
	// Metrics receives work counters (optional; required for traces).
	Metrics *metrics.Counters
	// CollectTrace records per-iteration statistics.
	CollectTrace bool
	// SolutionBackend selects the solution-set index implementation for
	// incremental/microstep iterations: runtime.SolutionCompact (the
	// default), runtime.SolutionMap (the boxed baseline), or
	// runtime.SolutionSpill (out-of-core under SolutionMemoryBudget).
	SolutionBackend runtime.SolutionBackendKind
	// SolutionMemoryBudget bounds the resident bytes of the solution set
	// (serialized-form estimate). A positive budget selects the spillable
	// backend: cold partitions are evicted to disk through the batch codec
	// and reloaded on access, with SolutionSpills/SolutionReloads counting
	// the traffic (§4.3's gradual spilling applied to iteration state).
	SolutionMemoryBudget int64
	// Calibrator, if set, receives every measured superstep (work
	// counters + wall time) from RunAuto and supplies fitted cost weights
	// back to its engine selection. Sharing one calibrator across runs —
	// live views, harness sweeps — makes repeated runs plan with observed
	// rather than guessed constants. Calibration needs Metrics set (the
	// work counters are the regression features).
	Calibrator *optimizer.Calibrator
	// EngineWeights, if set, pins the cost weights RunAuto selects and
	// switches engines with, overriding both Calibrator and the built-in
	// defaults — for tests and experiments that need a deterministic
	// crossover.
	EngineWeights *metrics.CalibratedWeights
	// Planner selects the plan optimizer. The default (PlannerAuto) plans
	// the initial run with the cost-based enumerator and mid-run
	// re-optimizations with the greedy zero-statistics fast path — there,
	// planning latency sits on the superstep path. PlannerCost or
	// PlannerGreedy pin one planner for both.
	Planner optimizer.PlannerKind
	// DisableFusion turns off the operator-fusion rewrite. By default
	// chains of adjacent Map operators on forward edges collapse into
	// single fused nodes executed record-at-a-time.
	DisableFusion bool
	// Hosts is the number of processes the plan's partitions will be
	// spread over (distributed sessions). 0 or 1 plans for the default
	// single-process topology. Every process of a distributed session
	// must plan with the same Hosts value to produce identical plans.
	Hosts int
	// Obs, if set, is the telemetry registry this run reports into:
	// superstep/merge/plan latency histograms, and phase spans recorded
	// into its ring (see internal/obs). Nil disables all of it — the
	// instrumented paths cost one branch each.
	Obs *obs.Registry
	// TraceID groups this run's spans across processes; mint one with
	// obs.NewTraceID, or adopt a coordinator's. Only meaningful with Obs.
	TraceID obs.TraceID
	// TraceLabel names the run on its spans (a job or view name).
	TraceLabel string
	// Host is this process's host ID stamped on spans (0 single-process).
	Host int
	// WireCompression asks a distributed session's transport to flate-
	// compress data-plane record frames on the wire (see
	// runtime.TCPTransport.SetCompression). A per-sender choice: hosts
	// with different settings interoperate, and the setting is ignored by
	// single-process runs. RemoteBytesCompressed counts the wire bytes
	// that actually traveled compressed.
	WireCompression bool
}

// normalize validates and default-fills a Config exactly once, at every
// public Run*/Resume*/Plan*/Open* entry point: negative knobs are
// rejected (they are always caller bugs, and silently clamping them hid
// the bug), zero means "use the default".
func (c Config) normalize() (Config, error) {
	if c.Parallelism < 0 {
		return c, fmt.Errorf("iterative: negative Parallelism %d", c.Parallelism)
	}
	if c.BatchSize < 0 {
		return c, fmt.Errorf("iterative: negative BatchSize %d", c.BatchSize)
	}
	if c.SolutionMemoryBudget < 0 {
		return c, fmt.Errorf("iterative: negative SolutionMemoryBudget %d", c.SolutionMemoryBudget)
	}
	if c.Hosts < 0 {
		return c, fmt.Errorf("iterative: negative Hosts %d", c.Hosts)
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	return c, nil
}

// runtimeConfig builds the executor config, threading telemetry through
// when an Obs registry is attached.
func (c Config) runtimeConfig() runtime.Config {
	rc := runtime.Config{BatchSize: c.BatchSize, Metrics: c.Metrics}
	if c.Obs != nil {
		rc.Trace = c.Obs.Trace()
		rc.TraceID = c.TraceID
		rc.TraceLabel = c.TraceLabel
		rc.Host = c.Host
	}
	return rc
}

// observeSuperstep records one superstep's wall time in the registry's
// superstep-duration histogram.
func (c Config) observeSuperstep(d time.Duration) {
	if c.Obs != nil {
		c.Obs.Histogram("superstep_duration").Observe(d)
	}
}

// noteMerge records the S ∪̇ D merge that followed the given superstep: a
// merge-phase span plus a merge-duration histogram sample.
func (c Config) noteMerge(step int, start time.Time) {
	if c.Obs == nil {
		return
	}
	d := time.Since(start)
	c.Obs.Histogram("merge_duration").Observe(d)
	c.Obs.Trace().RecordSpan(obs.Span{
		Trace: c.TraceID, Host: int32(c.Host), Part: -1, Step: int32(step),
		Phase: obs.PhaseMerge, Start: start.UnixNano(), Dur: int64(d),
		Label: c.TraceLabel,
	})
}

// newSolutionSet builds the solution set the Config asks for.
func (c Config) newSolutionSet(key record.KeyFunc, cmp record.Comparator) *runtime.SolutionSet {
	return runtime.NewSolutionSetWith(c.Parallelism, key, cmp, c.Metrics, runtime.SolutionOptions{
		Backend:      c.SolutionBackend,
		MemoryBudget: c.SolutionMemoryBudget,
	})
}

// ErrNoProgress is returned when an iteration hits its step budget.
var ErrNoProgress = errors.New("iterative: iteration exceeded its superstep budget")

// BulkSpec describes a bulk iteration (G, I, O, T) (§4.1).
type BulkSpec struct {
	// Plan is the step-function dataflow G (including the sinks below).
	Plan *dataflow.Plan
	// Input is the IterationInput placeholder I carrying the previous
	// partial solution into G.
	Input *dataflow.Node
	// Output is the sink O producing the next partial solution.
	Output *dataflow.Node
	// Termination, if non-nil, is the criterion sink T: the iteration
	// continues as long as T emits at least one record and stops when it
	// is silent (e.g. PageRank's "rank moved more than ε" Match, Fig. 3).
	Termination *dataflow.Node
	// Converged, if non-nil, is a driver-side termination criterion
	// comparing consecutive partial solutions.
	Converged func(prev, next []record.Record) bool
	// FixedIterations, if > 0, runs exactly n passes ((G, I, O, n) form).
	FixedIterations int
	// MaxIterations bounds criterion-driven runs (default 1000).
	MaxIterations int
	// ExpectedIterations is the optimizer's cost weight for the dynamic
	// path (default: FixedIterations, else 10).
	ExpectedIterations int
	// JoinHints optionally pins join strategies (see optimizer.JoinHint),
	// used to force a specific Figure-4 plan.
	JoinHints map[int]optimizer.JoinHint
	// CheckpointEvery, if > 0, snapshots the partial solution after every
	// k-th pass (§4.2's recovery logging); OnCheckpoint receives it.
	CheckpointEvery int
	// OnCheckpoint persists a snapshot (e.g. via SaveCheckpoint). A
	// returned error aborts the run.
	OnCheckpoint func(*Checkpoint) error
	// Unroll selects the loop-unrolling execution strategy of §4.2
	// instead of feedback channels: every pass instantiates a fresh copy
	// of G, so no caches persist and the constant data path re-executes
	// each time. Mainly useful to measure what the feedback strategy's
	// caching buys.
	Unroll bool
}

// BulkResult is the outcome of a bulk iteration.
type BulkResult struct {
	// Solution is the final partial solution (contents of O).
	Solution []record.Record
	// Iterations is the number of executed passes.
	Iterations int
	// Trace holds per-iteration stats when Config.CollectTrace is set.
	Trace metrics.Trace
	// Plan is the physical plan that was executed.
	Plan *optimizer.PhysPlan
}

// RunBulk executes a bulk iteration with the feedback-channel strategy:
// one Executor persists across all passes so the constant data path is
// evaluated (and cached) once, while I is re-bound to the previous pass's
// O before every pass (§4.2).
func RunBulk(spec BulkSpec, initial []record.Record, cfg Config) (*BulkResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if spec.Input == nil || spec.Output == nil {
		return nil, fmt.Errorf("iterative: bulk spec needs Input and Output nodes")
	}
	maxIter := spec.MaxIterations
	if spec.FixedIterations > 0 {
		maxIter = spec.FixedIterations
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = spec.FixedIterations
	}
	if expected <= 0 {
		expected = 10
	}
	// Plan with the initial-solution cardinality when the caller gave no
	// estimate — but only for the optimizer call: the node may be shared
	// by later runs of the same spec, which must plan from their own
	// initial statistics, not this run's.
	est := spec.Input.EstRecords
	if est == 0 {
		est = int64(len(initial))
	}
	savedEst := spec.Input.EstRecords
	spec.Input.EstRecords = est
	opts := optimizer.Options{
		Parallelism:        cfg.Parallelism,
		ExpectedIterations: expected,
		Feedback:           map[int]int{spec.Input.ID: spec.Output.ID},
		JoinHints:          spec.JoinHints,
		Planner:            plannerFor(cfg, false),
		Fuse:               !cfg.DisableFusion,
	}
	planStart := time.Now()
	phys, err := optimizer.Optimize(spec.Plan, opts)
	spec.Input.EstRecords = savedEst
	if err != nil {
		return nil, err
	}
	notePlanned(cfg, opts.Planner, phys, time.Since(planStart))

	exec := runtime.NewExecutor(cfg.runtimeConfig())
	defer exec.Close()
	phKey := phys.PlaceholderKey(spec.Input.ID)
	exec.SetPlaceholder(spec.Input.ID, initial, phKey, cfg.Parallelism)

	// One session serves every pass: the partition-pinned workers,
	// exchanges, and batch pool persist until convergence, so only the
	// first pass pays plan-setup costs (§4.2's feedback-channel model at
	// the physical layer).
	sess := exec.OpenSession(phys)
	defer sess.Close()

	out := &BulkResult{Plan: phys}
	b := &bulkPolicy{spec: &spec, cfg: cfg, exec: exec, sess: sess, phKey: phKey, prev: initial}
	d := &driver{
		cfg: cfg, policy: b, maxSteps: maxIter,
		collect: cfg.CollectTrace, trace: &out.Trace,
	}
	converged, err := d.run()
	out.Iterations = d.steps
	out.Solution = b.next
	if err != nil {
		return nil, err
	}
	if converged || spec.FixedIterations > 0 {
		return out, nil
	}
	// Budget exhausted: return the partial result so capped experiment
	// runs (e.g. "first 20 iterations of Webbase", Fig. 9) remain usable.
	return out, fmt.Errorf("%w after %d iterations", ErrNoProgress, maxIter)
}

// IncrementalSpec describes an incremental iteration (Δ, S0, W0) (§5.1).
// The Δ dataflow reads the workset placeholder and the solution set
// (through SolutionJoin/SolutionCoGroup operators) and feeds two sinks:
// the delta set D and the next workset.
type IncrementalSpec struct {
	// Plan is the Δ dataflow.
	Plan *dataflow.Plan
	// Workset is the IterationInput placeholder for W.
	Workset *dataflow.Node
	// DeltaSink collects D, merged into S with ∪̇ after each superstep.
	DeltaSink *dataflow.Node
	// WorksetSink collects the next working set.
	WorksetSink *dataflow.Node
	// SolutionKey identifies records in S (k(s)).
	SolutionKey record.KeyFunc
	// WorksetKey partitions W compatibly with S for the stateful join.
	WorksetKey record.KeyFunc
	// Comparator optionally arbitrates ∪̇ replacements (§5.1): the
	// CPO-larger record survives. Nil = delta always replaces.
	Comparator record.Comparator
	// MaxSupersteps bounds the run (default 10000).
	MaxSupersteps int
	// ExpectedIterations is the optimizer's dynamic-path weight
	// (default 10).
	ExpectedIterations int
	// JoinHints optionally pins join strategies (see optimizer.JoinHint).
	JoinHints map[int]optimizer.JoinHint
	// CheckpointEvery, if > 0, snapshots the solution set and pending
	// working set after every k-th superstep (§4.2).
	CheckpointEvery int
	// OnCheckpoint persists a snapshot. A returned error aborts the run.
	OnCheckpoint func(*Checkpoint) error
	// Reoptimize re-plans Δ mid-run when the working set shrinks far
	// below the size the current plan was costed with. The paper's §4.3
	// notes that "in the general case, a different plan may be optimal
	// for every iteration" but settles for the first-iteration heuristic;
	// this extension re-runs the optimizer when the estimate is off by
	// more than an order of magnitude, at the cost of re-building the
	// loop-invariant caches once.
	Reoptimize bool
}

// IncrementalResult is the outcome of an incremental or microstep run.
type IncrementalResult struct {
	// Solution is the converged solution set.
	Solution []record.Record
	// Supersteps is the number of executed supersteps (microstep runs
	// report 1).
	Supersteps int
	// Microsteps counts individually processed workset elements (only for
	// microstep execution).
	Microsteps int64
	// PlanEpochs counts the mid-run re-optimizations that actually swapped
	// in a new plan (in a distributed run: coordinated plan-epoch bumps).
	PlanEpochs int
	// Trace holds per-superstep stats when Config.CollectTrace is set.
	Trace metrics.Trace
	// Plan is the physical plan (nil for microstep execution).
	Plan *optimizer.PhysPlan
	// Set is the resident solution set that produced Solution. It remains
	// valid after the run (sessions close, state survives) and can seed
	// ResumeIncremental or a live view — the warm-restart handoff.
	Set *runtime.SolutionSet
}

func (s *IncrementalSpec) validate() error {
	if s.Workset == nil || s.DeltaSink == nil || s.WorksetSink == nil {
		return fmt.Errorf("iterative: incremental spec needs Workset, DeltaSink and WorksetSink")
	}
	if s.SolutionKey == nil || s.WorksetKey == nil {
		return fmt.Errorf("iterative: incremental spec needs SolutionKey and WorksetKey")
	}
	return nil
}

// RunIncremental executes an incremental iteration in supersteps: each
// superstep evaluates Δ against the current S and W, then merges D into S
// with ∪̇ and installs the produced working set for the next superstep.
// It converges when the working set is empty (§5.3).
func RunIncremental(spec IncrementalSpec, initialSolution, initialWorkset []record.Record, cfg Config) (*IncrementalResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	maxSteps := spec.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	plannedEst := spec.Workset.EstRecords
	if plannedEst == 0 {
		plannedEst = int64(len(initialWorkset))
	}

	phys, err := optimizeIncrementalWithEst(&spec, cfg, expected, plannedEst)
	if err != nil {
		return nil, err
	}

	sol := cfg.newSolutionSet(spec.SolutionKey, spec.Comparator)
	sol.Init(initialSolution)
	en := openIncEngine(&spec, sol, cfg, expected, phys, nil)
	defer en.close()
	en.seed(initialWorkset)

	out := &IncrementalResult{Plan: phys, Set: sol}
	d := &driver{
		cfg: cfg, policy: en, maxSteps: maxSteps, worksetDriven: true,
		reopt:   newReoptState(phys, plannedEst),
		collect: cfg.CollectTrace, trace: &out.Trace,
	}
	converged, err := d.run()
	out.Supersteps = d.steps
	out.PlanEpochs = d.epochs
	if err != nil {
		return nil, err
	}
	out.Solution = sol.Snapshot()
	if converged {
		return out, nil
	}
	// Budget exhausted: hand back the partial state for capped runs.
	return out, fmt.Errorf("%w after %d supersteps", ErrNoProgress, maxSteps)
}

// checkpointIfDue snapshots the solution set and pending working set
// after every CheckpointEvery-th superstep (§4.2's recovery logging) —
// shared by RunIncremental and RunAuto's incremental phase.
func checkpointIfDue(spec *IncrementalSpec, step int, sol *runtime.SolutionSet, nextParts [][]record.Record) error {
	if spec.CheckpointEvery <= 0 || spec.OnCheckpoint == nil || (step+1)%spec.CheckpointEvery != 0 {
		return nil
	}
	var pending []record.Record
	for _, p := range nextParts {
		pending = append(pending, p...)
	}
	cp := &Checkpoint{Kind: "incremental", Iteration: step + 1,
		Solution: sol.Snapshot(), Workset: pending}
	if err := spec.OnCheckpoint(cp); err != nil {
		return fmt.Errorf("iterative: checkpoint at superstep %d: %w", step+1, err)
	}
	return nil
}

// plannerFor resolves the configured planner for one planning call:
// PlannerAuto (the default) plans the initial run with the cost-based
// enumerator and mid-run re-optimizations — where planning latency sits
// on the superstep path — with the greedy fast path.
func plannerFor(cfg Config, reopt bool) optimizer.PlannerKind {
	switch cfg.Planner {
	case optimizer.PlannerCost, optimizer.PlannerGreedy:
		return cfg.Planner
	}
	if reopt {
		return optimizer.PlannerGreedy
	}
	return optimizer.PlannerCost
}

// notePlanned records the planning metrics of one optimizer call.
func notePlanned(cfg Config, planner optimizer.PlannerKind, phys *optimizer.PhysPlan, elapsed time.Duration) {
	if cfg.Obs != nil {
		cfg.Obs.Histogram("plan_duration").Observe(elapsed)
		cfg.Obs.Trace().RecordSpan(obs.Span{
			Trace: cfg.TraceID, Host: int32(cfg.Host), Part: -1, Step: -1,
			Phase: obs.PhasePlan, Start: time.Now().Add(-elapsed).UnixNano(),
			Dur: int64(elapsed), Label: cfg.TraceLabel,
		})
	}
	if cfg.Metrics == nil {
		return
	}
	cfg.Metrics.PlanNanos.Add(elapsed.Nanoseconds())
	if planner == optimizer.PlannerGreedy {
		cfg.Metrics.GreedyPlans.Add(1)
	}
	if phys != nil {
		cfg.Metrics.FusedOperators.Add(int64(phys.Fused))
	}
}

// The superstep loop itself — and the reoptimize/backoff/plan-cache
// state it drives — lives in driver.go; RunBulk and RunIncremental above
// are adapters supplying an EnginePolicy to it.
