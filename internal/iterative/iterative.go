// Package iterative implements the paper's contribution: iteration
// operators embedded in parallel dataflows.
//
//   - Bulk iterations (§4): an operator (G, I, O, T) whose step function G
//     is a dataflow; executed with the feedback-channel strategy — the
//     executor persists across passes, loop-invariant inputs stay cached,
//     and only the dynamic data path re-runs.
//   - Incremental iterations (§5): an operator (Δ, S0, W0) with a
//     partitioned, indexed solution set S, a working set W, and a step
//     function Δ producing the delta set D and the next working set;
//     S ∪̇ D applies point updates between supersteps.
//   - Microstep iterations (§5.2): incremental iterations whose Δ meets
//     the record-at-a-time/locality conditions execute asynchronously,
//     one working-set element at a time, without superstep barriers.
//   - Adaptive execution (§4.3 extended): an AutoSpec bundles the
//     incremental form with an optional equivalent bulk iteration, and
//     RunAuto costs all three engines with the optimizer's cost model,
//     runs the cheapest, and monitors observed per-superstep
//     cardinalities — switching incremental → microstep mid-run via the
//     ResumeMicrostep warm handoff once the workset collapses below the
//     dispatch-overhead crossover. A shared optimizer.Calibrator fits
//     the cost weights from measured supersteps so repeated runs (live
//     views, harness sweeps) plan with observed constants.
package iterative

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// Config controls iteration execution.
type Config struct {
	// Parallelism is the number of partitions.
	Parallelism int
	// BatchSize is the exchange batch size (0 = default).
	BatchSize int
	// Metrics receives work counters (optional; required for traces).
	Metrics *metrics.Counters
	// CollectTrace records per-iteration statistics.
	CollectTrace bool
	// SolutionBackend selects the solution-set index implementation for
	// incremental/microstep iterations: runtime.SolutionCompact (the
	// default), runtime.SolutionMap (the boxed baseline), or
	// runtime.SolutionSpill (out-of-core under SolutionMemoryBudget).
	SolutionBackend runtime.SolutionBackendKind
	// SolutionMemoryBudget bounds the resident bytes of the solution set
	// (serialized-form estimate). A positive budget selects the spillable
	// backend: cold partitions are evicted to disk through the batch codec
	// and reloaded on access, with SolutionSpills/SolutionReloads counting
	// the traffic (§4.3's gradual spilling applied to iteration state).
	SolutionMemoryBudget int64
	// Calibrator, if set, receives every measured superstep (work
	// counters + wall time) from RunAuto and supplies fitted cost weights
	// back to its engine selection. Sharing one calibrator across runs —
	// live views, harness sweeps — makes repeated runs plan with observed
	// rather than guessed constants. Calibration needs Metrics set (the
	// work counters are the regression features).
	Calibrator *optimizer.Calibrator
	// EngineWeights, if set, pins the cost weights RunAuto selects and
	// switches engines with, overriding both Calibrator and the built-in
	// defaults — for tests and experiments that need a deterministic
	// crossover.
	EngineWeights *metrics.CalibratedWeights
	// Planner selects the plan optimizer. The default (PlannerAuto) plans
	// the initial run with the cost-based enumerator and mid-run
	// re-optimizations with the greedy zero-statistics fast path — there,
	// planning latency sits on the superstep path. PlannerCost or
	// PlannerGreedy pin one planner for both.
	Planner optimizer.PlannerKind
	// DisableFusion turns off the operator-fusion rewrite. By default
	// chains of adjacent Map operators on forward edges collapse into
	// single fused nodes executed record-at-a-time.
	DisableFusion bool
	// Hosts is the number of processes the plan's partitions will be
	// spread over (distributed sessions). 0 or 1 plans for the default
	// single-process topology. Every process of a distributed session
	// must plan with the same Hosts value to produce identical plans.
	Hosts int
	// Obs, if set, is the telemetry registry this run reports into:
	// superstep/merge/plan latency histograms, and phase spans recorded
	// into its ring (see internal/obs). Nil disables all of it — the
	// instrumented paths cost one branch each.
	Obs *obs.Registry
	// TraceID groups this run's spans across processes; mint one with
	// obs.NewTraceID, or adopt a coordinator's. Only meaningful with Obs.
	TraceID obs.TraceID
	// TraceLabel names the run on its spans (a job or view name).
	TraceLabel string
	// Host is this process's host ID stamped on spans (0 single-process).
	Host int
}

func (c Config) normalized() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	return c
}

// runtimeConfig builds the executor config, threading telemetry through
// when an Obs registry is attached.
func (c Config) runtimeConfig() runtime.Config {
	rc := runtime.Config{BatchSize: c.BatchSize, Metrics: c.Metrics}
	if c.Obs != nil {
		rc.Trace = c.Obs.Trace()
		rc.TraceID = c.TraceID
		rc.TraceLabel = c.TraceLabel
		rc.Host = c.Host
	}
	return rc
}

// observeSuperstep records one superstep's wall time in the registry's
// superstep-duration histogram.
func (c Config) observeSuperstep(d time.Duration) {
	if c.Obs != nil {
		c.Obs.Histogram("superstep_duration").Observe(d)
	}
}

// noteMerge records the S ∪̇ D merge that followed the given superstep: a
// merge-phase span plus a merge-duration histogram sample.
func (c Config) noteMerge(step int, start time.Time) {
	if c.Obs == nil {
		return
	}
	d := time.Since(start)
	c.Obs.Histogram("merge_duration").Observe(d)
	c.Obs.Trace().RecordSpan(obs.Span{
		Trace: c.TraceID, Host: int32(c.Host), Part: -1, Step: int32(step),
		Phase: obs.PhaseMerge, Start: start.UnixNano(), Dur: int64(d),
		Label: c.TraceLabel,
	})
}

// newSolutionSet builds the solution set the Config asks for.
func (c Config) newSolutionSet(key record.KeyFunc, cmp record.Comparator) *runtime.SolutionSet {
	return runtime.NewSolutionSetWith(c.Parallelism, key, cmp, c.Metrics, runtime.SolutionOptions{
		Backend:      c.SolutionBackend,
		MemoryBudget: c.SolutionMemoryBudget,
	})
}

// ErrNoProgress is returned when an iteration hits its step budget.
var ErrNoProgress = errors.New("iterative: iteration exceeded its superstep budget")

// BulkSpec describes a bulk iteration (G, I, O, T) (§4.1).
type BulkSpec struct {
	// Plan is the step-function dataflow G (including the sinks below).
	Plan *dataflow.Plan
	// Input is the IterationInput placeholder I carrying the previous
	// partial solution into G.
	Input *dataflow.Node
	// Output is the sink O producing the next partial solution.
	Output *dataflow.Node
	// Termination, if non-nil, is the criterion sink T: the iteration
	// continues as long as T emits at least one record and stops when it
	// is silent (e.g. PageRank's "rank moved more than ε" Match, Fig. 3).
	Termination *dataflow.Node
	// Converged, if non-nil, is a driver-side termination criterion
	// comparing consecutive partial solutions.
	Converged func(prev, next []record.Record) bool
	// FixedIterations, if > 0, runs exactly n passes ((G, I, O, n) form).
	FixedIterations int
	// MaxIterations bounds criterion-driven runs (default 1000).
	MaxIterations int
	// ExpectedIterations is the optimizer's cost weight for the dynamic
	// path (default: FixedIterations, else 10).
	ExpectedIterations int
	// JoinHints optionally pins join strategies (see optimizer.JoinHint),
	// used to force a specific Figure-4 plan.
	JoinHints map[int]optimizer.JoinHint
	// CheckpointEvery, if > 0, snapshots the partial solution after every
	// k-th pass (§4.2's recovery logging); OnCheckpoint receives it.
	CheckpointEvery int
	// OnCheckpoint persists a snapshot (e.g. via SaveCheckpoint). A
	// returned error aborts the run.
	OnCheckpoint func(*Checkpoint) error
	// Unroll selects the loop-unrolling execution strategy of §4.2
	// instead of feedback channels: every pass instantiates a fresh copy
	// of G, so no caches persist and the constant data path re-executes
	// each time. Mainly useful to measure what the feedback strategy's
	// caching buys.
	Unroll bool
}

// BulkResult is the outcome of a bulk iteration.
type BulkResult struct {
	// Solution is the final partial solution (contents of O).
	Solution []record.Record
	// Iterations is the number of executed passes.
	Iterations int
	// Trace holds per-iteration stats when Config.CollectTrace is set.
	Trace metrics.Trace
	// Plan is the physical plan that was executed.
	Plan *optimizer.PhysPlan
}

// RunBulk executes a bulk iteration with the feedback-channel strategy:
// one Executor persists across all passes so the constant data path is
// evaluated (and cached) once, while I is re-bound to the previous pass's
// O before every pass (§4.2).
func RunBulk(spec BulkSpec, initial []record.Record, cfg Config) (*BulkResult, error) {
	cfg = cfg.normalized()
	if spec.Input == nil || spec.Output == nil {
		return nil, fmt.Errorf("iterative: bulk spec needs Input and Output nodes")
	}
	maxIter := spec.MaxIterations
	if spec.FixedIterations > 0 {
		maxIter = spec.FixedIterations
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = spec.FixedIterations
	}
	if expected <= 0 {
		expected = 10
	}
	// Plan with the initial-solution cardinality when the caller gave no
	// estimate — but only for the optimizer call: the node may be shared
	// by later runs of the same spec, which must plan from their own
	// initial statistics, not this run's.
	est := spec.Input.EstRecords
	if est == 0 {
		est = int64(len(initial))
	}
	savedEst := spec.Input.EstRecords
	spec.Input.EstRecords = est
	opts := optimizer.Options{
		Parallelism:        cfg.Parallelism,
		ExpectedIterations: expected,
		Feedback:           map[int]int{spec.Input.ID: spec.Output.ID},
		JoinHints:          spec.JoinHints,
		Planner:            plannerFor(cfg, false),
		Fuse:               !cfg.DisableFusion,
	}
	planStart := time.Now()
	phys, err := optimizer.Optimize(spec.Plan, opts)
	spec.Input.EstRecords = savedEst
	if err != nil {
		return nil, err
	}
	notePlanned(cfg, opts.Planner, phys, time.Since(planStart))

	exec := runtime.NewExecutor(cfg.runtimeConfig())
	defer exec.Close()
	phKey := phys.PlaceholderKey(spec.Input.ID)
	exec.SetPlaceholder(spec.Input.ID, initial, phKey, cfg.Parallelism)

	// One session serves every pass: the partition-pinned workers,
	// exchanges, and batch pool persist until convergence, so only the
	// first pass pays plan-setup costs (§4.2's feedback-channel model at
	// the physical layer).
	sess := exec.OpenSession(phys)
	defer sess.Close()

	out := &BulkResult{Plan: phys}
	prev := initial
	for i := 0; i < maxIter; i++ {
		start := time.Now()
		var before metrics.Snapshot
		if cfg.Metrics != nil {
			before = cfg.Metrics.Snapshot()
		}
		if spec.Unroll && i > 0 {
			// Unrolled execution: a new instance of G per pass (§4.2) —
			// drop every loop-invariant cache before re-running. The
			// session detects the generation change and rewires.
			exec.InvalidateCaches()
		}

		res, err := sess.Run()
		if err != nil {
			return nil, err
		}
		nextParts := res[spec.Output.ID]
		next := res.Records(spec.Output.ID)
		out.Iterations = i + 1
		cfg.observeSuperstep(time.Since(start))
		if cfg.CollectTrace {
			st := metrics.IterationStat{Iteration: i, Duration: time.Since(start)}
			if cfg.Metrics != nil {
				st.Work = cfg.Metrics.Snapshot().Sub(before)
			}
			out.Trace.Add(st)
		}

		if spec.CheckpointEvery > 0 && spec.OnCheckpoint != nil && (i+1)%spec.CheckpointEvery == 0 {
			cp := &Checkpoint{Kind: "bulk", Iteration: i + 1,
				Solution: append([]record.Record(nil), next...)}
			if err := spec.OnCheckpoint(cp); err != nil {
				return nil, fmt.Errorf("iterative: checkpoint at pass %d: %w", i+1, err)
			}
		}

		stop := false
		if spec.Termination != nil && len(res.Records(spec.Termination.ID)) == 0 {
			stop = true
		}
		if spec.Converged != nil && spec.Converged(prev, next) {
			stop = true
		}
		if spec.FixedIterations > 0 && i+1 >= spec.FixedIterations {
			stop = true
		}
		out.Solution = next
		if stop {
			return out, nil
		}

		// Feedback: O becomes the next I. When the loop-closing property
		// grant holds, O's partitions are already laid out correctly and
		// re-enter without reshuffling.
		if phKey != nil {
			exec.SetPlaceholderParts(spec.Input.ID, nextParts)
		} else {
			exec.SetPlaceholder(spec.Input.ID, next, nil, cfg.Parallelism)
		}
		prev = next
	}
	if spec.FixedIterations > 0 {
		return out, nil
	}
	// Budget exhausted: return the partial result so capped experiment
	// runs (e.g. "first 20 iterations of Webbase", Fig. 9) remain usable.
	return out, fmt.Errorf("%w after %d iterations", ErrNoProgress, maxIter)
}

// IncrementalSpec describes an incremental iteration (Δ, S0, W0) (§5.1).
// The Δ dataflow reads the workset placeholder and the solution set
// (through SolutionJoin/SolutionCoGroup operators) and feeds two sinks:
// the delta set D and the next workset.
type IncrementalSpec struct {
	// Plan is the Δ dataflow.
	Plan *dataflow.Plan
	// Workset is the IterationInput placeholder for W.
	Workset *dataflow.Node
	// DeltaSink collects D, merged into S with ∪̇ after each superstep.
	DeltaSink *dataflow.Node
	// WorksetSink collects the next working set.
	WorksetSink *dataflow.Node
	// SolutionKey identifies records in S (k(s)).
	SolutionKey record.KeyFunc
	// WorksetKey partitions W compatibly with S for the stateful join.
	WorksetKey record.KeyFunc
	// Comparator optionally arbitrates ∪̇ replacements (§5.1): the
	// CPO-larger record survives. Nil = delta always replaces.
	Comparator record.Comparator
	// MaxSupersteps bounds the run (default 10000).
	MaxSupersteps int
	// ExpectedIterations is the optimizer's dynamic-path weight
	// (default 10).
	ExpectedIterations int
	// JoinHints optionally pins join strategies (see optimizer.JoinHint).
	JoinHints map[int]optimizer.JoinHint
	// CheckpointEvery, if > 0, snapshots the solution set and pending
	// working set after every k-th superstep (§4.2).
	CheckpointEvery int
	// OnCheckpoint persists a snapshot. A returned error aborts the run.
	OnCheckpoint func(*Checkpoint) error
	// Reoptimize re-plans Δ mid-run when the working set shrinks far
	// below the size the current plan was costed with. The paper's §4.3
	// notes that "in the general case, a different plan may be optimal
	// for every iteration" but settles for the first-iteration heuristic;
	// this extension re-runs the optimizer when the estimate is off by
	// more than an order of magnitude, at the cost of re-building the
	// loop-invariant caches once.
	Reoptimize bool
}

// IncrementalResult is the outcome of an incremental or microstep run.
type IncrementalResult struct {
	// Solution is the converged solution set.
	Solution []record.Record
	// Supersteps is the number of executed supersteps (microstep runs
	// report 1).
	Supersteps int
	// Microsteps counts individually processed workset elements (only for
	// microstep execution).
	Microsteps int64
	// Trace holds per-superstep stats when Config.CollectTrace is set.
	Trace metrics.Trace
	// Plan is the physical plan (nil for microstep execution).
	Plan *optimizer.PhysPlan
	// Set is the resident solution set that produced Solution. It remains
	// valid after the run (sessions close, state survives) and can seed
	// ResumeIncremental or a live view — the warm-restart handoff.
	Set *runtime.SolutionSet
}

func (s *IncrementalSpec) validate() error {
	if s.Workset == nil || s.DeltaSink == nil || s.WorksetSink == nil {
		return fmt.Errorf("iterative: incremental spec needs Workset, DeltaSink and WorksetSink")
	}
	if s.SolutionKey == nil || s.WorksetKey == nil {
		return fmt.Errorf("iterative: incremental spec needs SolutionKey and WorksetKey")
	}
	return nil
}

// RunIncremental executes an incremental iteration in supersteps: each
// superstep evaluates Δ against the current S and W, then merges D into S
// with ∪̇ and installs the produced working set for the next superstep.
// It converges when the working set is empty (§5.3).
func RunIncremental(spec IncrementalSpec, initialSolution, initialWorkset []record.Record, cfg Config) (*IncrementalResult, error) {
	cfg = cfg.normalized()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	maxSteps := spec.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	plannedEst := spec.Workset.EstRecords
	if plannedEst == 0 {
		plannedEst = int64(len(initialWorkset))
	}

	phys, err := optimizeIncrementalWithEst(&spec, cfg, expected, plannedEst)
	if err != nil {
		return nil, err
	}

	exec := runtime.NewExecutor(cfg.runtimeConfig())
	defer exec.Close()
	exec.Solution = cfg.newSolutionSet(spec.SolutionKey, spec.Comparator)
	exec.Solution.Init(initialSolution)
	// §5.3: when the Δ flow meets the microstep locality conditions, delta
	// records merge into S directly during the superstep, so later
	// working-set elements observe the update and redundant candidates are
	// pruned at the source.
	if _, err := ValidateMicrostep(spec); err == nil {
		exec.DirectMerge = true
	}
	exec.SetPlaceholder(spec.Workset.ID, initialWorkset, spec.WorksetKey, cfg.Parallelism)
	if cfg.Metrics != nil {
		cfg.Metrics.WorksetElements.Add(int64(len(initialWorkset)))
	}

	// One persistent session per plan: supersteps reuse its workers,
	// exchanges and pooled batches. Re-optimization swaps in a fresh
	// session for the new plan.
	sess := exec.OpenSession(phys)
	defer func() { sess.Close() }()

	out := &IncrementalResult{Plan: phys, Set: exec.Solution}
	reopt := newReoptState(phys, plannedEst)
	for step := 0; step < maxSteps; step++ {
		start := time.Now()
		var before metrics.Snapshot
		if cfg.Metrics != nil {
			before = cfg.Metrics.Snapshot()
		}

		sess.SetTraceStep(step) // keeps span numbering continuous across re-plan session swaps
		res, err := sess.Run()
		if err != nil {
			return nil, err
		}
		out.Supersteps = step + 1
		cfg.observeSuperstep(time.Since(start))

		// S ∪̇ D — applied after the superstep so that every access inside
		// the superstep observed S_i (§5.3: "we cache the records in the
		// delta set D until the end of the superstep").
		mergeStart := time.Now()
		exec.Solution.MergeDelta(res.Records(spec.DeltaSink.ID))
		cfg.noteMerge(step, mergeStart)

		nextParts := res[spec.WorksetSink.ID]
		nextCount := 0
		for _, p := range nextParts {
			nextCount += len(p)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.WorksetElements.Add(int64(nextCount))
		}
		if cfg.CollectTrace {
			st := metrics.IterationStat{Iteration: step, Duration: time.Since(start)}
			if cfg.Metrics != nil {
				st.Work = cfg.Metrics.Snapshot().Sub(before)
			}
			out.Trace.Add(st)
		}
		if err := checkpointIfDue(&spec, step, exec.Solution, nextParts); err != nil {
			return nil, err
		}
		if nextCount == 0 {
			out.Solution = exec.Solution.Snapshot()
			return out, nil
		}
		sess = reopt.maybeReoptimize(&spec, cfg, expected, step, nextCount,
			exec, sess, &out.Trace)
		// The workset sink is partition-pinned on WorksetKey, so its
		// partitions re-enter directly — the paper's partitioned queues.
		exec.SetPlaceholderParts(spec.Workset.ID, nextParts)
	}
	// Budget exhausted: hand back the partial state for capped runs.
	out.Solution = exec.Solution.Snapshot()
	return out, fmt.Errorf("%w after %d supersteps", ErrNoProgress, maxSteps)
}

// checkpointIfDue snapshots the solution set and pending working set
// after every CheckpointEvery-th superstep (§4.2's recovery logging) —
// shared by RunIncremental and RunAuto's incremental phase.
func checkpointIfDue(spec *IncrementalSpec, step int, sol *runtime.SolutionSet, nextParts [][]record.Record) error {
	if spec.CheckpointEvery <= 0 || spec.OnCheckpoint == nil || (step+1)%spec.CheckpointEvery != 0 {
		return nil
	}
	var pending []record.Record
	for _, p := range nextParts {
		pending = append(pending, p...)
	}
	cp := &Checkpoint{Kind: "incremental", Iteration: step + 1,
		Solution: sol.Snapshot(), Workset: pending}
	if err := spec.OnCheckpoint(cp); err != nil {
		return fmt.Errorf("iterative: checkpoint at superstep %d: %w", step+1, err)
	}
	return nil
}

// plannerFor resolves the configured planner for one planning call:
// PlannerAuto (the default) plans the initial run with the cost-based
// enumerator and mid-run re-optimizations — where planning latency sits
// on the superstep path — with the greedy fast path.
func plannerFor(cfg Config, reopt bool) optimizer.PlannerKind {
	switch cfg.Planner {
	case optimizer.PlannerCost, optimizer.PlannerGreedy:
		return cfg.Planner
	}
	if reopt {
		return optimizer.PlannerGreedy
	}
	return optimizer.PlannerCost
}

// notePlanned records the planning metrics of one optimizer call.
func notePlanned(cfg Config, planner optimizer.PlannerKind, phys *optimizer.PhysPlan, elapsed time.Duration) {
	if cfg.Obs != nil {
		cfg.Obs.Histogram("plan_duration").Observe(elapsed)
		cfg.Obs.Trace().RecordSpan(obs.Span{
			Trace: cfg.TraceID, Host: int32(cfg.Host), Part: -1, Step: -1,
			Phase: obs.PhasePlan, Start: time.Now().Add(-elapsed).UnixNano(),
			Dur: int64(elapsed), Label: cfg.TraceLabel,
		})
	}
	if cfg.Metrics == nil {
		return
	}
	cfg.Metrics.PlanNanos.Add(elapsed.Nanoseconds())
	if planner == optimizer.PlannerGreedy {
		cfg.Metrics.GreedyPlans.Add(1)
	}
	if phys != nil {
		cfg.Metrics.FusedOperators.Add(int64(phys.Fused))
	}
}

// reoptimizeBackoffSteps is how many supersteps a failed re-optimization
// suppresses further attempts for: the same collapsed workset would
// otherwise retry — and fail — every superstep until convergence.
const reoptimizeBackoffSteps = 8

// reoptState carries the adaptive re-planning state of one running
// iteration: the estimate the current plan was costed with, the plan
// cache its re-optimizations share (memoizing the key registry and whole
// plans by fingerprint), the plan the session is executing, and the
// backoff window after a failure.
type reoptState struct {
	cache *optimizer.PlanCache
	// cur is the plan the live session executes; a cache hit returning
	// cur is a pure no-op (no session swap, caches stay warm).
	cur        *optimizer.PhysPlan
	plannedEst int64
	// backoffUntil suppresses re-optimization attempts for supersteps
	// below it after a failure.
	backoffUntil int
}

func newReoptState(cur *optimizer.PhysPlan, plannedEst int64) *reoptState {
	return &reoptState{cache: optimizer.NewPlanCache(), cur: cur, plannedEst: plannedEst}
}

// maybeReoptimize is the adaptive re-planning step shared by
// RunIncremental, RunAuto's incremental phase and Fixpoint: when
// Reoptimize is set and the working set has collapsed far below the size
// the current plan was costed with, Δ is re-planned for the remaining
// supersteps and a fresh session swapped in. Re-planning goes through the
// plan cache — a hit skips planning entirely, and a hit on the very plan
// already executing skips the session swap too. Failures are surfaced
// (ReoptimizeFailures, ReoptimizeBackoffs, a trace event) and suppress
// further attempts for reoptimizeBackoffSteps supersteps. Returns the
// session to continue with.
func (st *reoptState) maybeReoptimize(spec *IncrementalSpec, cfg Config, expected, step, nextCount int,
	exec *runtime.Executor, sess *runtime.Session, trace *metrics.Trace) *runtime.Session {
	if !spec.Reoptimize || int64(nextCount)*16 >= st.plannedEst || step < st.backoffUntil {
		return sess
	}
	newPhys, hit, rerr := st.replan(spec, cfg, expected, int64(nextCount))
	if rerr != nil {
		if cfg.Metrics != nil {
			cfg.Metrics.ReoptimizeFailures.Add(1)
			cfg.Metrics.ReoptimizeBackoffs.Add(1)
		}
		st.backoffUntil = step + 1 + reoptimizeBackoffSteps
		trace.AddEvent(step, fmt.Sprintf("reoptimize failed (backing off %d supersteps): %v",
			reoptimizeBackoffSteps, rerr))
		return sess
	}
	st.plannedEst = int64(nextCount)
	if newPhys == st.cur {
		return sess
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Reoptimizations.Add(1)
	}
	if hit {
		trace.AddEvent(step, fmt.Sprintf("reoptimized for workset %d (plan cache hit)", nextCount))
	} else {
		trace.AddEvent(step, fmt.Sprintf("reoptimized for workset %d", nextCount))
	}
	st.cur = newPhys
	exec.InvalidateCaches()
	sess.Close()
	return exec.OpenSession(newPhys)
}

// replan plans Δ for a collapsed workset estimate through the plan cache,
// counting PlanCacheHits on a hit and the usual planning metrics on a
// miss.
func (st *reoptState) replan(spec *IncrementalSpec, cfg Config, expected int, est int64) (*optimizer.PhysPlan, bool, error) {
	saved := spec.Workset.EstRecords
	if est > 0 {
		spec.Workset.EstRecords = est
	}
	defer func() { spec.Workset.EstRecords = saved }()
	opts := incrementalOptions(spec, cfg, expected, true)
	start := time.Now()
	phys, hit, err := st.cache.Optimize(spec.Plan, opts, est)
	if err != nil {
		return nil, false, err
	}
	if hit {
		if cfg.Metrics != nil {
			cfg.Metrics.PlanCacheHits.Add(1)
		}
	} else {
		notePlanned(cfg, opts.Planner, phys, time.Since(start))
	}
	return phys, hit, nil
}
