package iterative

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/record"
)

// doubler builds a minimal bulk iteration: each pass doubles every value.
func doubler() (BulkSpec, []record.Record) {
	plan := dataflow.NewPlan()
	in := plan.IterationPlaceholder("I", 4)
	m := plan.MapNode("double", in, func(r record.Record, out dataflow.Emitter) {
		r.A *= 2
		out.Emit(r)
	})
	o := plan.SinkNode("O", m)
	return BulkSpec{Plan: plan, Input: in, Output: o}, []record.Record{{A: 1}, {A: 3}}
}

func TestBulkFixedIterations(t *testing.T) {
	spec, init := doubler()
	spec.FixedIterations = 5
	res, err := RunBulk(spec, init, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	sum := int64(0)
	for _, r := range res.Solution {
		sum += r.A
	}
	if sum != (1+3)*32 {
		t.Errorf("solution sum = %d, want 128", sum)
	}
}

func TestBulkConvergedCriterion(t *testing.T) {
	// Halving converges to zero; the criterion stops when stable.
	plan := dataflow.NewPlan()
	in := plan.IterationPlaceholder("I", 2)
	m := plan.MapNode("halve", in, func(r record.Record, out dataflow.Emitter) {
		r.A /= 2
		out.Emit(r)
	})
	o := plan.SinkNode("O", m)
	spec := BulkSpec{
		Plan: plan, Input: in, Output: o,
		Converged: func(prev, next []record.Record) bool {
			var a, b int64
			for _, r := range prev {
				a += r.A
			}
			for _, r := range next {
				b += r.A
			}
			return a == b
		},
	}
	res, err := RunBulk(spec, []record.Record{{A: 1024}}, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 10 || res.Iterations > 12 {
		t.Errorf("iterations = %d, want ~11", res.Iterations)
	}
}

func TestBulkTerminationSink(t *testing.T) {
	// T emits a record while any value is above 10; halving stops when all
	// values are <= 10.
	plan := dataflow.NewPlan()
	in := plan.IterationPlaceholder("I", 2)
	m := plan.MapNode("halve", in, func(r record.Record, out dataflow.Emitter) {
		r.A /= 2
		out.Emit(r)
	})
	o := plan.SinkNode("O", m)
	chk := plan.FilterNode("aboveTen", m, func(r record.Record) bool { return r.A > 10 })
	tSink := plan.SinkNode("T", chk)
	spec := BulkSpec{Plan: plan, Input: in, Output: o, Termination: tSink}
	res, err := RunBulk(spec, []record.Record{{A: 100}}, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 100 -> 50 -> 25 -> 12 -> 6: four halvings above the threshold.
	if res.Iterations != 4 {
		t.Errorf("iterations = %d, want 4", res.Iterations)
	}
	if len(res.Solution) != 1 || res.Solution[0].A != 6 {
		t.Errorf("solution = %v", res.Solution)
	}
}

func TestBulkBudgetExhausted(t *testing.T) {
	spec, init := doubler()
	spec.MaxIterations = 3
	spec.Converged = func(prev, next []record.Record) bool { return false }
	_, err := RunBulk(spec, init, Config{Parallelism: 1})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
}

func TestBulkSpecValidation(t *testing.T) {
	if _, err := RunBulk(BulkSpec{}, nil, Config{}); err == nil {
		t.Error("empty spec must fail")
	}
}

// incrSpec builds a minimal incremental iteration: propagate minimum
// values along a ring of n vertices.
func incrSpec(n int64) (IncrementalSpec, []record.Record, []record.Record) {
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", n)
	upd := plan.SolutionJoinNode("upd", w, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {
			if found && c.B < s.B {
				out.Emit(record.Record{A: c.A, B: c.B})
			}
		})
	upd.Preserve(0, record.KeyA)
	d := plan.SinkNode("D", upd)
	// Ring edges.
	edges := make([]record.Record, n)
	for i := int64(0); i < n; i++ {
		edges[i] = record.Record{A: i, B: (i + 1) % n}
	}
	e := plan.SourceOf("ring", edges)
	prop := plan.MatchNode("prop", upd, e, record.KeyA, record.KeyA,
		func(dr, er record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: er.B, B: dr.B})
		})
	wSink := plan.SinkNode("W2", prop)

	spec := IncrementalSpec{
		Plan: plan, Workset: w, DeltaSink: d, WorksetSink: wSink,
		SolutionKey: record.KeyA, WorksetKey: record.KeyA,
		Comparator: func(a, b record.Record) int {
			switch {
			case a.B < b.B:
				return 1
			case a.B > b.B:
				return -1
			}
			return 0
		},
	}
	s0 := make([]record.Record, n)
	for i := int64(0); i < n; i++ {
		s0[i] = record.Record{A: i, B: i}
	}
	w0 := []record.Record{{A: 1, B: 0}} // seed: vertex 1 learns value 0
	return spec, s0, w0
}

func TestIncrementalRingPropagation(t *testing.T) {
	for _, par := range []int{1, 4} {
		spec, s0, w0 := incrSpec(16)
		res, err := RunIncremental(spec, s0, w0, Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Solution {
			if r.B != 0 {
				t.Fatalf("par=%d: vertex %d kept %d", par, r.A, r.B)
			}
		}
		// The minimum walks one hop per superstep around the ring.
		if res.Supersteps < 14 {
			t.Errorf("par=%d: supersteps = %d, want >= 14", par, res.Supersteps)
		}
	}
}

func TestMicrostepRingPropagation(t *testing.T) {
	spec, s0, w0 := incrSpec(16)
	res, err := RunMicrostep(spec, s0, w0, Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Solution {
		if r.B != 0 {
			t.Fatalf("vertex %d kept %d", r.A, r.B)
		}
	}
	if res.Microsteps < 15 {
		t.Errorf("microsteps = %d", res.Microsteps)
	}
}

func TestMicrostepEmptyWorkset(t *testing.T) {
	spec, s0, _ := incrSpec(4)
	res, err := RunMicrostep(spec, s0, nil, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution) != 4 || res.Microsteps != 0 {
		t.Errorf("empty workset: %d records, %d steps", len(res.Solution), res.Microsteps)
	}
}

func TestIncrementalBudgetExhausted(t *testing.T) {
	spec, s0, w0 := incrSpec(64)
	spec.MaxSupersteps = 2
	_, err := RunIncremental(spec, s0, w0, Config{Parallelism: 2})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
}

func TestIncrementalSpecValidation(t *testing.T) {
	if _, err := RunIncremental(IncrementalSpec{}, nil, nil, Config{}); err == nil {
		t.Error("empty incremental spec must fail")
	}
}

func TestValidateMicrostepRejectsGroupAtATime(t *testing.T) {
	// A SolutionCoGroup (group-at-a-time) must be rejected (§5.2).
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", 8)
	upd := plan.SolutionCoGroupNode("upd", w, record.KeyA,
		func(k int64, ws []record.Record, s record.Record, found bool, out dataflow.Emitter) {})
	upd.Preserve(0, record.KeyA)
	d := plan.SinkNode("D", upd)
	e := plan.SourceOf("E", nil)
	prop := plan.MatchNode("prop", upd, e, record.KeyA, record.KeyA,
		func(a, b record.Record, out dataflow.Emitter) {})
	w2 := plan.SinkNode("W2", prop)
	spec := IncrementalSpec{Plan: plan, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: record.KeyA, WorksetKey: record.KeyA}
	_, err := ValidateMicrostep(spec)
	if err == nil || !strings.Contains(err.Error(), "group-at-a-time") {
		t.Fatalf("want group-at-a-time rejection, got %v", err)
	}
}

func TestValidateMicrostepRejectsBranch(t *testing.T) {
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", 8)
	upd := plan.SolutionJoinNode("upd", w, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {})
	upd.Preserve(0, record.KeyA)
	d := plan.SinkNode("D", upd)
	// Two non-delta consumers of the update: an illegal branch.
	m1 := plan.MapNode("m1", upd, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	m2 := plan.MapNode("m2", upd, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	u := plan.UnionNode("u", m1, m2)
	w2 := plan.SinkNode("W2", u)
	spec := IncrementalSpec{Plan: plan, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: record.KeyA, WorksetKey: record.KeyA}
	_, err := ValidateMicrostep(spec)
	if err == nil || !strings.Contains(err.Error(), "branches") {
		t.Fatalf("want branch rejection, got %v", err)
	}
}

func TestValidateMicrostepRequiresKeyPreservation(t *testing.T) {
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", 8)
	// No Preserve declaration: updates might leave their partition.
	upd := plan.SolutionJoinNode("upd", w, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {})
	d := plan.SinkNode("D", upd)
	e := plan.SourceOf("E", nil)
	prop := plan.MatchNode("prop", upd, e, record.KeyA, record.KeyA,
		func(a, b record.Record, out dataflow.Emitter) {})
	w2 := plan.SinkNode("W2", prop)
	spec := IncrementalSpec{Plan: plan, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: record.KeyA, WorksetKey: record.KeyA}
	_, err := ValidateMicrostep(spec)
	if err == nil || !strings.Contains(err.Error(), "preserved") {
		t.Fatalf("want locality rejection, got %v", err)
	}
}

func TestValidateMicrostepRequiresSolutionOperator(t *testing.T) {
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", 8)
	m := plan.MapNode("m", w, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	d := plan.SinkNode("D", m)
	_ = d
	w2 := plan.SinkNode("W2", m)
	spec := IncrementalSpec{Plan: plan, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: record.KeyA, WorksetKey: record.KeyA}
	_, err := ValidateMicrostep(spec)
	if err == nil {
		t.Fatal("plan without a solution operator must be rejected")
	}
}

func TestEvalConst(t *testing.T) {
	plan := dataflow.NewPlan()
	a := plan.SourceOf("a", []record.Record{{A: 1, X: 1}, {A: 2, X: 2}})
	b := plan.SourceOf("b", []record.Record{{A: 1, B: 10}})
	m := plan.MapNode("inc", a, func(r record.Record, out dataflow.Emitter) {
		r.X++
		out.Emit(r)
	})
	j := plan.MatchNode("j", m, b, record.KeyA, record.KeyA,
		func(l, r record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: l.A, B: r.B, X: l.X})
		})
	u := plan.UnionNode("u", j, m)
	red := plan.ReduceNode("cnt", u, record.KeyA,
		func(k int64, g []record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: k, B: int64(len(g))})
		})
	plan.SinkNode("out", red)

	recs, err := evalConst(red)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range recs {
		got[r.A] = r.B
	}
	// Key 1: one joined + one mapped = 2; key 2: mapped only = 1.
	if got[1] != 2 || got[2] != 1 {
		t.Errorf("evalConst groups: %v", got)
	}
}

func TestEvalConstRejectsPlaceholder(t *testing.T) {
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", 1)
	m := plan.MapNode("m", w, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	plan.SinkNode("o", m)
	if _, err := evalConst(m); err == nil {
		t.Error("dynamic subtree must not evaluate as constant")
	}
}

func TestMicrostepWithPreMapStage(t *testing.T) {
	// A Map between W and the solution join must compile and run.
	plan := dataflow.NewPlan()
	w := plan.IterationPlaceholder("W", 8)
	pre := plan.MapNode("shift", w, func(r record.Record, out dataflow.Emitter) {
		out.Emit(r) // identity, but exercises the pre-stage path
	})
	upd := plan.SolutionJoinNode("upd", pre, record.KeyA,
		func(c, s record.Record, found bool, out dataflow.Emitter) {
			if found && c.B < s.B {
				out.Emit(record.Record{A: c.A, B: c.B})
			}
		})
	upd.Preserve(0, record.KeyA)
	d := plan.SinkNode("D", upd)
	edges := []record.Record{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}}
	e := plan.SourceOf("E", edges)
	prop := plan.MatchNode("prop", upd, e, record.KeyA, record.KeyA,
		func(dr, er record.Record, out dataflow.Emitter) {
			out.Emit(record.Record{A: er.B, B: dr.B})
		})
	w2 := plan.SinkNode("W2", prop)
	spec := IncrementalSpec{Plan: plan, Workset: w, DeltaSink: d, WorksetSink: w2,
		SolutionKey: record.KeyA, WorksetKey: record.KeyA}
	s0 := []record.Record{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}, {A: 3, B: 3}}
	w0 := []record.Record{{A: 1, B: 0}}
	res, err := RunMicrostep(spec, s0, w0, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, r := range res.Solution {
		got[r.A] = r.B
	}
	// 0 should chain down the path 1 -> 2 -> 3.
	if got[1] != 0 || got[2] != 0 || got[3] != 0 {
		t.Errorf("chain propagation failed: %v", got)
	}
}

func TestBulkUnrolledMatchesFeedback(t *testing.T) {
	spec, init := doubler()
	spec.FixedIterations = 6
	feedback, err := RunBulk(spec, init, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec2, init2 := doubler()
	spec2.FixedIterations = 6
	spec2.Unroll = true
	unrolled, err := RunBulk(spec2, init2, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(rs []record.Record) int64 {
		var s int64
		for _, r := range rs {
			s += r.A
		}
		return s
	}
	if sum(feedback.Solution) != sum(unrolled.Solution) {
		t.Errorf("unrolled (%d) != feedback (%d)", sum(unrolled.Solution), sum(feedback.Solution))
	}
}

func TestIncrementalReoptimizeKeepsResult(t *testing.T) {
	// A long chain forces the workset to collapse from |E| to 1, which
	// triggers mid-run re-planning; the fixpoint must be unchanged.
	const n = 64
	run := func(reopt bool) map[int64]int64 {
		spec, s0, w0 := incrSpec(n)
		spec.Reoptimize = reopt
		res, err := RunIncremental(spec, s0, w0, Config{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		out := map[int64]int64{}
		for _, r := range res.Solution {
			out[r.A] = r.B
		}
		return out
	}
	plain := run(false)
	reopt := run(true)
	for v, c := range plain {
		if reopt[v] != c {
			t.Fatalf("reoptimized run diverged at vertex %d: %d vs %d", v, reopt[v], c)
		}
	}
}

func TestMicrostepTraceSampling(t *testing.T) {
	spec, s0, w0 := incrSpec(512)
	var m metrics.Counters
	res, err := RunMicrostep(spec, s0, w0, Config{Parallelism: 2, Metrics: &m, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sampling is time-based; a fast run may record nothing, but the
	// solution and metrics must be intact either way.
	if len(res.Solution) != 512 {
		t.Fatalf("solution size %d", len(res.Solution))
	}
	if m.Snapshot().WorksetElements == 0 {
		t.Error("no workset elements counted")
	}
}
