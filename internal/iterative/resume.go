package iterative

import (
	"fmt"
	"time"

	"repro/internal/optimizer"
	"repro/internal/record"
	"repro/internal/runtime"
)

// Fixpoint is a *resident* incremental iteration: the optimized Δ plan,
// its persistent partition-pinned session, and the attached solution set,
// kept open between runs. Where RunIncremental computes one fixpoint and
// tears everything down, a Fixpoint lets a converged solution set absorb
// later workset deltas through warm restarts — the paper's observation
// that (S, W) is exactly the state needed to maintain a fixpoint, not
// just to compute it. The live maintenance service (internal/live) is
// built on this type, and internal/distrib hosts one per process: the
// coordinator drives its Fixpoint through RunDriven with a barrier and
// an epoch hook, workers through StepOnce/ApplyEpoch under the
// coordinator's control messages.
//
// A Fixpoint is not safe for concurrent Run calls; callers serialize
// maintenance (the live scheduler does so per view).
type Fixpoint struct {
	spec IncrementalSpec
	cfg  Config
	en   *incEngine
	// reopt persists across Run calls, so repeated maintenance batches
	// that collapse the same way hit the plan cache instead of re-planning
	// (and skip the session swap when the cached plan is already live).
	reopt *reoptState
	// traceStep numbers supersteps continuously across Run calls, so a
	// live view's maintenance flushes produce distinct steps in its trace.
	traceStep int
}

// optimizeIncrementalWithEst plans Δ with the given workset-cardinality
// estimate, restoring the node's original estimate afterwards: the plan
// node may be shared with later runs of the same spec (live view
// recomputes, ResumeIncremental, difftest loops), which must plan from
// their own initial statistics rather than this run's final workset size.
func optimizeIncrementalWithEst(spec *IncrementalSpec, cfg Config, expected int, est int64) (*optimizer.PhysPlan, error) {
	saved := spec.Workset.EstRecords
	if est > 0 {
		spec.Workset.EstRecords = est
	}
	defer func() { spec.Workset.EstRecords = saved }()
	return optimizeIncremental(spec, cfg, expected)
}

// incrementalOptions builds the optimizer options for an incremental spec
// with the workset feedback and sink partitioning RunIncremental uses.
// reopt selects the planner leg of PlannerAuto (greedy for mid-run
// re-optimizations, cost-based otherwise).
func incrementalOptions(spec *IncrementalSpec, cfg Config, expected int, reopt bool) optimizer.Options {
	return optimizer.Options{
		Parallelism:        cfg.Parallelism,
		Hosts:              cfg.Hosts,
		ExpectedIterations: expected,
		PlaceholderProps: map[int]optimizer.Props{
			spec.Workset.ID: {Part: record.KeyID(spec.WorksetKey)},
		},
		SinkPartition: map[int]record.KeyFunc{
			spec.DeltaSink.ID:   spec.SolutionKey,
			spec.WorksetSink.ID: spec.WorksetKey,
		},
		Feedback:  map[int]int{spec.Workset.ID: spec.WorksetSink.ID},
		JoinHints: spec.JoinHints,
		Planner:   plannerFor(cfg, reopt),
		Fuse:      !cfg.DisableFusion,
	}
}

// optimizeIncremental runs the optimizer for an incremental spec's initial
// plan, recording planning metrics.
func optimizeIncremental(spec *IncrementalSpec, cfg Config, expected int) (*optimizer.PhysPlan, error) {
	opts := incrementalOptions(spec, cfg, expected, false)
	start := time.Now()
	phys, err := optimizer.Optimize(spec.Plan, opts)
	if err != nil {
		return nil, err
	}
	notePlanned(cfg, opts.Planner, phys, time.Since(start))
	return phys, nil
}

// PlanIncremental runs the optimizer for an incremental spec exactly as
// RunIncremental would, without executing anything. The distributed
// driver uses it so every process of a session derives the same physical
// plan from the same spec and config; expected ≤ 0 applies the default
// iteration weight.
func PlanIncremental(spec IncrementalSpec, cfg Config, expected int) (*optimizer.PhysPlan, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if expected <= 0 {
		expected = 10
	}
	return optimizeIncremental(&spec, cfg, expected)
}

// OpenFixpoint optimizes spec and opens a persistent session for it,
// attaching sol as the resident solution set. A nil sol creates an empty
// set from the Config (backend, budget); a non-nil sol is adopted as-is —
// the handoff path warm restarts use to resume over state produced by an
// earlier run. An adopted set must have been created with the same
// parallelism, since record partitioning depends on it.
func OpenFixpoint(spec IncrementalSpec, sol *runtime.SolutionSet, cfg Config) (*Fixpoint, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	phys, err := optimizeIncremental(&spec, cfg, expected)
	if err != nil {
		return nil, err
	}
	return OpenFixpointOn(spec, sol, cfg, phys, nil)
}

// OpenFixpointOn opens a resident fixpoint over an already-optimized
// plan and an optional transport: the distributed layer plans once per
// process (every process derives the identical plan from the identical
// spec) and hosts only its own partition range on the meshed transport.
// A nil transport hosts everything in-process; a nil sol creates an
// empty solution set from the Config.
func OpenFixpointOn(spec IncrementalSpec, sol *runtime.SolutionSet, cfg Config,
	phys *optimizer.PhysPlan, tr runtime.Transport) (*Fixpoint, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if sol != nil && sol.Parallelism() != cfg.Parallelism {
		return nil, fmt.Errorf("iterative: adopted solution set has %d partitions, config wants %d",
			sol.Parallelism(), cfg.Parallelism)
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	if sol == nil {
		sol = cfg.newSolutionSet(spec.SolutionKey, spec.Comparator)
	}
	f := &Fixpoint{spec: spec, cfg: cfg,
		reopt: newReoptState(phys, spec.Workset.EstRecords)}
	f.en = openIncEngine(&f.spec, sol, cfg, expected, phys, tr)
	return f, nil
}

// Solution returns the resident solution set. It stays valid across Run
// calls and after Close, so converged state outlives the session.
func (f *Fixpoint) Solution() *runtime.SolutionSet { return f.en.exec.Solution }

// Plan returns the optimized physical plan the session executes (the
// re-optimized one after a mid-run plan swap).
func (f *Fixpoint) Plan() *optimizer.PhysPlan { return f.reopt.cur }

// InvalidateConstants drops the session's loop-invariant caches (edge
// tables, cached join build sides). Call it after mutating the data behind
// a Source node of the Δ plan: the next Run re-materializes the constant
// path from the current data, while workers, exchanges and pooled batches
// stay warm.
func (f *Fixpoint) InvalidateConstants() { f.en.exec.InvalidateCaches() }

// Rebind re-optimizes a structurally new spec and swaps in a fresh session
// for it, keeping the executor and the resident solution set. Live views
// use it when the graph has drifted so far from the planned statistics
// that the old physical plan is no longer credible.
func (f *Fixpoint) Rebind(spec IncrementalSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	expected := spec.ExpectedIterations
	if expected <= 0 {
		expected = 10
	}
	phys, err := optimizeIncremental(&spec, f.cfg, expected)
	if err != nil {
		return err
	}
	f.spec = spec
	// A structurally new spec invalidates the memoized registry and plans.
	f.reopt = newReoptState(phys, spec.Workset.EstRecords)
	f.en.spec = &f.spec
	f.en.expected = expected
	f.en.exec.InvalidateCaches()
	f.en.exec.DirectMerge = false
	if _, err := ValidateMicrostep(spec); err == nil {
		f.en.exec.DirectMerge = true
	}
	f.en.sess.Close()
	f.en.sess = f.en.exec.OpenSessionOn(phys, f.en.tr)
	return nil
}

// SeedWorkset installs a working set without running anything — the
// distributed layer seeds every process's share before the coordinator
// releases the first superstep.
func (f *Fixpoint) SeedWorkset(workset []record.Record) {
	f.en.seed(workset)
	if f.reopt.plannedEst == 0 {
		f.reopt.plannedEst = int64(len(workset))
	}
}

// StepOnce runs exactly one superstep (evaluate Δ, merge D with ∪̇, feed
// the produced workset back) and returns the local next-workset count.
// It is the worker half of a coordinated run: convergence, checkpoints,
// and re-optimization decisions belong to whoever drives the steps — the
// produced workset is always fed back, because an empty local workset
// can refill from the peers' shipped records.
func (f *Fixpoint) StepOnce() (int, error) {
	out, err := f.en.step(f.traceStep)
	if err != nil {
		return 0, err
	}
	f.traceStep++
	f.cfg.observeSuperstep(out.compute)
	f.en.feed()
	return out.next, nil
}

// ApplyEpoch re-plans Δ fresh (no plan cache) for the given global
// workset estimate and atomically swaps the session onto the new plan —
// the worker half of a coordinated plan-epoch bump. Every process of a
// distributed run calls it with the same estimate the coordinator's
// driver decided on, derives the identical plan, and the coordinator
// verifies the plan digests agree before releasing the next superstep.
func (f *Fixpoint) ApplyEpoch(est int64) (*optimizer.PhysPlan, error) {
	phys, _, err := f.en.replan(est, f.reopt.cache, false)
	if err != nil {
		return nil, err
	}
	if err := f.en.swap(phys); err != nil {
		return nil, err
	}
	f.reopt.cur = phys
	f.reopt.plannedEst = est
	return phys, nil
}

// RunDriven drives the session from the given workset to the fixpoint —
// Run with coordination hooks: every superstep evaluates Δ, merges the
// delta set into the resident solution with ∪̇, and feeds the produced
// workset back, until the (global, when a Barrier is hooked in) workset
// is empty. The result's Solution slice is left nil (snapshotting the
// whole set on every maintenance batch would defeat the point of warm
// restarts); read the state through Solution(), or the result's Set
// handle.
func (f *Fixpoint) RunDriven(workset []record.Record, hooks DriveHooks) (*IncrementalResult, error) {
	maxSteps := f.spec.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	if f.reopt.plannedEst == 0 {
		f.reopt.plannedEst = int64(len(workset))
	}
	f.en.seed(workset)
	out := &IncrementalResult{Plan: f.reopt.cur, Set: f.en.exec.Solution}
	d := &driver{
		cfg: f.cfg, policy: f.en, maxSteps: maxSteps, worksetDriven: true,
		traceBase: f.traceStep,
		// Maintenance supersteps feed the cost-weight fit, so a view's
		// later engine choices use observed constants. The tasks feature
		// counts logical plan nodes — the same unit RunAuto's engine
		// formulas multiply the fitted StepOverhead by.
		calTasks: len(f.spec.Plan.Nodes()) * f.cfg.Parallelism,
		reopt:    f.reopt,
		hooks:    hooks,
		collect:  f.cfg.CollectTrace, trace: &out.Trace,
	}
	converged, err := d.run()
	f.traceStep += d.steps
	out.Supersteps = d.steps
	out.PlanEpochs = d.epochs
	out.Plan = f.reopt.cur
	if err != nil {
		return nil, err
	}
	if converged {
		return out, nil
	}
	return out, fmt.Errorf("%w after %d supersteps", ErrNoProgress, maxSteps)
}

// Run drives the session from the given workset to the fixpoint (see
// RunDriven; Run is the uncoordinated single-process form).
func (f *Fixpoint) Run(workset []record.Record) (*IncrementalResult, error) {
	return f.RunDriven(workset, DriveHooks{})
}

// Close releases the session and the executor's caches. The solution set
// is untouched and remains readable (and adoptable by a later
// OpenFixpoint).
func (f *Fixpoint) Close() { f.en.close() }

// ResumeIncremental warm-restarts an incremental iteration over an
// existing, already-converged solution set: instead of loading S0 and
// processing the full initial workset, the fixpoint continues from
// `existing` with only `delta` as the working set. This is the maintenance
// property of incremental iterations as a standalone entry point — the
// converged (S, ∅) plus a small W is exactly the state of a still-running
// job, so absorbing new input costs only the supersteps the delta
// actually needs.
//
// The spec's Δ plan must reflect the *current* inputs (e.g. an edge
// source that already contains a newly inserted edge). `existing` is
// mutated in place and is also returned in the result's Set field; its
// partition count must match cfg.Parallelism. Unlike Fixpoint.Run, the
// result's Solution slice is populated, matching RunIncremental's
// contract.
func ResumeIncremental(spec IncrementalSpec, existing *runtime.SolutionSet, delta []record.Record, cfg Config) (*IncrementalResult, error) {
	if existing == nil {
		return nil, fmt.Errorf("iterative: ResumeIncremental needs an existing solution set (use RunIncremental for cold starts)")
	}
	f, err := OpenFixpoint(spec, existing, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if cfg.Metrics != nil {
		cfg.Metrics.WarmRestarts.Add(1)
	}
	out, err := f.Run(delta)
	if out != nil {
		if cfg.Metrics != nil {
			cfg.Metrics.MaintenanceSupersteps.Add(int64(out.Supersteps))
		}
		out.Solution = existing.Snapshot()
	}
	return out, err
}
