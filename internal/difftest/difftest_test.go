package difftest

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/pregel"
	"repro/internal/record"
	"repro/internal/runtime"
	"repro/internal/sparklike"
)

var parallelisms = []int{1, 4}

// backends are the solution-set configurations every iterative engine run
// is repeated with; results must not depend on the choice.
var backends = []struct {
	name string
	cfg  func(iterative.Config) iterative.Config
}{
	{"map", func(c iterative.Config) iterative.Config {
		c.SolutionBackend = runtime.SolutionMap
		return c
	}},
	{"compact", func(c iterative.Config) iterative.Config {
		c.SolutionBackend = runtime.SolutionCompact
		return c
	}},
	{"spill", func(c iterative.Config) iterative.Config {
		c.SolutionMemoryBudget = 16 * record.EncodedSize
		return c
	}},
}

func assertComponentsEqual(t *testing.T, ctx string, got, want map[int64]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d assignments, oracle has %d", ctx, len(got), len(want))
	}
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("%s: vertex %d -> %d, oracle %d", ctx, v, got[v], c)
		}
	}
}

// TestConnectedComponentsAcrossEngines runs CC on every engine, graph,
// parallelism and solution backend, and compares against the union-find
// oracle (and therefore against every other engine).
func TestConnectedComponentsAcrossEngines(t *testing.T) {
	for _, g := range diffGraphs() {
		oracle := algorithms.CCReference(g)
		for _, par := range parallelisms {
			for _, bk := range backends {
				cfg := bk.cfg(iterative.Config{Parallelism: par})
				name := fmt.Sprintf("%s/p%d/%s", g.Name, par, bk.name)

				got, _, err := algorithms.CCIncremental(g, algorithms.CCCoGroup, cfg)
				if err != nil {
					t.Fatalf("%s: incr-cogroup: %v", name, err)
				}
				assertComponentsEqual(t, name+"/incr-cogroup", got, oracle)

				got, _, err = algorithms.CCIncremental(g, algorithms.CCMatch, cfg)
				if err != nil {
					t.Fatalf("%s: incr-match: %v", name, err)
				}
				assertComponentsEqual(t, name+"/incr-match", got, oracle)

				got, _, err = algorithms.CCMicrostepAsync(g, cfg)
				if err != nil {
					t.Fatalf("%s: microstep: %v", name, err)
				}
				assertComponentsEqual(t, name+"/microstep", got, oracle)
			}

			// The baseline engines have no solution set; run them once per
			// parallelism.
			name := fmt.Sprintf("%s/p%d", g.Name, par)
			pg, _, err := pregel.ConnectedComponents(g, pregel.Config{Parallelism: par})
			if err != nil {
				t.Fatalf("%s: pregel: %v", name, err)
			}
			assertComponentsEqual(t, name+"/pregel", pg, oracle)

			sr, err := sparklike.ConnectedComponents(sparklike.NewContext(par, nil), g, 0, false)
			if err != nil {
				t.Fatalf("%s: sparklike: %v", name, err)
			}
			assertComponentsEqual(t, name+"/sparklike", sr.Components, oracle)
		}
	}
}

func assertDistancesEqual(t *testing.T, ctx string, got, want map[int64]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: reached %d vertices, oracle reached %d", ctx, len(got), len(want))
	}
	for v, d := range want {
		gd, ok := got[v]
		if !ok || gd != d {
			t.Fatalf("%s: dist(%d) = %v (reached=%v), oracle %v", ctx, v, gd, ok, d)
		}
	}
}

// TestSSSPAcrossEngines runs single-source shortest paths on every engine
// with identical deterministic integer weights (exact in float64) and
// compares against the Dijkstra oracle.
func TestSSSPAcrossEngines(t *testing.T) {
	const source = 0
	for _, g := range diffGraphs() {
		we := weightedEdges(g)
		oracle := algorithms.SSSPReference(we, source)
		und := g.Undirected()
		weightFn := func(e graphgen.Edge) float64 { return diffWeight(e.Src, e.Dst) }

		for _, par := range parallelisms {
			for _, bk := range backends {
				cfg := bk.cfg(iterative.Config{Parallelism: par})
				name := fmt.Sprintf("%s/p%d/%s", g.Name, par, bk.name)

				got, _, err := algorithms.SSSP(we, source, cfg)
				if err != nil {
					t.Fatalf("%s: incremental: %v", name, err)
				}
				assertDistancesEqual(t, name+"/incremental", got, oracle)

				got, _, err = algorithms.SSSPMicrostep(we, source, cfg)
				if err != nil {
					t.Fatalf("%s: microstep: %v", name, err)
				}
				assertDistancesEqual(t, name+"/microstep", got, oracle)
			}

			name := fmt.Sprintf("%s/p%d", g.Name, par)
			pg, _, err := pregel.SSSP(und, weightFn, source, pregel.Config{Parallelism: par})
			if err != nil {
				t.Fatalf("%s: pregel: %v", name, err)
			}
			assertDistancesEqual(t, name+"/pregel", pg, oracle)

			sp, _, err := sparklike.SSSP(sparklike.NewContext(par, nil), und, weightFn, source, 0)
			if err != nil {
				t.Fatalf("%s: sparklike: %v", name, err)
			}
			assertDistancesEqual(t, name+"/sparklike", sp, oracle)
		}
	}
}

// TestBackendIndependenceByteIdentical checks the stronger property the
// out-of-core acceptance demands: the raw solution records (not just the
// derived assignment maps) are byte-identical across backends.
func TestBackendIndependenceByteIdentical(t *testing.T) {
	g := graphgen.Uniform("diff-bytes", 120, 240, 0xD1FF)
	canonical := func(recs []record.Record) []record.Record {
		out := append([]record.Record(nil), recs...)
		sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
		return out
	}
	var base []record.Record
	for i, bk := range backends {
		cfg := bk.cfg(iterative.Config{Parallelism: 4})
		_, res, err := algorithms.CCIncremental(g, algorithms.CCCoGroup, cfg)
		if err != nil {
			t.Fatalf("%s: %v", bk.name, err)
		}
		got := canonical(res.Solution)
		if i == 0 {
			base = got
			continue
		}
		if len(got) != len(base) {
			t.Fatalf("%s: %d records, %s has %d", bk.name, len(got), backends[0].name, len(base))
		}
		for j := range got {
			if !got[j].Equal(base[j]) {
				t.Fatalf("%s: record %d = %v, %s has %v", bk.name, j, got[j], backends[0].name, base[j])
			}
		}
	}
}
