package difftest

import (
	"sort"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/record"
)

// sortedSolution canonicalizes a solution set for byte-level comparison.
func sortedSolution(recs []record.Record) []record.Record {
	out := append([]record.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
	return out
}

// crossoverWeights pins cost weights so the adaptive runner starts on the
// incremental engine (microstep's per-element total misses the selection
// margin) and switches to microsteps once the per-superstep element flow
// decays below ~w0/4 — a deterministic dispatch-overhead crossover for
// the table below.
func crossoverWeights(w0 int, tasks int) *metrics.CalibratedWeights {
	return &metrics.CalibratedWeights{
		Net:          1,
		Dispatch:     3,
		StepOverhead: float64(w0) / 2 / float64(tasks),
	}
}

// TestAutoCrossoverDifferential shrinks the initial workset (via graph
// size) across a table of long-tailed chain graphs: at every size, the
// adaptive run must be byte-identical to both single-engine runs and to
// the union-find oracle; across the table, the runs must demonstrate the
// crossover — at least one run that switched incremental → microstep
// mid-way, with the workset at the switch point strictly smaller than
// the initial one.
func TestAutoCrossoverDifferential(t *testing.T) {
	const par = 2
	type entry struct {
		communities int64
		switched    bool
	}
	table := []entry{{48, false}, {24, false}, {12, false}, {6, false}}

	anySwitch := false
	for i := range table {
		e := &table[i]
		g := graphgen.ChainedCommunities("xover", e.communities, 12, 24, 0xD1FF)
		spec, s0, w0 := algorithms.CCIncrementalSpec(g, algorithms.CCMatch)

		// Single-engine baselines on fresh specs (state is resident).
		incSpec, incS0, incW0 := algorithms.CCIncrementalSpec(g, algorithms.CCMatch)
		incRes, err := iterative.RunIncremental(incSpec, incS0, incW0, iterative.Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		micSpec, micS0, micW0 := algorithms.CCIncrementalSpec(g, algorithms.CCMatch)
		micRes, err := iterative.RunMicrostep(micSpec, micS0, micW0, iterative.Config{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}

		tasks := len(spec.Plan.Nodes()) * par
		var m metrics.Counters
		autoRes, err := iterative.RunAuto(iterative.AutoSpec{Incremental: spec}, s0, w0,
			iterative.Config{
				Parallelism:   par,
				Metrics:       &m,
				EngineWeights: crossoverWeights(len(w0), tasks),
			})
		if err != nil {
			t.Fatal(err)
		}
		e.switched = autoRes.Switches > 0
		anySwitch = anySwitch || e.switched
		if e.switched && m.EngineSwitches.Load() == 0 {
			t.Errorf("communities=%d: result reports a switch, metrics do not", e.communities)
		}

		// Byte-identical solutions across all engines, and oracle-true.
		auto := sortedSolution(autoRes.Solution)
		for name, other := range map[string][]record.Record{
			"incremental": incRes.Solution,
			"microstep":   micRes.Solution,
		} {
			got := sortedSolution(other)
			if len(got) != len(auto) {
				t.Fatalf("communities=%d: %s has %d records, auto %d",
					e.communities, name, len(got), len(auto))
			}
			for j := range got {
				if got[j] != auto[j] {
					t.Fatalf("communities=%d: %s[%d]=%v, auto[%d]=%v",
						e.communities, name, j, got[j], j, auto[j])
				}
			}
		}
		oracle := algorithms.CCReference(g)
		assign := algorithms.ComponentsToMap(autoRes.Solution)
		for v, c := range oracle {
			if assign[v] != c {
				t.Fatalf("communities=%d: vertex %d -> %d, oracle %d", e.communities, v, assign[v], c)
			}
		}
	}
	if !anySwitch {
		t.Fatalf("no table entry switched incremental → microstep: %+v", table)
	}
}

// TestAutoMatchesAllEnginesOnDiffGraphs runs the adaptive runner over the
// suite's standard random graphs (every backendless engine choice left to
// the cost model) and cross-checks against the union-find oracle — the
// differential contract extended to engine selection.
func TestAutoMatchesAllEnginesOnDiffGraphs(t *testing.T) {
	for _, g := range diffGraphs() {
		for _, par := range []int{1, 4} {
			spec, s0, w0 := algorithms.CCAutoSpec(g)
			res, err := iterative.RunAuto(spec, s0, w0, iterative.Config{Parallelism: par})
			if err != nil {
				t.Fatalf("%s/par=%d: %v", g.Name, par, err)
			}
			oracle := algorithms.CCReference(g)
			assign := algorithms.ComponentsToMap(res.Solution)
			for v, c := range oracle {
				if assign[v] != c {
					t.Fatalf("%s/par=%d: vertex %d -> %d, oracle %d", g.Name, par, v, assign[v], c)
				}
			}
		}
	}
}
