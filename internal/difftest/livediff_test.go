package difftest

import (
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/live"
)

// The mutation-stream differential: random insert/delete streams applied
// to a LiveView must, after every flushed batch, match an oracle
// recomputed from scratch over the current graph — union-find for
// Connected Components, Dijkstra for SSSP — across every solution
// backend and parallelism. This exercises the monotone insert fast path,
// the bounded recompute, the full-recompute fallback, and their
// interleavings inside one batch.

// streamRNG is the same deterministic xorshift the graph generators use,
// so streams are stable across Go versions.
type streamRNG struct{ s uint64 }

func (r *streamRNG) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

func (r *streamRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// liveOracleCC is min-label union-find over the live graph state.
func liveOracleCC(gs *live.GraphState) map[int64]int64 {
	parent := make(map[int64]int64)
	for _, v := range gs.Vertices() {
		parent[v] = v
	}
	var find func(int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range gs.UndirectedRecords() {
		a, b := find(e.A), find(e.B)
		if a == b {
			continue
		}
		if a < b {
			parent[b] = a
		} else {
			parent[a] = b
		}
	}
	out := make(map[int64]int64, len(parent))
	for v := range parent {
		out[v] = find(v)
	}
	return out
}

// mutationStream derives a deterministic batch sequence for one graph:
// each batch mixes edge inserts (drawn from the unused pool or fresh
// vertices), edge deletes, and occasional vertex deletes.
func mutationStream(g *graphgen.Graph, rng *streamRNG, batches, perBatch int, model *live.GraphState, pool []graphgen.Edge) [][]live.Mutation {
	poolAt := 0
	var out [][]live.Mutation
	for b := 0; b < batches; b++ {
		var batch []live.Mutation
		for i := 0; i < perBatch; i++ {
			switch rng.intn(10) {
			case 0, 1, 2, 3: // insert from the held-back pool
				if poolAt < len(pool) {
					e := pool[poolAt]
					poolAt++
					batch = append(batch, live.InsertWeightedEdge(e.Src, e.Dst, diffWeight(e.Src, e.Dst)))
					continue
				}
				fallthrough
			case 4, 5: // insert a random (possibly novel) edge
				s := int64(rng.intn(int(g.NumVertices) + 8))
				d := int64(rng.intn(int(g.NumVertices) + 8))
				if s == d {
					continue
				}
				batch = append(batch, live.InsertWeightedEdge(s, d, diffWeight(s, d)))
			case 6, 7, 8: // delete a random live edge (as of stream build time)
				if model.NumEdges() == 0 {
					continue
				}
				// Drawing from the model keeps the stream deterministic and
				// guarantees the delete usually hits a live edge.
				vs := model.Vertices()
				v := vs[rng.intn(len(vs))]
				inc := model.IncidentEdges(v)
				if len(inc) == 0 {
					continue
				}
				e := inc[rng.intn(len(inc))]
				batch = append(batch, live.DeleteEdge(e.Src, e.Dst))
			case 9: // delete a vertex outright
				vs := model.Vertices()
				if len(vs) == 0 {
					continue
				}
				batch = append(batch, live.DeleteVertex(vs[rng.intn(len(vs))]))
			}
		}
		// Maintain the model as the stream is generated so later batches
		// reference the evolving graph.
		for _, mu := range batch {
			model.Apply(mu)
		}
		out = append(out, batch)
	}
	return out
}

// TestLiveMutationStreamCC runs the differential for Connected Components
// across backends × parallelisms.
func TestLiveMutationStreamCC(t *testing.T) {
	for _, g := range diffGraphs()[:2] {
		// Half the edges form the initial graph; the rest feed the stream.
		half := len(g.Edges) / 2
		initial := make([]live.Mutation, half)
		for i, e := range g.Edges[:half] {
			initial[i] = live.InsertEdge(e.Src, e.Dst)
		}
		for _, par := range parallelisms {
			for _, bk := range backends {
				name := fmt.Sprintf("cc/%s/p%d/%s", g.Name, par, bk.name)
				t.Run(name, func(t *testing.T) {
					cfg := live.ViewConfig{Config: bk.cfg(iterative.Config{Parallelism: par})}
					v, err := live.NewView(name, live.CC(), initial, cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer v.Close()

					model := live.NewGraphState()
					for _, mu := range initial {
						model.Apply(mu)
					}
					rng := &streamRNG{s: 0xD1FF ^ uint64(par)<<8 ^ uint64(len(g.Edges))}
					stream := mutationStream(g, rng, 6, 6, model, g.Edges[half:])

					// Replay against a fresh model (mutationStream consumed
					// its own copy while generating).
					replay := live.NewGraphState()
					for _, mu := range initial {
						replay.Apply(mu)
					}
					for bi, batch := range stream {
						for _, mu := range batch {
							replay.Apply(mu)
						}
						if err := v.Mutate(batch...); err != nil {
							t.Fatalf("batch %d: %v", bi, err)
						}
						if err := v.Flush(); err != nil {
							t.Fatalf("batch %d flush: %v", bi, err)
						}
						oracle := liveOracleCC(replay)
						got := algorithms.ComponentsToMap(v.Snapshot())
						if len(got) != len(oracle) {
							t.Fatalf("batch %d: %d records, oracle %d", bi, len(got), len(oracle))
						}
						for vid, c := range oracle {
							if got[vid] != c {
								t.Fatalf("batch %d: vertex %d -> %d, oracle %d", bi, vid, got[vid], c)
							}
						}
					}
				})
			}
		}
	}
}

// TestLiveMutationStreamSSSP runs the differential for shortest paths:
// deletions exercise the full-recompute fallback, inserts the monotone
// path, and every batch must match Dijkstra exactly (integer weights).
func TestLiveMutationStreamSSSP(t *testing.T) {
	const source = 0
	for _, g := range diffGraphs()[:2] {
		half := len(g.Edges) / 2
		initial := make([]live.Mutation, half)
		for i, e := range g.Edges[:half] {
			initial[i] = live.InsertWeightedEdge(e.Src, e.Dst, diffWeight(e.Src, e.Dst))
		}
		for _, par := range parallelisms {
			for _, bk := range backends {
				name := fmt.Sprintf("sssp/%s/p%d/%s", g.Name, par, bk.name)
				t.Run(name, func(t *testing.T) {
					cfg := live.ViewConfig{Config: bk.cfg(iterative.Config{Parallelism: par})}
					v, err := live.NewView(name, live.SSSP(source), initial, cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer v.Close()

					model := live.NewGraphState()
					for _, mu := range initial {
						model.Apply(mu)
					}
					rng := &streamRNG{s: 0x55E5 ^ uint64(par) ^ uint64(len(g.Edges))<<4}
					stream := mutationStream(g, rng, 4, 5, model, g.Edges[half:])

					replay := live.NewGraphState()
					for _, mu := range initial {
						replay.Apply(mu)
					}
					for bi, batch := range stream {
						// Never delete the source vertex: the view pins it.
						clean := batch[:0:0]
						for _, mu := range batch {
							if mu.Op == live.OpDeleteVertex && mu.Src == source {
								continue
							}
							clean = append(clean, mu)
						}
						for _, mu := range clean {
							replay.Apply(mu)
						}
						if err := v.Mutate(clean...); err != nil {
							t.Fatalf("batch %d: %v", bi, err)
						}
						if err := v.Flush(); err != nil {
							t.Fatalf("batch %d flush: %v", bi, err)
						}
						oracle := algorithms.SSSPReference(toWeighted(replay), source)
						got := make(map[int64]float64)
						for _, r := range v.Snapshot() {
							got[r.A] = r.X
						}
						if len(got) != len(oracle) {
							t.Fatalf("batch %d: reached %d, oracle %d\n got %v\n want %v", bi, len(got), len(oracle), got, oracle)
						}
						for vid, d := range oracle {
							if got[vid] != d {
								t.Fatalf("batch %d: dist(%d) = %v, oracle %v", bi, vid, got[vid], d)
							}
						}
					}
				})
			}
		}
	}
}

func toWeighted(gs *live.GraphState) []algorithms.WeightedEdge {
	return gs.WeightedUndirected()
}
