package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/iterative"
	"repro/internal/live"
	"repro/internal/record"
)

// The crash-recovery differential: a durable LiveView absorbing a random
// insert/delete stream is hard-killed at a random batch boundary (no
// flush, no final snapshot — exactly what SIGKILL leaves behind) and
// reopened. The recovered solution set must be byte-identical to an
// oracle view that saw every *acknowledged* batch — mutations accepted
// by Mutate before the kill — because acknowledgment is the WAL's
// durability promise. Runs across every solution backend and
// parallelism, for Connected Components and SSSP, so snapshot loading,
// WAL replay through the maintenance path, and their interleaving with
// periodic snapshots are all differentially checked.

// sortedRecords returns a snapshot in canonical order for byte-level
// comparison.
func sortedRecords(recs []record.Record) []record.Record {
	out := append([]record.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
	return out
}

func assertByteIdentical(t *testing.T, ctx string, got, want []record.Record) {
	t.Helper()
	got, want = sortedRecords(got), sortedRecords(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, oracle has %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: record %d: recovered %v, oracle %v", ctx, i, got[i], want[i])
		}
	}
}

// runCrashRecovery drives one configuration: apply batches 0..kill to a
// durable view (flushing pseudo-randomly), hard-kill it, recover, and
// compare against an in-memory oracle view that replays the same
// acknowledged batches.
func runCrashRecovery(t *testing.T, name string, mk func() live.Maintainer,
	initial []live.Mutation, stream [][]live.Mutation, cfg live.ViewConfig, rng *streamRNG) {
	t.Helper()
	dataDir := t.TempDir()

	dcfg := cfg
	dcfg.Durable = true
	dcfg.DataDir = dataDir
	dcfg.BatchSize = 1 << 30 // flushes happen only where this test says
	dcfg.SnapshotEveryFlushes = 2

	v, err := live.OpenView(name, mk(), initial, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	kill := rng.intn(len(stream))
	var acked [][]live.Mutation
	for bi := 0; bi <= kill; bi++ {
		if err := v.Mutate(stream[bi]...); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		acked = append(acked, stream[bi])
		if rng.intn(2) == 0 {
			if err := v.Flush(); err != nil {
				t.Fatalf("batch %d flush: %v", bi, err)
			}
		}
	}
	v.Kill()

	recovered, err := live.OpenView(name, mk(), nil, dcfg)
	if err != nil {
		t.Fatalf("recovery after kill at batch %d: %v", kill, err)
	}
	defer recovered.Close()

	oracle, err := live.NewView(name+"-oracle", mk(), initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for bi, batch := range acked {
		if err := oracle.Mutate(batch...); err != nil {
			t.Fatalf("oracle batch %d: %v", bi, err)
		}
		if err := oracle.Flush(); err != nil {
			t.Fatalf("oracle batch %d flush: %v", bi, err)
		}
	}

	assertByteIdentical(t, fmt.Sprintf("%s kill@%d", name, kill),
		recovered.Snapshot(), oracle.Snapshot())
}

func TestCrashRecoveryCC(t *testing.T) {
	for _, g := range diffGraphs()[:2] {
		half := len(g.Edges) / 2
		initial := make([]live.Mutation, half)
		for i, e := range g.Edges[:half] {
			initial[i] = live.InsertEdge(e.Src, e.Dst)
		}
		for _, par := range parallelisms {
			for _, bk := range backends {
				name := fmt.Sprintf("cc-%s-p%d-%s", g.Name, par, bk.name)
				t.Run(name, func(t *testing.T) {
					model := live.NewGraphState()
					for _, mu := range initial {
						model.Apply(mu)
					}
					rng := &streamRNG{s: 0xCAFE ^ uint64(par)<<12 ^ uint64(len(g.Edges))}
					stream := mutationStream(g, rng, 6, 6, model, g.Edges[half:])
					cfg := live.ViewConfig{Config: bk.cfg(iterative.Config{Parallelism: par})}
					runCrashRecovery(t, name, live.CC, initial, stream, cfg, rng)
				})
			}
		}
	}
}

func TestCrashRecoverySSSP(t *testing.T) {
	const source = 0
	for _, g := range diffGraphs()[:2] {
		half := len(g.Edges) / 2
		initial := make([]live.Mutation, half)
		for i, e := range g.Edges[:half] {
			initial[i] = live.InsertWeightedEdge(e.Src, e.Dst, diffWeight(e.Src, e.Dst))
		}
		for _, par := range parallelisms {
			for _, bk := range backends {
				name := fmt.Sprintf("sssp-%s-p%d-%s", g.Name, par, bk.name)
				t.Run(name, func(t *testing.T) {
					model := live.NewGraphState()
					for _, mu := range initial {
						model.Apply(mu)
					}
					rng := &streamRNG{s: 0xBEEF ^ uint64(par)<<4 ^ uint64(len(g.Edges))<<9}
					raw := mutationStream(g, rng, 4, 5, model, g.Edges[half:])
					// The SSSP view pins its source vertex.
					stream := make([][]live.Mutation, len(raw))
					for bi, batch := range raw {
						for _, mu := range batch {
							if mu.Op == live.OpDeleteVertex && mu.Src == source {
								continue
							}
							stream[bi] = append(stream[bi], mu)
						}
					}
					mk := func() live.Maintainer { return live.SSSP(source) }
					cfg := live.ViewConfig{Config: bk.cfg(iterative.Config{Parallelism: par})}
					runCrashRecovery(t, name, mk, initial, stream, cfg, rng)
				})
			}
		}
	}
}

// TestCrashRecoveryTornTail crashes *mid-append*: after the kill, the
// log's final frame is cut short, as when the process dies while the
// frame is being written. That batch was never acknowledged — Mutate did
// not return — so recovery must land on exactly the acknowledged prefix:
// all batches but the last.
func TestCrashRecoveryTornTail(t *testing.T) {
	g := diffGraphs()[0]
	half := len(g.Edges) / 2
	initial := make([]live.Mutation, half)
	for i, e := range g.Edges[:half] {
		initial[i] = live.InsertEdge(e.Src, e.Dst)
	}
	model := live.NewGraphState()
	for _, mu := range initial {
		model.Apply(mu)
	}
	rng := &streamRNG{s: 0x70B4}
	stream := mutationStream(g, rng, 5, 6, model, g.Edges[half:])

	dataDir := t.TempDir()
	cfg := live.ViewConfig{Config: iterative.Config{Parallelism: 4}}
	dcfg := cfg
	dcfg.Durable = true
	dcfg.DataDir = dataDir
	dcfg.BatchSize = 1 << 30
	dcfg.SnapshotEveryFlushes = 1 << 30 // only the create-time snapshot

	const name = "cc-torn"
	v, err := live.OpenView(name, live.CC(), initial, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	for bi, batch := range stream {
		if err := v.Mutate(batch...); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}
	v.Kill()

	// Cut into the final frame (a frame with >=1 mutation is >=37 bytes,
	// so removing up to 24 bytes always leaves it partial, never removes
	// it whole).
	walPath := filepath.Join(dataDir, name, "wal.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(1 + rng.intn(24))
	if err := os.Truncate(walPath, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}

	recovered, err := live.OpenView(name, live.CC(), nil, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	oracle, err := live.NewView(name+"-oracle", live.CC(), initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for _, batch := range stream[:len(stream)-1] {
		if err := oracle.Mutate(batch...); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	assertByteIdentical(t, "torn tail", recovered.Snapshot(), oracle.Snapshot())
}
