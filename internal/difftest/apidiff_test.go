package difftest

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/iterative"
	"repro/internal/record"
)

// canonicalBytes serializes a solution in record.Less order — the byte
// string every engine, backend, and parallelism must agree on.
func canonicalBytes(recs []record.Record) []byte {
	out := append([]record.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
	buf := make([]byte, 0, len(out)*record.EncodedSize)
	for _, r := range out {
		buf = r.Encode(buf)
	}
	return buf
}

// TestRunAPIByteCompatAcrossEngines is the API-compatibility differential
// for the unified superstep driver: every public Run* entry point — bulk,
// incremental (both variants), microstep, and the adaptive runner — is one
// thin policy over the same driver core, so on the same graph they must
// produce byte-identical canonical solutions, for every solution backend
// (map, compact, spill) and parallelism. This pins the refactor: a driver
// lifecycle change that perturbs any single engine's result breaks the
// matrix immediately.
func TestRunAPIByteCompatAcrossEngines(t *testing.T) {
	for _, g := range diffGraphs() {
		engines := []struct {
			name string
			run  func(cfg iterative.Config) ([]record.Record, error)
		}{
			{"bulk", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.CCBulk(g, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
			{"incr-match", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.CCIncremental(g, algorithms.CCMatch, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
			{"incr-cogroup", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.CCIncremental(g, algorithms.CCCoGroup, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
			{"microstep", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.CCMicrostepAsync(g, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
			{"auto", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.CCAuto(g, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
		}

		var base []byte
		var baseName string
		for _, par := range parallelisms {
			for _, bk := range backends {
				for _, e := range engines {
					name := fmt.Sprintf("%s/p%d/%s/%s", g.Name, par, bk.name, e.name)
					sol, err := e.run(bk.cfg(iterative.Config{Parallelism: par}))
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got := canonicalBytes(sol)
					if base == nil {
						base, baseName = got, name
						continue
					}
					if !bytes.Equal(got, base) {
						t.Fatalf("%s: solution bytes diverged from %s (%d vs %d bytes)",
							name, baseName, len(got), len(base))
					}
				}
			}
		}
	}
}

// TestSSSPAPIByteCompat is the same matrix for SSSP's two engine entry
// points (there is no bulk SSSP spec).
func TestSSSPAPIByteCompat(t *testing.T) {
	const source = 0
	for _, g := range diffGraphs() {
		we := weightedEdges(g)
		engines := []struct {
			name string
			run  func(cfg iterative.Config) ([]record.Record, error)
		}{
			{"incremental", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.SSSP(we, source, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
			{"microstep", func(cfg iterative.Config) ([]record.Record, error) {
				_, res, err := algorithms.SSSPMicrostep(we, source, cfg)
				if err != nil {
					return nil, err
				}
				return res.Solution, nil
			}},
		}
		var base []byte
		var baseName string
		for _, par := range parallelisms {
			for _, bk := range backends {
				for _, e := range engines {
					name := fmt.Sprintf("%s/p%d/%s/%s", g.Name, par, bk.name, e.name)
					sol, err := e.run(bk.cfg(iterative.Config{Parallelism: par}))
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got := canonicalBytes(sol)
					if base == nil {
						base, baseName = got, name
						continue
					}
					if !bytes.Equal(got, base) {
						t.Fatalf("%s: solution bytes diverged from %s (%d vs %d bytes)",
							name, baseName, len(got), len(base))
					}
				}
			}
		}
	}
}
