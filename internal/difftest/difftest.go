// Package difftest cross-checks every engine in the repository against
// each other and against independent oracles: on seeded random graphs,
// the incremental (superstep) driver, the asynchronous microstep driver,
// the Pregel-style engine and the Spark-style engine must all converge to
// the same Connected Components and SSSP fixpoints, at every parallelism,
// regardless of the solution-set backend (map, compact, or spilled under
// a memory budget). This is the correctness-first methodology of
// differential engine testing: the engines share almost no code on these
// paths, so agreement on randomized inputs is strong evidence that each
// one is right.
package difftest

import (
	"repro/internal/algorithms"
	"repro/internal/graphgen"
)

// diffGraphs returns the seeded random graphs the suite runs on: uniform
// (Erdős–Rényi) graphs of a few hundred edges plus a preferential-
// attachment graph, so both flat and skewed degree distributions are
// covered.
func diffGraphs() []*graphgen.Graph {
	return []*graphgen.Graph{
		graphgen.Uniform("diff-u1", 60, 120, 0xB10B),
		graphgen.Uniform("diff-u2", 80, 90, 0xC0FFEE), // sparse: many components
		graphgen.Uniform("diff-u3", 50, 200, 7),       // dense single component
		graphgen.PreferentialAttachment("diff-pa", 70, 2, 0xFEED),
	}
}

// diffWeights derives a deterministic small-integer weight for an edge, so
// path sums are exact in float64 and every engine sees identical lengths.
func diffWeight(src, dst int64) float64 {
	return float64(1 + (src*7+dst*13)%4)
}

// weightedEdges builds the weighted (directed, both orientations) edge
// list all SSSP engines run on.
func weightedEdges(g *graphgen.Graph) []algorithms.WeightedEdge {
	und := g.Undirected()
	out := make([]algorithms.WeightedEdge, len(und.Edges))
	for i, e := range und.Edges {
		out[i] = algorithms.WeightedEdge{Src: e.Src, Dst: e.Dst, Weight: diffWeight(e.Src, e.Dst)}
	}
	return out
}
