package difftest

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graphgen"
	"repro/internal/iterative"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/record"
)

// plannerModes are the planner × fusion configurations the differential
// suite runs. The first entry — the cost-based enumerator with fusion off
// — is exactly the pre-existing planning pipeline and serves as the
// baseline every other mode must reproduce.
var plannerModes = []struct {
	name string
	cfg  func(iterative.Config) iterative.Config
}{
	{"cost", func(c iterative.Config) iterative.Config {
		c.Planner = optimizer.PlannerCost
		c.DisableFusion = true
		return c
	}},
	{"cost+fuse", func(c iterative.Config) iterative.Config {
		c.Planner = optimizer.PlannerCost
		return c
	}},
	{"greedy", func(c iterative.Config) iterative.Config {
		c.Planner = optimizer.PlannerGreedy
		c.DisableFusion = true
		return c
	}},
	{"greedy+fuse", func(c iterative.Config) iterative.Config {
		c.Planner = optimizer.PlannerGreedy
		return c
	}},
	{"auto", func(c iterative.Config) iterative.Config {
		c.Planner = optimizer.PlannerAuto
		c.DisableFusion = true
		return c
	}},
	{"auto+fuse", func(c iterative.Config) iterative.Config { return c }},
}

func canonicalRecords(recs []record.Record) []record.Record {
	out := append([]record.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return record.Less(out[i], out[j]) })
	return out
}

func assertRecordsIdentical(t *testing.T, ctx string, got, want []record.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, baseline has %d", ctx, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: record %d = %v, baseline has %v", ctx, i, got[i], want[i])
		}
	}
}

// TestPlannerDifferentialCC: the greedy fast path and the auto planner
// must produce byte-identical Connected Components fixpoints to the
// cost-based planner, with and without fusion, across backends and
// parallelisms.
func TestPlannerDifferentialCC(t *testing.T) {
	graphs := []*graphgen.Graph{
		graphgen.Uniform("plan-u", 60, 120, 0xB10B),
		graphgen.PreferentialAttachment("plan-pa", 70, 2, 0xFEED),
	}
	for _, g := range graphs {
		for _, par := range parallelisms {
			for _, bk := range backends {
				var base []record.Record
				for i, pm := range plannerModes {
					cfg := pm.cfg(bk.cfg(iterative.Config{Parallelism: par}))
					name := fmt.Sprintf("%s/p%d/%s/%s", g.Name, par, bk.name, pm.name)
					_, res, err := algorithms.CCIncremental(g, algorithms.CCCoGroup, cfg)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got := canonicalRecords(res.Solution)
					if i == 0 {
						base = got
						continue
					}
					assertRecordsIdentical(t, name, got, base)
				}
			}
		}
	}
}

// TestPlannerDifferentialSSSP repeats the check for single-source
// shortest paths: exact small-integer weights, so fixpoints must be
// byte-identical across planners.
func TestPlannerDifferentialSSSP(t *testing.T) {
	const source = 0
	g := graphgen.Uniform("plan-sssp", 80, 160, 0xC0FFEE)
	we := weightedEdges(g)
	for _, par := range parallelisms {
		for _, bk := range backends {
			var base []record.Record
			for i, pm := range plannerModes {
				cfg := pm.cfg(bk.cfg(iterative.Config{Parallelism: par}))
				name := fmt.Sprintf("p%d/%s/%s", par, bk.name, pm.name)
				_, res, err := algorithms.SSSP(we, source, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := canonicalRecords(res.Solution)
				if i == 0 {
					base = got
					continue
				}
				assertRecordsIdentical(t, name, got, base)
			}
		}
	}
}

// TestPlannerDifferentialPageRank checks the bulk engine. Rank values are
// float sums whose addend order legitimately varies with plan shape and
// batch arrival, so ranks are compared within a tight tolerance rather
// than byte-for-byte; the vertex sets must still match exactly.
func TestPlannerDifferentialPageRank(t *testing.T) {
	g := graphgen.Uniform("plan-pr", 60, 150, 0xD00D)
	for _, par := range parallelisms {
		var base map[int64]float64
		for i, pm := range plannerModes {
			cfg := pm.cfg(iterative.Config{Parallelism: par})
			name := fmt.Sprintf("p%d/%s", par, pm.name)
			ranks, _, err := algorithms.PageRank(g, 15, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if i == 0 {
				base = ranks
				continue
			}
			if len(ranks) != len(base) {
				t.Fatalf("%s: %d vertices, baseline has %d", name, len(ranks), len(base))
			}
			for v, r := range base {
				if math.Abs(ranks[v]-r) > 1e-9 {
					t.Fatalf("%s: rank(%d) = %v, baseline %v", name, v, ranks[v], r)
				}
			}
		}
	}
}

// TestPlannerDifferentialReoptimize drives the mid-run re-planning path:
// with Reoptimize set and a tiny collapse trigger, the auto planner's
// greedy re-optimizations (and their plan-cache hits) must not change the
// fixpoint. Also asserts the new planning metrics move.
func TestPlannerDifferentialReoptimize(t *testing.T) {
	g := graphgen.Uniform("plan-reopt", 80, 90, 0xC0FFEE) // sparse: workset collapses
	spec, initSol, initW := algorithms.CCIncrementalSpec(g, algorithms.CCCoGroup)
	spec.Reoptimize = true

	var base []record.Record
	for i, pm := range plannerModes {
		ctr := &metrics.Counters{}
		cfg := pm.cfg(iterative.Config{Parallelism: 4, Metrics: ctr, CollectTrace: true})
		res, err := iterative.RunIncremental(spec, initSol, initW, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pm.name, err)
		}
		got := canonicalRecords(res.Solution)
		if i == 0 {
			base = got
		} else {
			assertRecordsIdentical(t, pm.name, got, base)
		}
		snap := ctr.Snapshot()
		if snap.PlanNanos <= 0 {
			t.Fatalf("%s: PlanNanos not recorded", pm.name)
		}
		wantGreedy := pm.name == "greedy" || pm.name == "greedy+fuse"
		if wantGreedy && snap.GreedyPlans == 0 {
			t.Fatalf("%s: GreedyPlans not counted", pm.name)
		}
		if snap.Reoptimizations > 0 && (pm.name == "auto" || pm.name == "auto+fuse") && snap.GreedyPlans == 0 {
			t.Fatalf("%s: auto re-optimized %d times without the greedy fast path",
				pm.name, snap.Reoptimizations)
		}
	}
}
