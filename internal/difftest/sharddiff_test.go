package difftest

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/distrib"
	"repro/internal/iterative"
	"repro/internal/live"
	"repro/internal/record"
	"repro/internal/runtime"
)

// The sharded-serving differential: a LiveView spread over a real worker
// process boundary (in-process listener, but the full control + data
// protocol) must stay byte-identical to a single-process LiveView — and
// to the from-scratch oracles — under the same random insert/delete
// stream. This exercises the distributed monotone candidate rounds, the
// coordinated full recompute on deletions, the digest-verified replans,
// and the scatter-gather snapshot, across backends and both algorithms.

// startViewWorkers launches n in-process `spinflow worker` equivalents
// hosting view sessions, returning their control addresses.
func startViewWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go distrib.ServeWorkerWith(ln, distrib.ServeWorkerOpts{Views: live.NewWorkerHost(nil)})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// assertSnapshotsIdentical requires the two converged solutions to be
// byte-identical after canonical sorting.
func assertSnapshotsIdentical(t *testing.T, ctx string, sharded, single []record.Record) {
	t.Helper()
	sortRecords(single)
	sortRecords(sharded)
	if len(sharded) != len(single) {
		t.Fatalf("%s: sharded %d records, single-process %d", ctx, len(sharded), len(single))
	}
	for i := range sharded {
		if !sharded[i].Equal(single[i]) {
			t.Fatalf("%s: record %d: sharded %+v, single-process %+v", ctx, i, sharded[i], single[i])
		}
	}
}

func sortRecords(recs []record.Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && record.Less(recs[j], recs[j-1]); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// shardBackends is the sharded matrix: the spill backend stays local-only
// (per-host spill files are exercised by the recovery suite instead).
var shardBackends = []string{"map", "compact"}

func shardViewConfig(backend string, workers []string) live.ViewConfig {
	cfg := live.ViewConfig{Config: iterative.Config{Parallelism: 4}}
	cfg.SolutionBackend = runtime.SolutionBackendKind(backend)
	cfg.Workers = workers
	return cfg
}

// ssspOracle is Dijkstra over the live graph state.
func ssspOracle(gs *live.GraphState, source int64) map[int64]float64 {
	return algorithms.SSSPReference(gs.WeightedUndirected(), source)
}

func TestLiveShardedStreamCC(t *testing.T) {
	g := diffGraphs()[0]
	half := len(g.Edges) / 2
	initial := make([]live.Mutation, half)
	for i, e := range g.Edges[:half] {
		initial[i] = live.InsertEdge(e.Src, e.Dst)
	}
	for _, bk := range shardBackends {
		t.Run(bk, func(t *testing.T) {
			workers := startViewWorkers(t, 1)
			sharded, err := live.NewView("shard-cc-"+bk, live.CC(), initial, shardViewConfig(bk, workers))
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			single, err := live.NewView("local-cc-"+bk, live.CC(), initial, shardViewConfig(bk, nil))
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()

			model := live.NewGraphState()
			replay := live.NewGraphState()
			for _, mu := range initial {
				model.Apply(mu)
				replay.Apply(mu)
			}
			rng := &streamRNG{s: 0x5AA5 ^ uint64(len(g.Edges))}
			stream := mutationStream(g, rng, 6, 6, model, g.Edges[half:])
			for bi, batch := range stream {
				for _, mu := range batch {
					replay.Apply(mu)
				}
				for _, v := range []*live.LiveView{sharded, single} {
					if err := v.Mutate(batch...); err != nil {
						t.Fatalf("batch %d: %v", bi, err)
					}
					if err := v.Flush(); err != nil {
						t.Fatalf("batch %d flush: %v", bi, err)
					}
				}
				ctx := fmt.Sprintf("batch %d", bi)
				snap := sharded.Snapshot()
				assertSnapshotsIdentical(t, ctx, snap, single.Snapshot())
				oracle := liveOracleCC(replay)
				if len(snap) != len(oracle) {
					t.Fatalf("%s: %d records, oracle %d", ctx, len(snap), len(oracle))
				}
				for _, r := range snap {
					if oracle[r.A] != r.B {
						t.Fatalf("%s: vertex %d -> %d, oracle %d", ctx, r.A, r.B, oracle[r.A])
					}
				}
				// Point queries route across the host boundary.
				for _, vid := range replay.Vertices()[:min(5, replay.NumVertices())] {
					r, ok := sharded.Query(vid)
					if !ok || r.B != oracle[vid] {
						t.Fatalf("%s: query(%d) = (%+v, %v), oracle %d", ctx, vid, r, ok, oracle[vid])
					}
				}
			}
			// Both hosts must actually hold records.
			for _, st := range sharded.Stats().Shards {
				if st.Records == 0 {
					t.Fatalf("host %d serves no records: %+v", st.Host, sharded.Stats().Shards)
				}
			}
		})
	}
}

func TestLiveShardedStreamSSSP(t *testing.T) {
	const source = 0
	g := diffGraphs()[1]
	half := len(g.Edges) / 2
	initial := make([]live.Mutation, half)
	for i, e := range g.Edges[:half] {
		initial[i] = live.InsertWeightedEdge(e.Src, e.Dst, diffWeight(e.Src, e.Dst))
	}
	for _, bk := range shardBackends {
		t.Run(bk, func(t *testing.T) {
			workers := startViewWorkers(t, 1)
			sharded, err := live.NewView("shard-sssp-"+bk, live.SSSP(source), initial, shardViewConfig(bk, workers))
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			single, err := live.NewView("local-sssp-"+bk, live.SSSP(source), initial, shardViewConfig(bk, nil))
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()

			model := live.NewGraphState()
			replay := live.NewGraphState()
			for _, mu := range initial {
				model.Apply(mu)
				replay.Apply(mu)
			}
			rng := &streamRNG{s: 0xD157 ^ uint64(len(g.Edges))<<2}
			stream := mutationStream(g, rng, 4, 5, model, g.Edges[half:])
			for bi, batch := range stream {
				clean := batch[:0:0]
				for _, mu := range batch {
					if mu.Op == live.OpDeleteVertex && mu.Src == source {
						continue
					}
					clean = append(clean, mu)
				}
				for _, mu := range clean {
					replay.Apply(mu)
				}
				for _, v := range []*live.LiveView{sharded, single} {
					if err := v.Mutate(clean...); err != nil {
						t.Fatalf("batch %d: %v", bi, err)
					}
					if err := v.Flush(); err != nil {
						t.Fatalf("batch %d flush: %v", bi, err)
					}
				}
				ctx := fmt.Sprintf("batch %d", bi)
				snap := sharded.Snapshot()
				assertSnapshotsIdentical(t, ctx, snap, single.Snapshot())
				oracle := ssspOracle(replay, source)
				if len(snap) != len(oracle) {
					t.Fatalf("%s: reached %d, oracle %d", ctx, len(snap), len(oracle))
				}
				for _, r := range snap {
					if oracle[r.A] != r.X {
						t.Fatalf("%s: dist(%d) = %v, oracle %v", ctx, r.A, r.X, oracle[r.A])
					}
				}
			}
		})
	}
}

// TestLiveShardedKillRecover crashes a durable sharded view mid-life and
// recovers it onto the same (still running) workers: the per-host
// snapshot layout plus the WAL tail must reassemble the exact state, and
// maintenance must continue across the recovery.
func TestLiveShardedKillRecover(t *testing.T) {
	g := diffGraphs()[2]
	half := len(g.Edges) / 2
	initial := make([]live.Mutation, half)
	for i, e := range g.Edges[:half] {
		initial[i] = live.InsertEdge(e.Src, e.Dst)
	}
	workers := startViewWorkers(t, 1)
	dir := t.TempDir()
	cfg := shardViewConfig("compact", workers)
	cfg.Durable = true
	cfg.DataDir = dir
	cfg.SnapshotEveryFlushes = 2

	v, err := live.OpenView("shard-recover", live.CC(), initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay := live.NewGraphState()
	model := live.NewGraphState()
	for _, mu := range initial {
		replay.Apply(mu)
		model.Apply(mu)
	}
	rng := &streamRNG{s: 0xBADC0DE}
	stream := mutationStream(g, rng, 6, 5, model, g.Edges[half:])
	for bi, batch := range stream[:4] {
		for _, mu := range batch {
			replay.Apply(mu)
		}
		if err := v.Mutate(batch...); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if err := v.Flush(); err != nil {
			t.Fatalf("batch %d flush: %v", bi, err)
		}
	}
	v.Kill() // crash: no final snapshot, workers keep running

	v2, err := live.OpenView("shard-recover", live.CC(), nil, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer v2.Close()
	check := func(ctx string) {
		t.Helper()
		oracle := liveOracleCC(replay)
		snap := v2.Snapshot()
		if len(snap) != len(oracle) {
			t.Fatalf("%s: %d records, oracle %d", ctx, len(snap), len(oracle))
		}
		for _, r := range snap {
			if oracle[r.A] != r.B {
				t.Fatalf("%s: vertex %d -> %d, oracle %d", ctx, r.A, r.B, oracle[r.A])
			}
		}
	}
	check("after recovery")
	for bi, batch := range stream[4:] {
		for _, mu := range batch {
			replay.Apply(mu)
		}
		if err := v2.Mutate(batch...); err != nil {
			t.Fatalf("post-recovery batch %d: %v", bi, err)
		}
		if err := v2.Flush(); err != nil {
			t.Fatalf("post-recovery batch %d flush: %v", bi, err)
		}
	}
	check("after post-recovery maintenance")
}
