package optimizer

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/record"
)

// checkDenseIdentities asserts the invariants the runtime relies on:
// node IDs equal their topological position and edge IDs are dense.
func checkDenseIdentities(t *testing.T, phys *PhysPlan) {
	t.Helper()
	edges := 0
	pos := map[*PhysNode]int{}
	for i, n := range phys.Nodes {
		if n.ID != i {
			t.Fatalf("node %s has ID %d at position %d", n.Name(), n.ID, i)
		}
		pos[n] = i
		edges += len(n.Inputs)
	}
	if phys.NumEdges != edges {
		t.Fatalf("NumEdges %d, plan has %d", phys.NumEdges, edges)
	}
	seen := make([]bool, edges)
	for _, n := range phys.Nodes {
		for _, e := range n.Inputs {
			if e.ID < 0 || e.ID >= edges || seen[e.ID] {
				t.Fatalf("edge into %s has bad or duplicate ID %d", n.Name(), e.ID)
			}
			seen[e.ID] = true
			if pos[e.From] >= pos[n] {
				t.Fatalf("node %s before its input %s", n.Name(), e.From.Name())
			}
		}
	}
}

// reducePlan is a shuffle-requiring plan with a join whose sides differ
// in estimated size — enough structure for the greedy rules to act on.
func reducePlan() (*dataflow.Plan, *dataflow.Node) {
	p := dataflow.NewPlan()
	big := p.SourceOf("big", nil).WithEst(10_000)
	small := p.SourceOf("small", nil).WithEst(100)
	j := p.MatchNode("join", big, small, record.KeyA, record.KeyA,
		func(l, r record.Record, out dataflow.Emitter) { out.Emit(l) })
	red := p.ReduceNode("agg", j, record.KeyA,
		func(k int64, g []record.Record, out dataflow.Emitter) { out.Emit(g[0]) })
	sink := p.SinkNode("out", red)
	return p, sink
}

func TestGreedyPlannerProducesValidPlan(t *testing.T) {
	p, _ := reducePlan()
	phys, err := Optimize(p, Options{Parallelism: 4, Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	checkDenseIdentities(t, phys)
	if len(phys.Sinks) != 1 {
		t.Fatalf("want 1 sink, got %d", len(phys.Sinks))
	}
}

func TestGreedyHashJoinBuildsSmallerSide(t *testing.T) {
	p, _ := reducePlan()
	phys, err := Optimize(p, Options{Parallelism: 4, Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(phys)
	if j == nil {
		t.Fatal("no join in plan")
	}
	if j.Local != LocalHashJoin {
		t.Fatalf("greedy join strategy = %v, want hash join", j.Local)
	}
	if j.BuildSide != 1 {
		t.Fatalf("build side = %d, want 1 (the smaller input)", j.BuildSide)
	}
}

func TestGreedyReusesExistingPartitioning(t *testing.T) {
	// reduce(A) over a placeholder already partitioned on A: the greedy
	// reduce must take the forward edge, not re-shuffle.
	p := dataflow.NewPlan()
	w := p.IterationPlaceholder("W", 1000)
	red := p.ReduceNode("agg", w, record.KeyA,
		func(k int64, g []record.Record, out dataflow.Emitter) {})
	p.SinkNode("out", red)
	phys, err := Optimize(p, Options{
		Parallelism:      4,
		Planner:          PlannerGreedy,
		PlaceholderProps: map[int]Props{w.ID: {Part: record.KeyID(record.KeyA)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range phys.Nodes {
		if n.Logical != nil && n.Logical.Contract == dataflow.ReduceOp && n.Role == RoleOperator {
			if n.Inputs[0].Ship != ShipForward {
				t.Fatalf("reduce over co-partitioned input ships %v, want forward", n.Inputs[0].Ship)
			}
			return
		}
	}
	t.Fatal("no reduce in plan")
}

func TestPlannerKindStrings(t *testing.T) {
	for k, want := range map[PlannerKind]string{
		PlannerAuto: "auto", PlannerCost: "cost", PlannerGreedy: "greedy", PlannerKind(99): "planner(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("PlannerKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// mapChainPlan is source → map → filter-shaped map → map → sink: three
// fusible Map operators on forward edges.
func mapChainPlan() (*dataflow.Plan, *dataflow.Node) {
	p := dataflow.NewPlan()
	src := p.SourceOf("src", nil).WithEst(1000)
	m1 := p.MapNode("inc", src, func(r record.Record, out dataflow.Emitter) {
		r.X++
		out.Emit(r)
	})
	f := p.FilterNode("odd", m1, func(r record.Record) bool { return r.A%2 == 1 })
	m2 := p.MapNode("scale", f, func(r record.Record, out dataflow.Emitter) {
		r.X *= 2
		out.Emit(r)
	})
	sink := p.SinkNode("out", m2)
	return p, sink
}

func TestFuseCollapsesMapChain(t *testing.T) {
	p, _ := mapChainPlan()
	phys, err := Optimize(p, Options{Parallelism: 2, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if phys.Fused != 2 {
		t.Fatalf("Fused = %d, want 2 (filter and second map fold into the first):\n%s",
			phys.Fused, phys.Explain())
	}
	checkDenseIdentities(t, phys)
	var head *PhysNode
	for _, n := range phys.Nodes {
		if len(n.FusedChain) > 0 {
			head = n
		}
	}
	if head == nil {
		t.Fatal("no fused head in plan")
	}
	if len(head.FusedChain) != 2 {
		t.Fatalf("fused chain has %d members, want 2", len(head.FusedChain))
	}
	if !strings.Contains(head.Name(), "+") {
		t.Fatalf("fused head name %q does not show the chain", head.Name())
	}
}

func TestFuseSkipsShuffledAndSharedEdges(t *testing.T) {
	// map → reduce → map: the map-to-reduce edge re-partitions and the
	// reduce is not a Map, so nothing can fuse.
	p := dataflow.NewPlan()
	src := p.SourceOf("src", nil).WithEst(1000)
	m := p.MapNode("m", src, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	red := p.ReduceNode("agg", m, record.KeyA,
		func(k int64, g []record.Record, out dataflow.Emitter) { out.Emit(g[0]) })
	m2 := p.MapNode("m2", red, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	p.SinkNode("out", m2)
	phys, err := Optimize(p, Options{Parallelism: 2, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if phys.Fused != 0 {
		t.Fatalf("Fused = %d, want 0:\n%s", phys.Fused, phys.Explain())
	}

	// Diamond: one map feeding two consumers must not fuse into either.
	p2 := dataflow.NewPlan()
	src2 := p2.SourceOf("src", nil).WithEst(1000)
	shared := p2.MapNode("shared", src2, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	a := p2.MapNode("a", shared, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	b := p2.MapNode("b", shared, func(r record.Record, out dataflow.Emitter) { out.Emit(r) })
	u := p2.UnionNode("u", a, b)
	p2.SinkNode("out", u)
	phys2, err := Optimize(p2, Options{Parallelism: 2, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range phys2.Nodes {
		for _, f := range n.FusedChain {
			if f.Name == "a" || f.Name == "b" {
				t.Fatalf("consumer of shared producer fused: %s absorbed %s", n.Name(), f.Name)
			}
		}
		if n.Logical != nil && n.Logical.Name == "shared" && len(n.FusedChain) > 0 {
			t.Fatalf("shared producer absorbed a consumer: %s", n.Name())
		}
	}
}

func TestGreedyWithFusionMatchesShape(t *testing.T) {
	p, _ := mapChainPlan()
	phys, err := Optimize(p, Options{Parallelism: 2, Planner: PlannerGreedy, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if phys.Fused != 2 {
		t.Fatalf("greedy+fuse Fused = %d, want 2", phys.Fused)
	}
	checkDenseIdentities(t, phys)
}

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	p, _ := reducePlan()
	c := NewPlanCache()
	opt := Options{Parallelism: 4, Planner: PlannerGreedy}
	pl1, hit, err := c.Optimize(p, opt, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup reported a hit")
	}
	// Same order of magnitude: hit, and the identical plan object.
	pl2, hit, err := c.Optimize(p, opt, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || pl2 != pl1 {
		t.Fatalf("same-bucket lookup: hit=%v same=%v", hit, pl2 == pl1)
	}
	// A collapsed estimate is a different bucket: miss.
	if _, hit, err = c.Optimize(p, opt, 10); err != nil || hit {
		t.Fatalf("cross-bucket lookup: hit=%v err=%v", hit, err)
	}
	// A different planner fingerprint is a different entry.
	opt.Planner = PlannerCost
	if _, hit, err = c.Optimize(p, opt, 900); err != nil || hit {
		t.Fatalf("cross-planner lookup: hit=%v err=%v", hit, err)
	}
	if c.Hits != 1 || c.Misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", c.Hits, c.Misses)
	}
}

func TestKeyRegistryMemoization(t *testing.T) {
	p, _ := reducePlan()
	reg := KeyRegistry(p, Options{})
	if len(reg) == 0 {
		t.Fatal("empty registry for a keyed plan")
	}
	if _, ok := reg[record.KeyID(record.KeyA)]; !ok {
		t.Fatal("registry is missing the join/reduce key")
	}
	// Optimize with an injected registry must still plan correctly.
	phys, err := Optimize(p, Options{Parallelism: 2, Registry: reg, Planner: PlannerGreedy})
	if err != nil {
		t.Fatal(err)
	}
	checkDenseIdentities(t, phys)
}
