package optimizer

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestCalibratorRecoversWeights feeds synthetic supersteps generated from
// known constants and checks the fit recovers them (the regression's
// features are diverse, so the system is well-conditioned).
func TestCalibratorRecoversWeights(t *testing.T) {
	const (
		net, cpu, group, merge = 2.0, 1.0, 3.0, 0.5 // ns per record
		step                   = 1000.0             // ns per task
	)
	c := NewCalibrator()
	if w := c.Weights(); w.Samples != 0 || w.Net != DefaultWeights().Net {
		t.Fatalf("empty calibrator should return defaults, got %+v", w)
	}

	mk := func(sh, udf, acc, upd int64, tasks int) {
		ns := net*float64(sh) + cpu*float64(udf) + group*float64(acc) +
			merge*float64(upd) + step*float64(tasks)
		c.ObserveSuperstep(metrics.Snapshot{
			RecordsShipped: sh, UDFInvocations: udf,
			SolutionAccesses: acc, SolutionUpdates: upd,
		}, tasks, time.Duration(ns))
	}
	// Diverse samples: vary each feature independently.
	mk(1000, 500, 200, 100, 8)
	mk(5000, 500, 200, 100, 8)
	mk(1000, 4000, 200, 100, 8)
	mk(1000, 500, 3000, 100, 8)
	mk(1000, 500, 200, 2000, 8)
	mk(1000, 500, 200, 100, 32)
	mk(2000, 1000, 400, 200, 16)
	mk(8000, 100, 100, 50, 8)

	w := c.Weights()
	if w.Samples != 8 {
		t.Fatalf("Samples = %d, want 8", w.Samples)
	}
	approx := func(name string, got, want float64) {
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s = %.3f, want ≈ %.3f", name, got, want)
		}
	}
	approx("Net", w.Net, net)
	approx("CPU", w.CPU, cpu)
	approx("Group", w.Group, group)
	approx("Merge", w.Merge, merge)
	approx("StepOverhead", w.StepOverhead, step)

	// A microstep observation pins the dispatch weight directly: excess
	// time over the fitted per-record work, per element.
	c.ObserveMicrostepRun(metrics.Snapshot{UDFInvocations: 100, SolutionUpdates: 50},
		200, time.Duration(100*cpu+50*merge+200*40))
	if d := c.Weights().Dispatch; d < 36 || d > 44 {
		t.Errorf("Dispatch = %.2f, want ≈ 40", d)
	}
}

// TestCalibratorDegenerate checks that collinear samples (every superstep
// identical — the long-tail regime) fall back to defaults-shaped safety
// rather than producing a wild fit: weights stay non-negative and the
// per-record sum stays positive.
func TestCalibratorDegenerate(t *testing.T) {
	c := NewCalibrator()
	for i := 0; i < 10; i++ {
		c.ObserveSuperstep(metrics.Snapshot{
			RecordsShipped: 100, UDFInvocations: 100,
			SolutionAccesses: 100, SolutionUpdates: 100,
		}, 8, time.Millisecond)
	}
	w := c.Weights()
	if w.Net < 0 || w.CPU < 0 || w.Group < 0 || w.Merge < 0 || w.StepOverhead < 0 {
		t.Fatalf("negative fitted weight: %+v", w)
	}
	if w.Net+w.CPU+w.Group+w.Merge <= 0 {
		t.Fatalf("fit lost all per-record cost: %+v", w)
	}
}

// TestEngineCostOrdering sanity-checks the per-engine formulas under the
// default weights: a tiny workset over a big solution favors microsteps'
// total against bulk's full recompute, and bulk's cost scales with the
// solution it re-materializes rather than the workset.
func TestEngineCostOrdering(t *testing.T) {
	w := DefaultWeights()
	st := EngineStats{
		SolutionSize: 100000, WorksetSize: 50, ConstantSize: 200000,
		ExpectedSupersteps: 10, Tasks: 24,
	}
	bulk := EngineCost(EngineBulk, st, w)
	inc := EngineCost(EngineIncremental, st, w)
	micro := EngineCost(EngineMicrostep, st, w)
	if inc >= bulk {
		t.Errorf("tiny workset: incremental (%.0f) should beat bulk (%.0f)", inc, bulk)
	}
	if micro >= bulk {
		t.Errorf("tiny workset: microstep (%.0f) should beat bulk (%.0f)", micro, bulk)
	}

	// A huge workset narrows the gap to bulk.
	st.WorksetSize = 400000
	if EngineCost(EngineIncremental, st, w) <= inc {
		t.Error("incremental cost did not grow with the workset")
	}

	// The crossover: a collapsed workset deep into a run switches — the
	// run must be long enough to amortize indexing the 200k constant
	// records — while the same workset on superstep 1 does not, and a
	// full workset never does.
	st.WorksetSize = 50
	if !MicrostepWins(10, 1000, st, w) {
		t.Error("collapsed workset after 1000 supersteps should switch")
	}
	if MicrostepWins(10, 1, st, w) {
		t.Error("collapsed workset on superstep 1 must not switch (setup unamortized)")
	}
	if MicrostepWins(100000, 1000, st, w) {
		t.Error("full workset must not switch")
	}
}
