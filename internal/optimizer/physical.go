// Package optimizer compiles a logical dataflow plan into a physical
// execution plan. Two planners share one physical algebra:
//
//   - The cost-based planner (optimize.go, strategies.go) implements the
//     paper's §4.3: Volcano-style plan enumeration over shipping
//     strategies (forward, hash-partition, broadcast) and local
//     strategies (hash vs. sort-merge join, hash vs. sort aggregation),
//     interesting-property propagation — including the two-pass
//     traversal that feeds properties across the iteration's feedback
//     edge — iteration-weighted costing of the dynamic data path, and
//     caching of the constant data path.
//   - The greedy fast path (greedy.go) skips enumeration entirely and
//     picks strategies by structural rules — reuse partitioning the
//     input already has, hash-ship otherwise, build the smaller (or
//     loop-invariant) join side. It plans in microseconds, which is what
//     mid-iteration re-optimization needs: there, planning latency sits
//     on the superstep path. Options.Planner selects; PlanCache
//     (cache.go) memoizes whole plans across re-optimizations.
//
// Both planners feed the operator-fusion rewrite (fuse.go), which
// collapses adjacent Map/filter/project chains connected by exclusive
// forward edges into single fused nodes executed record-at-a-time.
package optimizer

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/record"
)

// ShipStrategy is how records travel along a physical edge.
type ShipStrategy int

// The shipping strategies of §3/§4.3.
const (
	// ShipForward keeps records in their producing partition (pipelined).
	ShipForward ShipStrategy = iota
	// ShipPartition hash-partitions records by a key across consumers.
	ShipPartition
	// ShipBroadcast replicates every record to every consumer partition.
	ShipBroadcast
)

func (s ShipStrategy) String() string {
	switch s {
	case ShipForward:
		return "forward"
	case ShipPartition:
		return "partition"
	case ShipBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("ship(%d)", int(s))
}

// LocalStrategy is the operator implementation chosen for a physical node.
type LocalStrategy int

// The local strategies.
const (
	// LocalNone streams records through (Map, Union, Sink, sources).
	LocalNone LocalStrategy = iota
	// LocalHashJoin builds a hash table on the build side and probes with
	// the other (BuildSide selects which input is built).
	LocalHashJoin
	// LocalSortMergeJoin sorts both inputs by key and merges.
	LocalSortMergeJoin
	// LocalHashAgg groups via a hash table.
	LocalHashAgg
	// LocalSortAgg sorts by key (or exploits pre-sorted input) and groups
	// sequentially.
	LocalSortAgg
	// LocalHashCoGroup hash-groups both inputs and pairs the groups.
	LocalHashCoGroup
	// LocalSortCoGroup sorts both inputs by key (or exploits existing
	// order) and merges the group pairs sequentially.
	LocalSortCoGroup
	// LocalBlockCross materializes the build side and streams the other.
	LocalBlockCross
	// LocalSort sorts the input by a key (used by enforcer nodes).
	LocalSort
	// LocalSolutionIndex is the stateful solution-set join/cogroup of §5.3:
	// the operator is merged with the partitioned solution-set index.
	LocalSolutionIndex
)

func (l LocalStrategy) String() string {
	switch l {
	case LocalNone:
		return "none"
	case LocalHashJoin:
		return "hash-join"
	case LocalSortMergeJoin:
		return "sort-merge-join"
	case LocalHashAgg:
		return "hash-agg"
	case LocalSortAgg:
		return "sort-agg"
	case LocalHashCoGroup:
		return "hash-cogroup"
	case LocalSortCoGroup:
		return "sort-cogroup"
	case LocalBlockCross:
		return "block-cross"
	case LocalSort:
		return "sort"
	case LocalSolutionIndex:
		return "solution-index"
	}
	return fmt.Sprintf("local(%d)", int(l))
}

// Role distinguishes ordinary operator nodes from the auxiliary nodes the
// optimizer inserts.
type Role int

// Physical node roles.
const (
	// RoleOperator executes the logical node's contract.
	RoleOperator Role = iota
	// RoleCombiner pre-aggregates before a shuffle (for combinable Reduce).
	RoleCombiner
	// RoleEnforcer establishes a physical property (partitioning via its
	// input edge, sorting via LocalSort) without changing the data.
	RoleEnforcer
)

// Edge is a physical input edge.
type Edge struct {
	From *PhysNode
	Ship ShipStrategy
	// Key is the partitioning key when Ship == ShipPartition.
	Key record.KeyFunc
	// Cache marks a constant-data-path edge whose received input is
	// materialized once and reused every iteration (§4.3). For hash-join
	// build sides the runtime caches the built hash table itself
	// (§4.3/§5.3: "the cache stores the records ... possibly as a hash
	// table, or B+-Tree").
	Cache bool
	// ID is the edge's stable identity within its plan, assigned densely
	// in [0, PhysPlan.NumEdges). The runtime keys exchanges by it so a
	// persistent session can allocate one exchange per (edge, partition)
	// and reset — rather than rebuild — it between supersteps.
	ID int
}

// PhysNode is one operator instance in the physical plan (instantiated
// once per partition by the runtime).
type PhysNode struct {
	ID      int
	Role    Role
	Logical *dataflow.Node
	Inputs  []Edge
	Local   LocalStrategy
	// BuildSide selects the hash-join build input (0 or 1).
	BuildSide int
	// SortKey is the sort key for LocalSort / LocalSortAgg /
	// LocalSortMergeJoin output ordering.
	SortKey record.KeyFunc
	// EstOut is the optimizer's output-cardinality estimate.
	EstOut int64
	// OnDynamicPath records whether this node re-executes every iteration.
	OnDynamicPath bool
	// FusedChain lists the logical Map nodes the fusion rewrite collapsed
	// onto this node's output, in application order: the runtime applies
	// their UDFs record-at-a-time inside this node's emitter instead of
	// crossing an exchange per operator.
	FusedChain []*dataflow.Node
	// InjectKey, set on IterationInput placeholders only, is the key the
	// placeholder's data must be hash-partitioned by when re-injected, so
	// that properties granted across the feedback edge hold (nil = any
	// split works).
	InjectKey record.KeyFunc
}

// Name returns a readable label.
func (n *PhysNode) Name() string {
	name := n.Logical.Name
	for _, f := range n.FusedChain {
		name += "+" + f.Name
	}
	switch n.Role {
	case RoleCombiner:
		return name + "-combine"
	case RoleEnforcer:
		return name + "-enforce"
	}
	return name
}

// PhysPlan is an executable physical plan.
type PhysPlan struct {
	// Nodes in topological order (inputs precede consumers).
	Nodes []*PhysNode
	// Sinks are the output-collecting nodes.
	Sinks []*PhysNode
	// Placeholders lists the physical IterationInput nodes, for the
	// iteration drivers (a plan rarely has more than one).
	Placeholders []*PhysNode
	// Parallelism is the number of partitions the plan runs with.
	Parallelism int
	// Hosts is the number of processes the partitions are spread over
	// (0 or 1: single-process, the default). Recorded so a distributed
	// session can sanity-check that its plan was costed for its topology.
	Hosts int
	// NumEdges is the number of physical input edges; Edge.ID values are
	// dense in [0, NumEdges), so exchange tables can be flat arrays.
	NumEdges int
	// Cost is the estimated total cost (dynamic path pre-weighted by the
	// expected iteration count).
	Cost float64
	// Fused counts the Map operators the fusion rewrite folded into
	// upstream nodes (0 when fusion was off or found nothing).
	Fused int
}

// Placeholder returns the physical node for the logical IterationInput
// with the given ID, or nil.
func (p *PhysPlan) Placeholder(logicalID int) *PhysNode {
	for _, pn := range p.Placeholders {
		if pn.Logical.ID == logicalID {
			return pn
		}
	}
	return nil
}

// PlaceholderKey tells the iteration driver which key the placeholder's
// data must be hash-partitioned by when re-injected (nil = any split
// works).
func (p *PhysPlan) PlaceholderKey(logicalID int) record.KeyFunc {
	if pn := p.Placeholder(logicalID); pn != nil {
		return pn.InjectKey
	}
	return nil
}

// Explain renders the plan for debugging and the Figure-4 experiment.
func (p *PhysPlan) Explain() string {
	s := ""
	for _, n := range p.Nodes {
		s += fmt.Sprintf("%2d %-28s local=%-16s", n.ID, n.Name(), n.Local)
		for _, e := range n.Inputs {
			cached := ""
			if e.Cache {
				cached = ",cached"
			}
			s += fmt.Sprintf(" <-[%s%s] %s", e.Ship, cached, e.From.Name())
		}
		if n.OnDynamicPath {
			s += "  (dynamic)"
		}
		s += "\n"
	}
	return s
}

// Props are the physical data properties the optimizer tracks per
// candidate output (§4.3's interesting properties).
type Props struct {
	// Part is the KeyID of the hash-partitioning key (0 = unpartitioned).
	Part uintptr
	// Sort is the KeyID of the within-partition sort key (0 = unsorted).
	Sort uintptr
	// Repl marks data replicated to every partition (broadcast result).
	Repl bool
}

// covers reports whether properties p satisfy requirement q: every
// property present in q is present in p.
func (p Props) covers(q Props) bool {
	if q.Part != 0 && p.Part != q.Part {
		return false
	}
	if q.Sort != 0 && p.Sort != q.Sort {
		return false
	}
	if q.Repl && !p.Repl {
		return false
	}
	return true
}
