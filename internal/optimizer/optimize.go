package optimizer

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/record"
)

// PlannerKind selects the planning algorithm.
type PlannerKind int

// The planners.
const (
	// PlannerAuto defers the choice to the caller's context: iteration
	// drivers resolve it to PlannerCost for the initial plan and to
	// PlannerGreedy for re-optimizations inside a running iteration, where
	// planning latency is on the superstep path. A direct Optimize call
	// has no such context and treats it as PlannerCost.
	PlannerAuto PlannerKind = iota
	// PlannerCost is the full §4.3 enumeration: interesting-property
	// propagation, candidate generation and pruning, feedback-closed
	// costing.
	PlannerCost
	// PlannerGreedy is the zero-statistics fast path (greedy.go): one
	// structural rule per contract, no candidate enumeration.
	PlannerGreedy
)

func (k PlannerKind) String() string {
	switch k {
	case PlannerAuto:
		return "auto"
	case PlannerCost:
		return "cost"
	case PlannerGreedy:
		return "greedy"
	}
	return fmt.Sprintf("planner(%d)", int(k))
}

// Options configures one optimization run.
type Options struct {
	// Parallelism is the number of partitions (degree of parallelism).
	Parallelism int
	// Hosts is the number of processes the partitions will be spread over
	// under contiguous placement. 0 or 1 (single-process) leaves the cost
	// model exactly as before; larger values make shipCost distinguish
	// in-process partition crossings from cross-process ones, so plans for
	// a distributed session prefer strategies that keep records local.
	Hosts int
	// ExpectedIterations weights the dynamic data path's cost (§4.3: "we
	// weigh the cost of the dynamic data path by a factor proportional to
	// the expected number of iterations"). 0 or 1 means non-iterative.
	ExpectedIterations int
	// PlaceholderProps grants physical properties to IterationInput
	// placeholders (e.g. the working set arrives partitioned by its key
	// because the previous superstep's queues were partitioned).
	PlaceholderProps map[int]Props
	// SinkPartition requires the input of the given sink (by logical node
	// ID) to be hash-partitioned on the given key — used by the iteration
	// drivers so delta sets merge locally and worksets re-enter
	// partitioned.
	SinkPartition map[int]record.KeyFunc
	// Feedback maps IterationInput placeholder IDs to the sink ID whose
	// output becomes the placeholder's data next iteration. The optimizer
	// propagates interesting properties across this loop edge with the
	// paper's two-traversal scheme (§4.3).
	Feedback map[int]int
	// JoinHints pins the shipping strategy of individual Match nodes (by
	// logical node ID), used to reproduce specific plans (e.g. the two
	// Figure-4 PageRank variants) regardless of the cost model.
	JoinHints map[int]JoinHint
	// Planner selects the planning algorithm. The zero value (PlannerAuto)
	// behaves like PlannerCost here; iteration drivers resolve it to the
	// greedy fast path when re-optimizing mid-run.
	Planner PlannerKind
	// Fuse runs the operator-fusion rewrite (fuse.go) on the chosen plan:
	// chains of adjacent Map operators connected by exclusive forward
	// edges collapse into single fused nodes, eliminating one exchange
	// hop, one batch copy and one pool round-trip per fused edge per
	// superstep.
	Fuse bool
	// Registry optionally supplies a prebuilt key-identity registry (see
	// KeyRegistry), so repeated optimizations of the same plan — a
	// re-planning loop inside a running iteration — skip rebuilding it.
	Registry map[uintptr]record.KeyFunc
}

// JoinHint restricts the strategies enumerated for a Match node.
type JoinHint int

// Join hints.
const (
	// HintNone lets the cost model decide.
	HintNone JoinHint = iota
	// HintBroadcastLeft replicates input 0 and keeps input 1 in place.
	HintBroadcastLeft
	// HintBroadcastRight replicates input 1 and keeps input 0 in place.
	HintBroadcastRight
	// HintRepartition partitions both inputs on the join keys.
	HintRepartition
)

// Optimize compiles the logical plan into a physical plan.
//
// When Feedback is set, optimization closes the loop: after an initial
// pass, the physical properties the chosen plan establishes at each
// feedback sink are granted to the corresponding IterationInput (the data
// re-enters the loop with exactly those properties), and the plan is
// re-optimized under that assumption; the cheaper plan wins. This realizes
// §4.3's observation that "the IPs propagated down from O depend through
// the feedback on the IPs created for I".
func Optimize(p *dataflow.Plan, opt Options) (*PhysPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = 1
	}
	if opt.ExpectedIterations <= 0 {
		opt.ExpectedIterations = 1
	}

	run := func(php map[int]Props) (*PhysPlan, []Props, error) {
		if opt.Planner == PlannerGreedy {
			return greedyPlan(p, opt, php)
		}
		o := &optz{
			plan:      p,
			opt:       opt,
			phProps:   php,
			consumers: p.Consumers(),
			est:       make(map[int]int64),
			dynamic:   make(map[int]bool),
			memo:      make(map[int][]cand),
			ips:       make(map[int][]ipEntry),
			keyReg:    make(map[uintptr]record.KeyFunc),
		}
		o.computeEstimates()
		o.computeDynamic()
		o.registerKeys()
		o.collectIPs()
		return o.assemble()
	}

	// Snapshot the feedback edges once into a small sorted buffer: the
	// closure logic below walks them up to three times, and repeated map
	// iteration (randomized order, iterator setup) is measurable at the
	// fast path's timescale. Sorting also makes multi-edge grant order
	// deterministic.
	var fbBuf [4]fbEdge
	fb := fbBuf[:0]
	for ph, sinkID := range opt.Feedback {
		fb = append(fb, fbEdge{ph, sinkID})
	}
	for i := 1; i < len(fb); i++ { // insertion sort: len is 0 or 1 in practice
		for j := i; j > 0 && fb[j].ph < fb[j-1].ph; j-- {
			fb[j], fb[j-1] = fb[j-1], fb[j]
		}
	}

	// Greedy fast path for the loop closure: where the cost-based planner
	// optimizes twice and compares costs, the greedy planner grants the
	// feedback properties structurally — a feedback sink pinned to a
	// partitioning key (the iteration drivers always pin the workset sink)
	// re-enters the loop with exactly that partitioning. One pass, no
	// comparison; if the grant turns out not to hold, fall through to the
	// generic two-pass closure below.
	if opt.Planner == PlannerGreedy && len(fb) > 0 {
		needGrant := false
		for _, e := range fb {
			if _, ok := opt.SinkPartition[e.sink]; ok && opt.PlaceholderProps[e.ph].Part == 0 {
				needGrant = true
				break
			}
		}
		if needGrant {
			granted := make(map[int]Props, len(opt.PlaceholderProps)+len(fb))
			for k, v := range opt.PlaceholderProps {
				granted[k] = v
			}
			for _, e := range fb {
				if k, ok := opt.SinkPartition[e.sink]; ok && granted[e.ph].Part == 0 {
					g := granted[e.ph]
					g.Part = record.KeyID(k)
					granted[e.ph] = g
				}
			}
			plan, sinkProps, err := run(granted)
			if err == nil && feedbackConsistent(fb, granted, sinkProps) {
				return finishPlan(p, opt, plan, granted), nil
			}
		}
	}

	plan, sinkProps, err := run(opt.PlaceholderProps)
	if err != nil {
		return nil, err
	}
	// The granted view starts as the caller's placeholder properties and is
	// only copied if the feedback closure actually upgrades a grant.
	granted := opt.PlaceholderProps
	if len(fb) > 0 {
		var upgraded map[int]Props
		for _, e := range fb {
			sp := sinkProps[e.sink]
			if sp.Part != 0 && granted[e.ph].Part != sp.Part {
				if upgraded == nil {
					upgraded = make(map[int]Props, len(opt.PlaceholderProps)+len(fb))
					for k, v := range opt.PlaceholderProps {
						upgraded[k] = v
					}
				}
				g := upgraded[e.ph]
				g.Part = sp.Part
				upgraded[e.ph] = g
			}
		}
		if upgraded != nil {
			plan2, sinkProps2, err2 := run(upgraded)
			if err2 == nil && plan2.Cost < plan.Cost && feedbackConsistent(fb, upgraded, sinkProps2) {
				plan, sinkProps = plan2, sinkProps2
				granted = upgraded
			}
		}
	}
	return finishPlan(p, opt, plan, granted), nil
}

// fbEdge is one feedback edge: placeholder logical ID → sink logical ID.
type fbEdge struct{ ph, sink int }

// finishPlan applies the shared planning tail: it records how each
// placeholder's data must be partitioned when re-injected (so the granted
// loop assumption holds) and runs the fusion rewrite when requested. The
// key registry is only built if a placeholder actually carries a granted
// partitioning.
func finishPlan(p *dataflow.Plan, opt Options, plan *PhysPlan, granted map[int]Props) *PhysPlan {
	for _, pn := range plan.Placeholders {
		if g, ok := granted[pn.Logical.ID]; ok && g.Part != 0 {
			pn.InjectKey = keyByID(p, opt, g.Part)
		}
	}
	if opt.Fuse {
		plan.Fused = Fuse(plan, opt.ExpectedIterations)
	}
	return plan
}

// keyByID resolves one key identity to its function — a linear scan over
// the plan's key selectors, so the hot planning path does not rebuild the
// whole registry map per call. A registry supplied through Options.Registry
// is consulted directly.
func keyByID(p *dataflow.Plan, opt Options, id uintptr) record.KeyFunc {
	if opt.Registry != nil {
		return opt.Registry[id]
	}
	match := func(k record.KeyFunc) bool { return k != nil && record.KeyID(k) == id }
	for _, n := range p.Nodes() {
		if match(n.Keys[0]) {
			return n.Keys[0]
		}
		if match(n.Keys[1]) {
			return n.Keys[1]
		}
		for i := range n.Preserves {
			for _, k := range n.Preserves[i] {
				if match(k) {
					return k
				}
			}
		}
	}
	for _, k := range opt.SinkPartition {
		if match(k) {
			return k
		}
	}
	return nil
}

// feedbackConsistent verifies the re-optimized plan actually establishes
// the properties that were granted to the placeholders.
// sinkProps is indexed by the dense logical node ID.
func feedbackConsistent(fb []fbEdge, granted map[int]Props, sinkProps []Props) bool {
	for _, e := range fb {
		g := granted[e.ph]
		if g.Part != 0 && sinkProps[e.sink].Part != g.Part {
			return false
		}
	}
	return true
}

// registryOf maps key identities to key functions over all keys mentioned
// in the plan and options; a registry supplied through Options.Registry is
// used as-is.
func registryOf(p *dataflow.Plan, opt Options) map[uintptr]record.KeyFunc {
	if opt.Registry != nil {
		return opt.Registry
	}
	reg := make(map[uintptr]record.KeyFunc)
	add := func(k record.KeyFunc) {
		if k != nil {
			reg[record.KeyID(k)] = k
		}
	}
	for _, n := range p.Nodes() {
		add(n.Keys[0])
		add(n.Keys[1])
		for i := range n.Preserves {
			for _, k := range n.Preserves[i] {
				add(k)
			}
		}
	}
	for _, k := range opt.SinkPartition {
		add(k)
	}
	return reg
}

// KeyRegistry builds the key-identity registry Optimize uses to map granted
// physical properties back to key functions. Callers that optimize the same
// plan repeatedly (mid-iteration re-planning, plan caches) build it once and
// pass it back through Options.Registry to skip the per-call rebuild.
func KeyRegistry(p *dataflow.Plan, opt Options) map[uintptr]record.KeyFunc {
	opt.Registry = nil
	return registryOf(p, opt)
}

// cand is one physical alternative for a logical node's output.
type cand struct {
	node  *PhysNode
	props Props
	cost  float64
}

type ipEntry struct {
	part record.KeyFunc
	sort record.KeyFunc
}

func (e ipEntry) props() Props {
	return Props{Part: record.KeyID(e.part), Sort: record.KeyID(e.sort)}
}

type optz struct {
	plan      *dataflow.Plan
	opt       Options
	phProps   map[int]Props // effective placeholder properties this pass
	consumers map[int][]*dataflow.Node
	est       map[int]int64
	dynamic   map[int]bool
	memo      map[int][]cand
	ips       map[int][]ipEntry // logical node ID -> IPs on its output
	keyReg    map[uintptr]record.KeyFunc
	nextID    int
	err       error
}

// registerKeys records all key selectors so property ids can be mapped
// back to functions.
func (o *optz) registerKeys() {
	o.keyReg = registryOf(o.plan, o.opt)
}

// computeEstimates fills o.est bottom-up (nodes are in creation order, so
// inputs precede consumers).
func (o *optz) computeEstimates() {
	for _, n := range o.plan.Nodes() {
		in := make([]int64, len(n.Inputs))
		for i, p := range n.Inputs {
			in[i] = o.est[p.ID]
		}
		o.est[n.ID] = estimateOut(n, in)
	}
}

// computeDynamic marks nodes on the dynamic data path: descendants of
// IterationInput placeholders and the stateful solution-set operators
// (§4.1: "all nodes and edges on the path from I to O"; everything else is
// the constant data path).
func (o *optz) computeDynamic() {
	for _, n := range o.plan.Nodes() {
		d := n.Contract == dataflow.IterationInput ||
			n.Contract == dataflow.SolutionJoin ||
			n.Contract == dataflow.SolutionCoGroup
		for _, in := range n.Inputs {
			d = d || o.dynamic[in.ID]
		}
		o.dynamic[n.ID] = d
	}
}

// iterFactor returns the cost multiplier for work attributed to the given
// producer/consumer pair: dynamic-path work re-executes every iteration;
// constant-path work (and cached constant->dynamic edges) runs once.
func (o *optz) iterFactor(dynamic bool) float64 {
	if dynamic {
		return float64(o.opt.ExpectedIterations)
	}
	return 1
}

// ipsCreatedBy returns the interesting properties operator n creates for
// its input i (§4.3: IP_{P,e} depends on the possible execution strategies
// of P).
func (o *optz) ipsCreatedBy(n *dataflow.Node, i int) []ipEntry {
	switch n.Contract {
	case dataflow.ReduceOp:
		return []ipEntry{{part: n.Keys[0], sort: n.Keys[0]}, {part: n.Keys[0]}}
	case dataflow.MatchOp, dataflow.CoGroupOp, dataflow.InnerCoGroupOp:
		return []ipEntry{{part: n.Keys[i]}}
	case dataflow.SolutionJoin, dataflow.SolutionCoGroup:
		return []ipEntry{{part: n.Keys[0]}}
	case dataflow.Sink:
		if k, ok := o.opt.SinkPartition[n.ID]; ok {
			return []ipEntry{{part: k}}
		}
	}
	return nil
}

// collectIPs performs the top-down interesting-property traversal. With
// loop feedback it runs twice, feeding the properties gathered at each
// IterationInput back to the producing sink's input edge (§4.3: "the
// optimization performs two top down traversals over G, feeding the IPs
// from the first traversal back from I to O for the second traversal").
func (o *optz) collectIPs() {
	passes := 1
	if len(o.opt.Feedback) > 0 {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		nodes := o.plan.Nodes()
		for idx := len(nodes) - 1; idx >= 0; idx-- {
			n := nodes[idx]
			for i, in := range n.Inputs {
				for _, ip := range o.ipsCreatedBy(n, i) {
					o.addIP(in.ID, ip)
				}
				// Inherited properties survive the UDF only for keys the
				// OutputContract declares preserved.
				for _, ip := range o.ips[n.ID] {
					inherited := ipEntry{}
					if ip.part != nil && n.PreservesKey(i, record.KeyID(ip.part)) {
						inherited.part = ip.part
					}
					if ip.sort != nil && n.PreservesKey(i, record.KeyID(ip.sort)) {
						inherited.sort = ip.sort
					}
					if inherited.part != nil || inherited.sort != nil {
						o.addIP(in.ID, inherited)
					}
				}
			}
		}
		// Feed IPs across the loop edge: what the placeholder's consumers
		// want, the sink's producer should establish.
		for phID, sinkID := range o.opt.Feedback {
			sink := o.plan.Nodes()[sinkID]
			if sink.Contract != dataflow.Sink || len(sink.Inputs) == 0 {
				continue
			}
			for _, ip := range o.ips[phID] {
				o.addIP(sink.Inputs[0].ID, ip)
			}
		}
	}
}

func (o *optz) addIP(nodeID int, ip ipEntry) {
	want := ip.props()
	for _, have := range o.ips[nodeID] {
		if have.props() == want {
			return
		}
	}
	o.ips[nodeID] = append(o.ips[nodeID], ip)
}

func (o *optz) newNode(role Role, logical *dataflow.Node, local LocalStrategy, inputs []Edge) *PhysNode {
	n := &PhysNode{ID: o.nextID, Role: role, Logical: logical, Local: local, Inputs: inputs}
	o.nextID++
	return n
}

// edge builds a physical edge from candidate c with the given strategy and
// returns it with its cost. producerDynamic controls iteration weighting.
func (o *optz) edge(c cand, ship ShipStrategy, key record.KeyFunc, producerDynamic bool) (Edge, float64) {
	cost := shipCost(ship, c.est(o), o.opt.Parallelism, o.opt.Hosts) * o.iterFactor(producerDynamic)
	return Edge{From: c.node, Ship: ship, Key: key}, cost
}

// est returns the producer's output estimate.
func (c cand) est(o *optz) int64 {
	return c.node.EstOut
}

// enumerate returns the candidate set for a logical node, memoized. Nodes
// with multiple consumers are frozen to their single best candidate so the
// physical DAG shares one copy of the subplan.
func (o *optz) enumerate(n *dataflow.Node) []cand {
	if cs, ok := o.memo[n.ID]; ok {
		return cs
	}
	cs := o.candidates(n)
	cs = o.withEnforcers(n, cs)
	cs = prune(cs)
	if len(o.consumers[n.ID]) > 1 {
		cs = []cand{best(cs)}
	}
	o.memo[n.ID] = cs
	return cs
}

func best(cs []cand) cand {
	b := cs[0]
	for _, c := range cs[1:] {
		if c.cost < b.cost {
			b = c
		}
	}
	return b
}

// prune keeps, for each distinct property set, the cheapest candidate, and
// drops candidates dominated by a cheaper candidate covering their
// properties. The result is returned in a deterministic order (cost, then
// properties), so cost ties resolve identically on every run — repeated
// optimizations of the same plan must yield the same physical plan.
func prune(cs []cand) []cand {
	byProps := make(map[Props]cand)
	for _, c := range cs {
		if b, ok := byProps[c.props]; !ok || c.cost < b.cost {
			byProps[c.props] = c
		}
	}
	var out []cand
	for _, c := range byProps {
		dominated := false
		for _, d := range byProps {
			if d.node != c.node && d.cost < c.cost && d.props.covers(c.props) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		pi, pj := out[i].props, out[j].props
		if pi.Part != pj.Part {
			return pi.Part < pj.Part
		}
		if pi.Sort != pj.Sort {
			return pi.Sort < pj.Sort
		}
		return !pi.Repl && pj.Repl
	})
	return out
}

// withEnforcers adds, for every interesting property on n's output that no
// candidate establishes for free, a variant that establishes it with an
// explicit repartition/sort enforcer (§4.3: IPs as hints "to create a plan
// candidate that establishes those properties at that edge").
func (o *optz) withEnforcers(n *dataflow.Node, cs []cand) []cand {
	ips := o.ips[n.ID]
	if len(ips) == 0 || len(cs) == 0 {
		return cs
	}
	dyn := o.dynamic[n.ID]
	out := cs
	for _, ip := range ips {
		want := ip.props()
		for _, c := range cs {
			if c.props.covers(want) {
				continue
			}
			newProps := c.props
			var inEdge Edge
			var cost float64
			if want.Part != 0 && c.props.Part != want.Part {
				inEdge, cost = o.edge(c, ShipPartition, ip.part, dyn)
				newProps.Part = want.Part
				newProps.Sort = 0 // repartitioning destroys order
				newProps.Repl = false
			} else {
				inEdge, cost = o.edge(c, ShipForward, nil, dyn)
			}
			local := LocalNone
			var sortKey record.KeyFunc
			if want.Sort != 0 && newProps.Sort != want.Sort {
				local = LocalSort
				sortKey = ip.sort
				cost += sortCost(c.est(o)) * o.iterFactor(dyn)
				newProps.Sort = want.Sort
			}
			if local == LocalNone && inEdge.Ship == ShipForward {
				continue // nothing to enforce
			}
			enf := o.newNode(RoleEnforcer, n, local, []Edge{inEdge})
			enf.SortKey = sortKey
			enf.EstOut = c.est(o)
			out = append(out, cand{node: enf, props: newProps, cost: c.cost + cost})
		}
	}
	return out
}

// placeholderProps returns props granted to an IterationInput.
func (o *optz) placeholderProps(n *dataflow.Node) Props {
	if p, ok := o.phProps[n.ID]; ok {
		return p
	}
	return Props{}
}

// preservedProps maps input props through the UDF's output contract.
func preservedProps(n *dataflow.Node, i int, in Props) Props {
	out := Props{Repl: in.Repl}
	if in.Part != 0 && n.PreservesKey(i, in.Part) {
		out.Part = in.Part
	}
	if in.Sort != 0 && n.PreservesKey(i, in.Sort) {
		out.Sort = in.Sort
	}
	return out
}

// candidates generates the natural physical alternatives for one node.
func (o *optz) candidates(n *dataflow.Node) []cand {
	dyn := o.dynamic[n.ID]
	f := o.iterFactor(dyn)
	est := o.est[n.ID]
	switch n.Contract {
	case dataflow.Source, dataflow.IterationInput:
		pn := o.newNode(RoleOperator, n, LocalNone, nil)
		pn.EstOut = est
		props := Props{}
		if n.Contract == dataflow.IterationInput {
			props = o.placeholderProps(n)
		}
		return []cand{{node: pn, props: props, cost: 0}}

	case dataflow.MapOp:
		var out []cand
		for _, c := range o.enumerate(n.Inputs[0]) {
			e, ec := o.edge(c, ShipForward, nil, o.dynamic[n.Inputs[0].ID])
			pn := o.newNode(RoleOperator, n, LocalNone, []Edge{e})
			pn.EstOut = est
			out = append(out, cand{
				node:  pn,
				props: preservedProps(n, 0, c.props),
				cost:  c.cost + ec + wCPU*float64(c.est(o))*f,
			})
		}
		return out

	case dataflow.UnionOp:
		// All inputs forwarded; properties are the intersection.
		var edges []Edge
		cost := 0.0
		var props Props
		for i, inNode := range n.Inputs {
			c := best(o.enumerate(inNode))
			e, ec := o.edge(c, ShipForward, nil, o.dynamic[inNode.ID])
			edges = append(edges, e)
			cost += c.cost + ec
			if i == 0 {
				props = c.props
				continue
			}
			if props.Part != c.props.Part {
				props.Part = 0
			}
			if props.Sort != c.props.Sort {
				props.Sort = 0
			}
			props.Repl = props.Repl && c.props.Repl
		}
		pn := o.newNode(RoleOperator, n, LocalNone, edges)
		pn.EstOut = est
		props.Sort = 0 // concatenation destroys per-partition order
		return []cand{{node: pn, props: props, cost: cost}}

	case dataflow.ReduceOp:
		return o.reduceCandidates(n, dyn, f, est)

	case dataflow.MatchOp:
		return o.matchCandidates(n, dyn, f, est)

	case dataflow.CrossOp:
		return o.crossCandidates(n, dyn, f, est)

	case dataflow.CoGroupOp, dataflow.InnerCoGroupOp:
		return o.coGroupCandidates(n, dyn, f, est)

	case dataflow.SolutionJoin, dataflow.SolutionCoGroup:
		return o.solutionCandidates(n, dyn, f, est)

	case dataflow.Sink:
		var out []cand
		for _, c := range o.enumerate(n.Inputs[0]) {
			inDyn := o.dynamic[n.Inputs[0].ID]
			if k, ok := o.opt.SinkPartition[n.ID]; ok {
				kid := record.KeyID(k)
				ship := ShipPartition
				var key record.KeyFunc = k
				if c.props.Part == kid {
					ship, key = ShipForward, nil
				}
				e, ec := o.edge(c, ship, key, inDyn)
				pn := o.newNode(RoleOperator, n, LocalNone, []Edge{e})
				pn.EstOut = est
				props := c.props
				if ship == ShipPartition {
					props = Props{Part: kid}
				}
				out = append(out, cand{node: pn, props: props, cost: c.cost + ec})
				continue
			}
			e, ec := o.edge(c, ShipForward, nil, inDyn)
			pn := o.newNode(RoleOperator, n, LocalNone, []Edge{e})
			pn.EstOut = est
			out = append(out, cand{node: pn, props: c.props, cost: c.cost + ec})
		}
		return out
	}
	o.err = fmt.Errorf("optimizer: unsupported contract %s", n.Contract)
	return nil
}
