package optimizer

import (
	"math/bits"

	"repro/internal/dataflow"
	"repro/internal/record"
)

// PlanCache memoizes the artifacts of repeated optimizations of one
// logical plan: the key-identity registry (rebuilt from scratch by every
// plain Optimize call) and whole physical plans, fingerprinted by the
// planning inputs that actually change between mid-run re-optimizations —
// planner, fusion, parallelism, iteration weight, and the workset
// cardinality bucketed to its order of magnitude (the trigger granularity
// of re-planning: a plan costed for 10k workset records serves 9k ones
// identically). A hit skips planning entirely.
//
// A cache is bound to one logical plan and one spec shape; it is not safe
// for concurrent use (iteration drivers re-plan between supersteps, on one
// goroutine).
type PlanCache struct {
	registry map[uintptr]record.KeyFunc
	plans    map[planKey]*PhysPlan
	// Hits and Misses count lookups; the driver mirrors Hits into the
	// PlanCacheHits metric.
	Hits, Misses int64
}

type planKey struct {
	planner            PlannerKind
	fuse               bool
	parallelism        int
	expectedIterations int
	// estBucket is ⌈log2(workset estimate)⌉: plans are reused across
	// estimates of the same order of magnitude.
	estBucket int
}

// NewPlanCache creates an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[planKey]*PhysPlan)}
}

// Optimize plans p under opt for the given workset-cardinality estimate,
// reusing a memoized plan when one exists for the same fingerprint. The
// second result reports whether the plan came from the cache. The caller
// owns applying est to the plan's placeholder estimate before calling (the
// cache only fingerprints it).
func (c *PlanCache) Optimize(p *dataflow.Plan, opt Options, est int64) (*PhysPlan, bool, error) {
	if c.registry == nil {
		c.registry = KeyRegistry(p, opt)
	}
	opt.Registry = c.registry
	k := planKey{
		planner:            opt.Planner,
		fuse:               opt.Fuse,
		parallelism:        opt.Parallelism,
		expectedIterations: opt.ExpectedIterations,
		estBucket:          bits.Len64(uint64(est)),
	}
	if pl, ok := c.plans[k]; ok {
		c.Hits++
		return pl, true, nil
	}
	pl, err := Optimize(p, opt)
	if err != nil {
		return nil, false, err
	}
	c.Misses++
	if c.plans == nil {
		c.plans = make(map[planKey]*PhysPlan)
	}
	c.plans[k] = pl
	return pl, false, nil
}
